(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (DAC'97, section 5) plus the ablations listed in DESIGN.md,
   and times the optimizer kernels with Bechamel.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe table1          # one experiment
     dune exec bench/main.exe table2 fig2a    # any subset

   Experiments: table1 table2 fig2a fig2b annealing ablation-activity
   ablation-budget ablation-multivt timing *)

module Experiments = Dcopt_core.Experiments
module Flow = Dcopt_core.Flow
module Suite = Dcopt_suite.Suite
module Circuit = Dcopt_netlist.Circuit

(* --quick: shrink quotas so the timing experiment can run as a smoke
   test under `dune runtest` (numbers are then indicative only). *)
let quick = ref false

(* --json FILE: write the timing experiment's per-kernel estimates as
   machine-readable JSON, so CI keeps a perf trajectory across commits. *)
let json_out : string option ref = ref None

(* --check FILE: gate the timing experiment against a committed baseline
   (test/BENCH_timing.json) and exit non-zero past the threshold. *)
let check_baseline : string option ref = ref None

(* --scale: force the large-circuit STA kernels (sta_100k) even in quick
   mode — used to refresh the committed baseline. Full (non-quick) runs
   always measure them, plus the million-gate kernel. *)
let scale = ref false

let header title =
  let bar = String.make 72 '=' in
  Printf.printf "\n%s\n%s\n%s\n\n" bar title bar

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Paper experiments                                                   *)

let run_table1 () =
  header "Table 1: baseline — Vt fixed at 700 mV, Vdd and widths optimized \
          (fc = 300 MHz)";
  let rows, dt = wall (fun () -> Experiments.table1 ()) in
  print_string (Experiments.render_table ~title:"" rows);
  Printf.printf
    "\nShape checks vs the paper: leakage negligible at 700 mV (static << \
     dynamic); supply lands high (timing-bound at this threshold). \
     [%.1f s]\n"
    dt

let run_table2 () =
  header "Table 2: joint (Vdd, Vt, width) optimization and savings vs Table 1";
  let rows, dt = wall (fun () -> Experiments.table2 ()) in
  print_string (Experiments.render_table ~title:"" rows);
  let savings = List.filter_map (fun r -> r.Experiments.savings) rows in
  (match savings with
  | [] -> ()
  | _ ->
    let arr = Array.of_list savings in
    let lo, hi = Dcopt_util.Stats.min_max arr in
    Printf.printf
      "\nShape checks vs the paper: savings %.1fx-%.1fx (geomean %.1fx; \
       paper: \"factors larger than 10\"); Vt lands in the 100-250 mV band \
       (paper: 150-250 mV); Vdd in 0.45-1.2 V (paper: 0.6-1.2 V); static \
       and dynamic components comparable at the optimum; savings grow with \
       input activity. [%.1f s]\n"
      lo hi
      (Dcopt_util.Stats.geometric_mean arr)
      dt)

let run_fig2a () =
  header "Figure 2(a): power savings vs threshold-voltage variation (s298)";
  let points, dt = wall (fun () -> Experiments.fig2a ()) in
  print_string (Experiments.render_fig2a points);
  Printf.printf
    "\nShape check vs the paper: savings shrink monotonically as the \
     worst-case Vt spread grows. [%.1f s]\n"
    dt

let run_fig2b () =
  header "Figure 2(b): power savings vs available cycle-time slack (s298)";
  let points, dt = wall (fun () -> Experiments.fig2b ()) in
  print_string (Experiments.render_fig2b points);
  Printf.printf
    "\nShape check vs the paper: savings against the fixed 300 MHz baseline \
     grow with slack, crossing ~25x (the paper's headline factor); the \
     optimizer rides Vdd down and lets Vt rise as leakage integrates over \
     longer cycles. [%.1f s]\n"
    dt

let run_annealing () =
  header "Section 5: Procedure-2 heuristic vs multi-pass simulated annealing";
  let rows, dt = wall (fun () -> Experiments.annealing_comparison ()) in
  print_string (Experiments.render_annealing rows);
  Printf.printf
    "\nShape check vs the paper: the heuristic reaches the same energy \
     regime orders of magnitude faster; cold-started annealing needs far \
     more evaluations to compete. [%.1f s]\n"
    dt

let run_ablation_activity () =
  header "Ablation: first-order vs BDD-exact transition densities (s298)";
  let rows, dt = wall (fun () -> Experiments.ablation_activity ()) in
  print_string (Experiments.render_ablation ~title:"" rows);
  Printf.printf
    "\nThe paper's first-order method (no input correlation) is a close \
     proxy for the exact densities on random logic. [%.1f s]\n"
    dt

let run_ablation_budget () =
  header "Ablation: Procedure-1 criticality budgets vs uniform per-gate \
          budgets (s298)";
  let rows, dt = wall (fun () -> Experiments.ablation_budget ()) in
  print_string (Experiments.render_ablation ~title:"" rows);
  Printf.printf
    "\nSee EXPERIMENTS.md: on shallow synthetic cores a uniform split can \
     beat fanout-proportional budgeting — a real limitation of the \
     criticality heuristic worth knowing about. [%.1f s]\n"
    dt

let run_ablation_multivdd () =
  header "Extension: dual supply voltages (clustered voltage scaling, s298)";
  let rows, dt = wall (fun () -> Experiments.ablation_multi_vdd ()) in
  print_string (Experiments.render_ablation ~title:"" rows);
  Printf.printf
    "\nSlack-rich gates move to a second, lower rail; level converters at \
     register/output boundaries are costed in energy and delay. [%.1f s]\n"
    dt

let run_ablation_short_circuit () =
  header "Extension: Veendrick short-circuit dissipation in the cost";
  let rows, dt = wall (fun () -> Experiments.ablation_short_circuit ()) in
  print_string (Experiments.render_ablation ~title:"" rows);
  Printf.printf
    "\nThe paper neglects crowbar current (an order of magnitude below \
     switching at typical slopes) but announces it for the next tool \
     version; enabling it here shifts the optimum little because low-Vdd \
     designs have Vdd < 2Vt, where the crowbar window closes. [%.1f s]\n"
    dt

let run_ablation_multivt () =
  header "Ablation: single-Vt vs dual-Vt optimization (s298)";
  let rows, dt = wall (fun () -> Experiments.ablation_multi_vt ()) in
  print_string (Experiments.render_ablation ~title:"" rows);
  Printf.printf
    "\nA second threshold lets slack-rich gates trade speed for leakage \
     (the paper's n_v > 1 case). [%.1f s]\n"
    dt

let run_yield () =
  header "Extension: Monte-Carlo timing yield under Vt variation (s298)";
  let points, dt = wall (fun () -> Experiments.yield_study ()) in
  print_string (Experiments.render_yield points);
  Printf.printf
    "\nThe statistical companion to Fig. 2(a): the nominal optimum loses \
     yield as the die-to-die threshold spread grows, while the 3-sigma \
     corner-margined design holds yield at the listed energy premium. \
     [%.1f s]\n"
    dt

let run_scaling () =
  header "Extension: optimal operating point across scaled technology nodes";
  let rows, dt = wall (fun () -> Experiments.scaling_study ()) in
  print_string (Experiments.render_scaling rows);
  Printf.printf
    "\nConstant-field scaling shrinks capacitance and the supply ceiling, \
     but the subthreshold swing is set by kT/q and does not scale: the \
     static share of the optimum grows with each node — the trend that made \
     this paper's joint optimization mainstream. [%.1f s]\n"
    dt

let run_glitch () =
  header "Extension: glitch power missed by zero-delay activity analysis";
  let rows, dt = wall (fun () -> Experiments.glitch_study ()) in
  print_string (Experiments.render_glitch rows);
  Printf.printf
    "\nTwo effects the paper's zero-delay densities miss, made visible by \
     event-driven simulation: simultaneous input toggles cancel (Najm \
     over-counts XOR-rich logic), while unbalanced arrival times glitch \
     (Najm under-counts arithmetic arrays -- the multiplier's transitions \
     are mostly hazards). [%.1f s]\n"
    dt

let run_state_activity () =
  header "Extension: trace-measured state-bit activity (Seq_sim)";
  let rows, dt = wall (fun () -> Experiments.state_activity_study ()) in
  print_string (Experiments.render_state_activity rows);
  Printf.printf
    "\nThe paper assumes pseudo-inputs (register outputs) toggle like true \
     inputs; cycle simulation of the sequential circuit measures how the \
     reachable-state structure actually drives them, and the optimizer \
     re-targets under the measured profile. [%.1f s]\n"
    dt

let run_ablation_fanin () =
  header "Extension: bounded-fanin decomposition before optimization (s298)";
  let rows, dt = wall (fun () -> Experiments.ablation_fanin ()) in
  print_string (Experiments.render_ablation ~title:"" rows);
  Printf.printf
    "\nNarrow gates trade series-stack delay for extra logic depth and \
     switched capacitance; the optimizer arbitrates. [%.1f s]\n"
    dt

let run_ablation_sizing () =
  header "Ablation: budget-decomposed (Procedure 2) vs budget-free (TILOS) \
          sizing (s298)";
  let rows, dt = wall (fun () -> Experiments.ablation_sizing ()) in
  print_string (Experiments.render_ablation ~title:"" rows);
  Printf.printf
    "\nProcedure 1's per-gate budgets make the heuristic O(M^3)-fast but \
     over-constrain gates on slack-rich paths; TILOS's global greedy \
     sizing finds substantially lower energy at much higher runtime -- the \
     price of the paper's decomposition, quantified. [%.1f s]\n"
    dt

let run_temperature () =
  header "Extension: optimal operating point vs junction temperature (s298)";
  let rows, dt = wall (fun () -> Experiments.temperature_study ()) in
  print_string (Experiments.render_ablation ~title:"" rows);
  Printf.printf
    "\nThe subthreshold swing scales with kT/q: hot dies leak \
     exponentially more, so the optimizer raises Vt (and pays Vdd) as the \
     junction heats -- the other reason real designs keep margin on the \
     paper's razor-edge optimum. [%.1f s]\n"
    dt

let run_pipeline () =
  header "Extension: the cumulative beyond-paper recipe (s298)";
  let rows, dt = wall (fun () -> Experiments.beyond_paper_pipeline ()) in
  print_string (Experiments.render_ablation ~title:"" rows);
  (match rows with
  | first :: _ ->
    let last = List.nth rows (List.length rows - 1) in
    Printf.printf
      "\nStacking the extensions on the paper's own result buys another \
     %.1fx on top of its >10x baseline savings. [%.1f s]\n"
      (first.Experiments.value /. last.Experiments.value)
      dt
  | [] -> ())

(* ------------------------------------------------------------------ *)
(* Kernel timing with Bechamel                                         *)

let bechamel_tests () =
  let open Bechamel in
  let core = Circuit.combinational_core (Suite.find_exn "s298") in
  let specs =
    Dcopt_activity.Activity.uniform_inputs core ~probability:0.5 ~density:0.1
  in
  let profile = Dcopt_activity.Activity.local_profile core specs in
  let env =
    Dcopt_opt.Power_model.make_env ~tech:Dcopt_device.Tech.default ~fc:300e6
      core profile
  in
  let budgets =
    (Dcopt_timing.Delay_assign.assign core ~cycle_time:(1.0 /. 300e6))
      .Dcopt_timing.Delay_assign.t_max
  in
  let n = Circuit.size core in
  (* constrained-vs-scalar STA pair, small and large: the same forward +
     backward analysis with a scalar target vs per-endpoint required
     seeds (one tightened output, the Constraints projection shape) *)
  let module Constraints = Dcopt_timing.Constraints in
  let module Sta = Dcopt_timing.Sta in
  let module Flat_sta = Dcopt_timing.Flat_sta in
  let tc = 1.0 /. 300e6 in
  let req_of circuit =
    let out_name id = (Circuit.node circuit id).Circuit.name in
    let victim = out_name (Circuit.outputs circuit).(0) in
    Constraints.required_times
      {
        (Constraints.of_cycle_time tc) with
        Constraints.output_delays =
          [
            { Constraints.port = victim; io_clock = None; io_delay = 0.1 *. tc };
          ];
      }
      ~default:tc circuit
  in
  let req = req_of core in
  let dag =
    Dcopt_netlist.Generator.(random_dag (default_dag ~name:"dag10k" ~seed:7L ~gates:10_000 ()))
  in
  let dag_flat = Dcopt_netlist.Flat.of_circuit dag in
  let dag_req = req_of dag in
  let dag_delays =
    let rng = Dcopt_util.Prng.create 13L in
    Array.init (Circuit.size dag) (fun _ -> Dcopt_util.Prng.float rng 1e-9)
  in
  [
    Test.make ~name:"activity/first-order (s298)"
      (Staged.stage (fun () ->
           ignore (Dcopt_activity.Activity.local_profile core specs)));
    Test.make ~name:"timing/sta scalar (s298)"
      (Staged.stage (fun () ->
           ignore (Sta.analyze ~required_time:tc core ~delays:budgets)));
    Test.make ~name:"timing/sta constrained (s298)"
      (Staged.stage (fun () ->
           ignore (Sta.analyze ~required_times:req core ~delays:budgets)));
    Test.make ~name:"timing/sta scalar (dag10k)"
      (Staged.stage (fun () ->
           ignore (Flat_sta.analyze ~required_time:tc dag_flat ~delays:dag_delays)));
    Test.make ~name:"timing/sta constrained (dag10k)"
      (Staged.stage (fun () ->
           ignore
             (Flat_sta.analyze ~required_times:dag_req dag_flat
                ~delays:dag_delays)));
    Test.make ~name:"timing/procedure-1 budgets (s298)"
      (Staged.stage (fun () ->
           ignore
             (Dcopt_timing.Delay_assign.assign core
                ~cycle_time:(1.0 /. 300e6))));
    Test.make ~name:"opt/sizing pass (s298)"
      (Staged.stage (fun () ->
           ignore
             (Dcopt_opt.Power_model.size_all env ~vdd:1.0
                ~vt:(Array.make n 0.15) ~budgets)));
    Test.make ~name:"opt/full evaluation (s298)"
      (Staged.stage
         (let design =
            Dcopt_opt.Power_model.uniform_design env ~vdd:1.0 ~vt:0.15 ~w:4.0
          in
          fun () -> ignore (Dcopt_opt.Power_model.evaluate env design)));
  ]

(* Incremental vs full per-move cost on s298 — the Incr engine's reason to
   exist. Both variants replay one deterministic width-move schedule:

   - sizing (TILOS accepted-move shape): apply the width, recover delays,
     energies and the critical path. Full = whole-circuit evaluate + STA
     walk; incremental = set_width + commit + arrival-walk.
   - annealing width-move shape: evaluate the perturbed design, accept
     every other move. Full = candidate copy + whole-circuit evaluate;
     incremental = in-place set_width + commit/rollback. *)
let measure_incremental () =
  let module Power_model = Dcopt_opt.Power_model in
  let module Incr = Dcopt_opt.Power_model.Incr in
  let module Prng = Dcopt_util.Prng in
  let tech = Dcopt_device.Tech.default in
  let core = Circuit.combinational_core (Suite.find_exn "s298") in
  let specs =
    Dcopt_activity.Activity.uniform_inputs core ~probability:0.5 ~density:0.1
  in
  let profile = Dcopt_activity.Activity.local_profile core specs in
  let env = Power_model.make_env ~tech ~fc:300e6 core profile in
  let gates = Power_model.gate_ids env in
  let gate_count = Array.length gates in
  let moves = if !quick then 300 else 3000 in
  let clamp_w w =
    Dcopt_util.Numeric.clamp ~lo:tech.Dcopt_device.Tech.w_min
      ~hi:tech.Dcopt_device.Tech.w_max w
  in
  let schedule =
    let rng = Prng.create 0xBE7CL in
    Array.init moves (fun _ ->
        ( gates.(Prng.int rng gate_count),
          exp (Prng.gaussian rng ~mean:0.0 ~sigma:0.4) ))
  in
  let fresh_design () = Power_model.uniform_design env ~vdd:1.0 ~vt:0.2 ~w:4.0 in
  let sizing_full () =
    let design = fresh_design () in
    Array.iter
      (fun (id, factor) ->
        design.Power_model.widths.(id) <-
          clamp_w (design.Power_model.widths.(id) *. factor);
        let e = Power_model.evaluate env design in
        ignore
          (Dcopt_timing.Sta.critical_path core ~delays:e.Power_model.delays))
      schedule
  in
  let sizing_incr () =
    let inc = Incr.create env (fresh_design ()) in
    Array.iter
      (fun (id, factor) ->
        Incr.set_width inc id
          (clamp_w ((Incr.design inc).Power_model.widths.(id) *. factor));
        Incr.commit inc;
        ignore (Incr.critical_path inc))
      schedule
  in
  let anneal_full () =
    let design = ref (fresh_design ()) in
    Array.iteri
      (fun i (id, factor) ->
        let cand =
          {
            !design with
            Power_model.vt = Array.copy !design.Power_model.vt;
            widths = Array.copy !design.Power_model.widths;
          }
        in
        cand.Power_model.widths.(id) <-
          clamp_w (cand.Power_model.widths.(id) *. factor);
        ignore (Power_model.evaluate env cand);
        if i land 1 = 0 then design := cand)
      schedule
  in
  let anneal_incr () =
    let inc = Incr.create env (fresh_design ()) in
    Array.iteri
      (fun i (id, factor) ->
        Incr.set_width inc id
          (clamp_w ((Incr.design inc).Power_model.widths.(id) *. factor));
        ignore (Incr.total_energy inc);
        if i land 1 = 0 then Incr.commit inc else Incr.rollback inc)
      schedule
  in
  let per_move f =
    let _, dt = wall f in
    dt /. float_of_int moves *. 1e9
  in
  let dirty = Dcopt_obs.Metrics.counter "incr.dirty_gates" in
  let moves_c = Dcopt_obs.Metrics.counter "incr.moves" in
  let measure name full incr =
    let full_ns = per_move full in
    let d0 = Dcopt_obs.Metrics.value dirty in
    let m0 = Dcopt_obs.Metrics.value moves_c in
    let incr_ns = per_move incr in
    let dirty_per_move =
      float_of_int (Dcopt_obs.Metrics.value dirty - d0)
      /. float_of_int (max 1 (Dcopt_obs.Metrics.value moves_c - m0))
    in
    (name, full_ns, incr_ns, dirty_per_move)
  in
  ( [
      measure "sizing_incr" sizing_full sizing_incr;
      measure "anneal_incr" anneal_full anneal_incr;
    ],
    gate_count )

(* Large-circuit STA scale kernels: full timing analysis (forward +
   backward sweep) on generated 100k/1M-gate random DAGs, flat levelized
   kernel vs the pointer-chasing Sta it replaces. Measured as interleaved
   min-of-k — the variants alternate inside one loop so machine-wide
   noise hits both equally, and the minimum is a far tighter estimator of
   the true cost than any single reading. The jobs-identity column
   re-checks the determinism contract (arrival/required/slack arrays
   byte-identical between --jobs 1 and --jobs 4) on every run. *)

type scale_result = {
  sc_name : string;
  sc_gates : int;
  sc_nodes : int;
  sc_ns_per_gate : float; (* flat levelized kernel, sequential *)
  sc_ptr_ns_per_gate : float; (* pointer-based Sta.analyze *)
  sc_speedup : float;
  sc_jobs_identical : bool;
}

let measure_scale () =
  let module G = Dcopt_netlist.Generator in
  let module Flat = Dcopt_netlist.Flat in
  let module Sta = Dcopt_timing.Sta in
  let module Flat_sta = Dcopt_timing.Flat_sta in
  let module Prng = Dcopt_util.Prng in
  let one (name, gates, reps) =
    (* the sta_constrained row measures the same flat-vs-pointer pair on
       the per-endpoint required-time path: finite capture budgets at
       every primary output, infinity elsewhere — the shape
       Constraints.required_times projects, so the dedicated _req
       backward kernel is the one on the clock *)
    let constrained = String.equal name "sta_constrained" in
    let d = G.default_dag ~name ~seed:42L ~gates () in
    let c = G.random_dag d in
    let f = Flat.of_circuit c in
    let n = Circuit.size c in
    let rng = Prng.create 9L in
    let delays = Array.init n (fun _ -> Prng.float rng 1e-9) in
    let required_times =
      if not constrained then None
      else begin
        let req = Array.make n infinity in
        let rng = Prng.create 11L in
        Array.iter
          (fun id -> req.(id) <- 0.5e-9 +. Prng.float rng 1e-9)
          (Circuit.outputs c);
        Some req
      end
    in
    let best_ptr = ref infinity and best_flat = ref infinity in
    for _ = 1 to reps do
      let _, dt = wall (fun () -> Sta.analyze ?required_times c ~delays) in
      if dt < !best_ptr then best_ptr := dt;
      let _, dt =
        wall (fun () -> Flat_sta.analyze ?required_times f ~jobs:1 ~delays)
      in
      if dt < !best_flat then best_flat := dt
    done;
    let r1 = Flat_sta.analyze ?required_times f ~jobs:1 ~delays in
    let r4 = Flat_sta.analyze ?required_times f ~jobs:4 ~delays in
    (* Bitwise, like test_flat.ml: (=) conflates 0. with -0. and never
       matches NaN, which is weaker than the byte-identical contract. *)
    let bits_equal a b =
      Array.length a = Array.length b
      && begin
           let ok = ref true in
           for i = 0 to Array.length a - 1 do
             if Int64.bits_of_float a.(i) <> Int64.bits_of_float b.(i) then
               ok := false
           done;
           !ok
         end
    in
    let jobs_identical =
      bits_equal r1.Flat_sta.arrival r4.Flat_sta.arrival
      && bits_equal r1.Flat_sta.required r4.Flat_sta.required
      && bits_equal r1.Flat_sta.slack r4.Flat_sta.slack
      && Int64.bits_of_float r1.Flat_sta.critical_delay
         = Int64.bits_of_float r4.Flat_sta.critical_delay
    in
    let g = float_of_int gates in
    {
      sc_name = name;
      sc_gates = gates;
      sc_nodes = n;
      sc_ns_per_gate = !best_flat *. 1e9 /. g;
      sc_ptr_ns_per_gate = !best_ptr *. 1e9 /. g;
      sc_speedup = !best_ptr /. !best_flat;
      sc_jobs_identical = jobs_identical;
    }
  in
  let sizes =
    if !quick then
      [ ("sta_100k", 100_000, 5); ("sta_constrained", 100_000, 5) ]
    else
      [
        ("sta_100k", 100_000, 8);
        ("sta_constrained", 100_000, 8);
        ("sta_1m", 1_000_000, 3);
      ]
  in
  List.map one sizes

(* Fleet throughput kernel: the same 64-job batch (s27 joint, one
   distinct operating point per job) through a 4-worker fleet vs a
   1-worker fleet. Both sides go through identical machinery — fresh
   worker processes, dispatch, heartbeats, result framing — with the
   workers spawned and connected by a warm-up batch outside the clock,
   so the ratio isolates what adding workers buys and the gated ns/job
   measures steady-state distribution cost, not one-time process spawn.
   (The in-process Service.run_batch path is deliberately NOT the
   timing baseline: by this point the bench process carries a large
   live heap from bechamel and the 100k-gate scale kernels, which
   inflates its per-job cost by ~2x vs a fresh process — a
   process-state artifact, not a fleet property. It still supplies the
   reference rows for the byte-identity check.) The row records the
   host's core count next to the speedup: on a single-core container
   extra workers cannot help (speedup ~1x is the honest reading there),
   while the same row shows real scaling on multi-core hosts. *)

type fleet_result = {
  fl_name : string;
  fl_jobs : int;
  fl_workers : int;
  fl_cpus : int;
  fl_ns_per_job : float; (* [fl_workers]-worker fleet, workers already up *)
  fl_w1_ns_per_job : float; (* 1-worker fleet, same machinery *)
  fl_speedup : float; (* 1-worker / [fl_workers]-worker *)
  fl_rows_identical : bool; (* fleet rows == in-process rows, bytewise *)
}

let measure_fleet () =
  let module Service = Dcopt_service.Service in
  let module Fleet = Dcopt_service.Fleet in
  let module Job = Dcopt_service.Job in
  let module Json = Dcopt_util.Json in
  (* the coordinator spawns `minpower worker`; bench/main.exe and
     bin/minpower.exe sit side by side in the build tree *)
  let binary =
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      (Filename.concat "bin" "minpower.exe")
  in
  if not (Sys.file_exists binary) then begin
    Printf.printf
      "\n(fleet kernel skipped: %s not built — run through dune so the \
       coordinator can spawn workers)\n"
      binary;
    []
  end
  else begin
    let n_jobs = 64 and workers = 4 in
    let job i =
      Job.make
        ~id:(Printf.sprintf "f%02d" i)
        ~optimizer:"joint"
        ~config:
          (Json.Obj
             [ ("clock_frequency", Json.Float (float_of_int (150 + i) *. 1e6)) ])
        "s27"
    in
    let jobs = List.init n_jobs job in
    let reps = if !quick then 2 else 3 in
    let row_strings rows =
      List.map (fun r -> Json.to_string (Job.row_to_json r)) rows
    in
    let timed_fleet ?listen n_workers =
      let fleet =
        Fleet.create (Fleet.options ~binary ~workers:n_workers ?listen ())
      in
      Fun.protect
        ~finally:(fun () -> Fleet.shutdown fleet)
        (fun () ->
          ignore (Fleet.run_batch fleet [ Job.make ~id:"warmup" "s27" ]);
          let best_dt = ref infinity and out = ref [] in
          for _ = 1 to reps do
            let rows, dt = wall (fun () -> Fleet.run_batch fleet jobs) in
            if dt < !best_dt then best_dt := dt;
            out := rows
          done;
          (!out, !best_dt))
    in
    let reference_rows = row_strings (Service.run_batch jobs) in
    let g = float_of_int n_jobs in
    (* the TCP row reruns the same batch with workers dialing back over
       loopback TCP instead of the unix socket: the delta against
       fleet_batch is the checksum-framed TCP transport cost per job *)
    let measure fl_name listen =
      let w1_rows, w1_dt = timed_fleet ?listen 1 in
      let wn_rows, wn_dt = timed_fleet ?listen workers in
      {
        fl_name;
        fl_jobs = n_jobs;
        fl_workers = workers;
        fl_cpus = Domain.recommended_domain_count ();
        fl_ns_per_job = wn_dt *. 1e9 /. g;
        fl_w1_ns_per_job = w1_dt *. 1e9 /. g;
        fl_speedup = w1_dt /. wn_dt;
        fl_rows_identical =
          row_strings w1_rows = reference_rows
          && row_strings wn_rows = reference_rows;
      }
    in
    [
      measure "fleet_batch" None;
      measure "fleet_tcp_batch"
        (Some (Dcopt_service.Wire.Tcp ("127.0.0.1", 0)));
    ]
  end

let write_timing_json path ~kernels ~full_joint ~incremental ~gate_count
    ~scale_results ~fleet_results =
  let esc = Dcopt_obs.Metrics.json_escape in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"schema\": \"dcopt-bench-timing/1\",\n";
  Printf.bprintf b "  \"quick\": %b,\n" !quick;
  Printf.bprintf b "  \"jobs\": %d,\n" (Dcopt_par.Par.jobs ());
  Buffer.add_string b "  \"kernels\": [\n";
  List.iteri
    (fun i (name, ns) ->
      Printf.bprintf b "    {\"name\": \"%s\", \"ns_per_run\": %s}%s\n"
        (esc name)
        (match ns with Some v -> Printf.sprintf "%.3f" v | None -> "null")
        (if i < List.length kernels - 1 then "," else ""))
    kernels;
  Buffer.add_string b "  ],\n  \"full_joint\": [\n";
  List.iteri
    (fun i (circuit, seconds) ->
      Printf.bprintf b "    {\"circuit\": \"%s\", \"seconds\": %.4f}%s\n"
        (esc circuit) seconds
        (if i < List.length full_joint - 1 then "," else ""))
    full_joint;
  Buffer.add_string b "  ],\n  \"incremental\": [\n";
  List.iteri
    (fun i (name, full_ns, incr_ns, dirty_per_move) ->
      Printf.bprintf b
        "    {\"name\": \"%s\", \"full_ns_per_move\": %.1f, \
         \"incr_ns_per_move\": %.1f, \"speedup\": %.2f, \
         \"dirty_gates_per_move\": %.2f, \"gate_count\": %d}%s\n"
        (esc name) full_ns incr_ns
        (full_ns /. Float.max 1e-9 incr_ns)
        dirty_per_move gate_count
        (if i < List.length incremental - 1 then "," else ""))
    incremental;
  Buffer.add_string b "  ],\n  \"scale\": [\n";
  List.iteri
    (fun i r ->
      Printf.bprintf b
        "    {\"name\": \"%s\", \"gates\": %d, \"nodes\": %d, \
         \"ns_per_gate\": %.3f, \"pointer_ns_per_gate\": %.3f, \
         \"speedup_vs_pointer\": %.2f, \"jobs_identical\": %b}%s\n"
        (esc r.sc_name) r.sc_gates r.sc_nodes r.sc_ns_per_gate
        r.sc_ptr_ns_per_gate r.sc_speedup r.sc_jobs_identical
        (if i < List.length scale_results - 1 then "," else ""))
    scale_results;
  Buffer.add_string b "  ],\n  \"fleet\": [\n";
  List.iteri
    (fun i r ->
      Printf.bprintf b
        "    {\"name\": \"%s\", \"jobs\": %d, \"workers\": %d, \"cpus\": %d, \
         \"ns_per_job\": %.1f, \"one_worker_ns_per_job\": %.1f, \
         \"speedup_vs_one_worker\": %.2f, \"rows_identical\": %b}%s\n"
        (esc r.fl_name) r.fl_jobs r.fl_workers r.fl_cpus r.fl_ns_per_job
        r.fl_w1_ns_per_job r.fl_speedup r.fl_rows_identical
        (if i < List.length fleet_results - 1 then "," else ""))
    fleet_results;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents b));
  Printf.printf "\nwrote kernel timings to %s\n" path

(* One bechamel pass over the kernel suite: [(name, ns_per_run option)],
   sorted by name. Factored out of [run_timing] so the regression gate can
   re-measure on a miss and take the per-kernel minimum. *)
let measure_kernels () =
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    if !quick then
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.05) ~stabilize:true ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"dcopt" (bechamel_tests ()))
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort compare
  |> List.map (fun (name, ols) ->
         let ns =
           match Analyze.OLS.estimates ols with
           | Some (est :: _) -> Some est
           | Some [] | None -> None
         in
         (name, ns))

(* ------------------------------------------------------------------ *)
(* Regression gate (bench timing --check BASELINE.json)                *)

module Bench_gate = Dcopt_obs.Bench_gate

let gate_measurements ~kernels ~incremental ~scale_results ~fleet_results =
  List.filter_map
    (fun (name, ns) ->
      match ns with
      | Some ns when ns > 0.0 ->
        Some { Bench_gate.name = "kernel:" ^ name; ns }
      | Some _ | None -> None)
    kernels
  @ List.map
      (fun (name, _full_ns, incr_ns, _dirty) ->
        { Bench_gate.name = "incr:" ^ name; ns = incr_ns })
      incremental
  @ List.map
      (fun r -> { Bench_gate.name = "scale:" ^ r.sc_name; ns = r.sc_ns_per_gate })
      scale_results
  @ List.map
      (fun r -> { Bench_gate.name = "fleet:" ^ r.fl_name; ns = r.fl_ns_per_job })
      fleet_results

let merge_min a b =
  List.map
    (fun (m : Bench_gate.measurement) ->
      match
        List.find_opt
          (fun (m' : Bench_gate.measurement) -> String.equal m'.name m.name)
          b
      with
      | Some m' -> { m with Bench_gate.ns = Float.min m.ns m'.ns }
      | None -> m)
    a

(* Quick-mode bechamel estimates scatter under parallel test load, so a
   single slow reading is not a regression: on a miss, re-measure and
   keep the per-kernel minimum — min-of-k is a far tighter estimator of
   the true cost than any single run — and only fail once the minimum of
   three passes still exceeds the threshold. *)
let run_gate ~baseline_path ~kernels ~incremental ~scale_results ~fleet_results
    =
  (* scale and fleet kernels are optional on the baseline side: a quick
     run without --scale legitimately skips the former, and a bench
     binary run without bin/minpower.exe built cannot spawn the latter
     (they gate whenever measured) *)
  let has_prefix p name =
    String.length name >= String.length p
    && String.sub name 0 (String.length p) = p
  in
  let optional name = has_prefix "scale:" name || has_prefix "fleet:" name in
  match Bench_gate.load_baseline baseline_path with
  | Error e ->
    Printf.eprintf "bench gate: %s\n" e;
    exit 1
  | Ok baseline ->
    let current =
      ref
        (gate_measurements ~kernels ~incremental ~scale_results ~fleet_results)
    in
    let max_attempts = 3 in
    let rec attempt n =
      let verdicts = Bench_gate.check ~baseline ~current:!current ~optional () in
      if Bench_gate.all_ok verdicts then
        Printf.printf
          "\nbench gate vs %s: ok (%d measurements within %.2fx)\n"
          baseline_path (List.length verdicts) Bench_gate.default_threshold
      else if n < max_attempts then begin
        Printf.printf
          "\nbench gate: %d measurement(s) over threshold; re-measuring \
           (attempt %d/%d)\n"
          (List.length (Bench_gate.failures verdicts))
          (n + 1) max_attempts;
        let kernels' = measure_kernels () in
        let incremental', _ = measure_incremental () in
        let scale_results' =
          if scale_results = [] then [] else measure_scale ()
        in
        let fleet_results' =
          if fleet_results = [] then [] else measure_fleet ()
        in
        current :=
          merge_min !current
            (gate_measurements ~kernels:kernels' ~incremental:incremental'
               ~scale_results:scale_results' ~fleet_results:fleet_results');
        attempt (n + 1)
      end
      else begin
        Printf.printf "\nbench gate vs %s: FAILED\n%s" baseline_path
          (Bench_gate.render verdicts);
        exit 1
      end
    in
    attempt 1

let run_timing () =
  header "Kernel timing (Bechamel, monotonic clock)";
  let kernels = measure_kernels () in
  let table =
    Dcopt_util.Text_table.create ~headers:[ "Kernel"; "Time per run" ]
  in
  List.iter
    (fun (name, ns) ->
      let cell =
        match ns with
        | Some est -> Dcopt_util.Si.format ~unit:"s" (est *. 1e-9)
        | None -> "n/a"
      in
      Dcopt_util.Text_table.add_row table [ name; cell ])
    kernels;
  Dcopt_util.Text_table.print table;
  (* the paper reports 5-20 s per circuit on 1997 hardware; report ours *)
  print_newline ();
  let t =
    Dcopt_util.Text_table.create
      ~headers:[ "Circuit"; "Full joint optimization" ]
  in
  let full_joint =
    List.map
      (fun name ->
        let p = Flow.prepare (Suite.find_exn name) in
        let _, dt = wall (fun () -> (Dcopt_core.Optimizer.get "joint").Dcopt_core.Optimizer.run
      (Dcopt_core.Scenario.of_prepared p)) in
        Dcopt_util.Text_table.add_row t [ name; Printf.sprintf "%.2f s" dt ];
        (name, dt))
      (if !quick then [ "s27" ] else [ "s27"; "s298"; "s344"; "s510" ])
  in
  Dcopt_util.Text_table.print t;
  print_endline
    "\n(The paper quotes 5-20 s per circuit on 1997 hardware for the same \
     O(M^3) procedure.)";
  print_newline ();
  let incremental, gate_count = measure_incremental () in
  let it =
    Dcopt_util.Text_table.create
      ~headers:
        [
          "Per-move path (s298)";
          "full";
          "incremental";
          "speedup";
          "dirty gates/move";
        ]
  in
  List.iter
    (fun (name, full_ns, incr_ns, dirty_per_move) ->
      Dcopt_util.Text_table.add_row it
        [
          name;
          Dcopt_util.Si.format ~unit:"s" (full_ns *. 1e-9);
          Dcopt_util.Si.format ~unit:"s" (incr_ns *. 1e-9);
          Printf.sprintf "%.1fx" (full_ns /. Float.max 1e-9 incr_ns);
          Printf.sprintf "%.1f of %d" dirty_per_move gate_count;
        ])
    incremental;
  Dcopt_util.Text_table.print it;
  let scale_results =
    if (not !quick) || !scale then begin
      print_newline ();
      let st =
        Dcopt_util.Text_table.create
          ~headers:
            [
              "Scale kernel (full STA)";
              "gates";
              "flat ns/gate";
              "pointer ns/gate";
              "speedup";
              "jobs 4 == jobs 1";
            ]
      in
      let results = measure_scale () in
      List.iter
        (fun r ->
          Dcopt_util.Text_table.add_row st
            [
              r.sc_name;
              string_of_int r.sc_gates;
              Printf.sprintf "%.2f" r.sc_ns_per_gate;
              Printf.sprintf "%.2f" r.sc_ptr_ns_per_gate;
              Printf.sprintf "%.2fx" r.sc_speedup;
              (if r.sc_jobs_identical then "yes" else "NO");
            ])
        results;
      Dcopt_util.Text_table.print st;
      (* the determinism contract is part of the bench, not just the test
         suite: a non-identical parallel result is a hard failure *)
      List.iter
        (fun r ->
          if not r.sc_jobs_identical then begin
            Printf.eprintf
              "scale kernel %s: --jobs 4 result differs from --jobs 1\n"
              r.sc_name;
            exit 1
          end)
        results;
      results
    end
    else []
  in
  let fleet_results =
    let results = measure_fleet () in
    if results <> [] then begin
      print_newline ();
      let ft =
        Dcopt_util.Text_table.create
          ~headers:
            [
              "Fleet kernel";
              "jobs";
              "workers";
              "cpus";
              "fleet ns/job";
              "1-worker ns/job";
              "speedup";
              "rows identical";
            ]
      in
      List.iter
        (fun r ->
          Dcopt_util.Text_table.add_row ft
            [
              r.fl_name;
              string_of_int r.fl_jobs;
              string_of_int r.fl_workers;
              string_of_int r.fl_cpus;
              Printf.sprintf "%.0f" r.fl_ns_per_job;
              Printf.sprintf "%.0f" r.fl_w1_ns_per_job;
              Printf.sprintf "%.2fx" r.fl_speedup;
              (if r.fl_rows_identical then "yes" else "NO");
            ])
        results;
      Dcopt_util.Text_table.print ft;
      (* same contract as the scale kernels: fleet rows that differ from
         the in-process path are a hard failure, not a table footnote *)
      List.iter
        (fun r ->
          if not r.fl_rows_identical then begin
            Printf.eprintf
              "fleet kernel %s: fleet rows differ from the in-process path\n"
              r.fl_name;
            exit 1
          end)
        results
    end;
    results
  in
  (match !json_out with
  | None -> ()
  | Some path ->
    write_timing_json path ~kernels ~full_joint ~incremental ~gate_count
      ~scale_results ~fleet_results);
  match !check_baseline with
  | None -> ()
  | Some baseline_path ->
    run_gate ~baseline_path ~kernels ~incremental ~scale_results ~fleet_results

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", run_table1);
    ("table2", run_table2);
    ("fig2a", run_fig2a);
    ("fig2b", run_fig2b);
    ("annealing", run_annealing);
    ("ablation-activity", run_ablation_activity);
    ("ablation-budget", run_ablation_budget);
    ("ablation-multivt", run_ablation_multivt);
    ("ablation-multivdd", run_ablation_multivdd);
    ("ablation-shortcircuit", run_ablation_short_circuit);
    ("yield", run_yield);
    ("scaling", run_scaling);
    ("glitch", run_glitch);
    ("state-activity", run_state_activity);
    ("ablation-sizing", run_ablation_sizing);
    ("ablation-fanin", run_ablation_fanin);
    ("pipeline", run_pipeline);
    ("temperature", run_temperature);
    ("timing", run_timing);
  ]

let () =
  let rec parse acc = function
    | [] -> List.rev acc
    | "--quick" :: rest ->
      quick := true;
      parse acc rest
    | "--scale" :: rest ->
      scale := true;
      parse acc rest
    | "--json" :: path :: rest ->
      json_out := Some path;
      parse acc rest
    | "--check" :: path :: rest ->
      check_baseline := Some path;
      parse acc rest
    | "--jobs" :: value :: rest ->
      (match int_of_string_opt value with
      | Some n when n >= 1 -> Dcopt_par.Par.set_jobs n
      | Some _ | None ->
        Printf.eprintf "--jobs expects an integer >= 1, got %S\n" value;
        exit 2);
      parse acc rest
    | ("--json" | "--jobs" | "--check") :: [] ->
      Printf.eprintf "--json/--jobs/--check expect an argument\n";
      exit 2
    | a :: rest -> parse (a :: acc) rest
  in
  let args =
    parse []
      (match Array.to_list Sys.argv with _ :: args -> args | [] -> [])
  in
  let requested =
    match args with
    | [] | [ "all" ] -> List.map fst experiments
    | args -> args
  in
  let unknown =
    List.filter (fun a -> not (List.mem_assoc a experiments)) requested
  in
  if unknown <> [] then begin
    Printf.eprintf "unknown experiment(s): %s\navailable: %s all\n"
      (String.concat " " unknown)
      (String.concat " " (List.map fst experiments));
    exit 2
  end;
  List.iter (fun name -> (List.assoc name experiments) ()) requested
