(** Fixed-size domain pool for the embarrassingly parallel optimizer
    sites, built on stdlib [Domain]/[Mutex]/[Condition] only.

    Design constraints, in priority order:

    - {b Determinism}: results come back in index order, and every call
      site computes in parallel but folds/emits sequentially, so a run
      with [--jobs 4] is bit-identical to [--jobs 1] — including
      telemetry streams and trial counts.
    - {b Degeneration}: [jobs () = 1] (the default) takes a plain
      sequential loop — no domains, no locks. A nested call from inside
      a running task also degenerates, so call sites never need to know
      whether their caller is already parallel.
    - {b Economy}: one process-global pool, lazily (re)built when the
      job count changes, joined via [at_exit].

    The job count defaults to [DCOPT_JOBS] (clamped to \[1, 64\], 1 when
    unset or unparsable) and can be overridden with {!set_jobs} (the
    [--jobs] flag of [minpower] and [bench/main.exe]).

    Exceptions raised by tasks are captured; the first one (in completion
    order) is re-raised with its backtrace on the caller after the whole
    batch has drained, so the pool is left reusable.

    Each batch records pool metrics in {!Dcopt_obs.Metrics} from the main
    domain only: the [par.tasks]/[par.batches] counters, the
    [par.domains] gauge, and — when [site] is given — a
    [par.latency.<site>] histogram of per-task wall-clock seconds. *)

val jobs : unit -> int
(** Current global job count (>= 1). *)

val set_jobs : int -> unit
(** Set the global job count; clamped to at most 64. Raises
    [Invalid_argument] when below 1. The pool is resized lazily at the
    next parallel call. *)

val parallel_for : ?site:string -> ?jobs:int -> n:int -> (int -> unit) -> unit
(** [parallel_for ~n f] runs [f 0 .. f (n-1)], spreading indices over
    [min jobs n] domains (the caller participates). [f] must only write
    to disjoint per-index state; the call returns after every index
    completed (or the first captured exception is re-raised). *)

val map : ?site:string -> ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map f a] is [Array.map f a] with the applications spread over the
    pool; results are positioned by index, so the output order never
    depends on scheduling. *)

val map_list : ?site:string -> ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map] over a list, preserving order. *)

val shutdown : unit -> unit
(** Join the worker domains (idempotent; also installed via [at_exit]).
    The pool respawns on the next parallel call. *)
