module Metrics = Dcopt_obs.Metrics

(* ------------------------------------------------------------------ *)
(* Job-count configuration                                             *)

let max_jobs = 64

let env_default () =
  match Sys.getenv_opt "DCOPT_JOBS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> min n max_jobs
    | Some _ | None -> 1)

let global_jobs = ref (env_default ())

let jobs () = !global_jobs

let set_jobs n =
  if n < 1 then invalid_arg "Par.set_jobs: jobs < 1";
  global_jobs := min n max_jobs

(* A task spawned from inside a batch (a nested Par call) must not submit
   to the pool it is running on — that deadlocks a 1-worker pool and
   scrambles determinism everywhere else. The flag makes nested calls
   degenerate to the sequential path. *)
let in_batch_key = Domain.DLS.new_key (fun () -> false)

(* ------------------------------------------------------------------ *)
(* Pool metrics (registered lazily; updated from the main domain only)  *)

let tasks_counter =
  lazy (Metrics.counter ~help:"tasks executed by the Par pool" "par.tasks")

let batches_counter =
  lazy (Metrics.counter ~help:"batches submitted to the Par pool" "par.batches")

let domains_gauge =
  lazy
    (Metrics.gauge ~help:"domains used by the most recent Par batch"
       "par.domains")

let site_histogram site =
  Metrics.histogram
    ~help:"per-task wall-clock latency at this parallel site, s"
    ("par.latency." ^ site)

(* ------------------------------------------------------------------ *)
(* The domain pool                                                     *)

type batch = {
  b_count : int;
  b_run : int -> unit; (* never raises; exceptions are captured *)
  b_next : int Atomic.t;
  b_done : int Atomic.t;
}

type pool = {
  p_workers : int; (* worker domains; the caller participates too *)
  p_mutex : Mutex.t;
  p_work : Condition.t; (* new batch or shutdown *)
  p_finished : Condition.t; (* a batch completed its last task *)
  mutable p_batch : batch option;
  mutable p_generation : int;
  mutable p_shutdown : bool;
  mutable p_domains : unit Domain.t list;
}

let run_tasks pool batch =
  let rec claim () =
    let i = Atomic.fetch_and_add batch.b_next 1 in
    if i < batch.b_count then begin
      batch.b_run i;
      let completed = 1 + Atomic.fetch_and_add batch.b_done 1 in
      if completed = batch.b_count then begin
        Mutex.lock pool.p_mutex;
        Condition.broadcast pool.p_finished;
        Mutex.unlock pool.p_mutex
      end;
      claim ()
    end
  in
  claim ()

let worker pool =
  Domain.DLS.set in_batch_key true;
  let last_generation = ref 0 in
  let rec loop () =
    Mutex.lock pool.p_mutex;
    while (not pool.p_shutdown) && pool.p_generation = !last_generation do
      Condition.wait pool.p_work pool.p_mutex
    done;
    if pool.p_shutdown then Mutex.unlock pool.p_mutex
    else begin
      last_generation := pool.p_generation;
      let batch = pool.p_batch in
      Mutex.unlock pool.p_mutex;
      (match batch with Some b -> run_tasks pool b | None -> ());
      loop ()
    end
  in
  loop ()

let the_pool : pool option ref = ref None
let exit_hook_installed = ref false

let shutdown () =
  match !the_pool with
  | None -> ()
  | Some pool ->
    Mutex.lock pool.p_mutex;
    pool.p_shutdown <- true;
    Condition.broadcast pool.p_work;
    Mutex.unlock pool.p_mutex;
    List.iter Domain.join pool.p_domains;
    the_pool := None

let ensure_pool workers =
  (match !the_pool with
  | Some pool when pool.p_workers <> workers -> shutdown ()
  | Some _ | None -> ());
  match !the_pool with
  | Some pool -> pool
  | None ->
    let pool =
      {
        p_workers = workers;
        p_mutex = Mutex.create ();
        p_work = Condition.create ();
        p_finished = Condition.create ();
        p_batch = None;
        p_generation = 0;
        p_shutdown = false;
        p_domains = [];
      }
    in
    pool.p_domains <-
      List.init workers (fun _ -> Domain.spawn (fun () -> worker pool));
    the_pool := Some pool;
    if not !exit_hook_installed then begin
      exit_hook_installed := true;
      at_exit shutdown
    end;
    pool

let run_batch ~workers ~count run =
  let pool = ensure_pool workers in
  let batch =
    { b_count = count; b_run = run; b_next = Atomic.make 0;
      b_done = Atomic.make 0 }
  in
  Mutex.lock pool.p_mutex;
  pool.p_batch <- Some batch;
  pool.p_generation <- pool.p_generation + 1;
  Condition.broadcast pool.p_work;
  Mutex.unlock pool.p_mutex;
  (* the caller is a full participant, flagged so nested Par calls inside
     its own tasks stay sequential *)
  Domain.DLS.set in_batch_key true;
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set in_batch_key false)
    (fun () -> run_tasks pool batch);
  Mutex.lock pool.p_mutex;
  while Atomic.get batch.b_done < count do
    Condition.wait pool.p_finished pool.p_mutex
  done;
  pool.p_batch <- None;
  Mutex.unlock pool.p_mutex

(* ------------------------------------------------------------------ *)
(* Public entry points                                                 *)

let parallel_for ?site ?jobs:requested ~n f =
  if n > 0 then begin
    let nested = Domain.DLS.get in_batch_key in
    let requested =
      match requested with Some j -> max 1 (min j max_jobs) | None -> jobs ()
    in
    let domains = if nested || n = 1 then 1 else min requested n in
    let latencies = Array.make n 0.0 in
    let failure = Atomic.make None in
    let run i =
      match Atomic.get failure with
      | Some _ -> () (* a task already failed: drain the rest cheaply *)
      | None -> (
        try
          let t0 = Unix.gettimeofday () in
          f i;
          latencies.(i) <- Unix.gettimeofday () -. t0
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set failure None (Some (e, bt))))
    in
    if domains = 1 then
      for i = 0 to n - 1 do
        run i
      done
    else run_batch ~workers:(domains - 1) ~count:n run;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    (* metrics are not domain-safe beyond counters: record on the main
       domain only, after the batch barrier *)
    if Domain.is_main_domain () && not nested then begin
      Metrics.incr ~by:n (Lazy.force tasks_counter);
      Metrics.incr (Lazy.force batches_counter);
      Metrics.set (Lazy.force domains_gauge) (float_of_int domains);
      match site with
      | None -> ()
      | Some site ->
        let h = site_histogram site in
        Array.iter (fun l -> Metrics.observe h l) latencies
    end
  end

let map ?site ?jobs f input =
  let n = Array.length input in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for ?site ?jobs ~n (fun i -> out.(i) <- Some (f input.(i)));
    Array.map
      (function Some v -> v | None -> assert false (* barrier passed *))
      out
  end

let map_list ?site ?jobs f l =
  Array.to_list (map ?site ?jobs f (Array.of_list l))
