module Json = Dcopt_util.Json

(* Bumped whenever a frame changes shape; a worker whose hello carries a
   different version is refused, so a mixed-version fleet fails loudly at
   connect time instead of corrupting a batch.
   v2: every frame carries an FNV-1a 64 checksum envelope. *)
let protocol_version = 2

type to_worker =
  | Assign of { seq : int; batch_id : int; job : Job.t }
  | Shutdown

type from_worker =
  | Hello of { worker_id : string; pid : int; version : int }
  | Heartbeat
  | Result of { seq : int; row : Job.row }

let to_worker_to_json = function
  | Assign { seq; batch_id; job } ->
    Json.Obj
      [
        ("frame", Json.String "job");
        ("seq", Json.Int seq);
        ("batch_id", Json.Int batch_id);
        ("job", Job.to_json job);
      ]
  | Shutdown -> Json.Obj [ ("frame", Json.String "shutdown") ]

let from_worker_to_json = function
  | Hello { worker_id; pid; version } ->
    Json.Obj
      [
        ("frame", Json.String "hello");
        ("worker_id", Json.String worker_id);
        ("pid", Json.Int pid);
        ("version", Json.Int version);
      ]
  | Heartbeat -> Json.Obj [ ("frame", Json.String "heartbeat") ]
  | Result { seq; row } ->
    Json.Obj
      [
        ("frame", Json.String "result");
        ("seq", Json.Int seq);
        ("row", Job.row_to_json row);
      ]

(* --- checksum envelope ------------------------------------------------- *)

(* A TCP fleet crosses real networks, and a corrupted-but-still-valid
   JSON frame would silently break byte-identity (a damaged result row
   would be recorded as the answer). Every frame line is therefore
   "!<hex16 fnv-1a-64 of payload>:<payload json>": a checksum mismatch
   is a parse error, which costs the peer the connection — the requeue
   path recomputes, so corruption can delay a batch but never change
   its rows. *)
let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
             0x100000001b3L)
    s;
  !h

let frame_line payload = Printf.sprintf "!%016Lx:%s" (fnv64 payload) payload
let encode json = frame_line (Json.to_string json)

let is_hex c =
  (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let decode line =
  let n = String.length line in
  if n < 18 || line.[0] <> '!' || line.[17] <> ':' then
    Error "frame is missing its checksum envelope"
  else
    let sum = String.sub line 1 16 in
    if not (String.for_all is_hex sum) then
      Error "frame checksum is not 16 hex digits"
    else
      let payload = String.sub line 18 (n - 18) in
      let want = Int64.of_string ("0x" ^ sum) in
      if Int64.equal want (fnv64 payload) then Ok payload
      else Error "frame checksum mismatch"

let ( let* ) = Result.bind

let parse_frame line =
  let* payload = decode line in
  match Json.of_string payload with
  | Error msg -> Error ("frame is not JSON: " ^ msg)
  | Ok json -> (
    match Option.bind (Json.field "frame" json) Json.get_string with
    | None -> Error "frame has no string \"frame\" member"
    | Some kind -> Ok (kind, json))

let int_field name json =
  match Option.bind (Json.field name json) Json.get_int with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "frame is missing integer %S" name)

let string_field name json =
  match Option.bind (Json.field name json) Json.get_string with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "frame is missing string %S" name)

let sub_field name json =
  match Json.field name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "frame is missing %S" name)

let to_worker_of_line line =
  let* kind, json = parse_frame line in
  match kind with
  | "job" ->
    let* seq = int_field "seq" json in
    let* batch_id = int_field "batch_id" json in
    let* spec = sub_field "job" json in
    let* job = Job.of_json spec in
    Ok (Assign { seq; batch_id; job })
  | "shutdown" -> Ok Shutdown
  | other -> Error (Printf.sprintf "unknown coordinator frame %S" other)

let from_worker_of_line line =
  let* kind, json = parse_frame line in
  match kind with
  | "hello" ->
    let* worker_id = string_field "worker_id" json in
    let* pid = int_field "pid" json in
    let* version = int_field "version" json in
    Ok (Hello { worker_id; pid; version })
  | "heartbeat" -> Ok Heartbeat
  | "result" ->
    let* seq = int_field "seq" json in
    let* row = sub_field "row" json in
    let* row = Job.row_of_json row in
    Ok (Result { seq; row })
  | other -> Error (Printf.sprintf "unknown worker frame %S" other)

(* Frames are newline-delimited documents written whole. A frame never
   contains a raw newline (Json.to_string escapes them and the envelope
   is hex), so the reader can reassemble on '\n' alone. *)
let write_string fd line =
  let bytes = Bytes.of_string line in
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    let n =
      try Unix.write fd bytes !off (len - !off)
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    off := !off + n
  done

let write_frame fd json = write_string fd (encode json ^ "\n")

(* The faultable writer: what every production send goes through. The
   fault actions model a misbehaving transport at the byte level —
   whatever they do to this frame, the receiving parser sees it as
   garbage at worst, and the fleet's loss/requeue machinery turns that
   into a recomputation, never into a wrong row. *)
let send ~site fd json =
  let line =
    List.fold_left
      (fun line action ->
        match (line, action) with
        | None, _ -> None
        | Some _, Faults.Drop -> None
        | Some l, Faults.Delay s ->
          (try Unix.sleepf s with Unix.Unix_error _ -> ());
          Some l
        | Some l, Faults.Truncate n ->
          Some (String.sub l 0 (min (max n 0) (String.length l)))
        | Some l, Faults.Corrupt -> Some (Faults.corrupt_string l)
        | Some l, _ -> Some l)
      (Some (encode json ^ "\n"))
      (Faults.fire site)
  in
  match line with None -> () | Some line -> write_string fd line

(* --- addresses --------------------------------------------------------- *)

type addr = Unix_path of string | Tcp of string * int

let string_of_addr = function
  | Unix_path p -> p
  | Tcp (h, p) ->
    if String.contains h ':' then Printf.sprintf "[%s]:%d" h p
    else Printf.sprintf "%s:%d" h p

let port_of s =
  match int_of_string_opt s with
  | None -> Error (Printf.sprintf "port %S is not an integer" s)
  | Some p when p < 0 || p > 65535 ->
    Error (Printf.sprintf "port %d is outside 0..65535" p)
  | Some p -> Ok p

let addr_of_string s =
  let n = String.length s in
  if n = 0 then Error "empty address"
  else if String.contains s '/' then Ok (Unix_path s)
  else if s.[0] = '[' then
    (* "[v6-literal]:port" *)
    match String.index_opt s ']' with
    | None -> Error (Printf.sprintf "%S: unterminated '[' (want [host]:port)" s)
    | Some i ->
      let host = String.sub s 1 (i - 1) in
      if i + 1 >= n || s.[i + 1] <> ':' then
        Error (Printf.sprintf "%S: expected :port after ']'" s)
      else
        Result.bind (port_of (String.sub s (i + 2) (n - i - 2))) (fun p ->
            if host = "" then Error (Printf.sprintf "%S: empty host" s)
            else Ok (Tcp (host, p)))
  else
    match String.rindex_opt s ':' with
    | None -> Ok (Unix_path s)
    | Some i ->
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (n - i - 1) in
      if host = "" then Error (Printf.sprintf "%S: empty host before ':'" s)
      else if String.contains host ':' then
        Error
          (Printf.sprintf
             "%S: bracket IPv6 literals as [host]:port (a unix socket path \
              needs a '/')"
             s)
      else
        Result.bind (port_of port) (fun p ->
            Ok (Tcp (host, p)))

let sockaddr_of = function
  | Unix_path path -> Ok (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Tcp (host, port) -> (
    match Unix.inet_addr_of_string host with
    | ip ->
      let sa = Unix.ADDR_INET (ip, port) in
      Ok (Unix.domain_of_sockaddr sa, sa)
    | exception Failure _ -> (
      (* not a literal: resolve, preferring whatever the resolver ranks
         first, streams only *)
      match
        Unix.getaddrinfo host (string_of_int port)
          [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
      with
      | exception _ -> Error (Printf.sprintf "cannot resolve host %S" host)
      | infos -> (
        match
          List.find_opt
            (fun ai ->
              match ai.Unix.ai_addr with
              | Unix.ADDR_INET _ -> true
              | _ -> false)
            infos
        with
        | Some ai -> Ok (Unix.domain_of_sockaddr ai.Unix.ai_addr, ai.Unix.ai_addr)
        | None -> Error (Printf.sprintf "unknown host %S" host))))

let connect_sockaddr (domain, sockaddr) =
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sockaddr
   with e ->
     Unix.close fd;
     raise e);
  fd

let connect addr =
  match addr with
  | Tcp (_, 0) ->
    Error
      (Printf.sprintf
         "%s: port 0 is the ephemeral listen port; nothing can connect to it"
         (string_of_addr addr))
  | _ -> Result.map connect_sockaddr (sockaddr_of addr)

let listen ?(backlog = 16) addr =
  (match addr with
  | Unix_path path -> if Sys.file_exists path then Sys.remove path
  | Tcp _ -> ());
  match sockaddr_of addr with
  | Error _ as e -> e
  | Ok (domain, sockaddr) ->
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd sockaddr;
       Unix.listen fd backlog
     with e ->
       Unix.close fd;
       raise e);
    Ok fd

let bound_addr fd addr =
  match addr with
  | Unix_path _ -> addr
  | Tcp (host, _) -> (
    (* port 0 asked the kernel to pick: read the real one back *)
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, port) -> Tcp (host, port)
    | _ | (exception Unix.Unix_error _) -> addr)
