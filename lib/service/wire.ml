module Json = Dcopt_util.Json

(* Bumped whenever a frame changes shape; a worker whose hello carries a
   different version is refused, so a mixed-version fleet fails loudly at
   connect time instead of corrupting a batch. *)
let protocol_version = 1

type to_worker =
  | Assign of { seq : int; batch_id : int; job : Job.t }
  | Shutdown

type from_worker =
  | Hello of { worker_id : string; pid : int; version : int }
  | Heartbeat
  | Result of { seq : int; row : Job.row }

let to_worker_to_json = function
  | Assign { seq; batch_id; job } ->
    Json.Obj
      [
        ("frame", Json.String "job");
        ("seq", Json.Int seq);
        ("batch_id", Json.Int batch_id);
        ("job", Job.to_json job);
      ]
  | Shutdown -> Json.Obj [ ("frame", Json.String "shutdown") ]

let from_worker_to_json = function
  | Hello { worker_id; pid; version } ->
    Json.Obj
      [
        ("frame", Json.String "hello");
        ("worker_id", Json.String worker_id);
        ("pid", Json.Int pid);
        ("version", Json.Int version);
      ]
  | Heartbeat -> Json.Obj [ ("frame", Json.String "heartbeat") ]
  | Result { seq; row } ->
    Json.Obj
      [
        ("frame", Json.String "result");
        ("seq", Json.Int seq);
        ("row", Job.row_to_json row);
      ]

let ( let* ) = Result.bind

let parse_frame line =
  match Json.of_string line with
  | Error msg -> Error ("frame is not JSON: " ^ msg)
  | Ok json -> (
    match Option.bind (Json.field "frame" json) Json.get_string with
    | None -> Error "frame has no string \"frame\" member"
    | Some kind -> Ok (kind, json))

let int_field name json =
  match Option.bind (Json.field name json) Json.get_int with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "frame is missing integer %S" name)

let string_field name json =
  match Option.bind (Json.field name json) Json.get_string with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "frame is missing string %S" name)

let sub_field name json =
  match Json.field name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "frame is missing %S" name)

let to_worker_of_line line =
  let* kind, json = parse_frame line in
  match kind with
  | "job" ->
    let* seq = int_field "seq" json in
    let* batch_id = int_field "batch_id" json in
    let* spec = sub_field "job" json in
    let* job = Job.of_json spec in
    Ok (Assign { seq; batch_id; job })
  | "shutdown" -> Ok Shutdown
  | other -> Error (Printf.sprintf "unknown coordinator frame %S" other)

let from_worker_of_line line =
  let* kind, json = parse_frame line in
  match kind with
  | "hello" ->
    let* worker_id = string_field "worker_id" json in
    let* pid = int_field "pid" json in
    let* version = int_field "version" json in
    Ok (Hello { worker_id; pid; version })
  | "heartbeat" -> Ok Heartbeat
  | "result" ->
    let* seq = int_field "seq" json in
    let* row = sub_field "row" json in
    let* row = Job.row_of_json row in
    Ok (Result { seq; row })
  | other -> Error (Printf.sprintf "unknown worker frame %S" other)

(* Frames are newline-delimited JSON documents written whole. A frame
   never contains a raw newline (Json.to_string escapes them), so the
   reader can reassemble on '\n' alone. *)
let write_frame fd json =
  let line = Json.to_string json ^ "\n" in
  let bytes = Bytes.of_string line in
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    let n =
      try Unix.write fd bytes !off (len - !off)
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    off := !off + n
  done

(* Coordinator addresses: "host:port" (with an integral port and no '/')
   is TCP, anything else is a unix-domain socket path. *)
type addr = Unix_path of string | Tcp of string * int

let addr_of_string s =
  if String.contains s '/' then Unix_path s
  else
    match String.rindex_opt s ':' with
    | None -> Unix_path s
    | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when host <> "" && p > 0 && p < 65536 -> Tcp (host, p)
      | _ -> Unix_path s)

let sockaddr_of = function
  | Unix_path path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Tcp (host, port) ->
    let ip =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_of_string host
    in
    (Unix.PF_INET, Unix.ADDR_INET (ip, port))

let connect addr =
  let domain, sockaddr = sockaddr_of addr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sockaddr
   with e ->
     Unix.close fd;
     raise e);
  fd

let listen ?(backlog = 16) addr =
  (match addr with
  | Unix_path path -> if Sys.file_exists path then Sys.remove path
  | Tcp _ -> ());
  let domain, sockaddr = sockaddr_of addr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd sockaddr;
     Unix.listen fd backlog
   with e ->
     Unix.close fd;
     raise e);
  fd
