(** Crash-safe per-job checkpoints for [minpower batch].

    A checkpoint directory holds one atomically-written entry per
    completed job, keyed by the same {!Store.digest} as the result cache
    and in the same versioned value format
    ({!Job.outcome_to_store_json}), but written from the worker domain
    {e the moment} the job finishes — not at the batch barrier — so a
    batch killed mid-run (SIGKILL included) loses at most the jobs still
    in flight. Re-running the same batch with the same directory skips
    every checkpointed job and produces byte-identical result rows.

    Missing entries are quiet misses; entries that exist but cannot be
    decoded count under [service.store.corrupt] and rerun. Hits and
    writes count under [service.checkpoint.hits] /
    [service.checkpoint.writes]. *)

type t

val open_ : string -> t
(** Open (creating, parents included) a checkpoint directory. Raises
    [Sys_error] when the path exists but is not a directory. *)

val dir : t -> string

val find : t -> string -> Job.outcome option
(** Look up a job digest; [None] on absence or on a corrupt entry. *)

val record : t -> string -> Job.outcome -> unit
(** Atomically persist a completed job's outcome. [Failed] outcomes are
    never written — a crash is worth retrying on resume. Safe to call
    from worker domains (distinct keys; atomic rename; counters only). *)
