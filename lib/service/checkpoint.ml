module Metrics = Dcopt_obs.Metrics

(* A checkpoint is a Store pointed at its own directory: same digest
   keys, same atomic tmp+rename writes, same value documents
   (Job.outcome_to_store_json). What differs is the write discipline —
   entries are recorded from worker domains right as each job finishes,
   not at the batch barrier, so a kill mid-batch loses at most the jobs
   still in flight. *)
type t = { store : Store.t }

let hits_c =
  Metrics.counter ~help:"Batch jobs resumed from a checkpoint directory"
    "service.checkpoint.hits"

let writes_c =
  Metrics.counter ~help:"Per-job batch checkpoints written"
    "service.checkpoint.writes"

let open_ path = { store = Store.open_ path }
let dir t = Store.dir t.store

let find t key =
  match Store.find t.store key with
  | None -> None
  | Some doc -> (
    match Job.outcome_of_store_json doc with
    | Some outcome ->
      Metrics.incr hits_c;
      Some outcome
    | None ->
      (* parsed as JSON but not as an outcome document: corrupt = miss,
         same policy as an unreadable store entry *)
      Store.note_corrupt ();
      None)

let record t key outcome =
  match Job.outcome_to_store_json outcome with
  | None -> () (* Failed outcomes are never checkpointed *)
  | Some doc ->
    Store.put t.store key doc;
    Metrics.incr writes_c
