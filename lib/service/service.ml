module Flow = Dcopt_core.Flow
module Optimizer = Dcopt_core.Optimizer
module Scenario = Dcopt_core.Scenario
module Sdc = Dcopt_timing.Sdc
module Constraints = Dcopt_timing.Constraints
module Diag = Dcopt_util.Diag
module Par = Dcopt_par.Par
module Metrics = Dcopt_obs.Metrics
module Span = Dcopt_obs.Span
module Clock = Dcopt_obs.Clock
module Events = Dcopt_obs.Events
module Json = Dcopt_util.Json

let jobs_c = Metrics.counter ~help:"Jobs submitted to the service" "service.jobs"
let solved_c = Metrics.counter ~help:"Jobs that found a design" "service.solved"

let infeasible_c =
  Metrics.counter ~help:"Jobs whose optimizer closed no timing" "service.infeasible"

let failed_c =
  Metrics.counter ~help:"Jobs that failed after all retries" "service.failed"

let retries_c =
  Metrics.counter ~help:"Re-attempts after a crash or timeout" "service.retries"

let cache_hits_c =
  Metrics.counter ~help:"Jobs answered from the result store or an identical \
                         sibling" "service.cache.hits"

let cache_misses_c =
  Metrics.counter ~help:"Jobs that had to compute" "service.cache.misses"

let queue_depth_g =
  Metrics.gauge ~help:"Distinct computations scheduled by the running batch"
    "service.queue_depth"

let in_flight_g =
  Metrics.gauge ~help:"Worker domains occupied by the running batch"
    "service.in_flight"

let latency_h =
  Metrics.histogram ~help:"Per-job compute seconds (all attempts)"
    "service.latency"

let attempts_h =
  Metrics.histogram ~help:"Attempts per computed job" "service.attempts"

let wall_ns_h =
  Metrics.histogram ~help:"Per-job compute wall-clock nanoseconds"
    "service.job.wall_ns"

let alloc_bytes_h =
  Metrics.histogram
    ~help:"Per-job bytes allocated on the computing domain's minor+major heap"
    "service.job.alloc_bytes"

(* Monotonic batch sequence for the correlation chain: every run_batch —
   including each single-job batch a serve loop runs — gets a fresh id
   that all its events carry. *)
let batch_seq = Atomic.make 0

exception Timed_out

let resolve_circuit spec =
  if Sys.file_exists spec then
    try Ok (Dcopt_netlist.Bench_format.parse_file spec)
    with Dcopt_netlist.Bench_format.Parse_error { line; message } ->
      Error (Printf.sprintf "%s:%d: %s" spec line message)
  else Dcopt_suite.Suite.find spec

(* A job whose inputs all resolved: ready to digest and run. *)
type resolved = {
  optimizer : Optimizer.t;
  config : Flow.config;
  circuit : Dcopt_netlist.Circuit.t;
  constraints : Constraints.t option;
  corners : Scenario.corner list option;
  key : string;
  timeout_s : float option;
  retries : int;
}

let ( let* ) = Result.bind

let scenarios_schema_version = 1

(* The [scenarios] job field: both members optional, any resolution
   failure (unreadable/diagnosed SDC, bad corner entry) is a typed
   per-job error. *)
let resolve_scenarios circuit = function
  | None -> Ok (None, None)
  | Some sc ->
    let* () =
      match Json.get_obj sc with
      | None -> Error "scenarios: must be an object"
      | Some members ->
        List.fold_left
          (fun acc (name, _) ->
            let* () = acc in
            match name with
            | "version" | "sdc" | "corners" -> Ok ()
            | other ->
              Error (Printf.sprintf "scenarios: unknown field %S" other))
          (Ok ()) members
    in
    let* () =
      match Json.field "version" sc with
      | Some v when Json.get_int v = Some scenarios_schema_version -> Ok ()
      | Some _ -> Error "scenarios: unsupported schema version"
      | None -> Error "scenarios: missing \"version\""
    in
    let* constraints =
      match Json.field "sdc" sc with
      | None -> Ok None
      | Some v -> (
        match Json.get_string v with
        | None -> Error "scenarios: \"sdc\" must be a file path"
        | Some path -> (
          match Sdc.parse_file_checked ~circuit path with
          | Ok c -> Ok (Some c)
          | Error diags ->
            Error
              ("sdc: "
              ^ String.concat "; " (List.map Diag.to_string diags))))
    in
    let* corners =
      match Json.field "corners" sc with
      | None -> Ok None
      | Some v -> (
        match Scenario.corners_of_json v with
        | Ok ks -> Ok (Some ks)
        | Error msg -> Error msg)
    in
    Ok (constraints, corners)

(* A canonical scenario rendering for the store key — present only for
   jobs that carry a [scenarios] field, so scenario-less digests (and
   every cached pre-scenario row) are unchanged. *)
let scenario_digest_string constraints corners =
  let c_part =
    match constraints with
    | None -> "-"
    | Some c -> Json.to_string (Constraints.to_json c)
  in
  let k_part =
    match corners with
    | None -> "-"
    | Some ks -> Scenario.corners_digest_string ks
  in
  "scenario\n" ^ c_part ^ "\n" ^ k_part

let resolve_job (job : Job.t) =
  let* circuit = resolve_circuit job.Job.circuit in
  let* optimizer =
    match Optimizer.find job.Job.optimizer with
    | Some o -> Ok o
    | None ->
      Error
        (Printf.sprintf "unknown optimizer %S (known: %s)" job.Job.optimizer
           (String.concat ", " (Optimizer.names ())))
  in
  let* config =
    match job.Job.config with
    | None -> Ok Flow.default_config
    | Some overrides -> (
      match Flow.config_of_json overrides with
      | Ok c -> Ok c
      | Error msg -> Error ("config: " ^ msg))
  in
  let* constraints, corners = resolve_scenarios circuit job.Job.scenarios in
  let scenario =
    match job.Job.scenarios with
    | None -> None
    | Some _ -> Some (scenario_digest_string constraints corners)
  in
  let key =
    Store.digest ?scenario ~optimizer:optimizer.Optimizer.name ~config circuit
  in
  Ok
    {
      optimizer;
      config;
      circuit;
      constraints;
      corners;
      key;
      timeout_s = job.Job.timeout_s;
      retries = job.Job.retries;
    }

(* Store/checkpoint entries share one value format (Job); a document
   that exists but decodes to no outcome is a corrupt entry: a counted
   miss, never a crash. *)
let outcome_of_store doc =
  match Job.outcome_of_store_json doc with
  | Some _ as r -> r
  | None ->
    Store.note_corrupt ();
    None

type computed = {
  comp_outcome : Job.outcome;
  comp_attempts : int;
  comp_latency_s : float;
  comp_wall_ns : int64;
  comp_alloc_bytes : float;
}

let outcome_status = function
  | Job.Solved _ -> "solved"
  | Job.Infeasible -> "infeasible"
  | Job.Failed _ -> "failed"

(* One computation, fully isolated: any exception out of prepare or the
   optimizer — including the cooperative [Timed_out] the injected
   observer raises past the deadline — is retried up to [retries] times
   and then recorded as [Failed]. Runs on a pool worker, so it touches
   only counters (atomic), spans (per-domain) and events (mutexed sink) —
   never gauges/histograms; wall time and allocation are measured here
   and folded into histograms after the pool barrier, on the main domain.
   [Gc.allocated_bytes] is per-domain and a task never migrates, so the
   delta is this job's allocation (plus any event/span bookkeeping, which
   is noise at job scale). *)
let compute r =
  let t0 = Clock.now_ns () in
  let alloc0 = Gc.allocated_bytes () in
  Events.info "job.start"
    ~fields:
      [
        ("optimizer", Json.String r.optimizer.Optimizer.name);
        ("digest", Json.String r.key);
      ];
  let attempts_allowed = r.retries + 1 in
  let rec go attempt =
    let deadline =
      match r.timeout_s with
      | None -> Int64.max_int
      | Some s -> Int64.add (Clock.now_ns ()) (Int64.of_float (s *. 1e9))
    in
    let observer _it =
      if Int64.compare (Clock.now_ns ()) deadline > 0 then raise Timed_out
    in
    match
      let p = Flow.prepare ~config:r.config ?constraints:r.constraints
          r.circuit in
      let s =
        match r.corners with
        | None -> Scenario.of_prepared p
        | Some corners -> Scenario.make ~corners p
      in
      r.optimizer.Optimizer.run ~observer s
    with
    | Some sol -> (Job.Solved sol, attempt)
    | None -> (Job.Infeasible, attempt)
    | exception e ->
      let error =
        match e with
        | Timed_out ->
          Printf.sprintf "timed out after %gs"
            (match r.timeout_s with Some s -> s | None -> 0.0)
        | e -> Printexc.to_string e
      in
      if attempt < attempts_allowed then begin
        Metrics.incr retries_c;
        Events.warn "job.retry"
          ~fields:
            [ ("attempt", Json.Int attempt); ("error", Json.String error) ];
        go (attempt + 1)
      end
      else (Job.Failed { error; attempts = attempt }, attempt)
  in
  let outcome, attempts =
    Span.with_ "service.job"
      ~args:[ ("optimizer", r.optimizer.Optimizer.name); ("digest", r.key) ]
      (fun () -> go 1)
  in
  let wall_ns = Int64.sub (Clock.now_ns ()) t0 in
  let alloc_bytes = Gc.allocated_bytes () -. alloc0 in
  (match outcome with
  | Job.Failed { error; _ } ->
    Events.error "job.failed"
      ~fields:
        [ ("attempts", Json.Int attempts); ("error", Json.String error) ]
  | Job.Solved _ | Job.Infeasible ->
    Events.info "job.done"
      ~fields:
        [
          ("status", Json.String (outcome_status outcome));
          ("attempts", Json.Int attempts);
          ("wall_ns", Json.Int (Int64.to_int wall_ns));
          ("alloc_bytes", Json.Float alloc_bytes);
        ]);
  {
    comp_outcome = outcome;
    comp_attempts = attempts;
    comp_latency_s = Clock.ns_to_s wall_ns;
    comp_wall_ns = wall_ns;
    comp_alloc_bytes = alloc_bytes;
  }

let cacheable = function
  | Job.Solved _ | Job.Infeasible -> true
  | Job.Failed _ -> false

(* One distinct computation of a batch: the first occurrence of its
   digest, carrying that occurrence's job_id as its event-log identity.
   Executors receive these opaquely — enough to run the job locally
   ([compute_task]) or to ship it to a worker process ([task_job]) and
   match the answer back up ([task_digest]). *)
type task = { task_id : string; task_job : Job.t; task_res : resolved }

let task_id t = t.task_id
let task_digest t = t.task_res.key

let task_job t =
  (* ship the first occurrence's identity with the spec, so a worker
     process joins the coordinator's correlation chain under the same
     job_id that the coordinator's rows and events use *)
  { t.task_job with Job.id = Some t.task_id }

let compute_task ~batch_id t =
  Events.with_scope ~batch_id ~job_id:t.task_id @@ fun () ->
  compute t.task_res

let fresh_batch_id () = 1 + Atomic.fetch_and_add batch_seq 1

(* The batch pipeline with the compute step abstracted out: resolution,
   dedup, store/checkpoint lookups, bookkeeping and row assembly all
   happen here (on the calling domain), and [execute] turns the deduped
   task array into one [computed] per task — by any means. The default
   executor is the in-process domain pool; the fleet executor ships
   tasks to worker processes. Rows depend only on what [execute]
   returns, never on how it scheduled — the byte-identity invariant
   across [--jobs]/[--workers] paths lives here. *)
let run_batch_via ?store ?checkpoint ?batch_id ~execute jobs =
  Span.with_ "service.batch" @@ fun () ->
  let batch_id =
    match batch_id with Some id -> id | None -> fresh_batch_id ()
  in
  Events.with_scope ~batch_id @@ fun () ->
  let jobs = Array.of_list jobs in
  Metrics.incr ~by:(Array.length jobs) jobs_c;
  Events.info "batch.start"
    ~fields:[ ("jobs", Json.Int (Array.length jobs)) ];
  let resolved = Array.map resolve_job jobs in
  let job_id_at i =
    match jobs.(i).Job.id with
    | Some id -> id
    | None -> Printf.sprintf "job%d" i
  in
  (* first-occurrence order of each distinct digest; later identical
     jobs reuse the first one's outcome, so cache_hit flags and results
     never depend on scheduling. Each unique computation carries the
     job_id of its first occurrence as its event-log identity. *)
  let first_index : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let unique = ref [] in
  Array.iteri
    (fun i r ->
      match r with
      | Ok r when not (Hashtbl.mem first_index r.key) ->
        Hashtbl.add first_index r.key i;
        unique :=
          { task_id = job_id_at i; task_job = jobs.(i); task_res = r }
          :: !unique
      | _ -> ())
    resolved;
  let unique = List.rev !unique in
  (* store lookups happen on the main domain, before scheduling *)
  let from_store : (string, Job.outcome) Hashtbl.t = Hashtbl.create 16 in
  (match store with
  | None -> ()
  | Some st ->
    List.iter
      (fun t ->
        let r = t.task_res in
        match Option.bind (Store.find st r.key) outcome_of_store with
        | Some outcome ->
          Hashtbl.add from_store r.key outcome;
          Events.with_scope ~job_id:t.task_id (fun () ->
              Events.info "job.store_hit"
                ~fields:[ ("digest", Json.String r.key) ])
        | None -> ())
      unique);
  (* Checkpoint hits replace the computation but keep [cache_hit = false]
     — the resumed batch must be byte-identical to the uninterrupted one,
     which computed these rows cold. *)
  let from_ckpt : (string, Job.outcome) Hashtbl.t = Hashtbl.create 16 in
  (match checkpoint with
  | None -> ()
  | Some ck ->
    List.iter
      (fun t ->
        let r = t.task_res in
        if not (Hashtbl.mem from_store r.key) then
          match Checkpoint.find ck r.key with
          | Some outcome ->
            Hashtbl.add from_ckpt r.key outcome;
            Events.with_scope ~job_id:t.task_id (fun () ->
                Events.info "job.checkpoint_hit"
                  ~fields:[ ("digest", Json.String r.key) ]);
            (* a resumed outcome is as good as a computed one: persist it
               to the warm store too *)
            (match store with
            | Some st -> (
              match Job.outcome_to_store_json outcome with
              | Some doc -> Store.put st r.key doc
              | None -> ())
            | None -> ())
          | None -> ())
      unique);
  let to_compute =
    Array.of_list
      (List.filter
         (fun t ->
           let key = t.task_res.key in
           not (Hashtbl.mem from_store key || Hashtbl.mem from_ckpt key))
         unique)
  in
  Metrics.set queue_depth_g (float_of_int (Array.length to_compute));
  let computed = execute ~batch_id to_compute in
  if Array.length computed <> Array.length to_compute then
    invalid_arg
      (Printf.sprintf "Service executor returned %d results for %d tasks"
         (Array.length computed) (Array.length to_compute));
  Metrics.set queue_depth_g 0.0;
  Metrics.set in_flight_g 0.0;
  (* post-batch bookkeeping, main domain only: histograms, store writes *)
  let by_key : (string, computed) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun key outcome ->
      (* seeded as zero-cost computations: no latency/attempts samples
         (nothing ran), and the row path below reports them cache-cold *)
      Hashtbl.replace by_key key
        {
          comp_outcome = outcome;
          comp_attempts = 0;
          comp_latency_s = 0.0;
          comp_wall_ns = 0L;
          comp_alloc_bytes = 0.0;
        })
    from_ckpt;
  Array.iteri
    (fun i c ->
      Metrics.observe latency_h c.comp_latency_s;
      Metrics.observe attempts_h (float_of_int c.comp_attempts);
      Metrics.observe wall_ns_h (Int64.to_float c.comp_wall_ns);
      Metrics.observe alloc_bytes_h c.comp_alloc_bytes;
      (match store with
      | Some st -> (
        match Job.outcome_to_store_json c.comp_outcome with
        | Some doc -> Store.put st to_compute.(i).task_res.key doc
        | None -> ())
      | None -> ());
      Hashtbl.replace by_key to_compute.(i).task_res.key c)
    computed;
  (* emit rows in job order *)
  let rows =
  List.mapi
    (fun i (job : Job.t) ->
      let job_id = job_id_at i in
      let digest, cache_hit, outcome =
        match resolved.(i) with
        | Error msg -> ("", false, Job.Failed { error = msg; attempts = 0 })
        | Ok r -> (
          match Hashtbl.find_opt from_store r.key with
          | Some outcome -> (r.key, true, outcome)
          | None ->
            let c = Hashtbl.find by_key r.key in
            let duplicate = Hashtbl.find first_index r.key <> i in
            (r.key, duplicate && cacheable c.comp_outcome, c.comp_outcome))
      in
      Metrics.incr (if cache_hit then cache_hits_c else cache_misses_c);
      Metrics.incr
        (match outcome with
        | Job.Solved _ -> solved_c
        | Job.Infeasible -> infeasible_c
        | Job.Failed _ -> failed_c);
      {
        Job.job_id;
        row_circuit = job.Job.circuit;
        row_optimizer = job.Job.optimizer;
        digest;
        cache_hit;
        outcome;
      })
    (Array.to_list jobs)
  in
  Events.info "batch.done"
    ~fields:
      [
        ("rows", Json.Int (List.length rows));
        ("computed", Json.Int (Array.length computed));
        ("store_hits", Json.Int (Hashtbl.length from_store));
        ("checkpoint_hits", Json.Int (Hashtbl.length from_ckpt));
      ];
  rows

(* The default executor: the in-process domain pool. *)
let in_process_execute ?checkpoint ~batch_id tasks =
  Metrics.set in_flight_g
    (float_of_int (min (Par.jobs ()) (Array.length tasks)));
  Par.map ~site:"service"
    (fun t ->
      (* worker-side: the enclosing batch scope is domain-local, so the
         chain is re-established inside the task closure *)
      let c = compute_task ~batch_id t in
      (* the moment the job completes: a kill between here and the pool
         barrier loses nothing already paid for *)
      (match checkpoint with
      | Some ck -> Checkpoint.record ck t.task_res.key c.comp_outcome
      | None -> ());
      c)
    tasks

let run_batch ?store ?checkpoint ?batch_id jobs =
  run_batch_via ?store ?checkpoint ?batch_id
    ~execute:(in_process_execute ?checkpoint)
    jobs

(* The rows of a batch that are already answerable without computing
   anything: resolution failures, store hits, checkpoint hits. This is
   the signal-handler path — an interrupted [minpower batch --checkpoint]
   emits these as its partial result, in job order, silently skipping
   jobs whose outcome is not on disk yet. Flags match [run_batch]: a
   store hit reads as a cache hit, a checkpoint hit as a cold compute.
   Deliberately touches no batch counters/gauges — only the checkpoint
   and store read-side counters fire. *)
let partial_rows ?store ?checkpoint jobs =
  List.filter_map Fun.id
    (List.mapi
       (fun i (job : Job.t) ->
         let job_id =
           match job.Job.id with
           | Some id -> id
           | None -> Printf.sprintf "job%d" i
         in
         let row ~digest ~cache_hit outcome =
           Some
             {
               Job.job_id;
               row_circuit = job.Job.circuit;
               row_optimizer = job.Job.optimizer;
               digest;
               cache_hit;
               outcome;
             }
         in
         match resolve_job job with
         | Error msg ->
           row ~digest:"" ~cache_hit:false
             (Job.Failed { error = msg; attempts = 0 })
         | Ok r -> (
           let from_store =
             match store with
             | Some st -> Option.bind (Store.find st r.key) outcome_of_store
             | None -> None
           in
           match from_store with
           | Some outcome -> row ~digest:r.key ~cache_hit:true outcome
           | None -> (
             match Option.bind checkpoint (fun ck -> Checkpoint.find ck r.key) with
             | Some outcome -> row ~digest:r.key ~cache_hit:false outcome
             | None -> None)))
       jobs)

let failed_line_row ~line_no error =
  {
    Job.job_id = Printf.sprintf "line%d" line_no;
    row_circuit = "";
    row_optimizer = "";
    digest = "";
    cache_hit = false;
    outcome = Job.Failed { error; attempts = 0 };
  }

(* Control requests ride the job protocol as bare words (a job line is
   always a JSON object, so the streams cannot collide):

     metrics  → OpenMetrics text; its own "# EOF" line is the framing,
                so a client reads until that marker
     status   → one JSON line with the service counters and gauges

   Both answer from the live registry mid-session, so a client watching
   a long serve process can poll between (or while queueing) jobs. *)
let serve_status_json () =
  Json.Obj
    [
      ("status", Json.String "ok");
      ("jobs", Json.Int (Metrics.value jobs_c));
      ("solved", Json.Int (Metrics.value solved_c));
      ("infeasible", Json.Int (Metrics.value infeasible_c));
      ("failed", Json.Int (Metrics.value failed_c));
      ("retries", Json.Int (Metrics.value retries_c));
      ("cache_hits", Json.Int (Metrics.value cache_hits_c));
      ("cache_misses", Json.Int (Metrics.value cache_misses_c));
      ("queue_depth", Json.Float (Metrics.gauge_value queue_depth_g));
      ("in_flight", Json.Float (Metrics.gauge_value in_flight_g));
    ]

let serve ?store ?run ic oc =
  let run_jobs =
    match run with Some f -> f | None -> fun jobs -> run_batch ?store jobs
  in
  let line_no = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr line_no;
       let trimmed = String.trim line in
       if trimmed <> "" then
         if trimmed.[0] <> '{' then begin
           (* bare word: a control request *)
           (match trimmed with
           | "metrics" -> output_string oc (Metrics.render_openmetrics ())
           | "status" ->
             output_string oc (Json.to_string (serve_status_json ()));
             output_char oc '\n'
           | other ->
             let row =
               failed_line_row ~line_no:!line_no
                 (Printf.sprintf
                    "unknown control request %S (known: metrics, status)"
                    other)
             in
             output_string oc (Json.to_string (Job.row_to_json row));
             output_char oc '\n');
           flush oc
         end
         else begin
           (* Any one bad line — unparsable JSON, a shape-invalid job, or
              an exception escaping the runner — answers as a failed row
              for that line and the session continues: a client can never
              take the serve loop down with a malformed frame. *)
           let rows =
             match Json.of_string line with
             | Error msg -> [ failed_line_row ~line_no:!line_no msg ]
             | Ok json -> (
               match Job.of_json json with
               | Error msg -> [ failed_line_row ~line_no:!line_no msg ]
               | Ok job -> (
                 try run_jobs [ job ]
                 with e ->
                   [
                     failed_line_row ~line_no:!line_no
                       ("internal error: " ^ Printexc.to_string e);
                   ]))
           in
           List.iter
             (fun row ->
               output_string oc (Json.to_string (Job.row_to_json row));
               output_char oc '\n')
             rows;
           flush oc
         end
     done
   with End_of_file -> ());
  flush oc

let serve_unix_socket ?store ?run path =
  if Sys.file_exists path then Sys.remove path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  Logs.app (fun m -> m "serving on unix socket %s" path);
  while true do
    let fd, _ = Unix.accept sock in
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    (* a dropped or misbehaving client ends its own session only; the
       accept loop survives anything a connection throws at it *)
    (try serve ?store ?run ic oc
     with Sys_error _ | Unix.Unix_error _ | End_of_file -> ());
    (* closing the out channel flushes and closes the shared fd *)
    close_out_noerr oc
  done
