(** Pure retry/backoff/quarantine policy math for the fleet.

    Kept free of I/O and global state so the policies are property-
    testable in isolation: the fleet and the worker apply these numbers,
    they don't invent them. *)

val backoff_delay_s :
  ?base_s:float ->
  ?cap_s:float ->
  ?jitter_frac:float ->
  prng:Dcopt_util.Prng.t ->
  attempt:int ->
  unit ->
  float
(** Capped exponential backoff with seeded jitter: attempt [k] (1-based)
    waits [min cap_s (base_s * 2^(k-1))], shrunk by a uniform jitter
    draw of up to [jitter_frac] of itself from [prng]. The result is
    always in [(0, cap_s]], and — because the jitter comes from the
    caller's PRNG, seeded e.g. from the worker id — the whole delay
    sequence is deterministic per worker. Defaults: base 0.1 s, cap
    5 s, jitter 0.5. Raises [Invalid_argument] on a non-positive base,
    a cap below the base, or a jitter fraction outside [0, 1). *)

type quarantine
(** Per-identity failure budget: after [after] recorded losses an
    identity is quarantined and must not be offered work again. *)

val quarantine : ?after:int -> unit -> quarantine
(** [after] defaults to 2 losses; raises [Invalid_argument] below 1. *)

val note_loss : quarantine -> string -> int
(** Record one loss; returns the identity's new loss total. *)

val losses : quarantine -> string -> int

val quarantined : quarantine -> string -> bool
(** True once {!losses} reaches the [after] threshold. *)
