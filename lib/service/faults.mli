(** Seeded, deterministic fault injection for the service stack.

    A {e fault plan} names exactly which failures to inject and when:
    entries of the form [[role/]site@occurrence:action[=arg]] joined
    with [';'], plus an optional [seed=N] entry. [site] is one of the
    published injection seams ({!sites}); [occurrence] is a 1-based
    per-process count of how many times that site has fired ([*] =
    every time); [role] restricts the entry to one process (["coord"]
    for a coordinator, a worker id such as ["w0"] for a fleet worker —
    {!set_role}). Examples:

    - [w0/wire.send.result@2:drop] — worker w0 silently drops its
      second result frame.
    - [store.put@*:enospc] — every store write fails as if the disk
      were full.
    - [clock.tick@1:jump=3600] — the wall clock steps forward an hour
      at the coordinator's first scheduling tick.

    The schedule is keyed by [(site, occurrence-count)], so the same
    plan string reproduces the same failure sequence exactly; the seed
    only feeds auxiliary deterministic choices (the corrupted byte
    position in {!corrupt_string}).

    Plans are armed per process. The CLI arms [--fault-plan] (or
    [DCOPT_FAULT_PLAN]) and exports the plan string through the
    environment, so spawned fleet workers inherit it and arm themselves
    ({!arm_from_env}); the role guard is what separates "the
    coordinator's store" from "worker w2's store".

    Every fault that fires bumps [faults.fired] plus a per-class counter
    ([faults.wire] / [faults.store] / [faults.worker] / [faults.clock])
    and emits a [fault.fired] warn event carrying site, occurrence and
    action — so a chaos run's injected failures are auditable from the
    same metrics/events surface as the recovery they provoke. *)

type action =
  | Drop  (** wire: swallow the frame entirely *)
  | Delay of float  (** wire: sleep this long before writing *)
  | Truncate of int  (** wire: write only the first N bytes *)
  | Corrupt  (** wire: flip one byte ({!corrupt_string}) *)
  | Stall of float  (** worker: sleep (heartbeats silent) *)
  | Exit  (** worker: exit 70 at the seam *)
  | Kill  (** worker: SIGKILL itself at the seam *)
  | Enospc  (** store: the write fails as with a full disk *)
  | Eio  (** store: the I/O fails *)
  | Short of int  (** store: persist only the first N bytes *)
  | Jump of float  (** clock: step the wall clock by this many seconds *)

type which = Nth of int | Every

type entry = {
  e_role : string option;
  e_site : string;
  e_which : which;
  e_action : action;
}

type plan = { seed : int64; entries : entry list }

val sites : string list
(** The published injection seams; {!parse} rejects anything else. *)

val action_to_string : action -> string
(** The plan-grammar rendering, e.g. ["delay=0.5"]. *)

val parse : string -> (plan, string) result

val arm : plan -> unit
(** Make this the process's armed plan and reset every occurrence
    counter. *)

val disarm : unit -> unit
(** Drop the armed plan; {!fire} becomes a no-op returning []. *)

val arm_from_env : unit -> unit
(** {!arm} the plan in [DCOPT_FAULT_PLAN], if any; an unparsable plan
    emits a [fault.plan_invalid] event and arms nothing (library code
    must not die on a bad env var — the CLI front door validates). *)

val set_role : string -> unit
(** The process's role for [role/] entry guards. Defaults to ["coord"];
    fleet workers set their worker id. *)

val fire : string -> action list
(** Count one occurrence of this site and return the actions scheduled
    for it, in plan order (empty when disarmed — the common case, one
    atomic-free ref read). Bumps the fault counters and emits
    [fault.fired] per returned action. *)

val corrupt_string : string -> string
(** Flip one byte (never the last — a frame's newline must survive so
    the damage stays inside the frame), at a position derived
    deterministically from the armed plan's seed and the bytes
    themselves. *)
