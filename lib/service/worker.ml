module Metrics = Dcopt_obs.Metrics
module Events = Dcopt_obs.Events
module Json = Dcopt_util.Json
module Prng = Dcopt_util.Prng

let jobs_c =
  Metrics.counter ~help:"Jobs this worker process executed"
    "service.worker.jobs"

let reconnects_c =
  Metrics.counter ~help:"Reconnection attempts this worker process made"
    "service.worker.reconnects"

(* Deterministic crash injection for the recovery tests:
   DCOPT_FLEET_CHAOS_KILL="<worker_id>:<nth>" makes the named worker
   SIGKILL itself in place of sending its nth result — the harshest
   possible death (job fully paid for, result never delivered), which
   the coordinator must answer by requeuing onto survivors. The fault
   plans (Faults, worker.result site) subsume this, but the hook
   predates them and stays for compatibility. *)
let chaos_kill_after ~worker_id =
  match Sys.getenv_opt "DCOPT_FLEET_CHAOS_KILL" with
  | None -> None
  | Some spec -> (
    match String.rindex_opt spec ':' with
    | None -> None
    | Some i ->
      let id = String.sub spec 0 i in
      let nth =
        int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1))
      in
      if id = worker_id then nth else None)

(* Worker-side fault seam: stall silences the heartbeat (these sites
   fire outside the computing window, so the coordinator sees dispatched
   work with no liveness — the stall it must detect), exit/kill die in
   place. *)
let apply_worker_faults site =
  List.iter
    (function
      | Faults.Stall s -> ( try Unix.sleepf s with Unix.Unix_error _ -> ())
      | Faults.Exit -> Stdlib.exit 70
      | Faults.Kill -> Unix.kill (Unix.getpid ()) Sys.sigkill
      | _ -> ())
    (Faults.fire site)

(* One connected session: hello, then the read-execute-reply loop until
   a shutdown frame (`Clean), a dead/desynchronised coordinator
   (`Lost), or an injected death. *)
let session ?store ~heartbeat_interval_s ~worker_id ~chaos ~results_sent fd =
  let ic = Unix.in_channel_of_descr fd in
  (* results and heartbeats interleave from two threads; frames must hit
     the socket whole *)
  let write_mutex = Mutex.create () in
  let send ~site frame =
    Mutex.lock write_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock write_mutex)
      (fun () -> Wire.send ~site fd (Wire.from_worker_to_json frame))
  in
  send ~site:"wire.send.hello"
    (Wire.Hello
       { worker_id; pid = Unix.getpid (); version = Wire.protocol_version });
  (* Heartbeats flow only while a job is computing: an idle worker is
     silent (nothing in flight means nothing for the coordinator to
     requeue), and a worker stuck inside an optimizer keeps proving it
     is alive without touching the compute path. *)
  let computing = Atomic.make false in
  let stop = Atomic.make false in
  let heartbeat =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          Thread.delay heartbeat_interval_s;
          if Atomic.get computing && not (Atomic.get stop) then
            try send ~site:"wire.send.heartbeat" Wire.Heartbeat
            with Unix.Unix_error _ | Sys_error _ -> Atomic.set stop true
        done)
      ()
  in
  let outcome =
    try
      let running = ref true in
      let clean = ref false in
      while !running && not (Atomic.get stop) do
        match input_line ic with
        | exception End_of_file -> running := false
        | line -> (
          match Wire.to_worker_of_line line with
          | Error msg ->
            (* a coordinator speaking garbage means the stream is out of
               sync; there is no way to resynchronise a line protocol,
               so drop the connection and let the coordinator count us
               lost *)
            Events.error "worker.bad_frame"
              ~fields:[ ("error", Json.String msg) ];
            running := false
          | Ok Wire.Shutdown ->
            clean := true;
            running := false
          | Ok (Wire.Assign { seq; batch_id; job }) ->
            Metrics.incr jobs_c;
            apply_worker_faults "worker.job";
            Atomic.set computing true;
            (* the full single-job pipeline, sharing the coordinator's
               batch_id: store hits work here too (any worker can serve
               any job the shared store has), and isolation guarantees
               a row comes back whatever the job does *)
            let rows =
              Fun.protect
                ~finally:(fun () -> Atomic.set computing false)
                (fun () -> Service.run_batch ?store ~batch_id [ job ])
            in
            let row =
              match rows with
              | [ row ] -> row
              | _ -> assert false (* one job in, one row out *)
            in
            incr results_sent;
            (match chaos with
            | Some nth when !results_sent = nth ->
              Unix.kill (Unix.getpid ()) Sys.sigkill
            | _ -> ());
            apply_worker_faults "worker.result";
            send ~site:"wire.send.result" (Wire.Result { seq; row }))
      done;
      if !clean then `Clean else `Lost
    with Unix.Unix_error _ | Sys_error _ ->
      (* coordinator went away mid-send/mid-read: nothing left to serve *)
      `Lost
  in
  Atomic.set stop true;
  Thread.join heartbeat;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  outcome

let run ?store ?(heartbeat_interval_s = 0.5) ?(reconnect = 0) ~connect
    ~worker_id () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Events.set_worker_id worker_id;
  Faults.arm_from_env ();
  Faults.set_role worker_id;
  Events.info "worker.start" ~fields:[ ("pid", Json.Int (Unix.getpid ())) ];
  let chaos = chaos_kill_after ~worker_id in
  let results_sent = ref 0 in
  (* The reconnect schedule is a pure function of the worker id: capped
     exponential backoff, jitter drawn from an id-seeded PRNG. A budget
     of 0 (spawned workers — the coordinator respawns them itself)
     means one dial, and a dial error propagates to the caller. *)
  let prng = Prng.of_string worker_id in
  let attempts = ref 0 in
  let backoff why =
    incr attempts;
    Metrics.incr reconnects_c;
    let delay_s = Policy.backoff_delay_s ~prng ~attempt:!attempts () in
    Events.warn "worker.reconnect"
      ~fields:
        [
          ("attempt", Json.Int !attempts);
          ("delay_s", Json.Float delay_s);
          ("why", Json.String why);
        ];
    (try Unix.sleepf delay_s with Unix.Unix_error _ -> ())
  in
  let rec dial () =
    match Wire.connect connect with
    | Ok fd -> Some fd
    | Error msg -> raise (Failure msg)
    | exception Unix.Unix_error (e, _, _) when !attempts < reconnect ->
      backoff (Unix.error_message e);
      dial ()
    | exception (Unix.Unix_error _ as e) ->
      if reconnect = 0 then raise e else None
  in
  let rec sessions () =
    match dial () with
    | None -> false
    | Some fd -> (
      match
        session ?store ~heartbeat_interval_s ~worker_id ~chaos ~results_sent fd
      with
      | `Clean -> true
      | `Lost ->
        if !attempts < reconnect then begin
          backoff "connection lost";
          sessions ()
        end
        else false)
  in
  let clean = sessions () in
  Events.info "worker.exit"
    ~fields:[ ("clean", if clean then Json.Bool true else Json.Bool false) ];
  clean
