module Metrics = Dcopt_obs.Metrics
module Events = Dcopt_obs.Events
module Json = Dcopt_util.Json

let jobs_c =
  Metrics.counter ~help:"Jobs this worker process executed"
    "service.worker.jobs"

(* Deterministic crash injection for the recovery tests:
   DCOPT_FLEET_CHAOS_KILL="<worker_id>:<nth>" makes the named worker
   SIGKILL itself in place of sending its nth result — the harshest
   possible death (job fully paid for, result never delivered), which
   the coordinator must answer by requeuing onto survivors. *)
let chaos_kill_after ~worker_id =
  match Sys.getenv_opt "DCOPT_FLEET_CHAOS_KILL" with
  | None -> None
  | Some spec -> (
    match String.rindex_opt spec ':' with
    | None -> None
    | Some i ->
      let id = String.sub spec 0 i in
      let nth =
        int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1))
      in
      if id = worker_id then nth else None)

let run ?store ?(heartbeat_interval_s = 0.5) ~connect ~worker_id () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Events.set_worker_id worker_id;
  let fd = Wire.connect (Wire.addr_of_string connect) in
  let ic = Unix.in_channel_of_descr fd in
  (* results and heartbeats interleave from two threads; frames must hit
     the socket whole *)
  let write_mutex = Mutex.create () in
  let send frame =
    Mutex.lock write_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock write_mutex)
      (fun () -> Wire.write_frame fd (Wire.from_worker_to_json frame))
  in
  send
    (Wire.Hello
       { worker_id; pid = Unix.getpid (); version = Wire.protocol_version });
  Events.info "worker.start"
    ~fields:[ ("pid", Json.Int (Unix.getpid ())) ];
  (* Heartbeats flow only while a job is computing: an idle worker is
     silent (nothing in flight means nothing for the coordinator to
     requeue), and a worker stuck inside an optimizer keeps proving it
     is alive without touching the compute path. *)
  let computing = Atomic.make false in
  let stop = Atomic.make false in
  let heartbeat =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          Thread.delay heartbeat_interval_s;
          if Atomic.get computing && not (Atomic.get stop) then
            try send Wire.Heartbeat
            with Unix.Unix_error _ | Sys_error _ -> Atomic.set stop true
        done)
      ()
  in
  let chaos = chaos_kill_after ~worker_id in
  let results_sent = ref 0 in
  let clean =
    try
      let running = ref true in
      let clean = ref false in
      while !running && not (Atomic.get stop) do
        match input_line ic with
        | exception End_of_file -> running := false
        | line -> (
          match Wire.to_worker_of_line line with
          | Error msg ->
            (* a coordinator speaking garbage means the stream is out of
               sync; there is no way to resynchronise a line protocol,
               so exit and let the coordinator count us lost *)
            Events.error "worker.bad_frame"
              ~fields:[ ("error", Json.String msg) ];
            running := false
          | Ok Wire.Shutdown ->
            clean := true;
            running := false
          | Ok (Wire.Assign { seq; batch_id; job }) ->
            Metrics.incr jobs_c;
            Atomic.set computing true;
            (* the full single-job pipeline, sharing the coordinator's
               batch_id: store hits work here too (any worker can serve
               any job the shared store has), and isolation guarantees
               a row comes back whatever the job does *)
            let rows =
              Fun.protect
                ~finally:(fun () -> Atomic.set computing false)
                (fun () -> Service.run_batch ?store ~batch_id [ job ])
            in
            let row =
              match rows with
              | [ row ] -> row
              | _ -> assert false (* one job in, one row out *)
            in
            incr results_sent;
            (match chaos with
            | Some nth when !results_sent = nth ->
              Unix.kill (Unix.getpid ()) Sys.sigkill
            | _ -> ());
            send (Wire.Result { seq; row }))
      done;
      !clean
    with Unix.Unix_error _ | Sys_error _ ->
      (* coordinator went away mid-send/mid-read: nothing left to serve *)
      false
  in
  Atomic.set stop true;
  Thread.join heartbeat;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Events.info "worker.exit"
    ~fields:[ ("clean", if clean then Json.Bool true else Json.Bool false) ];
  clean
