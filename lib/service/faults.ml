module Json = Dcopt_util.Json
module Metrics = Dcopt_obs.Metrics
module Events = Dcopt_obs.Events

let fired_c =
  Metrics.counter ~help:"Injected faults fired (all sites)" "faults.fired"

let wire_c =
  Metrics.counter ~help:"Injected faults fired at wire.* sites" "faults.wire"

let store_c =
  Metrics.counter ~help:"Injected faults fired at store.* sites" "faults.store"

let worker_c =
  Metrics.counter ~help:"Injected faults fired at worker.* sites"
    "faults.worker"

let clock_c =
  Metrics.counter ~help:"Injected faults fired at clock.* sites" "faults.clock"

type action =
  | Drop
  | Delay of float
  | Truncate of int
  | Corrupt
  | Stall of float
  | Exit
  | Kill
  | Enospc
  | Eio
  | Short of int
  | Jump of float

type which = Nth of int | Every

type entry = {
  e_role : string option;
  e_site : string;
  e_which : which;
  e_action : action;
}

type plan = { seed : int64; entries : entry list }

let action_to_string = function
  | Drop -> "drop"
  | Delay s -> Printf.sprintf "delay=%g" s
  | Truncate n -> Printf.sprintf "truncate=%d" n
  | Corrupt -> "corrupt"
  | Stall s -> Printf.sprintf "stall=%g" s
  | Exit -> "exit"
  | Kill -> "kill"
  | Enospc -> "enospc"
  | Eio -> "eio"
  | Short n -> Printf.sprintf "short=%d" n
  | Jump s -> Printf.sprintf "jump=%g" s

(* The sites the injection seams publish. Parsing validates against this
   list so a typo in a plan is a loud error, not a fault that never
   fires. *)
let sites =
  [
    "wire.send.hello";
    "wire.send.heartbeat";
    "wire.send.result";
    "wire.send.job";
    "wire.send.shutdown";
    "worker.job";
    "worker.result";
    "store.put";
    "store.find";
    "clock.tick";
  ]

let ( let* ) = Result.bind

let parse_action s =
  let name, arg =
    match String.index_opt s '=' with
    | None -> (s, None)
    | Some i ->
      (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
  in
  let no_arg a =
    match arg with
    | None -> Ok a
    | Some _ -> Error (Printf.sprintf "action %S takes no argument" name)
  in
  let float_arg mk what =
    match Option.map float_of_string_opt arg with
    | Some (Some f) when f >= 0.0 -> Ok (mk f)
    | _ -> Error (Printf.sprintf "action %S needs =%s (seconds >= 0)" name what)
  in
  let int_arg mk =
    match Option.map int_of_string_opt arg with
    | Some (Some n) when n >= 0 -> Ok (mk n)
    | _ -> Error (Printf.sprintf "action %S needs =N (bytes >= 0)" name)
  in
  match name with
  | "drop" -> no_arg Drop
  | "delay" -> float_arg (fun f -> Delay f) "SECONDS"
  | "truncate" -> int_arg (fun n -> Truncate n)
  | "corrupt" -> no_arg Corrupt
  | "stall" -> float_arg (fun f -> Stall f) "SECONDS"
  | "exit" -> no_arg Exit
  | "kill" -> no_arg Kill
  | "enospc" -> no_arg Enospc
  | "eio" -> no_arg Eio
  | "short" -> int_arg (fun n -> Short n)
  | "jump" ->
    (* the one action whose argument may be negative: jump backwards *)
    (match Option.map float_of_string_opt arg with
    | Some (Some f) -> Ok (Jump f)
    | _ -> Error "action \"jump\" needs =SECONDS")
  | other -> Error (Printf.sprintf "unknown action %S" other)

let parse_entry s =
  let role, rest =
    match String.index_opt s '/' with
    | Some i ->
      (Some (String.sub s 0 i), String.sub s (i + 1) (String.length s - i - 1))
    | None -> (None, s)
  in
  let* site, occ_action =
    match String.index_opt rest '@' with
    | Some i ->
      Ok
        ( String.sub rest 0 i,
          String.sub rest (i + 1) (String.length rest - i - 1) )
    | None -> Error (Printf.sprintf "%S: expected site@occurrence:action" s)
  in
  let* () =
    if List.mem site sites then Ok ()
    else
      Error
        (Printf.sprintf "unknown site %S (sites: %s)" site
           (String.concat ", " sites))
  in
  let* occ, action_s =
    match String.index_opt occ_action ':' with
    | Some i ->
      Ok
        ( String.sub occ_action 0 i,
          String.sub occ_action (i + 1) (String.length occ_action - i - 1) )
    | None -> Error (Printf.sprintf "%S: expected site@occurrence:action" s)
  in
  let* which =
    if occ = "*" then Ok Every
    else
      match int_of_string_opt occ with
      | Some n when n >= 1 -> Ok (Nth n)
      | _ ->
        Error
          (Printf.sprintf "occurrence %S must be a 1-based integer or '*'" occ)
  in
  let* action = parse_action action_s in
  (match role with
  | Some "" -> Error (Printf.sprintf "%S: empty role guard" s)
  | _ -> Ok ())
  |> Result.map (fun () ->
         { e_role = role; e_site = site; e_which = which; e_action = action })

let parse spec =
  let parts =
    List.filter
      (fun p -> String.trim p <> "")
      (String.split_on_char ';' spec)
  in
  if parts = [] then Error "empty fault plan"
  else
    let rec go seed entries = function
      | [] -> Ok { seed; entries = List.rev entries }
      | p :: tl -> (
        let p = String.trim p in
        match
          if String.length p > 5 && String.sub p 0 5 = "seed=" then
            match
              Int64.of_string_opt (String.sub p 5 (String.length p - 5))
            with
            | Some s -> Ok (`Seed s)
            | None -> Error (Printf.sprintf "%S: seed must be an integer" p)
          else Result.map (fun e -> `Entry e) (parse_entry p)
        with
        | Ok (`Seed s) -> go s entries tl
        | Ok (`Entry e) -> go seed (e :: entries) tl
        | Error _ as e -> e)
    in
    go 0L [] parts

(* --- runtime ----------------------------------------------------------- *)

(* One armed plan per process. Occurrence counters are per (process,
   site): a worker's heartbeat thread and its main loop hit different
   sites, but the mutex keeps the counters safe regardless of which
   thread fires. *)
let lock = Mutex.create ()
let armed : plan option ref = ref None
let counts : (string, int) Hashtbl.t = Hashtbl.create 16
let role = ref "coord"

let arm plan =
  Mutex.lock lock;
  armed := Some plan;
  Hashtbl.reset counts;
  Mutex.unlock lock

let disarm () =
  Mutex.lock lock;
  armed := None;
  Hashtbl.reset counts;
  Mutex.unlock lock

let set_role r = role := r

let arm_from_env () =
  match Sys.getenv_opt "DCOPT_FAULT_PLAN" with
  | None -> ()
  | Some spec -> (
    match parse spec with
    | Ok plan -> arm plan
    | Error msg ->
      Events.warn "fault.plan_invalid"
        ~fields:
          [ ("plan", Json.String spec); ("error", Json.String msg) ])

let class_counter site =
  if String.length site >= 5 && String.sub site 0 5 = "wire." then Some wire_c
  else if String.length site >= 6 && String.sub site 0 6 = "store." then
    Some store_c
  else if String.length site >= 7 && String.sub site 0 7 = "worker." then
    Some worker_c
  else if String.length site >= 6 && String.sub site 0 6 = "clock." then
    Some clock_c
  else None

let fire site =
  match !armed with
  | None -> []
  | Some plan ->
    Mutex.lock lock;
    let occ = 1 + Option.value ~default:0 (Hashtbl.find_opt counts site) in
    Hashtbl.replace counts site occ;
    Mutex.unlock lock;
    let hits =
      List.filter
        (fun e ->
          e.e_site = site
          && (match e.e_role with None -> true | Some r -> r = !role)
          && match e.e_which with Every -> true | Nth n -> n = occ)
        plan.entries
    in
    List.iter
      (fun e ->
        Metrics.incr fired_c;
        (match class_counter site with
        | Some c -> Metrics.incr c
        | None -> ());
        Events.warn "fault.fired"
          ~fields:
            [
              ("site", Json.String site);
              ("occurrence", Json.Int occ);
              ("action", Json.String (action_to_string e.e_action));
            ])
      hits;
    List.map (fun e -> e.e_action) hits

(* Deterministic single-byte corruption: the flipped position depends
   only on the plan seed and the bytes themselves, so the same plan over
   the same frames corrupts identically, run after run. The final byte
   (the frame newline) is never touched — corruption must damage the
   frame, not split it. *)
let corrupt_string s =
  let n = String.length s in
  if n < 2 then s
  else begin
    let seed = match !armed with Some p -> p.seed | None -> 0L in
    let i = Hashtbl.hash (seed, s) mod (n - 1) in
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
    Bytes.to_string b
  end
