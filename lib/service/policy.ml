module Prng = Dcopt_util.Prng

let backoff_delay_s ?(base_s = 0.1) ?(cap_s = 5.0) ?(jitter_frac = 0.5) ~prng
    ~attempt () =
  if base_s <= 0.0 then invalid_arg "Policy.backoff_delay_s: base_s <= 0";
  if cap_s < base_s then invalid_arg "Policy.backoff_delay_s: cap_s < base_s";
  if jitter_frac < 0.0 || jitter_frac >= 1.0 then
    invalid_arg "Policy.backoff_delay_s: jitter_frac outside [0, 1)";
  let attempt = max 1 attempt in
  (* 2^(attempt-1) in float, saturating long before overflow matters *)
  let expo = base_s *. (2.0 ** float_of_int (min 62 (attempt - 1))) in
  let capped = Float.min cap_s expo in
  (* jitter shrinks the delay (never extends it past the cap) and comes
     from the caller's seeded PRNG, so a worker's whole reconnect
     schedule is a pure function of its id *)
  capped *. (1.0 -. (jitter_frac *. Prng.float prng 1.0))

type quarantine = { q_after : int; q_losses : (string, int) Hashtbl.t }

let quarantine ?(after = 2) () =
  if after < 1 then invalid_arg "Policy.quarantine: after < 1";
  { q_after = after; q_losses = Hashtbl.create 8 }

let losses q id = Option.value ~default:0 (Hashtbl.find_opt q.q_losses id)

let note_loss q id =
  let n = losses q id + 1 in
  Hashtbl.replace q.q_losses id n;
  n

let quarantined q id = losses q id >= q.q_after
