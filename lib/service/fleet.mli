(** Multi-process optimization fleet: the coordinator side.

    A fleet owns a listening socket — a private unix-domain socket by
    default, or any {!Wire.addr} via [listen] ([minpower batch/serve
    --listen host:port]) — and a pool of [minpower worker] processes
    that connect back to it ({!Worker}, {!Wire}). Spawned workers are
    children dialing the listen address; with a TCP listen address,
    {e external} workers ([minpower worker --connect host:port] from
    anywhere) may also join: an authenticated-by-id hello from an
    identity the coordinator did not spawn is accepted as long as the id
    is free and not quarantined. {!run_batch} is a drop-in replacement
    for {!Service.run_batch}: the whole batch pipeline (dedup,
    store/checkpoint lookups, row assembly) still runs on the
    coordinator via {!Service.run_batch_via}, and only the compute step
    is distributed — so rows are byte-identical to the in-process path
    by construction, whatever the worker count and whatever crashes.

    Scheduling is worker-pull with backpressure: tasks sit in one shared
    queue, and any ready worker with in-flight room (at most
    [max_in_flight] outstanding jobs, default 2) takes the next task —
    a slow worker's share drains to whoever is keeping up, with no
    static sharding. Health is tracked per worker on the {e monotonic}
    clock ({!Dcopt_util.Clock}), so a wall-clock jump (NTP step, DST,
    an injected [clock.tick:jump]) never triggers — or masks — a
    timeout: a worker computing a job streams heartbeats, and silence
    from a worker {e with jobs in flight} beyond [heartbeat_timeout_s],
    an EOF, a write error, a malformed or checksum-failed frame, or a
    reaped exit all count it lost. Its in-flight jobs are requeued onto
    survivors (at most [max_requeues] times each, then computed
    in-process by the coordinator); if the whole fleet dies, the
    coordinator drains the queue itself. A batch therefore {e always}
    completes with a full, deterministic row set.

    Failure budgets: the spawned roster is the fixed identity set
    [w0..w(workers-1)]. A lost spawned id is respawned {e under the same
    name} — mid-batch, as soon as there is still queued work — so its
    losses accumulate across incarnations; after [quarantine_after]
    losses (default 2, env [DCOPT_FLEET_QUARANTINE_AFTER]) the id is
    quarantined: never respawned again and refused at hello, so a
    crash-looping worker (bad host, poisoned environment) cannot grind
    a batch forever. Other defaults also read the environment once at
    {!options} time: [DCOPT_FLEET_HEARTBEAT_S] (5.0),
    [DCOPT_FLEET_MAX_REQUEUES] (2).

    Workers are spawned lazily on the first batch that actually has
    something to compute (a fully warm batch spawns nothing) and are
    reused across batches; workers lost between batches are replaced at
    the next batch ([ensure]d back up to [workers]).

    Observability: [service.fleet.workers] / [in_flight] gauges,
    [spawned] / [dispatched] / [results] / [heartbeats] / [worker_lost]
    / [requeued] / [fallback] / [quarantined] counters, and [fleet.*]
    events carrying the [run_id → batch_id → worker_id → job_id]
    correlation chain. The coordinator's fault seams are
    [wire.send.job], [wire.send.shutdown] (outbound frames) and
    [clock.tick] ([jump] displaces the wall clock the event log reads;
    scheduling must not notice). *)

type options = private {
  workers : int;
  binary : string;
  worker_args : string list;
  max_in_flight : int;
  heartbeat_timeout_s : float;
  max_requeues : int;
  spawn_timeout_s : float;
  listen : Wire.addr option;
  quarantine_after : int;
}

val options :
  ?binary:string ->
  ?worker_args:string list ->
  ?max_in_flight:int ->
  ?heartbeat_timeout_s:float ->
  ?max_requeues:int ->
  ?spawn_timeout_s:float ->
  ?listen:Wire.addr ->
  ?quarantine_after:int ->
  workers:int ->
  unit ->
  options
(** [binary] defaults to [Sys.executable_name] (the coordinator spawns
    its own executable with the [worker] subcommand); [worker_args] are
    appended to the worker argv (store/events/run-id passthrough).
    [listen] defaults to a fresh private unix-domain socket; pass
    [Wire.Tcp (host, port)] to accept external workers (port [0] binds
    an ephemeral port — the actual one is what spawned workers dial).
    [heartbeat_timeout_s], [max_requeues] and [quarantine_after]
    default from [DCOPT_FLEET_HEARTBEAT_S] / [DCOPT_FLEET_MAX_REQUEUES]
    / [DCOPT_FLEET_QUARANTINE_AFTER], then 5.0 / 2 / 2. Raises
    [Invalid_argument] when [workers < 1]. *)

type t

val create : options -> t
(** Bind the coordinator socket (no workers yet) and ignore [SIGPIPE]
    process-wide — a worker dying mid-write must surface as an error on
    that worker's descriptor, not kill the coordinator. Raises
    [Invalid_argument] when the listen address cannot be bound or
    resolved (the message carries the {!Wire} diagnostic). *)

val run_batch :
  t -> ?store:Store.t -> ?checkpoint:Checkpoint.t -> Job.t list -> Job.row list
(** {!Service.run_batch} semantics, compute step distributed over the
    fleet. Spawns (or replaces) workers as needed. Raises
    [Invalid_argument] after {!shutdown}. *)

val shutdown : t -> unit
(** Send every live worker a [shutdown] frame, give clean exits ~2 s,
    [SIGKILL] spawned stragglers (external workers are never signalled
    — their clean exit is their own business), reap everything, close
    the socket and unlink it when it was a private unix path.
    Idempotent. *)
