(** Multi-process optimization fleet: the coordinator side.

    A fleet owns a listening unix-domain socket and a pool of [minpower
    worker] child processes that connect back to it ({!Worker},
    {!Wire}). {!run_batch} is a drop-in replacement for
    {!Service.run_batch}: the whole batch pipeline (dedup,
    store/checkpoint lookups, row assembly) still runs on the
    coordinator via {!Service.run_batch_via}, and only the compute step
    is distributed — so rows are byte-identical to the in-process path
    by construction, whatever the worker count and whatever crashes.

    Scheduling is worker-pull with backpressure: tasks sit in one shared
    queue, and any ready worker with in-flight room (at most
    [max_in_flight] outstanding jobs, default 2) takes the next task —
    a slow worker's share drains to whoever is keeping up, with no
    static sharding. Health is tracked per worker: a worker computing a
    job streams heartbeats, so silence from a worker {e with jobs in
    flight} beyond [heartbeat_timeout_s], an EOF, a write error, a
    malformed frame, or a reaped exit all count it lost. Its in-flight
    jobs are requeued onto survivors (at most [max_requeues] times each,
    then computed in-process by the coordinator); if the whole fleet
    dies, the coordinator drains the queue itself. A batch therefore
    {e always} completes with a full, deterministic row set.

    Workers are spawned lazily on the first batch that actually has
    something to compute (a fully warm batch spawns nothing) and are
    reused across batches; workers lost between batches are replaced at
    the next batch ([ensure]d back up to [workers]).

    Observability: [service.fleet.workers] / [in_flight] gauges,
    [spawned] / [dispatched] / [results] / [heartbeats] / [worker_lost]
    / [requeued] / [fallback] counters, and [fleet.*] events carrying
    the [run_id → batch_id → worker_id → job_id] correlation chain. *)

type options = private {
  workers : int;
  binary : string;
  worker_args : string list;
  max_in_flight : int;
  heartbeat_timeout_s : float;
  max_requeues : int;
  spawn_timeout_s : float;
}

val options :
  ?binary:string ->
  ?worker_args:string list ->
  ?max_in_flight:int ->
  ?heartbeat_timeout_s:float ->
  ?max_requeues:int ->
  ?spawn_timeout_s:float ->
  workers:int ->
  unit ->
  options
(** [binary] defaults to [Sys.executable_name] (the coordinator spawns
    its own executable with the [worker] subcommand); [worker_args] are
    appended to the worker argv (store/events/run-id passthrough).
    Raises [Invalid_argument] when [workers < 1]. *)

type t

val create : options -> t
(** Bind the coordinator socket (no workers yet) and ignore [SIGPIPE]
    process-wide — a worker dying mid-write must surface as an error on
    that worker's descriptor, not kill the coordinator. *)

val run_batch :
  t -> ?store:Store.t -> ?checkpoint:Checkpoint.t -> Job.t list -> Job.row list
(** {!Service.run_batch} semantics, compute step distributed over the
    fleet. Spawns (or replaces) workers as needed. Raises
    [Invalid_argument] after {!shutdown}. *)

val shutdown : t -> unit
(** Send every live worker a [shutdown] frame, give clean exits ~2 s,
    [SIGKILL] stragglers, reap everything, close and unlink the socket.
    Idempotent. *)
