(** Batch-job specifications and result rows — the JSONL wire format of
    [minpower batch] / [minpower serve] and the value format of the
    {!Store} result cache.

    A job names a circuit (suite name or [.bench] path), an optimizer
    from the {!Dcopt_core.Optimizer} registry, and an optional partial
    {!Dcopt_core.Flow.config} override object; the service resolves all
    three, so malformed specs become typed per-job failures instead of
    batch aborts. Result rows deliberately carry no wall-clock fields —
    latency goes to {!Dcopt_obs.Metrics} — so batch output is
    byte-identical at any [--jobs] count and on cache replay. *)

type t = {
  id : string option;
      (** label echoed in the result row; defaults to ["job<index>"] *)
  circuit : string;  (** suite circuit name, or a path to a .bench file *)
  optimizer : string;  (** {!Dcopt_core.Optimizer} registry name *)
  config : Dcopt_util.Json.t option;
      (** partial config object applied over
          {!Dcopt_core.Flow.default_config} by
          {!Dcopt_core.Flow.config_of_json} *)
  scenarios : Dcopt_util.Json.t option;
      (** versioned multi-corner scenario object: [{"version": 1,
          "sdc": "<path>", "corners": <Scenario.corners_to_json>}], both
          inner members optional. Resolution failures (unreadable or
          diagnosed SDC, bad corner list) become typed per-job failures.
          Jobs without this field keep their pre-scenario store digest. *)
  timeout_s : float option;
      (** per-attempt wall-clock cap; cancellation is cooperative (rides
          the telemetry observer), so observer-less optimizers cannot be
          interrupted mid-search *)
  retries : int;  (** extra attempts after a crash or timeout (default 0) *)
}

val make :
  ?id:string -> ?optimizer:string -> ?config:Dcopt_util.Json.t ->
  ?scenarios:Dcopt_util.Json.t ->
  ?timeout_s:float -> ?retries:int -> string -> t
(** [make circuit] with defaults: optimizer ["joint"], no overrides, no
    timeout, no retries. *)

val to_json : t -> Dcopt_util.Json.t
val of_json : Dcopt_util.Json.t -> (t, string) result
(** Accepts an object with a required ["circuit"] member and optional
    ["id"], ["optimizer"], ["config"], ["scenarios"], ["timeout_s"],
    ["retries"];
    unknown members are typed errors. *)

(** What happened to one job. [Failed] rows are never cached. *)
type outcome =
  | Solved of Dcopt_opt.Solution.t
  | Infeasible  (** the optimizer ran but found no design closing timing *)
  | Failed of { error : string; attempts : int }

val outcome_to_store_json : outcome -> Dcopt_util.Json.t option
(** The versioned value document the {!Store} cache and the batch
    {!Checkpoint} both persist; [None] for [Failed] (never cached). *)

val outcome_of_store_json : Dcopt_util.Json.t -> outcome option
(** Decode a persisted value document; [None] on any shape mismatch (the
    callers treat that as a corrupt entry = miss). *)

type row = {
  job_id : string;
  row_circuit : string;
  row_optimizer : string;
  digest : string;  (** the {!Store} cache key of this job's inputs *)
  cache_hit : bool;
      (** the outcome came from the store or from an identical earlier
          job in the same batch *)
  outcome : outcome;
}

val row_to_json : row -> Dcopt_util.Json.t
val row_of_json : Dcopt_util.Json.t -> (row, string) result
val render_rows : row list -> string
(** Fixed-width human table of a batch result (the [--table] output). *)
