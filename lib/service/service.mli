(** Batch optimization service: schedule many {!Job}s over the
    {!Dcopt_par.Par} domain pool with per-job isolation, cooperative
    timeouts, bounded retry and a content-addressed {!Store} cache.

    Guarantees:

    - {b Determinism}: result rows come back in job order and carry no
      wall-clock data, so a batch at [--jobs 4] is byte-identical to
      [--jobs 1] (latency and retry counts go to {!Dcopt_obs.Metrics}
      instead). Identical jobs are deduplicated by digest before
      scheduling, so their [cache_hit] flags don't depend on scheduling
      either: the first occurrence computes (or hits the store), the
      rest always read as hits.
    - {b Isolation}: everything a job can do wrong — unknown circuit or
      optimizer, malformed config, optimizer exception, timeout after
      all retries — becomes a [Failed] row; sibling jobs and the batch
      itself are unaffected.
    - {b Bounded retry}: a crash or timeout is retried up to
      [job.retries] times; each attempt gets a fresh deadline.

    Timeouts are cooperative: the service injects a deadline check into
    the optimizer's telemetry observer stream, so optimizers that ignore
    [?observer] (multi-vt, multi-vdd — see {!Dcopt_core.Optimizer})
    run to completion regardless.

    Observability (all under the [service.] prefix): [jobs],
    [solved]/[infeasible]/[failed], [cache.hits]/[cache.misses] and
    [retries] counters; [queue_depth] and [in_flight] gauges set around
    the batch; [latency] (seconds per job), [attempts], [job.wall_ns]
    and [job.alloc_bytes] histograms observed after the pool barrier on
    the main domain (per-job wall time and domain-local allocation are
    measured on the worker and carried back — never into result rows,
    which stay wall-clock-free); a [service.batch] span with per-job
    [service.job] children recorded in each worker's own trace buffer.

    Every batch also narrates itself to {!Dcopt_obs.Events} under a
    fresh [batch_id]: [batch.start], per-job [job.store_hit] /
    [job.checkpoint_hit] / [job.start] / [job.retry] / [job.done] /
    [job.failed] (each carrying the correlation chain
    [run_id]/[batch_id]/[job_id]; the [job_id] of a deduplicated
    computation is its first occurrence's id), then [batch.done]. *)

val resolve_circuit :
  string -> (Dcopt_netlist.Circuit.t, string) result
(** The CLI rule: an existing path is parsed as a [.bench] file
    (parse errors become [Error]), anything else is looked up in
    {!Dcopt_suite.Suite}. *)

(** {1 Pluggable execution}

    {!run_batch_via} is the batch pipeline with the compute step
    abstracted out: resolution, dedup, store/checkpoint lookups and row
    assembly happen on the calling domain, and [execute] turns the
    deduped {!task} array into one {!computed} per task (same order) by
    any means — the in-process domain pool ({!run_batch}'s default) or
    the multi-process fleet ({!Fleet}). Rows depend only on the outcomes
    [execute] returns, never on how it scheduled them: that is the
    byte-identity invariant across the [--jobs] and [--workers] paths. *)

type task
(** One distinct computation of a batch: the first occurrence of its
    digest, carrying that occurrence's job id as its event-log
    identity. *)

val task_id : task -> string
(** The job id of the digest's first occurrence in the batch. *)

val task_digest : task -> string
(** The content-addressed store key ({!Store.digest}). *)

val task_job : task -> Job.t
(** The job spec to ship to a worker process, with [id] pinned to
    {!task_id} so the worker joins the coordinator's correlation chain
    under the same job id. *)

type computed = {
  comp_outcome : Job.outcome;
  comp_attempts : int;
  comp_latency_s : float;
  comp_wall_ns : int64;
  comp_alloc_bytes : float;
}
(** What one execution produced. Only [comp_outcome] reaches result
    rows; the rest feeds histograms. Remote executors that cannot
    measure a field report it as zero. *)

val compute_task : batch_id:int -> task -> computed
(** Run one task on the calling domain, isolated exactly as the pool
    path: per-attempt deadline, bounded retry, any exception folded
    into a [Failed] outcome. Establishes the [batch_id]/[job_id] event
    scope itself, so executors may call it from any domain (or as a
    local fallback when no worker can take the task). *)

val run_batch_via :
  ?store:Store.t ->
  ?checkpoint:Checkpoint.t ->
  ?batch_id:int ->
  execute:(batch_id:int -> task array -> computed array) ->
  Job.t list ->
  Job.row list
(** {!run_batch} with the compute step supplied by [execute] (which
    must return exactly one {!computed} per task, in task order —
    anything else raises [Invalid_argument]). [batch_id] defaults to a
    fresh id from the process-wide batch sequence. [execute] is
    responsible for checkpoint recording as results land (the pipeline
    only {e reads} the checkpoint up front). *)

val run_batch :
  ?store:Store.t ->
  ?checkpoint:Checkpoint.t ->
  ?batch_id:int ->
  Job.t list ->
  Job.row list
(** Run every job (worker count from {!Dcopt_par.Par.jobs}); with a
    [store], solved/infeasible outcomes are served from and persisted to
    it. Never raises on job-level problems.

    With a [checkpoint], every completed job's outcome is additionally
    recorded there {e from the worker, as it finishes} — and jobs whose
    outcome is already in the checkpoint skip computation entirely. A
    checkpoint hit is reported with [cache_hit = false] (and fed into
    the store when one is given), so resuming an interrupted batch with
    the same checkpoint directory yields byte-identical rows to an
    uninterrupted run. Store hits are preferred over checkpoint hits. *)

val partial_rows :
  ?store:Store.t -> ?checkpoint:Checkpoint.t -> Job.t list -> Job.row list
(** The subset of {!run_batch}'s rows already answerable without running
    any optimizer: resolution failures, store hits and checkpoint hits,
    in job order, other jobs silently omitted. This is the interrupt
    path — [minpower batch]'s SIGINT/SIGTERM handler emits these as the
    partial result of a killed run. Touches no batch counters. *)

val serve :
  ?store:Store.t ->
  ?run:(Job.t list -> Job.row list) ->
  in_channel ->
  out_channel ->
  unit
(** Long-running loop: one job spec as JSON per input line, one result
    row as JSON per output line (flushed), until EOF. Blank lines are
    skipped; unparsable lines, shape-invalid jobs and exceptions
    escaping the runner all produce a [Failed] row with id ["line<n>"]
    and the session continues — a malformed frame can never take the
    loop down. [run] replaces the default per-line {!run_batch} (the
    fleet coordinator plugs in {!Fleet.run_batch} here).

    Lines that are not JSON objects are control requests answered from
    the live registry mid-session: ["metrics"] returns the OpenMetrics
    exposition ({!Dcopt_obs.Metrics.render_openmetrics}; the client
    reads until its ["# EOF"] terminator line), ["status"] returns one
    JSON line with the service counters and gauges. An unknown bare
    word produces a [Failed] row. *)

val serve_unix_socket :
  ?store:Store.t -> ?run:(Job.t list -> Job.row list) -> string -> unit
(** Bind a unix domain socket at this path (unlinking a stale one) and
    {!serve} each connection in sequence, forever. A connection that
    drops mid-session or throws ends only its own session, never the
    accept loop. *)
