(** Batch optimization service: schedule many {!Job}s over the
    {!Dcopt_par.Par} domain pool with per-job isolation, cooperative
    timeouts, bounded retry and a content-addressed {!Store} cache.

    Guarantees:

    - {b Determinism}: result rows come back in job order and carry no
      wall-clock data, so a batch at [--jobs 4] is byte-identical to
      [--jobs 1] (latency and retry counts go to {!Dcopt_obs.Metrics}
      instead). Identical jobs are deduplicated by digest before
      scheduling, so their [cache_hit] flags don't depend on scheduling
      either: the first occurrence computes (or hits the store), the
      rest always read as hits.
    - {b Isolation}: everything a job can do wrong — unknown circuit or
      optimizer, malformed config, optimizer exception, timeout after
      all retries — becomes a [Failed] row; sibling jobs and the batch
      itself are unaffected.
    - {b Bounded retry}: a crash or timeout is retried up to
      [job.retries] times; each attempt gets a fresh deadline.

    Timeouts are cooperative: the service injects a deadline check into
    the optimizer's telemetry observer stream, so optimizers that ignore
    [?observer] (multi-vt, multi-vdd — see {!Dcopt_core.Optimizer})
    run to completion regardless.

    Observability (all under the [service.] prefix): [jobs],
    [solved]/[infeasible]/[failed], [cache.hits]/[cache.misses] and
    [retries] counters; [queue_depth] and [in_flight] gauges set around
    the batch; [latency] (seconds per job), [attempts], [job.wall_ns]
    and [job.alloc_bytes] histograms observed after the pool barrier on
    the main domain (per-job wall time and domain-local allocation are
    measured on the worker and carried back — never into result rows,
    which stay wall-clock-free); a [service.batch] span with per-job
    [service.job] children recorded in each worker's own trace buffer.

    Every batch also narrates itself to {!Dcopt_obs.Events} under a
    fresh [batch_id]: [batch.start], per-job [job.store_hit] /
    [job.checkpoint_hit] / [job.start] / [job.retry] / [job.done] /
    [job.failed] (each carrying the correlation chain
    [run_id]/[batch_id]/[job_id]; the [job_id] of a deduplicated
    computation is its first occurrence's id), then [batch.done]. *)

val resolve_circuit :
  string -> (Dcopt_netlist.Circuit.t, string) result
(** The CLI rule: an existing path is parsed as a [.bench] file
    (parse errors become [Error]), anything else is looked up in
    {!Dcopt_suite.Suite}. *)

val run_batch :
  ?store:Store.t -> ?checkpoint:Checkpoint.t -> Job.t list -> Job.row list
(** Run every job (worker count from {!Dcopt_par.Par.jobs}); with a
    [store], solved/infeasible outcomes are served from and persisted to
    it. Never raises on job-level problems.

    With a [checkpoint], every completed job's outcome is additionally
    recorded there {e from the worker, as it finishes} — and jobs whose
    outcome is already in the checkpoint skip computation entirely. A
    checkpoint hit is reported with [cache_hit = false] (and fed into
    the store when one is given), so resuming an interrupted batch with
    the same checkpoint directory yields byte-identical rows to an
    uninterrupted run. Store hits are preferred over checkpoint hits. *)

val partial_rows :
  ?store:Store.t -> ?checkpoint:Checkpoint.t -> Job.t list -> Job.row list
(** The subset of {!run_batch}'s rows already answerable without running
    any optimizer: resolution failures, store hits and checkpoint hits,
    in job order, other jobs silently omitted. This is the interrupt
    path — [minpower batch]'s SIGINT/SIGTERM handler emits these as the
    partial result of a killed run. Touches no batch counters. *)

val serve :
  ?store:Store.t -> in_channel -> out_channel -> unit
(** Long-running loop: one job spec as JSON per input line, one result
    row as JSON per output line (flushed), until EOF. Blank lines are
    skipped; unparsable lines produce a [Failed] row with id
    ["line<n>"].

    Lines that are not JSON objects are control requests answered from
    the live registry mid-session: ["metrics"] returns the OpenMetrics
    exposition ({!Dcopt_obs.Metrics.render_openmetrics}; the client
    reads until its ["# EOF"] terminator line), ["status"] returns one
    JSON line with the service counters and gauges. An unknown bare
    word produces a [Failed] row. *)

val serve_unix_socket : ?store:Store.t -> string -> unit
(** Bind a unix domain socket at this path (unlinking a stale one) and
    {!serve} each connection in sequence, forever. *)
