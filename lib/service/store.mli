(** Content-addressed on-disk result cache for the batch service.

    Keys are stable digests of everything that determines an
    optimization result: the netlist {e structure} (its canonical
    [.bench] rendering, so a suite name and an identical file hit the
    same entry), the full serialized {!Dcopt_core.Flow.config}
    (technology included), the optimizer name, and
    {!code_model_version} — a constant bumped whenever the numerical
    models change, which implicitly invalidates every older entry.

    Values are one JSON document per entry ([<digest>.json] in the store
    directory), written atomically (temp file + rename), so a killed
    batch never leaves a corrupt entry; unreadable or unparsable entries
    read back as misses. *)

type t

val code_model_version : string
(** Folded into every digest; bump on any behavioural model change. *)

val open_ : string -> t
(** Open (creating the directory, including parents) a store rooted at
    this path. Raises [Sys_error] when the path exists but is not a
    directory. *)

val dir : t -> string

val digest :
  ?scenario:string ->
  optimizer:string ->
  config:Dcopt_core.Flow.config ->
  Dcopt_netlist.Circuit.t ->
  string
(** The cache key: an MD5 hex digest over {!code_model_version}, the
    optimizer name, the canonical config JSON and the canonical [.bench]
    text of the circuit. [scenario] — the canonical rendering of a job's
    constraint set and corner list — is folded in {e only when present},
    so digests (and cached rows) of scenario-less jobs are unchanged
    from before the scenario redesign. *)

val find : t -> string -> Dcopt_util.Json.t option
(** Look a digest up; [None] on absence or on any read/parse failure.
    An entry that exists but cannot be read back whole (truncated,
    shrunk between the size check and the read, bit-flipped, unparsable)
    is still a miss — never an exception — but bumps the
    [service.store.corrupt] counter so store rot is observable. The
    [store.find] fault site injects [eio] here (counted miss). *)

val put : t -> string -> Dcopt_util.Json.t -> unit
(** Atomically (over)write an entry, best-effort: a write that fails
    ([ENOSPC], [EIO], a lost rename) removes its temp file, bumps
    [service.store.write_failed], emits a [store.write_failed] event and
    returns — the store is a cache, so a full disk never aborts a batch
    that already holds the result in memory. Safe for concurrent
    multi-process writers of one shared store directory: tmp names are
    unique per (pid, in-process counter), and a rename lost to a
    concurrent writer of the same key is a benign race (entries are
    content-addressed, so both writers carried the same bytes), not a
    failure. The [store.put] fault site injects [enospc] / [eio]
    (abandoned write) and [short] (a torn document that reaches disk and
    is caught by {!find} at read-back) here. *)

val note_corrupt : unit -> unit
(** Bump the [service.store.corrupt] counter. For callers ({!Checkpoint},
    the service) that decode a stored document further and find it
    shape-invalid — the same "existed but unusable" condition {!find}
    counts for unreadable files. *)
