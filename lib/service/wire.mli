(** Fleet protocol framing: newline-delimited, checksummed JSON frames
    between the coordinator ({!Fleet}) and worker processes ({!Worker}).

    Coordinator → worker:

    - [{"frame":"job","seq":N,"batch_id":B,"job":{…}}] — run this job
      spec; [seq] is the coordinator's dispatch sequence number, echoed
      back with the result so requeued jobs can never be double-counted.
    - [{"frame":"shutdown"}] — finish nothing further and exit cleanly.

    Worker → coordinator:

    - [{"frame":"hello","worker_id":…,"pid":…,"version":…}] — first
      frame after connecting; a version mismatch refuses the worker.
    - [{"frame":"heartbeat"}] — liveness while computing (an idle worker
      is silent; it is the {e absence} of both heartbeats and results
      from a worker with jobs in flight that signals death).
    - [{"frame":"result","seq":N,"row":{…}}] — the finished row for
      dispatch [seq].

    Since protocol version 2, each frame line is a checksum envelope
    ["!<16 hex digits>:<payload json>"]: the FNV-1a 64 digest of the
    payload travels with it, and a mismatch (a bit flipped in transit, a
    truncated write reassembled with the next frame) is a parse error.
    The peer that sent the damaged frame is counted lost and its
    in-flight work requeued — so transport corruption costs time, never
    row correctness. Rendered JSON and the envelope contain no raw
    newline, so readers reassemble on newlines alone. *)

val protocol_version : int

type to_worker =
  | Assign of { seq : int; batch_id : int; job : Job.t }
  | Shutdown

type from_worker =
  | Hello of { worker_id : string; pid : int; version : int }
  | Heartbeat
  | Result of { seq : int; row : Job.row }

val to_worker_to_json : to_worker -> Dcopt_util.Json.t
val from_worker_to_json : from_worker -> Dcopt_util.Json.t

val encode : Dcopt_util.Json.t -> string
(** One frame line (checksum envelope around the rendered document),
    without the trailing newline. *)

val frame_line : string -> string
(** Wrap an already-rendered payload in the checksum envelope (tests and
    tools that need to feed the parser hand-built payloads). *)

val to_worker_of_line : string -> (to_worker, string) result
val from_worker_of_line : string -> (from_worker, string) result
(** Parse one frame line; [Error] on a missing/forged checksum
    envelope, non-JSON payload, a missing/mistyped member, or an
    unknown ["frame"] kind. *)

val write_frame : Unix.file_descr -> Dcopt_util.Json.t -> unit
(** Write one frame (envelope + newline) whole, retrying short writes
    and [EINTR]. Raises [Unix.Unix_error] on a dead peer ([EPIPE] when
    [SIGPIPE] is ignored, which {!Fleet} and {!Worker} both arrange). *)

val send : site:string -> Unix.file_descr -> Dcopt_util.Json.t -> unit
(** {!write_frame} through the fault-injection seam: {!Faults.fire}d
    wire actions ([drop]/[delay]/[truncate]/[corrupt]) are applied to
    the frame bytes first. Every production send names its site and
    goes through here; [site] is e.g. ["wire.send.result"]. *)

(** {1 Addresses} *)

type addr = Unix_path of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
(** ["host:port"] and ["[v6-literal]:port"] are {!Tcp} (any port in
    0..65535 — port 0 is only meaningful to {!listen}); anything with a
    ['/'] or without a [':'] is a unix-domain socket path. A lone [':']
    with a malformed port is an error, not a silent fallback to a unix
    path. *)

val string_of_addr : addr -> string
(** Inverse of {!addr_of_string} (IPv6 hosts re-bracketed). *)

val sockaddr_of :
  addr -> (Unix.socket_domain * Unix.sockaddr, string) result
(** Resolve: unix paths verbatim; TCP hosts first as IPv4/IPv6 literals,
    then through [getaddrinfo] (stream sockets only). [Error] carries a
    human-readable reason (unknown host, malformed literal) for the
    caller to wrap in a located [config.addr] diagnostic. *)

val connect_sockaddr : Unix.socket_domain * Unix.sockaddr -> Unix.file_descr
(** Dial an already-resolved address. Raises [Unix.Unix_error] (e.g.
    [ECONNREFUSED]) — the transient-failure shape reconnect loops
    retry on. *)

val connect : addr -> (Unix.file_descr, string) result
(** Resolve then dial. [Error] for configuration problems (resolution
    failure, connecting to port 0) that no retry can fix; raises
    [Unix.Unix_error] for transient dial failures, like
    {!connect_sockaddr}. *)

val listen : ?backlog:int -> addr -> (Unix.file_descr, string) result
(** Bind and listen. Unlinks a stale unix socket path first and sets
    [SO_REUSEADDR] for TCP; a TCP port of 0 binds an ephemeral port —
    read it back with {!bound_addr}. [Error] on resolution failure;
    raises [Unix.Unix_error] on bind/listen failure. *)

val bound_addr : Unix.file_descr -> addr -> addr
(** The address a {!listen} socket actually bound: for {!Tcp} the port
    is read back via [getsockname] (resolving port 0 to the kernel's
    pick); unix paths are returned unchanged. *)
