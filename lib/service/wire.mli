(** Fleet protocol framing: newline-delimited JSON frames between the
    coordinator ({!Fleet}) and worker processes ({!Worker}).

    Coordinator → worker:

    - [{"frame":"job","seq":N,"batch_id":B,"job":{…}}] — run this job
      spec; [seq] is the coordinator's dispatch sequence number, echoed
      back with the result so requeued jobs can never be double-counted.
    - [{"frame":"shutdown"}] — finish nothing further and exit cleanly.

    Worker → coordinator:

    - [{"frame":"hello","worker_id":…,"pid":…,"version":…}] — first
      frame after connecting; a version mismatch refuses the worker.
    - [{"frame":"heartbeat"}] — liveness while computing (an idle worker
      is silent; it is the {e absence} of both heartbeats and results
      from a worker with jobs in flight that signals death).
    - [{"frame":"result","seq":N,"row":{…}}] — the finished row for
      dispatch [seq].

    A frame is one [Json.to_string] document plus ['\n']; rendered JSON
    never contains a raw newline, so readers reassemble on newlines
    alone. *)

val protocol_version : int

type to_worker =
  | Assign of { seq : int; batch_id : int; job : Job.t }
  | Shutdown

type from_worker =
  | Hello of { worker_id : string; pid : int; version : int }
  | Heartbeat
  | Result of { seq : int; row : Job.row }

val to_worker_to_json : to_worker -> Dcopt_util.Json.t
val from_worker_to_json : from_worker -> Dcopt_util.Json.t

val to_worker_of_line : string -> (to_worker, string) result
val from_worker_of_line : string -> (from_worker, string) result
(** Parse one frame line; [Error] on non-JSON, a missing/mistyped
    member, or an unknown ["frame"] kind. *)

val write_frame : Unix.file_descr -> Dcopt_util.Json.t -> unit
(** Write one frame (document + newline) whole, retrying short writes
    and [EINTR]. Raises [Unix.Unix_error] on a dead peer ([EPIPE] when
    [SIGPIPE] is ignored, which {!Fleet} and {!Worker} both arrange). *)

(** {1 Addresses} *)

type addr = Unix_path of string | Tcp of string * int

val addr_of_string : string -> addr
(** ["host:port"] with an integral port and no ['/'] is {!Tcp};
    everything else is a unix-domain socket path. *)

val connect : addr -> Unix.file_descr
val listen : ?backlog:int -> addr -> Unix.file_descr
(** [listen] unlinks a stale unix socket path and sets [SO_REUSEADDR]
    for TCP. Both raise [Unix.Unix_error] on failure. *)
