(** Fleet worker process body: the [minpower worker] subcommand.

    Connects to a coordinator ({!Fleet}) address, announces itself with
    a [hello] frame, then loops: read a [job] frame, run it through the
    full single-job {!Service.run_batch} pipeline (sharing the
    coordinator's [batch_id], so the event-log correlation chain
    [run_id → batch_id → worker_id → job_id] spans processes), and send
    the [result] frame back. While a job computes, a background thread
    streams [heartbeat] frames so the coordinator can tell a slow
    optimizer from a dead process; an idle worker is silent.

    With a [reconnect] budget, a lost coordinator connection (or a
    refused dial) is retried under {!Policy.backoff_delay_s}: capped
    exponential backoff whose jitter comes from a PRNG seeded with the
    worker id, so the whole retry schedule is deterministic per worker.
    A clean [shutdown] frame never triggers a reconnect. Spawned fleet
    workers run with the default budget of 0 — their coordinator
    respawns them — while externally-launched workers
    ([minpower worker --connect host:port --reconnect N]) ride out
    coordinator restarts and network blips themselves.

    Workers are meant to run with the domain pool at [jobs=1] — fleet
    parallelism replaces the in-process pool — which the CLI arranges.

    Fault injection: the worker arms [DCOPT_FAULT_PLAN] on entry
    ({!Faults.arm_from_env}) and sets its role to the worker id, then
    exposes the [worker.job] (before computing) and [worker.result]
    (before replying) seams for [stall]/[exit]/[kill], and sends every
    frame through {!Wire.send} sites. The older
    [DCOPT_FLEET_CHAOS_KILL="<worker_id>:<nth>"] hook (SIGKILL in place
    of the nth result) is kept for compatibility. *)

val run :
  ?store:Store.t ->
  ?heartbeat_interval_s:float ->
  ?reconnect:int ->
  connect:Wire.addr ->
  worker_id:string ->
  unit ->
  bool
(** Run the worker loop until a clean [shutdown] frame ([true]) or until
    the coordinator stays unreachable / desynchronises with the
    reconnect budget spent ([false]). [reconnect] (default 0) caps
    reconnection attempts across the whole run. [store] is this
    worker's handle on the shared warm tier (hits served worker-side);
    heartbeats default to every 0.5 s. Sets the process event-log
    worker id and ignores [SIGPIPE]. Raises [Failure] on an unusable
    address (resolution failure, port 0) and [Unix.Unix_error] on a
    dial failure with no reconnect budget. *)
