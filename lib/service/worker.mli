(** Fleet worker process body: the [minpower worker] subcommand.

    Connects to a coordinator ({!Fleet}) socket, announces itself with a
    [hello] frame, then loops: read a [job] frame, run it through the
    full single-job {!Service.run_batch} pipeline (sharing the
    coordinator's [batch_id], so the event-log correlation chain
    [run_id → batch_id → worker_id → job_id] spans processes), and send
    the [result] frame back. While a job computes, a background thread
    streams [heartbeat] frames so the coordinator can tell a slow
    optimizer from a dead process; an idle worker is silent.

    Workers are meant to run with the domain pool at [jobs=1] — fleet
    parallelism replaces the in-process pool — which the CLI arranges.

    Chaos hook (tests only): with
    [DCOPT_FLEET_CHAOS_KILL="<worker_id>:<nth>"] in the environment, the
    named worker [SIGKILL]s itself in place of sending its [nth] result,
    exercising the coordinator's requeue path deterministically. *)

val run :
  ?store:Store.t ->
  ?heartbeat_interval_s:float ->
  connect:string ->
  worker_id:string ->
  unit ->
  bool
(** Run the worker loop until a [shutdown] frame ([true]) or until the
    coordinator disappears / desynchronises ([false]). [connect] is
    parsed by {!Wire.addr_of_string}; [store] is this worker's handle on
    the shared warm tier (hits served worker-side); heartbeats default
    to every 0.5 s. Sets the process event-log worker id and ignores
    [SIGPIPE]. *)
