module Metrics = Dcopt_obs.Metrics
module Events = Dcopt_obs.Events
module Json = Dcopt_util.Json

let workers_g =
  Metrics.gauge ~help:"Fleet worker processes currently connected and healthy"
    "service.fleet.workers"

let in_flight_g =
  Metrics.gauge ~help:"Jobs dispatched to fleet workers and not yet answered"
    "service.fleet.in_flight"

let spawned_c =
  Metrics.counter ~help:"Fleet worker processes spawned" "service.fleet.spawned"

let dispatched_c =
  Metrics.counter ~help:"Job frames dispatched to fleet workers"
    "service.fleet.dispatched"

let results_c =
  Metrics.counter ~help:"Result frames received from fleet workers"
    "service.fleet.results"

let heartbeats_c =
  Metrics.counter ~help:"Heartbeat frames received from fleet workers"
    "service.fleet.heartbeats"

let worker_lost_c =
  Metrics.counter
    ~help:"Fleet workers declared dead (EOF, bad frame, heartbeat timeout, \
           exit)"
    "service.fleet.worker_lost"

let requeued_c =
  Metrics.counter
    ~help:"In-flight jobs requeued onto surviving workers after a loss"
    "service.fleet.requeued"

let fallback_c =
  Metrics.counter
    ~help:"Jobs the coordinator computed in-process (requeue budget \
           exhausted or no workers left)"
    "service.fleet.fallback"

let quarantined_c =
  Metrics.counter
    ~help:"Worker identities quarantined after exhausting their failure \
           budget (no longer respawned or accepted)"
    "service.fleet.quarantined"

type options = {
  workers : int;
  binary : string;
  worker_args : string list;
  max_in_flight : int;
  heartbeat_timeout_s : float;
  max_requeues : int;
  spawn_timeout_s : float;
  listen : Wire.addr option;
  quarantine_after : int;
}

let env_float name default =
  match Option.map float_of_string_opt (Sys.getenv_opt name) with
  | Some (Some v) when v > 0.0 -> v
  | _ -> default

let env_int name default =
  match Option.map int_of_string_opt (Sys.getenv_opt name) with
  | Some (Some v) when v >= 0 -> v
  | _ -> default

let options ?(binary = Sys.executable_name) ?(worker_args = [])
    ?(max_in_flight = 2) ?heartbeat_timeout_s ?max_requeues
    ?(spawn_timeout_s = 30.0) ?listen ?quarantine_after ~workers () =
  if workers < 1 then invalid_arg "Fleet.options: workers must be >= 1";
  let heartbeat_timeout_s =
    match heartbeat_timeout_s with
    | Some v -> v
    | None -> env_float "DCOPT_FLEET_HEARTBEAT_S" 5.0
  in
  let max_requeues =
    match max_requeues with
    | Some v -> v
    | None -> env_int "DCOPT_FLEET_MAX_REQUEUES" 2
  in
  let quarantine_after =
    match quarantine_after with
    | Some v -> max 1 v
    | None -> max 1 (env_int "DCOPT_FLEET_QUARANTINE_AFTER" 2)
  in
  {
    workers;
    binary;
    worker_args;
    max_in_flight = max 1 max_in_flight;
    heartbeat_timeout_s;
    max_requeues;
    spawn_timeout_s;
    listen;
    quarantine_after;
  }

type wstate = Spawning | Ready | Lost

type worker = {
  w_id : string;
  w_pid : int;  (** 0 for external workers (reported pid is advisory) *)
  w_external : bool;
  mutable w_fd : Unix.file_descr option;
  w_buf : Buffer.t;
  mutable w_state : wstate;
  (* (dispatch seq, task index, dispatch time) — echoing seq with the
     result makes a stale answer from a worker we already gave up on
     harmless: its seq is no longer in flight anywhere *)
  mutable w_inflight : (int * int * float) list;
  mutable w_last_seen : float;
  mutable w_reaped : bool;
}

(* An accepted connection that has not yet identified itself. *)
type pending = { p_fd : Unix.file_descr; p_buf : Buffer.t; p_since : float }

type t = {
  opts : options;
  sock_path : string option;  (** unix listen path, unlinked at shutdown *)
  connect_addr : Wire.addr;  (** what spawned workers dial *)
  listen_fd : Unix.file_descr;
  losses : Policy.quarantine;
  mutable workers : worker list;
  mutable pending : pending list;
  mutable next_seq : int;
  mutable closed : bool;
}

let sock_seq = Atomic.make 0

let fresh_sock_path () =
  let name =
    Printf.sprintf "dcopt-fleet-%d-%d.sock" (Unix.getpid ())
      (Atomic.fetch_and_add sock_seq 1)
  in
  let in_dir dir = Filename.concat dir name in
  let candidate = in_dir (Filename.get_temp_dir_name ()) in
  (* unix socket paths are capped around 108 bytes; a deep TMPDIR must
     not brick the fleet *)
  if String.length candidate < 100 then candidate else in_dir "/tmp"

(* The addr a locally-spawned worker should dial: a wildcard listen host
   binds every interface, but the child must dial a concrete one. *)
let connectable = function
  | Wire.Tcp (("0.0.0.0" | "::" | "*" | ""), port) ->
    Wire.Tcp ("127.0.0.1", port)
  | a -> a

let create opts =
  (* a worker dying with frames still buffered must surface as EPIPE on
     the next write, not kill the coordinator *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let addr =
    match opts.listen with
    | Some a -> a
    | None -> Wire.Unix_path (fresh_sock_path ())
  in
  let listen_fd =
    match Wire.listen addr with
    | Ok fd -> fd
    | Error msg -> invalid_arg ("Fleet.create: " ^ msg)
  in
  let bound = Wire.bound_addr listen_fd addr in
  {
    opts;
    sock_path = (match addr with Wire.Unix_path p -> Some p | Wire.Tcp _ -> None);
    connect_addr = connectable bound;
    listen_fd;
    losses = Policy.quarantine ~after:opts.quarantine_after ();
    workers = [];
    pending = [];
    next_seq = 0;
    closed = false;
  }

let now () = Dcopt_util.Clock.monotonic_s ()

let spawn t ~w_id =
  let argv =
    Array.of_list
      (t.opts.binary :: "worker" :: "--connect"
      :: Wire.string_of_addr t.connect_addr
      :: "--worker-id" :: w_id :: t.opts.worker_args)
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Fun.protect
      ~finally:(fun () -> Unix.close devnull)
      (fun () ->
        (* stdout → stderr: the coordinator's stdout carries result
           rows; nothing a worker prints may land there *)
        Unix.create_process t.opts.binary argv devnull Unix.stderr Unix.stderr)
  in
  Metrics.incr spawned_c;
  Events.info "fleet.spawn"
    ~fields:
      [ ("worker_id", Json.String w_id); ("pid", Json.Int pid) ];
  t.workers <-
    t.workers
    @ [
        {
          w_id;
          w_pid = pid;
          w_external = false;
          w_fd = None;
          w_buf = Buffer.create 4096;
          w_state = Spawning;
          w_inflight = [];
          w_last_seen = now ();
          w_reaped = false;
        };
      ]

(* The spawned roster is the fixed id set w0..w(workers-1): a lost id is
   respawned under the same name (mid-batch too), so its failure budget
   accumulates across incarnations and quarantine is deterministic. *)
let ensure_workers t =
  for i = 0 to t.opts.workers - 1 do
    let w_id = Printf.sprintf "w%d" i in
    if
      (not (List.exists (fun w -> w.w_id = w_id && w.w_state <> Lost) t.workers))
      && not (Policy.quarantined t.losses w_id)
    then spawn t ~w_id
  done

let update_gauges t =
  let alive = List.filter (fun w -> w.w_state = Ready) t.workers in
  Metrics.set workers_g (float_of_int (List.length alive));
  Metrics.set in_flight_g
    (float_of_int
       (List.fold_left (fun acc w -> acc + List.length w.w_inflight) 0 alive))

let close_fd_opt w =
  match w.w_fd with
  | Some fd ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    w.w_fd <- None
  | None -> ()

let reap ?(block = false) w =
  if not w.w_reaped then
    match Unix.waitpid (if block then [] else [ Unix.WNOHANG ]) w.w_pid with
    | 0, _ -> ()
    | _ -> w.w_reaped <- true
    | exception Unix.Unix_error _ -> w.w_reaped <- true

(* Dead workers whose process is collected carry no further state; drop
   them so a long serve session's roster doesn't grow without bound.
   Their loss history lives on in [t.losses]. *)
let prune t =
  t.workers <-
    List.filter (fun w -> not (w.w_state = Lost && w.w_reaped)) t.workers

(* Run the scheduling loop for one task array. This is the [execute]
   hook of {!Service.run_batch_via}: everything around it (dedup,
   store/checkpoint reads, row assembly) already happened or will
   happen on the coordinator, so all this loop owes is one outcome per
   task — whatever workers live or die in between. *)
let execute t ?checkpoint ~batch_id tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    prune t;
    ensure_workers t;
    let results : Service.computed option array = Array.make n None in
    let remaining = ref n in
    let queue = Queue.create () in
    Array.iteri (fun i _ -> Queue.add i queue) tasks;
    let requeues = Array.make n 0 in
    let record_result idx (c : Service.computed) =
      if Option.is_none results.(idx) then begin
        results.(idx) <- Some c;
        decr remaining;
        match checkpoint with
        | Some ck ->
          Checkpoint.record ck
            (Service.task_digest tasks.(idx))
            c.Service.comp_outcome
        | None -> ()
      end
    in
    let fallback idx ~why =
      Metrics.incr fallback_c;
      Events.warn "fleet.fallback"
        ~fields:
          [
            ("job_id", Json.String (Service.task_id tasks.(idx)));
            ("why", Json.String why);
          ];
      record_result idx (Service.compute_task ~batch_id tasks.(idx))
    in
    let lose_worker w ~why =
      if w.w_state <> Lost then begin
        w.w_state <- Lost;
        Metrics.incr worker_lost_c;
        let loss_count = Policy.note_loss t.losses w.w_id in
        Events.warn "fleet.worker_lost"
          ~fields:
            [
              ("worker_id", Json.String w.w_id);
              ("why", Json.String why);
              ("in_flight", Json.Int (List.length w.w_inflight));
              ("losses", Json.Int loss_count);
            ];
        if loss_count = t.opts.quarantine_after then begin
          Metrics.incr quarantined_c;
          Events.warn "fleet.quarantine"
            ~fields:
              [
                ("worker_id", Json.String w.w_id);
                ("losses", Json.Int loss_count);
              ]
        end;
        close_fd_opt w;
        (* harmless on an already-dead pid; necessary for a hung one *)
        if not w.w_external then
          (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
        let inflight = w.w_inflight in
        w.w_inflight <- [];
        List.iter
          (fun (_, idx, _) ->
            if Option.is_none results.(idx) then begin
              requeues.(idx) <- requeues.(idx) + 1;
              Metrics.incr requeued_c;
              Events.warn "fleet.requeue"
                ~fields:
                  [
                    ("job_id", Json.String (Service.task_id tasks.(idx)));
                    ("worker_id", Json.String w.w_id);
                    ("attempt", Json.Int (requeues.(idx) + 1));
                  ];
              if requeues.(idx) > t.opts.max_requeues then
                fallback idx ~why:"requeue budget exhausted"
              else Queue.add idx queue
            end)
          inflight
      end
    in
    (* work stealing, worker-pull shape: nobody owns a shard — a ready
       worker with window room takes the next queued task, so a slow or
       dead worker's share drains to whoever is keeping up *)
    let dispatch w =
      let continue = ref true in
      while
        !continue && w.w_state = Ready
        && List.length w.w_inflight < t.opts.max_in_flight
        && not (Queue.is_empty queue)
      do
        let idx = Queue.pop queue in
        if Option.is_none results.(idx) then begin
          let seq = t.next_seq in
          t.next_seq <- t.next_seq + 1;
          let frame =
            Wire.Assign { seq; batch_id; job = Service.task_job tasks.(idx) }
          in
          match w.w_fd with
          | None ->
            Queue.add idx queue;
            continue := false
          | Some fd -> (
            match
              Wire.send ~site:"wire.send.job" fd (Wire.to_worker_to_json frame)
            with
            | () ->
              w.w_inflight <- (seq, idx, now ()) :: w.w_inflight;
              Metrics.incr dispatched_c;
              Events.debug "fleet.dispatch"
                ~fields:
                  [
                    ("job_id", Json.String (Service.task_id tasks.(idx)));
                    ("worker_id", Json.String w.w_id);
                    ("seq", Json.Int seq);
                  ]
            | exception (Unix.Unix_error _ | Sys_error _) ->
              (* the job never reached the worker: back to the queue for
                 a sibling (not a requeue — nothing was lost mid-run) *)
              Queue.add idx queue;
              lose_worker w ~why:"write failed";
              continue := false)
        end
      done
    in
    let handle_frame w line =
      w.w_last_seen <- now ();
      match Wire.from_worker_of_line line with
      | Error msg -> lose_worker w ~why:("bad frame: " ^ msg)
      | Ok (Wire.Hello _) -> () (* duplicate hello: harmless *)
      | Ok Wire.Heartbeat -> Metrics.incr heartbeats_c
      | Ok (Wire.Result { seq; row }) -> (
        match List.find_opt (fun (s, _, _) -> s = seq) w.w_inflight with
        | None ->
          (* a dispatch this coordinator already wrote off; the requeued
             copy is authoritative, this answer is dropped *)
          ()
        | Some (_, idx, t0) ->
          w.w_inflight <- List.filter (fun (s, _, _) -> s <> seq) w.w_inflight;
          Metrics.incr results_c;
          let wall_s = now () -. t0 in
          record_result idx
            {
              Service.comp_outcome = row.Job.outcome;
              comp_attempts = 1 + requeues.(idx);
              comp_latency_s = wall_s;
              comp_wall_ns = Int64.of_float (wall_s *. 1e9);
              comp_alloc_bytes = 0.0;
            })
    in
    let drain_lines w =
      let continue = ref true in
      while !continue && w.w_state <> Lost do
        let contents = Buffer.contents w.w_buf in
        match String.index_opt contents '\n' with
        | None -> continue := false
        | Some nl ->
          let line = String.sub contents 0 nl in
          Buffer.clear w.w_buf;
          Buffer.add_substring w.w_buf contents (nl + 1)
            (String.length contents - nl - 1);
          handle_frame w line
      done
    in
    let read_buf = Bytes.create 65536 in
    let read_worker w =
      match w.w_fd with
      | None -> ()
      | Some fd -> (
        match Unix.read fd read_buf 0 (Bytes.length read_buf) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error _ -> lose_worker w ~why:"read error"
        | 0 -> lose_worker w ~why:"connection closed"
        | len ->
          Buffer.add_subbytes w.w_buf read_buf 0 len;
          drain_lines w)
    in
    let accept_worker p ~worker_id ~pid ~rest =
      let prepare fd =
        (* a wedged worker must stall its own window, not the
           coordinator: a send that cannot complete within the
           timeout errors out and counts the worker lost *)
        try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0
        with Unix.Unix_error _ | Invalid_argument _ -> ()
      in
      match
        List.find_opt
          (fun w -> w.w_id = worker_id && w.w_state = Spawning)
          t.workers
      with
      | Some w ->
        w.w_fd <- Some p.p_fd;
        w.w_state <- Ready;
        w.w_last_seen <- now ();
        prepare p.p_fd;
        Buffer.add_string w.w_buf rest;
        Events.info "fleet.worker_ready"
          ~fields:[ ("worker_id", Json.String worker_id) ];
        drain_lines w
      | None ->
        (* an identity this coordinator never spawned: an external
           worker (multi-host fleets, `minpower worker --connect`) —
           welcome, as long as the id is free. No pid to reap or kill;
           its exit is just an EOF. *)
        prepare p.p_fd;
        let w =
          {
            w_id = worker_id;
            w_pid = 0;
            w_external = true;
            w_fd = Some p.p_fd;
            w_buf = Buffer.create 4096;
            w_state = Ready;
            w_inflight = [];
            w_last_seen = now ();
            w_reaped = true;
          }
        in
        Buffer.add_string w.w_buf rest;
        t.workers <- t.workers @ [ w ];
        Events.info "fleet.worker_ready"
          ~fields:
            [
              ("worker_id", Json.String worker_id);
              ("pid", Json.Int pid);
              ("external", Json.Bool true);
            ];
        drain_lines w
    in
    let attach_pending p =
      t.pending <- List.filter (fun q -> q != p) t.pending;
      let contents = Buffer.contents p.p_buf in
      match String.index_opt contents '\n' with
      | None -> assert false
      | Some nl -> (
        let line = String.sub contents 0 nl in
        let rest =
          String.sub contents (nl + 1) (String.length contents - nl - 1)
        in
        let refuse why =
          Events.warn "fleet.connection_refused"
            ~fields:[ ("why", Json.String why) ];
          try Unix.close p.p_fd with Unix.Unix_error _ -> ()
        in
        match Wire.from_worker_of_line line with
        | Ok (Wire.Hello { worker_id; pid; version })
          when version = Wire.protocol_version ->
          if Policy.quarantined t.losses worker_id then
            refuse ("worker " ^ worker_id ^ " is quarantined")
          else if
            List.exists
              (fun w -> w.w_id = worker_id && w.w_state <> Lost && w.w_fd <> None)
              t.workers
          then refuse ("worker id " ^ worker_id ^ " is already connected")
          else accept_worker p ~worker_id ~pid ~rest
        | Ok (Wire.Hello { version; _ }) ->
          refuse (Printf.sprintf "protocol version %d, want %d" version
                    Wire.protocol_version)
        | Ok _ -> refuse "first frame was not hello"
        | Error msg -> refuse ("bad hello: " ^ msg))
    in
    let read_pending p =
      match Unix.read p.p_fd read_buf 0 (Bytes.length read_buf) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ | 0 ->
        t.pending <- List.filter (fun q -> q != p) t.pending;
        (try Unix.close p.p_fd with Unix.Unix_error _ -> ())
      | len ->
        Buffer.add_subbytes p.p_buf read_buf 0 len;
        if String.contains (Buffer.contents p.p_buf) '\n' then
          attach_pending p
    in
    while !remaining > 0 do
      (* the clock-jump injection seam: a jump displaces the wall clock
         the observability layer reads; loss detection below is
         monotonic and must not care (the regression test for the old
         gettimeofday-based deadlines) *)
      List.iter
        (function
          | Faults.Jump s ->
            Dcopt_util.Clock.jump_wall_ns (Int64.of_float (s *. 1e9))
          | _ -> ())
        (Faults.fire "clock.tick");
      (* a child that exited is lost even if its socket still lingers *)
      List.iter
        (fun w ->
          if not w.w_reaped then begin
            reap w;
            if w.w_reaped && w.w_state <> Lost then
              lose_worker w ~why:"process exited"
          end)
        t.workers;
      List.iter
        (fun w ->
          match w.w_state with
          | Ready
            when w.w_inflight <> []
                 && now () -. w.w_last_seen > t.opts.heartbeat_timeout_s ->
            lose_worker w ~why:"heartbeat timeout"
          | Spawning
            when now () -. w.w_last_seen > t.opts.spawn_timeout_s ->
            lose_worker w ~why:"never connected"
          | _ -> ())
        t.workers;
      (* mid-batch respawn: while work is still queued, a lost spawned
         id comes back under the same name — unless its failure budget
         is spent (quarantine), in which case the remaining workers (or
         the fallback path) absorb its share *)
      if not (Queue.is_empty queue) then begin
        prune t;
        ensure_workers t
      end;
      let alive = List.filter (fun w -> w.w_state = Ready) t.workers in
      let joining = List.filter (fun w -> w.w_state = Spawning) t.workers in
      if alive = [] && joining = [] && t.pending = [] then begin
        (* the whole fleet is gone: the batch still completes — the
           coordinator drains what is left itself, one job at a time *)
        while not (Queue.is_empty queue) do
          let idx = Queue.pop queue in
          if Option.is_none results.(idx) then
            fallback idx ~why:"no workers left"
        done;
        Array.iteri
          (fun idx r ->
            if Option.is_none r then fallback idx ~why:"no workers left")
          results
      end
      else begin
        List.iter dispatch alive;
        update_gauges t;
        let fds =
          (t.listen_fd :: List.map (fun p -> p.p_fd) t.pending)
          @ List.filter_map (fun w -> w.w_fd) alive
        in
        match Unix.select fds [] [] 0.2 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | readable, _, _ ->
          List.iter
            (fun fd ->
              if fd = t.listen_fd then begin
                match Unix.accept t.listen_fd with
                | exception Unix.Unix_error _ -> ()
                | afd, _ ->
                  t.pending <-
                    { p_fd = afd; p_buf = Buffer.create 256; p_since = now () }
                    :: t.pending
              end
              else
                match List.find_opt (fun p -> p.p_fd = fd) t.pending with
                | Some p -> read_pending p
                | None -> (
                  match
                    List.find_opt (fun w -> w.w_fd = Some fd) t.workers
                  with
                  | Some w -> read_worker w
                  | None -> ()))
            readable
      end
    done;
    update_gauges t;
    Array.map
      (function Some c -> c | None -> assert false (* remaining = 0 *))
      results
  end

let run_batch t ?store ?checkpoint jobs =
  if t.closed then invalid_arg "Fleet.run_batch: fleet is shut down";
  Service.run_batch_via ?store ?checkpoint
    ~execute:(fun ~batch_id tasks -> execute t ?checkpoint ~batch_id tasks)
    jobs

let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    List.iter
      (fun w ->
        if w.w_state <> Lost then begin
          (match w.w_fd with
          | Some fd -> (
            try
              Wire.send ~site:"wire.send.shutdown" fd
                (Wire.to_worker_to_json Wire.Shutdown)
            with Unix.Unix_error _ | Sys_error _ -> ())
          | None -> ());
          close_fd_opt w
        end)
      t.workers;
    (* grace period for clean exits, then force the stragglers *)
    let deadline = now () +. 2.0 in
    let rec wait_all () =
      List.iter (fun w -> reap w) t.workers;
      if List.exists (fun w -> not w.w_reaped) t.workers then
        if now () < deadline then begin
          ignore (Unix.select [] [] [] 0.05);
          wait_all ()
        end
        else
          List.iter
            (fun w ->
              if not w.w_reaped then begin
                (try Unix.kill w.w_pid Sys.sigkill
                 with Unix.Unix_error _ -> ());
                reap ~block:true w
              end)
            t.workers
    in
    wait_all ();
    List.iter
      (fun p -> try Unix.close p.p_fd with Unix.Unix_error _ -> ())
      t.pending;
    t.pending <- [];
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match t.sock_path with
    | Some path -> ( try Sys.remove path with Sys_error _ -> ())
    | None -> ());
    Metrics.set workers_g 0.0;
    Metrics.set in_flight_g 0.0
  end
