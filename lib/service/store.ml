module Json = Dcopt_util.Json
module Metrics = Dcopt_obs.Metrics
module Events = Dcopt_obs.Events

let corrupt_c =
  Metrics.counter
    ~help:"store/checkpoint entries that existed but could not be read back"
    "service.store.corrupt"

let write_failed_c =
  Metrics.counter
    ~help:"store writes abandoned on disk errors (the batch continues, \
           that result simply stays uncached)"
    "service.store.write_failed"

type t = { dir : string }

(* bump whenever device models, optimizers or the config/solution
   schemas change numerically observable behaviour *)
let code_model_version = "1"

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    let parent = Filename.dirname path in
    if parent <> path then mkdir_p parent;
    try Sys.mkdir path 0o755
    with Sys_error _ when Sys.is_directory path -> ()
  end

let open_ path =
  mkdir_p path;
  if not (Sys.is_directory path) then
    raise (Sys_error (path ^ ": not a directory"));
  { dir = path }

let dir t = t.dir

(* [scenario] is appended only when present, so every pre-scenario
   digest — and with it every cached single-corner row — is unchanged. *)
let digest ?scenario ~optimizer ~config circuit =
  let base =
    [
      code_model_version;
      optimizer;
      Json.to_string (Dcopt_core.Flow.config_to_json config);
      Dcopt_netlist.Bench_format.to_string circuit;
    ]
  in
  let payload =
    String.concat "\n"
      (match scenario with None -> base | Some s -> base @ [ s ])
  in
  Digest.to_hex (Digest.string payload)

let path_of t key = Filename.concat t.dir (key ^ ".json")

let note_corrupt () = Metrics.incr corrupt_c

(* A missing entry is a quiet miss; an entry that exists but cannot be
   read back whole — truncated, shrunk mid-read, bit-flipped,
   unparsable — is also a miss (a warm batch must never crash on a
   damaged cache) but is counted, so a rotting store shows up in the
   metrics instead of as silently slower runs. *)
let find t key =
  if List.exists (function Faults.Eio -> true | _ -> false)
       (Faults.fire "store.find")
  then begin
    note_corrupt ();
    None
  end
  else
    let path = path_of t key in
    if not (Sys.file_exists path) then None
    else
      match
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | exception Sys_error _ ->
        note_corrupt ();
        None
      | exception End_of_file ->
        (* the file shrank between the length check and the read: a
           partial/short write surfacing at read-back is corruption,
           same as a truncated document *)
        note_corrupt ();
        None
      | text -> (
        match Json.of_string text with
        | Ok v -> Some v
        | Error _ ->
          note_corrupt ();
          None)

(* Tmp names must be collision-safe across every concurrent writer of a
   shared store: the pid separates processes (fleet workers, parallel
   batches), the counter separates domains and repeated writes within
   one process. A colliding tmp name would let one writer rename the
   other's half-written file into place. *)
let tmp_seq = Atomic.make 0

let note_write_failed key error =
  Metrics.incr write_failed_c;
  Events.warn "store.write_failed"
    ~fields:[ ("digest", Json.String key); ("error", Json.String error) ]

(* Writes are best-effort: the store is a cache, so a full disk or a
   flaky device must never abort a batch that already holds the result
   in memory. Failures clean up their temp file, count, and return. *)
let put t key value =
  let faults = Faults.fire "store.put" in
  let injected =
    List.find_map
      (function
        | Faults.Enospc -> Some "ENOSPC (injected)"
        | Faults.Eio -> Some "EIO (injected)"
        | _ -> None)
      faults
  in
  match injected with
  | Some error -> note_write_failed key error
  | None -> (
    let doc = Json.to_string value in
    let doc =
      (* a short write that does reach the directory entry: the torn
         document is caught at read-back by [find] as corruption *)
      match
        List.find_map (function Faults.Short n -> Some n | _ -> None) faults
      with
      | Some n -> String.sub doc 0 (min n (String.length doc))
      | None -> doc
    in
    let path = path_of t key in
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
        (Atomic.fetch_and_add tmp_seq 1)
    in
    match
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc doc)
    with
    | exception Sys_error msg ->
      (try Sys.remove tmp with Sys_error _ -> ());
      note_write_failed key msg
    | () -> (
      (* Entries are content-addressed, so concurrent writers of one key
         are writing the same bytes: whoever renames last wins and nobody
         can tell the difference. A rename that fails while the
         destination now exists is therefore a benign race — another
         writer beat us — not a failure; only a rename that leaves no
         entry behind counts. *)
      try Sys.rename tmp path
      with Sys_error msg ->
        (try Sys.remove tmp with Sys_error _ -> ());
        if not (Sys.file_exists path) then note_write_failed key msg))
