module Json = Dcopt_util.Json
module Solution = Dcopt_opt.Solution
module Text_table = Dcopt_util.Text_table
module Si = Dcopt_util.Si

type t = {
  id : string option;
  circuit : string;
  optimizer : string;
  config : Json.t option;
  scenarios : Json.t option;
  timeout_s : float option;
  retries : int;
}

let make ?id ?(optimizer = "joint") ?config ?scenarios ?timeout_s
    ?(retries = 0) circuit =
  { id; circuit; optimizer; config; scenarios; timeout_s; retries }

let to_json j =
  Json.Obj
    ((match j.id with Some id -> [ ("id", Json.String id) ] | None -> [])
    @ [ ("circuit", Json.String j.circuit);
        ("optimizer", Json.String j.optimizer) ]
    @ (match j.config with Some c -> [ ("config", c) ] | None -> [])
    @ (match j.scenarios with Some s -> [ ("scenarios", s) ] | None -> [])
    @ (match j.timeout_s with
      | Some s -> [ ("timeout_s", Json.Float s) ]
      | None -> [])
    @ if j.retries <> 0 then [ ("retries", Json.Int j.retries) ] else [])

let ( let* ) = Result.bind

let of_json json =
  match Json.get_obj json with
  | None -> Error "job spec must be a JSON object"
  | Some members ->
    let* () =
      List.fold_left
        (fun acc (name, _) ->
          let* () = acc in
          match name with
          | "id" | "circuit" | "optimizer" | "config" | "scenarios"
          | "timeout_s" | "retries" ->
            Ok ()
          | other -> Error (Printf.sprintf "unknown job field %S" other))
        (Ok ()) members
    in
    let str name =
      match Json.field name json with
      | None -> Ok None
      | Some v -> (
        match Json.get_string v with
        | Some s -> Ok (Some s)
        | None -> Error (Printf.sprintf "job field %S must be a string" name))
    in
    let* id = str "id" in
    let* circuit = str "circuit" in
    let* circuit =
      match circuit with
      | Some c -> Ok c
      | None -> Error "job spec is missing \"circuit\""
    in
    let* optimizer = str "optimizer" in
    let optimizer = Option.value optimizer ~default:"joint" in
    let* timeout_s =
      match Json.field "timeout_s" json with
      | None -> Ok None
      | Some v -> (
        match Json.get_float v with
        | Some s when s > 0.0 -> Ok (Some s)
        | Some _ -> Error "job field \"timeout_s\" must be positive"
        | None -> Error "job field \"timeout_s\" must be a number")
    in
    let* retries =
      match Json.field "retries" json with
      | None -> Ok 0
      | Some v -> (
        match Json.get_int v with
        | Some n when n >= 0 -> Ok n
        | _ -> Error "job field \"retries\" must be a non-negative integer")
    in
    let config = Json.field "config" json in
    let* scenarios =
      match Json.field "scenarios" json with
      | None -> Ok None
      | Some v -> (
        match Json.get_obj v with
        | Some _ -> Ok (Some v)
        | None -> Error "job field \"scenarios\" must be an object")
    in
    Ok { id; circuit; optimizer; config; scenarios; timeout_s; retries }

type outcome =
  | Solved of Solution.t
  | Infeasible
  | Failed of { error : string; attempts : int }

(* The store/checkpoint value format (Failed outcomes are never written):
   shared by the result cache and the batch checkpoint so a resumed batch
   replays exactly what the interrupted one computed. *)
let outcome_to_store_json = function
  | Solved sol ->
    Some
      (Json.Obj
         [
           ("version", Json.Int 1);
           ("status", Json.String "solved");
           ("solution", Solution.to_json sol);
         ])
  | Infeasible ->
    Some
      (Json.Obj
         [ ("version", Json.Int 1); ("status", Json.String "infeasible") ])
  | Failed _ -> None

let outcome_of_store_json doc =
  match Option.bind (Json.field "status" doc) Json.get_string with
  | Some "infeasible" -> Some Infeasible
  | Some "solved" -> (
    match Json.field "solution" doc with
    | None -> None
    | Some s -> (
      match Solution.of_json s with
      | Ok sol -> Some (Solved sol)
      | Error _ -> None))
  | _ -> None

type row = {
  job_id : string;
  row_circuit : string;
  row_optimizer : string;
  digest : string;
  cache_hit : bool;
  outcome : outcome;
}

let row_to_json r =
  Json.Obj
    ([
       ("id", Json.String r.job_id);
       ("circuit", Json.String r.row_circuit);
       ("optimizer", Json.String r.row_optimizer);
       ("digest", Json.String r.digest);
       ("cache_hit", Json.Bool r.cache_hit);
     ]
    @
    match r.outcome with
    | Solved sol ->
      [ ("status", Json.String "solved"); ("solution", Solution.to_json sol) ]
    | Infeasible -> [ ("status", Json.String "infeasible") ]
    | Failed { error; attempts } ->
      [
        ("status", Json.String "failed");
        ("error", Json.String error);
        ("attempts", Json.Int attempts);
      ])

let row_of_json json =
  let req_str name =
    match Option.bind (Json.field name json) Json.get_string with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "result row: missing string %S" name)
  in
  let* job_id = req_str "id" in
  let* row_circuit = req_str "circuit" in
  let* row_optimizer = req_str "optimizer" in
  let* digest = req_str "digest" in
  let* cache_hit =
    match Option.bind (Json.field "cache_hit" json) Json.get_bool with
    | Some b -> Ok b
    | None -> Error "result row: missing bool \"cache_hit\""
  in
  let* status = req_str "status" in
  let* outcome =
    match status with
    | "solved" -> (
      match Json.field "solution" json with
      | None -> Error "result row: solved without \"solution\""
      | Some s ->
        let* sol = Solution.of_json s in
        Ok (Solved sol))
    | "infeasible" -> Ok Infeasible
    | "failed" ->
      let* error = req_str "error" in
      let attempts =
        Option.bind (Json.field "attempts" json) Json.get_int
        |> Option.value ~default:1
      in
      Ok (Failed { error; attempts })
    | other -> Error (Printf.sprintf "result row: unknown status %S" other)
  in
  Ok { job_id; row_circuit; row_optimizer; digest; cache_hit; outcome }

let render_rows rows =
  let table =
    Text_table.create
      ~headers:
        [ "Job"; "Circuit"; "Optimizer"; "Status"; "Cache"; "Energy/cycle";
          "Vdd (V)" ]
  in
  List.iter
    (fun r ->
      let status, energy, vdd =
        match r.outcome with
        | Solved sol ->
          ( "solved",
            Si.format ~unit:"J" (Solution.total_energy sol),
            Printf.sprintf "%.2f" (Solution.vdd sol) )
        | Infeasible -> ("infeasible", "-", "-")
        | Failed { attempts; _ } ->
          (Printf.sprintf "failed (%d attempts)" attempts, "-", "-")
      in
      Text_table.add_row table
        [
          r.job_id; r.row_circuit; r.row_optimizer; status;
          (if r.cache_hit then "hit" else "miss");
          energy; vdd;
        ])
    rows;
  Text_table.render table
