(** SDC-lite constraint file reader — the PR-5-style recovering front
    door for {!Constraints}.

    Supported commands (one per line, [\ ] continuations, [#] comments):

    - [create_clock -period P [-name N] [-waveform {R F}] [ports]]
    - [set_max_delay D [-from spec] [-to spec]]
    - [set_min_delay D [-from spec] [-to spec]]
    - [set_false_path [-from spec] [-to spec]]
    - [set_input_delay D [-clock C] spec]
    - [set_output_delay D [-clock C] spec]

    where [spec] is [\[get_ports {a b}\]], [\[get_ports a\]],
    [\[get_pins ...\]] or a bare port name. Times follow the SDC
    convention of {e nanoseconds} and are converted to seconds.

    The parser scans the whole file and reports {e every} problem it
    finds, each located by line (codes [sdc.syntax], [sdc.command],
    [sdc.range], [sdc.duplicate], [sdc.clock], [sdc.port]; recognised
    but ignored SDC commands come back as [sdc.unsupported]
    {e warnings}). [sdc.port] diagnostics require the circuit — pass
    [?circuit] to cross-check port references. [Error] is never
    empty. *)

val parse :
  ?file:string ->
  ?circuit:Dcopt_netlist.Circuit.t ->
  string ->
  (Constraints.t, Dcopt_util.Diag.t list) result

val parse_file_checked :
  ?circuit:Dcopt_netlist.Circuit.t ->
  string ->
  (Constraints.t, Dcopt_util.Diag.t list) result
(** {!parse} on a file's contents (unreadable file = one [sdc.io]
    diagnostic); the path is stamped into every diagnostic. *)
