(** K-most-critical-path enumeration by fanout-sum criticality.

    The paper (§4.2) defines the criticality of a PI-to-PO path as the sum
    of the fanout counts of its gates, [N_cj = sum f_oij], and consumes
    paths in decreasing criticality during delay budgeting. Enumerating
    them lazily in order follows Ju & Saleh's incremental technique
    (ref [6]) adapted to this weight: a best-first search over partial
    paths whose priority is an exact upper bound (prefix criticality plus
    the precomputed best completion), which makes emission order exact. *)

type path = {
  gate_ids : int list;  (** gates of the path, source to output *)
  criticality : int;    (** sum of effective fanouts of the gates *)
}

val effective_fanout : Dcopt_netlist.Circuit.t -> int -> int
(** The paper's f_oi, floored at 1 so output gates still receive a delay
    share: [max 1 (fanout_count)]. *)

val enumerate :
  ?max_paths:int -> Dcopt_netlist.Circuit.t -> path Seq.t
(** Lazy sequence of complete PI-to-PO paths in non-increasing
    criticality, at most [max_paths] (default [64 * gate_count]) of them.
    Requires a combinational circuit. A path starts at a gate with at least
    one primary-input fanin and ends at a primary-output node. *)

val most_critical : Dcopt_netlist.Circuit.t -> path option
(** Head of {!enumerate}. *)
