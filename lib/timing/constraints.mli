(** Timing constraints: the front door that replaces the bare scalar
    cycle target.

    A constraint set carries clocks (period + optional waveform),
    per-endpoint [set_max_delay]/[set_min_delay] bounds, false-path
    exceptions and input/output delays — the SDC-lite subset parsed by
    {!Sdc}. All times are in {e seconds} (the parser converts from the
    SDC convention of nanoseconds).

    The whole timing stack consumes a constraint set through one
    projection: {!required_times}, a per-node array of required arrival
    times ([+infinity] for non-endpoints and false-path'd endpoints)
    that {!Sta.analyze}/{!Flat_sta.analyze} seed their backward sweep
    from, and {!arrival_offsets}, the input-delay seeds for the forward
    sweep.

    The legacy scalar [cycle_target] is the degenerate one-clock set
    built by {!of_cycle_time}; every pre-redesign caller migrates
    through it, and the scalar fast paths in [Sta]/[Delay_assign]/
    [Power_model] recognise it via {!scalar_cycle_time} so scalar runs
    stay bit-identical. *)

type clock = {
  clock_name : string;
  period : float;  (** seconds; > 0 *)
  waveform : (float * float) option;
      (** optional (rise, fall) edge times, seconds *)
  sources : string list;  (** source ports; [[]] for a virtual clock *)
}

type path_rule = {
  rule_from : string list;  (** startpoint ports; [[]] = any *)
  rule_to : string list;  (** endpoint ports; [[]] = every endpoint *)
  bound : float;  (** seconds *)
}

type exception_path = {
  exc_from : string list;  (** [[]] = any startpoint *)
  exc_to : string list;  (** [[]] = every endpoint *)
}

type io_delay = {
  port : string;
  io_clock : string option;
  io_delay : float;  (** seconds *)
}

type t = {
  clocks : clock list;
  max_delays : path_rule list;
  min_delays : path_rule list;
  false_paths : exception_path list;
  input_delays : io_delay list;
  output_delays : io_delay list;
}

val empty : t

val of_cycle_time : float -> t
(** The compatibility constructor: one virtual clock ["clk"] whose
    period is the scalar cycle target. {!scalar_cycle_time} recovers
    the scalar from exactly this shape. *)

val scalar_cycle_time : t -> float option
(** [Some ct] iff the set is (shape-identical to) [of_cycle_time ct] —
    the discriminator the scalar fast paths key on. *)

val default_period : t -> float option
(** The tightest (minimum) clock period, when any clock exists. *)

val tightest_cycle_time : t -> default:float -> float
(** The single scalar that budgeting ({!Delay_assign}) distributes: the
    minimum over clock periods and finite global max-delay bounds,
    falling back to [default] for an empty set. *)

val required_times : t -> default:float -> Dcopt_netlist.Circuit.t -> float array
(** Per-node required-time seeds, indexed by node id. Non-endpoints are
    [infinity]. Each primary output starts from its capture budget (the
    period of the clock named by its [set_output_delay], minus that
    output delay; else {!default_period}; else [default]), tightened by
    every matching [set_max_delay] rule; an output covered by an
    any-startpoint false path becomes [infinity] (unconstrained).
    Startpoint-specific rules tighten their named endpoints too — the
    conservative per-endpoint projection of a path rule. *)

val min_bounds : t -> Dcopt_netlist.Circuit.t -> float array
(** Per-node [set_min_delay] floors ([neg_infinity] when unconstrained):
    the hold-style lower bounds, surfaced in reports but not folded into
    {!required_times}. *)

val arrival_offsets : t -> Dcopt_netlist.Circuit.t -> float array option
(** Input-delay seeds for the forward sweep: [None] when the set has no
    input delays (the scalar fast path), else a per-node array that is
    the input delay at each named primary input and [0.] elsewhere. *)

val to_json : t -> Dcopt_util.Json.t
(** Canonical JSON rendering (version 1) — folded into the store digest
    for scenario jobs, so editing a constraint file invalidates cached
    rows. [of_cycle_time] round-trips through it. *)

val of_json : Dcopt_util.Json.t -> (t, string) result

val describe : t -> string
(** One-line human summary, e.g.
    ["2 clocks, 3 max-delay, 1 false-path, 2 input-delay"]. *)
