(** Procedure 1: criticality-driven gate delay budgeting (paper §4.2).

    Distributes the cycle time over every gate so that each gate's maximum
    allowed delay is proportional to its fanout within the most critical
    path crossing it: paths are consumed in decreasing fanout-sum
    criticality, and on each path the still-unassigned gates split the
    remaining budget in proportion to their fanouts (eqs. (2) and (3)).

    Gates never reached by the enumerated paths (dangling logic, or beyond
    the path cap) get the analogous share of the locally most critical
    chain through them. A slope-feasibility post-pass (the paper's "post
    processing of delay assignments") then lifts budgets that are too small
    relative to their slowest fanin's budget for eq. A3's input-rise-time
    term, and a final scaling restores the cycle-time guarantee. *)

type t = {
  t_max : float array;      (** per node id; 0 for inputs, s *)
  cycle_budget : float;     (** b * T_c actually distributed, s *)
  paths_used : int;         (** paths consumed before full coverage *)
  fallback_gates : int;     (** gates budgeted by the local-chain fallback *)
  slope_adjusted : int;     (** gates lifted by the feasibility post-pass *)
}

val assign :
  ?skew_factor:float ->   (* the paper's b <= 1, default 0.95 *)
  ?max_paths:int ->       (* path-enumeration cap, default 16 * gates *)
  ?slope_guard:float ->   (* min budget as fraction of max fanin budget, default 0.3 *)
  ?constraints:Constraints.t ->
  Dcopt_netlist.Circuit.t ->
  cycle_time:float ->
  t
(** Requires a combinational circuit and [cycle_time > 0]. Postcondition
    (checked): with gate delays equal to the returned budgets, the critical
    delay is at most [skew_factor * cycle_time] within float tolerance.

    [constraints] supersedes [cycle_time] with the set's
    {!Constraints.tightest_cycle_time} (falling back to [cycle_time] for
    an empty set): Procedure 1 distributes the tightest bound, while
    per-endpoint requirements are enforced downstream by the
    constraint-aware STA feasibility check. A scalar compatibility set
    is bit-identical to passing its cycle time directly. *)

val verify : Dcopt_netlist.Circuit.t -> t -> cycle_time:float -> bool
(** Re-checks the postcondition by STA. *)
