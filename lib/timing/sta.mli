(** Static timing analysis over per-gate delay numbers.

    Delay values are supplied externally (budgets from Procedure 1, or
    achieved delays from the device model); this module only propagates
    them through the combinational graph. *)

type result = {
  arrival : float array;   (** output arrival time per node id *)
  critical_delay : float;  (** max arrival over primary outputs *)
  required : float array;  (** latest allowed arrival per node id *)
  slack : float array;     (** required - arrival *)
}

val analyze :
  ?required_time:float ->
  ?required_times:float array ->
  ?arrival_offsets:float array ->
  Dcopt_netlist.Circuit.t -> delays:float array -> result
(** [analyze c ~delays] propagates arrival times: inputs arrive at 0, a
    gate's arrival is its delay plus the max fanin arrival. [required_time]
    defaults to the computed critical delay (so the critical path has zero
    slack). [delays] is indexed by node id; entries for [Input] nodes are
    ignored. Requires a combinational circuit.

    [required_times] supersedes the scalar target with per-node required
    seeds (from {!Constraints.required_times}): [infinity] entries are
    unconstrained, and a uniform seed of [t] at every output is
    bit-identical to [~required_time:t]. [arrival_offsets] seeds the
    forward pass with per-node input delays (from
    {!Constraints.arrival_offsets}); [None] is the legacy zero seed. *)

val slack_of_endpoint : result -> int -> float
(** The slack of one node id, straight from the analysis — the accessor
    callers use instead of recomputing [target -. arrival] by hand
    (which silently diverges from the backward pass on reconvergent
    fanout). *)

val worst_endpoint_slack : Dcopt_netlist.Circuit.t -> result -> float
(** Minimum slack over the primary outputs ([infinity] for a circuit
    with none). *)

val critical_path : Dcopt_netlist.Circuit.t -> delays:float array -> int list
(** Gate ids of one maximal-arrival path, source to output. Runs the
    forward pass only (no required-time/slack computation). *)

val critical_path_of_result :
  result -> Dcopt_netlist.Circuit.t -> delays:float array -> int list
(** {!critical_path} from an existing {!analyze} result, so callers that
    already ran the analysis don't pay a second propagation pass. *)

val critical_path_of_arrival :
  Dcopt_netlist.Circuit.t ->
  arrival:float array -> delays:float array -> int list
(** The backward path walk alone, over externally maintained arrival times
    (e.g. {!Incr_sta}'s): at each node the walk follows the first fanin
    whose arrival plus the node's delay reaches the node's arrival. *)

val meets : Dcopt_netlist.Circuit.t -> delays:float array -> cycle_time:float -> bool
(** True when the critical delay is at most [cycle_time] (with 0.01%%
    tolerance for float accumulation). Forward pass only. *)

val meets_constraints :
  ?arrival_offsets:float array ->
  Dcopt_netlist.Circuit.t ->
  delays:float array ->
  required_times:float array ->
  bool
(** Constraint-aware {!meets}: every primary output arrives no later
    than its required seed (same 0.01%% tolerance; [infinity] seeds
    always pass). With a uniform seed this coincides with
    [meets ~cycle_time]. Forward pass only. *)
