(** Static timing analysis over per-gate delay numbers.

    Delay values are supplied externally (budgets from Procedure 1, or
    achieved delays from the device model); this module only propagates
    them through the combinational graph. *)

type result = {
  arrival : float array;   (** output arrival time per node id *)
  critical_delay : float;  (** max arrival over primary outputs *)
  required : float array;  (** latest allowed arrival per node id *)
  slack : float array;     (** required - arrival *)
}

val analyze :
  ?required_time:float ->
  Dcopt_netlist.Circuit.t -> delays:float array -> result
(** [analyze c ~delays] propagates arrival times: inputs arrive at 0, a
    gate's arrival is its delay plus the max fanin arrival. [required_time]
    defaults to the computed critical delay (so the critical path has zero
    slack). [delays] is indexed by node id; entries for [Input] nodes are
    ignored. Requires a combinational circuit. *)

val critical_path : Dcopt_netlist.Circuit.t -> delays:float array -> int list
(** Gate ids of one maximal-arrival path, source to output. Runs the
    forward pass only (no required-time/slack computation). *)

val critical_path_of_result :
  result -> Dcopt_netlist.Circuit.t -> delays:float array -> int list
(** {!critical_path} from an existing {!analyze} result, so callers that
    already ran the analysis don't pay a second propagation pass. *)

val critical_path_of_arrival :
  Dcopt_netlist.Circuit.t ->
  arrival:float array -> delays:float array -> int list
(** The backward path walk alone, over externally maintained arrival times
    (e.g. {!Incr_sta}'s): at each node the walk follows the first fanin
    whose arrival plus the node's delay reaches the node's arrival. *)

val meets : Dcopt_netlist.Circuit.t -> delays:float array -> cycle_time:float -> bool
(** True when the critical delay is at most [cycle_time] (with 0.01%%
    tolerance for float accumulation). Forward pass only. *)
