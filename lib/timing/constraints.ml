(* Timing-constraint model: clocks, per-endpoint max/min delay bounds,
   false-path exceptions and I/O delays, projected onto per-node
   required-time / arrival-offset arrays for the STA engines. See
   constraints.mli for the contract; the scalar compatibility story
   pivots on [of_cycle_time]/[scalar_cycle_time]. *)

module Json = Dcopt_util.Json
module Circuit = Dcopt_netlist.Circuit

type clock = {
  clock_name : string;
  period : float;
  waveform : (float * float) option;
  sources : string list;
}

type path_rule = {
  rule_from : string list;
  rule_to : string list;
  bound : float;
}

type exception_path = { exc_from : string list; exc_to : string list }
type io_delay = { port : string; io_clock : string option; io_delay : float }

type t = {
  clocks : clock list;
  max_delays : path_rule list;
  min_delays : path_rule list;
  false_paths : exception_path list;
  input_delays : io_delay list;
  output_delays : io_delay list;
}

let empty =
  {
    clocks = [];
    max_delays = [];
    min_delays = [];
    false_paths = [];
    input_delays = [];
    output_delays = [];
  }

(* The canonical name [of_cycle_time] stamps, and [scalar_cycle_time]
   recognises. Deliberately not a legal net name in `.bench` files. *)
let scalar_clock_name = "clk"

let of_cycle_time ct =
  {
    empty with
    clocks =
      [ { clock_name = scalar_clock_name; period = ct; waveform = None; sources = [] } ];
  }

let scalar_cycle_time t =
  match t with
  | {
   clocks = [ { clock_name; period; waveform = None; sources = [] } ];
   max_delays = [];
   min_delays = [];
   false_paths = [];
   input_delays = [];
   output_delays = [];
  }
    when String.equal clock_name scalar_clock_name ->
      Some period
  | _ -> None

let default_period t =
  match t.clocks with
  | [] -> None
  | c :: rest ->
      Some (List.fold_left (fun acc c -> Float.min acc c.period) c.period rest)

let tightest_cycle_time t ~default =
  let base = match default_period t with Some p -> p | None -> default in
  (* Only endpoint-blind max-delay rules bound the whole budget; a rule
     naming specific endpoints tightens those endpoints, not the clock. *)
  List.fold_left
    (fun acc r -> if r.rule_to = [] then Float.min acc r.bound else acc)
    base t.max_delays

(* Port-name resolution. Constraint files survive ports that vanished
   from the netlist (the parser flags unknown ports when it has the
   circuit in hand); here they silently match nothing. *)
let find_opt circuit name =
  match Circuit.find circuit name with
  | id -> Some id
  | exception Not_found -> None

let clock_period t name =
  List.find_opt (fun c -> String.equal c.clock_name name) t.clocks
  |> Option.map (fun c -> c.period)

let required_times t ~default circuit =
  let n = Circuit.size circuit in
  let req = Array.make n infinity in
  let base = match default_period t with Some p -> p | None -> default in
  let tighten id v = if v < req.(id) then req.(id) <- v in
  (* Capture budget per output: clock period (via set_output_delay's
     clock when one names this port) minus the output delay. *)
  let outputs = Circuit.outputs circuit in
  Array.iter
    (fun id ->
      let name = (Circuit.node circuit id).Circuit.name in
      let budget =
        match
          List.find_opt (fun d -> String.equal d.port name) t.output_delays
        with
        | Some d ->
            let p =
              match d.io_clock with
              | Some c -> Option.value (clock_period t c) ~default:base
              | None -> base
            in
            p -. d.io_delay
        | None -> base
      in
      tighten id budget)
    outputs;
  (* set_max_delay rules: endpoint-blind rules tighten every output;
     named endpoints are tightened directly (conservatively, whatever
     the -from spec says — the per-endpoint projection). *)
  List.iter
    (fun r ->
      match r.rule_to with
      | [] -> Array.iter (fun id -> tighten id r.bound) outputs
      | names ->
          List.iter
            (fun nm ->
              match find_opt circuit nm with
              | Some id -> tighten id r.bound
              | None -> ())
            names)
    t.max_delays;
  (* Any-startpoint false paths release their endpoints entirely. *)
  List.iter
    (fun e ->
      if e.exc_from = [] then
        match e.exc_to with
        | [] -> Array.iter (fun id -> req.(id) <- infinity) outputs
        | names ->
            List.iter
              (fun nm ->
                match find_opt circuit nm with
                | Some id -> req.(id) <- infinity
                | None -> ())
              names)
    t.false_paths;
  req

let min_bounds t circuit =
  let n = Circuit.size circuit in
  let lo = Array.make n neg_infinity in
  let raise_to id v = if v > lo.(id) then lo.(id) <- v in
  let outputs = Circuit.outputs circuit in
  List.iter
    (fun r ->
      match r.rule_to with
      | [] -> Array.iter (fun id -> raise_to id r.bound) outputs
      | names ->
          List.iter
            (fun nm ->
              match find_opt circuit nm with
              | Some id -> raise_to id r.bound
              | None -> ())
            names)
    t.min_delays;
  lo

let arrival_offsets t circuit =
  match t.input_delays with
  | [] -> None
  | delays ->
      let n = Circuit.size circuit in
      let seed = Array.make n 0.0 in
      List.iter
        (fun d ->
          match find_opt circuit d.port with
          | Some id -> seed.(id) <- Float.max seed.(id) d.io_delay
          | None -> ())
        delays;
      Some seed

(* JSON (version 1). Canonical member order; folded into store digests
   for scenario jobs, so any change here invalidates exactly the rows it
   should. *)

let names_json ns = Json.List (List.map (fun s -> Json.String s) ns)

let clock_to_json c =
  Json.Obj
    ([ ("name", Json.String c.clock_name); ("period", Json.Float c.period) ]
    @ (match c.waveform with
      | Some (r, f) -> [ ("waveform", Json.List [ Json.Float r; Json.Float f ]) ]
      | None -> [])
    @ if c.sources = [] then [] else [ ("sources", names_json c.sources) ])

let rule_to_json r =
  Json.Obj
    [
      ("from", names_json r.rule_from);
      ("to", names_json r.rule_to);
      ("bound", Json.Float r.bound);
    ]

let exc_to_json e =
  Json.Obj [ ("from", names_json e.exc_from); ("to", names_json e.exc_to) ]

let io_to_json d =
  Json.Obj
    ([ ("port", Json.String d.port); ("delay", Json.Float d.io_delay) ]
    @
    match d.io_clock with
    | Some c -> [ ("clock", Json.String c) ]
    | None -> [])

let to_json t =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("clocks", Json.List (List.map clock_to_json t.clocks));
      ("max_delays", Json.List (List.map rule_to_json t.max_delays));
      ("min_delays", Json.List (List.map rule_to_json t.min_delays));
      ("false_paths", Json.List (List.map exc_to_json t.false_paths));
      ("input_delays", Json.List (List.map io_to_json t.input_delays));
      ("output_delays", Json.List (List.map io_to_json t.output_delays));
    ]

let ( let* ) r f = Result.bind r f

let get ~what f j =
  match f j with Some v -> Ok v | None -> Error ("constraints: bad " ^ what)

let names_of_json ~what j =
  let* l = get ~what Json.get_list j in
  List.fold_left
    (fun acc s ->
      let* acc = acc in
      let* s = get ~what Json.get_string s in
      Ok (s :: acc))
    (Ok []) l
  |> Result.map List.rev

let clock_of_json j =
  let* name = get ~what:"clock name" Json.get_string
      (Option.value (Json.field "name" j) ~default:Json.Null) in
  let* period = get ~what:"clock period" Json.get_float
      (Option.value (Json.field "period" j) ~default:Json.Null) in
  let* waveform =
    match Json.field "waveform" j with
    | None -> Ok None
    | Some (Json.List [ r; f ]) -> (
        match (Json.get_float r, Json.get_float f) with
        | Some r, Some f -> Ok (Some (r, f))
        | _ -> Error "constraints: bad waveform")
    | Some _ -> Error "constraints: bad waveform"
  in
  let* sources =
    match Json.field "sources" j with
    | None -> Ok []
    | Some s -> names_of_json ~what:"clock sources" s
  in
  Ok { clock_name = name; period; waveform; sources }

let rule_of_json j =
  let* rule_from =
    names_of_json ~what:"rule from"
      (Option.value (Json.field "from" j) ~default:(Json.List []))
  in
  let* rule_to =
    names_of_json ~what:"rule to"
      (Option.value (Json.field "to" j) ~default:(Json.List []))
  in
  let* bound = get ~what:"rule bound" Json.get_float
      (Option.value (Json.field "bound" j) ~default:Json.Null) in
  Ok { rule_from; rule_to; bound }

let exc_of_json j =
  let* exc_from =
    names_of_json ~what:"exception from"
      (Option.value (Json.field "from" j) ~default:(Json.List []))
  in
  let* exc_to =
    names_of_json ~what:"exception to"
      (Option.value (Json.field "to" j) ~default:(Json.List []))
  in
  Ok { exc_from; exc_to }

let io_of_json j =
  let* port = get ~what:"io port" Json.get_string
      (Option.value (Json.field "port" j) ~default:Json.Null) in
  let* io_delay = get ~what:"io delay" Json.get_float
      (Option.value (Json.field "delay" j) ~default:Json.Null) in
  let io_clock =
    Option.bind (Json.field "clock" j) Json.get_string
  in
  Ok { port; io_clock; io_delay }

let list_of_json ~what one j =
  let* l = get ~what Json.get_list j in
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* v = one x in
      Ok (v :: acc))
    (Ok []) l
  |> Result.map List.rev

let of_json j =
  let* version = get ~what:"version" Json.get_int
      (Option.value (Json.field "version" j) ~default:Json.Null) in
  if version <> 1 then Error "constraints: unsupported version"
  else
    let sect name = Option.value (Json.field name j) ~default:(Json.List []) in
    let* clocks = list_of_json ~what:"clocks" clock_of_json (sect "clocks") in
    let* max_delays =
      list_of_json ~what:"max_delays" rule_of_json (sect "max_delays")
    in
    let* min_delays =
      list_of_json ~what:"min_delays" rule_of_json (sect "min_delays")
    in
    let* false_paths =
      list_of_json ~what:"false_paths" exc_of_json (sect "false_paths")
    in
    let* input_delays =
      list_of_json ~what:"input_delays" io_of_json (sect "input_delays")
    in
    let* output_delays =
      list_of_json ~what:"output_delays" io_of_json (sect "output_delays")
    in
    Ok { clocks; max_delays; min_delays; false_paths; input_delays; output_delays }

let describe t =
  let part n what = if n = 0 then None else Some (Printf.sprintf "%d %s" n what) in
  let parts =
    List.filter_map Fun.id
      [
        part (List.length t.clocks) "clocks";
        part (List.length t.max_delays) "max-delay";
        part (List.length t.min_delays) "min-delay";
        part (List.length t.false_paths) "false-path";
        part (List.length t.input_delays) "input-delay";
        part (List.length t.output_delays) "output-delay";
      ]
  in
  if parts = [] then "empty constraint set" else String.concat ", " parts
