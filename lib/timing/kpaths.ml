module Circuit = Dcopt_netlist.Circuit
module Gate = Dcopt_netlist.Gate

type path = { gate_ids : int list; criticality : int }

let effective_fanout circuit id = max 1 (Circuit.fanout_count circuit id)

(* best.(n) = largest criticality obtainable from gate n (inclusive) to any
   primary output; neg_infinity marks dead ends (dangling logic). *)
let best_completion circuit =
  let n = Circuit.size circuit in
  let best = Array.make n neg_infinity in
  let order = Circuit.topo_order circuit in
  for i = Array.length order - 1 downto 0 do
    let id = order.(i) in
    let nd = Circuit.node circuit id in
    match nd.Circuit.kind with
    | Gate.Input -> ()
    | _ ->
      let w = float_of_int (effective_fanout circuit id) in
      let continuation =
        Array.fold_left
          (fun acc g ->
            match (Circuit.node circuit g).Circuit.kind with
            | Gate.Input | Gate.Dff -> acc
            | _ -> Float.max acc best.(g))
          neg_infinity (Circuit.fanouts circuit id)
      in
      let here = if Circuit.is_output circuit id then 0.0 else neg_infinity in
      let tail = Float.max here continuation in
      if tail > neg_infinity then best.(id) <- w +. tail
  done;
  best

type item =
  | Partial of int list * int  (* gates so far (reversed), criticality so far *)
  | Complete of int list * int

let enumerate ?max_paths circuit =
  if not (Circuit.is_combinational circuit) then
    invalid_arg "Kpaths.enumerate: circuit is sequential";
  let limit =
    Option.value max_paths ~default:(64 * max 1 (Circuit.gate_count circuit))
  in
  let best = best_completion circuit in
  let heap = Dcopt_util.Heap.create () in
  let gate_fanouts id =
    Array.to_list (Circuit.fanouts circuit id)
    |> List.filter (fun g ->
           match (Circuit.node circuit g).Circuit.kind with
           | Gate.Input | Gate.Dff -> false
           | _ -> true)
  in
  let has_pi_fanin nd =
    Array.exists
      (fun f -> (Circuit.node circuit f).Circuit.kind = Gate.Input)
      nd.Circuit.fanins
  in
  Array.iter
    (fun nd ->
      match nd.Circuit.kind with
      | Gate.Input | Gate.Dff -> ()
      | _ ->
        if has_pi_fanin nd && best.(nd.Circuit.id) > neg_infinity then
          Dcopt_util.Heap.push heap ~priority:best.(nd.Circuit.id)
            (Partial ([ nd.Circuit.id ], effective_fanout circuit nd.Circuit.id)))
    (Circuit.nodes circuit);
  let emitted = ref 0 in
  let rec next () =
    if !emitted >= limit then Seq.Nil
    else
      match Dcopt_util.Heap.pop heap with
      | None -> Seq.Nil
      | Some (_, Complete (rev_gates, crit)) ->
        incr emitted;
        Seq.Cons
          ( { gate_ids = List.rev rev_gates; criticality = crit },
            fun () -> next () )
      | Some (_, Partial (rev_gates, crit)) ->
        let head =
          match rev_gates with
          | h :: _ -> h
          | [] -> assert false
        in
        if Circuit.is_output circuit head then
          Dcopt_util.Heap.push heap ~priority:(float_of_int crit)
            (Complete (rev_gates, crit));
        List.iter
          (fun g ->
            if best.(g) > neg_infinity then
              let crit' = crit + effective_fanout circuit g in
              let bound =
                float_of_int crit
                +. best.(g)
              in
              Dcopt_util.Heap.push heap ~priority:bound
                (Partial (g :: rev_gates, crit')))
          (gate_fanouts head);
        next ()
  in
  fun () -> next ()

let most_critical circuit =
  match (enumerate ~max_paths:1 circuit) () with
  | Seq.Nil -> None
  | Seq.Cons (p, _) -> Some p
