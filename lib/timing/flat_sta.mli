(** Levelized static timing analysis over the {!Dcopt_netlist.Flat} view.

    Functionally identical to {!Sta.analyze} — same arrival/required/slack
    definitions, same per-node arithmetic in the same order, so results
    match the pointer-based analyzer bit for bit — but the sweeps walk the
    level-sorted permutation with CSR adjacency instead of chasing node
    records, and each level slice wider than [min_par_width] is chunked
    over the {!Dcopt_par.Par} domain pool.

    Determinism: all nodes inside one level are mutually independent
    (every fanin is at a strictly lower level, every consumer at a higher
    one), and each parallel index writes exactly its own cell of the
    arrival/required column, so the produced floats are independent of
    the chunking — [--jobs N] output is byte-identical to [--jobs 1].

    Metrics: bumps [sta.level.passes] / [sta.level.par_levels] /
    [sta.level.seq_levels] counters (any domain) and, from the main
    domain only, sets the [sta.level.depth] / [sta.level.max_width] /
    [flat.alloc_bytes] gauges. *)

type result = Sta.result = {
  arrival : float array;
  critical_delay : float;
  required : float array;
  slack : float array;
}

val default_min_par_width : int
(** Narrowest level slice worth dispatching to the pool (2048). *)

val analyze :
  ?required_time:float ->
  ?required_times:float array ->
  ?arrival_offsets:float array ->
  ?jobs:int ->
  ?min_par_width:int ->
  Dcopt_netlist.Flat.t ->
  delays:float array ->
  result
(** Levelized forward + backward pass; see {!Sta.analyze} for the
    semantics, including the constraint-aware [required_times] /
    [arrival_offsets] seeds (the per-endpoint path runs a dedicated C
    kernel; a uniform seed is bit-identical to the scalar kernel).
    [jobs] defaults to the global {!Dcopt_par.Par.jobs}. Requires a
    combinational circuit. *)

val forward :
  ?jobs:int ->
  ?min_par_width:int ->
  Dcopt_netlist.Flat.t ->
  delays:float array ->
  float array * float
(** Forward pass only: (arrival by node id, critical delay). *)

val forward_into :
  ?jobs:int ->
  ?min_par_width:int ->
  Dcopt_netlist.Flat.t ->
  delays:float array ->
  arrival:float array ->
  float
(** Fill a caller-owned arrival buffer (length {!Dcopt_netlist.Flat.size})
    and return the critical delay — the allocation-free core loop for
    engines that re-sweep repeatedly. Raises [Invalid_argument] if either
    array's length differs from {!Dcopt_netlist.Flat.size}; no other
    validation is performed. *)
