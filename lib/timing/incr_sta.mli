(** Incremental arrival-time maintenance for single-gate moves.

    Both gate-sizing optimizers (TILOS and the annealing comparator) change
    one gate per move and previously re-propagated the whole circuit. This
    module keeps the per-gate delays and arrival times of a circuit as
    mutable state and re-propagates only the affected cone: the caller
    marks the gates whose delay inputs changed, and {!propagate} drains
    per-level buckets in ascending level order (a valid topological order
    in which a processed level can never be re-dirtied, since every fanout
    sits at a strictly higher level), recomputing each dirty gate through a
    caller-supplied [recompute] callback (which owns the device model) and
    enqueueing a gate's fanouts only when its delay or arrival actually
    changed. Because the recomputation uses the same folds in the same
    order as the full evaluation sweep, an untouched gate reproduces its
    values bit for bit and the wavefront dies out exactly where the full
    recomputation would have produced identical numbers.

    Every value overwritten since the last {!commit}/{!rollback} is
    journaled once, so a speculative move (an optimizer probe, a rejected
    annealing move) is undone in O(touched gates) by {!rollback}.

    The module knows nothing about devices or energy: delay recomputation
    and any side effects (energy bookkeeping, metrics) live in the
    [recompute] callback — see [Power_model.Incr] for the full engine. *)

type t

val create : Dcopt_netlist.Circuit.t -> t
(** Fresh state with all delays and arrivals zero; populate with
    {!refresh} (then {!commit}) before the first move. Requires a
    combinational circuit. *)

val circuit : t -> Dcopt_netlist.Circuit.t

val delays : t -> float array
(** The live per-node delay array (0 for input nodes). Treat as
    read-only; it aliases the engine's state, so it is always current. *)

val arrivals : t -> float array
(** The live per-node arrival-time array. Treat as read-only. *)

val is_gate : t -> int -> bool

val mark_dirty : t -> int -> unit
(** Enqueue a gate for recomputation (no-op on non-gate ids and on gates
    already queued). Call for every gate whose delay inputs changed
    directly — the resized gate itself, plus its fanin drivers when the
    change affects their load. *)

val propagate :
  t -> recompute:(id:int -> max_fanin_delay:float -> float) -> int
(** Drain the level buckets in ascending level order. For each dirty gate the
    engine recomputes the max fanin delay, asks [recompute] for the new
    gate delay (the callback sees the current design state and may update
    its own per-gate bookkeeping), updates the arrival time, and marks the
    fanouts dirty iff delay or arrival changed. Returns the number of
    gates recomputed — the move's cone size. *)

val refresh :
  t -> recompute:(id:int -> max_fanin_delay:float -> float) -> unit
(** Full topological sweep over every gate (journaled like any other
    update): the fallback for global moves (vdd, uniform vt) and the
    initializer after {!create}. Discards any queued dirty marks. *)

val commit : t -> unit
(** Accept every update since the last commit/rollback and clear the
    journal. *)

val rollback : t -> unit
(** Restore every delay and arrival overwritten since the last
    commit/rollback, and drop any still-queued dirty marks. *)
