module Circuit = Dcopt_netlist.Circuit
module Gate = Dcopt_netlist.Gate
module Heap = Dcopt_util.Heap

type t = {
  circuit : Circuit.t;
  heap_priority : float array; (* negated topo position: Heap is a max-heap *)
  is_gate : bool array;
  delays : float array;
  arrival : float array;
  heap : int Heap.t;
  queued : bool array;
  journaled : bool array;
  mutable journal : (int * float * float) list;
}

let create circuit =
  if not (Circuit.is_combinational circuit) then
    invalid_arg "Incr_sta.create: circuit is sequential";
  let n = Circuit.size circuit in
  let heap_priority = Array.make n 0.0 in
  let next = ref 0 in
  Circuit.iter_topo circuit (fun id ->
      heap_priority.(id) <- -.float_of_int !next;
      incr next);
  let is_gate = Array.make n false in
  Array.iter
    (fun nd ->
      match nd.Circuit.kind with
      | Gate.Input | Gate.Dff -> ()
      | _ -> is_gate.(nd.Circuit.id) <- true)
    (Circuit.nodes circuit);
  {
    circuit;
    heap_priority;
    is_gate;
    delays = Array.make n 0.0;
    arrival = Array.make n 0.0;
    heap = Heap.create ();
    queued = Array.make n false;
    journaled = Array.make n false;
    journal = [];
  }

let circuit t = t.circuit
let delays t = t.delays
let arrivals t = t.arrival
let is_gate t id = t.is_gate.(id)

let mark_dirty t id =
  if t.is_gate.(id) && not t.queued.(id) then begin
    t.queued.(id) <- true;
    Heap.push t.heap ~priority:t.heap_priority.(id) id
  end

let drain t =
  let rec go () =
    match Heap.pop t.heap with
    | None -> ()
    | Some (_, id) ->
      t.queued.(id) <- false;
      go ()
  in
  go ()

(* Same folds, in the same order, as the full evaluation's topological
   sweep, so a recomputed node whose inputs are unchanged reproduces its
   previous delay and arrival bit for bit — that equality is the worklist's
   termination test. *)
let max_fanin_delay t fanins =
  Array.fold_left
    (fun acc f -> if t.is_gate.(f) then Float.max acc t.delays.(f) else acc)
    0.0 fanins

let worst_fanin_arrival t fanins =
  Array.fold_left (fun acc f -> Float.max acc t.arrival.(f)) 0.0 fanins

let step t ~recompute id =
  if not t.journaled.(id) then begin
    t.journaled.(id) <- true;
    t.journal <- (id, t.delays.(id), t.arrival.(id)) :: t.journal
  end;
  let nd = Circuit.node t.circuit id in
  let mfd = max_fanin_delay t nd.Circuit.fanins in
  let d = recompute ~id ~max_fanin_delay:mfd in
  let a = worst_fanin_arrival t nd.Circuit.fanins +. d in
  let changed =
    not (Float.equal d t.delays.(id) && Float.equal a t.arrival.(id))
  in
  t.delays.(id) <- d;
  t.arrival.(id) <- a;
  changed

let propagate t ~recompute =
  let processed = ref 0 in
  let running = ref true in
  while !running do
    match Heap.pop t.heap with
    | None -> running := false
    | Some (_, id) ->
      t.queued.(id) <- false;
      incr processed;
      if step t ~recompute id then
        Array.iter (fun f -> mark_dirty t f) (Circuit.fanouts t.circuit id)
  done;
  !processed

let refresh t ~recompute =
  drain t;
  Circuit.iter_topo t.circuit (fun id ->
      if t.is_gate.(id) then ignore (step t ~recompute id))

let commit t =
  drain t;
  List.iter (fun (id, _, _) -> t.journaled.(id) <- false) t.journal;
  t.journal <- []

let rollback t =
  drain t;
  List.iter
    (fun (id, d, a) ->
      t.journaled.(id) <- false;
      t.delays.(id) <- d;
      t.arrival.(id) <- a)
    t.journal;
  t.journal <- []
