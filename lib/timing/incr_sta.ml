module Circuit = Dcopt_netlist.Circuit
module Gate = Dcopt_netlist.Gate

(* The worklist is a set of per-level buckets instead of a priority heap:
   a dirty gate is appended to the bucket of its level, and propagation
   sweeps the buckets in ascending level order. Level order is a valid
   topological order, and because every fanout of a level-l node sits at a
   strictly higher level, the bucket being processed never grows under the
   sweep — a single ascending pass drains everything. Each bucket is
   preallocated to the number of gates at its level, so marking is a plain
   append with no growth or heap sift. *)
type t = {
  circuit : Circuit.t;
  levels : int array;          (* per-node combinational level, shared *)
  depth : int;
  is_gate : bool array;
  delays : float array;
  arrival : float array;
  buckets : int array array;   (* one per level, capacity = gates there *)
  bucket_len : int array;
  mutable min_dirty : int;     (* lowest level with queued gates; depth+1 = none *)
  mutable dirty : int;         (* total queued gates *)
  queued : bool array;
  journaled : bool array;
  mutable journal : (int * float * float) list;
}

let create circuit =
  if not (Circuit.is_combinational circuit) then
    invalid_arg "Incr_sta.create: circuit is sequential";
  let n = Circuit.size circuit in
  let levels = Circuit.unsafe_levels circuit in
  let depth = Circuit.depth circuit in
  let is_gate = Array.make n false in
  Array.iter
    (fun nd ->
      match nd.Circuit.kind with
      | Gate.Input | Gate.Dff -> ()
      | _ -> is_gate.(nd.Circuit.id) <- true)
    (Circuit.nodes circuit);
  let per_level = Array.make (depth + 1) 0 in
  for id = 0 to n - 1 do
    if is_gate.(id) then
      per_level.(levels.(id)) <- per_level.(levels.(id)) + 1
  done;
  let buckets = Array.map (fun c -> Array.make c 0) per_level in
  {
    circuit;
    levels;
    depth;
    is_gate;
    delays = Array.make n 0.0;
    arrival = Array.make n 0.0;
    buckets;
    bucket_len = Array.make (depth + 1) 0;
    min_dirty = depth + 1;
    dirty = 0;
    queued = Array.make n false;
    journaled = Array.make n false;
    journal = [];
  }

let circuit t = t.circuit
let delays t = t.delays
let arrivals t = t.arrival
let is_gate t id = t.is_gate.(id)

let mark_dirty t id =
  if t.is_gate.(id) && not t.queued.(id) then begin
    t.queued.(id) <- true;
    let l = t.levels.(id) in
    t.buckets.(l).(t.bucket_len.(l)) <- id;
    t.bucket_len.(l) <- t.bucket_len.(l) + 1;
    t.dirty <- t.dirty + 1;
    if l < t.min_dirty then t.min_dirty <- l
  end

let drain t =
  if t.dirty > 0 then
    for l = t.min_dirty to t.depth do
      for i = 0 to t.bucket_len.(l) - 1 do
        t.queued.(t.buckets.(l).(i)) <- false
      done;
      t.bucket_len.(l) <- 0
    done;
  t.dirty <- 0;
  t.min_dirty <- t.depth + 1

(* Same folds, in the same order, as the full evaluation's topological
   sweep, so a recomputed node whose inputs are unchanged reproduces its
   previous delay and arrival bit for bit — that equality is the worklist's
   termination test. *)
let max_fanin_delay t fanins =
  Array.fold_left
    (fun acc f -> if t.is_gate.(f) then Float.max acc t.delays.(f) else acc)
    0.0 fanins

let worst_fanin_arrival t fanins =
  Array.fold_left (fun acc f -> Float.max acc t.arrival.(f)) 0.0 fanins

let step t ~recompute id =
  if not t.journaled.(id) then begin
    t.journaled.(id) <- true;
    t.journal <- (id, t.delays.(id), t.arrival.(id)) :: t.journal
  end;
  let nd = Circuit.node t.circuit id in
  let mfd = max_fanin_delay t nd.Circuit.fanins in
  let d = recompute ~id ~max_fanin_delay:mfd in
  let a = worst_fanin_arrival t nd.Circuit.fanins +. d in
  let changed =
    not (Float.equal d t.delays.(id) && Float.equal a t.arrival.(id))
  in
  t.delays.(id) <- d;
  t.arrival.(id) <- a;
  changed

let propagate t ~recompute =
  let processed = ref 0 in
  let l = ref t.min_dirty in
  (* Marks raised while processing level l land strictly above l, so the
     ascending sweep visits them; [dirty] short-circuits the tail once the
     wavefront has died out. *)
  while !l <= t.depth && t.dirty > 0 do
    let len = t.bucket_len.(!l) in
    if len > 0 then begin
      let bucket = t.buckets.(!l) in
      (* Retire the whole bucket before stepping any of it: [recompute]
         may raise (e.g. Guard.Non_finite) mid-bucket, and an id left
         queued=true with no bucket slot could never be re-marked dirty.
         Clearing up front is safe — fanouts sit at strictly higher
         levels, so no step below can re-queue an id from this bucket. *)
      for i = 0 to len - 1 do
        t.queued.(bucket.(i)) <- false
      done;
      t.bucket_len.(!l) <- 0;
      t.dirty <- t.dirty - len;
      for i = 0 to len - 1 do
        let id = bucket.(i) in
        incr processed;
        if step t ~recompute id then
          Array.iter (fun f -> mark_dirty t f) (Circuit.fanouts t.circuit id)
      done
    end;
    incr l
  done;
  t.min_dirty <- t.depth + 1;
  !processed

let refresh t ~recompute =
  drain t;
  Circuit.iter_topo t.circuit (fun id ->
      if t.is_gate.(id) then ignore (step t ~recompute id))

let commit t =
  drain t;
  List.iter (fun (id, _, _) -> t.journaled.(id) <- false) t.journal;
  t.journal <- []

let rollback t =
  drain t;
  List.iter
    (fun (id, d, a) ->
      t.journaled.(id) <- false;
      t.delays.(id) <- d;
      t.arrival.(id) <- a)
    t.journal;
  t.journal <- []
