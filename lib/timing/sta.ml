module Circuit = Dcopt_netlist.Circuit
module Gate = Dcopt_netlist.Gate

type result = {
  arrival : float array;
  critical_delay : float;
  required : float array;
  slack : float array;
}

let gate_delay delays circuit id =
  match (Circuit.node circuit id).Circuit.kind with
  | Gate.Input -> 0.0
  | _ -> delays.(id)

let analyze ?required_time circuit ~delays =
  if not (Circuit.is_combinational circuit) then
    invalid_arg "Sta.analyze: circuit is sequential";
  if Array.length delays <> Circuit.size circuit then
    invalid_arg "Sta.analyze: delay array size mismatch";
  let n = Circuit.size circuit in
  let order = Circuit.topo_order circuit in
  let arrival = Array.make n 0.0 in
  Array.iter
    (fun id ->
      let nd = Circuit.node circuit id in
      match nd.Circuit.kind with
      | Gate.Input -> arrival.(id) <- 0.0
      | _ ->
        let worst =
          Array.fold_left (fun acc f -> Float.max acc arrival.(f)) 0.0
            nd.Circuit.fanins
        in
        arrival.(id) <- worst +. delays.(id))
    order;
  let critical_delay =
    Array.fold_left
      (fun acc id -> Float.max acc arrival.(id))
      0.0 (Circuit.outputs circuit)
  in
  let target = Option.value required_time ~default:critical_delay in
  let required = Array.make n infinity in
  Array.iter
    (fun id -> required.(id) <- Float.min required.(id) target)
    (Circuit.outputs circuit);
  (* Backward pass in reverse topological order: a node must settle early
     enough for every consumer to still meet its own requirement. *)
  let rev = Array.copy order in
  let len = Array.length rev in
  for i = 0 to (len / 2) - 1 do
    let tmp = rev.(i) in
    rev.(i) <- rev.(len - 1 - i);
    rev.(len - 1 - i) <- tmp
  done;
  Array.iter
    (fun id ->
      Array.iter
        (fun consumer ->
          let need = required.(consumer) -. gate_delay delays circuit consumer in
          if need < required.(id) then required.(id) <- need)
        (Circuit.fanouts circuit id))
    rev;
  let slack = Array.init n (fun id -> required.(id) -. arrival.(id)) in
  { arrival; critical_delay; required; slack }

let critical_path circuit ~delays =
  let r = analyze circuit ~delays in
  let worst_output =
    Array.fold_left
      (fun best id ->
        match best with
        | None -> Some id
        | Some b -> if r.arrival.(id) > r.arrival.(b) then Some id else best)
      None (Circuit.outputs circuit)
  in
  match worst_output with
  | None -> []
  | Some last ->
    let rec walk id acc =
      let nd = Circuit.node circuit id in
      match nd.Circuit.kind with
      | Gate.Input -> acc
      | _ ->
        let worst_fanin =
          Array.fold_left
            (fun best f ->
              match best with
              | None -> Some f
              | Some b -> if r.arrival.(f) > r.arrival.(b) then Some f else best)
            None nd.Circuit.fanins
        in
        (match worst_fanin with
        | None -> id :: acc
        | Some f -> walk f (id :: acc))
    in
    walk last []

let meets circuit ~delays ~cycle_time =
  let r = analyze circuit ~delays in
  r.critical_delay <= cycle_time *. (1.0 +. 1e-4)
