module Circuit = Dcopt_netlist.Circuit
module Gate = Dcopt_netlist.Gate

type result = {
  arrival : float array;
  critical_delay : float;
  required : float array;
  slack : float array;
}

let gate_delay delays circuit id =
  match (Circuit.node circuit id).Circuit.kind with
  | Gate.Input -> 0.0
  | _ -> delays.(id)

let validate name circuit ~delays =
  if not (Circuit.is_combinational circuit) then
    invalid_arg (name ^ ": circuit is sequential");
  if Array.length delays <> Circuit.size circuit then
    invalid_arg (name ^ ": delay array size mismatch")

(* Forward pass only: arrival times and critical delay. The backward
   (required/slack) pass is paid by [analyze] alone, so callers that only
   need the critical delay or a critical path do half the work.
   [?offsets] seeds input arrivals (constraint input delays); [None] is
   the scalar fast path and takes exactly the legacy code. *)
let forward ?offsets circuit ~delays =
  let n = Circuit.size circuit in
  let arrival = Array.make n 0.0 in
  Circuit.iter_topo circuit (fun id ->
      let nd = Circuit.node circuit id in
      match nd.Circuit.kind with
      | Gate.Input ->
        arrival.(id) <-
          (match offsets with None -> 0.0 | Some s -> s.(id))
      | _ ->
        let worst =
          Array.fold_left (fun acc f -> Float.max acc arrival.(f)) 0.0
            nd.Circuit.fanins
        in
        arrival.(id) <- worst +. delays.(id));
  let critical_delay =
    Array.fold_left
      (fun acc id -> Float.max acc arrival.(id))
      0.0 (Circuit.outputs circuit)
  in
  (arrival, critical_delay)

let analyze ?required_time ?required_times ?arrival_offsets circuit ~delays =
  validate "Sta.analyze" circuit ~delays;
  let n = Circuit.size circuit in
  (match required_times with
   | Some seeds when Array.length seeds <> n ->
     invalid_arg "Sta.analyze: required_times size mismatch"
   | _ -> ());
  (match arrival_offsets with
   | Some seeds when Array.length seeds <> n ->
     invalid_arg "Sta.analyze: arrival_offsets size mismatch"
   | _ -> ());
  let arrival, critical_delay =
    forward ?offsets:arrival_offsets circuit ~delays
  in
  let required = Array.make n infinity in
  (match required_times with
   | Some seeds ->
     (* Per-endpoint constraint seeds: [infinity] entries (non-endpoints,
        false-path'd endpoints) leave the node unconstrained. A uniform
        seed of [t] at every output is bit-identical to the scalar
        [required_time:t] path below. *)
     for id = 0 to n - 1 do
       if seeds.(id) < required.(id) then required.(id) <- seeds.(id)
     done
   | None ->
     let target = Option.value required_time ~default:critical_delay in
     Array.iter
       (fun id -> required.(id) <- Float.min required.(id) target)
       (Circuit.outputs circuit));
  (* Backward pass in reverse topological order: a node must settle early
     enough for every consumer to still meet its own requirement. *)
  Circuit.iter_topo_rev circuit (fun id ->
      Array.iter
        (fun consumer ->
          let need = required.(consumer) -. gate_delay delays circuit consumer in
          if need < required.(id) then required.(id) <- need)
        (Circuit.fanouts circuit id));
  let slack = Array.init n (fun id -> required.(id) -. arrival.(id)) in
  { arrival; critical_delay; required; slack }

let slack_of_endpoint r id = r.slack.(id)

let worst_endpoint_slack circuit r =
  Array.fold_left
    (fun acc id -> Float.min acc r.slack.(id))
    infinity (Circuit.outputs circuit)

let critical_path_of_arrival circuit ~arrival ~delays =
  let worst_output =
    Array.fold_left
      (fun best id ->
        match best with
        | None -> Some id
        | Some b -> if arrival.(id) > arrival.(b) then Some id else best)
      None (Circuit.outputs circuit)
  in
  match worst_output with
  | None -> []
  | Some last ->
    let rec walk id acc =
      let nd = Circuit.node circuit id in
      match nd.Circuit.kind with
      | Gate.Input -> acc
      | _ ->
        let acc = id :: acc in
        let fanins = nd.Circuit.fanins in
        let len = Array.length fanins in
        if len = 0 then acc
        else begin
          (* The worst fanin satisfies arrival(f) + delay(id) = arrival(id)
             exactly (that sum is how arrival(id) was computed), and any
             fanin reaching it under rounding ties the maximum, so the scan
             can stop at the first hit instead of visiting every fanin. *)
          let found = ref (-1) in
          let i = ref 0 in
          while !found < 0 && !i < len do
            let f = fanins.(!i) in
            if arrival.(f) +. delays.(id) >= arrival.(id) then found := f;
            incr i
          done;
          let next =
            if !found >= 0 then !found
            else
              Array.fold_left
                (fun best f -> if arrival.(f) > arrival.(best) then f else best)
                fanins.(0) fanins
          in
          walk next acc
        end
    in
    walk last []

let critical_path_of_result r circuit ~delays =
  critical_path_of_arrival circuit ~arrival:r.arrival ~delays

let critical_path circuit ~delays =
  validate "Sta.critical_path" circuit ~delays;
  let arrival, _ = forward circuit ~delays in
  critical_path_of_arrival circuit ~arrival ~delays

let meets circuit ~delays ~cycle_time =
  validate "Sta.meets" circuit ~delays;
  let _, critical_delay = forward circuit ~delays in
  critical_delay <= cycle_time *. (1.0 +. 1e-4)

let meets_constraints ?arrival_offsets circuit ~delays ~required_times =
  validate "Sta.meets_constraints" circuit ~delays;
  if Array.length required_times <> Circuit.size circuit then
    invalid_arg "Sta.meets_constraints: required_times size mismatch";
  let arrival, _ = forward ?offsets:arrival_offsets circuit ~delays in
  Array.for_all
    (fun id -> arrival.(id) <= required_times.(id) *. (1.0 +. 1e-4))
    (Circuit.outputs circuit)
