/* Level-slice kernels for the struct-of-arrays STA (Flat_sta).
 *
 * Each call processes one contiguous slice [lo, hi) of a level
 * permutation; the OCaml side owns level iteration, pool dispatch and
 * instrumentation. Kept in C because the per-edge work is three loads, a
 * compare and a branch — the OCaml-native versions of these loops run
 * ~2x slower (boxed Float.max call or mispredicted float-select), and
 * this pair is the whole hot path of the 100k-1M gate benchmarks.
 *
 * Bit-identity contract (the differential suite enforces it): these
 * kernels perform exactly the IEEE double operations of Sta.analyze in
 * the same per-node order. `if (a > worst) worst = a;` matches the
 * Float.max fold for every NaN-free input: the accumulator is seeded
 * with +0.0 and delays are added afterwards, so no arrival value can be
 * -0.0 and the two operators agree on everything else. The build forces
 * -ffp-contract=off so no compiler-fused multiply-adds can perturb
 * results (the kernels contain no multiplies, this is belt and braces).
 *
 * The stubs are [@@noalloc] and touch no OCaml runtime state, so pool
 * domains may execute them concurrently; disjoint slices write disjoint
 * cells. OCaml int arrays are tagged-value arrays, decoded per element
 * with Long_val (a shift). Float arrays are flat double payloads.
 */
#include <caml/mlvalues.h>

#define INT_ARR(v) ((const value *)&Field(v, 0))
#define DBL_ARR(v) ((double *)Bp_val(v))
#define CONST_DBL_ARR(v) ((const double *)Bp_val(v))

static void fwd_range(double *arrival, const double *delays,
                      const value *order, const value *off, const value *edges,
                      long lo, long hi) {
  for (long k = lo; k < hi; k++) {
    long id = Long_val(order[k]);
    long s = Long_val(off[id]), e = Long_val(off[id + 1]);
    double worst = 0.0;
    for (long p = s; p < e; p++) {
      double a = arrival[Long_val(edges[p])];
      if (a > worst) worst = a;
    }
    arrival[id] = worst + delays[id];
  }
}

CAMLprim value dcopt_flat_sta_forward_range_native(value v_arrival,
                                                   value v_delays,
                                                   value v_order,
                                                   value v_fanin_off,
                                                   value v_fanin_edges,
                                                   intnat lo, intnat hi) {
  fwd_range(DBL_ARR(v_arrival), CONST_DBL_ARR(v_delays), INT_ARR(v_order),
            INT_ARR(v_fanin_off), INT_ARR(v_fanin_edges), lo, hi);
  return Val_unit;
}

CAMLprim value dcopt_flat_sta_forward_range_bytecode(value *argv, int argn) {
  (void)argn;
  fwd_range(DBL_ARR(argv[0]), CONST_DBL_ARR(argv[1]), INT_ARR(argv[2]),
            INT_ARR(argv[3]), INT_ARR(argv[4]), Long_val(argv[5]),
            Long_val(argv[6]));
  return Val_unit;
}

/* required.(id) = min over consumers c (all at strictly higher levels,
   already final) of required.(c) - delays.(c), seeded with the required
   time at primary outputs; slack fused into the same sweep since arrival
   is final here. `if (need < req)` matches Sta's compare-and-update. */
static void bwd_range(double *required, double *slack, const double *arrival,
                      const double *delays, const value *order,
                      const value *off, const value *edges,
                      const value *is_output, double target, long lo, long hi) {
  for (long k = lo; k < hi; k++) {
    long id = Long_val(order[k]);
    double req = Bool_val(is_output[id]) ? target : (double)(1.0 / 0.0);
    long s = Long_val(off[id]), e = Long_val(off[id + 1]);
    for (long p = s; p < e; p++) {
      long c = Long_val(edges[p]);
      double need = required[c] - delays[c];
      if (need < req) req = need;
    }
    required[id] = req;
    slack[id] = req - arrival[id];
  }
}

CAMLprim value dcopt_flat_sta_backward_range_native(
    value v_required, value v_slack, value v_arrival, value v_delays,
    value v_order, value v_fanout_off, value v_fanout_edges, value v_is_output,
    double target, intnat lo, intnat hi) {
  bwd_range(DBL_ARR(v_required), DBL_ARR(v_slack), CONST_DBL_ARR(v_arrival),
            CONST_DBL_ARR(v_delays), INT_ARR(v_order), INT_ARR(v_fanout_off),
            INT_ARR(v_fanout_edges), INT_ARR(v_is_output), target, lo, hi);
  return Val_unit;
}

CAMLprim value dcopt_flat_sta_backward_range_bytecode(value *argv, int argn) {
  (void)argn;
  bwd_range(DBL_ARR(argv[0]), DBL_ARR(argv[1]), CONST_DBL_ARR(argv[2]),
            CONST_DBL_ARR(argv[3]), INT_ARR(argv[4]), INT_ARR(argv[5]),
            INT_ARR(argv[6]), INT_ARR(argv[7]), Double_val(argv[8]),
            Long_val(argv[9]), Long_val(argv[10]));
  return Val_unit;
}

/* Constraint-aware backward sweep: identical loop body, but the required
   time is seeded per node from a precomputed array (+inf at
   non-endpoints and released endpoints, the endpoint's own bound
   otherwise) instead of the uniform is_output ? target : +inf select.
   With a uniform seed the two kernels compute bit-identical columns —
   the scalar kernel above is kept so the legacy path never even reads a
   seed column. */
static void bwd_range_req(double *required, double *slack,
                          const double *arrival, const double *delays,
                          const value *order, const value *off,
                          const value *edges, const double *seed, long lo,
                          long hi) {
  for (long k = lo; k < hi; k++) {
    long id = Long_val(order[k]);
    double req = seed[id];
    long s = Long_val(off[id]), e = Long_val(off[id + 1]);
    for (long p = s; p < e; p++) {
      long c = Long_val(edges[p]);
      double need = required[c] - delays[c];
      if (need < req) req = need;
    }
    required[id] = req;
    slack[id] = req - arrival[id];
  }
}

CAMLprim value dcopt_flat_sta_backward_req_range_native(
    value v_required, value v_slack, value v_arrival, value v_delays,
    value v_order, value v_fanout_off, value v_fanout_edges, value v_seed,
    intnat lo, intnat hi) {
  bwd_range_req(DBL_ARR(v_required), DBL_ARR(v_slack),
                CONST_DBL_ARR(v_arrival), CONST_DBL_ARR(v_delays),
                INT_ARR(v_order), INT_ARR(v_fanout_off),
                INT_ARR(v_fanout_edges), CONST_DBL_ARR(v_seed), lo, hi);
  return Val_unit;
}

CAMLprim value dcopt_flat_sta_backward_req_range_bytecode(value *argv,
                                                          int argn) {
  (void)argn;
  bwd_range_req(DBL_ARR(argv[0]), DBL_ARR(argv[1]), CONST_DBL_ARR(argv[2]),
                CONST_DBL_ARR(argv[3]), INT_ARR(argv[4]), INT_ARR(argv[5]),
                INT_ARR(argv[6]), CONST_DBL_ARR(argv[7]), Long_val(argv[8]),
                Long_val(argv[9]));
  return Val_unit;
}
