(* SDC-lite recovering parser. One command per line ([\ ] continuations
   joined first, [#] comments stripped), every problem reported as a
   located [sdc.*] diagnostic, parsing always continues to the end of
   the file. Times are SDC-conventional nanoseconds, stored as
   seconds. *)

module Diag = Dcopt_util.Diag
module Circuit = Dcopt_netlist.Circuit

let ns = 1e-9

(* Recognised SDC commands we deliberately do not model: flagged as
   warnings (the file still parses), unlike unknown commands, which are
   errors. *)
let ignored_commands =
  [
    "set_units";
    "set_load";
    "set_driving_cell";
    "set_clock_uncertainty";
    "set_clock_latency";
    "set_clock_transition";
    "set_clock_groups";
    "set_operating_conditions";
    "set_wire_load_model";
    "set_multicycle_path";
    "set_dont_touch";
    "create_generated_clock";
    "current_design";
  ]

(* Whitespace-split with [ ] { } as standalone tokens, so object specs
   tokenize uniformly whether or not they are space-separated. *)
let tokenize s =
  let buf = Buffer.create 16 in
  let out = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\r' -> flush ()
      | '[' | ']' | '{' | '}' ->
          flush ();
          out := String.make 1 c :: !out
      | c -> Buffer.add_char buf c)
    s;
  flush ();
  List.rev !out

type state = {
  file : string option;
  circuit : Circuit.t option;
  mutable diags : Diag.t list; (* reverse order *)
  mutable clocks : Constraints.clock list;
  mutable max_delays : Constraints.path_rule list;
  mutable min_delays : Constraints.path_rule list;
  mutable false_paths : Constraints.exception_path list;
  mutable input_delays : Constraints.io_delay list;
  mutable output_delays : Constraints.io_delay list;
  mutable clock_refs : (int * string) list; (* (line, clock name) to check *)
}

let error st ~line ~code fmt =
  Printf.ksprintf
    (fun msg -> st.diags <- Diag.error ?file:st.file ~line ~code msg :: st.diags)
    fmt

let warning st ~line ~code fmt =
  Printf.ksprintf
    (fun msg ->
      st.diags <- Diag.warning ?file:st.file ~line ~code msg :: st.diags)
    fmt

let check_port st ~line name =
  match st.circuit with
  | None -> ()
  | Some c -> (
      match Circuit.find c name with
      | _ -> ()
      | exception Not_found ->
          error st ~line ~code:"sdc.port" "unknown port %S" name)

(* An object spec: [get_ports {a b}], [get_ports a], [get_pins ...] or a
   bare name. Returns the names and the remaining tokens; [None] means a
   diagnostic was already emitted. *)
let parse_spec st ~line ~ctx tokens =
  let collect_until_close rest =
    let rec go acc = function
      | "]" :: rest -> Some (List.rev acc, rest)
      | ("{" | "}") :: rest -> go acc rest
      | "[" :: _ | [] ->
          error st ~line ~code:"sdc.syntax" "%s: unterminated object spec" ctx;
          None
      | name :: rest -> go (name :: acc) rest
    in
    go [] rest
  in
  match tokens with
  | "[" :: func :: rest when func = "get_ports" || func = "get_pins" -> (
      match collect_until_close rest with
      | Some ([], _) ->
          error st ~line ~code:"sdc.syntax" "%s: empty %s" ctx func;
          None
      | Some (names, rest) ->
          List.iter (check_port st ~line) names;
          Some (names, rest)
      | None -> None)
  | "[" :: func :: _ ->
      error st ~line ~code:"sdc.syntax" "%s: unsupported object query %S" ctx
        func;
      None
  | "[" :: [] | "]" :: _ | "{" :: _ | "}" :: _ | [] ->
      error st ~line ~code:"sdc.syntax" "%s: expected a port or object spec"
        ctx;
      None
  | name :: rest ->
      check_port st ~line name;
      Some ([ name ], rest)

let number tok = float_of_string_opt tok

(* create_clock -period P [-name N] [-waveform {R F}] [ports] *)
let parse_create_clock st ~line tokens =
  let period = ref None in
  let cname = ref None in
  let waveform = ref None in
  let sources = ref [] in
  let ok = ref true in
  let fail code fmt =
    ok := false;
    error st ~line ~code fmt
  in
  let rec go = function
    | [] -> ()
    | "-period" :: v :: rest -> (
        match number v with
        | Some p when p > 0.0 ->
            period := Some (p *. ns);
            go rest
        | Some p -> fail "sdc.range" "create_clock: period must be > 0 (got %g)" p
        | None -> fail "sdc.syntax" "create_clock: bad period %S" v)
    | [ "-period" ] -> fail "sdc.syntax" "create_clock: -period expects a value"
    | "-name" :: v :: rest when v <> "[" && v <> "{" ->
        cname := Some v;
        go rest
    | "-name" :: _ -> fail "sdc.syntax" "create_clock: -name expects a name"
    | "-waveform" :: "{" :: r :: f :: "}" :: rest -> (
        match (number r, number f) with
        | Some r, Some f ->
            waveform := Some (r *. ns, f *. ns);
            go rest
        | _ -> fail "sdc.syntax" "create_clock: bad -waveform edges")
    | "-waveform" :: _ ->
        fail "sdc.syntax" "create_clock: -waveform expects {rise fall}"
    | tokens -> (
        match parse_spec st ~line ~ctx:"create_clock" tokens with
        | Some (names, rest) ->
            sources := !sources @ names;
            go rest
        | None -> ok := false)
  in
  go tokens;
  if !ok then
    match !period with
    | None -> error st ~line ~code:"sdc.syntax" "create_clock: missing -period"
    | Some period -> (
        let name =
          match (!cname, !sources) with
          | Some n, _ -> Some n
          | None, s :: _ -> Some s
          | None, [] -> None
        in
        match name with
        | None ->
            error st ~line ~code:"sdc.syntax"
              "create_clock: needs -name or a source port"
        | Some name ->
            if
              List.exists
                (fun c -> String.equal c.Constraints.clock_name name)
                st.clocks
            then error st ~line ~code:"sdc.duplicate" "duplicate clock %S" name
            else
              st.clocks <-
                {
                  Constraints.clock_name = name;
                  period;
                  waveform = !waveform;
                  sources = !sources;
                }
                :: st.clocks)

(* set_max_delay / set_min_delay: value plus optional -from/-to specs. *)
let parse_path_delay st ~line ~cmd ~min_delay tokens =
  let value = ref None in
  let from_ = ref [] in
  let to_ = ref [] in
  let ok = ref true in
  let fail code fmt =
    ok := false;
    error st ~line ~code fmt
  in
  let rec go = function
    | [] -> ()
    | "-from" :: rest -> spec rest (fun names -> from_ := !from_ @ names)
    | "-to" :: rest -> spec rest (fun names -> to_ := !to_ @ names)
    | ("-rise" | "-fall" | "-datapath_only") :: rest -> go rest
    | tok :: rest -> (
        match number tok with
        | Some v -> (
            match !value with
            | None ->
                if (not min_delay) && v < 0.0 then
                  fail "sdc.range" "%s: negative bound %g" cmd v
                else begin
                  value := Some (v *. ns);
                  go rest
                end
            | Some _ -> fail "sdc.syntax" "%s: duplicate delay value" cmd)
        | None -> fail "sdc.syntax" "%s: unexpected token %S" cmd tok)
  and spec tokens k =
    match parse_spec st ~line ~ctx:cmd tokens with
    | Some (names, rest) ->
        k names;
        go rest
    | None -> ok := false
  in
  go tokens;
  if !ok then
    match !value with
    | None -> error st ~line ~code:"sdc.syntax" "%s: missing delay value" cmd
    | Some bound ->
        let rule =
          { Constraints.rule_from = !from_; rule_to = !to_; bound }
        in
        if min_delay then st.min_delays <- rule :: st.min_delays
        else st.max_delays <- rule :: st.max_delays

let parse_false_path st ~line tokens =
  let from_ = ref [] in
  let to_ = ref [] in
  let ok = ref true in
  let rec go = function
    | [] -> ()
    | "-from" :: rest -> spec rest (fun names -> from_ := !from_ @ names)
    | "-to" :: rest -> spec rest (fun names -> to_ := !to_ @ names)
    | "-through" :: rest -> (
        warning st ~line ~code:"sdc.unsupported"
          "set_false_path: -through is ignored";
        match parse_spec st ~line ~ctx:"set_false_path" rest with
        | Some (_, rest) -> go rest
        | None -> ok := false)
    | ("-setup" | "-hold") :: rest -> go rest
    | tok :: _ ->
        ok := false;
        error st ~line ~code:"sdc.syntax" "set_false_path: unexpected token %S"
          tok
  and spec tokens k =
    match parse_spec st ~line ~ctx:"set_false_path" tokens with
    | Some (names, rest) ->
        k names;
        go rest
    | None -> ok := false
  in
  go tokens;
  if !ok then begin
    if !from_ = [] && !to_ = [] then
      warning st ~line ~code:"sdc.unsupported"
        "set_false_path without -from/-to disables every endpoint"
    ;
    st.false_paths <-
      { Constraints.exc_from = !from_; exc_to = !to_ } :: st.false_paths
  end

(* set_input_delay / set_output_delay: value, optional -clock, port spec. *)
let parse_io_delay st ~line ~cmd ~input tokens =
  let value = ref None in
  let clock = ref None in
  let ports = ref [] in
  let ok = ref true in
  let fail code fmt =
    ok := false;
    error st ~line ~code fmt
  in
  let rec go = function
    | [] -> ()
    | "-clock" :: c :: rest when c <> "[" && c <> "{" ->
        clock := Some c;
        st.clock_refs <- (line, c) :: st.clock_refs;
        go rest
    | "-clock" :: _ -> fail "sdc.syntax" "%s: -clock expects a clock name" cmd
    | ("-max" | "-min" | "-add_delay" | "-rise" | "-fall") :: rest -> go rest
    | tok :: rest when number tok <> None && !value = None -> (
        match number tok with
        | Some v ->
            value := Some (v *. ns);
            go rest
        | None -> assert false)
    | tokens -> (
        match parse_spec st ~line ~ctx:cmd tokens with
        | Some (names, rest) ->
            ports := !ports @ names;
            go rest
        | None -> ok := false)
  in
  go tokens;
  if !ok then
    match (!value, !ports) with
    | None, _ -> error st ~line ~code:"sdc.syntax" "%s: missing delay value" cmd
    | Some _, [] -> error st ~line ~code:"sdc.syntax" "%s: missing port spec" cmd
    | Some v, ports ->
        List.iter
          (fun port ->
            let d =
              { Constraints.port; io_clock = !clock; io_delay = v }
            in
            if input then st.input_delays <- d :: st.input_delays
            else st.output_delays <- d :: st.output_delays)
          ports

let parse_line st ~line tokens =
  match tokens with
  | [] -> ()
  | "create_clock" :: rest -> parse_create_clock st ~line rest
  | "set_max_delay" :: rest ->
      parse_path_delay st ~line ~cmd:"set_max_delay" ~min_delay:false rest
  | "set_min_delay" :: rest ->
      parse_path_delay st ~line ~cmd:"set_min_delay" ~min_delay:true rest
  | "set_false_path" :: rest -> parse_false_path st ~line rest
  | "set_input_delay" :: rest ->
      parse_io_delay st ~line ~cmd:"set_input_delay" ~input:true rest
  | "set_output_delay" :: rest ->
      parse_io_delay st ~line ~cmd:"set_output_delay" ~input:false rest
  | cmd :: _ when List.mem cmd ignored_commands ->
      warning st ~line ~code:"sdc.unsupported" "command %S is ignored" cmd
  | cmd :: _ -> error st ~line ~code:"sdc.command" "unknown command %S" cmd

let strip_comment s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

(* Physical lines -> logical lines: trailing [\ ] joins the next line;
   the logical line keeps the number of its first physical line. *)
let logical_lines text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> List.rev acc
    | l :: rest ->
        let l = strip_comment l in
        let rec absorb lineno_span l rest =
          let trimmed = String.trim l in
          if String.length trimmed > 0 && trimmed.[String.length trimmed - 1] = '\\'
          then
            match rest with
            | next :: rest ->
                let body = String.sub trimmed 0 (String.length trimmed - 1) in
                absorb (lineno_span + 1)
                  (body ^ " " ^ strip_comment next)
                  rest
            | [] -> (lineno_span, l, rest)
          else (lineno_span, l, rest)
        in
        let span, joined, rest = absorb 1 l rest in
        go (lineno + span) ((lineno, joined) :: acc) rest
  in
  go 1 [] lines

let parse ?file ?circuit text =
  let st =
    {
      file;
      circuit;
      diags = [];
      clocks = [];
      max_delays = [];
      min_delays = [];
      false_paths = [];
      input_delays = [];
      output_delays = [];
      clock_refs = [];
    }
  in
  List.iter
    (fun (line, l) -> parse_line st ~line (tokenize l))
    (logical_lines text);
  (* -clock references are resolved once the whole file is read, so
     declaration order never matters. *)
  List.iter
    (fun (line, name) ->
      if
        not
          (List.exists
             (fun c -> String.equal c.Constraints.clock_name name)
             st.clocks)
      then error st ~line ~code:"sdc.clock" "unknown clock %S" name)
    (List.rev st.clock_refs);
  let diags = List.rev st.diags in
  if Diag.has_errors diags then Error diags
  else
    Ok
      {
        Constraints.clocks = List.rev st.clocks;
        max_delays = List.rev st.max_delays;
        min_delays = List.rev st.min_delays;
        false_paths = List.rev st.false_paths;
        input_delays = List.rev st.input_delays;
        output_delays = List.rev st.output_delays;
      }

let parse_file_checked ?circuit path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> parse ~file:path ?circuit text
  | exception Sys_error msg ->
      Error [ Diag.error ~file:path ~code:"sdc.io" msg ]
