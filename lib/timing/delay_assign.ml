module Circuit = Dcopt_netlist.Circuit
module Gate = Dcopt_netlist.Gate
module Metrics = Dcopt_obs.Metrics

let assign_counter =
  Metrics.counter ~help:"Procedure-1 budget assignments performed"
    "timing.assignments"

let paths_counter =
  Metrics.counter ~help:"critical paths consumed by Procedure-1 budgeting"
    "timing.paths_used"

let fallback_counter =
  Metrics.counter ~help:"gates budgeted by the chain-criticality fallback"
    "timing.fallback_gates"

let slope_counter =
  Metrics.counter ~help:"budgets lifted for slope feasibility"
    "timing.slope_adjusted"

type t = {
  t_max : float array;
  cycle_budget : float;
  paths_used : int;
  fallback_gates : int;
  slope_adjusted : int;
}

let is_gate circuit id =
  match (Circuit.node circuit id).Circuit.kind with
  | Gate.Input | Gate.Dff -> false
  | _ -> true

(* Largest fanout-sum over chains from this gate downward / from sources to
   this gate, allowing chains to stop anywhere (used only by the fallback,
   where dead-end logic is exactly the case at hand). *)
let chain_criticalities circuit =
  let n = Circuit.size circuit in
  let order = Circuit.topo_order circuit in
  let w id = float_of_int (Kpaths.effective_fanout circuit id) in
  let down = Array.make n 0.0 in
  for i = Array.length order - 1 downto 0 do
    let id = order.(i) in
    if is_gate circuit id then begin
      let cont =
        Array.fold_left
          (fun acc g -> if is_gate circuit g then Float.max acc down.(g) else acc)
          0.0 (Circuit.fanouts circuit id)
      in
      down.(id) <- w id +. cont
    end
  done;
  let up = Array.make n 0.0 in
  Array.iter
    (fun id ->
      if is_gate circuit id then begin
        let nd = Circuit.node circuit id in
        let pred =
          Array.fold_left
            (fun acc f -> if is_gate circuit f then Float.max acc up.(f) else acc)
            0.0 nd.Circuit.fanins
        in
        up.(id) <- w id +. pred
      end)
    order;
  (up, down)

let assign ?(skew_factor = 0.95) ?max_paths ?(slope_guard = 0.3) ?constraints
    circuit ~cycle_time =
  Dcopt_obs.Span.with_ "procedure1.assign"
    ~args:[ ("circuit", Circuit.name circuit) ]
  @@ fun () ->
  (* A constraint set collapses to the single scalar Procedure 1
     distributes: its tightest clock period / global max-delay bound.
     (Per-endpoint bounds are enforced by the STA feasibility check, not
     by the budget split.) The scalar compatibility set [of_cycle_time
     ct] yields exactly [ct], so legacy runs are bit-identical. *)
  let cycle_time =
    match constraints with
    | None -> cycle_time
    | Some c -> Constraints.tightest_cycle_time c ~default:cycle_time
  in
  if not (Circuit.is_combinational circuit) then
    invalid_arg "Delay_assign.assign: circuit is sequential";
  if cycle_time <= 0.0 then invalid_arg "Delay_assign.assign: cycle_time <= 0";
  if not (skew_factor > 0.0 && skew_factor <= 1.0) then
    invalid_arg "Delay_assign.assign: skew_factor out of (0, 1]";
  let n = Circuit.size circuit in
  let available = skew_factor *. cycle_time in
  let t_max = Array.make n 0.0 in
  let assigned = Array.make n false in
  let gate_total = Circuit.gate_count circuit in
  let remaining = ref gate_total in
  let paths_used = ref 0 in
  let w id = float_of_int (Kpaths.effective_fanout circuit id) in
  let consume_path gate_ids =
    let unassigned = List.filter (fun id -> not (assigned.(id))) gate_ids in
    if unassigned <> [] then begin
      incr paths_used;
      let already =
        List.fold_left
          (fun acc id -> if assigned.(id) then acc +. t_max.(id) else acc)
          0.0 gate_ids
      in
      let denom = List.fold_left (fun acc id -> acc +. w id) 0.0 unassigned in
      (* eq. (3); if more critical paths already ate the whole budget, give
         the stragglers a tiny positive share and let the final scaling pass
         restore the guarantee. *)
      let share = Float.max (0.01 *. available) (available -. already) /. denom in
      List.iter
        (fun id ->
          t_max.(id) <- w id *. share;
          assigned.(id) <- true;
          decr remaining)
        unassigned
    end
  in
  let paths = Kpaths.enumerate ?max_paths circuit in
  let rec drain seq =
    if !remaining > 0 then
      match seq () with
      | Seq.Nil -> ()
      | Seq.Cons (p, rest) ->
        consume_path p.Kpaths.gate_ids;
        drain rest
  in
  drain paths;
  (* Fallback for gates on no enumerated PI-to-PO path. *)
  let fallback_gates = ref 0 in
  if !remaining > 0 then begin
    let up, down = chain_criticalities circuit in
    Array.iter
      (fun nd ->
        let id = nd.Circuit.id in
        if is_gate circuit id && not assigned.(id) then begin
          let crit = up.(id) +. down.(id) -. w id in
          t_max.(id) <- available *. w id /. Float.max (w id) crit;
          assigned.(id) <- true;
          incr fallback_gates;
          decr remaining
        end)
      (Circuit.nodes circuit)
  end;
  (* Slope-feasibility lift (paper: post processing so the driven gate's
     budget is achievable given its drivers' budgets). *)
  let slope_adjusted = ref 0 in
  Array.iter
    (fun id ->
      if is_gate circuit id then begin
        let nd = Circuit.node circuit id in
        let worst_fanin =
          Array.fold_left
            (fun acc f ->
              if is_gate circuit f then Float.max acc t_max.(f) else acc)
            0.0 nd.Circuit.fanins
        in
        let floor_needed = slope_guard *. worst_fanin in
        if t_max.(id) < floor_needed then begin
          t_max.(id) <- floor_needed;
          incr slope_adjusted
        end
      end)
    (Circuit.topo_order circuit);
  (* Final guarantee: scale so no path exceeds the distributed budget. *)
  let sta = Sta.analyze circuit ~delays:t_max in
  if sta.Sta.critical_delay > available && sta.Sta.critical_delay > 0.0 then begin
    let scale = available /. sta.Sta.critical_delay in
    Array.iteri (fun id v -> t_max.(id) <- v *. scale) t_max
  end;
  Metrics.incr assign_counter;
  Metrics.incr ~by:!paths_used paths_counter;
  Metrics.incr ~by:!fallback_gates fallback_counter;
  Metrics.incr ~by:!slope_adjusted slope_counter;
  {
    t_max;
    cycle_budget = available;
    paths_used = !paths_used;
    fallback_gates = !fallback_gates;
    slope_adjusted = !slope_adjusted;
  }

let verify circuit budget ~cycle_time =
  let sta = Sta.analyze circuit ~delays:budget.t_max in
  sta.Sta.critical_delay <= cycle_time *. (1.0 +. 1e-6)
