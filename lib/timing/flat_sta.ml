module Circuit = Dcopt_netlist.Circuit
module Flat = Dcopt_netlist.Flat
module Metrics = Dcopt_obs.Metrics
module Par = Dcopt_par.Par

(* Same record as the pointer-based analyzer, re-exported with equality so
   results interchange freely. *)
type result = Sta.result = {
  arrival : float array;
  critical_delay : float;
  required : float array;
  slack : float array;
}

let m_passes = Metrics.counter "sta.level.passes"
    ~help:"Levelized STA sweeps (one forward or backward pass each)"
let m_par_levels = Metrics.counter "sta.level.par_levels"
    ~help:"Level slices wide enough to run on the domain pool"
let m_seq_levels = Metrics.counter "sta.level.seq_levels"
    ~help:"Level slices below the parallel width threshold"
let g_depth = Metrics.gauge "sta.level.depth"
    ~help:"Logic depth of the last circuit analyzed by the flat STA"
let g_max_width = Metrics.gauge "sta.level.max_width"
    ~help:"Widest gate level of the last circuit analyzed by the flat STA"
let g_alloc = Metrics.gauge "flat.alloc_bytes"
    ~help:"Working-set bytes of the last flat circuit view analyzed"

(* Gauges are main-domain-only instruments; the counters are atomic and
   safe from pool workers (an optimizer running under Par.map may reach
   this module off the main domain). *)
let set_gauges f =
  if Domain.is_main_domain () then begin
    Metrics.set g_depth (float_of_int (Flat.depth f));
    Metrics.set g_max_width (float_of_int (Flat.max_level_width f));
    Metrics.set g_alloc (float_of_int (Flat.alloc_bytes f))
  end

let default_min_par_width = 2048

let validate name f ~delays =
  if not (Circuit.is_combinational (Flat.circuit f)) then
    invalid_arg (name ^ ": circuit is sequential");
  if Array.length delays <> Flat.size f then
    invalid_arg (name ^ ": delay array size mismatch")

(* The per-slice sweep kernels live in flat_sta_stubs.c: the per-edge
   work is three loads, a compare and a branch, and the C loops run ~2x
   faster than their best OCaml renditions (see the stub file for the
   bit-identity argument — they reproduce Sta.analyze's IEEE operations
   exactly, for every NaN-free delay array). Both are [@@noalloc] and
   runtime-free, so pool domains may run disjoint slices concurrently. *)

external forward_range :
  float array (* arrival *) ->
  float array (* delays *) ->
  int array (* gate level order *) ->
  int array (* fanin_off *) ->
  int array (* fanin_edges *) ->
  (int[@untagged]) (* lo *) ->
  (int[@untagged]) (* hi *) ->
  unit
  = "dcopt_flat_sta_forward_range_bytecode" "dcopt_flat_sta_forward_range_native"
[@@noalloc]

external backward_range :
  float array (* required *) ->
  float array (* slack *) ->
  float array (* arrival *) ->
  float array (* delays *) ->
  int array (* level order *) ->
  int array (* fanout_off *) ->
  int array (* fanout_edges *) ->
  bool array (* is_output *) ->
  (float[@unboxed]) (* target *) ->
  (int[@untagged]) (* lo *) ->
  (int[@untagged]) (* hi *) ->
  unit
  = "dcopt_flat_sta_backward_range_bytecode" "dcopt_flat_sta_backward_range_native"
[@@noalloc]

external backward_req_range :
  float array (* required *) ->
  float array (* slack *) ->
  float array (* arrival *) ->
  float array (* delays *) ->
  int array (* level order *) ->
  int array (* fanout_off *) ->
  int array (* fanout_edges *) ->
  float array (* required seeds *) ->
  (int[@untagged]) (* lo *) ->
  (int[@untagged]) (* hi *) ->
  unit
  = "dcopt_flat_sta_backward_req_range_bytecode"
    "dcopt_flat_sta_backward_req_range_native"
[@@noalloc]

(* Run [kernel lo hi] over one level slice, chunked over the pool when the
   slice is wide enough. Chunk boundaries only partition the index space;
   each index writes its own cell, so the chunking (and hence the job
   count) cannot change any produced value. *)
let run_level ~jobs ~min_par_width kernel lo hi =
  let width = hi - lo in
  if width <= 0 then ()
  else if jobs > 1 && width >= min_par_width then begin
    Metrics.incr m_par_levels;
    let chunks = jobs in
    let chunk = (width + chunks - 1) / chunks in
    Par.parallel_for ~site:"sta.level" ~jobs ~n:chunks (fun c ->
        let clo = lo + (c * chunk) in
        let chi = min hi (clo + chunk) in
        if clo < chi then kernel clo chi)
  end
  else begin
    Metrics.incr m_seq_levels;
    kernel lo hi
  end

let forward_sweep ~jobs ~min_par_width f ~delays ~arrival =
  Metrics.incr m_passes;
  let off = f.Flat.gate_level_off in
  let order = f.Flat.gate_level_order in
  let fanin_off = f.Flat.fanin_off in
  let fanin_edges = f.Flat.fanin_edges in
  for l = 0 to f.Flat.depth do
    run_level ~jobs ~min_par_width
      (forward_range arrival delays order fanin_off fanin_edges)
      off.(l) off.(l + 1)
  done;
  Array.fold_left
    (fun acc id -> Float.max acc arrival.(id))
    0.0 f.Flat.output_ids

let forward_into ?jobs ?(min_par_width = default_min_par_width) f ~delays
    ~arrival =
  (* The C kernel indexes both columns by gate id with no bounds checks;
     these O(1) length checks are what keeps a short array from
     corrupting the heap. *)
  let n = Flat.size f in
  if Array.length delays <> n then
    invalid_arg "Flat_sta.forward_into: delay array size mismatch";
  if Array.length arrival <> n then
    invalid_arg "Flat_sta.forward_into: arrival array size mismatch";
  let jobs = match jobs with Some j -> j | None -> Par.jobs () in
  Array.fill arrival 0 (Array.length arrival) 0.0;
  forward_sweep ~jobs ~min_par_width f ~delays ~arrival

(* Fresh arrival columns skip the full zero fill: the forward sweep
   writes every gate entry, so only the non-gate (primary input) slots of
   level 0 need an explicit 0. *)
let fresh_arrival f =
  let arrival = Array.create_float (Flat.size f) in
  let order = f.Flat.level_order in
  let is_gate = f.Flat.is_gate in
  for k = f.Flat.level_off.(0) to f.Flat.level_off.(1) - 1 do
    let id = Array.unsafe_get order k in
    if not (Array.unsafe_get is_gate id) then Array.unsafe_set arrival id 0.0
  done;
  arrival

let forward ?jobs ?min_par_width f ~delays =
  validate "Flat_sta.forward" f ~delays;
  set_gauges f;
  let jobs =
    match jobs with Some j -> j | None -> Par.jobs ()
  in
  let min_par_width =
    Option.value min_par_width ~default:default_min_par_width
  in
  let arrival = fresh_arrival f in
  let critical = forward_sweep ~jobs ~min_par_width f ~delays ~arrival in
  (arrival, critical)

let analyze ?required_time ?required_times ?arrival_offsets ?jobs
    ?(min_par_width = default_min_par_width) f ~delays =
  validate "Flat_sta.analyze" f ~delays;
  set_gauges f;
  let jobs = match jobs with Some j -> j | None -> Par.jobs () in
  let n = Flat.size f in
  (match required_times with
   | Some seeds when Array.length seeds <> n ->
     invalid_arg "Flat_sta.analyze: required_times size mismatch"
   | _ -> ());
  (match arrival_offsets with
   | Some seeds when Array.length seeds <> n ->
     invalid_arg "Flat_sta.analyze: arrival_offsets size mismatch"
   | _ -> ());
  let arrival =
    match arrival_offsets with
    | None -> fresh_arrival f
    | Some seeds -> Array.copy seeds (* gate slots overwritten by the sweep *)
  in
  let critical_delay = forward_sweep ~jobs ~min_par_width f ~delays ~arrival in
  (* The backward sweep writes every node's required and slack exactly
     once (every node appears in the level order), so the columns start
     uninitialized. *)
  let required = Array.create_float n in
  let slack = Array.create_float n in
  Metrics.incr m_passes;
  let off = f.Flat.level_off in
  let order = f.Flat.level_order in
  let fanout_off = f.Flat.fanout_off in
  let fanout_edges = f.Flat.fanout_edges in
  (match required_times with
   | Some seeds ->
     (* Constraint path: the per-node seed kernel. A uniform seed at
        every output is bit-identical to the scalar kernel below. *)
     for l = f.Flat.depth downto 0 do
       run_level ~jobs ~min_par_width
         (backward_req_range required slack arrival delays order fanout_off
            fanout_edges seeds)
         off.(l) off.(l + 1)
     done
   | None ->
     let target = Option.value required_time ~default:critical_delay in
     let is_output = f.Flat.is_output in
     for l = f.Flat.depth downto 0 do
       run_level ~jobs ~min_par_width
         (backward_range required slack arrival delays order fanout_off
            fanout_edges is_output target)
         off.(l) off.(l + 1)
     done);
  { arrival; critical_delay; required; slack }
