module Circuit = Dcopt_netlist.Circuit
module Generator = Dcopt_netlist.Generator
module Bench_format = Dcopt_netlist.Bench_format

(* The genuine ISCAS-89 s27 netlist. *)
let s27_bench =
  "# s27\n\
   INPUT(G0)\n\
   INPUT(G1)\n\
   INPUT(G2)\n\
   INPUT(G3)\n\
   OUTPUT(G17)\n\
   G5 = DFF(G10)\n\
   G6 = DFF(G11)\n\
   G7 = DFF(G13)\n\
   G14 = NOT(G0)\n\
   G17 = NOT(G11)\n\
   G8 = AND(G14, G6)\n\
   G15 = OR(G12, G8)\n\
   G16 = OR(G3, G8)\n\
   G9 = NAND(G16, G15)\n\
   G10 = NOR(G14, G11)\n\
   G11 = NOR(G5, G9)\n\
   G12 = NOR(G1, G7)\n\
   G13 = NOR(G2, G12)\n"

let s27 () = Bench_format.parse_string ~name:"s27" s27_bench

(* Published ISCAS-89 structural profiles:
   (name, PI, PO, DFF, combinational gates, logic depth). *)
let table_profiles =
  [
    ("s298", 3, 6, 14, 119, 9);
    ("s344", 9, 11, 15, 160, 14);
    ("s349", 9, 11, 15, 161, 14);
    ("s382", 3, 6, 21, 158, 9);
    ("s386", 7, 7, 6, 159, 11);
    ("s400", 3, 6, 21, 164, 9);
    ("s444", 3, 6, 21, 181, 11);
    ("s510", 19, 7, 6, 211, 12);
  ]

let extended_profiles =
  [
    ("s526", 3, 6, 21, 193, 9);
    ("s820", 18, 19, 5, 289, 10);
    ("s832", 18, 19, 5, 287, 10);
    ("s1488", 8, 19, 6, 653, 17);
  ]

let table_circuits = List.map (fun (n, _, _, _, _, _) -> n) table_profiles
let extended_circuits = List.map (fun (n, _, _, _, _, _) -> n) extended_profiles
let names = ("s27" :: table_circuits) @ extended_circuits

let profile name =
  List.find_opt (fun (n, _, _, _, _, _) -> n = name)
    (table_profiles @ extended_profiles)
  |> Option.map (fun (n, pi, po, ff, gates, depth) ->
         {
           Generator.profile_name = n;
           primary_inputs = pi;
           primary_outputs = po;
           flip_flops = ff;
           gates;
           logic_depth = depth;
           seed = None;
         })

let cache : (string, Circuit.t) Hashtbl.t = Hashtbl.create 16

(* Levenshtein distance, capped: we only ever ask "is it within 1?", so
   the quadratic table on short benchmark names is nothing. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let row = Array.init (lb + 1) Fun.id in
  for i = 1 to la do
    let prev_diag = ref row.(0) in
    row.(0) <- i;
    for j = 1 to lb do
      let d = !prev_diag + if a.[i - 1] = b.[j - 1] then 0 else 1 in
      prev_diag := row.(j);
      row.(j) <- min d (1 + min row.(j) row.(j - 1))
    done
  done;
  row.(lb)

(* Near misses worth suggesting: a case difference ("S27"), or one typo
   (edit distance 1: "s269" for "s298"-adjacent slips like "s29"). *)
let suggestions name =
  let lower = String.lowercase_ascii name in
  List.filter
    (fun known ->
      String.lowercase_ascii known = lower || edit_distance name known <= 1)
    names

let find name =
  match Hashtbl.find_opt cache name with
  | Some c -> Ok c
  | None -> (
    let circuit =
      if name = "s27" then Some (s27 ())
      else Option.map Generator.generate (profile name)
    in
    match circuit with
    | Some circuit ->
      Hashtbl.add cache name circuit;
      Ok circuit
    | None ->
      let hint =
        match suggestions name with
        | [] -> ""
        | near ->
          Printf.sprintf " — did you mean %s?" (String.concat " or " near)
      in
      Error
        (Printf.sprintf "unknown circuit %S%s (known: %s)" name hint
           (String.concat " " names)))

let find_exn name =
  match find name with Ok c -> c | Error _ -> raise Not_found

let all () = List.map (fun n -> (n, find_exn n)) names
