(** Benchmark-circuit suite for the paper's experiments (§5).

    ISCAS-89 netlists cannot be redistributed here, so apart from the tiny
    [s27] (embedded verbatim — it is universally reproduced in textbooks)
    each suite circuit is a deterministic synthetic stand-in matching the
    original's published profile: primary inputs/outputs, flip-flops,
    combinational gate count and logic depth (DESIGN.md, substitution 2).
    Regeneration is deterministic, so all experiments are exactly
    reproducible. *)

val s27 : unit -> Dcopt_netlist.Circuit.t
(** The real ISCAS-89 s27: 4 PI, 1 PO, 3 DFF, 10 gates. *)

val table_circuits : string list
(** The eight circuit names of the paper's Tables 1-2:
    s298 s344 s349 s382 s386 s400 s444 s510. *)

val extended_circuits : string list
(** Additional ISCAS-89 profiles beyond the paper's table (s526 s820 s832
    s1488), available for wider experiments. *)

val names : string list
(** All available circuits: ["s27"], {!table_circuits}, then
    {!extended_circuits}. *)

val profile : string -> Dcopt_netlist.Generator.profile option
(** The generation profile of a synthetic suite circuit ([None] for
    ["s27"], which is not generated, and for unknown names). *)

val suggestions : string -> string list
(** Known names a bad name was probably meant to be: case-insensitive
    matches ("S27") and single-typo matches (edit distance 1), in
    {!names} order. Empty when nothing is close. *)

val find : string -> (Dcopt_netlist.Circuit.t, string) result
(** Circuit by name (generating it on first use); unknown names are a
    typed [Error] carrying near-miss {!suggestions} ("did you mean …?")
    and the known-name list, so CLI/service callers surface them as
    failure rows instead of an escaping [Not_found]. The result is
    sequential; analyses should take its combinational core. *)

val find_exn : string -> Dcopt_netlist.Circuit.t
(** {!find}, raising [Not_found] on unknown names (the historical
    behaviour, for callers with known-good names). *)

val all : unit -> (string * Dcopt_netlist.Circuit.t) list
(** Every suite circuit, in {!names} order. *)
