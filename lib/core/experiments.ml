module Suite = Dcopt_suite.Suite
module Circuit = Dcopt_netlist.Circuit
module Solution = Dcopt_opt.Solution
module Heuristic = Dcopt_opt.Heuristic
module Variation = Dcopt_opt.Variation
module Slack_sweep = Dcopt_opt.Slack_sweep
module Delay_assign = Dcopt_timing.Delay_assign
module Text_table = Dcopt_util.Text_table
module Si = Dcopt_util.Si
module Power_model = Dcopt_opt.Power_model

type table_row = {
  circuit : string;
  gates : int;
  depth : int;
  input_density : float;
  static_energy : float;
  dynamic_energy : float;
  total_energy : float;
  critical_delay : float;
  vdd : float;
  vt : float;
  savings : float option;
}

let default_activities = [| 0.1; 0.5 |]
let default_circuits = Suite.table_circuits

let prepare_at config name density =
  let config = { config with Flow.input_density = density } in
  Flow.prepare ~config (Suite.find_exn name)

let row_of_solution p name density savings sol =
  {
    circuit = name;
    gates = Circuit.gate_count p.Flow.core;
    depth = Circuit.depth p.Flow.core;
    input_density = density;
    static_energy = Solution.static_energy sol;
    dynamic_energy = Solution.dynamic_energy sol;
    total_energy = Solution.total_energy sol;
    critical_delay = Solution.critical_delay sol;
    vdd = Solution.vdd sol;
    vt = (match Solution.vt_values sol with v :: _ -> v | [] -> nan);
    savings;
  }

let rows_with ~runner ?(config = Flow.default_config)
    ?(circuits = default_circuits) ?(activities = default_activities) () =
  (* Each (circuit, activity) table row is an independent optimization:
     run them on the Par pool and keep the table in the nested scan
     order. *)
  List.concat_map
    (fun name ->
      Array.to_list activities |> List.map (fun density -> (name, density)))
    circuits
  |> Dcopt_par.Par.map_list ~site:"experiments.rows" (fun (name, density) ->
         let p = prepare_at config name density in
         runner p name density)
  |> List.filter_map Fun.id

(* Every driver dispatches through the {!Optimizer} registry — the same
   descriptors the CLI and the batch service use; the per-optimizer Flow
   entry points no longer exist. Single-corner studies wrap the prepared
   circuit in the legacy nominal scenario. *)

let run_opt name p =
  (Optimizer.get name).Optimizer.run (Scenario.of_prepared p)

let rows_for ~optimizer ?baseline ?config ?circuits ?activities () =
  let runner p name density =
    match run_opt optimizer p with
    | None -> None
    | Some sol ->
      let savings =
        Option.bind baseline (fun b ->
            run_opt b p
            |> Option.map (fun b -> Solution.savings ~baseline:b sol))
      in
      Some (row_of_solution p name density savings sol)
  in
  rows_with ~runner ?config ?circuits ?activities ()

let table1 ?config ?circuits ?activities () =
  rows_for ~optimizer:"baseline" ?config ?circuits ?activities ()

let table2 ?config ?circuits ?activities () =
  rows_for ~optimizer:"joint-grid" ~baseline:"baseline" ?config ?circuits
    ?activities ()

let render_table ~title rows =
  let t =
    Text_table.create
      ~headers:
        [ "Circuit"; "Gates"; "Depth"; "Input Act."; "Static Energy";
          "Dynamic Energy"; "Total Energy"; "Crit. Delay (ns)"; "Vdd (V)";
          "Vt (mV)"; "Savings" ]
  in
  List.iter
    (fun r ->
      Text_table.add_row t
        [
          r.circuit;
          string_of_int r.gates;
          string_of_int r.depth;
          Printf.sprintf "%.2f" r.input_density;
          Si.format_exp r.static_energy;
          Si.format_exp r.dynamic_energy;
          Si.format_exp r.total_energy;
          Printf.sprintf "%.2f" (r.critical_delay *. 1e9);
          Printf.sprintf "%.2f" r.vdd;
          Printf.sprintf "%.0f" (r.vt *. 1000.0);
          (match r.savings with
          | None -> "-"
          | Some s -> Printf.sprintf "%.1fx" s);
        ])
    rows;
  Printf.sprintf "%s\n%s" title (Text_table.render t)

let fig2a ?(config = Flow.default_config) ?(circuit = "s298")
    ?(tolerances = [| 0.0; 0.05; 0.10; 0.15; 0.20; 0.25; 0.30 |]) () =
  let p = prepare_at config circuit config.Flow.input_density in
  match run_opt "baseline" p with
  | None -> [||]
  | Some base ->
    Variation.savings_curve ~m_steps:config.Flow.m_steps p.Flow.env
      ~budgets:(Flow.budgets p)
      ~baseline_energy:(Solution.total_energy base)
      ~tolerances

let render_fig2a points =
  let t =
    Text_table.create
      ~headers:[ "Vt tolerance (%)"; "Worst-case energy"; "Power savings" ]
  in
  Array.iter
    (fun pt ->
      Text_table.add_row t
        [
          Printf.sprintf "%.0f" pt.Variation.tolerance_pct;
          Si.format_exp pt.Variation.worst_case_energy;
          Printf.sprintf "%.1fx" pt.Variation.savings;
        ])
    points;
  Printf.sprintf
    "Figure 2(a): power savings vs threshold-voltage variation (s298)\n%s"
    (Text_table.render t)

let fig2b ?(config = Flow.default_config) ?(circuit = "s298")
    ?(factors = [| 1.0; 1.25; 1.5; 2.0; 2.5; 3.0 |]) () =
  let core = Circuit.combinational_core (Suite.find_exn circuit) in
  let specs =
    Dcopt_activity.Activity.uniform_inputs core
      ~probability:config.Flow.input_probability
      ~density:config.Flow.input_density
  in
  let profile = Dcopt_activity.Activity.local_profile core specs in
  Slack_sweep.sweep ~m_steps:config.Flow.m_steps ~tech:config.Flow.tech
    ~fc:config.Flow.clock_frequency core profile ~factors

let render_fig2b points =
  let t =
    Text_table.create
      ~headers:
        [ "Cycle-time slack"; "Baseline energy"; "Joint energy";
          "Savings vs Table 1"; "Savings same-slack"; "Joint Vdd (V)";
          "Joint Vt (mV)" ]
  in
  Array.iter
    (fun pt ->
      Text_table.add_row t
        [
          Printf.sprintf "%.2fx" pt.Slack_sweep.slack_factor;
          Si.format_exp pt.Slack_sweep.baseline_energy;
          Si.format_exp pt.Slack_sweep.joint_energy;
          Printf.sprintf "%.1fx" pt.Slack_sweep.savings;
          Printf.sprintf "%.1fx" pt.Slack_sweep.savings_same_slack;
          Printf.sprintf "%.2f" pt.Slack_sweep.joint_vdd;
          Printf.sprintf "%.0f" (pt.Slack_sweep.joint_vt *. 1000.0);
        ])
    points;
  Printf.sprintf
    "Figure 2(b): power savings vs available cycle-time slack (s298)\n%s"
    (Text_table.render t)

type annealing_row = {
  bench_circuit : string;
  heuristic_energy : float;
  annealing_energy : float;
  annealing_vs_heuristic : float;
  heuristic_seconds : float;
  annealing_seconds : float;
}

let annealing_comparison ?(config = Flow.default_config)
    ?(circuits = [ "s298"; "s386" ]) () =
  List.filter_map
    (fun name ->
      let p = prepare_at config name config.Flow.input_density in
      let timed f =
        let t0 = Sys.time () in
        let r = f () in
        (r, Sys.time () -. t0)
      in
      let h, ht = timed (fun () -> run_opt "joint-grid" p) in
      let a, at = timed (fun () -> run_opt "annealing" p) in
      match (h, a) with
      | Some h, Some a ->
        let he = Solution.total_energy h and ae = Solution.total_energy a in
        Some
          {
            bench_circuit = name;
            heuristic_energy = he;
            annealing_energy = ae;
            annealing_vs_heuristic = ae /. he;
            heuristic_seconds = ht;
            annealing_seconds = at;
          }
      | _ -> None)
    circuits

let render_annealing rows =
  let t =
    Text_table.create
      ~headers:
        [ "Circuit"; "Heuristic energy"; "Annealing energy";
          "Annealing/Heuristic"; "Heuristic time"; "Annealing time" ]
  in
  List.iter
    (fun r ->
      Text_table.add_row t
        [
          r.bench_circuit;
          Si.format_exp r.heuristic_energy;
          Si.format_exp r.annealing_energy;
          Printf.sprintf "%.2fx" r.annealing_vs_heuristic;
          Printf.sprintf "%.2f s" r.heuristic_seconds;
          Printf.sprintf "%.2f s" r.annealing_seconds;
        ])
    rows;
  Printf.sprintf
    "Heuristic vs multi-pass simulated annealing (lower energy is better)\n%s"
    (Text_table.render t)

type ablation_row = { label : string; value : float; detail : string }

let optimized_energy p =
  run_opt "joint-grid" p
  |> Option.map Solution.total_energy

let ablation_activity ?(config = Flow.default_config) ?(circuit = "s298") () =
  let run engine label detail =
    let config = { config with Flow.engine } in
    let p = prepare_at config circuit config.Flow.input_density in
    optimized_energy p
    |> Option.map (fun e -> { label; value = e; detail })
  in
  List.filter_map Fun.id
    [
      run Flow.First_order "first-order"
        "the paper's zero-correlation propagation";
      run (Flow.Windowed 3) "windowed-3"
        "exact within depth-3 fanin cones (local reconvergence)";
      run Flow.Exact_when_small "exact"
        "BDD over all primary inputs";
      run (Flow.Monte_carlo { vectors = 2000; seed = 0xACL }) "simulated"
        "event-driven measured densities, glitches included";
    ]

let ablation_budget ?(config = Flow.default_config) ?(circuit = "s298") () =
  let p = prepare_at config circuit config.Flow.input_density in
  let core = p.Flow.core in
  let with_budgets label budgets detail =
    Heuristic.optimize
      ~options:{ Heuristic.default_options with
                 Heuristic.strategy = Heuristic.Grid_refine }
      p.Flow.env ~budgets
    |> Option.map (fun sol ->
           { label; value = Solution.total_energy sol; detail })
  in
  let uniform =
    (* naive alternative: every gate gets cycle/depth regardless of fanout *)
    let share =
      p.Flow.budget.Delay_assign.cycle_budget
      /. float_of_int (max 1 (Circuit.depth core))
    in
    let b = Array.make (Circuit.size core) 0.0 in
    Array.iter
      (fun nd ->
        match nd.Circuit.kind with
        | Dcopt_netlist.Gate.Input | Dcopt_netlist.Gate.Dff -> ()
        | _ -> b.(nd.Circuit.id) <- share)
      (Circuit.nodes core);
    b
  in
  List.filter_map Fun.id
    [
      with_budgets "procedure-1" (Flow.budgets p)
        "criticality-proportional budgets";
      with_budgets "uniform" uniform "cycle/depth for every gate";
    ]

let ablation_multi_vt ?(config = Flow.default_config) ?(circuit = "s298") () =
  let p = prepare_at config circuit config.Flow.input_density in
  let single =
    optimized_energy p
    |> Option.map (fun e ->
           { label = "single-vt"; value = e; detail = "n_v = 1" })
  in
  let dual =
    run_opt "multi-vt" p
    |> Option.map (fun sol ->
           {
             label = "dual-vt";
             value = Solution.total_energy sol;
             detail =
               Printf.sprintf "n_v = 2, thresholds {%s} mV"
                 (Solution.vt_values sol
                 |> List.map (fun v -> Printf.sprintf "%.0f" (v *. 1000.0))
                 |> String.concat ", ");
           })
  in
  List.filter_map Fun.id [ single; dual ]

let ablation_short_circuit ?(config = Flow.default_config)
    ?(circuit = "s298") () =
  let run include_short_circuit label =
    let config = { config with Flow.include_short_circuit } in
    let p = prepare_at config circuit config.Flow.input_density in
    run_opt "joint-grid" p
    |> Option.map (fun sol ->
           {
             label;
             value = Solution.total_energy sol;
             detail =
               Printf.sprintf
                 "Vdd %.2f V, Vt %.0f mV, crowbar %s"
                 (Solution.vdd sol)
                 ((match Solution.vt_values sol with v :: _ -> v | [] -> nan)
                 *. 1000.0)
                 (Si.format ~unit:"J"
                    sol.Solution.evaluation
                      .Dcopt_opt.Power_model.short_circuit_energy);
           })
  in
  List.filter_map Fun.id
    [ run false "paper model"; run true "with short-circuit" ]

let ablation_multi_vdd ?(config = Flow.default_config) ?(circuit = "s298") () =
  let p = prepare_at config circuit config.Flow.input_density in
  let describe r =
    Printf.sprintf "%.2f V / %.2f V, %d gates on the low rail, %d converters"
      r.Dcopt_opt.Multi_vdd.vdd_high r.Dcopt_opt.Multi_vdd.vdd_low
      r.Dcopt_opt.Multi_vdd.supply_assignment.Dcopt_opt.Multi_vdd.low_count
      r.Dcopt_opt.Multi_vdd.supply_assignment
        .Dcopt_opt.Multi_vdd.converter_count
  in
  let joint_single =
    optimized_energy p
    |> Option.map (fun e ->
           { label = "joint single-vdd"; value = e;
             detail = "one supply, Vt free" })
  in
  let joint_dual =
    Flow.run_with_budgets ~name:"multi-vdd" p (fun budgets ->
        Dcopt_opt.Multi_vdd.optimize ~m_steps:p.Flow.config.Flow.m_steps
          p.Flow.env ~budgets)
    |> Option.map (fun r ->
           { label = "joint dual-vdd";
             value = Solution.total_energy r.Dcopt_opt.Multi_vdd.solution;
             detail = describe r })
  in
  (* the conventional-process case: Vt pinned at 700 mV, where a second
     rail has real headroom under the high baseline supply *)
  let fixed_budgets = Flow.repaired_budgets p ~vt:Dcopt_opt.Baseline.default_vt in
  let fixed_single =
    Option.bind fixed_budgets (fun budgets ->
        Dcopt_opt.Baseline.optimize ~m_steps:config.Flow.m_steps p.Flow.env
          ~budgets)
    |> Option.map (fun sol ->
           { label = "fixed-vt single-vdd";
             value = Solution.total_energy sol;
             detail = Printf.sprintf "Vt = 700 mV, Vdd %.2f V"
                 (Solution.vdd sol) })
  in
  let fixed_dual =
    Option.bind fixed_budgets (fun budgets ->
        Dcopt_opt.Multi_vdd.optimize ~m_steps:config.Flow.m_steps
          ~vt_fixed:Dcopt_opt.Baseline.default_vt p.Flow.env ~budgets)
    |> Option.map (fun r ->
           { label = "fixed-vt dual-vdd";
             value = Solution.total_energy r.Dcopt_opt.Multi_vdd.solution;
             detail = describe r })
  in
  List.filter_map Fun.id [ joint_single; joint_dual; fixed_single; fixed_dual ]

let yield_study ?(config = Flow.default_config) ?(circuit = "s298")
    ?(samples = 300) ?(sigmas = [| 0.05; 0.10; 0.15; 0.20; 0.25 |]) () =
  let p = prepare_at config circuit config.Flow.input_density in
  match
    Flow.repaired_budgets p ~vt:config.Flow.tech.Dcopt_device.Tech.vt_min
  with
  | None -> [||]
  | Some budgets ->
    Dcopt_opt.Yield.yield_curve ~m_steps:config.Flow.m_steps ~samples
      p.Flow.env ~budgets ~sigmas

let render_yield points =
  let t =
    Text_table.create
      ~headers:
        [ "Vt sigma"; "Nominal-design yield"; "Margined-design yield";
          "Margin energy cost" ]
  in
  Array.iter
    (fun pt ->
      Text_table.add_row t
        [
          Printf.sprintf "%.0f%%" pt.Dcopt_opt.Yield.sigma_pct;
          Printf.sprintf "%.2f" pt.Dcopt_opt.Yield.nominal_yield;
          Printf.sprintf "%.2f" pt.Dcopt_opt.Yield.margined_yield;
          Printf.sprintf "%.2fx" pt.Dcopt_opt.Yield.margined_energy_cost;
        ])
    points;
  Printf.sprintf
    "Monte-Carlo timing yield under threshold variation (s298)\n%s"
    (Text_table.render t)

type scaling_row = {
  node_name : string;
  feature_nm : float;
  opt_vdd : float;
  opt_vt : float;
  opt_energy : float;
  static_share : float;
}

let scaling_study ?(config = Flow.default_config) ?(circuit = "s298")
    ?(factors = [| 1.0; 0.7; 0.5; 0.35 |]) () =
  Array.to_list factors
  |> List.filter_map (fun factor ->
         let tech =
           if factor >= 1.0 then config.Flow.tech
           else Dcopt_device.Tech.scale config.Flow.tech ~factor
         in
         let config = { config with Flow.tech } in
         let p = prepare_at config circuit config.Flow.input_density in
         run_opt "joint-grid" p
         |> Option.map (fun sol ->
                {
                  node_name = tech.Dcopt_device.Tech.tech_name;
                  feature_nm =
                    tech.Dcopt_device.Tech.feature_size *. 1e9;
                  opt_vdd = Solution.vdd sol;
                  opt_vt =
                    (match Solution.vt_values sol with
                    | v :: _ -> v
                    | [] -> nan);
                  opt_energy = Solution.total_energy sol;
                  static_share =
                    Solution.static_energy sol /. Solution.total_energy sol;
                }))

let render_scaling rows =
  let t =
    Text_table.create
      ~headers:
        [ "Node"; "F (nm)"; "Opt Vdd (V)"; "Opt Vt (mV)"; "Energy/cycle";
          "Static share" ]
  in
  List.iter
    (fun r ->
      Text_table.add_row t
        [
          r.node_name;
          Printf.sprintf "%.0f" r.feature_nm;
          Printf.sprintf "%.2f" r.opt_vdd;
          Printf.sprintf "%.0f" (r.opt_vt *. 1000.0);
          Si.format_exp r.opt_energy;
          Printf.sprintf "%.0f%%" (r.static_share *. 100.0);
        ])
    rows;
  Printf.sprintf
    "Optimal operating point across scaled nodes (s298, 300 MHz)\n%s"
    (Text_table.render t)

type glitch_row = {
  glitch_circuit : string;
  analytic_energy : float;
  simulated_energy : float;
  glitch_fraction : float;
}

let glitch_study ?(config = Flow.default_config) () =
  let study name circuit =
    let core = Circuit.combinational_core circuit in
    let specs =
      Dcopt_activity.Activity.uniform_inputs core
        ~probability:config.Flow.input_probability ~density:0.1
    in
    let analytic = Dcopt_activity.Activity.local_profile core specs in
    let measured =
      Dcopt_sim.Event_sim.monte_carlo_activity core
        ~rng:(Dcopt_util.Prng.create 0x911L) ~vectors:3000
        ~input_probability:config.Flow.input_probability ~input_density:0.1
    in
    let simulated_profile =
      { analytic with
        Dcopt_activity.Activity.densities =
          measured.Dcopt_sim.Event_sim.densities }
    in
    let energy_with profile =
      let env =
        Power_model.make_env ~tech:config.Flow.tech
          ~fc:config.Flow.clock_frequency core profile
      in
      let design = Power_model.uniform_design env ~vdd:1.0 ~vt:0.2 ~w:4.0 in
      (Power_model.evaluate env design).Power_model.dynamic_energy
    in
    {
      glitch_circuit = name;
      analytic_energy = energy_with analytic;
      simulated_energy = energy_with simulated_profile;
      glitch_fraction = measured.Dcopt_sim.Event_sim.glitch_fraction;
    }
  in
  [
    study "parity16 (balanced tree)"
      (Dcopt_netlist.Patterns.parity_tree ~leaves:16);
    study "rca8 (carry chain)"
      (Dcopt_netlist.Patterns.ripple_carry_adder ~bits:8);
    study "mult6 (array multiplier)"
      (Dcopt_netlist.Patterns.array_multiplier ~bits:6);
    study "s298 (random logic)" (Suite.find_exn "s298");
  ]

let render_glitch rows =
  let t =
    Text_table.create
      ~headers:
        [ "Circuit"; "Dynamic (Najm)"; "Dynamic (simulated)";
          "Simulated/Najm"; "Glitch share" ]
  in
  List.iter
    (fun r ->
      Text_table.add_row t
        [
          r.glitch_circuit;
          Si.format_exp r.analytic_energy;
          Si.format_exp r.simulated_energy;
          Printf.sprintf "%.2fx" (r.simulated_energy /. r.analytic_energy);
          Printf.sprintf "%.0f%%" (r.glitch_fraction *. 100.0);
        ])
    rows;
  Printf.sprintf
    "Glitch power the zero-delay activity model misses (fixed 1 V / 200 mV \
     / w=4 design)\n%s"
    (Text_table.render t)

type state_activity_row = {
  state_circuit : string;
  assumed_density : float;
  measured_state_density : float;
  energy_assumed : float;
  energy_measured : float;
}

let state_activity_study ?(config = Flow.default_config)
    ?(circuits = [ "s27"; "s298"; "s344" ]) () =
  List.filter_map
    (fun name ->
      let circuit = Suite.find_exn name in
      let trace =
        Dcopt_sim.Seq_sim.simulate ~cycles:4000
          ~input_probability:config.Flow.input_probability
          ~input_density:config.Flow.input_density circuit
      in
      let core = trace.Dcopt_sim.Seq_sim.core in
      (* mean measured toggle rate over the state bits *)
      let state_names =
        Array.to_list (Circuit.dffs circuit)
        |> List.map (fun id -> (Circuit.node circuit id).Circuit.name)
      in
      let measured_state_density =
        match state_names with
        | [] -> 0.0
        | _ ->
          Dcopt_util.Stats.mean
            (Array.of_list
               (List.map
                  (fun n ->
                    trace.Dcopt_sim.Seq_sim.densities.(Circuit.find core n))
                  state_names))
      in
      let optimize engine =
        let config = { config with Flow.engine } in
        let p = prepare_at config name config.Flow.input_density in
        run_opt "joint-grid" p
        |> Option.map Solution.total_energy
      in
      match
        ( optimize Flow.First_order,
          optimize (Flow.Sequential_trace { cycles = 4000; seed = 0xFACEL }) )
      with
      | Some energy_assumed, Some energy_measured ->
        Some
          {
            state_circuit = name;
            assumed_density = config.Flow.input_density;
            measured_state_density;
            energy_assumed;
            energy_measured;
          }
      | _ -> None)
    circuits

let render_state_activity rows =
  let t =
    Text_table.create
      ~headers:
        [ "Circuit"; "Assumed state act."; "Measured state act.";
          "Energy (assumed)"; "Energy (traced)"; "Ratio" ]
  in
  List.iter
    (fun r ->
      Text_table.add_row t
        [
          r.state_circuit;
          Printf.sprintf "%.2f" r.assumed_density;
          Printf.sprintf "%.3f" r.measured_state_density;
          Si.format_exp r.energy_assumed;
          Si.format_exp r.energy_measured;
          Printf.sprintf "%.2fx" (r.energy_assumed /. r.energy_measured);
        ])
    rows;
  Printf.sprintf
    "Assumed-uniform vs trace-measured state-bit activity\n%s"
    (Text_table.render t)

let ablation_sizing ?(config = Flow.default_config) ?(circuit = "s298") () =
  let p = prepare_at config circuit config.Flow.input_density in
  let timed f =
    let t0 = Sys.time () in
    let r = f () in
    (r, Sys.time () -. t0)
  in
  let proc2, t2 =
    timed (fun () -> run_opt "joint-grid" p)
  in
  let tilos, tt =
    timed (fun () -> run_opt "tilos" { p with Flow.config =
        { p.Flow.config with Flow.m_steps = 8 } })
  in
  List.filter_map Fun.id
    [
      Option.map
        (fun sol ->
          { label = "procedure-2";
            value = Solution.total_energy sol;
            detail = Printf.sprintf
                "budget-decomposed sizing, %.1f s" t2 })
        proc2;
      Option.map
        (fun sol ->
          { label = "tilos";
            value = Solution.total_energy sol;
            detail = Printf.sprintf
                "budget-free sensitivity sizing (Vdd %.2f V, Vt %.0f mV), %.1f s"
                (Solution.vdd sol)
                ((match Solution.vt_values sol with v :: _ -> v | [] -> nan)
                *. 1000.0)
                tt })
        tilos;
    ]

let ablation_fanin ?(config = Flow.default_config) ?(circuit = "s298") () =
  let core = Circuit.combinational_core (Suite.find_exn circuit) in
  let run c label =
    let p = Flow.prepare ~config c in
    run_opt "joint-grid" p
    |> Option.map (fun sol ->
           {
             label;
             value = Solution.total_energy sol;
             detail =
               Printf.sprintf "%d gates, depth %d, Vdd %.2f V"
                 (Circuit.gate_count c)
                 (Circuit.depth c)
                 (Solution.vdd sol);
           })
  in
  List.filter_map Fun.id
    [
      run core
        (Printf.sprintf "as-is (fanin <= %d)"
           (Dcopt_netlist.Tech_map.max_gate_fanin core));
      run (Dcopt_netlist.Tech_map.decompose ~max_fanin:2 core) "fanin <= 2";
      run (Dcopt_netlist.Tech_map.decompose ~max_fanin:3 core) "fanin <= 3";
    ]

let temperature_study ?(config = Flow.default_config) ?(circuit = "s298")
    ?(temperatures = [| 0.0; 25.0; 75.0; 125.0 |]) () =
  Array.to_list temperatures
  |> List.filter_map (fun celsius ->
         let tech = Dcopt_device.Tech.at_temperature config.Flow.tech ~celsius in
         let config = { config with Flow.tech } in
         let p = prepare_at config circuit config.Flow.input_density in
         run_opt "joint-grid" p
         |> Option.map (fun sol ->
                {
                  label = Printf.sprintf "%.0f C" celsius;
                  value = Solution.total_energy sol;
                  detail =
                    Printf.sprintf
                      "Vdd %.2f V, Vt %.0f mV, static share %.0f%%"
                      (Solution.vdd sol)
                      ((match Solution.vt_values sol with
                       | v :: _ -> v
                       | [] -> nan)
                      *. 1000.0)
                      (100.0 *. Solution.static_energy sol
                      /. Solution.total_energy sol);
                }))

let beyond_paper_pipeline ?(config = Flow.default_config)
    ?(circuit = "s298") () =
  let core =
    Dcopt_netlist.Tech_map.prune
      (Circuit.combinational_core (Suite.find_exn circuit))
  in
  let optimize_on c =
    let p = Flow.prepare ~config c in
    (p, run_opt "joint-grid" p)
  in
  let row label detail sol =
    { label; value = Solution.total_energy sol; detail }
  in
  let p0, paper = optimize_on core in
  let steps = ref [] in
  (match paper with
  | None -> ()
  | Some paper ->
    steps := [ row "paper flow" "Procedures 1+2, single Vt" paper ];
    (* + greedy dual-vt *)
    let dual = Dcopt_opt.Multi_vt.greedy_dual_vt p0.Flow.env paper in
    steps := row "+ dual-vt" "slack-driven second threshold" dual :: !steps;
    (* + bounded-fanin decomposition, then dual-vt again *)
    let decomposed = Dcopt_netlist.Tech_map.decompose ~max_fanin:2 core in
    (match optimize_on decomposed with
    | p2, Some sol ->
      let sol = Dcopt_opt.Multi_vt.greedy_dual_vt p2.Flow.env sol in
      steps :=
        row "+ fanin-2 mapping" "decomposed netlist, dual-vt" sol :: !steps;
      (* + TILOS budget-free sizing on the decomposed netlist *)
      (match Dcopt_opt.Tilos.optimize ~m_steps:8 p2.Flow.env with
      | Some tsol ->
        let tsol = Dcopt_opt.Multi_vt.greedy_dual_vt p2.Flow.env tsol in
        steps :=
          row "+ tilos sizing" "budget-free global sizing, dual-vt" tsol
          :: !steps
      | None -> ())
    | _, None -> ()));
  List.rev !steps

let render_ablation ~title rows =
  let t = Text_table.create ~headers:[ "Variant"; "Total energy"; "Detail" ] in
  List.iter
    (fun r ->
      Text_table.add_row t
        [ r.label; Si.format_exp r.value; r.detail ])
    rows;
  Printf.sprintf "%s\n%s" title (Text_table.render t)
