(** End-to-end optimization flow — the paper's CAD tool.

    [prepare] takes any circuit (sequential or combinational) through the
    full front end: combinational-core extraction, activity estimation
    (§4.1), wire-load estimation (§2) and Procedure-1 delay budgeting
    (§4.2). Optimizers are then dispatched uniformly through the
    {!Optimizer} registry on a {!Scenario.t} — the per-optimizer
    [run_*] wrappers this module used to export are gone. *)

type activity_engine =
  | First_order        (** the paper's method: gate-local propagation *)
  | Exact_when_small   (** BDD-exact when it fits, else first-order *)
  | Windowed of int
    (** correlation-aware within a fanin window of the given depth
        ({!Dcopt_activity.Activity.windowed_profile}) *)
  | Monte_carlo of { vectors : int; seed : int64 }
    (** glitch-aware measured densities from event-driven simulation of
        random vector pairs ({!Dcopt_sim.Event_sim.monte_carlo_activity});
        probabilities still come from first-order propagation *)
  | Sequential_trace of { cycles : int; seed : int64 }
    (** the paper's "activity profiling of the architecture": cycle
        simulation of the sequential circuit derives measured state-bit
        statistics ({!Dcopt_sim.Seq_sim}) instead of assuming uniform
        pseudo-input activities *)

type config = {
  tech : Dcopt_device.Tech.t;
  clock_frequency : float;       (** fc, Hz (paper: 300 MHz) *)
  input_probability : float;     (** Pr\[input = 1\] at every PI *)
  input_density : float;         (** transitions/cycle at every PI *)
  engine : activity_engine;
  skew_factor : float;           (** Procedure 1's b, <= 1 *)
  m_steps : int;                 (** Procedure 2's M *)
  include_short_circuit : bool;
    (** cost the Veendrick crowbar term too (the paper's announced
        extension; default false = Appendix A.1) *)
}

val default_config : config
(** 300 MHz, probability 0.5, density 0.1, first-order activities,
    b = 0.95, M = 16, [Tech.default]. *)

val validate_config : config -> Dcopt_util.Diag.t list
(** Every problem with the configuration: non-positive/non-finite clock
    frequency (a zero or negative cycle target), probabilities and
    densities out of range, a degenerate skew factor or [m_steps], bad
    engine parameters, and every {!Dcopt_device.Tech.validate_all}
    problem (empty vdd/vt/width ranges, [vt_min >= vdd_max]) — codes
    [config.physics], [config.range], [config.tech]. [[]] means
    well-posed. {!config_of_json} and {!prepare} both run this pass, so
    no optimizer ever sees ill-posed physics through those entry
    points. *)

val config_to_json : config -> Dcopt_util.Json.t
(** Versioned JSON (schema version 1) with every field explicit — the
    embedded tech via {!Dcopt_device.Tech_io.to_json} — and exact float
    round-trips. The service layer digests this rendering to key its
    result cache. *)

val config_of_json :
  ?base:config -> Dcopt_util.Json.t -> (config, string) result
(** Reads a (possibly partial) config object over [base] (default
    {!default_config}), so job specs can override single fields; unknown
    fields are typed errors. *)

type prepared = {
  config : config;
  core : Dcopt_netlist.Circuit.t;   (** combinational core *)
  profile : Dcopt_activity.Activity.profile;
  used_exact_activity : bool;
  env : Dcopt_opt.Power_model.env;
  budget : Dcopt_timing.Delay_assign.t;
}

val prepare :
  ?config:config ->
  ?constraints:Dcopt_timing.Constraints.t ->
  Dcopt_netlist.Circuit.t -> prepared
(** [constraints] (default: the scalar compatibility set
    {!Dcopt_timing.Constraints.of_cycle_time}[ (1 /. clock_frequency)])
    threads per-endpoint required times through budgeting
    ({!Dcopt_timing.Delay_assign.assign}) and every feasibility verdict
    ({!Dcopt_opt.Power_model.make_env}). Passing the scalar set — or
    nothing — is bit-identical to the pre-constraint behaviour.

    When {!Dcopt_obs.Span} tracing is enabled, [prepare] records a
    "flow.prepare" span with "core-extraction", "activity", "wire-load"
    and "budgeting" children, and {!run_with_budgets} an "optimize"
    span with "budget-repair"/"search" children — together the five flow
    phases shown by [minpower profile]. *)

val constraints : prepared -> Dcopt_timing.Constraints.t
(** The constraint set the prepared environment judges feasibility
    against. *)

val budgets : prepared -> float array
(** The raw Procedure-1 per-gate budgets. *)

val repaired_budgets : prepared -> vt:float -> float array option
(** Budgets after {!Dcopt_opt.Budget_repair} at the (max-Vdd, [vt])
    corner; [None] when the circuit cannot make the cycle time at that
    corner at all. Every registered optimizer uses these internally —
    the joint optimizers at the fast corner ([vt_min]), the baseline at
    its pinned threshold. *)

val fast_budgets : prepared -> float array option
(** {!repaired_budgets} at the fast corner ([vt_min]) — the default
    repair point used by {!run_with_budgets}. *)

val run_with_budgets :
  name:string -> ?vt:float -> prepared ->
  (float array -> 'a option) -> 'a option
(** The shared optimizer skeleton the registry builtins are built on:
    an "optimize" span wrapping a "budget-repair" phase ([vt] selects
    the repair corner, default the fast corner) and a "search" phase
    running [search] on the repaired budgets. [None] when repair finds
    the cycle time unreachable. Per-optimizer entry points
    ([run_baseline], [run_joint], ...) are gone — dispatch through
    {!Optimizer.get} instead. *)

val report : prepared -> Dcopt_opt.Solution.t -> string
(** Human-readable single-solution report. *)
