(** Multi-corner optimization scenarios — the unit of work every
    registered {!Optimizer} runs on.

    A scenario binds one prepared circuit to a non-empty list of process
    corners, each a named threshold-voltage stress factor in
    {!Dcopt_opt.Variation} semantics (slow corner = [1 + tolerance] for
    timing closure, leaky corner = [1 - tolerance] for energy booking).
    Optimization happens once, at the worst (highest-stress) corner — so
    a feasible result is feasible at every slower-or-equal corner by
    construction — and {!finalize} then re-evaluates the chosen design
    at every corner in parallel: the scenario is feasible only when all
    corners are, while the energy objective is booked at the {e first}
    corner of the list (conventionally the leaky or nominal one).

    The single-nominal-corner scenario ({!of_prepared}) is the legacy
    path: it bypasses both the corner re-housing and the finalize
    re-evaluation, so pre-scenario callers remain bit-identical. *)

type corner = {
  corner_name : string;
  vt_factor : float;  (** multiplier on every gate threshold, > 0 *)
}

val nominal_corner : corner
(** ["nominal"] at factor 1.0 — the bit-exact identity corner. *)

type t = {
  prepared : Flow.prepared;
  corners : corner list;  (** non-empty; first = objective corner *)
}

val of_prepared : Flow.prepared -> t
(** The legacy single-corner scenario: [{prepared; corners =
    [nominal_corner]}]. {!prepared_view} returns [prepared] unchanged
    and {!finalize} is the identity on solutions. *)

val make :
  ?corners:corner list -> Flow.prepared -> t
(** [corners] defaults to [[nominal_corner]]. Raises [Invalid_argument]
    on an empty list, a non-positive/non-finite factor, or a duplicate
    corner name. *)

val worst_corner : t -> corner
(** The corner with the highest [vt_factor] — where optimization runs. *)

val is_legacy : t -> bool
(** True for the single-corner scenario at factor exactly 1.0 — the
    bit-exact compatibility path that bypasses corner re-housing and
    finalize re-evaluation. *)

val prepared_view : t -> Flow.prepared
(** The prepared circuit an optimizer should search on: the underlying
    [prepared] re-housed at the worst corner's stress factor
    ({!Dcopt_opt.Power_model.with_vt_stress}). When the worst factor is
    exactly 1.0 the original record is returned untouched (bit-exact
    legacy path). *)

val finalize :
  ?jobs:int -> t -> Dcopt_opt.Solution.t option ->
  Dcopt_opt.Solution.t option
(** Re-evaluates the optimizer's design at every corner (fanned out on
    the {!Dcopt_par.Par} pool, site ["scenario.corners"]): the returned
    solution's evaluation is the first corner's, with [feasible]
    replaced by the conjunction over all corners. Identity on [None]
    and on single-nominal-corner scenarios. *)

val corners_of_spec : string -> (corner list, Dcopt_util.Diag.t list) result
(** Parses a [--corners] specification: comma-separated entries, each a
    preset name ([nominal] = 1.0, [slow] = 1.1, [leaky] or [fast] = 0.9)
    or an explicit [name:factor] pair. Problems are located
    [config.corners] diagnostics against ["<command-line>"]. *)

val corners_to_json : corner list -> Dcopt_util.Json.t
val corners_of_json :
  Dcopt_util.Json.t -> (corner list, string) result
(** The ["corners"] list of the batch job [scenarios] field (the
    enclosing object carries the schema version); exact float
    round-trips, same validation as {!make}. *)

val corners_digest_string : corner list -> string
(** Canonical one-line rendering folded into the result-store digest —
    stable across processes and job counts. *)
