module Diag = Dcopt_util.Diag
module Json = Dcopt_util.Json
module Par = Dcopt_par.Par
module Power_model = Dcopt_opt.Power_model
module Solution = Dcopt_opt.Solution

type corner = { corner_name : string; vt_factor : float }

let nominal_corner = { corner_name = "nominal"; vt_factor = 1.0 }

type t = { prepared : Flow.prepared; corners : corner list }

let validate_corners corners =
  if corners = [] then invalid_arg "Scenario.make: empty corner list";
  List.iter
    (fun c ->
      if c.corner_name = "" then invalid_arg "Scenario.make: empty corner name";
      if (not (Float.is_finite c.vt_factor)) || c.vt_factor <= 0.0 then
        invalid_arg
          (Printf.sprintf "Scenario.make: corner %S has bad vt factor %g"
             c.corner_name c.vt_factor))
    corners;
  let names = List.map (fun c -> c.corner_name) corners in
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then
    invalid_arg "Scenario.make: duplicate corner name"

let of_prepared prepared = { prepared; corners = [ nominal_corner ] }

let make ?(corners = [ nominal_corner ]) prepared =
  validate_corners corners;
  { prepared; corners }

let worst_corner s =
  List.fold_left
    (fun worst c -> if c.vt_factor > worst.vt_factor then c else worst)
    (List.hd s.corners) (List.tl s.corners)

(* The legacy path must return the original record untouched: a 1.0
   stress factor is the multiplicative identity, but re-housing the env
   would still allocate, and identity-by-construction is easier to
   audit than identity-by-arithmetic. *)
let is_legacy s =
  match s.corners with [ c ] -> c.vt_factor = 1.0 | _ -> false

let prepared_view s =
  let worst = worst_corner s in
  if worst.vt_factor = 1.0 then s.prepared
  else
    { s.prepared with
      Flow.env = Power_model.with_vt_stress s.prepared.Flow.env worst.vt_factor
    }

let finalize ?jobs s sol =
  match sol with
  | None -> None
  | Some _ when is_legacy s -> sol
  | Some sol ->
    let base_env = s.prepared.Flow.env in
    let corners = Array.of_list s.corners in
    let evals =
      Par.map ?jobs ~site:"scenario.corners"
        (fun corner ->
          let env = Power_model.with_vt_stress base_env corner.vt_factor in
          Power_model.evaluate env sol.Solution.design)
        corners
    in
    let feasible =
      Array.for_all (fun e -> e.Power_model.feasible) evals
    in
    let objective = evals.(0) in
    let evaluation = { objective with Power_model.feasible } in
    Some
      (Solution.of_evaluation ~label:sol.Solution.label
         ~meets_budgets:sol.Solution.meets_budgets sol.Solution.design
         evaluation)

(* ------------------------------------------------------------------ *)
(* --corners specification *)

let preset_factor = function
  | "nominal" -> Some 1.0
  | "slow" -> Some 1.1
  | "leaky" | "fast" -> Some 0.9
  | _ -> None

let corners_of_spec spec =
  let file = "<command-line>" in
  let entries =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if entries = [] then
    Error
      [
        Diag.error ~file ~code:"config.corners"
          "--corners: empty specification (expected e.g. \
           \"leaky,slow\" or \"hot:1.2\")";
      ]
  else
    let diags = ref [] in
    let parse entry =
      match String.index_opt entry ':' with
      | None -> (
        match preset_factor entry with
        | Some vt_factor -> Some { corner_name = entry; vt_factor }
        | None ->
          diags :=
            Diag.errorf ~file ~code:"config.corners"
              "--corners: unknown corner preset %S (known: nominal, slow, \
               leaky, fast; or name:factor)"
              entry
            :: !diags;
          None)
      | Some i ->
        let name = String.trim (String.sub entry 0 i) in
        let factor_s =
          String.trim (String.sub entry (i + 1) (String.length entry - i - 1))
        in
        let factor = Float.of_string_opt factor_s in
        (match factor with
        | Some f when Float.is_finite f && f > 0.0 && name <> "" ->
          Some { corner_name = name; vt_factor = f }
        | _ ->
          diags :=
            Diag.errorf ~file ~code:"config.corners"
              "--corners: bad entry %S (expected name:factor with factor > 0)"
              entry
            :: !diags;
          None)
    in
    let corners = List.filter_map parse entries in
    let names = List.map (fun c -> c.corner_name) corners in
    if List.length (List.sort_uniq String.compare names) <> List.length names
    then
      diags :=
        Diag.error ~file ~code:"config.corners"
          "--corners: duplicate corner name"
        :: !diags;
    match !diags with [] -> Ok corners | ds -> Error (List.rev ds)

(* ------------------------------------------------------------------ *)
(* JSON for the batch job [scenarios] field (the enclosing scenarios
   object carries the schema version). *)

let corners_to_json corners =
  Json.List
    (List.map
       (fun c ->
         Json.Obj
           [
             ("name", Json.String c.corner_name);
             ("vt_factor", Json.Float c.vt_factor);
           ])
       corners)

let corners_of_json json =
  let ( let* ) = Result.bind in
  let* items =
    match json with
    | Json.List items -> Ok items
    | _ -> Error "scenario corners: expected a list"
  in
  let* corners =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let name =
          Option.bind (Json.field "name" item) Json.get_string
        in
        let factor =
          Option.bind (Json.field "vt_factor" item) Json.get_float
        in
        match (name, factor) with
        | Some corner_name, Some vt_factor
          when Float.is_finite vt_factor && vt_factor > 0.0 ->
          Ok ({ corner_name; vt_factor } :: acc)
        | _ -> Error "scenario corners: bad corner entry")
      (Ok []) items
  in
  let corners = List.rev corners in
  match validate_corners corners with
  | () -> Ok corners
  | exception Invalid_argument msg -> Error msg

let corners_digest_string corners =
  corners
  |> List.map (fun c ->
         Printf.sprintf "%s:%h" c.corner_name c.vt_factor)
  |> String.concat ","
