(** First-class optimizer descriptors and the registry behind every
    dispatch-by-name surface ([minpower --optimizer], the batch service's
    job specs, {!Experiments} drivers).

    A descriptor wraps one optimization entry point behind the uniform
    signature [?observer -> Flow.prepared -> Solution.t option]; the
    {!Flow.run_*} functions remain as thin typed wrappers for callers
    that want optimizer-specific options. Descriptors whose underlying
    engine takes no telemetry observer (multi-vt, multi-vdd) ignore the
    argument — which also means service timeouts cannot interrupt them
    mid-search (cooperative cancellation rides the observer stream; see
    {!Dcopt_service.Service}). *)

type t = {
  name : string;  (** unique registry key, e.g. "joint" *)
  doc : string;   (** one-line description for listings *)
  run :
    ?observer:Dcopt_obs.Telemetry.observer ->
    Flow.prepared ->
    Dcopt_opt.Solution.t option;
}

val builtins : t list
(** The seven built-in optimizers, in presentation order: [baseline],
    [joint] (Procedure 2, paper binary search), [joint-grid] (grid-refine
    strategy), [annealing], [multi-vt], [multi-vdd] (reports the
    clustered-voltage-scaling solution), [tilos]. *)

val register : t -> unit
(** Add (or replace, by name) a descriptor — used by tests to inject
    faulty optimizers and by embedders to expose custom engines through
    the same CLI/service surfaces. Raises [Invalid_argument] on an empty
    name. *)

val all : unit -> t list
(** {!builtins} followed by registered descriptors, registration order;
    a registered descriptor shadowing a builtin replaces it in place. *)

val find : string -> t option
val get : string -> t
(** [get name] raises [Invalid_argument] with the known names when the
    optimizer does not exist. *)

val names : unit -> string list
(** Names of {!all}, in the same order. *)
