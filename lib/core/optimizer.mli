(** First-class optimizer descriptors and the registry behind every
    dispatch surface ([minpower --optimizer], the batch service's job
    specs, {!Experiments} drivers).

    A descriptor wraps one optimization engine behind the uniform
    signature [?observer -> Scenario.t -> Solution.t option]: the
    engine searches on the scenario's worst-corner prepared view and
    the result is booked across every corner by {!Scenario.finalize}.
    The per-optimizer [Flow.run_*] wrappers are gone — this registry is
    the only dispatch path; callers that need engine-specific options
    (a search strategy, [n_vt], annealing schedules) compose
    {!Flow.run_with_budgets} with the {!Dcopt_opt} engines directly.

    Descriptors whose underlying engine takes no telemetry observer
    (multi-vt, multi-vdd) ignore the argument — which also means
    service timeouts cannot interrupt them mid-search (cooperative
    cancellation rides the observer stream; see
    {!Dcopt_service.Service}). *)

type t = {
  name : string;  (** unique registry key, e.g. "joint" *)
  doc : string;   (** one-line description for listings *)
  run :
    ?observer:Dcopt_obs.Telemetry.observer ->
    Scenario.t ->
    Dcopt_opt.Solution.t option;
}

val builtins : t list
(** The seven built-in optimizers, in presentation order: [baseline],
    [joint] (Procedure 2, paper binary search), [joint-grid] (grid-refine
    strategy), [annealing], [multi-vt], [multi-vdd] (reports the
    clustered-voltage-scaling solution), [tilos]. *)

val register : t -> unit
(** Add (or replace, by name) a descriptor — used by tests to inject
    faulty optimizers and by embedders to expose custom engines through
    the same CLI/service surfaces. Raises [Invalid_argument] on an empty
    name. *)

val all : unit -> t list
(** {!builtins} followed by registered descriptors, registration order;
    a registered descriptor shadowing a builtin replaces it in place. *)

val find : string -> t option
val get : string -> t
(** [get name] raises [Invalid_argument] with the known names when the
    optimizer does not exist. *)

val names : unit -> string list
(** Names of {!all}, in the same order. *)
