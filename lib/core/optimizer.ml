module Solution = Dcopt_opt.Solution
module Baseline = Dcopt_opt.Baseline
module Heuristic = Dcopt_opt.Heuristic
module Annealing = Dcopt_opt.Annealing
module Multi_vt = Dcopt_opt.Multi_vt
module Multi_vdd = Dcopt_opt.Multi_vdd
module Tilos = Dcopt_opt.Tilos
module Span = Dcopt_obs.Span

let log_src =
  Logs.Src.create "dcopt.optimizer" ~doc:"optimizer registry dispatch"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  name : string;
  doc : string;
  run :
    ?observer:Dcopt_obs.Telemetry.observer ->
    Scenario.t ->
    Solution.t option;
}

(* Every builtin is the same shape: search on the scenario's
   worst-corner view, then book the result across all corners. [core]
   gets the prepared circuit the legacy Flow.run_* wrappers used to
   take, so their bodies moved here unchanged. *)
let scenario_run core =
 fun ?observer s ->
  let p = Scenario.prepared_view s in
  Scenario.finalize s (core ?observer p)

let run_joint ?observer ?(strategy = Heuristic.Paper_binary) p =
  let sol =
    Flow.run_with_budgets ~name:"heuristic" p (fun budgets ->
        Heuristic.optimize ?observer
          ~options:
            {
              Heuristic.m_steps = p.Flow.config.Flow.m_steps;
              strategy;
              vt_fixed = None;
            }
          p.Flow.env ~budgets)
  in
  (match sol with
  | Some sol ->
    Log.info (fun m ->
        m "joint optimum: Vdd %.2f V, Vt %s mV, %s per cycle"
          (Solution.vdd sol)
          (Solution.vt_values sol
          |> List.map (fun v -> Printf.sprintf "%.0f" (v *. 1000.0))
          |> String.concat "/")
          (Dcopt_util.Si.format ~unit:"J" (Solution.total_energy sol)))
  | None -> Log.warn (fun m -> m "joint optimization found no feasible design"));
  sol

let builtins =
  [
    {
      name = "baseline";
      doc = "fixed 700 mV threshold, Vdd and widths optimized (Table 1)";
      run =
        scenario_run (fun ?observer p ->
            let vt = Baseline.default_vt in
            Flow.run_with_budgets ~name:"baseline" ~vt p (fun budgets ->
                Baseline.optimize ?observer ~vt
                  ~m_steps:p.Flow.config.Flow.m_steps p.Flow.env ~budgets));
    };
    {
      name = "joint";
      doc = "Procedure 2: nested binary search over (Vdd, Vt, widths)";
      run = scenario_run (fun ?observer p -> run_joint ?observer p);
    };
    {
      name = "joint-grid";
      doc = "Procedure 2 with the grid-refine search strategy";
      run =
        scenario_run (fun ?observer p ->
            run_joint ?observer ~strategy:Heuristic.Grid_refine p);
    };
    {
      name = "annealing";
      doc = "multi-pass simulated annealing over the same variables";
      run =
        scenario_run (fun ?observer p ->
            Flow.run_with_budgets ~name:"annealing" p (fun budgets ->
                Annealing.optimize ?observer p.Flow.env ~budgets));
    };
    {
      name = "multi-vt";
      doc = "dual threshold voltages (n_v = 2)";
      run =
        scenario_run (fun ?observer:_ p ->
            Flow.run_with_budgets ~name:"multi-vt" p (fun budgets ->
                Multi_vt.optimize ~m_steps:p.Flow.config.Flow.m_steps ~n_vt:2
                  p.Flow.env ~budgets));
    };
    {
      name = "multi-vdd";
      doc = "dual supplies via clustered voltage scaling";
      run =
        scenario_run (fun ?observer:_ p ->
            Flow.run_with_budgets ~name:"multi-vdd" p (fun budgets ->
                Multi_vdd.optimize ~m_steps:p.Flow.config.Flow.m_steps
                  p.Flow.env ~budgets)
            |> Option.map (fun r -> r.Multi_vdd.solution));
    };
    {
      name = "tilos";
      doc = "budget-free TILOS sensitivity sizing";
      run =
        scenario_run (fun ?observer p ->
            Span.with_ "optimize" ~args:[ ("optimizer", "tilos") ]
            @@ fun () ->
            Span.with_ "search" (fun () ->
                Tilos.optimize ?observer ~m_steps:p.Flow.config.Flow.m_steps
                  p.Flow.env));
    };
  ]

let registered : t list ref = ref []

let register opt =
  if opt.name = "" then invalid_arg "Optimizer.register: empty name";
  registered := List.filter (fun o -> o.name <> opt.name) !registered @ [ opt ]

let all () =
  let extra =
    List.filter
      (fun o -> not (List.exists (fun b -> b.name = o.name) builtins))
      !registered
  in
  List.map
    (fun b ->
      match List.find_opt (fun o -> o.name = b.name) !registered with
      | Some o -> o
      | None -> b)
    builtins
  @ extra

let find name = List.find_opt (fun o -> o.name = name) (all ())
let names () = List.map (fun o -> o.name) (all ())

let get name =
  match find name with
  | Some o -> o
  | None ->
    invalid_arg
      (Printf.sprintf "Optimizer.get: unknown optimizer %S (known: %s)" name
         (String.concat ", " (names ())))
