module Solution = Dcopt_opt.Solution

type t = {
  name : string;
  doc : string;
  run :
    ?observer:Dcopt_obs.Telemetry.observer ->
    Flow.prepared ->
    Solution.t option;
}

let builtins =
  [
    {
      name = "baseline";
      doc = "fixed 700 mV threshold, Vdd and widths optimized (Table 1)";
      run = (fun ?observer p -> Flow.run_baseline ?observer p);
    };
    {
      name = "joint";
      doc = "Procedure 2: nested binary search over (Vdd, Vt, widths)";
      run = (fun ?observer p -> Flow.run_joint ?observer p);
    };
    {
      name = "joint-grid";
      doc = "Procedure 2 with the grid-refine search strategy";
      run =
        (fun ?observer p ->
          Flow.run_joint ?observer ~strategy:Dcopt_opt.Heuristic.Grid_refine p);
    };
    {
      name = "annealing";
      doc = "multi-pass simulated annealing over the same variables";
      run = (fun ?observer p -> Flow.run_annealing ?observer p);
    };
    {
      name = "multi-vt";
      doc = "dual threshold voltages (n_v = 2)";
      run = (fun ?observer:_ p -> Flow.run_multi_vt p);
    };
    {
      name = "multi-vdd";
      doc = "dual supplies via clustered voltage scaling";
      run =
        (fun ?observer:_ p ->
          Flow.run_multi_vdd p
          |> Option.map (fun r -> r.Dcopt_opt.Multi_vdd.solution));
    };
    {
      name = "tilos";
      doc = "budget-free TILOS sensitivity sizing";
      run = (fun ?observer p -> Flow.run_tilos ?observer p);
    };
  ]

let registered : t list ref = ref []

let register opt =
  if opt.name = "" then invalid_arg "Optimizer.register: empty name";
  registered := List.filter (fun o -> o.name <> opt.name) !registered @ [ opt ]

let all () =
  let extra =
    List.filter
      (fun o -> not (List.exists (fun b -> b.name = o.name) builtins))
      !registered
  in
  List.map
    (fun b ->
      match List.find_opt (fun o -> o.name = b.name) !registered with
      | Some o -> o
      | None -> b)
    builtins
  @ extra

let find name = List.find_opt (fun o -> o.name = name) (all ())
let names () = List.map (fun o -> o.name) (all ())

let get name =
  match find name with
  | Some o -> o
  | None ->
    invalid_arg
      (Printf.sprintf "Optimizer.get: unknown optimizer %S (known: %s)" name
         (String.concat ", " (names ())))
