(** Drivers that regenerate every table and figure of the paper's
    evaluation (§5). Each function returns structured rows plus a renderer
    that prints them in the publication's layout; `bench/main.exe` wires
    them to the command line. See EXPERIMENTS.md for paper-vs-measured
    commentary. *)

type table_row = {
  circuit : string;
  gates : int;
  depth : int;
  input_density : float;       (** the "Input Activities" column *)
  static_energy : float;       (** J/cycle *)
  dynamic_energy : float;      (** J/cycle *)
  total_energy : float;        (** J/cycle *)
  critical_delay : float;      (** s *)
  vdd : float;
  vt : float;
  savings : float option;      (** Table 2 only: vs the Table-1 row *)
}

val default_activities : float array
(** The two input transition densities used by Tables 1-2 (0.1, 0.5). *)

val rows_for :
  optimizer:string -> ?baseline:string ->
  ?config:Flow.config -> ?circuits:string list -> ?activities:float array ->
  unit -> table_row list
(** One table row per (circuit, activity) pair under any registered
    {!Optimizer} (dispatched by name); with [baseline] set, each row's
    savings column compares against that optimizer's result on the same
    prepared circuit. Raises [Invalid_argument] on unknown names. *)

val table1 :
  ?config:Flow.config -> ?circuits:string list -> ?activities:float array ->
  unit -> table_row list
(** Baseline rows: Vt fixed at 700 mV, Vdd + widths optimized for 300 MHz. *)

val table2 :
  ?config:Flow.config -> ?circuits:string list -> ?activities:float array ->
  unit -> table_row list
(** Heuristic rows (joint Vdd/Vt/width optimization) with savings factors
    relative to the corresponding {!table1} rows. *)

val render_table : title:string -> table_row list -> string

val fig2a :
  ?config:Flow.config -> ?circuit:string -> ?tolerances:float array ->
  unit -> Dcopt_opt.Variation.point array
(** Power savings vs threshold-variation tolerance (default circuit s298,
    tolerances 0..30%%). *)

val render_fig2a : Dcopt_opt.Variation.point array -> string

val fig2b :
  ?config:Flow.config -> ?circuit:string -> ?factors:float array ->
  unit -> Dcopt_opt.Slack_sweep.point array
(** Power savings vs cycle-time slack (default circuit s298, factors
    1.0..3.0). *)

val render_fig2b : Dcopt_opt.Slack_sweep.point array -> string

type annealing_row = {
  bench_circuit : string;
  heuristic_energy : float;
  annealing_energy : float;
  annealing_vs_heuristic : float; (** > 1 means the heuristic won on energy *)
  heuristic_seconds : float;      (** wall time of the heuristic *)
  annealing_seconds : float;      (** wall time of the annealer *)
}

val annealing_comparison :
  ?config:Flow.config -> ?circuits:string list -> unit -> annealing_row list
(** §5's comparison: the Procedure-2 heuristic vs multi-pass simulated
    annealing on the same budgets. *)

val render_annealing : annealing_row list -> string

type ablation_row = { label : string; value : float; detail : string }

val ablation_activity : ?config:Flow.config -> ?circuit:string -> unit -> ablation_row list
(** Exact (BDD) vs first-order transition densities: optimized total
    energy under each. *)

val ablation_budget : ?config:Flow.config -> ?circuit:string -> unit -> ablation_row list
(** Procedure-1 criticality budgeting vs naive uniform-per-level budgets. *)

val ablation_multi_vt : ?config:Flow.config -> ?circuit:string -> unit -> ablation_row list
(** Single-Vt vs dual-Vt optimization. *)

val ablation_multi_vdd :
  ?config:Flow.config -> ?circuit:string -> unit -> ablation_row list
(** Single-supply vs dual-supply (clustered voltage scaling) optimization —
    the paper's "more than one power supply" extension. *)

val ablation_short_circuit :
  ?config:Flow.config -> ?circuit:string -> unit -> ablation_row list
(** Optimization with and without the Veendrick short-circuit term (the
    paper's announced "next version" extension): reports the optimized
    totals and how much crowbar energy the optimum carries. *)

val render_ablation : title:string -> ablation_row list -> string

val yield_study :
  ?config:Flow.config -> ?circuit:string -> ?samples:int ->
  ?sigmas:float array -> unit -> Dcopt_opt.Yield.curve_point array
(** Monte-Carlo extension of Fig. 2(a): statistical timing yield of the
    nominal joint optimum vs the 3-sigma corner-margined design under
    die-to-die + within-die threshold variation. *)

val render_yield : Dcopt_opt.Yield.curve_point array -> string

type scaling_row = {
  node_name : string;
  feature_nm : float;
  opt_vdd : float;
  opt_vt : float;
  opt_energy : float;     (** optimized total energy per cycle, J *)
  static_share : float;   (** static / total at the optimum *)
}

val scaling_study :
  ?config:Flow.config -> ?circuit:string -> ?factors:float array ->
  unit -> scaling_row list
(** The paper's §1 process-development use-case, extended across scaled
    nodes (constant-field {!Dcopt_device.Tech.scale}): re-optimize the same
    circuit at 300 MHz on each node and report where the optimal supply,
    threshold and energy land — the leakage share grows as the swing fails
    to scale. *)

val render_scaling : scaling_row list -> string

type glitch_row = {
  glitch_circuit : string;
  analytic_energy : float;   (** dynamic energy from Najm densities, J *)
  simulated_energy : float;  (** dynamic energy from measured densities, J *)
  glitch_fraction : float;   (** share of simulated transitions that are
                                 hazards *)
}

val glitch_study :
  ?config:Flow.config -> unit -> glitch_row list
(** Quantifies what the paper's zero-delay activity model misses: on
    balanced trees nothing, on arithmetic circuits (array multiplier) a
    large glitch component. Evaluates a fixed mid-range design under both
    activity profiles. *)

val render_glitch : glitch_row list -> string

type state_activity_row = {
  state_circuit : string;
  assumed_density : float;        (** the paper's uniform assumption *)
  measured_state_density : float; (** mean toggle rate of the state bits *)
  energy_assumed : float;         (** optimized energy under the assumption *)
  energy_measured : float;        (** optimized energy under the trace *)
}

val state_activity_study :
  ?config:Flow.config -> ?circuits:string list -> unit ->
  state_activity_row list
(** The paper assumes every pseudo-input (state bit) toggles at the same
    rate as the true inputs; cycle simulation ({!Dcopt_sim.Seq_sim})
    measures how state bits actually behave and re-optimizes under the
    measured profile. *)

val render_state_activity : state_activity_row list -> string

val ablation_fanin :
  ?config:Flow.config -> ?circuit:string -> unit -> ablation_row list
(** Optimize the circuit as-is vs decomposed to bounded-fanin trees
    ({!Dcopt_netlist.Tech_map}): narrower gates avoid series-stack delay
    degradation at the cost of extra gates and depth. *)

val temperature_study :
  ?config:Flow.config -> ?circuit:string -> ?temperatures:float array ->
  unit -> ablation_row list
(** Re-optimize across junction temperatures: the subthreshold swing grows
    with kT/q, so hot dies leak exponentially more and the optimal
    threshold climbs. *)

val beyond_paper_pipeline :
  ?config:Flow.config -> ?circuit:string -> unit -> ablation_row list
(** The cumulative beyond-paper recipe: paper flow, then slack-driven
    dual-Vt, then bounded-fanin remapping, then budget-free TILOS sizing —
    each row the running best. *)

val ablation_sizing :
  ?config:Flow.config -> ?circuit:string -> unit -> ablation_row list
(** Procedure-2 budget-decomposed sizing vs budget-free TILOS sensitivity
    sizing: quantifies the energy the paper trades for its O(M^3) speed. *)
