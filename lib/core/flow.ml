module Circuit = Dcopt_netlist.Circuit
module Activity = Dcopt_activity.Activity
module Delay_assign = Dcopt_timing.Delay_assign
module Constraints = Dcopt_timing.Constraints
module Power_model = Dcopt_opt.Power_model
module Solution = Dcopt_opt.Solution
module Budget_repair = Dcopt_opt.Budget_repair
module Tech = Dcopt_device.Tech
module Span = Dcopt_obs.Span

let log_src = Logs.Src.create "dcopt.flow" ~doc:"end-to-end optimization flow"

module Log = (val Logs.src_log log_src : Logs.LOG)

type activity_engine =
  | First_order
  | Exact_when_small
  | Windowed of int
  | Monte_carlo of { vectors : int; seed : int64 }
  | Sequential_trace of { cycles : int; seed : int64 }

type config = {
  tech : Dcopt_device.Tech.t;
  clock_frequency : float;
  input_probability : float;
  input_density : float;
  engine : activity_engine;
  skew_factor : float;
  m_steps : int;
  include_short_circuit : bool;
}

let default_config =
  {
    tech = Dcopt_device.Tech.default;
    clock_frequency = 300.0e6;
    input_probability = 0.5;
    input_density = 0.1;
    engine = First_order;
    skew_factor = 0.95;
    m_steps = 16;
    include_short_circuit = false;
  }

(* Reject ill-posed physics before any optimizer touches the config: a
   vt at or above vdd, a zero/negative cycle target or an empty width
   range would otherwise surface only as NaN deep inside Power_model. *)
let validate_config c =
  let module Diag = Dcopt_util.Diag in
  let diags = ref [] in
  let diagf ~code fmt =
    Printf.ksprintf (fun m -> diags := Diag.error ~code m :: !diags) fmt
  in
  if not (Float.is_finite c.clock_frequency && c.clock_frequency > 0.0) then
    diagf ~code:"config.physics"
      "clock_frequency must be a positive finite frequency (got %g; the \
       cycle target 1/fc would be zero, negative or undefined)"
      c.clock_frequency;
  if
    not
      (Float.is_finite c.input_probability
      && c.input_probability >= 0.0
      && c.input_probability <= 1.0)
  then
    diagf ~code:"config.range" "input_probability must lie in [0, 1] (got %g)"
      c.input_probability;
  if not (Float.is_finite c.input_density && c.input_density >= 0.0) then
    diagf ~code:"config.range"
      "input_density must be a non-negative finite transition count (got %g)"
      c.input_density;
  if
    not
      (Float.is_finite c.skew_factor
      && c.skew_factor > 0.0
      && c.skew_factor <= 1.0)
  then
    diagf ~code:"config.range" "skew_factor must lie in (0, 1] (got %g)"
      c.skew_factor;
  if c.m_steps < 1 then
    diagf ~code:"config.range" "m_steps must be >= 1 (got %d)" c.m_steps;
  (match c.engine with
  | First_order | Exact_when_small -> ()
  | Windowed window ->
    if window < 1 then
      diagf ~code:"config.range" "engine window must be >= 1 (got %d)" window
  | Monte_carlo { vectors; _ } ->
    if vectors < 1 then
      diagf ~code:"config.range" "engine vectors must be >= 1 (got %d)" vectors
  | Sequential_trace { cycles; _ } ->
    if cycles < 1 then
      diagf ~code:"config.range" "engine cycles must be >= 1 (got %d)" cycles);
  List.iter
    (fun msg -> diags := Diag.error ~code:"config.tech" msg :: !diags)
    (Dcopt_device.Tech.validate_all c.tech);
  List.rev !diags

type prepared = {
  config : config;
  core : Circuit.t;
  profile : Activity.profile;
  used_exact_activity : bool;
  env : Power_model.env;
  budget : Delay_assign.t;
}

let engine_name = function
  | First_order -> "first-order"
  | Exact_when_small -> "exact-when-small"
  | Windowed _ -> "windowed"
  | Monte_carlo _ -> "monte-carlo"
  | Sequential_trace _ -> "sequential-trace"

let prepare ?(config = default_config) ?constraints circuit =
  (match Dcopt_util.Diag.errors (validate_config config) with
  | [] -> ()
  | errors ->
    invalid_arg
      ("Flow.prepare: ill-posed configuration\n"
      ^ Dcopt_util.Diag.render errors));
  (* The legacy scalar cycle target becomes a one-clock constraint set
     here — every caller migrates through this compatibility
     constructor, and the scalar shape keeps the downstream fast paths
     bit-identical. *)
  let constraints =
    match constraints with
    | Some c -> c
    | None -> Constraints.of_cycle_time (1.0 /. config.clock_frequency)
  in
  Span.with_ "flow.prepare" ~args:[ ("circuit", Circuit.name circuit) ]
  @@ fun () ->
  let core =
    Span.with_ "core-extraction" (fun () -> Circuit.combinational_core circuit)
  in
  let sequential_profile cycles seed =
    let r =
      Dcopt_sim.Seq_sim.simulate ~seed ~cycles
        ~input_probability:config.input_probability
        ~input_density:config.input_density circuit
    in
    Dcopt_sim.Seq_sim.profile r
  in
  let specs =
    Activity.uniform_inputs core ~probability:config.input_probability
      ~density:config.input_density
  in
  let profile, used_exact_activity =
    Span.with_ "activity" ~args:[ ("engine", engine_name config.engine) ]
    @@ fun () ->
    match config.engine with
    | First_order -> (Activity.local_profile core specs, false)
    | Exact_when_small ->
      (match Activity.exact_profile core specs with
      | Some p -> (p, true)
      | None -> (Activity.local_profile core specs, false))
    | Windowed window ->
      (Activity.windowed_profile ~window core specs, false)
    | Monte_carlo { vectors; seed } ->
      let local = Activity.local_profile core specs in
      let measured =
        Dcopt_sim.Event_sim.monte_carlo_activity core
          ~rng:(Dcopt_util.Prng.create seed) ~vectors
          ~input_probability:config.input_probability
          ~input_density:config.input_density
      in
      ( { local with
          Activity.densities = measured.Dcopt_sim.Event_sim.densities },
        false )
    | Sequential_trace { cycles; seed } ->
      (sequential_profile cycles seed, false)
  in
  let env =
    Span.with_ "wire-load" (fun () ->
        Power_model.make_env
          ~include_short_circuit:config.include_short_circuit ~constraints
          ~tech:config.tech ~fc:config.clock_frequency core profile)
  in
  let budget =
    Span.with_ "budgeting" (fun () ->
        Delay_assign.assign ~skew_factor:config.skew_factor ~constraints core
          ~cycle_time:(1.0 /. config.clock_frequency))
  in
  Log.info (fun m ->
      m "prepared %s: %d gates, depth %d, fc %.0f MHz, %d paths budgeted, %d fallback, %d slope-lifted"
        (Circuit.name core) (Circuit.gate_count core) (Circuit.depth core)
        (config.clock_frequency /. 1e6)
        budget.Delay_assign.paths_used budget.Delay_assign.fallback_gates
        budget.Delay_assign.slope_adjusted);
  { config; core; profile; used_exact_activity; env; budget }

let budgets p = p.budget.Delay_assign.t_max

let repaired_budgets p ~vt =
  let tech = p.config.tech in
  match
    Budget_repair.repair p.env ~budgets:(budgets p) ~vdd:tech.Tech.vdd_max ~vt
  with
  | Budget_repair.Repaired { budgets; lifted; iterations } ->
    Log.debug (fun m ->
        m "budget repair at vt=%.0f mV: %d gates lifted in %d iterations"
          (vt *. 1000.0) lifted iterations);
    Some budgets
  | Budget_repair.Infeasible { limiting_gate } ->
    Log.warn (fun m ->
        m "cycle time unreachable at vt=%.0f mV (limiting gate %s)"
          (vt *. 1000.0)
          (Circuit.node p.core limiting_gate).Circuit.name);
    None

let fast_budgets p = repaired_budgets p ~vt:p.config.tech.Tech.vt_min

(* Every budget-constrained optimizer is the same pipeline: an
   "optimize" span around Budget_repair at the right corner and the
   search itself. The per-optimizer run_* wrappers this module used to
   export are gone — dispatch goes through the {!Optimizer} registry,
   whose builtins are built on this helper. *)
let run_with_budgets ~name ?vt p search =
  Span.with_ "optimize" ~args:[ ("optimizer", name) ] @@ fun () ->
  let budgets =
    Span.with_ "budget-repair" (fun () ->
        match vt with Some vt -> repaired_budgets p ~vt | None -> fast_budgets p)
  in
  match budgets with
  | None -> None
  | Some budgets -> Span.with_ "search" (fun () -> search budgets)

let constraints p = Power_model.constraints p.env

(* ------------------------------------------------------------------ *)
(* Config JSON (schema version 1). [config_of_json] reads a partial
   object over a base configuration, so service job specs can override
   only the fields they care about; unknown keys are typed errors. *)

module Json = Dcopt_util.Json

let json_schema_version = 1

let engine_to_json = function
  | First_order -> Json.Obj [ ("kind", Json.String "first-order") ]
  | Exact_when_small -> Json.Obj [ ("kind", Json.String "exact-when-small") ]
  | Windowed window ->
    Json.Obj [ ("kind", Json.String "windowed"); ("window", Json.Int window) ]
  | Monte_carlo { vectors; seed } ->
    Json.Obj
      [
        ("kind", Json.String "monte-carlo");
        ("vectors", Json.Int vectors);
        ("seed", Json.String (Int64.to_string seed));
      ]
  | Sequential_trace { cycles; seed } ->
    Json.Obj
      [
        ("kind", Json.String "sequential-trace");
        ("cycles", Json.Int cycles);
        ("seed", Json.String (Int64.to_string seed));
      ]

let config_to_json c =
  Json.Obj
    [
      ("version", Json.Int json_schema_version);
      ("tech", Dcopt_device.Tech_io.to_json c.tech);
      ("clock_frequency", Json.Float c.clock_frequency);
      ("input_probability", Json.Float c.input_probability);
      ("input_density", Json.Float c.input_density);
      ("engine", engine_to_json c.engine);
      ("skew_factor", Json.Float c.skew_factor);
      ("m_steps", Json.Int c.m_steps);
      ("include_short_circuit", Json.Bool c.include_short_circuit);
    ]

let ( let* ) = Result.bind

let engine_of_json json =
  let int_field name =
    match Json.field name json with
    | Some v -> (
      match Json.get_int v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "engine: %S must be an integer" name))
    | None -> Error (Printf.sprintf "engine: missing field %S" name)
  in
  let seed_field () =
    match Json.field "seed" json with
    | Some (Json.String s) -> (
      match Int64.of_string_opt s with
      | Some v -> Ok v
      | None -> Error "engine: seed is not an integer")
    | Some (Json.Int i) -> Ok (Int64.of_int i)
    | Some _ -> Error "engine: seed must be an integer or string"
    | None -> Error "engine: missing field \"seed\""
  in
  match Option.bind (Json.field "kind" json) Json.get_string with
  | None -> Error "engine: expected an object with a \"kind\" string"
  | Some "first-order" -> Ok First_order
  | Some "exact-when-small" -> Ok Exact_when_small
  | Some "windowed" ->
    let* window = int_field "window" in
    Ok (Windowed window)
  | Some "monte-carlo" ->
    let* vectors = int_field "vectors" in
    let* seed = seed_field () in
    Ok (Monte_carlo { vectors; seed })
  | Some "sequential-trace" ->
    let* cycles = int_field "cycles" in
    let* seed = seed_field () in
    Ok (Sequential_trace { cycles; seed })
  | Some kind -> Error (Printf.sprintf "engine: unknown kind %S" kind)

let config_of_json ?(base = default_config) json =
  match Json.get_obj json with
  | None -> Error "config: expected a JSON object"
  | Some members ->
    let float_of name v =
      match Json.get_float v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "config: %S must be a number" name)
    in
    let rec apply config = function
      | [] -> Ok config
      | (key, v) :: rest ->
        let* config =
          match key with
          | "version" -> (
            match Json.get_int v with
            | Some n when n = json_schema_version -> Ok config
            | Some n ->
              Error (Printf.sprintf "config: unsupported version %d" n)
            | None -> Error "config: version must be an integer")
          | "tech" ->
            let* tech = Dcopt_device.Tech_io.of_json ~base:config.tech v in
            Ok { config with tech }
          | "clock_frequency" ->
            let* f = float_of key v in
            Ok { config with clock_frequency = f }
          | "input_probability" ->
            let* f = float_of key v in
            Ok { config with input_probability = f }
          | "input_density" ->
            let* f = float_of key v in
            Ok { config with input_density = f }
          | "engine" ->
            let* engine = engine_of_json v in
            Ok { config with engine }
          | "skew_factor" ->
            let* f = float_of key v in
            Ok { config with skew_factor = f }
          | "m_steps" -> (
            match Json.get_int v with
            | Some m when m >= 1 -> Ok { config with m_steps = m }
            | Some _ -> Error "config: m_steps must be >= 1"
            | None -> Error "config: m_steps must be an integer")
          | "include_short_circuit" -> (
            match Json.get_bool v with
            | Some b -> Ok { config with include_short_circuit = b }
            | None -> Error "config: include_short_circuit must be a boolean")
          | key -> Error (Printf.sprintf "config: unknown field %S" key)
        in
        apply config rest
    in
    let* config = apply base members in
    (match Dcopt_util.Diag.errors (validate_config config) with
    | [] -> Ok config
    | errors ->
      Error
        ("config: "
        ^ String.concat "; "
            (List.map (fun d -> d.Dcopt_util.Diag.message) errors)))

let report p sol =
  Printf.sprintf "circuit %s (%d gates, depth %d)\n%s"
    (Circuit.name p.core) (Circuit.gate_count p.core) (Circuit.depth p.core)
    (Solution.describe p.env sol)
