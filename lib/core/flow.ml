module Circuit = Dcopt_netlist.Circuit
module Activity = Dcopt_activity.Activity
module Delay_assign = Dcopt_timing.Delay_assign
module Power_model = Dcopt_opt.Power_model
module Heuristic = Dcopt_opt.Heuristic
module Baseline = Dcopt_opt.Baseline
module Annealing = Dcopt_opt.Annealing
module Multi_vt = Dcopt_opt.Multi_vt
module Multi_vdd = Dcopt_opt.Multi_vdd
module Solution = Dcopt_opt.Solution
module Budget_repair = Dcopt_opt.Budget_repair
module Tech = Dcopt_device.Tech
module Span = Dcopt_obs.Span

let log_src = Logs.Src.create "dcopt.flow" ~doc:"end-to-end optimization flow"

module Log = (val Logs.src_log log_src : Logs.LOG)

type activity_engine =
  | First_order
  | Exact_when_small
  | Windowed of int
  | Monte_carlo of { vectors : int; seed : int64 }
  | Sequential_trace of { cycles : int; seed : int64 }

type config = {
  tech : Dcopt_device.Tech.t;
  clock_frequency : float;
  input_probability : float;
  input_density : float;
  engine : activity_engine;
  skew_factor : float;
  m_steps : int;
  include_short_circuit : bool;
}

let default_config =
  {
    tech = Dcopt_device.Tech.default;
    clock_frequency = 300.0e6;
    input_probability = 0.5;
    input_density = 0.1;
    engine = First_order;
    skew_factor = 0.95;
    m_steps = 16;
    include_short_circuit = false;
  }

type prepared = {
  config : config;
  core : Circuit.t;
  profile : Activity.profile;
  used_exact_activity : bool;
  env : Power_model.env;
  budget : Delay_assign.t;
}

let engine_name = function
  | First_order -> "first-order"
  | Exact_when_small -> "exact-when-small"
  | Windowed _ -> "windowed"
  | Monte_carlo _ -> "monte-carlo"
  | Sequential_trace _ -> "sequential-trace"

let prepare ?(config = default_config) circuit =
  Span.with_ "flow.prepare" ~args:[ ("circuit", Circuit.name circuit) ]
  @@ fun () ->
  let core =
    Span.with_ "core-extraction" (fun () -> Circuit.combinational_core circuit)
  in
  let sequential_profile cycles seed =
    let r =
      Dcopt_sim.Seq_sim.simulate ~seed ~cycles
        ~input_probability:config.input_probability
        ~input_density:config.input_density circuit
    in
    Dcopt_sim.Seq_sim.profile r
  in
  let specs =
    Activity.uniform_inputs core ~probability:config.input_probability
      ~density:config.input_density
  in
  let profile, used_exact_activity =
    Span.with_ "activity" ~args:[ ("engine", engine_name config.engine) ]
    @@ fun () ->
    match config.engine with
    | First_order -> (Activity.local_profile core specs, false)
    | Exact_when_small ->
      (match Activity.exact_profile core specs with
      | Some p -> (p, true)
      | None -> (Activity.local_profile core specs, false))
    | Windowed window ->
      (Activity.windowed_profile ~window core specs, false)
    | Monte_carlo { vectors; seed } ->
      let local = Activity.local_profile core specs in
      let measured =
        Dcopt_sim.Event_sim.monte_carlo_activity core
          ~rng:(Dcopt_util.Prng.create seed) ~vectors
          ~input_probability:config.input_probability
          ~input_density:config.input_density
      in
      ( { local with
          Activity.densities = measured.Dcopt_sim.Event_sim.densities },
        false )
    | Sequential_trace { cycles; seed } ->
      (sequential_profile cycles seed, false)
  in
  let env =
    Span.with_ "wire-load" (fun () ->
        Power_model.make_env
          ~include_short_circuit:config.include_short_circuit ~tech:config.tech
          ~fc:config.clock_frequency core profile)
  in
  let budget =
    Span.with_ "budgeting" (fun () ->
        Delay_assign.assign ~skew_factor:config.skew_factor core
          ~cycle_time:(1.0 /. config.clock_frequency))
  in
  Log.info (fun m ->
      m "prepared %s: %d gates, depth %d, fc %.0f MHz, %d paths budgeted, %d fallback, %d slope-lifted"
        (Circuit.name core) (Circuit.gate_count core) (Circuit.depth core)
        (config.clock_frequency /. 1e6)
        budget.Delay_assign.paths_used budget.Delay_assign.fallback_gates
        budget.Delay_assign.slope_adjusted);
  { config; core; profile; used_exact_activity; env; budget }

let budgets p = p.budget.Delay_assign.t_max

let repaired_budgets p ~vt =
  let tech = p.config.tech in
  match
    Budget_repair.repair p.env ~budgets:(budgets p) ~vdd:tech.Tech.vdd_max ~vt
  with
  | Budget_repair.Repaired { budgets; lifted; iterations } ->
    Log.debug (fun m ->
        m "budget repair at vt=%.0f mV: %d gates lifted in %d iterations"
          (vt *. 1000.0) lifted iterations);
    Some budgets
  | Budget_repair.Infeasible { limiting_gate } ->
    Log.warn (fun m ->
        m "cycle time unreachable at vt=%.0f mV (limiting gate %s)"
          (vt *. 1000.0)
          (Circuit.node p.core limiting_gate).Circuit.name);
    None

let fast_budgets p = repaired_budgets p ~vt:p.config.tech.Tech.vt_min

let run_baseline ?observer ?(vt = Baseline.default_vt) p =
  Span.with_ "optimize" ~args:[ ("optimizer", "baseline") ] @@ fun () ->
  match Span.with_ "budget-repair" (fun () -> repaired_budgets p ~vt) with
  | None -> None
  | Some budgets ->
    Span.with_ "search" (fun () ->
        Baseline.optimize ?observer ~vt ~m_steps:p.config.m_steps p.env
          ~budgets)

let run_joint ?observer ?(strategy = Heuristic.Paper_binary) p =
  Span.with_ "optimize" ~args:[ ("optimizer", "heuristic") ] @@ fun () ->
  match Span.with_ "budget-repair" (fun () -> fast_budgets p) with
  | None -> None
  | Some budgets ->
    let sol =
      Span.with_ "search" (fun () ->
          Heuristic.optimize ?observer
            ~options:
              { Heuristic.m_steps = p.config.m_steps; strategy; vt_fixed = None }
            p.env ~budgets)
    in
    (match sol with
    | Some sol ->
      Log.info (fun m ->
          m "joint optimum: Vdd %.2f V, Vt %s mV, %s per cycle"
            (Solution.vdd sol)
            (Solution.vt_values sol
            |> List.map (fun v -> Printf.sprintf "%.0f" (v *. 1000.0))
            |> String.concat "/")
            (Dcopt_util.Si.format ~unit:"J" (Solution.total_energy sol)))
    | None -> Log.warn (fun m -> m "joint optimization found no feasible design"));
    sol

let run_annealing ?observer ?options p =
  Span.with_ "optimize" ~args:[ ("optimizer", "annealing") ] @@ fun () ->
  match Span.with_ "budget-repair" (fun () -> fast_budgets p) with
  | None -> None
  | Some budgets ->
    Span.with_ "search" (fun () ->
        Annealing.optimize ?observer ?options p.env ~budgets)

let run_multi_vt ?(n_vt = 2) p =
  Span.with_ "optimize" ~args:[ ("optimizer", "multi-vt") ] @@ fun () ->
  match Span.with_ "budget-repair" (fun () -> fast_budgets p) with
  | None -> None
  | Some budgets ->
    Span.with_ "search" (fun () ->
        Multi_vt.optimize ~m_steps:p.config.m_steps ~n_vt p.env ~budgets)

let run_tilos ?observer p =
  Span.with_ "optimize" ~args:[ ("optimizer", "tilos") ] @@ fun () ->
  Span.with_ "search" (fun () ->
      Dcopt_opt.Tilos.optimize ?observer ~m_steps:p.config.m_steps p.env)

let run_multi_vdd p =
  Span.with_ "optimize" ~args:[ ("optimizer", "multi-vdd") ] @@ fun () ->
  match Span.with_ "budget-repair" (fun () -> fast_budgets p) with
  | None -> None
  | Some budgets ->
    Span.with_ "search" (fun () ->
        Multi_vdd.optimize ~m_steps:p.config.m_steps p.env ~budgets)

let report p sol =
  Printf.sprintf "circuit %s (%d gates, depth %d)\n%s"
    (Circuit.name p.core) (Circuit.gate_count p.core) (Circuit.depth p.core)
    (Solution.describe p.env sol)
