module Tech = Dcopt_device.Tech
module Numeric = Dcopt_util.Numeric

let classify env ~budgets ~classes =
  assert (classes >= 1);
  let circuit = Power_model.circuit env in
  let n = Dcopt_netlist.Circuit.size circuit in
  let tech = Power_model.tech env in
  let gates = Power_model.gate_ids env in
  (* Tightness: fast-corner delay relative to the budget, with a nominal
     width so loads are realistic. *)
  let probe = Power_model.uniform_design env ~vdd:tech.Tech.vdd_max
      ~vt:tech.Tech.vt_min ~w:4.0 in
  let tightness =
    Array.map
      (fun id ->
        let mfd = Power_model.budget_fanin_delay env ~budgets id in
        let d = Power_model.gate_delay env probe ~max_fanin_delay:mfd id in
        (id, d /. Float.max 1e-15 budgets.(id)))
      gates
  in
  Array.sort (fun (_, a) (_, b) -> Float.compare b a) tightness;
  let assignment = Array.make n 0 in
  let total = Array.length tightness in
  Array.iteri
    (fun rank (id, _) ->
      assignment.(id) <- min (classes - 1) (rank * classes / max 1 total))
    tightness;
  assignment

let vt_of_classes assignment class_vts n =
  Array.init n (fun id -> class_vts.(assignment.(id)))

(* Slack-driven promotion: gates are visited in decreasing achieved slack
   (computed once from the input design); each promotion is accepted only
   if a full re-evaluation still meets the cycle time, so shared-path
   interactions cannot break timing. *)
let greedy_dual_vt ?vt_high_candidates env solution =
  let tech = Power_model.tech env in
  let circuit = Power_model.circuit env in
  let base = solution.Solution.design in
  let vt_low =
    match Solution.vt_values solution with
    | v :: _ -> v
    | [] -> tech.Tech.vt_min
  in
  let candidates =
    match vt_high_candidates with
    | Some c -> c
    | None ->
      Numeric.linspace
        ~lo:(Numeric.clamp ~lo:tech.Tech.vt_min ~hi:tech.Tech.vt_max
               (vt_low +. 0.05))
        ~hi:tech.Tech.vt_max ~n:5
  in
  let tc = Power_model.cycle_time env in
  let best = ref solution in
  Array.iter
    (fun vt_high ->
      if vt_high > vt_low then begin
        let design =
          {
            base with
            Power_model.vt = Array.copy base.Power_model.vt;
            widths = base.Power_model.widths;
          }
        in
        (* slack per gate from the base design's achieved timing,
           against the env's per-endpoint constraints when it has any *)
        let eval = solution.Solution.evaluation in
        let sta =
          Dcopt_timing.Sta.analyze ~required_time:tc
            ?required_times:(Power_model.required_times env)
            ?arrival_offsets:(Power_model.arrival_offsets env) circuit
            ~delays:eval.Power_model.delays
        in
        let order =
          Array.to_list (Power_model.gate_ids env)
          |> List.sort (fun a b ->
                 Float.compare
                   (Dcopt_timing.Sta.slack_of_endpoint sta b)
                   (Dcopt_timing.Sta.slack_of_endpoint sta a))
        in
        let promoted = ref 0 in
        List.iter
          (fun id ->
            let saved = design.Power_model.vt.(id) in
            design.Power_model.vt.(id) <- vt_high;
            let e = Power_model.evaluate env design in
            if e.Power_model.feasible then incr promoted
            else design.Power_model.vt.(id) <- saved)
          order;
        if !promoted > 0 then begin
          let sol =
            Solution.make ~label:"multi-vt"
              ~meets_budgets:solution.Solution.meets_budgets env design
          in
          match Solution.better (Some !best) sol with
          | Some b -> best := b
          | None -> ()
        end
      end)
    candidates;
  !best

let optimize ?(m_steps = 12) ?(n_vt = 2) env ~budgets =
  assert (n_vt >= 1);
  let tech = Power_model.tech env in
  let circuit = Power_model.circuit env in
  let n = Dcopt_netlist.Circuit.size circuit in
  let single =
    Heuristic.optimize
      ~options:{ Heuristic.default_options with m_steps;
                 strategy = Heuristic.Grid_refine }
      env ~budgets
  in
  match single with
  | None -> None
  | Some incumbent when n_vt = 1 -> Some incumbent
  | Some incumbent ->
    let assignment = classify env ~budgets ~classes:n_vt in
    let vdd0 = Solution.vdd incumbent in
    let vt0 =
      match Solution.vt_values incumbent with
      | v :: _ -> v
      | [] -> tech.Tech.vt_min
    in
    let class_vts = Array.make n_vt vt0 in
    let best = ref (Some { incumbent with Solution.label = "multi-vt" }) in
    let try_design vdd =
      let vt = vt_of_classes assignment class_vts n in
      let design, ok = Power_model.size_all env ~vdd ~vt ~budgets in
      let sol = Solution.make ~label:"multi-vt" ~meets_budgets:ok env design in
      if ok then best := Solution.better !best sol;
      sol
    in
    (* Coordinate descent on the class thresholds at the incumbent supply:
       critical classes explore downward from vt0, slack classes upward. *)
    let rounds = 2 in
    for _ = 1 to rounds do
      for c = 0 to n_vt - 1 do
        let candidates =
          Numeric.linspace ~lo:tech.Tech.vt_min ~hi:tech.Tech.vt_max ~n:9
        in
        let keep = class_vts.(c) in
        let best_for_class = ref (keep, infinity) in
        Array.iter
          (fun vt ->
            class_vts.(c) <- vt;
            let sol = try_design vdd0 in
            let e = Solution.total_energy sol in
            if sol.Solution.meets_budgets && e < snd !best_for_class then
              best_for_class := (vt, e))
          candidates;
        class_vts.(c) <- fst !best_for_class
      done
    done;
    (* Local supply refinement around the incumbent. *)
    Array.iter
      (fun vdd -> ignore (try_design vdd))
      (Numeric.linspace
         ~lo:(Numeric.clamp ~lo:tech.Tech.vdd_min ~hi:tech.Tech.vdd_max
                (vdd0 *. 0.85))
         ~hi:(Numeric.clamp ~lo:tech.Tech.vdd_min ~hi:tech.Tech.vdd_max
                (vdd0 *. 1.15))
         ~n:5);
    (* The slack-driven greedy is a different search bias; for n_vt = 2 try
       it from the single-Vt incumbent and keep whichever wins. *)
    (if n_vt = 2 then
       let greedy = greedy_dual_vt env incumbent in
       match Solution.better !best { greedy with Solution.label = "multi-vt" } with
       | Some b -> best := Some b
       | None -> ());
    !best
