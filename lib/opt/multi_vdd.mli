(** Multiple-supply extension (the paper's "more than one ... power supply
    voltage if desired", §4).

    Implements clustered voltage scaling: gates with budget slack run from
    a second, lower supply; timing-critical gates keep the high one. The
    assignment is legalized so that no low-supply gate ever drives a
    high-supply gate (a low-to-high boundary would need a level converter
    mid-cone); converters are still required where low-supply gates drive
    primary outputs / register pins, and both their switching energy and
    their delay are charged to the design.

    The optimizer is a coordinate descent over (vdd_hi, vdd_lo, vt) around
    per-gate width sizing, seeded from the single-supply optimum; the
    result is never worse than single-Vdd (contained as vdd_lo = vdd_hi). *)

type assignment = {
  uses_low : bool array;      (** per node id; inputs false *)
  low_count : int;            (** gates on the low supply *)
  converter_count : int;      (** level converters at output boundaries *)
}

val classify :
  Power_model.env -> budgets:float array -> slack_threshold:float ->
  assignment
(** Marks gates whose budget exceeds [slack_threshold] times their
    fast-corner delay as low-supply candidates, then legalizes: a gate
    driving any high-supply gate is promoted to the high supply, iterated
    to a fixpoint (sweeping in reverse topological order). *)

type result = {
  solution : Solution.t;      (** evaluation at the two supplies, converter
                                  overhead included in the energy *)
  vdd_high : float;
  vdd_low : float;
  supply_assignment : assignment;
}

val evaluate :
  Power_model.env ->
  assignment ->
  vdd_high:float -> vdd_low:float -> vt:float -> budgets:float array ->
  result option
(** Sizes every gate at its own supply (reverse topological order) and
    evaluates; [None] when some gate misses its budget even at maximum
    width. Requires [vdd_low <= vdd_high]. *)

val optimize :
  ?m_steps:int ->
  ?vt_fixed:float ->   (* pin the threshold (conventional-flow variant) *)
  Power_model.env ->
  budgets:float array ->
  result option
(** Best dual-supply design found; [None] when even single-supply
    optimization fails. With [vt_fixed] the threshold stays pinned (the
    conventional-process case, where the second rail has the most room
    to help — see EXPERIMENTS.md). *)
