(** Device-aware repair of Procedure-1 delay budgets.

    Procedure 1 budgets purely by fanout structure, so a budget can fall
    below what any (Vdd, Vt, w) point can achieve — eq. A3's input-slope
    term plus the width-independent intrinsic floor. The paper notes that
    "some post processing of delay assignments (typically for a very small
    fraction of the total number of logic gates) is done in order for the
    heuristic algorithm to be able to find a solution without violating the
    overall delay constraint" (§4.2); this module is that post-processing:

    + lift every budget to the gate's achievable floor at a reference
      corner (max width, minimum-load fanouts, driver delays at their own
      budgets);
    + when lifting overflows the cycle budget on some path, shrink the
      non-floored budgets along each violating path proportionally;
    + iterate to a fixpoint.

    A circuit whose critical path is floored end-to-end genuinely cannot
    make the cycle time at that corner and is reported {!Infeasible}. *)

type outcome =
  | Repaired of { budgets : float array; lifted : int; iterations : int }
  | Infeasible of { limiting_gate : int }
    (** [limiting_gate]: a gate on an unshrinkable violating path. *)

val floor_delay :
  Power_model.env -> budgets:float array -> vdd:float -> vt:float -> int ->
  float
(** Best achievable delay of one gate at the corner: own width at maximum,
    fanout loads at minimum width, driver delay at the fanins' budgets. *)

val repair :
  ?max_iterations:int ->  (* default 24 *)
  ?margin:float ->        (* relative safety over the floor, default 1e-3 *)
  Power_model.env ->
  budgets:float array ->
  vdd:float -> vt:float ->
  outcome
(** Returns budgets whose STA critical delay still fits the original
    distributed cycle budget (max path sum of the input budgets) and whose
    every entry is at or above the gate's floor — or [Infeasible]. The
    input array is not mutated. *)
