(** The paper's comparison baseline (Table 1): threshold fixed (700 mV),
    only the supply voltage and the device widths are optimized to minimize
    power at the required clock frequency. *)

val default_vt : float
(** 0.7 V, the paper's fixed threshold. *)

val optimize :
  ?observer:Dcopt_obs.Telemetry.observer ->
  ?vt:float ->
  ?m_steps:int ->
  Power_model.env ->
  budgets:float array ->
  Solution.t option
(** Best feasible (Vdd, widths) design at the pinned threshold, or [None]
    when the frequency target is unreachable at that threshold.
    [observer] receives the underlying {!Heuristic} trial stream with the
    [optimizer] field relabelled to "baseline". *)
