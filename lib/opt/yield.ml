module Prng = Dcopt_util.Prng
module Stats = Dcopt_util.Stats

type report = {
  samples : int;
  timing_yield : float;
  mean_energy : float;
  p95_energy : float;
  worst_critical_delay : float;
}

let monte_carlo ?(seed = 0xD1E5L) ?(global_fraction = 0.7) env design
    ~sigma_fraction ~samples =
  assert (samples >= 1 && sigma_fraction >= 0.0);
  assert (global_fraction >= 0.0 && global_fraction <= 1.0);
  let rng = Prng.create seed in
  let gates = Power_model.gate_ids env in
  let energies = Array.make samples 0.0 in
  let pass = ref 0 in
  let worst = ref 0.0 in
  (* Die-to-die (correlated) and within-die (independent) components: the
     correlated part dominates timing loss because it cannot average out
     along a path. *)
  let sigma_global = global_fraction *. sigma_fraction in
  let sigma_local =
    sqrt (Float.max 0.0 ((sigma_fraction ** 2.0) -. (sigma_global ** 2.0)))
  in
  (* Draw every sample's thresholds sequentially (the exact stream a
     sequential run consumes), then evaluate the pure samples on the Par
     pool and reduce in index order — the report is identical at any
     --jobs. *)
  let vt_samples = Array.make samples [||] in
  for i = 0 to samples - 1 do
    let die_shift = Prng.gaussian rng ~mean:0.0 ~sigma:sigma_global in
    let vt_sample = Array.copy design.Power_model.vt in
    Array.iter
      (fun id ->
        let nominal = design.Power_model.vt.(id) in
        let local =
          Prng.gaussian rng ~mean:0.0 ~sigma:(sigma_local *. nominal)
        in
        let v = (nominal *. (1.0 +. die_shift)) +. local in
        vt_sample.(id) <- Float.max (0.05 *. nominal) v)
      gates;
    vt_samples.(i) <- vt_sample
  done;
  let evals =
    Dcopt_par.Par.map ~site:"yield.samples"
      (fun vt -> Power_model.evaluate env { design with Power_model.vt = vt })
      vt_samples
  in
  Array.iteri
    (fun i e ->
      energies.(i) <- e.Power_model.total_energy;
      if e.Power_model.feasible then incr pass;
      if e.Power_model.critical_delay > !worst then
        worst := e.Power_model.critical_delay)
    evals;
  {
    samples;
    timing_yield = float_of_int !pass /. float_of_int samples;
    mean_energy = Stats.mean energies;
    p95_energy = Stats.percentile energies 95.0;
    worst_critical_delay = !worst;
  }

type curve_point = {
  sigma_pct : float;
  nominal_yield : float;
  margined_yield : float;
  margined_energy_cost : float;
}

let yield_curve ?(m_steps = 10) ?(samples = 300) env ~budgets ~sigmas =
  let nominal =
    Heuristic.optimize
      ~options:{ Heuristic.m_steps; strategy = Heuristic.Grid_refine;
                 vt_fixed = None }
      env ~budgets
  in
  match nominal with
  | None -> [||]
  | Some nominal_sol ->
    let nominal_design = nominal_sol.Solution.design in
    Array.to_list sigmas
    |> List.filter_map (fun sigma ->
           (* margin for the 3-sigma slow corner, as Fig. 2(a) does *)
           let tolerance = Float.min 0.9 (3.0 *. sigma) in
           match Variation.corner_optimize ~m_steps env ~budgets ~tolerance with
           | None -> None
           | Some margined_sol ->
             (* the stored corner design carries the leaky-corner vt; the
                manufactured nominal is vt / (1 - tol) *)
             let margined_design =
               let d = margined_sol.Solution.design in
               {
                 d with
                 Power_model.vt =
                   Array.map (fun v -> v /. (1.0 -. tolerance))
                     d.Power_model.vt;
               }
             in
             let nominal_report =
               monte_carlo env nominal_design ~sigma_fraction:sigma ~samples
             in
             let margined_report =
               monte_carlo env margined_design ~sigma_fraction:sigma ~samples
             in
             Some
               {
                 sigma_pct = sigma *. 100.0;
                 nominal_yield = nominal_report.timing_yield;
                 margined_yield = margined_report.timing_yield;
                 margined_energy_cost =
                   margined_report.mean_energy /. nominal_report.mean_energy;
               })
    |> Array.of_list
