module Delay_assign = Dcopt_timing.Delay_assign

type point = {
  slack_factor : float;
  baseline_energy : float;
  joint_energy : float;
  savings : float;
  savings_same_slack : float;
  joint_vdd : float;
  joint_vt : float;
}

let sweep ?(m_steps = 12) ?baseline_vt ~tech ~fc circuit profile ~factors =
  (* Solve every slack point on the Par pool, then resolve the nominal
     reference sequentially in sorted order — the rule a sequential sweep
     applies ("factor 1 or else the first point that solved"). *)
  let solve factor =
    let fc_eff = fc /. factor in
    let env = Power_model.make_env ~tech ~fc:fc_eff circuit profile in
    let raw =
      (Delay_assign.assign circuit ~cycle_time:(1.0 /. fc_eff)).Delay_assign.t_max
    in
    let repaired vt =
      match
        Budget_repair.repair env ~budgets:raw
          ~vdd:tech.Dcopt_device.Tech.vdd_max ~vt
      with
      | Budget_repair.Repaired { budgets; _ } -> Some budgets
      | Budget_repair.Infeasible _ -> None
    in
    let baseline =
      let vt = Option.value baseline_vt ~default:Baseline.default_vt in
      Option.bind (repaired vt) (fun budgets ->
          Baseline.optimize ~vt ~m_steps env ~budgets)
    in
    let joint =
      Option.bind (repaired tech.Dcopt_device.Tech.vt_min) (fun budgets ->
          Heuristic.optimize
            ~options:{ Heuristic.default_options with m_steps;
                       strategy = Heuristic.Grid_refine }
            env ~budgets)
    in
    match (baseline, joint) with
    | Some b, Some j -> Some (Solution.total_energy b, j)
    | _ -> None
  in
  (* evaluate the nominal point first so the reference is available *)
  let sorted = Array.copy factors in
  Array.sort Float.compare sorted;
  Array.iter
    (fun factor ->
      if factor < 1.0 then invalid_arg "Slack_sweep.sweep: slack factor below 1")
    sorted;
  let solved =
    Dcopt_par.Par.map ~site:"slack.factors"
      (fun factor -> (factor, solve factor))
      sorted
  in
  let nominal_baseline = ref None in
  Array.to_list solved
  |> List.filter_map (fun (factor, result) ->
         match result with
         | None -> None
         | Some (be, j) ->
           let je = Solution.total_energy j in
           if factor = 1.0 || !nominal_baseline = None then
             nominal_baseline := Some be;
           let reference = Option.value !nominal_baseline ~default:be in
           Some
             {
               slack_factor = factor;
               baseline_energy = be;
               joint_energy = je;
               savings = reference /. je;
               savings_same_slack = be /. je;
               joint_vdd = Solution.vdd j;
               joint_vt =
                 (match Solution.vt_values j with v :: _ -> v | [] -> nan);
             })
  |> Array.of_list
