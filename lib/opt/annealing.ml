module Tech = Dcopt_device.Tech
module Prng = Dcopt_util.Prng
module Numeric = Dcopt_util.Numeric

type options = {
  passes : int;
  moves_per_pass : int;
  initial_temperature : float;
  cooling : float;
  seed : int64;
  warm_start : bool;
}

let default_options =
  {
    passes = 3;
    moves_per_pass = 4000;
    initial_temperature = 0.5;
    cooling = 0.0; (* 0 = derive from moves_per_pass at run time *)
    seed = 0x5EEDL;
    warm_start = false;
  }

(* Log-energy cost with a steep timing penalty, so the walk can cross
   mildly-infeasible territory but cannot settle there. *)
let cost env design =
  let e = Power_model.evaluate env design in
  let tc = Power_model.cycle_time env in
  let overshoot = Float.max 0.0 ((e.Power_model.critical_delay -. tc) /. tc) in
  (log e.Power_model.total_energy +. (50.0 *. overshoot), e)

let copy_design d =
  {
    d with
    Power_model.vt = Array.copy d.Power_model.vt;
    widths = Array.copy d.Power_model.widths;
  }

let perturb env rng temperature design =
  let tech = Power_model.tech env in
  let fresh = copy_design design in
  let gates = Power_model.gate_ids env in
  let scale = Float.max 0.05 temperature in
  let choice = Prng.float rng 1.0 in
  if choice < 0.2 then
    let span = (tech.Tech.vdd_max -. tech.Tech.vdd_min) *. 0.2 *. scale in
    {
      fresh with
      Power_model.vdd =
        Numeric.clamp ~lo:tech.Tech.vdd_min ~hi:tech.Tech.vdd_max
          (Prng.gaussian rng ~mean:design.Power_model.vdd ~sigma:span);
    }
  else if choice < 0.4 then begin
    let span = (tech.Tech.vt_max -. tech.Tech.vt_min) *. 0.2 *. scale in
    let vt0 = fresh.Power_model.vt.(gates.(0)) in
    let vt =
      Numeric.clamp ~lo:tech.Tech.vt_min ~hi:tech.Tech.vt_max
        (Prng.gaussian rng ~mean:vt0 ~sigma:span)
    in
    Array.iter (fun id -> fresh.Power_model.vt.(id) <- vt) gates;
    fresh
  end
  else begin
    let id = gates.(Prng.int rng (Array.length gates)) in
    let factor = exp (Prng.gaussian rng ~mean:0.0 ~sigma:(0.4 *. scale)) in
    fresh.Power_model.widths.(id) <-
      Numeric.clamp ~lo:tech.Tech.w_min ~hi:tech.Tech.w_max
        (fresh.Power_model.widths.(id) *. factor);
    fresh
  end

(* [record] buffers one pass's telemetry (indexed 0..moves-1 within the
   pass); optimize renumbers and forwards the buffers to the observer in
   pass order, so the stream is identical whether passes ran sequentially
   or on the Par pool. *)
let run_pass ?record env ~budgets ~options rng =
  let tech = Power_model.tech env in
  let gates = Power_model.gate_ids env in
  let n = Dcopt_netlist.Circuit.size (Power_model.circuit env) in
  let vt0 = 0.5 *. (tech.Tech.vt_min +. tech.Tech.vt_max) in
  let start =
    if options.warm_start then
      (* extension: start from a feasible sized design *)
      fst
        (Power_model.size_all env ~vdd:tech.Tech.vdd_max
           ~vt:(Array.make n vt0) ~budgets)
    else
      (* the paper's setting: a cold mid-range start the walk must shape *)
      {
        Power_model.vdd = 0.6 *. tech.Tech.vdd_max;
        vt = Array.make n vt0;
        widths = Array.make n (sqrt (tech.Tech.w_min *. tech.Tech.w_max));
      }
  in
  let cooling =
    if options.cooling > 0.0 then options.cooling
    else exp (log 1e-3 /. float_of_int options.moves_per_pass)
  in
  let current = ref (copy_design start) in
  let current_cost, _ = cost env !current in
  let current_cost = ref current_cost in
  let best = ref None in
  let temperature = ref options.initial_temperature in
  for move = 1 to options.moves_per_pass do
    let candidate = perturb env rng !temperature !current in
    let c, e = cost env candidate in
    (match record with
    | None -> ()
    | Some record ->
      record
        {
          Dcopt_obs.Telemetry.optimizer = "annealing";
          index = move - 1;
          vdd = candidate.Power_model.vdd;
          vt =
            (if Array.length gates = 0 then nan
             else candidate.Power_model.vt.(gates.(0)));
          static_energy = e.Power_model.static_energy;
          dynamic_energy = e.Power_model.dynamic_energy;
          total_energy = e.Power_model.total_energy;
          feasible = e.Power_model.feasible;
        });
    let accept =
      c <= !current_cost
      || Prng.float rng 1.0 < exp ((!current_cost -. c) /. !temperature)
    in
    if accept then begin
      current := candidate;
      current_cost := c;
      if e.Power_model.feasible then
        best :=
          Solution.better !best
            {
              Solution.label = "annealing";
              design = copy_design candidate;
              evaluation = e;
              meets_budgets = false;
            }
    end;
    temperature := !temperature *. cooling
  done;
  !best

let optimize ?observer ?(options = default_options) env ~budgets =
  let rng = Prng.create options.seed in
  let passes = max 0 options.passes in
  (* Split one rng per pass up front, in pass order — the same streams a
     sequential loop would hand each pass — so the restarts are
     independent and can run on the Par pool. *)
  let rngs = Array.make passes rng in
  for i = 0 to passes - 1 do
    rngs.(i) <- Prng.split rng
  done;
  let buffers = Array.init passes (fun _ -> ref []) in
  let results =
    Dcopt_par.Par.map ~site:"annealing.passes"
      (fun i ->
        let record =
          match observer with
          | None -> None
          | Some _ -> Some (fun it -> buffers.(i) := it :: !(buffers.(i)))
        in
        run_pass ?record env ~budgets ~options rngs.(i))
      (Array.init passes Fun.id)
  in
  (* Sequential emission in pass order, move indices renumbered to the
     global stream a sequential run produces. *)
  (match observer with
  | None -> ()
  | Some obs ->
    Array.iteri
      (fun p buffer ->
        List.iter
          (fun it ->
            obs
              {
                it with
                Dcopt_obs.Telemetry.index =
                  (p * options.moves_per_pass) + it.Dcopt_obs.Telemetry.index;
              })
          (List.rev !buffer))
      buffers);
  Array.fold_left
    (fun best -> function
      | Some sol -> Solution.better best sol
      | None -> best)
    None results
