module Tech = Dcopt_device.Tech
module Prng = Dcopt_util.Prng
module Numeric = Dcopt_util.Numeric

type options = {
  passes : int;
  moves_per_pass : int;
  initial_temperature : float;
  cooling : float;
  seed : int64;
  warm_start : bool;
}

let default_options =
  {
    passes = 3;
    moves_per_pass = 4000;
    initial_temperature = 0.5;
    cooling = 0.0; (* 0 = derive from moves_per_pass at run time *)
    seed = 0x5EEDL;
    warm_start = false;
  }

(* Log-energy cost with a steep timing penalty, so the walk can cross
   mildly-infeasible territory but cannot settle there. *)
let incr_cost env inc =
  let tc = Power_model.cycle_time env in
  let overshoot =
    Float.max 0.0 ((Power_model.Incr.critical_delay inc -. tc) /. tc)
  in
  log (Power_model.Incr.total_energy inc) +. (50.0 *. overshoot)

let copy_design d =
  {
    d with
    Power_model.vt = Array.copy d.Power_model.vt;
    widths = Array.copy d.Power_model.widths;
  }

(* Apply one random move to the incremental state (commit/rollback decide
   its fate). Width moves — the bulk of the walk — re-evaluate only the
   touched cone; the two global moves fall back to a full sweep inside the
   engine. [gates] is the env's gate-id array, hoisted out of the move
   loop (no per-move copy). *)
let perturb inc gates rng temperature =
  let env = Power_model.Incr.env inc in
  let design = Power_model.Incr.design inc in
  let tech = Power_model.tech env in
  let scale = Float.max 0.05 temperature in
  let choice = Prng.float rng 1.0 in
  if choice < 0.2 then
    let span = (tech.Tech.vdd_max -. tech.Tech.vdd_min) *. 0.2 *. scale in
    Power_model.Incr.set_vdd inc
      (Numeric.clamp ~lo:tech.Tech.vdd_min ~hi:tech.Tech.vdd_max
         (Prng.gaussian rng ~mean:design.Power_model.vdd ~sigma:span))
  else if choice < 0.4 then begin
    let span = (tech.Tech.vt_max -. tech.Tech.vt_min) *. 0.2 *. scale in
    let vt0 = design.Power_model.vt.(gates.(0)) in
    Power_model.Incr.set_vt_uniform inc
      (Numeric.clamp ~lo:tech.Tech.vt_min ~hi:tech.Tech.vt_max
         (Prng.gaussian rng ~mean:vt0 ~sigma:span))
  end
  else begin
    let id = gates.(Prng.int rng (Array.length gates)) in
    let factor = exp (Prng.gaussian rng ~mean:0.0 ~sigma:(0.4 *. scale)) in
    Power_model.Incr.set_width inc id
      (Numeric.clamp ~lo:tech.Tech.w_min ~hi:tech.Tech.w_max
         (design.Power_model.widths.(id) *. factor))
  end

(* [record] buffers one pass's telemetry (indexed 0..moves-1 within the
   pass); optimize renumbers and forwards the buffers to the observer in
   pass order, so the stream is identical whether passes ran sequentially
   or on the Par pool. *)
let run_pass ?record env ~budgets ~options rng =
  let tech = Power_model.tech env in
  let gates = Power_model.unsafe_gate_ids env in
  let n = Dcopt_netlist.Circuit.size (Power_model.circuit env) in
  let vt0 = 0.5 *. (tech.Tech.vt_min +. tech.Tech.vt_max) in
  let start =
    if options.warm_start then
      (* extension: start from a feasible sized design *)
      fst
        (Power_model.size_all env ~vdd:tech.Tech.vdd_max
           ~vt:(Array.make n vt0) ~budgets)
    else
      (* the paper's setting: a cold mid-range start the walk must shape *)
      {
        Power_model.vdd = 0.6 *. tech.Tech.vdd_max;
        vt = Array.make n vt0;
        widths = Array.make n (sqrt (tech.Tech.w_min *. tech.Tech.w_max));
      }
  in
  let cooling =
    if options.cooling > 0.0 then options.cooling
    else exp (log 1e-3 /. float_of_int options.moves_per_pass)
  in
  (* The walk lives in one incremental state: a move mutates it in place,
     an acceptance commits, a rejection rolls back — width moves (60% of
     the mix) cost O(affected cone) instead of a full evaluation. *)
  let inc = Power_model.Incr.create env (copy_design start) in
  let current_cost = ref (incr_cost env inc) in
  let best = ref None in
  let temperature = ref options.initial_temperature in
  for move = 1 to options.moves_per_pass do
    perturb inc gates rng !temperature;
    let c = incr_cost env inc in
    (match record with
    | None -> ()
    | Some record ->
      let design = Power_model.Incr.design inc in
      record
        {
          Dcopt_obs.Telemetry.optimizer = "annealing";
          index = move - 1;
          vdd = design.Power_model.vdd;
          vt =
            (if Array.length gates = 0 then nan
             else design.Power_model.vt.(gates.(0)));
          static_energy = Power_model.Incr.static_energy inc;
          dynamic_energy = Power_model.Incr.dynamic_energy inc;
          total_energy = Power_model.Incr.total_energy inc;
          feasible = Power_model.Incr.feasible inc;
        });
    let accept =
      c <= !current_cost
      || Prng.float rng 1.0 < exp ((!current_cost -. c) /. !temperature)
    in
    if accept then begin
      Power_model.Incr.commit inc;
      current_cost := c;
      if Power_model.Incr.feasible inc then begin
        let improves =
          match !best with
          | None -> true
          | Some b ->
            Power_model.Incr.total_energy inc < Solution.total_energy b
        in
        (* same keep-the-best rule as [Solution.better], but the copies
           are only paid when the candidate actually wins *)
        if improves then
          best :=
            Some
              (Solution.of_evaluation ~label:"annealing" ~meets_budgets:false
                 (copy_design (Power_model.Incr.design inc))
                 (Power_model.Incr.snapshot inc))
      end
    end
    else Power_model.Incr.rollback inc;
    temperature := !temperature *. cooling
  done;
  !best

let optimize ?observer ?(options = default_options) env ~budgets =
  let rng = Prng.create options.seed in
  let passes = max 0 options.passes in
  (* Split one rng per pass up front, in pass order — the same streams a
     sequential loop would hand each pass — so the restarts are
     independent and can run on the Par pool. *)
  let rngs = Array.make passes rng in
  for i = 0 to passes - 1 do
    rngs.(i) <- Prng.split rng
  done;
  let buffers = Array.init passes (fun _ -> ref []) in
  let results =
    Dcopt_par.Par.map ~site:"annealing.passes"
      (fun i ->
        let record =
          match observer with
          | None -> None
          | Some _ -> Some (fun it -> buffers.(i) := it :: !(buffers.(i)))
        in
        run_pass ?record env ~budgets ~options rngs.(i))
      (Array.init passes Fun.id)
  in
  (* Sequential emission in pass order, move indices renumbered to the
     global stream a sequential run produces. *)
  (match observer with
  | None -> ()
  | Some obs ->
    Array.iteri
      (fun p buffer ->
        List.iter
          (fun it ->
            obs
              {
                it with
                Dcopt_obs.Telemetry.index =
                  (p * options.moves_per_pass) + it.Dcopt_obs.Telemetry.index;
              })
          (List.rev !buffer))
      buffers);
  Array.fold_left
    (fun best -> function
      | Some sol -> Solution.better best sol
      | None -> best)
    None results
