module Tech = Dcopt_device.Tech
module Prng = Dcopt_util.Prng
module Numeric = Dcopt_util.Numeric

type options = {
  passes : int;
  moves_per_pass : int;
  initial_temperature : float;
  cooling : float;
  seed : int64;
  warm_start : bool;
  checkpoint : string option;
}

let default_options =
  {
    passes = 3;
    moves_per_pass = 4000;
    initial_temperature = 0.5;
    cooling = 0.0; (* 0 = derive from moves_per_pass at run time *)
    seed = 0x5EEDL;
    warm_start = false;
    checkpoint = None;
  }

(* Log-energy cost with a steep timing penalty, so the walk can cross
   mildly-infeasible territory but cannot settle there. *)
let incr_cost env inc =
  let tc = Power_model.cycle_time env in
  let overshoot =
    Float.max 0.0 ((Power_model.Incr.critical_delay inc -. tc) /. tc)
  in
  log (Power_model.Incr.total_energy inc) +. (50.0 *. overshoot)

let copy_design d =
  {
    d with
    Power_model.vt = Array.copy d.Power_model.vt;
    widths = Array.copy d.Power_model.widths;
  }

(* Apply one random move to the incremental state (commit/rollback decide
   its fate). Width moves — the bulk of the walk — re-evaluate only the
   touched cone; the two global moves fall back to a full sweep inside the
   engine. [gates] is the env's gate-id array, hoisted out of the move
   loop (no per-move copy). *)
let perturb inc gates rng temperature =
  let env = Power_model.Incr.env inc in
  let design = Power_model.Incr.design inc in
  let tech = Power_model.tech env in
  let scale = Float.max 0.05 temperature in
  let choice = Prng.float rng 1.0 in
  if choice < 0.2 then
    let span = (tech.Tech.vdd_max -. tech.Tech.vdd_min) *. 0.2 *. scale in
    Power_model.Incr.set_vdd inc
      (Numeric.clamp ~lo:tech.Tech.vdd_min ~hi:tech.Tech.vdd_max
         (Prng.gaussian rng ~mean:design.Power_model.vdd ~sigma:span))
  else if choice < 0.4 then begin
    let span = (tech.Tech.vt_max -. tech.Tech.vt_min) *. 0.2 *. scale in
    let vt0 = design.Power_model.vt.(gates.(0)) in
    Power_model.Incr.set_vt_uniform inc
      (Numeric.clamp ~lo:tech.Tech.vt_min ~hi:tech.Tech.vt_max
         (Prng.gaussian rng ~mean:vt0 ~sigma:span))
  end
  else begin
    let id = gates.(Prng.int rng (Array.length gates)) in
    let factor = exp (Prng.gaussian rng ~mean:0.0 ~sigma:(0.4 *. scale)) in
    Power_model.Incr.set_width inc id
      (Numeric.clamp ~lo:tech.Tech.w_min ~hi:tech.Tech.w_max
         (design.Power_model.widths.(id) *. factor))
  end

(* [record] buffers one pass's telemetry (indexed 0..moves-1 within the
   pass); optimize renumbers and forwards the buffers to the observer in
   pass order, so the stream is identical whether passes ran sequentially
   or on the Par pool. *)
let run_pass ?record env ~budgets ~options rng =
  let tech = Power_model.tech env in
  let gates = Power_model.unsafe_gate_ids env in
  let n = Dcopt_netlist.Circuit.size (Power_model.circuit env) in
  let vt0 = 0.5 *. (tech.Tech.vt_min +. tech.Tech.vt_max) in
  let start =
    if options.warm_start then
      (* extension: start from a feasible sized design *)
      fst
        (Power_model.size_all env ~vdd:tech.Tech.vdd_max
           ~vt:(Array.make n vt0) ~budgets)
    else
      (* the paper's setting: a cold mid-range start the walk must shape *)
      {
        Power_model.vdd = 0.6 *. tech.Tech.vdd_max;
        vt = Array.make n vt0;
        widths = Array.make n (sqrt (tech.Tech.w_min *. tech.Tech.w_max));
      }
  in
  let cooling =
    if options.cooling > 0.0 then options.cooling
    else exp (log 1e-3 /. float_of_int options.moves_per_pass)
  in
  (* The walk lives in one incremental state: a move mutates it in place,
     an acceptance commits, a rejection rolls back — width moves (60% of
     the mix) cost O(affected cone) instead of a full evaluation. *)
  (* A degenerate start (vt at or above vdd) cannot even be evaluated:
     Incr.create raises Guard.Non_finite, and the surrounding
     Guard.protect turns the whole pass into None instead of a crash. *)
  Guard.protect ~site:"annealing.pass" @@ fun () ->
  let inc = Power_model.Incr.create env (copy_design start) in
  let current_cost = ref (incr_cost env inc) in
  let best = ref None in
  let temperature = ref options.initial_temperature in
  for move = 1 to options.moves_per_pass do
    match perturb inc gates rng !temperature with
    | exception Guard.Non_finite _ ->
      (* the move walked into non-finite territory: abandon it (state
         rolls back to the pre-move design) and keep cooling — the walk
         degrades gracefully instead of propagating NaN *)
      Guard.abort_trial ();
      Power_model.Incr.rollback inc;
      temperature := !temperature *. cooling
    | () ->
    let c = incr_cost env inc in
    (match record with
    | None -> ()
    | Some record ->
      let design = Power_model.Incr.design inc in
      record
        {
          Dcopt_obs.Telemetry.optimizer = "annealing";
          index = move - 1;
          vdd = design.Power_model.vdd;
          vt =
            (if Array.length gates = 0 then nan
             else design.Power_model.vt.(gates.(0)));
          static_energy = Power_model.Incr.static_energy inc;
          dynamic_energy = Power_model.Incr.dynamic_energy inc;
          total_energy = Power_model.Incr.total_energy inc;
          feasible = Power_model.Incr.feasible inc;
        });
    let accept =
      c <= !current_cost
      || Prng.float rng 1.0 < exp ((!current_cost -. c) /. !temperature)
    in
    if accept then begin
      Power_model.Incr.commit inc;
      current_cost := c;
      if Power_model.Incr.feasible inc then begin
        let improves =
          match !best with
          | None -> true
          | Some b ->
            Power_model.Incr.total_energy inc < Solution.total_energy b
        in
        (* same keep-the-best rule as [Solution.better], but the copies
           are only paid when the candidate actually wins *)
        if improves then
          best :=
            Some
              (Solution.of_evaluation ~label:"annealing" ~meets_budgets:false
                 (copy_design (Power_model.Incr.design inc))
                 (Power_model.Incr.snapshot inc))
      end
    end
    else Power_model.Incr.rollback inc;
    temperature := !temperature *. cooling
  done;
  !best

(* ------------------------------------------------------------------ *)
(* Per-pass crash-safe checkpoints                                      *)

module Json = Dcopt_util.Json
module Metrics = Dcopt_obs.Metrics

let ckpt_hits_c =
  Metrics.counter ~help:"annealing passes resumed from a checkpoint"
    "anneal.checkpoint.hits"

let ckpt_writes_c =
  Metrics.counter ~help:"annealing pass checkpoints written"
    "anneal.checkpoint.writes"

let checkpoint_version = 1

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    let parent = Filename.dirname path in
    if parent <> path then mkdir_p parent;
    try Sys.mkdir path 0o755
    with Sys_error _ when Sys.is_directory path -> ()
  end

let pass_path dir i = Filename.concat dir (Printf.sprintf "pass%d.json" i)

(* The file carries the run's full identity — seed, every option that
   shapes the walk, and the pass's pre-split PRNG state — so a stale
   checkpoint (different options or seed) can never leak into a run. *)
let pass_doc ~options ~rng_state result =
  Json.Obj
    [
      ("version", Json.Int checkpoint_version);
      ("seed", Json.String (Int64.to_string options.seed));
      ("passes", Json.Int options.passes);
      ("moves_per_pass", Json.Int options.moves_per_pass);
      ("initial_temperature", Json.Float options.initial_temperature);
      ("cooling", Json.Float options.cooling);
      ("warm_start", Json.Bool options.warm_start);
      ("rng_state", Json.String (Int64.to_string rng_state));
      ( "result",
        match result with Some s -> Solution.to_json s | None -> Json.Null );
    ]

(* [Some result] when the file is present, parses, and matches the run's
   identity exactly; anything else — missing, corrupt, stale — means the
   pass must rerun. Identity is compared structurally on the rendered
   members (Json floats round-trip exactly, so this is bit-precise). *)
let pass_of_file ~options ~rng_state path =
  match Json.read_file path with
  | Error _ -> None
  | Ok doc -> (
    let expected = pass_doc ~options ~rng_state None in
    let identity j =
      match Json.get_obj j with
      | Some members -> List.filter (fun (k, _) -> k <> "result") members
      | None -> []
    in
    match identity doc = identity expected && identity doc <> [] with
    | false -> None
    | true -> (
      match Json.field "result" doc with
      | Some Json.Null -> Some None
      | Some s -> (
        match Solution.of_json s with
        | Ok sol -> Some (Some sol)
        | Error _ -> None)
      | None -> None))

let optimize ?observer ?(options = default_options) env ~budgets =
  let rng = Prng.create options.seed in
  let passes = max 0 options.passes in
  (* Split one rng per pass up front, in pass order — the same streams a
     sequential loop would hand each pass — so the restarts are
     independent and can run on the Par pool. *)
  let rngs = Array.make passes rng in
  for i = 0 to passes - 1 do
    rngs.(i) <- Prng.split rng
  done;
  (* pre-run states: the checkpoint identity of each pass *)
  let rng_states = Array.map Prng.state rngs in
  let resume =
    match options.checkpoint with
    | None -> Array.make passes None
    | Some dir ->
      mkdir_p dir;
      Array.init passes (fun i ->
          let r =
            pass_of_file ~options ~rng_state:rng_states.(i) (pass_path dir i)
          in
          if r <> None then Metrics.incr ckpt_hits_c;
          r)
  in
  let buffers = Array.init passes (fun _ -> ref []) in
  let results =
    Dcopt_par.Par.map ~site:"annealing.passes"
      (fun i ->
        match resume.(i) with
        | Some result -> result
        | None ->
          let record =
            match observer with
            | None -> None
            | Some _ -> Some (fun it -> buffers.(i) := it :: !(buffers.(i)))
          in
          let result = run_pass ?record env ~budgets ~options rngs.(i) in
          (match options.checkpoint with
          | None -> ()
          | Some dir ->
            (* written from the worker right as the pass completes (the
               pool barrier would lose end-of-batch writes to a SIGKILL);
               atomic tmp+rename, so a crash never leaves a torn file *)
            Json.write_file (pass_path dir i)
              (pass_doc ~options ~rng_state:rng_states.(i) result);
            Metrics.incr ckpt_writes_c);
          result)
      (Array.init passes Fun.id)
  in
  (* Sequential emission in pass order, move indices renumbered to the
     global stream a sequential run produces. *)
  (match observer with
  | None -> ()
  | Some obs ->
    Array.iteri
      (fun p buffer ->
        List.iter
          (fun it ->
            obs
              {
                it with
                Dcopt_obs.Telemetry.index =
                  (p * options.moves_per_pass) + it.Dcopt_obs.Telemetry.index;
              })
          (List.rev !buffer))
      buffers);
  Array.fold_left
    (fun best -> function
      | Some sol -> Solution.better best sol
      | None -> best)
    None results
