(** TILOS-style sensitivity-driven sizing — a budget-free alternative to
    Procedure 2's inner loop.

    The paper decomposes the cycle time into per-gate budgets (Procedure 1)
    and then sizes each gate independently; the decomposition is what makes
    the heuristic fast, but it is conservative — a gate is forced within
    its own budget even when the path it sits on has slack elsewhere (our
    warm-started-annealing comparison quantifies the cost). The classic
    alternative (Fishburn & Dunlop's TILOS) needs no budgets: start every
    gate at minimum width and, while the circuit misses the cycle time,
    upsize the gate on the critical path with the best delay-reduction per
    energy-cost sensitivity. This module implements that loop, with the
    same outer (Vdd, Vt) search as the paper's heuristic, so the two inner
    strategies can be compared like for like. *)

val size_for_cycle :
  ?step:float ->         (* multiplicative width step, default 1.15 *)
  ?max_iterations:int -> (* default 50 * gates *)
  Power_model.env ->
  vdd:float -> vt:float ->
  Power_model.design option
(** Greedy sizing at a fixed operating point: [None] when the cycle time is
    unreachable (every critical-path gate saturated at maximum width). The
    returned design meets the cycle time. *)

val optimize :
  ?observer:Dcopt_obs.Telemetry.observer ->
  ?m_steps:int ->
  Power_model.env ->
  Solution.t option
(** Grid search over (Vdd, Vt) around {!size_for_cycle}; the solution's
    [meets_budgets] is true when it also satisfies per-gate Procedure-1
    budgets, which TILOS does not enforce. Note no [budgets] argument: the
    cycle-time constraint alone drives the sizing. *)
