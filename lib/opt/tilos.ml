module Circuit = Dcopt_netlist.Circuit
module Tech = Dcopt_device.Tech
module Energy = Dcopt_device.Energy
module Numeric = Dcopt_util.Numeric

(* Per-gate energy at the current design, used for the sensitivity
   denominator: leakage plus own switching. *)
let gate_energy env design ~max_fanin_delay id =
  let tech = Power_model.tech env in
  let load = Power_model.gate_load env design ~max_fanin_delay id in
  Energy.static_energy tech
    ~fc:(Power_model.clock_frequency env)
    ~vdd:design.Power_model.vdd ~vt:design.Power_model.vt.(id)
    ~w:design.Power_model.widths.(id)
  +. Energy.dynamic_energy tech ~vdd:design.Power_model.vdd
       ~w:design.Power_model.widths.(id)
       ~activity:(Power_model.activity env id)
       ~load

let size_for_cycle ?(step = 1.15) ?max_iterations env ~vdd ~vt =
  let tech = Power_model.tech env in
  let circuit = Power_model.circuit env in
  let n = Circuit.size circuit in
  let gate_count = max 1 (Circuit.gate_count circuit) in
  let limit = Option.value max_iterations ~default:(50 * gate_count) in
  let design =
    {
      Power_model.vdd;
      vt = Array.make n vt;
      widths = Array.make n tech.Tech.w_min;
    }
  in
  let is_gate id =
    match (Circuit.node circuit id).Circuit.kind with
    | Dcopt_netlist.Gate.Input -> false
    | _ -> true
  in
  let mfd_of delays id =
    let nd = Circuit.node circuit id in
    Array.fold_left
      (fun acc f -> if is_gate f then Float.max acc delays.(f) else acc)
      0.0 nd.Circuit.fanins
  in
  (* Sensitivity of upsizing gate [id]: path-delay change (own speed-up
     minus the slowdown of the on-path driver that now sees a bigger load)
     per unit of added energy. *)
  let try_upsize delays id =
    let w = design.Power_model.widths.(id) in
    let w' = Float.min tech.Tech.w_max (w *. step) in
    if w' <= w *. (1.0 +. 1e-9) then None
    else begin
      let mfd = mfd_of delays id in
      let d_before = Power_model.gate_delay env design ~max_fanin_delay:mfd id in
      let e_before = gate_energy env design ~max_fanin_delay:mfd id in
      let driver =
        let nd = Circuit.node circuit id in
        Array.fold_left
          (fun best f ->
            if not (is_gate f) then best
            else
              match best with
              | None -> Some f
              | Some b -> if delays.(f) > delays.(b) then Some f else best)
          None nd.Circuit.fanins
      in
      let driver_delay f =
        Power_model.gate_delay env design ~max_fanin_delay:(mfd_of delays f) f
      in
      let driver_before = Option.fold ~none:0.0 ~some:driver_delay driver in
      design.Power_model.widths.(id) <- w';
      let d_after = Power_model.gate_delay env design ~max_fanin_delay:mfd id in
      let e_after = gate_energy env design ~max_fanin_delay:mfd id in
      let driver_after = Option.fold ~none:0.0 ~some:driver_delay driver in
      design.Power_model.widths.(id) <- w;
      let delay_gain =
        d_before -. d_after -. (driver_after -. driver_before)
      in
      let energy_cost = Float.max 1e-24 (e_after -. e_before) in
      if delay_gain <= 0.0 then None
      else Some (delay_gain /. energy_cost, id, w')
    end
  in
  (* One incremental state for the whole greedy loop: an accepted upsize
     re-evaluates only its cone, and the critical path is walked from the
     maintained arrival times — no full evaluate/STA pass per iteration.
     The sensitivity probes in [try_upsize] stay as local probe-and-restore
     reads against the engine's live design and delays. A (vdd, vt) corner
     with non-finite physics (vt >= vdd) makes Incr raise Guard.Non_finite;
     the protect turns that trial point into None — infeasible, skipped —
     instead of a crash. *)
  Guard.protect ~site:"tilos.size_for_cycle" @@ fun () ->
  let inc = Power_model.Incr.create env design in
  let rec loop iteration =
    if Power_model.Incr.feasible inc then Some design
    else if iteration >= limit then None
    else begin
      let path = Power_model.Incr.critical_path inc in
      let delays = Power_model.Incr.delays inc in
      let best =
        List.fold_left
          (fun best id ->
            if not (is_gate id) then best
            else
              match try_upsize delays id with
              | None -> best
              | Some (s, _, _) as cand -> (
                match best with
                | Some (sb, _, _) when sb >= s -> best
                | _ -> cand))
          None path
      in
      match best with
      | None -> None (* every critical gate saturated: unreachable *)
      | Some (_, id, w') ->
        Power_model.Incr.set_width inc id w';
        Power_model.Incr.commit inc;
        loop (iteration + 1)
    end
  in
  loop 0

let optimize ?observer ?(m_steps = 8) env =
  let tech = Power_model.tech env in
  let best = ref None in
  let trials = ref 0 in
  let emit ~vdd ~vt sol =
    let index = !trials in
    incr trials;
    match observer with
    | None -> ()
    | Some obs ->
      let static_energy, dynamic_energy, total_energy, feasible =
        match sol with
        | Some sol ->
          ( Solution.static_energy sol,
            Solution.dynamic_energy sol,
            Solution.total_energy sol,
            Solution.feasible sol )
        | None -> (infinity, infinity, infinity, false)
      in
      obs
        {
          Dcopt_obs.Telemetry.optimizer = "tilos";
          index;
          vdd;
          vt;
          static_energy;
          dynamic_energy;
          total_energy;
          feasible;
        }
  in
  let try_point vdd vt =
    match size_for_cycle env ~vdd ~vt with
    | None -> emit ~vdd ~vt None
    | Some design ->
      let sol = Solution.make ~label:"tilos" ~meets_budgets:false env design in
      emit ~vdd ~vt (Some sol);
      if Solution.feasible sol then best := Solution.better !best sol
  in
  let scan vdd_lo vdd_hi vt_lo vt_hi n =
    let vdds = Numeric.log_interp_points ~lo:vdd_lo ~hi:vdd_hi ~n in
    let vts = Numeric.linspace ~lo:vt_lo ~hi:vt_hi ~n in
    Array.iter (fun vdd -> Array.iter (fun vt -> try_point vdd vt) vts) vdds
  in
  let coarse = max 6 m_steps in
  scan tech.Tech.vdd_min tech.Tech.vdd_max tech.Tech.vt_min tech.Tech.vt_max
    coarse;
  (match !best with
  | None -> ()
  | Some sol ->
    let vdd0 = Solution.vdd sol in
    let vt0 =
      match Solution.vt_values sol with v :: _ -> v | [] -> tech.Tech.vt_min
    in
    let span_vdd = (tech.Tech.vdd_max -. tech.Tech.vdd_min) /. float_of_int coarse in
    let span_vt = (tech.Tech.vt_max -. tech.Tech.vt_min) /. float_of_int coarse in
    let c = Numeric.clamp in
    scan
      (c ~lo:tech.Tech.vdd_min ~hi:tech.Tech.vdd_max (vdd0 -. span_vdd))
      (c ~lo:tech.Tech.vdd_min ~hi:tech.Tech.vdd_max (vdd0 +. span_vdd))
      (c ~lo:tech.Tech.vt_min ~hi:tech.Tech.vt_max (vt0 -. span_vt))
      (c ~lo:tech.Tech.vt_min ~hi:tech.Tech.vt_max (vt0 +. span_vt))
      coarse);
  !best
