(** Numerical guardrails at the power-model boundary.

    Ill-conditioned trial points (vt at or above vdd, zero drive,
    overflowing exponentials) produce non-finite delay/energy values that
    would otherwise poison optimizer accept/reject comparisons — NaN
    compares false with everything, so a NaN objective can masquerade as
    "not worse" and survive. The guards normalize those values at the
    boundary where they first appear:

    - {!clamp} is for the full-evaluation path, where sums start from
      zero: a non-finite term is forced to [+infinity], which is
      comparison-safe (an infinite objective loses every minimization and
      fails every feasibility test), and counted.
    - {!check} is for the incremental path, where running totals are
      updated by subtract-then-add: clamping there is {e unsafe}
      ([inf -. inf = nan] would poison the totals for every later move),
      so the move raises {!Non_finite} before any state mutates and the
      caller rolls the transaction back.

    Every trip is visible through the obs layer: [guard.non_finite]
    counts values trapped, [guard.clamped] the subset clamped in place,
    and [guard.trials_aborted] the trials abandoned via {!abort_trial}/
    {!protect}. *)

exception Non_finite of { site : string; value : float }
(** Raised by {!check} on a NaN/infinite value. [site] names the
    boundary that trapped it (e.g. ["incr.delay"]). *)

val clamp : site:string -> float -> float
(** Identity on finite values; a non-finite value is counted
    ([guard.non_finite], [guard.clamped]) and replaced by [+infinity]. *)

val check : site:string -> float -> float
(** Identity on finite values; a non-finite value is counted and raises
    {!Non_finite} — call before mutating any running state. *)

val abort_trial : unit -> unit
(** Count an abandoned trial ([guard.trials_aborted]). *)

val protect : site:string -> (unit -> 'a option) -> 'a option
(** [protect ~site f] runs [f]; a {!Non_finite} escaping it aborts the
    trial ([None], counted) instead of the process. Other exceptions pass
    through. *)
