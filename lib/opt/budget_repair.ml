module Circuit = Dcopt_netlist.Circuit
module Sta = Dcopt_timing.Sta
module Tech = Dcopt_device.Tech

type outcome =
  | Repaired of { budgets : float array; lifted : int; iterations : int }
  | Infeasible of { limiting_gate : int }

let floor_delay env ~budgets ~vdd ~vt id =
  let tech = Power_model.tech env in
  let n = Circuit.size (Power_model.circuit env) in
  let probe =
    {
      Power_model.vdd;
      vt = Array.make n vt;
      widths = Array.make n tech.Tech.w_min;
    }
  in
  probe.Power_model.widths.(id) <- tech.Tech.w_max;
  let mfd = Power_model.budget_fanin_delay env ~budgets id in
  Power_model.gate_delay env probe ~max_fanin_delay:mfd id

(* The repair loop drives the *actual* sizing operator: size the whole
   circuit at the corner, lift the budget of every gate that missed to the
   delay it achieved at maximum width (its true floor under the sized
   fanout loads), then claw the overflow back from non-floored gates along
   each violating path. Lifts only grow and shrinks only shrink the
   complementary set, so the loop either reaches a sized fixpoint or proves
   a floored-end-to-end path. *)
let repair ?(max_iterations = 24) ?(margin = 1e-3) env ~budgets ~vdd ~vt =
  let core = Power_model.circuit env in
  let n = Circuit.size core in
  let budgets = Array.copy budgets in
  let floored = Array.make (Array.length budgets) false in
  let available = (Sta.analyze core ~delays:budgets).Sta.critical_delay in
  let gates = Power_model.gate_ids env in
  let vt_array = Array.make n vt in
  let lifted = ref 0 in
  let infeasible_at path =
    let limiting =
      match List.find_opt (fun id -> floored.(id)) path with
      | Some id -> id
      | None -> (match path with id :: _ -> id | [] -> 0)
    in
    Infeasible { limiting_gate = limiting }
  in
  let rec loop iteration =
    if iteration > max_iterations then
      infeasible_at (Sta.critical_path core ~delays:budgets)
    else
      let design, ok = Power_model.size_all env ~vdd ~vt:vt_array ~budgets in
      if ok then Repaired { budgets; lifted = !lifted; iterations = iteration }
      else begin
        (* Lift every missing gate to its achieved max-width delay. *)
        Array.iter
          (fun id ->
            let mfd = Power_model.budget_fanin_delay env ~budgets id in
            let d = Power_model.gate_delay env design ~max_fanin_delay:mfd id in
            if d > budgets.(id) && Float.is_finite d then begin
              budgets.(id) <- d *. (1.0 +. margin);
              if not floored.(id) then begin
                floored.(id) <- true;
                incr lifted
              end
            end
            else if d > budgets.(id) then budgets.(id) <- infinity)
          gates;
        if Array.exists (fun id -> budgets.(id) = infinity) gates then
          infeasible_at (Sta.critical_path core ~delays:budgets)
        else begin
          (* Rebalance every violating path, worst first. *)
          let rec rebalance guard =
            if guard = 0 then false
            else
              let sta = Sta.analyze core ~delays:budgets in
              if sta.Sta.critical_delay <= available *. (1.0 +. 1e-9) then true
              else
                let path = Sta.critical_path core ~delays:budgets in
                let floored_sum, free_sum =
                  List.fold_left
                    (fun (f, fr) id ->
                      if floored.(id) then (f +. budgets.(id), fr)
                      else (f, fr +. budgets.(id)))
                    (0.0, 0.0) path
                in
                let room = available -. floored_sum in
                if free_sum <= 0.0 || room <= 0.0 then false
                else begin
                  let scale = room /. free_sum in
                  List.iter
                    (fun id ->
                      if not floored.(id) then
                        budgets.(id) <- budgets.(id) *. scale)
                    path;
                  rebalance (guard - 1)
                end
          in
          if rebalance (4 * max 1 (Array.length gates)) then loop (iteration + 1)
          else infeasible_at (Sta.critical_path core ~delays:budgets)
        end
      end
  in
  loop 1
