(** Cycle-time-slack study (paper Fig. 2(b)): how the power savings of the
    joint optimization grow as the available cycle time is relaxed beyond
    the nominal 1/fc. Each slack factor re-runs Procedure 1 and both
    optimizers at the stretched cycle time (energy per cycle integrates
    leakage over the longer cycle, so the comparison stays fair). *)

type point = {
  slack_factor : float;      (** cycle time / nominal cycle time, >= 1 *)
  baseline_energy : float;   (** fixed-Vt optimum at this cycle time, J *)
  joint_energy : float;      (** joint optimum at this cycle time, J *)
  savings : float;
    (** nominal (factor-1) baseline energy / joint energy — the paper
        measures savings against the fixed Table-1 design, so the curve
        grows with slack and reaches the headline ~25x *)
  savings_same_slack : float; (** baseline at this slack / joint *)
  joint_vdd : float;
  joint_vt : float;
}

val sweep :
  ?m_steps:int ->
  ?baseline_vt:float ->
  tech:Dcopt_device.Tech.t ->
  fc:float ->
  Dcopt_netlist.Circuit.t ->
  Dcopt_activity.Activity.profile ->
  factors:float array ->
  point array
(** One {!point} per slack factor (requires each factor >= 1); factors
    where either optimizer fails are skipped. The circuit must be
    combinational. *)
