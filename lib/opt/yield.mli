(** Monte-Carlo threshold-variation yield analysis.

    Figure 2(a) treats Vt variation with worst-case corners; this module
    asks the statistical version of the same question: with every
    transistor's threshold drawn independently around its nominal value
    (random dopant fluctuation), what fraction of manufactured dies still
    makes the cycle time, and what does the energy distribution look like?
    Corner-margined designs (from {!Variation.corner_optimize}) should hold
    their yield at high spreads where nominal designs collapse — the
    quantitative justification for Fig. 2(a)'s margins. *)

type report = {
  samples : int;
  timing_yield : float;        (** fraction of samples meeting the cycle *)
  mean_energy : float;         (** mean total energy per cycle, J *)
  p95_energy : float;          (** 95th-percentile energy, J *)
  worst_critical_delay : float;(** max critical delay over samples, s *)
}

val monte_carlo :
  ?seed:int64 ->           (* default 0xD1E5L *)
  ?global_fraction:float -> (* correlated share of the sigma, default 0.7 *)
  Power_model.env ->
  Power_model.design ->
  sigma_fraction:float ->  (* total Vt sigma as a fraction of nominal *)
  samples:int ->
  report
(** Evaluates [samples] die instances of [design]. The threshold spread is
    split into a die-to-die component (one draw per sample, shared by all
    gates — the part that cannot average out along a path) and an
    independent within-die remainder, with
    [sigma_global = global_fraction * sigma_fraction]. Deterministic for a
    given seed. *)

type curve_point = {
  sigma_pct : float;
  nominal_yield : float;   (** yield of the nominal joint optimum *)
  margined_yield : float;  (** yield of the corner-margined design *)
  margined_energy_cost : float;
    (** margined mean energy / nominal mean energy *)
}

val yield_curve :
  ?m_steps:int ->
  ?samples:int ->          (* default 300 *)
  Power_model.env ->
  budgets:float array ->
  sigmas:float array ->    (* sigma fractions, e.g. 0.03 .. 0.15 *)
  curve_point array
(** For each sigma: yield of the nominal optimum vs the design margined
    for a 3-sigma corner, and the energy premium the margin costs. *)
