module Metrics = Dcopt_obs.Metrics

exception Non_finite of { site : string; value : float }

let m_non_finite =
  Metrics.counter ~help:"non-finite values trapped at the power-model boundary"
    "guard.non_finite"

let m_clamped =
  Metrics.counter ~help:"non-finite values clamped to +infinity"
    "guard.clamped"

let m_aborted =
  Metrics.counter ~help:"optimizer trials abandoned on a non-finite value"
    "guard.trials_aborted"

let clamp ~site:_ v =
  if Float.is_finite v then v
  else begin
    Metrics.incr m_non_finite;
    Metrics.incr m_clamped;
    infinity
  end

let check ~site v =
  if Float.is_finite v then v
  else begin
    Metrics.incr m_non_finite;
    raise (Non_finite { site; value = v })
  end

let abort_trial () = Metrics.incr m_aborted

let protect ~site:_ f =
  try f ()
  with Non_finite _ ->
    abort_trial ();
    None
