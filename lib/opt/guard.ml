module Metrics = Dcopt_obs.Metrics
module Events = Dcopt_obs.Events

exception Non_finite of { site : string; value : float }

let m_non_finite =
  Metrics.counter ~help:"non-finite values trapped at the power-model boundary"
    "guard.non_finite"

let m_clamped =
  Metrics.counter ~help:"non-finite values clamped to +infinity"
    "guard.clamped"

let m_aborted =
  Metrics.counter ~help:"optimizer trials abandoned on a non-finite value"
    "guard.trials_aborted"

(* Guard trips are rare and always suspicious: besides the counters,
   each one leaves a Warn event carrying the site, so a bad design point
   is joinable to its batch row via the correlation scope. *)
let trip_event ~site ~action v =
  Events.warn "guard.non_finite"
    ~fields:
      [
        ("site", Dcopt_util.Json.String site);
        ("value", Dcopt_util.Json.Float v);
        ("action", Dcopt_util.Json.String action);
      ]

let clamp ~site v =
  if Float.is_finite v then v
  else begin
    Metrics.incr m_non_finite;
    Metrics.incr m_clamped;
    trip_event ~site ~action:"clamped" v;
    infinity
  end

let check ~site v =
  if Float.is_finite v then v
  else begin
    Metrics.incr m_non_finite;
    trip_event ~site ~action:"raised" v;
    raise (Non_finite { site; value = v })
  end

let abort_trial () = Metrics.incr m_aborted

let protect ~site:_ f =
  try f ()
  with Non_finite _ ->
    abort_trial ();
    None
