module Circuit = Dcopt_netlist.Circuit
module Gate = Dcopt_netlist.Gate
module Tech = Dcopt_device.Tech
module Delay = Dcopt_device.Delay
module Energy = Dcopt_device.Energy
module Drive = Dcopt_device.Drive
module Wire = Dcopt_wiring.Wire_model
module Activity = Dcopt_activity.Activity

type design = { vdd : float; vt : float array; widths : float array }

type gate_info = {
  fanin_count : int;
  stack : int;
  fanout_gate_ids : int array;
  pin_cap : float;    (* fixed load of output pins driven by this net, F *)
  wire_cap : float;
  wire_res : float;
  flight : float;
  node_activity : float;
}

type env = {
  env_tech : Tech.t;
  env_circuit : Circuit.t;
  fc : float;
  tc : float;
  info : gate_info option array; (* None for Input nodes *)
  gates_topo : int array;        (* gate ids in topological order *)
  short_circuit : bool;
}

type evaluation = {
  static_energy : float;
  dynamic_energy : float;
  short_circuit_energy : float;
  total_energy : float;
  static_power : float;
  dynamic_power : float;
  delays : float array;
  critical_delay : float;
  feasible : bool;
}

let make_env ?wiring ?(po_pin_width = 4.0) ?(include_short_circuit = false)
    ~tech ~fc circuit profile =
  if not (Circuit.is_combinational circuit) then
    invalid_arg "Power_model.make_env: circuit is sequential";
  if fc <= 0.0 then invalid_arg "Power_model.make_env: fc <= 0";
  let wiring =
    match wiring with
    | Some w -> w
    | None ->
      Wire.create ~tech ~gate_count:(max 1 (Circuit.gate_count circuit)) ()
  in
  let n = Circuit.size circuit in
  let info = Array.make n None in
  Array.iter
    (fun nd ->
      match nd.Circuit.kind with
      | Gate.Input -> ()
      | Gate.Dff -> assert false
      | kind ->
        let id = nd.Circuit.id in
        let fanin_count = Array.length nd.Circuit.fanins in
        let fanout_gate_ids = Circuit.fanouts circuit id in
        let pin_count = if Circuit.is_output circuit id then 1 else 0 in
        let net_fanout = max 1 (Array.length fanout_gate_ids + pin_count) in
        info.(id) <-
          Some
            {
              fanin_count;
              stack = Gate.series_stack_depth kind fanin_count;
              fanout_gate_ids;
              pin_cap =
                float_of_int pin_count *. po_pin_width *. tech.Tech.c_gate;
              wire_cap = Wire.net_capacitance wiring ~fanout:net_fanout;
              wire_res = Wire.net_resistance wiring ~fanout:net_fanout;
              flight = Wire.flight_time wiring ~fanout:net_fanout;
              node_activity = profile.Activity.densities.(id);
            })
    (Circuit.nodes circuit);
  let gates_topo =
    let topo = Circuit.topo_order circuit in
    let count = ref 0 in
    Array.iter (fun id -> if info.(id) <> None then incr count) topo;
    let out = Array.make !count 0 in
    let next = ref 0 in
    Array.iter
      (fun id ->
        if info.(id) <> None then begin
          out.(!next) <- id;
          incr next
        end)
      topo;
    out
  in
  { env_tech = tech; env_circuit = circuit; fc; tc = 1.0 /. fc; info;
    gates_topo; short_circuit = include_short_circuit }

let tech env = env.env_tech
let circuit env = env.env_circuit
let cycle_time env = env.tc
let clock_frequency env = env.fc
let gate_ids env = Array.copy env.gates_topo

let get_info env id =
  match env.info.(id) with
  | Some i -> i
  | None -> invalid_arg "Power_model: node is not a gate"

let activity env id = (get_info env id).node_activity

let uniform_design env ~vdd ~vt ~w =
  let n = Circuit.size env.env_circuit in
  { vdd; vt = Array.make n vt; widths = Array.make n w }

let fanout_gate_cap env design info =
  Array.fold_left
    (fun acc g -> acc +. (design.widths.(g) *. env.env_tech.Tech.c_gate))
    info.pin_cap info.fanout_gate_ids

let gate_load env design ~max_fanin_delay id =
  let info = get_info env id in
  let cap_fanout_gates = fanout_gate_cap env design info in
  {
    Delay.fanin_count = info.fanin_count;
    stack_depth = info.stack;
    cap_fanout_gates;
    cap_wire = info.wire_cap;
    res_wire_terms = info.wire_res *. (cap_fanout_gates +. (info.wire_cap /. 2.0));
    flight_time = info.flight;
    max_fanin_delay;
  }

let gate_delay env design ~max_fanin_delay id =
  let load = gate_load env design ~max_fanin_delay id in
  Delay.gate_delay env.env_tech ~vdd:design.vdd ~vt:design.vt.(id)
    ~w:design.widths.(id) load

let budget_fanin_delay env ~budgets id =
  let nd = Circuit.node env.env_circuit id in
  Array.fold_left
    (fun acc f ->
      match env.info.(f) with
      | None -> acc (* primary input: arrives at cycle start *)
      | Some _ -> Float.max acc budgets.(f))
    0.0 nd.Circuit.fanins

(* Trial-scoped cache of drive contexts. A trial fixes vdd, and almost
   all designs carry one (multi-vt: a few) distinct thresholds, so a tiny
   assoc list amortizes the transcendental device model over all N gates
   x 40 width-search iterations of the trial. *)
type drive_cache = {
  cache_tech : Tech.t;
  cache_vdd : float;
  mutable cache_entries : (float * Drive.ctx) list;
}

let drive_cache env ~vdd =
  { cache_tech = env.env_tech; cache_vdd = vdd; cache_entries = [] }

let drive_ctx cache ~vt =
  let rec find = function
    | (v, ctx) :: rest -> if v = vt then ctx else find rest
    | [] ->
      let ctx = Drive.make cache.cache_tech ~vdd:cache.cache_vdd ~vt in
      cache.cache_entries <- (vt, ctx) :: cache.cache_entries;
      ctx
  in
  find cache.cache_entries

let evaluate env design =
  let n = Circuit.size env.env_circuit in
  let delays = Array.make n 0.0 in
  let arrival = Array.make n 0.0 in
  let static_e = ref 0.0 and dynamic_e = ref 0.0 in
  let short_e = ref 0.0 in
  let cache = drive_cache env ~vdd:design.vdd in
  Array.iter
    (fun id ->
      let nd = Circuit.node env.env_circuit id in
      let info = get_info env id in
      let max_fanin_delay =
        Array.fold_left
          (fun acc f ->
            match env.info.(f) with
            | None -> acc
            | Some _ -> Float.max acc delays.(f))
          0.0 nd.Circuit.fanins
      in
      let ctx = drive_ctx cache ~vt:design.vt.(id) in
      let w = design.widths.(id) in
      (* one load per gate: the delay and the dynamic-energy term share it *)
      let load = gate_load env design ~max_fanin_delay id in
      let d = Drive.gate_delay env.env_tech ctx ~w load in
      delays.(id) <- d;
      let worst_arrival =
        Array.fold_left
          (fun acc f -> Float.max acc arrival.(f))
          0.0 nd.Circuit.fanins
      in
      arrival.(id) <- worst_arrival +. d;
      static_e := !static_e +. Drive.static_energy ctx ~fc:env.fc ~w;
      dynamic_e :=
        !dynamic_e
        +. Drive.dynamic_energy env.env_tech ctx ~w
             ~activity:info.node_activity ~load;
      if env.short_circuit then
        short_e :=
          !short_e
          +. Dcopt_device.Short_circuit.energy env.env_tech ~vdd:design.vdd
               ~vt:design.vt.(id) ~w:design.widths.(id)
               ~activity:info.node_activity
               ~input_transition_time:
                 (Dcopt_device.Short_circuit.transition_time_of_delay
                    max_fanin_delay))
    env.gates_topo;
  let critical_delay =
    Array.fold_left
      (fun acc id -> Float.max acc arrival.(id))
      0.0 (Circuit.outputs env.env_circuit)
  in
  {
    static_energy = !static_e;
    dynamic_energy = !dynamic_e;
    short_circuit_energy = !short_e;
    total_energy = !static_e +. !dynamic_e +. !short_e;
    static_power = !static_e *. env.fc;
    dynamic_power = (!dynamic_e +. !short_e) *. env.fc;
    delays;
    critical_delay;
    feasible = critical_delay <= env.tc *. (1.0 +. 1e-6);
  }

(* The load depends only on the gate's *fanout* widths — fixed for the
   whole search (combinational circuits have no self-loops, and size_all
   finalizes fanouts before their drivers) — so it is hoisted out of the
   40-iteration binary search along with the drive context, leaving a
   handful of flops per iteration. *)
let size_gate_ctx env design ~budgets ctx id =
  let tech = env.env_tech in
  let target = budgets.(id) in
  let max_fanin_delay = budget_fanin_delay env ~budgets id in
  let load = gate_load env design ~max_fanin_delay id in
  let feasible w = Drive.gate_delay tech ctx ~w load <= target in
  Dcopt_util.Numeric.binary_search_min ~feasible ~lo:tech.Tech.w_min
    ~hi:tech.Tech.w_max ~iters:40 ()

let size_gate env design ~budgets id =
  let ctx = Drive.make env.env_tech ~vdd:design.vdd ~vt:design.vt.(id) in
  size_gate_ctx env design ~budgets ctx id

let size_all env ~vdd ~vt ~budgets =
  let n = Circuit.size env.env_circuit in
  let design = { vdd; vt; widths = Array.make n env.env_tech.Tech.w_min } in
  let cache = drive_cache env ~vdd in
  let all_met = ref true in
  (* Reverse topological order: every gate's fanout widths (its load) are
     final before the gate itself is sized. *)
  for i = Array.length env.gates_topo - 1 downto 0 do
    let id = env.gates_topo.(i) in
    let ctx = drive_ctx cache ~vt:vt.(id) in
    match size_gate_ctx env design ~budgets ctx id with
    | Some w -> design.widths.(id) <- w
    | None ->
      design.widths.(id) <- env.env_tech.Tech.w_max;
      all_met := false
  done;
  (design, !all_met)
