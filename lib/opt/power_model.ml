module Circuit = Dcopt_netlist.Circuit
module Flat = Dcopt_netlist.Flat
module Gate = Dcopt_netlist.Gate
module Tech = Dcopt_device.Tech
module Delay = Dcopt_device.Delay
module Energy = Dcopt_device.Energy
module Drive = Dcopt_device.Drive
module Wire = Dcopt_wiring.Wire_model
module Activity = Dcopt_activity.Activity
module Par = Dcopt_par.Par

type design = { mutable vdd : float; vt : float array; widths : float array }

(* Per-node structural attributes live in flat columns indexed by node id
   (struct-of-arrays): the evaluation sweeps read contiguous float arrays
   instead of chasing a per-gate record, which is what keeps the
   million-gate path cache-friendly. Non-gate entries are zero and never
   read (guarded by [is_gate]). *)
type env = {
  env_tech : Tech.t;
  env_circuit : Circuit.t;
  env_flat : Flat.t;
  fc : float;
  tc : float;
  is_gate : bool array;
  fanin_counts : int array;
  stacks : int array;
  pin_caps : float array;  (* fixed load of output pins driven by this net, F *)
  wire_caps : float array;
  wire_ress : float array;
  flights : float array;
  acts : float array;
  gates_topo : int array;  (* gate ids in topological order *)
  short_circuit : bool;
  env_constraints : Dcopt_timing.Constraints.t;
  (* Constraint projections; [None] on the scalar path, which then takes
     the verbatim legacy feasibility/seed expressions (bit-identity). *)
  req_times : float array option;
  arr_seed : float array option;
  (* Corner multiplier applied to every threshold the device model sees
     (Variation semantics: slow = vt*(1+tol)). 1.0 is the nominal
     corner and the bit-exact identity. *)
  vt_stress : float;
}

type evaluation = {
  static_energy : float;
  dynamic_energy : float;
  short_circuit_energy : float;
  total_energy : float;
  static_power : float;
  dynamic_power : float;
  delays : float array;
  critical_delay : float;
  feasible : bool;
}

let make_env ?wiring ?(po_pin_width = 4.0) ?(include_short_circuit = false)
    ?constraints ?(vt_stress = 1.0) ~tech ~fc circuit profile =
  if not (Circuit.is_combinational circuit) then
    invalid_arg "Power_model.make_env: circuit is sequential";
  if fc <= 0.0 then invalid_arg "Power_model.make_env: fc <= 0";
  if not (vt_stress > 0.0) then
    invalid_arg "Power_model.make_env: vt_stress <= 0";
  let wiring =
    match wiring with
    | Some w -> w
    | None ->
      Wire.create ~tech ~gate_count:(max 1 (Circuit.gate_count circuit)) ()
  in
  let flat = Flat.of_circuit circuit in
  let n = Circuit.size circuit in
  let is_gate = Array.make n false in
  let fanin_counts = Array.make n 0 in
  let stacks = Array.make n 0 in
  let pin_caps = Array.make n 0.0 in
  let wire_caps = Array.make n 0.0 in
  let wire_ress = Array.make n 0.0 in
  let flights = Array.make n 0.0 in
  let acts = Array.make n 0.0 in
  (* The wire model depends only on the net's fanout count, and a large
     random network has a handful of distinct counts, so the three wire
     terms are memoized per count — O(distinct fanouts) model calls
     instead of O(n). *)
  let wire_terms = Hashtbl.create 64 in
  let wire_term fanout =
    match Hashtbl.find_opt wire_terms fanout with
    | Some t -> t
    | None ->
      let t =
        ( Wire.net_capacitance wiring ~fanout,
          Wire.net_resistance wiring ~fanout,
          Wire.flight_time wiring ~fanout )
      in
      Hashtbl.add wire_terms fanout t;
      t
  in
  Array.iter
    (fun nd ->
      match nd.Circuit.kind with
      | Gate.Input -> ()
      | Gate.Dff -> assert false
      | kind ->
        let id = nd.Circuit.id in
        let fanin_count = Array.length nd.Circuit.fanins in
        let pin_count = if Circuit.is_output circuit id then 1 else 0 in
        let net_fanout =
          max 1 (Array.length (Circuit.fanouts circuit id) + pin_count)
        in
        let wc, wr, fl = wire_term net_fanout in
        is_gate.(id) <- true;
        fanin_counts.(id) <- fanin_count;
        stacks.(id) <- Gate.series_stack_depth kind fanin_count;
        pin_caps.(id) <- float_of_int pin_count *. po_pin_width *. tech.Tech.c_gate;
        wire_caps.(id) <- wc;
        wire_ress.(id) <- wr;
        flights.(id) <- fl;
        acts.(id) <- profile.Activity.densities.(id))
    (Circuit.nodes circuit);
  let gates_topo =
    let order = Circuit.unsafe_order circuit in
    let count = ref 0 in
    Array.iter (fun id -> if is_gate.(id) then incr count) order;
    let out = Array.make !count 0 in
    let next = ref 0 in
    Array.iter
      (fun id ->
        if is_gate.(id) then begin
          out.(!next) <- id;
          incr next
        end)
      order;
    out
  in
  let tc = 1.0 /. fc in
  let module C = Dcopt_timing.Constraints in
  let env_constraints =
    match constraints with Some c -> c | None -> C.of_cycle_time tc
  in
  (* Scalar sets project to [None] so the legacy seed/feasibility
     expressions run verbatim; only genuinely per-endpoint sets pay the
     constraint path. *)
  let req_times, arr_seed =
    match C.scalar_cycle_time env_constraints with
    | Some _ -> (None, None)
    | None ->
      ( Some (C.required_times env_constraints ~default:tc circuit),
        C.arrival_offsets env_constraints circuit )
  in
  {
    env_tech = tech;
    env_circuit = circuit;
    env_flat = flat;
    fc;
    tc;
    is_gate;
    fanin_counts;
    stacks;
    pin_caps;
    wire_caps;
    wire_ress;
    flights;
    acts;
    gates_topo;
    short_circuit = include_short_circuit;
    env_constraints;
    req_times;
    arr_seed;
    vt_stress;
  }

let tech env = env.env_tech
let circuit env = env.env_circuit
let flat env = env.env_flat
let cycle_time env = env.tc
let clock_frequency env = env.fc
let gate_ids env = Array.copy env.gates_topo
let unsafe_gate_ids env = env.gates_topo
let constraints env = env.env_constraints
let required_times env = env.req_times
let arrival_offsets env = env.arr_seed
let vt_stress env = env.vt_stress

(* Re-house an env at another process corner: same structural columns
   (shared, all read-only), different threshold stress. The cheap pivot
   the scenario layer fans corners out over. *)
let with_vt_stress env vt_stress =
  if not (vt_stress > 0.0) then
    invalid_arg "Power_model.with_vt_stress: vt_stress <= 0";
  { env with vt_stress }

let require_gate_id env id =
  if not env.is_gate.(id) then invalid_arg "Power_model: node is not a gate"

let activity env id =
  require_gate_id env id;
  env.acts.(id)

let uniform_design env ~vdd ~vt ~w =
  let n = Circuit.size env.env_circuit in
  { vdd; vt = Array.make n vt; widths = Array.make n w }

(* Fanout gate capacitance straight off the fanout CSR, folded in the
   same (ascending consumer id) order as Circuit.fanouts reports. *)
let fanout_gate_cap env design id =
  let f = env.env_flat in
  let off = f.Flat.fanout_off in
  let edges = f.Flat.fanout_edges in
  let widths = design.widths in
  let c_gate = env.env_tech.Tech.c_gate in
  let acc = ref env.pin_caps.(id) in
  for p = off.(id) to off.(id + 1) - 1 do
    acc := !acc +. (widths.(edges.(p)) *. c_gate)
  done;
  !acc

let gate_load env design ~max_fanin_delay id =
  let cap_fanout_gates = fanout_gate_cap env design id in
  let wire_cap = env.wire_caps.(id) in
  {
    Delay.fanin_count = env.fanin_counts.(id);
    stack_depth = env.stacks.(id);
    cap_fanout_gates;
    cap_wire = wire_cap;
    res_wire_terms = env.wire_ress.(id) *. (cap_fanout_gates +. (wire_cap /. 2.0));
    flight_time = env.flights.(id);
    max_fanin_delay;
  }

let gate_delay env design ~max_fanin_delay id =
  let load = gate_load env design ~max_fanin_delay id in
  Delay.gate_delay env.env_tech ~vdd:design.vdd
    ~vt:(design.vt.(id) *. env.vt_stress) ~w:design.widths.(id) load

let budget_fanin_delay env ~budgets id =
  let f = env.env_flat in
  let off = f.Flat.fanin_off in
  let edges = f.Flat.fanin_edges in
  let acc = ref 0.0 in
  for p = off.(id) to off.(id + 1) - 1 do
    let fi = edges.(p) in
    (* primary inputs arrive at cycle start and carry no budget *)
    if env.is_gate.(fi) then acc := Float.max !acc budgets.(fi)
  done;
  !acc

(* Trial-scoped cache of drive contexts. A trial fixes vdd, and almost
   all designs carry one (multi-vt: a few) distinct thresholds, so a tiny
   assoc list amortizes the transcendental device model over all N gates
   x 40 width-search iterations of the trial. *)
type drive_cache = {
  cache_tech : Tech.t;
  cache_vdd : float;
  mutable cache_entries : (float * Drive.ctx) list;
}

let drive_cache env ~vdd =
  { cache_tech = env.env_tech; cache_vdd = vdd; cache_entries = [] }

let drive_ctx cache ~vt =
  let rec find = function
    | (v, ctx) :: rest -> if v = vt then ctx else find rest
    | [] ->
      let ctx = Drive.make cache.cache_tech ~vdd:cache.cache_vdd ~vt in
      cache.cache_entries <- (vt, ctx) :: cache.cache_entries;
      ctx
  in
  find cache.cache_entries

let sc_energy env design ~max_fanin_delay id =
  Dcopt_device.Short_circuit.energy env.env_tech ~vdd:design.vdd
    ~vt:(design.vt.(id) *. env.vt_stress) ~w:design.widths.(id)
    ~activity:env.acts.(id)
    ~input_transition_time:
      (Dcopt_device.Short_circuit.transition_time_of_delay max_fanin_delay)

(* One slice of the level-sorted gate permutation: per-gate delay, arrival
   and the three energy terms, written into per-node columns. The per-gate
   arithmetic is the historical topological sweep's verbatim — the same
   folds over the fanins in pin order, one shared load per gate — and each
   index writes only its own cells, so slices of one level can run on the
   pool and still produce the sequential bits.

   Poison safety: sums are taken from the term columns afterwards, so a
   non-finite term is clamped to +infinity in place — the result is an
   infinite (never NaN) objective that loses every comparison, and the
   evaluation is marked infeasible. The guard is the identity on finite
   values, so well-conditioned designs are evaluated bit-identically. *)
let eval_range env design cache delays arrival st_terms dy_terms sc_terms
    tripped lo hi =
  let f = env.env_flat in
  let order = f.Flat.gate_level_order in
  let fanin_off = f.Flat.fanin_off in
  let fanin_edges = f.Flat.fanin_edges in
  let is_gate = env.is_gate in
  let tech = env.env_tech in
  let guarded site v =
    if Float.is_finite v then v
    else begin
      Atomic.set tripped true;
      Guard.clamp ~site v
    end
  in
  for k = lo to hi - 1 do
    let id = Array.unsafe_get order k in
    let s = Array.unsafe_get fanin_off id in
    let e = Array.unsafe_get fanin_off (id + 1) in
    let max_fanin_delay = ref 0.0 in
    let worst_arrival = ref 0.0 in
    for p = s to e - 1 do
      let fi = Array.unsafe_get fanin_edges p in
      if Array.unsafe_get is_gate fi then
        max_fanin_delay :=
          Float.max !max_fanin_delay (Array.unsafe_get delays fi);
      worst_arrival := Float.max !worst_arrival (Array.unsafe_get arrival fi)
    done;
    let max_fanin_delay = !max_fanin_delay in
    let ctx = drive_ctx cache ~vt:(design.vt.(id) *. env.vt_stress) in
    let w = design.widths.(id) in
    (* one load per gate: the delay and the dynamic-energy term share it *)
    let load = gate_load env design ~max_fanin_delay id in
    let d = guarded "evaluate.delay" (Drive.gate_delay tech ctx ~w load) in
    Array.unsafe_set delays id d;
    Array.unsafe_set arrival id (!worst_arrival +. d);
    Array.unsafe_set st_terms id
      (guarded "evaluate.static" (Drive.static_energy ctx ~fc:env.fc ~w));
    Array.unsafe_set dy_terms id
      (guarded "evaluate.dynamic"
         (Drive.dynamic_energy tech ctx ~w ~activity:env.acts.(id) ~load));
    if env.short_circuit then
      Array.unsafe_set sc_terms id
        (guarded "evaluate.short_circuit"
           (sc_energy env design ~max_fanin_delay id))
  done

let default_min_par_width = 512

(* Gate count from which the default [evaluate] dispatches level slices to
   the domain pool (when the global job count allows). *)
let par_gate_threshold = 20_000

(* Constraint-aware feasibility: every endpoint on time against its own
   required seed ([infinity] = released). [None] runs the verbatim legacy
   scalar comparison. *)
let arrivals_feasible env ~critical_delay arrival =
  match env.req_times with
  | None -> critical_delay <= env.tc *. (1.0 +. 1e-6)
  | Some req ->
    Array.for_all
      (fun id -> arrival.(id) <= req.(id) *. (1.0 +. 1e-6))
      (Circuit.outputs env.env_circuit)

let evaluate_with ~jobs ~min_par_width env design =
  let n = Circuit.size env.env_circuit in
  let delays = Array.make n 0.0 in
  let arrival =
    match env.arr_seed with
    | None -> Array.make n 0.0
    | Some seed -> Array.copy seed (* gate slots overwritten by the sweep *)
  in
  let st_terms = Array.make n 0.0 in
  let dy_terms = Array.make n 0.0 in
  let sc_terms = Array.make n 0.0 in
  let tripped = Atomic.make false in
  let cache = drive_cache env ~vdd:design.vdd in
  let f = env.env_flat in
  let off = f.Flat.gate_level_off in
  for l = 0 to f.Flat.depth do
    let lo = off.(l) and hi = off.(l + 1) in
    let width = hi - lo in
    if width > 0 then
      if jobs > 1 && width >= min_par_width then begin
        let chunk = (width + jobs - 1) / jobs in
        (* Per-chunk drive caches: Drive.make is a pure function of
           (tech, vdd, vt), so every worker derives exactly the contexts
           the shared cache holds — chunking cannot change any value. *)
        Par.parallel_for ~site:"power.level" ~jobs ~n:jobs (fun c ->
            let clo = lo + (c * chunk) in
            let chi = min hi (clo + chunk) in
            if clo < chi then
              let ccache = drive_cache env ~vdd:design.vdd in
              eval_range env design ccache delays arrival st_terms dy_terms
                sc_terms tripped clo chi)
      end
      else
        eval_range env design cache delays arrival st_terms dy_terms sc_terms
          tripped lo hi
  done;
  (* Deterministic sequential folds in topological gate order: each
     accumulator sees exactly the same additions, in the same order, as
     the historical single-sweep evaluation, independent of how (or
     whether) the level slices were chunked above. *)
  let static_e = ref 0.0 and dynamic_e = ref 0.0 and short_e = ref 0.0 in
  Array.iter
    (fun id ->
      static_e := !static_e +. st_terms.(id);
      dynamic_e := !dynamic_e +. dy_terms.(id);
      if env.short_circuit then short_e := !short_e +. sc_terms.(id))
    env.gates_topo;
  let critical_delay =
    Array.fold_left
      (fun acc id -> Float.max acc arrival.(id))
      0.0 (Circuit.outputs env.env_circuit)
  in
  let tripped = Atomic.get tripped in
  {
    static_energy = !static_e;
    dynamic_energy = !dynamic_e;
    short_circuit_energy = !short_e;
    total_energy = !static_e +. !dynamic_e +. !short_e;
    static_power = !static_e *. env.fc;
    dynamic_power = (!dynamic_e +. !short_e) *. env.fc;
    delays;
    critical_delay;
    feasible = (not tripped) && arrivals_feasible env ~critical_delay arrival;
  }

let evaluate_seq env design =
  evaluate_with ~jobs:1 ~min_par_width:max_int env design

let evaluate_par ?jobs ?(min_par_width = default_min_par_width) env design =
  let jobs = match jobs with Some j -> j | None -> Par.jobs () in
  evaluate_with ~jobs ~min_par_width env design

let evaluate env design =
  if Array.length env.gates_topo >= par_gate_threshold && Par.jobs () > 1 then
    evaluate_par env design
  else evaluate_seq env design

(* The load depends only on the gate's *fanout* widths — fixed for the
   whole search (combinational circuits have no self-loops, and size_all
   finalizes fanouts before their drivers) — so it is hoisted out of the
   40-iteration binary search along with the drive context, leaving a
   handful of flops per iteration. *)
let size_gate_ctx env design ~budgets ctx id =
  let tech = env.env_tech in
  let target = budgets.(id) in
  let max_fanin_delay = budget_fanin_delay env ~budgets id in
  let load = gate_load env design ~max_fanin_delay id in
  let feasible w = Drive.gate_delay tech ctx ~w load <= target in
  Dcopt_util.Numeric.binary_search_min ~feasible ~lo:tech.Tech.w_min
    ~hi:tech.Tech.w_max ~iters:40 ()

let size_gate env design ~budgets id =
  let ctx =
    Drive.make env.env_tech ~vdd:design.vdd
      ~vt:(design.vt.(id) *. env.vt_stress)
  in
  size_gate_ctx env design ~budgets ctx id

let size_all env ~vdd ~vt ~budgets =
  let n = Circuit.size env.env_circuit in
  let design = { vdd; vt; widths = Array.make n env.env_tech.Tech.w_min } in
  let cache = drive_cache env ~vdd in
  let all_met = ref true in
  (* Reverse topological order: every gate's fanout widths (its load) are
     final before the gate itself is sized. *)
  for i = Array.length env.gates_topo - 1 downto 0 do
    let id = env.gates_topo.(i) in
    let ctx = drive_ctx cache ~vt:(vt.(id) *. env.vt_stress) in
    match size_gate_ctx env design ~budgets ctx id with
    | Some w -> design.widths.(id) <- w
    | None ->
      design.widths.(id) <- env.env_tech.Tech.w_max;
      all_met := false
  done;
  (design, !all_met)

(* ------------------------------------------------------------------ *)
(* Incremental evaluation                                              *)

module Incr = struct
  module Incr_sta = Dcopt_timing.Incr_sta
  module Metrics = Dcopt_obs.Metrics

  let m_moves = Metrics.counter ~help:"incremental-evaluation moves" "incr.moves"

  let m_dirty =
    Metrics.counter ~help:"gates recomputed by incremental moves"
      "incr.dirty_gates"

  let m_fallbacks =
    Metrics.counter ~help:"incremental moves that re-swept every gate"
      "incr.full_fallbacks"

  let h_cone =
    Metrics.histogram ~help:"gates recomputed per incremental move"
      "incr.cone_size"

  type undo =
    | Width of int * float
    | Vt of int * float
    | Vdd of float * drive_cache
    | Vt_all of float array

  type t = {
    ienv : env;
    idesign : design;
    ist : Incr_sta.t;
    mutable icache : drive_cache;
    st_terms : float array;
    dy_terms : float array;
    sc_terms : float array;
    mutable st_total : float;
    mutable dy_total : float;
    mutable sc_total : float;
    mutable crit : float;
    term_journaled : bool array;
    mutable term_journal : (int * float * float * float) list;
    mutable design_journal : undo list;
    (* totals and critical delay at move start, restored verbatim on
       rollback so rejected moves leave no floating-point residue *)
    mutable saved : (float * float * float * float) option;
  }

  let env t = t.ienv
  let design t = t.idesign
  let delays t = Incr_sta.delays t.ist
  let arrivals t = Incr_sta.arrivals t.ist

  (* One gate's full re-evaluation: the same context, load sharing and
     formulas as [evaluate]'s topological sweep, so an unchanged gate
     reproduces its delay bit for bit. Energy terms are swapped into the
     running totals (subtract the stored term, add the new one). *)
  let recompute t ~id ~max_fanin_delay =
    let env = t.ienv in
    let design = t.idesign in
    let ctx = drive_ctx t.icache ~vt:(design.vt.(id) *. env.vt_stress) in
    let w = design.widths.(id) in
    let load = gate_load env design ~max_fanin_delay id in
    (* Running totals are updated by subtract-then-add, so clamping a
       non-finite term here would poison them for every later move
       (inf -. inf = nan). Instead every value is checked *before* any
       total mutates: Guard.Non_finite aborts the move and the caller's
       rollback restores the journaled state verbatim. *)
    let d = Guard.check ~site:"incr.delay" (Drive.gate_delay env.env_tech ctx ~w load) in
    let st = Guard.check ~site:"incr.static" (Drive.static_energy ctx ~fc:env.fc ~w) in
    let dy =
      Guard.check ~site:"incr.dynamic"
        (Drive.dynamic_energy env.env_tech ctx ~w ~activity:env.acts.(id)
           ~load)
    in
    let sc =
      if env.short_circuit then
        Guard.check ~site:"incr.short_circuit"
          (sc_energy env design ~max_fanin_delay id)
      else 0.0
    in
    if not t.term_journaled.(id) then begin
      t.term_journaled.(id) <- true;
      t.term_journal <-
        (id, t.st_terms.(id), t.dy_terms.(id), t.sc_terms.(id))
        :: t.term_journal
    end;
    t.st_total <- t.st_total -. t.st_terms.(id) +. st;
    t.dy_total <- t.dy_total -. t.dy_terms.(id) +. dy;
    t.sc_total <- t.sc_total -. t.sc_terms.(id) +. sc;
    t.st_terms.(id) <- st;
    t.dy_terms.(id) <- dy;
    t.sc_terms.(id) <- sc;
    d

  let recompute_critical t =
    let arrival = Incr_sta.arrivals t.ist in
    t.crit <-
      Array.fold_left
        (fun acc id -> Float.max acc arrival.(id))
        0.0
        (Circuit.outputs t.ienv.env_circuit)

  let create env design =
    if Array.length design.vt <> Circuit.size env.env_circuit
       || Array.length design.widths <> Circuit.size env.env_circuit
    then invalid_arg "Power_model.Incr.create: design size mismatch";
    let n = Circuit.size env.env_circuit in
    let t =
      {
        ienv = env;
        idesign = design;
        ist = Incr_sta.create env.env_circuit;
        icache = drive_cache env ~vdd:design.vdd;
        st_terms = Array.make n 0.0;
        dy_terms = Array.make n 0.0;
        sc_terms = Array.make n 0.0;
        st_total = 0.0;
        dy_total = 0.0;
        sc_total = 0.0;
        crit = 0.0;
        term_journaled = Array.make n false;
        term_journal = [];
        design_journal = [];
        saved = None;
      }
    in
    (* Constraint input delays seed the (live) arrival column at the
       primary inputs; inputs are never dirtied, so the seeds survive
       every propagate/commit/rollback cycle. *)
    (match env.arr_seed with
     | None -> ()
     | Some seed ->
       let arr = Incr_sta.arrivals t.ist in
       Array.iteri
         (fun id s -> if not env.is_gate.(id) then arr.(id) <- s)
         seed);
    (* Populate by a full sweep: the sub-then-add updates against zeroed
       terms reduce to the exact left-to-right sums [evaluate] computes. *)
    Incr_sta.refresh t.ist ~recompute:(fun ~id ~max_fanin_delay ->
        recompute t ~id ~max_fanin_delay);
    recompute_critical t;
    Incr_sta.commit t.ist;
    List.iter (fun (id, _, _, _) -> t.term_journaled.(id) <- false)
      t.term_journal;
    t.term_journal <- [];
    t

  let begin_move t =
    Metrics.incr m_moves;
    if t.saved = None then
      t.saved <- Some (t.st_total, t.dy_total, t.sc_total, t.crit)

  let finish_move t ~cone =
    Metrics.incr ~by:cone m_dirty;
    if Domain.is_main_domain () then
      Metrics.observe h_cone (float_of_int cone);
    recompute_critical t

  let require_gate t id =
    if not (Incr_sta.is_gate t.ist id) then
      invalid_arg "Power_model.Incr: node is not a gate"

  let set_width t id w =
    require_gate t id;
    begin_move t;
    t.design_journal <- Width (id, t.idesign.widths.(id)) :: t.design_journal;
    t.idesign.widths.(id) <- w;
    (* the gate's own delay/energy change, and so do its fanin drivers':
       their load includes this gate's input capacitance *)
    Incr_sta.mark_dirty t.ist id;
    Array.iter
      (fun f -> Incr_sta.mark_dirty t.ist f)
      (Circuit.node t.ienv.env_circuit id).Circuit.fanins;
    let cone =
      Incr_sta.propagate t.ist ~recompute:(fun ~id ~max_fanin_delay ->
          recompute t ~id ~max_fanin_delay)
    in
    finish_move t ~cone

  let set_vt t id vt =
    require_gate t id;
    begin_move t;
    t.design_journal <- Vt (id, t.idesign.vt.(id)) :: t.design_journal;
    t.idesign.vt.(id) <- vt;
    (* a threshold change is local: no other gate's load or context moves *)
    Incr_sta.mark_dirty t.ist id;
    let cone =
      Incr_sta.propagate t.ist ~recompute:(fun ~id ~max_fanin_delay ->
          recompute t ~id ~max_fanin_delay)
    in
    finish_move t ~cone

  let full_refresh t =
    Metrics.incr m_fallbacks;
    Incr_sta.refresh t.ist ~recompute:(fun ~id ~max_fanin_delay ->
        recompute t ~id ~max_fanin_delay);
    finish_move t ~cone:(Array.length t.ienv.gates_topo)

  let set_vdd t vdd =
    begin_move t;
    t.design_journal <- Vdd (t.idesign.vdd, t.icache) :: t.design_journal;
    t.idesign.vdd <- vdd;
    t.icache <- drive_cache t.ienv ~vdd;
    full_refresh t

  let set_vt_uniform t vt =
    begin_move t;
    t.design_journal <- Vt_all (Array.copy t.idesign.vt) :: t.design_journal;
    Array.iter (fun id -> t.idesign.vt.(id) <- vt) t.ienv.gates_topo;
    full_refresh t

  let clear_journals t =
    List.iter (fun (id, _, _, _) -> t.term_journaled.(id) <- false)
      t.term_journal;
    t.term_journal <- [];
    t.design_journal <- [];
    t.saved <- None

  let commit t =
    Incr_sta.commit t.ist;
    clear_journals t

  let rollback t =
    Incr_sta.rollback t.ist;
    List.iter
      (fun (id, st, dy, sc) ->
        t.term_journaled.(id) <- false;
        t.st_terms.(id) <- st;
        t.dy_terms.(id) <- dy;
        t.sc_terms.(id) <- sc)
      t.term_journal;
    t.term_journal <- [];
    (* newest first: replaying the whole list leaves the oldest (= original)
       value of any field written twice *)
    List.iter
      (function
        | Width (id, w) -> t.idesign.widths.(id) <- w
        | Vt (id, v) -> t.idesign.vt.(id) <- v
        | Vdd (v, cache) ->
          t.idesign.vdd <- v;
          t.icache <- cache
        | Vt_all old -> Array.blit old 0 t.idesign.vt 0 (Array.length old))
      t.design_journal;
    t.design_journal <- [];
    (match t.saved with
    | Some (st, dy, sc, crit) ->
      t.st_total <- st;
      t.dy_total <- dy;
      t.sc_total <- sc;
      t.crit <- crit
    | None -> ());
    t.saved <- None

  let static_energy t = t.st_total
  let dynamic_energy t = t.dy_total
  let short_circuit_energy t = t.sc_total
  let total_energy t = t.st_total +. t.dy_total +. t.sc_total
  let critical_delay t = t.crit

  let feasible t =
    match t.ienv.req_times with
    | None -> t.crit <= t.ienv.tc *. (1.0 +. 1e-6)
    | Some _ ->
      arrivals_feasible t.ienv ~critical_delay:t.crit
        (Incr_sta.arrivals t.ist)

  let critical_path t =
    Dcopt_timing.Sta.critical_path_of_arrival t.ienv.env_circuit
      ~arrival:(Incr_sta.arrivals t.ist) ~delays:(Incr_sta.delays t.ist)

  let snapshot t =
    {
      static_energy = t.st_total;
      dynamic_energy = t.dy_total;
      short_circuit_energy = t.sc_total;
      total_energy = total_energy t;
      static_power = t.st_total *. t.ienv.fc;
      dynamic_power = (t.dy_total +. t.sc_total) *. t.ienv.fc;
      delays = Array.copy (Incr_sta.delays t.ist);
      critical_delay = t.crit;
      feasible = feasible t;
    }
end
