(** Threshold-variation robustness analysis (paper Fig. 2(a)).

    The paper modifies the optimizer to use worst-case threshold values
    during delay and power computation: the optimized circuit must meet
    timing with every threshold at [vt (1 + tol)] (slow corner), while the
    reported worst-case power takes [vt (1 - tol)] (leaky corner). The
    savings relative to the nominal Table-1 baseline shrink as the
    tolerance grows — quantifying how much of the ultra-low-power window
    process control buys. *)

val corner_optimize :
  ?m_steps:int ->
  Power_model.env ->
  budgets:float array ->
  tolerance:float ->
  Solution.t option
(** Joint optimization under a symmetric +/-[tolerance] (fraction, e.g.
    0.1 = 10%%) threshold spread. The returned solution's evaluation is the
    leaky-corner (worst-case) power; [meets_budgets] reflects slow-corner
    timing. *)

type point = {
  tolerance_pct : float;    (** tolerance in percent *)
  worst_case_energy : float;(** leaky-corner total energy per cycle, J *)
  savings : float;          (** baseline energy / worst-case energy *)
}

val savings_curve :
  ?m_steps:int ->
  Power_model.env ->
  budgets:float array ->
  baseline_energy:float ->
  tolerances:float array ->
  point array
(** One {!point} per tolerance (fractions); tolerances where the slow
    corner is unoptimizable are skipped. *)
