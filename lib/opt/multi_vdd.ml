module Circuit = Dcopt_netlist.Circuit
module Tech = Dcopt_device.Tech
module Delay = Dcopt_device.Delay
module Energy = Dcopt_device.Energy
module Numeric = Dcopt_util.Numeric

type assignment = {
  uses_low : bool array;
  low_count : int;
  converter_count : int;
}

(* Level-converter model: a small dual-rail stage. Its delay is two
   inverter-ish delays driven at the low supply; its switching energy is a
   6-w-unit gate load at the high supply. *)
let converter_load tech =
  { Delay.no_load with Delay.cap_wire = 4.0 *. tech.Tech.c_gate }

let converter_delay tech ~vdd_low ~vt =
  2.0 *. Delay.gate_delay tech ~vdd:vdd_low ~vt ~w:2.0 (converter_load tech)

let converter_energy tech ~vdd_high ~activity =
  0.5 *. activity *. vdd_high *. vdd_high *. (6.0 *. tech.Tech.c_gate)

type result = {
  solution : Solution.t;
  vdd_high : float;
  vdd_low : float;
  supply_assignment : assignment;
}

let classify env ~budgets ~slack_threshold =
  let circuit = Power_model.circuit env in
  let tech = Power_model.tech env in
  let n = Circuit.size circuit in
  let probe =
    Power_model.uniform_design env ~vdd:tech.Tech.vdd_max ~vt:tech.Tech.vt_min
      ~w:4.0
  in
  let uses_low = Array.make n false in
  let gates = Power_model.gate_ids env in
  Array.iter
    (fun id ->
      let mfd = Power_model.budget_fanin_delay env ~budgets id in
      let floor = Power_model.gate_delay env probe ~max_fanin_delay:mfd id in
      if budgets.(id) > slack_threshold *. floor then uses_low.(id) <- true)
    gates;
  (* Legalize (clustered voltage scaling): a low gate driving a high gate
     is promoted. Reverse topological sweeps converge because promotions
     only propagate toward the inputs. *)
  let changed = ref true in
  while !changed do
    changed := false;
    for i = Array.length gates - 1 downto 0 do
      let id = gates.(i) in
      if uses_low.(id) then begin
        let drives_high =
          Array.exists
            (fun g -> not uses_low.(g))
            (Circuit.fanouts circuit id)
        in
        if drives_high then begin
          uses_low.(id) <- false;
          changed := true
        end
      end
    done
  done;
  let low_count = ref 0 and converter_count = ref 0 in
  Array.iter
    (fun id ->
      if uses_low.(id) then begin
        incr low_count;
        if Circuit.is_output circuit id then incr converter_count
      end)
    gates;
  { uses_low; low_count = !low_count; converter_count = !converter_count }

let evaluate env assignment ~vdd_high ~vdd_low ~vt ~budgets =
  if vdd_low > vdd_high then invalid_arg "Multi_vdd.evaluate: vdd_low > vdd_high";
  let circuit = Power_model.circuit env in
  let tech = Power_model.tech env in
  let n = Circuit.size circuit in
  let fc = Power_model.clock_frequency env in
  let tc = Power_model.cycle_time env in
  let vt_array = Array.make n vt in
  let widths = Array.make n tech.Tech.w_min in
  let design_high = { Power_model.vdd = vdd_high; vt = vt_array; widths } in
  let design_low = { Power_model.vdd = vdd_low; vt = vt_array; widths } in
  (* Work on a private copy of the assignment: gates that cannot meet
     their budget on the low rail (or whose converter would not fit) are
     demoted to the high rail on the fly. Reverse topological order means
     consumers settle before producers, so a producer can check its final
     fanout rails for legality. *)
  let uses_low = Array.copy assignment.uses_low in
  let design_of id = if uses_low.(id) then design_low else design_high in
  let t_conv = converter_delay tech ~vdd_low ~vt in
  let budgets_adj = Array.copy budgets in
  let gates = Power_model.gate_ids env in
  let set_adjusted id =
    budgets_adj.(id) <-
      (if uses_low.(id) && Circuit.is_output circuit id then
         Float.max 1e-15 (budgets.(id) -. t_conv)
       else budgets.(id))
  in
  Array.iter set_adjusted gates;
  let all_met = ref true in
  for i = Array.length gates - 1 downto 0 do
    let id = gates.(i) in
    (* legality: a low gate must not drive a high gate *)
    if
      uses_low.(id)
      && Array.exists (fun g -> not uses_low.(g)) (Circuit.fanouts circuit id)
    then begin
      uses_low.(id) <- false;
      set_adjusted id
    end;
    let size () =
      Power_model.size_gate env (design_of id) ~budgets:budgets_adj id
    in
    match size () with
    | Some w -> widths.(id) <- w
    | None ->
      if uses_low.(id) then begin
        (* demote and retry at the high rail *)
        uses_low.(id) <- false;
        set_adjusted id;
        match size () with
        | Some w -> widths.(id) <- w
        | None ->
          widths.(id) <- tech.Tech.w_max;
          all_met := false
      end
      else begin
        widths.(id) <- tech.Tech.w_max;
        all_met := false
      end
  done;
  let assignment =
    let low_count = ref 0 and converter_count = ref 0 in
    Array.iter
      (fun id ->
        if uses_low.(id) then begin
          incr low_count;
          if Circuit.is_output circuit id then incr converter_count
        end)
      gates;
    { uses_low; low_count = !low_count; converter_count = !converter_count }
  in
  (* Evaluate with per-gate supplies and converter overheads. *)
  let delays = Array.make n 0.0 in
  let arrival = Array.make n 0.0 in
  let static_e = ref 0.0 and dynamic_e = ref 0.0 in
  Array.iter
    (fun id ->
      let nd = Circuit.node circuit id in
      let max_fanin_delay =
        Array.fold_left (fun acc f -> Float.max acc delays.(f)) 0.0
          nd.Circuit.fanins
      in
      let design = design_of id in
      let d = Power_model.gate_delay env design ~max_fanin_delay id in
      let d =
        if assignment.uses_low.(id) && Circuit.is_output circuit id then
          d +. t_conv
        else d
      in
      delays.(id) <- d;
      let worst =
        Array.fold_left (fun acc f -> Float.max acc arrival.(f)) 0.0
          nd.Circuit.fanins
      in
      arrival.(id) <- worst +. d;
      let vdd = design.Power_model.vdd in
      let load = Power_model.gate_load env design ~max_fanin_delay id in
      let activity = Power_model.activity env id in
      static_e :=
        !static_e +. Energy.static_energy tech ~fc ~vdd ~vt ~w:widths.(id);
      dynamic_e :=
        !dynamic_e
        +. Energy.dynamic_energy tech ~vdd ~w:widths.(id) ~activity ~load;
      if assignment.uses_low.(id) && Circuit.is_output circuit id then
        dynamic_e :=
          !dynamic_e +. converter_energy tech ~vdd_high ~activity)
    gates;
  let critical_delay =
    Array.fold_left (fun acc id -> Float.max acc arrival.(id)) 0.0
      (Circuit.outputs circuit)
  in
  if not !all_met then None
  else
    let evaluation =
      {
        Power_model.static_energy = !static_e;
        dynamic_energy = !dynamic_e;
        short_circuit_energy = 0.0;
        total_energy = !static_e +. !dynamic_e;
        static_power = !static_e *. fc;
        dynamic_power = !dynamic_e *. fc;
        delays;
        critical_delay;
        feasible = critical_delay <= tc *. (1.0 +. 1e-6);
      }
    in
    Some
      {
        solution =
          {
            Solution.label = "multi-vdd";
            design = design_high;
            evaluation;
            meets_budgets = true;
          };
        vdd_high;
        vdd_low;
        supply_assignment = assignment;
      }

let optimize ?(m_steps = 12) ?vt_fixed env ~budgets =
  let tech = Power_model.tech env in
  let single =
    Heuristic.optimize
      ~options:{ Heuristic.m_steps; strategy = Heuristic.Grid_refine;
                 vt_fixed }
      env ~budgets
  in
  match single with
  | None -> None
  | Some incumbent ->
    let vdd0 = Solution.vdd incumbent in
    let vt0 =
      match Solution.vt_values incumbent with
      | v :: _ -> v
      | [] -> tech.Tech.vt_min
    in
    let assignment = classify env ~budgets ~slack_threshold:1.5 in
    let baseline =
      {
        solution = { incumbent with Solution.label = "multi-vdd" };
        vdd_high = vdd0;
        vdd_low = vdd0;
        supply_assignment =
          {
            uses_low = Array.make (Circuit.size (Power_model.circuit env)) false;
            low_count = 0;
            converter_count = 0;
          };
      }
    in
    if assignment.low_count = 0 then Some baseline
    else begin
      let best = ref baseline in
      let consider r =
        if
          Solution.feasible r.solution
          && Solution.total_energy r.solution
             < Solution.total_energy !best.solution
        then best := r
      in
      let c = Numeric.clamp ~lo:tech.Tech.vdd_min ~hi:tech.Tech.vdd_max in
      Array.iter
        (fun vdd_high ->
          Array.iter
            (fun frac ->
              let vdd_low = c (frac *. vdd_high) in
              Array.iter
                (fun vt ->
                  match
                    evaluate env assignment ~vdd_high ~vdd_low ~vt ~budgets
                  with
                  | Some r -> consider r
                  | None -> ())
                (match vt_fixed with
                | Some vt -> [| vt |]
                | None ->
                  Numeric.linspace
                    ~lo:(Numeric.clamp ~lo:tech.Tech.vt_min
                           ~hi:tech.Tech.vt_max (vt0 *. 0.8))
                    ~hi:(Numeric.clamp ~lo:tech.Tech.vt_min
                           ~hi:tech.Tech.vt_max (vt0 *. 1.25))
                    ~n:4))
            [| 0.5; 0.65; 0.8; 1.0 |])
        (Numeric.linspace ~lo:(c (vdd0 *. 0.9)) ~hi:(c (vdd0 *. 1.3)) ~n:4);
      Some !best
    end
