(** Multi-pass simulated-annealing comparator (paper §4.3/§5).

    The paper implemented an annealing-based optimizer over the same
    variables "for evaluation purposes" and found the Procedure-2 heuristic
    consistently better, because the problem (two global voltages plus N
    widths) is too large for annealing to converge in practical time. This
    module reproduces that comparison. *)

type options = {
  passes : int;           (** independent restarts, default 3 *)
  moves_per_pass : int;   (** default 4000 *)
  initial_temperature : float; (** in relative-energy units, default 0.5 *)
  cooling : float;        (** geometric factor per move, default derived *)
  seed : int64;           (** default 0x5EEDL *)
  warm_start : bool;
    (** false (default, the paper's setting): start each pass from a cold
        mid-range design the walk must shape itself; true: start from a
        feasible Procedure-2-style sized design — an extension under which
        annealing becomes competitive (see EXPERIMENTS.md). *)
  checkpoint : string option;
    (** directory for crash-safe per-pass checkpoints (default [None]).
        Each completed pass atomically writes [pass<i>.json] — version,
        the run's full identity (seed, options, the pass's pre-split PRNG
        state) and its best solution (or null). A rerun with the same
        identity skips every checkpointed pass and recomputes only the
        missing ones, producing the same result as an uninterrupted run;
        stale or corrupt files (different identity, unparsable) are
        ignored and the pass reruns. Counted under
        [anneal.checkpoint.hits]/[anneal.checkpoint.writes]. Resumed
        passes do not re-emit their telemetry stream. *)
}

val default_options : options

val optimize :
  ?observer:Dcopt_obs.Telemetry.observer ->
  ?options:options ->
  Power_model.env ->
  budgets:float array ->
  Solution.t option
(** Best feasible design found across all passes; the cost function is
    total energy plus a steep penalty for exceeding the cycle time. May
    return [None] when no pass ever reaches feasibility.
    [observer] receives one record per proposed move (accepted or not),
    indexed globally across passes. *)
