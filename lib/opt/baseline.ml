let default_vt = 0.7

let optimize ?observer ?(vt = default_vt) ?(m_steps = 16) env ~budgets =
  let observer =
    Option.map (Dcopt_obs.Telemetry.relabel "baseline") observer
  in
  let options =
    {
      Heuristic.m_steps;
      strategy = Heuristic.Grid_refine;
      vt_fixed = Some vt;
    }
  in
  match Heuristic.optimize ?observer ~options env ~budgets with
  | None -> None
  | Some sol -> Some { sol with Solution.label = "baseline" }
