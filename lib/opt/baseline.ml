let default_vt = 0.7

let optimize ?(vt = default_vt) ?(m_steps = 16) env ~budgets =
  let options =
    {
      Heuristic.m_steps;
      strategy = Heuristic.Grid_refine;
      vt_fixed = Some vt;
    }
  in
  match Heuristic.optimize ~options env ~budgets with
  | None -> None
  | Some sol -> Some { sol with Solution.label = "baseline" }
