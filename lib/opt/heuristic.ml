module Tech = Dcopt_device.Tech
module Telemetry = Dcopt_obs.Telemetry

type strategy = Paper_binary | Grid_refine

type options = {
  m_steps : int;
  strategy : strategy;
  vt_fixed : float option;
}

let default_options = { m_steps = 16; strategy = Paper_binary; vt_fixed = None }

let sizing_solution env ~budgets ~vdd ~vt =
  let n = Dcopt_netlist.Circuit.size (Power_model.circuit env) in
  let vt_array = Array.make n vt in
  let design, ok = Power_model.size_all env ~vdd ~vt:vt_array ~budgets in
  Solution.make ~label:"sizing" ~meets_budgets:ok env design

(* One trial: size at (vdd, vt), report (feasible-with-budgets, energy,
   solution) and feed the convergence-telemetry stream. The pure sizing
   part is split out so grid scans can run trials on the Par pool and
   emit sequentially afterwards. *)
let joint_trial env ~budgets ~vdd ~vt =
  let sol =
    { (sizing_solution env ~budgets ~vdd ~vt) with Solution.label = "joint" }
  in
  let ok = sol.Solution.meets_budgets && Solution.feasible sol in
  (ok, sol)

let trial ~emit env ~budgets ~vdd ~vt =
  let ok, sol = joint_trial env ~budgets ~vdd ~vt in
  emit ~vdd ~vt ~ok sol;
  (ok, sol)

let vt_search ~emit env ~budgets ~vdd ~m ~vt_fixed =
  match vt_fixed with
  | Some vt ->
    let _, sol = trial ~emit env ~budgets ~vdd ~vt in
    Some sol
  | None ->
    let tech = Power_model.tech env in
    let best = ref None in
    let lo = ref tech.Tech.vt_min and hi = ref tech.Tech.vt_max in
    let prev_energy = ref infinity in
    for _ = 1 to m do
      let vt = 0.5 *. (!lo +. !hi) in
      let ok, sol = trial ~emit env ~budgets ~vdd ~vt in
      let energy = Solution.total_energy sol in
      if ok then best := Solution.better !best sol;
      (* Procedure 2: feasible and improving -> raise the threshold to cut
         leakage further; otherwise retreat to faster, lower thresholds. *)
      if ok && energy < !prev_energy then begin
        prev_energy := energy;
        lo := vt
      end
      else hi := vt
    done;
    !best

let paper_binary ~emit env ~budgets ~m ~vt_fixed =
  let tech = Power_model.tech env in
  let best = ref None in
  let lo = ref tech.Tech.vdd_min and hi = ref tech.Tech.vdd_max in
  let prev_energy = ref infinity in
  for _ = 1 to m do
    let vdd = 0.5 *. (!lo +. !hi) in
    let inner = vt_search ~emit env ~budgets ~vdd ~m ~vt_fixed in
    let ok, energy =
      match inner with
      | Some sol ->
        best := Solution.better !best sol;
        ( sol.Solution.meets_budgets && Solution.feasible sol,
          Solution.total_energy sol )
      | None -> (false, infinity)
    in
    if ok && energy < !prev_energy then begin
      prev_energy := energy;
      hi := vdd (* feasible and improving: push the supply lower *)
    end
    else lo := vdd
  done;
  !best

let grid_refine ~emit env ~budgets ~m ~vt_fixed =
  let tech = Power_model.tech env in
  let best = ref None in
  let vt_points lo hi n =
    match vt_fixed with
    | Some vt -> [| vt |]
    | None -> Dcopt_util.Numeric.linspace ~lo ~hi ~n
  in
  (* Grid points are independent sizings: run them on the Par pool, then
     emit telemetry and fold the incumbent in scan order, so the trial
     stream and the chosen optimum are identical at any --jobs. *)
  let scan vdd_lo vdd_hi vt_lo vt_hi n =
    let vdds = Dcopt_util.Numeric.log_interp_points ~lo:vdd_lo ~hi:vdd_hi ~n in
    let vts = vt_points vt_lo vt_hi n in
    let points =
      Array.concat
        (Array.to_list
           (Array.map (fun vdd -> Array.map (fun vt -> (vdd, vt)) vts) vdds))
    in
    let results =
      Dcopt_par.Par.map ~site:"heuristic.grid"
        (fun (vdd, vt) -> joint_trial env ~budgets ~vdd ~vt)
        points
    in
    Array.iteri
      (fun i (ok, sol) ->
        let vdd, vt = points.(i) in
        emit ~vdd ~vt ~ok sol;
        if ok then best := Solution.better !best sol)
      results
  in
  (* Capped at m so the two coarse^2 scans keep the whole optimizer within
     its documented O(M^3)-sizings bound even when this runs as the
     fallback after a failed M^2-trial binary search (for every m >= 8 the
     cap is inactive and the grid is exactly the historical max 8 (m/2)). *)
  let coarse = min m (max 8 (m / 2)) in
  scan tech.Tech.vdd_min tech.Tech.vdd_max tech.Tech.vt_min tech.Tech.vt_max
    coarse;
  (match !best with
  | None -> ()
  | Some sol ->
    (* refine around the incumbent with a window one coarse step wide *)
    let vdd0 = Solution.vdd sol in
    let vt0 =
      match Solution.vt_values sol with
      | v :: _ -> v
      | [] -> tech.Tech.vt_min
    in
    let span_vdd = (tech.Tech.vdd_max -. tech.Tech.vdd_min) /. float_of_int coarse in
    let span_vt = (tech.Tech.vt_max -. tech.Tech.vt_min) /. float_of_int coarse in
    let clampv = Dcopt_util.Numeric.clamp in
    scan
      (clampv ~lo:tech.Tech.vdd_min ~hi:tech.Tech.vdd_max (vdd0 -. span_vdd))
      (clampv ~lo:tech.Tech.vdd_min ~hi:tech.Tech.vdd_max (vdd0 +. span_vdd))
      (clampv ~lo:tech.Tech.vt_min ~hi:tech.Tech.vt_max (vt0 -. span_vt))
      (clampv ~lo:tech.Tech.vt_min ~hi:tech.Tech.vt_max (vt0 +. span_vt))
      coarse);
  !best

let optimize ?observer ?(options = default_options) env ~budgets =
  let m = max 4 options.m_steps in
  let trials = ref 0 in
  let emit ~vdd ~vt ~ok sol =
    let index = !trials in
    incr trials;
    match observer with
    | None -> ()
    | Some obs ->
      obs
        {
          Telemetry.optimizer = "heuristic";
          index;
          vdd;
          vt;
          static_energy = Solution.static_energy sol;
          dynamic_energy = Solution.dynamic_energy sol;
          total_energy = Solution.total_energy sol;
          feasible = ok;
        }
  in
  let result =
    match options.strategy with
    | Paper_binary -> paper_binary ~emit env ~budgets ~m ~vt_fixed:options.vt_fixed
    | Grid_refine -> grid_refine ~emit env ~budgets ~m ~vt_fixed:options.vt_fixed
  in
  (* The binary search can start in an infeasible half-space and converge
     to nothing; fall back on the exhaustive scan before giving up. *)
  let result =
    match (result, options.strategy) with
    | None, Paper_binary ->
      grid_refine ~emit env ~budgets ~m ~vt_fixed:options.vt_fixed
    | r, _ -> r
  in
  (* Procedure 2's complexity claim: M vdd steps x M vt steps around an
     M-step per-gate width search = O(M^3) sizings, i.e. at most M^2
     (vdd, vt) trials for the binary strategy and 3 M^2 with the capped
     grid fallback on top — never more than M^3 trials total. *)
  assert (!trials <= m * m * m);
  result
