(** Procedure 2: joint (Vdd, Vts, w_i) minimization (paper §4.3).

    After Procedure 1 has fixed a delay budget per gate, the optimizer
    searches one global supply voltage and one global threshold (the
    paper's practical single-Vdd/single-Vt case; see {!Multi_vt} for
    n_v > 1), sizing every gate to the minimum width that meets its budget
    at each trial point. Power and delay being monotone in each variable
    separately, nested binary searches converge in O(M^3) circuit
    sizings. *)

type strategy =
  | Paper_binary
    (** the paper's Procedure 2 verbatim: nested M-step binary searches on
        Vdd and Vts around per-gate width searches *)
  | Grid_refine
    (** a coarse (Vdd x Vts) grid scan followed by local refinement —
        a robustness reference for the binary heuristic *)

type options = {
  m_steps : int;       (** the paper's M, default 16 *)
  strategy : strategy; (** default [Paper_binary] *)
  vt_fixed : float option;
    (** when set, the threshold is pinned (used by {!Baseline}) *)
}

val default_options : options

val optimize :
  ?observer:Dcopt_obs.Telemetry.observer ->
  ?options:options ->
  Power_model.env ->
  budgets:float array ->
  Solution.t option
(** Best feasible single-Vt solution found, or [None] when even the
    fastest corner (max Vdd, min Vt, max widths) misses some budget.

    [observer] receives one {!Dcopt_obs.Telemetry.iteration} record per
    (vdd, vt) sizing trial, in evaluation order; when omitted the trial
    loop pays only a single [match] per iteration. The total trial count
    is asserted to stay within [m_steps^3] — the paper's O(M^3)-sizings
    complexity claim, kept as a runtime invariant. *)

val sizing_solution :
  Power_model.env -> budgets:float array -> vdd:float -> vt:float ->
  Solution.t
(** One sizing pass at a fixed operating point (exposed for sweeps and
    tests). *)
