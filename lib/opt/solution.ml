type t = {
  label : string;
  design : Power_model.design;
  evaluation : Power_model.evaluation;
  meets_budgets : bool;
}

let make ~label ~meets_budgets env design =
  { label; design; evaluation = Power_model.evaluate env design; meets_budgets }

let of_evaluation ~label ~meets_budgets design evaluation =
  { label; design; evaluation; meets_budgets }

let vdd t = t.design.Power_model.vdd

let vt_values t =
  let seen = Hashtbl.create 4 in
  Array.iter
    (fun v -> Hashtbl.replace seen v ())
    t.design.Power_model.vt;
  Hashtbl.fold (fun v () acc -> v :: acc) seen []
  |> List.sort_uniq Float.compare

let gate_widths t env =
  Array.map
    (fun id -> t.design.Power_model.widths.(id))
    (Power_model.unsafe_gate_ids env)

let mean_width t env = Dcopt_util.Stats.mean (gate_widths t env)

let active_area t env =
  let tech = Power_model.tech env in
  let f = tech.Dcopt_device.Tech.feature_size in
  Array.fold_left
    (fun acc w -> acc +. (w *. (1.0 +. tech.Dcopt_device.Tech.beta_ratio) *. f *. f))
    0.0 (gate_widths t env)
let max_width t env = snd (Dcopt_util.Stats.min_max (gate_widths t env))

let total_energy t = t.evaluation.Power_model.total_energy
let static_energy t = t.evaluation.Power_model.static_energy
let dynamic_energy t = t.evaluation.Power_model.dynamic_energy
let critical_delay t = t.evaluation.Power_model.critical_delay
let feasible t = t.evaluation.Power_model.feasible

let savings ~baseline t = total_energy baseline /. total_energy t

let better best candidate =
  match best with
  | None -> if feasible candidate then Some candidate else None
  | Some current ->
    if feasible candidate && total_energy candidate < total_energy current then
      Some candidate
    else best

let describe env t =
  let vts =
    vt_values t
    |> List.map (fun v -> Printf.sprintf "%.0f mV" (v *. 1000.0))
    |> String.concat ", "
  in
  let module Si = Dcopt_util.Si in
  Printf.sprintf
    "%s: Vdd = %.3f V, Vt = {%s}, widths mean %.1f max %.0f, area %s\n\
    \  static %s  dynamic %s  total %s per cycle\n\
    \  critical delay %s (cycle %s)  feasible = %b, budgets met = %b"
    t.label (vdd t) vts (mean_width t env) (max_width t env)
    (Printf.sprintf "%.1f um^2" (active_area t env *. 1e12))
    (Si.format ~unit:"J" (static_energy t))
    (Si.format ~unit:"J" (dynamic_energy t))
    (Si.format ~unit:"J" (total_energy t))
    (Si.format ~unit:"s" (critical_delay t))
    (Si.format ~unit:"s" (Power_model.cycle_time env))
    (feasible t) t.meets_budgets
