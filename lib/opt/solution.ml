type t = {
  label : string;
  design : Power_model.design;
  evaluation : Power_model.evaluation;
  meets_budgets : bool;
}

let make ~label ~meets_budgets env design =
  { label; design; evaluation = Power_model.evaluate env design; meets_budgets }

let of_evaluation ~label ~meets_budgets design evaluation =
  { label; design; evaluation; meets_budgets }

let vdd t = t.design.Power_model.vdd

let vt_values t =
  let seen = Hashtbl.create 4 in
  Array.iter
    (fun v -> Hashtbl.replace seen v ())
    t.design.Power_model.vt;
  Hashtbl.fold (fun v () acc -> v :: acc) seen []
  |> List.sort_uniq Float.compare

let gate_widths t env =
  Array.map
    (fun id -> t.design.Power_model.widths.(id))
    (Power_model.unsafe_gate_ids env)

let mean_width t env = Dcopt_util.Stats.mean (gate_widths t env)

let active_area t env =
  let tech = Power_model.tech env in
  let f = tech.Dcopt_device.Tech.feature_size in
  Array.fold_left
    (fun acc w -> acc +. (w *. (1.0 +. tech.Dcopt_device.Tech.beta_ratio) *. f *. f))
    0.0 (gate_widths t env)
let max_width t env = snd (Dcopt_util.Stats.min_max (gate_widths t env))

let total_energy t = t.evaluation.Power_model.total_energy
let static_energy t = t.evaluation.Power_model.static_energy
let dynamic_energy t = t.evaluation.Power_model.dynamic_energy
let critical_delay t = t.evaluation.Power_model.critical_delay
let feasible t = t.evaluation.Power_model.feasible

let savings ~baseline t = total_energy baseline /. total_energy t

let better best candidate =
  match best with
  | None -> if feasible candidate then Some candidate else None
  | Some current ->
    if feasible candidate && total_energy candidate < total_energy current then
      Some candidate
    else best

(* ------------------------------------------------------------------ *)
(* JSON (schema version 1). The design and evaluation arrays are
   serialized in full (indexed by node id), so a decoded solution is
   field-for-field and bit-for-bit the one that was encoded — the service
   result cache depends on this to replay cached rows byte-identically. *)

module Json = Dcopt_util.Json

let json_schema_version = 1

let float_array_json a =
  Json.List (List.map (fun f -> Json.Float f) (Array.to_list a))

let to_json t =
  let d = t.design and e = t.evaluation in
  Json.Obj
    [
      ("version", Json.Int json_schema_version);
      ("label", Json.String t.label);
      ("meets_budgets", Json.Bool t.meets_budgets);
      ( "design",
        Json.Obj
          [
            ("vdd", Json.Float d.Power_model.vdd);
            ("vt", float_array_json d.Power_model.vt);
            ("widths", float_array_json d.Power_model.widths);
          ] );
      ( "evaluation",
        Json.Obj
          [
            ("static_energy", Json.Float e.Power_model.static_energy);
            ("dynamic_energy", Json.Float e.Power_model.dynamic_energy);
            ( "short_circuit_energy",
              Json.Float e.Power_model.short_circuit_energy );
            ("total_energy", Json.Float e.Power_model.total_energy);
            ("static_power", Json.Float e.Power_model.static_power);
            ("dynamic_power", Json.Float e.Power_model.dynamic_power);
            ("delays", float_array_json e.Power_model.delays);
            ("critical_delay", Json.Float e.Power_model.critical_delay);
            ("feasible", Json.Bool e.Power_model.feasible);
          ] );
    ]

let ( let* ) = Result.bind

let req json name conv =
  match Json.field name json with
  | None -> Error (Printf.sprintf "solution: missing field %S" name)
  | Some v -> (
    match conv v with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "solution: field %S has the wrong type" name))

let float_array_of json name =
  let* items = req json name Json.get_list in
  let rec convert acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | v :: rest -> (
      match Json.get_float v with
      | Some f -> convert (f :: acc) rest
      | None ->
        Error (Printf.sprintf "solution: %S must be an array of numbers" name))
  in
  convert [] items

let of_json json =
  let* version = req json "version" Json.get_int in
  if version <> json_schema_version then
    Error (Printf.sprintf "solution: unsupported version %d" version)
  else
    let* label = req json "label" Json.get_string in
    let* meets_budgets = req json "meets_budgets" Json.get_bool in
    let* d = req json "design" Option.some in
    let* vdd = req d "vdd" Json.get_float in
    let* vt = float_array_of d "vt" in
    let* widths = float_array_of d "widths" in
    let* e = req json "evaluation" Option.some in
    let* static_energy = req e "static_energy" Json.get_float in
    let* dynamic_energy = req e "dynamic_energy" Json.get_float in
    let* short_circuit_energy = req e "short_circuit_energy" Json.get_float in
    let* total_energy = req e "total_energy" Json.get_float in
    let* static_power = req e "static_power" Json.get_float in
    let* dynamic_power = req e "dynamic_power" Json.get_float in
    let* delays = float_array_of e "delays" in
    let* critical_delay = req e "critical_delay" Json.get_float in
    let* feasible = req e "feasible" Json.get_bool in
    Ok
      {
        label;
        meets_budgets;
        design = { Power_model.vdd; vt; widths };
        evaluation =
          {
            Power_model.static_energy;
            dynamic_energy;
            short_circuit_energy;
            total_energy;
            static_power;
            dynamic_power;
            delays;
            critical_delay;
            feasible;
          };
      }

let slack_profile env t =
  let cycle = Power_model.cycle_time env in
  let sta =
    Dcopt_timing.Flat_sta.analyze ~required_time:cycle
      ?required_times:(Power_model.required_times env)
      ?arrival_offsets:(Power_model.arrival_offsets env)
      (Power_model.flat env)
      ~delays:t.evaluation.Power_model.delays
  in
  let worst = ref infinity and near = ref 0 in
  Array.iter
    (fun s ->
      if s < !worst then worst := s;
      if s <= 0.05 *. cycle then incr near)
    sta.Dcopt_timing.Flat_sta.slack;
  (!worst, !near)

let describe env t =
  let vts =
    vt_values t
    |> List.map (fun v -> Printf.sprintf "%.0f mV" (v *. 1000.0))
    |> String.concat ", "
  in
  let worst_slack, near_critical = slack_profile env t in
  let module Si = Dcopt_util.Si in
  Printf.sprintf
    "%s: Vdd = %.3f V, Vt = {%s}, widths mean %.1f max %.0f, area %s\n\
    \  static %s  dynamic %s  total %s per cycle\n\
    \  critical delay %s (cycle %s)  feasible = %b, budgets met = %b\n\
    \  worst slack %s, %d nodes within 5%% of the cycle time"
    t.label (vdd t) vts (mean_width t env) (max_width t env)
    (Printf.sprintf "%.1f um^2" (active_area t env *. 1e12))
    (Si.format ~unit:"J" (static_energy t))
    (Si.format ~unit:"J" (dynamic_energy t))
    (Si.format ~unit:"J" (total_energy t))
    (Si.format ~unit:"s" (critical_delay t))
    (Si.format ~unit:"s" (Power_model.cycle_time env))
    (feasible t) t.meets_budgets
    (Si.format ~unit:"s" worst_slack)
    near_critical
