module Tech = Dcopt_device.Tech
module Numeric = Dcopt_util.Numeric

type point = {
  tolerance_pct : float;
  worst_case_energy : float;
  savings : float;
}

(* One corner-aware trial: timing closed at vt(1+tol), energy booked at
   vt(1-tol) with the widths the slow corner required. *)
let corner_trial env ~budgets ~tolerance ~vdd ~vt =
  let circuit = Power_model.circuit env in
  let n = Dcopt_netlist.Circuit.size circuit in
  let vt_slow = Array.make n (vt *. (1.0 +. tolerance)) in
  let vt_leaky = Array.make n (vt *. (1.0 -. tolerance)) in
  let design_slow, ok = Power_model.size_all env ~vdd ~vt:vt_slow ~budgets in
  let design_leaky = { design_slow with Power_model.vt = vt_leaky } in
  let sol =
    Solution.make ~label:"corner" ~meets_budgets:ok env design_leaky
  in
  (ok, sol)

let corner_optimize ?(m_steps = 12) env ~budgets ~tolerance =
  assert (tolerance >= 0.0 && tolerance < 1.0);
  let tech = Power_model.tech env in
  (* The slow corner must stay inside the manufacturable threshold range. *)
  let vt_hi = tech.Tech.vt_max /. (1.0 +. tolerance) in
  let best = ref None in
  let scan vdd_lo vdd_hi vt_lo vt_hi n =
    let vdds = Numeric.log_interp_points ~lo:vdd_lo ~hi:vdd_hi ~n in
    let vts = Numeric.linspace ~lo:vt_lo ~hi:vt_hi ~n in
    Array.iter
      (fun vdd ->
        Array.iter
          (fun vt ->
            let ok, sol = corner_trial env ~budgets ~tolerance ~vdd ~vt in
            if ok then best := Solution.better !best sol)
          vts)
      vdds
  in
  scan tech.Tech.vdd_min tech.Tech.vdd_max tech.Tech.vt_min vt_hi
    (max 8 m_steps);
  (match !best with
  | None -> ()
  | Some sol ->
    let vdd0 = Solution.vdd sol in
    let vt0 =
      (* recover the nominal vt: the stored design carries the leaky corner *)
      match Solution.vt_values sol with
      | v :: _ -> v /. (1.0 -. tolerance)
      | [] -> tech.Tech.vt_min
    in
    let span_vdd = (tech.Tech.vdd_max -. tech.Tech.vdd_min)
                   /. float_of_int (max 8 m_steps) in
    let span_vt = (vt_hi -. tech.Tech.vt_min) /. float_of_int (max 8 m_steps) in
    let c = Numeric.clamp in
    scan
      (c ~lo:tech.Tech.vdd_min ~hi:tech.Tech.vdd_max (vdd0 -. span_vdd))
      (c ~lo:tech.Tech.vdd_min ~hi:tech.Tech.vdd_max (vdd0 +. span_vdd))
      (c ~lo:tech.Tech.vt_min ~hi:vt_hi (vt0 -. span_vt))
      (c ~lo:tech.Tech.vt_min ~hi:vt_hi (vt0 +. span_vt))
      (max 8 m_steps));
  !best

let savings_curve ?m_steps env ~budgets ~baseline_energy ~tolerances =
  (* Tolerance points are independent corner optimizations: run them on
     the Par pool, keep the curve in input order. *)
  Dcopt_par.Par.map ~site:"variation.corners"
    (fun tolerance ->
      (tolerance, corner_optimize ?m_steps env ~budgets ~tolerance))
    tolerances
  |> Array.to_list
  |> List.filter_map (fun (tolerance, result) ->
         match result with
         | None -> None
         | Some sol ->
           let e = Solution.total_energy sol in
           Some
             {
               tolerance_pct = tolerance *. 100.0;
               worst_case_energy = e;
               savings = baseline_energy /. e;
             })
  |> Array.of_list
