(** Multiple-threshold extension (the paper's n_v > 1 case, §2/§4).

    The paper allows a bounded number of distinct threshold values, each
    extra value costing an implant mask or an extra tub bias (Fig. 1).
    This module assigns gates to [n_vt] threshold classes by delay-budget
    slack — timing-critical gates get the fast (low) threshold, slack-rich
    gates the leaky-proof (high) one — and then optimizes the class values
    by coordinate descent around the single-Vt optimum. *)

val classify :
  Power_model.env -> budgets:float array -> classes:int -> int array
(** Per-node class index in \[0, classes): class 0 holds the gates with the
    tightest budget-to-fast-corner ratio. Input nodes get class 0. *)

val greedy_dual_vt :
  ?vt_high_candidates:float array ->  (* default: a grid above the base vt *)
  Power_model.env ->
  Solution.t ->
  Solution.t
(** The classic slack-driven dual-Vt assignment: starting from a sized
    single-Vt design, visit gates in decreasing timing slack and promote
    each to the high threshold when the whole circuit still meets the
    cycle time afterwards (widths untouched). Scans several high-threshold
    candidates and keeps the best. Never worse than its input. *)

val optimize :
  ?m_steps:int ->
  ?n_vt:int ->           (* number of distinct thresholds, default 2 *)
  Power_model.env ->
  budgets:float array ->
  Solution.t option
(** Best feasible design with at most [n_vt] distinct thresholds: the
    class-based coordinate descent and (for [n_vt = 2]) the greedy
    slack-driven assignment, whichever wins. Never worse than the
    single-Vt optimum (contained as a degenerate assignment and used as
    the starting point). *)
