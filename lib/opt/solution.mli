(** Optimization outcomes and report helpers shared by all optimizers. *)

type t = {
  label : string;                  (** which optimizer produced it *)
  design : Power_model.design;
  evaluation : Power_model.evaluation;
  meets_budgets : bool;            (** every gate met its Procedure-1 budget *)
}

val make :
  label:string -> meets_budgets:bool ->
  Power_model.env -> Power_model.design -> t
(** Evaluates the design and packages it. *)

val of_evaluation :
  label:string -> meets_budgets:bool ->
  Power_model.design -> Power_model.evaluation -> t
(** Packages an already-computed evaluation (e.g. a {!Power_model.Incr}
    snapshot) without re-running the full model. *)

val vdd : t -> float

val vt_values : t -> float list
(** Distinct gate thresholds in the design, ascending (singleton for
    single-Vt designs). *)

val mean_width : t -> Power_model.env -> float
val max_width : t -> Power_model.env -> float

val active_area : t -> Power_model.env -> float
(** Total active (gate) area proxy in square metres: sum over gates of
    [w * (1 + beta) * F^2] — NMOS plus PMOS widths at minimum length. *)

val total_energy : t -> float
val static_energy : t -> float
val dynamic_energy : t -> float
val critical_delay : t -> float
val feasible : t -> bool

val savings : baseline:t -> t -> float
(** Total-energy ratio baseline/this — the paper's "Savings" column. *)

val better : t option -> t -> t option
(** Keep the lower-total-energy feasible solution; infeasible candidates
    never replace feasible ones. *)

val slack_profile : Power_model.env -> t -> float * int
(** [(worst_slack, near_critical)] of the solution's achieved delays
    against the env's constraint set (per-endpoint required times when
    the set is not scalar): the minimum slack over all nodes and
    the number of nodes with slack within 5% of the cycle time. Runs the
    levelized {!Dcopt_timing.Flat_sta} analyzer over the env's flat view
    (so reporting a solution also exercises — and instruments, via the
    [sta.level.*] metrics — the data-oriented timing core). *)

val describe : Power_model.env -> t -> string
(** Multi-line human-readable summary, including the {!slack_profile}
    line. *)

val to_json : t -> Dcopt_util.Json.t
(** Versioned JSON (schema version 1) carrying the full design and
    evaluation — including the per-node [vt]/[widths]/[delays] arrays —
    with exact float round-trips, so {!of_json} reproduces the solution
    bit-for-bit. Used by the service result cache and [minpower --json]. *)

val of_json : Dcopt_util.Json.t -> (t, string) result
