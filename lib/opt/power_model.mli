(** Circuit-level power and delay evaluation.

    Binds the device models (eqs. A1-A3), the wiring model and the activity
    profile to a concrete circuit, so the optimizers can evaluate a design
    point — a supply voltage, per-gate thresholds and per-gate widths — in
    O(gates). *)

type design = {
  vdd : float;
  vt : float array;     (** per node id; only gate entries are read *)
  widths : float array; (** per node id, in w-units; only gate entries read *)
}

type env
(** A circuit prepared for evaluation: per-gate structural loads, wire
    estimates and activities, plus the cycle-time constraint. *)

type evaluation = {
  static_energy : float;   (** total leakage energy per cycle, J *)
  dynamic_energy : float;  (** total switching energy per cycle, J *)
  short_circuit_energy : float;
    (** total crowbar energy per cycle, J; 0 unless the env enables the
        {!Dcopt_device.Short_circuit} extension *)
  total_energy : float;    (** sum of all components, J *)
  static_power : float;    (** W *)
  dynamic_power : float;   (** W *)
  delays : float array;    (** achieved per-gate delays, s *)
  critical_delay : float;  (** achieved critical path delay, s *)
  feasible : bool;         (** critical delay <= cycle time *)
}

val make_env :
  ?wiring:Dcopt_wiring.Wire_model.t ->
  ?po_pin_width:float ->   (* load of an output pin in w-units, default 4. *)
  ?include_short_circuit:bool ->
                           (* add the Veendrick crowbar term, default false
                              (the paper's Appendix A.1 setting) *)
  tech:Dcopt_device.Tech.t ->
  fc:float ->
  Dcopt_netlist.Circuit.t ->
  Dcopt_activity.Activity.profile ->
  env
(** Prepares a combinational circuit. The wiring model defaults to
    {!Dcopt_wiring.Wire_model.create} over the circuit's gate count.
    Raises [Invalid_argument] on sequential circuits or [fc <= 0]. *)

val tech : env -> Dcopt_device.Tech.t
val circuit : env -> Dcopt_netlist.Circuit.t
val cycle_time : env -> float
val clock_frequency : env -> float
val activity : env -> int -> float
(** Transition density at a node's output. *)

val gate_ids : env -> int array
(** Ids of the combinational gates, in topological order. *)

val uniform_design : env -> vdd:float -> vt:float -> w:float -> design
(** A design with one global threshold and width. *)

val gate_load : env -> design -> max_fanin_delay:float -> int -> Dcopt_device.Delay.load
(** The eq. A3 load record of a gate under the given fanout widths. *)

val gate_delay : env -> design -> max_fanin_delay:float -> int -> float
(** Single-gate delay under the design, with the driver delay supplied
    explicitly (budget-based during sizing, achieved during evaluation). *)

val budget_fanin_delay : env -> budgets:float array -> int -> float
(** Max of the drivers' delay budgets — the conservative driver delay used
    while sizing (a driver meeting its budget can only be faster). *)

val evaluate : env -> design -> evaluation
(** Full evaluation: achieved delays by topological propagation, energy
    totals over all gates, feasibility against the cycle time. *)

val size_gate :
  env -> design -> budgets:float array -> int -> float option
(** Minimum width in \[w_min, w_max\] meeting the gate's budget, assuming
    the design already fixes its fanouts' widths ({!size_all} processes
    gates in reverse topological order so this holds). [None] when even
    [w_max] misses the budget. *)

val size_all :
  env -> vdd:float -> vt:float array -> budgets:float array ->
  design * bool
(** Sizes every gate to its minimal feasible width (reverse topological
    order). The boolean is true when every gate met its budget; gates that
    could not are left at [w_max]. *)
