(** Circuit-level power and delay evaluation.

    Binds the device models (eqs. A1-A3), the wiring model and the activity
    profile to a concrete circuit, so the optimizers can evaluate a design
    point — a supply voltage, per-gate thresholds and per-gate widths — in
    O(gates). *)

type design = {
  mutable vdd : float;
                        (** mutable so {!Incr} global moves can swing the
                            supply in place; treat as read-only elsewhere *)
  vt : float array;     (** per node id; only gate entries are read *)
  widths : float array; (** per node id, in w-units; only gate entries read *)
}

type env
(** A circuit prepared for evaluation: per-gate structural loads, wire
    estimates and activities, plus the cycle-time constraint. *)

type evaluation = {
  static_energy : float;   (** total leakage energy per cycle, J *)
  dynamic_energy : float;  (** total switching energy per cycle, J *)
  short_circuit_energy : float;
    (** total crowbar energy per cycle, J; 0 unless the env enables the
        {!Dcopt_device.Short_circuit} extension *)
  total_energy : float;    (** sum of all components, J *)
  static_power : float;    (** W *)
  dynamic_power : float;   (** W *)
  delays : float array;    (** achieved per-gate delays, s *)
  critical_delay : float;  (** achieved critical path delay, s *)
  feasible : bool;         (** critical delay <= cycle time *)
}

val make_env :
  ?wiring:Dcopt_wiring.Wire_model.t ->
  ?po_pin_width:float ->   (* load of an output pin in w-units, default 4. *)
  ?include_short_circuit:bool ->
                           (* add the Veendrick crowbar term, default false
                              (the paper's Appendix A.1 setting) *)
  ?constraints:Dcopt_timing.Constraints.t ->
  ?vt_stress:float ->
  tech:Dcopt_device.Tech.t ->
  fc:float ->
  Dcopt_netlist.Circuit.t ->
  Dcopt_activity.Activity.profile ->
  env
(** Prepares a combinational circuit. The wiring model defaults to
    {!Dcopt_wiring.Wire_model.create} over the circuit's gate count.
    Raises [Invalid_argument] on sequential circuits or [fc <= 0].

    [constraints] (default: the scalar compatibility set for [1/fc])
    makes every feasibility verdict per-endpoint: an evaluation is
    feasible when each primary output arrives by its own
    {!Dcopt_timing.Constraints.required_times} seed, and constraint
    input delays seed the arrival sweep. A scalar set is bit-identical
    to the legacy single-cycle-time behaviour.

    [vt_stress] (default 1.0) is the process-corner threshold
    multiplier: every threshold the device model reads becomes
    [vt *. vt_stress] ({!Dcopt_opt.Variation} semantics — slow corner =
    [1 + tolerance]). The design records keep nominal thresholds; 1.0
    is the bit-exact identity. *)

val tech : env -> Dcopt_device.Tech.t
val circuit : env -> Dcopt_netlist.Circuit.t

val constraints : env -> Dcopt_timing.Constraints.t
(** The constraint set feasibility is judged against. *)

val required_times : env -> float array option
(** Per-node required seeds; [None] on the scalar fast path. *)

val arrival_offsets : env -> float array option
(** Constraint input-delay seeds; [None] when the set has none. *)

val vt_stress : env -> float

val with_vt_stress : env -> float -> env
(** The same prepared circuit re-housed at another corner (structural
    columns shared). Raises [Invalid_argument] on a non-positive
    multiplier. *)

val flat : env -> Dcopt_netlist.Flat.t
(** The struct-of-arrays view the evaluation sweeps run on (built once by
    {!make_env}; shares adjacency and level arrays with the circuit). *)

val cycle_time : env -> float
val clock_frequency : env -> float
val activity : env -> int -> float
(** Transition density at a node's output. *)

val gate_ids : env -> int array
(** Ids of the combinational gates, in topological order. *)

val unsafe_gate_ids : env -> int array
(** The backing gate-id array of {!gate_ids}, without the defensive copy.
    Treat as read-only — for per-move hot paths (annealing draws a random
    gate every move). *)

val uniform_design : env -> vdd:float -> vt:float -> w:float -> design
(** A design with one global threshold and width. *)

val gate_load : env -> design -> max_fanin_delay:float -> int -> Dcopt_device.Delay.load
(** The eq. A3 load record of a gate under the given fanout widths. *)

val gate_delay : env -> design -> max_fanin_delay:float -> int -> float
(** Single-gate delay under the design, with the driver delay supplied
    explicitly (budget-based during sizing, achieved during evaluation). *)

val budget_fanin_delay : env -> budgets:float array -> int -> float
(** Max of the drivers' delay budgets — the conservative driver delay used
    while sizing (a driver meeting its budget can only be faster). *)

val evaluate : env -> design -> evaluation
(** Full evaluation: achieved delays by topological propagation, energy
    totals over all gates, feasibility against the cycle time.

    Poison-safe: a non-finite delay or energy term (vt at or above vdd,
    overflow) is clamped to [+infinity] via {!Guard.clamp} — the result
    is an infinite, comparison-safe objective, [feasible] is forced
    false, and the trip is counted under [guard.*]. Never returns NaN in
    the energy/power/critical-delay fields.

    Large circuits (>= 20k gates) dispatch each level slice of the sweep
    to the {!Dcopt_par.Par} pool when the global job count exceeds 1; the
    energy totals are still folded sequentially in topological gate
    order, so the result is byte-identical to {!evaluate_seq} at any job
    count. *)

val evaluate_seq : env -> design -> evaluation
(** {!evaluate} forced onto the single-threaded path — the reference the
    differential tests compare against. *)

val evaluate_par : ?jobs:int -> ?min_par_width:int -> env -> design -> evaluation
(** {!evaluate} with explicit level-parallel dispatch: level slices of at
    least [min_par_width] gates (default 512) are chunked over [jobs]
    domains (default {!Dcopt_par.Par.jobs}). Per-gate values and the
    sequentially folded totals are bit-identical to {!evaluate_seq}
    regardless of [jobs]. *)

val size_gate :
  env -> design -> budgets:float array -> int -> float option
(** Minimum width in \[w_min, w_max\] meeting the gate's budget, assuming
    the design already fixes its fanouts' widths ({!size_all} processes
    gates in reverse topological order so this holds). [None] when even
    [w_max] misses the budget. *)

val size_all :
  env -> vdd:float -> vt:float array -> budgets:float array ->
  design * bool
(** Sizes every gate to its minimal feasible width (reverse topological
    order). The boolean is true when every gate met its budget; gates that
    could not are left at [w_max]. *)

(** Incremental evaluation engine for single-gate moves.

    Both gate-sizing optimizers (TILOS, annealing) change one gate per move
    but previously paid a whole-circuit {!evaluate} (plus a second full STA
    pass for the critical path) per move. [Incr] keeps the current delays,
    arrival times, critical delay and running energy totals as mutable
    state and re-evaluates only the affected cone of a move:

    - a width change at gate [g] invalidates [g]'s own delay, the delays of
      [g]'s fanin drivers (their load includes [w_g]) and everything
      downstream of a changed delay/arrival — propagated by
      {!Dcopt_timing.Incr_sta}'s topological worklist, which stops where
      recomputed values are bit-identical to the old ones;
    - a per-gate threshold change invalidates only that gate (loads don't
      move) plus its downstream cone;
    - global moves (supply voltage, uniform threshold) fall back to a full
      journaled sweep — the [incr.full_fallbacks] counter tracks these.

    Energy totals are maintained by subtracting the touched gates' stored
    terms and adding the recomputed ones, so they track the full
    {!evaluate} within accumulated round-off (the differential test suite
    bounds the drift at 1e-9 relative); delays and arrival times are
    bit-identical by construction. Moves are transactional: {!Incr.commit}
    accepts, {!Incr.rollback} restores every journaled value — including
    the design fields — exactly.

    Instruments [incr.moves], [incr.dirty_gates], [incr.full_fallbacks]
    and the [incr.cone_size] histogram in {!Dcopt_obs.Metrics}. *)
module Incr : sig
  type t

  val create : env -> design -> t
  (** Full initial evaluation. The design record is owned by the engine
      from here on: mutate it only through [set_*] (callers may still
      probe-and-restore fields between engine calls, as TILOS's
      sensitivity probe does).

      Raises {!Guard.Non_finite} when the design evaluates to a
      non-finite delay or energy term (e.g. vt at or above vdd): the
      incremental engine cannot clamp — its running totals are updated by
      subtract-then-add, where an infinity would turn into NaN on the
      next move — so degenerate designs are rejected at the door.
      [set_*] moves raise the same way, leaving the transaction open; the
      caller must {!rollback}, after which the engine state is exactly as
      before the move. *)

  val env : t -> env
  val design : t -> design
  (** The live design under optimization (see {!create} for the
      mutation contract). *)

  val delays : t -> float array
  (** Live per-node achieved delays — current after every [set_*]/
      {!rollback}. Treat as read-only. *)

  val arrivals : t -> float array
  (** Live per-node arrival times. Treat as read-only. *)

  val set_width : t -> int -> float -> unit
  (** Set a gate's width and re-evaluate its cone. O(affected cone). *)

  val set_vt : t -> int -> float -> unit
  (** Set a gate's threshold and re-evaluate its cone. O(affected cone). *)

  val set_vdd : t -> float -> unit
  (** Global supply move: full journaled re-sweep (fallback). *)

  val set_vt_uniform : t -> float -> unit
  (** Set every gate's threshold: full journaled re-sweep (fallback). *)

  val commit : t -> unit
  (** Accept all changes since the last commit/rollback. *)

  val rollback : t -> unit
  (** Undo all changes since the last commit/rollback: design fields,
      delays, arrivals, energy terms and totals are restored exactly. *)

  val static_energy : t -> float
  val dynamic_energy : t -> float
  val short_circuit_energy : t -> float
  val total_energy : t -> float
  val critical_delay : t -> float
  val feasible : t -> bool

  val critical_path : t -> int list
  (** One maximal-arrival path under the current state, via
      {!Dcopt_timing.Sta.critical_path_of_arrival} — no extra STA pass. *)

  val snapshot : t -> evaluation
  (** The current state as a regular {!evaluation} record (copies the
      delay array). *)
end
