module Tech = Dcopt_device.Tech

type t = {
  tech : Tech.t;
  n_gates : int;
  p : float;
  fanout_exp : float;
  pitch : float;
  mean_pp : float; (* pitches, memoized at creation *)
}

let side n = Float.max 2.0 (sqrt (float_of_int n))

let density_raw ~n ~p l =
  let root_n = side n in
  let nf = root_n *. root_n in
  if l < 1.0 || l > 2.0 *. root_n then 0.0
  else
    let power = l ** ((2.0 *. p) -. 4.0) in
    if l <= root_n then
      ((l *. l *. l /. 3.0) -. (2.0 *. root_n *. l *. l) +. (2.0 *. nf *. l))
      /. 2.0 *. power
    else
      let d = (2.0 *. root_n) -. l in
      d *. d *. d /. 6.0 *. power

let compute_mean_pp ~n ~p =
  let hi = 2.0 *. side n in
  let f l = density_raw ~n ~p l in
  let fl l = l *. f l in
  let panels = 2000 in
  let total = Dcopt_util.Numeric.integrate_trapezoid ~f ~lo:1.0 ~hi ~n:panels in
  let weighted =
    Dcopt_util.Numeric.integrate_trapezoid ~f:fl ~lo:1.0 ~hi ~n:panels
  in
  if total <= 0.0 then 1.0 else weighted /. total

let create ?(rent_p = 0.60) ?(fanout_exponent = 0.70) ?(pitch_factor = 12.0)
    ~tech ~gate_count () =
  assert (gate_count >= 1);
  assert (rent_p > 0.0 && rent_p < 1.0);
  assert (fanout_exponent >= 0.0 && fanout_exponent <= 1.0);
  assert (pitch_factor > 0.0);
  {
    tech;
    n_gates = gate_count;
    p = rent_p;
    fanout_exp = fanout_exponent;
    pitch = pitch_factor *. tech.Tech.feature_size;
    mean_pp = compute_mean_pp ~n:gate_count ~p:rent_p;
  }

let gate_count t = t.n_gates
let rent_p t = t.p
let gate_pitch t = t.pitch
let density t l = density_raw ~n:t.n_gates ~p:t.p l
let max_length_pitches t = 2.0 *. side t.n_gates
let mean_point_to_point_pitches t = t.mean_pp

let net_length t ~fanout =
  assert (fanout >= 1);
  t.mean_pp *. t.pitch *. (float_of_int fanout ** t.fanout_exp)

let net_capacitance t ~fanout =
  net_length t ~fanout *. t.tech.Tech.wire_cap_per_m

let net_resistance t ~fanout =
  net_length t ~fanout *. t.tech.Tech.wire_res_per_m

let flight_time t ~fanout = net_length t ~fanout /. t.tech.Tech.wire_velocity

let distributed_rc_delay t ~fanout ~sink_cap =
  let r = net_resistance t ~fanout in
  let c = net_capacitance t ~fanout in
  r *. (sink_cap +. (c /. 2.0))
