(** Stochastic wire-length estimation from Rent's rule.

    The paper (§2, refs [4][5]) uses a complete a-priori wire-length
    distribution derived by recursive application of Rent's rule and
    conservation of I/O (the Davis/De/Meindl model) to estimate the
    interconnect load of every net without a placement. This module
    implements that distribution for a square array of [gate_count] cells:

    - region I  (1 <= l <= sqrt N):
      [i(l) = (k/2) (l^3/3 - 2 sqrt(N) l^2 + 2 N l) l^(2p-4)]
    - region II (sqrt N <= l <= 2 sqrt N):
      [i(l) = (k/6) (2 sqrt(N) - l)^3 l^(2p-4)]

    with [p] the Rent exponent. Lengths are in gate pitches; electrical
    quantities convert through the technology's per-metre wire constants.
    Multi-terminal nets are costed as the point-to-point expectation scaled
    by [fanout^fanout_exponent] (a Steiner-tree growth law). *)

type t

val create :
  ?rent_p:float ->         (* Rent exponent, default 0.60 (random logic) *)
  ?fanout_exponent:float -> (* net-length growth with fanout, default 0.70 *)
  ?pitch_factor:float ->   (* gate pitch in feature sizes, default 12.0 *)
  tech:Dcopt_device.Tech.t ->
  gate_count:int ->
  unit ->
  t
(** A wiring model for a block of [gate_count >= 1] gates. *)

val gate_count : t -> int
val rent_p : t -> float
val gate_pitch : t -> float
(** Pitch of the cell array in metres. *)

val density : t -> float -> float
(** Unnormalized wire-length density [i(l)], [l] in pitches; zero outside
    \[1, 2 sqrt N\]. *)

val max_length_pitches : t -> float
(** [2 sqrt N]. *)

val mean_point_to_point_pitches : t -> float
(** Expected point-to-point interconnect length, in pitches (computed once
    by numeric integration of the distribution). *)

val net_length : t -> fanout:int -> float
(** Expected routed length of a net with [fanout >= 1] sinks, in metres. *)

val net_capacitance : t -> fanout:int -> float
(** Total interconnect capacitance of the net, F. *)

val net_resistance : t -> fanout:int -> float
(** End-to-end interconnect resistance of the net, ohm. *)

val flight_time : t -> fanout:int -> float
(** Time-of-flight of a signal along the net, s. *)

val distributed_rc_delay : t -> fanout:int -> sink_cap:float -> float
(** The per-fanout interconnect term of eq. A3:
    [R_INT * (sink_cap + C_INT/2)] with the distributed-RC half factor, s. *)
