(** Strictly increasing wall-clock time in nanoseconds.

    Every call returns a value strictly larger than any previous one —
    across all domains, not just the calling one — so a span closed
    immediately after it was opened still has a positive duration, trace
    events never share a timestamp, and event-log lines from different
    pool workers interleave in a globally consistent order. The
    underlying source is [Unix.gettimeofday]; backwards wall-clock jumps
    are clamped (the reading advances by 1 ns instead), which makes the
    reading monotonic by construction. *)

val now_ns : unit -> int64
(** Current time in ns, strictly increasing across calls and domains. *)

val ns_to_s : int64 -> float
(** Nanoseconds to seconds. *)

val ns_to_us : int64 -> float
(** Nanoseconds to microseconds (the unit of Chrome trace events). *)
