(** Strictly increasing wall-clock time in nanoseconds.

    Every call returns a value strictly larger than the previous one, so a
    span closed immediately after it was opened still has a positive
    duration and trace events never share a timestamp. The underlying
    source is [Unix.gettimeofday]; backwards wall-clock jumps are clamped,
    which makes the reading monotonic by construction. *)

val now_ns : unit -> int64
(** Current time in ns, strictly increasing across calls. *)

val ns_to_s : int64 -> float
(** Nanoseconds to seconds. *)

val ns_to_us : int64 -> float
(** Nanoseconds to microseconds (the unit of Chrome trace events). *)
