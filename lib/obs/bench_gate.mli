(** Bench regression gate: compare current timing numbers against a
    committed baseline and fail on a per-kernel slowdown.

    The baseline is a [dcopt-bench-timing/1] JSON document as written by
    [bench/main.exe timing --json] (committed as [test/BENCH_timing.json]).
    The gate reads the bechamel kernel estimates ([kernels\[\].ns_per_run],
    namespaced ["kernel:NAME"]), the incremental per-move costs
    ([incremental\[\].incr_ns_per_move], namespaced ["incr:NAME"]), the
    large-circuit STA scale kernels ([scale\[\].ns_per_gate], namespaced
    ["scale:NAME"]) and the multi-process fleet batch cost
    ([fleet\[\].ns_per_job], namespaced ["fleet:NAME"]); the [full_joint]
    wall-clock group is deliberately excluded — millisecond runs under
    parallel test load are too noisy to gate on.

    The threshold is noise-tolerant by design (default 1.5x): quick-mode
    bechamel quotas scatter, and the caller is expected to re-measure and
    take the per-kernel minimum before declaring a regression (see
    [bench timing --check]). *)

type measurement = { name : string; ns : float }

type verdict = {
  v_name : string;
  baseline_ns : float;
  current_ns : float option;
      (** [None]: present in the baseline but not measured now —
          a gate failure (coverage rot). *)
  ratio : float;  (** current / baseline; [nan] when current is missing *)
  v_ok : bool;
}

val default_threshold : float
(** 1.5 — fail when current > 1.5x baseline. *)

val load_baseline : string -> (measurement list, string) result
(** Parse a baseline file; [Error] on unreadable file, wrong schema, or a
    document with nothing gateable in it. *)

val measurements_of_json : Dcopt_util.Json.t -> measurement list
(** The namespaced measurement list of a timing document (exposed for
    building the "current" side from freshly computed numbers). Entries
    with null/non-positive timings are skipped. *)

val check :
  ?threshold:float ->
  ?optional:(string -> bool) ->
  baseline:measurement list ->
  current:measurement list ->
  unit ->
  verdict list
(** One verdict per baseline entry, in baseline order. Measurements only
    on the current side (new kernels) are ignored — they gate once they
    land in the committed baseline.

    A baseline entry absent from [current] normally fails the gate
    (coverage rot); when [optional] holds for its name the absence is a
    skip instead — the verdict carries [current_ns = None] with
    [v_ok = true]. Used for the ["scale:"] kernels, which quick runs
    legitimately omit (they gate only when the run measures them, e.g.
    [bench timing --scale] or a full run), and for the ["fleet:"] kernel,
    which a bench binary without [bin/minpower.exe] next to it cannot
    spawn. *)

val all_ok : verdict list -> bool
val failures : verdict list -> verdict list

val render : ?threshold:float -> verdict list -> string
(** Fixed-width report table; [threshold] only labels the FAIL rows. *)
