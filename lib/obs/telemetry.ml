type iteration = {
  optimizer : string;
  index : int;
  vdd : float;
  vt : float;
  static_energy : float;
  dynamic_energy : float;
  total_energy : float;
  feasible : bool;
}

type observer = iteration -> unit

let null : observer = fun _ -> ()
let tee a b : observer = fun it -> a it; b it
let relabel name obs : observer = fun it -> obs { it with optimizer = name }

type recorder = { mutable items : iteration list; mutable n : int }

let recorder () = { items = []; n = 0 }

let record r : observer =
 fun it ->
  r.items <- it :: r.items;
  r.n <- r.n + 1

let iterations r = Array.of_list (List.rev r.items)
let count r = r.n

let to_metrics () : observer =
 fun it ->
  let prefix = "opt." ^ it.optimizer in
  Metrics.incr (Metrics.counter (prefix ^ ".iterations"));
  Metrics.observe (Metrics.histogram (prefix ^ ".iteration.vdd")) it.vdd;
  if it.feasible then
    Metrics.observe
      (Metrics.histogram (prefix ^ ".iteration.total_energy"))
      it.total_energy
  else Metrics.incr (Metrics.counter (prefix ^ ".infeasible"))

let to_events () : observer =
 fun it ->
  (* Debug-level: one event per evaluated design point is only worth
     paying for when someone asked for the full trajectory. The
     correlation scope (run/batch/job) is attached by Events itself. *)
  if Events.active Events.Debug then
    Events.debug "opt.iteration"
      ~fields:
        [
          ("optimizer", Dcopt_util.Json.String it.optimizer);
          ("index", Dcopt_util.Json.Int it.index);
          ("vdd", Dcopt_util.Json.Float it.vdd);
          ("vt", Dcopt_util.Json.Float it.vt);
          ("total_energy", Dcopt_util.Json.Float it.total_energy);
          ("feasible", Dcopt_util.Json.Bool it.feasible);
        ]
