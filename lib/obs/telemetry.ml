type iteration = {
  optimizer : string;
  index : int;
  vdd : float;
  vt : float;
  static_energy : float;
  dynamic_energy : float;
  total_energy : float;
  feasible : bool;
}

type observer = iteration -> unit

let null : observer = fun _ -> ()
let tee a b : observer = fun it -> a it; b it
let relabel name obs : observer = fun it -> obs { it with optimizer = name }

type recorder = { mutable items : iteration list; mutable n : int }

let recorder () = { items = []; n = 0 }

let record r : observer =
 fun it ->
  r.items <- it :: r.items;
  r.n <- r.n + 1

let iterations r = Array.of_list (List.rev r.items)
let count r = r.n

let to_metrics () : observer =
 fun it ->
  let prefix = "opt." ^ it.optimizer in
  Metrics.incr (Metrics.counter (prefix ^ ".iterations"));
  Metrics.observe (Metrics.histogram (prefix ^ ".iteration.vdd")) it.vdd;
  if it.feasible then
    Metrics.observe
      (Metrics.histogram (prefix ^ ".iteration.total_energy"))
      it.total_energy
  else Metrics.incr (Metrics.counter (prefix ^ ".infeasible"))
