(** Hierarchical wall-clock spans with a Chrome trace-event exporter.

    Spans are recorded into a process-global buffer when tracing is
    enabled; when disabled (the default) [with_] degenerates to calling
    the wrapped function, so instrumented hot paths pay one branch and one
    closure call. Nesting is tracked with a depth counter: a span opened
    while another is running is its child, which is exactly the
    time-containment relation the Chrome viewer reconstructs.

    The exported JSON loads directly in [chrome://tracing] (or Perfetto):
    one complete ("ph":"X") event per span on a single pid/tid. *)

type span = {
  name : string;
  start_ns : int64;             (** {!Clock.now_ns} at open *)
  dur_ns : int64;               (** strictly positive by construction *)
  depth : int;                  (** 0 = top-level *)
  args : (string * string) list; (** free-form annotations *)
}

val set_enabled : bool -> unit
(** Turn recording on or off; off by default. Turning recording off does
    not discard spans already recorded. *)

val enabled : unit -> bool

val with_ : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_ name fn] runs [fn ()]; when tracing is enabled the elapsed
    interval is recorded as a span named [name], closed even when [fn]
    raises. On any domain other than the main one (a {!Dcopt_par.Par}
    pool worker) recording is skipped and [fn] runs bare — the global
    span buffer is not domain-safe, and worker time is already contained
    in the main-domain span around the parallel batch. Raises
    [Assert_failure] if the recorded duration is not strictly positive
    (cannot happen with {!Clock.now_ns}, which is strictly increasing —
    the assertion guards against a broken clock source). *)

val reset : unit -> unit
(** Discard all recorded spans (open spans keep nesting correctly). *)

val spans : unit -> span list
(** Completed spans in completion order (a parent therefore follows its
    children). *)

val top_level_total_ns : unit -> int64
(** Sum of the durations of all depth-0 spans — the tracer's view of the
    total accounted wall-clock time. *)

val roll_up : unit -> (string * int * int64) list
(** Per-name aggregation [(name, calls, total_ns)] over all completed
    spans, ordered by first completion. *)

val export_chrome : unit -> string
(** All completed spans as Chrome trace-event JSON (a ["traceEvents"]
    array of "X" events; timestamps in µs relative to the earliest
    span). *)

val write_chrome : string -> unit
(** [write_chrome path] writes {!export_chrome} output to [path]. *)
