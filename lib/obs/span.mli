(** Hierarchical wall-clock spans with a Chrome trace-event exporter.

    Spans are recorded per domain when tracing is enabled; when disabled
    (the default) [with_] degenerates to calling the wrapped function, so
    instrumented hot paths pay one branch and one closure call. Each
    domain — the main one and every {!Dcopt_par.Par} pool worker — owns
    its own buffer and depth counter, so worker task bodies trace without
    racing the main domain's nesting; the buffers are combined at export
    with the domain id as the Chrome [tid]. Nesting is tracked with a
    per-domain depth counter: a span opened while another is running on
    the same domain is its child, which is exactly the time-containment
    relation the Chrome viewer reconstructs.

    The exported JSON loads directly in [chrome://tracing] (or Perfetto):
    one complete ("ph":"X") event per span, one trace row per domain. *)

type span = {
  name : string;
  start_ns : int64;             (** {!Clock.now_ns} at open *)
  dur_ns : int64;               (** strictly positive; clamped to 1 if the
                                    clock source misbehaves (see [with_]) *)
  depth : int;                  (** 0 = top-level on its domain *)
  args : (string * string) list; (** free-form annotations *)
}

val set_enabled : bool -> unit
(** Turn recording on or off; off by default. Turning recording off does
    not discard spans already recorded. Main-domain only (workers read
    the flag but never flip it). *)

val enabled : unit -> bool

val with_ : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_ name fn] runs [fn ()]; when tracing is enabled the elapsed
    interval is recorded as a span named [name] in the calling domain's
    buffer, closed even when [fn] raises. A non-positive duration —
    impossible with {!Clock.now_ns}, which is strictly increasing, but
    reachable if a broken clock source is ever substituted — is clamped
    to [dur_ns = 1] and counted in the [span.clock_clamped] metric
    instead of raising: tracing must never kill a serve process. *)

val record_span :
  ?args:(string * string) list ->
  name:string ->
  start_ns:int64 ->
  end_ns:int64 ->
  unit ->
  unit
(** Record an already-measured interval as a span at the calling domain's
    current depth (no-op when tracing is disabled). Shares [with_]'s
    clamp path: [end_ns <= start_ns] records a 1 ns span and bumps
    [span.clock_clamped]. *)

val reset : unit -> unit
(** Discard all recorded spans on every domain (open spans keep nesting
    correctly). Main-domain only, outside a parallel batch. *)

val spans : unit -> span list
(** The calling domain's completed spans in completion order (a parent
    therefore follows its children). From the main domain this is the
    single-domain view PR 1 exposed. *)

val merged : unit -> (int * span) list
(** All domains' completed spans as [(tid, span)], sorted by
    [(tid, start_ns)] — a total order since {!Clock.now_ns} never
    repeats, so the merge is deterministic for a given set of recorded
    spans. Main-domain only, outside a parallel batch. *)

val top_level_total_ns : unit -> int64
(** Sum of the durations of the calling domain's depth-0 spans — the
    tracer's view of the total accounted wall-clock time. *)

val roll_up : unit -> (string * int * int64) list
(** Per-name aggregation [(name, calls, total_ns)] over the calling
    domain's completed spans, ordered by first completion. *)

val export_chrome : unit -> string
(** All completed spans from every domain as Chrome trace-event JSON (a
    ["traceEvents"] array of "X" events; [tid] = domain id; timestamps
    in µs relative to the earliest span; events ordered by
    [(tid, start_ns)] as in {!merged}). *)

val write_chrome : string -> unit
(** [write_chrome path] writes {!export_chrome} output to [path]. *)
