type span = {
  name : string;
  start_ns : int64;
  dur_ns : int64;
  depth : int;
  args : (string * string) list;
}

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

(* reverse completion order *)
let completed : span list ref = ref []
let open_depth = ref 0

let with_ ?(args = []) name fn =
  (* The span buffer, depth counter and monotonic clock are plain global
     state: recording from a pool worker would race them and interleave
     unrelated spans into one nesting. Workers run the function bare;
     their time is still attributed to the main-domain span that submitted
     the parallel batch. *)
  if (not !enabled_flag) || not (Domain.is_main_domain ()) then fn ()
  else begin
    let start_ns = Clock.now_ns () in
    let depth = !open_depth in
    incr open_depth;
    let close () =
      decr open_depth;
      let dur_ns = Int64.sub (Clock.now_ns ()) start_ns in
      assert (Int64.compare dur_ns 0L > 0);
      completed := { name; start_ns; dur_ns; depth; args } :: !completed
    in
    match fn () with
    | v ->
      close ();
      v
    | exception e ->
      close ();
      raise e
  end

let reset () = completed := []

let spans () = List.rev !completed

let top_level_total_ns () =
  List.fold_left
    (fun acc s -> if s.depth = 0 then Int64.add acc s.dur_ns else acc)
    0L !completed

let roll_up () =
  let order = ref [] in
  let totals : (string, int * int64) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match Hashtbl.find_opt totals s.name with
      | None ->
        order := s.name :: !order;
        Hashtbl.replace totals s.name (1, s.dur_ns)
      | Some (n, t) -> Hashtbl.replace totals s.name (n + 1, Int64.add t s.dur_ns))
    (spans ());
  List.rev_map
    (fun name ->
      let n, t = Hashtbl.find totals name in
      (name, n, t))
    !order

let export_chrome () =
  let spans = spans () in
  let t0 =
    List.fold_left
      (fun acc s -> if Int64.compare s.start_ns acc < 0 then s.start_ns else acc)
      (match spans with [] -> 0L | s :: _ -> s.start_ns)
      spans
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      let args_json =
        ("depth", string_of_int s.depth) :: s.args
        |> List.map (fun (k, v) ->
               Printf.sprintf "\"%s\":\"%s\"" (Metrics.json_escape k)
                 (Metrics.json_escape v))
        |> String.concat ","
      in
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"dcopt\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":%.3f,\"dur\":%.3f,\"args\":{%s}}"
           (Metrics.json_escape s.name)
           (Clock.ns_to_us (Int64.sub s.start_ns t0))
           (Clock.ns_to_us s.dur_ns) args_json))
    spans;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

let write_chrome path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (export_chrome ()))
