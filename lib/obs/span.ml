type span = {
  name : string;
  start_ns : int64;
  dur_ns : int64;
  depth : int;
  args : (string * string) list;
}

(* Read from pool workers, flipped only from the main domain. *)
let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* A substituted non-monotonic clock source (or a manual [record_span]
   with end <= start) degrades to a 1 ns span and bumps this counter
   instead of asserting — a broken clock must not kill a serve process. *)
let clamped_counter =
  Metrics.counter
    ~help:"spans whose duration was clamped to 1ns (non-monotonic clock)"
    "span.clock_clamped"

(* Each domain records into its own buffer: pool workers trace their task
   bodies without racing the main domain's nesting. Buffers register
   themselves in [all_buffers] on first use (the only cross-domain write,
   hence the mutex); after that a domain only ever touches its own buffer.
   The main domain reads every buffer at merge/reset time — safe because
   workers are quiescent outside a parallel batch and the pool barrier
   orders their writes before the main domain's reads. *)
type dom_buf = {
  tid : int; (* domain id, the Chrome trace tid *)
  mutable completed : span list; (* reverse completion order *)
  mutable open_depth : int;
}

let buffers_mutex = Mutex.create ()
let all_buffers : dom_buf list ref = ref []

let buf_key =
  Domain.DLS.new_key (fun () ->
      let buf =
        { tid = (Domain.self () :> int); completed = []; open_depth = 0 }
      in
      Mutex.lock buffers_mutex;
      all_buffers := buf :: !all_buffers;
      Mutex.unlock buffers_mutex;
      buf)

let my_buf () = Domain.DLS.get buf_key

let clamp_dur dur_ns =
  if Int64.compare dur_ns 0L > 0 then dur_ns
  else begin
    Metrics.incr clamped_counter;
    1L
  end

let record_span ?(args = []) ~name ~start_ns ~end_ns () =
  if Atomic.get enabled_flag then begin
    let buf = my_buf () in
    let dur_ns = clamp_dur (Int64.sub end_ns start_ns) in
    buf.completed <-
      { name; start_ns; dur_ns; depth = buf.open_depth; args }
      :: buf.completed
  end

let with_ ?(args = []) name fn =
  if not (Atomic.get enabled_flag) then fn ()
  else begin
    let buf = my_buf () in
    let start_ns = Clock.now_ns () in
    let depth = buf.open_depth in
    buf.open_depth <- depth + 1;
    let close () =
      buf.open_depth <- depth;
      let dur_ns = clamp_dur (Int64.sub (Clock.now_ns ()) start_ns) in
      buf.completed <- { name; start_ns; dur_ns; depth; args } :: buf.completed
    in
    match fn () with
    | v ->
      close ();
      v
    | exception e ->
      close ();
      raise e
  end

let reset () =
  Mutex.lock buffers_mutex;
  let bufs = !all_buffers in
  Mutex.unlock buffers_mutex;
  List.iter (fun b -> b.completed <- []) bufs

(* Main-domain view, unchanged from the single-domain tracer: completion
   order, so a parent follows its children. *)
let spans () = List.rev (my_buf ()).completed

let merged () =
  Mutex.lock buffers_mutex;
  let bufs = !all_buffers in
  Mutex.unlock buffers_mutex;
  let all =
    List.concat_map
      (fun b -> List.rev_map (fun s -> (b.tid, s)) b.completed)
      bufs
  in
  (* (tid, start_ns) is a total order: Clock.now_ns never repeats, so the
     merge is deterministic for a given set of recorded spans. *)
  List.sort
    (fun (t1, s1) (t2, s2) ->
      match compare t1 t2 with
      | 0 -> Int64.compare s1.start_ns s2.start_ns
      | c -> c)
    all

let top_level_total_ns () =
  List.fold_left
    (fun acc s -> if s.depth = 0 then Int64.add acc s.dur_ns else acc)
    0L (my_buf ()).completed

let roll_up () =
  let order = ref [] in
  let totals : (string, int * int64) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match Hashtbl.find_opt totals s.name with
      | None ->
        order := s.name :: !order;
        Hashtbl.replace totals s.name (1, s.dur_ns)
      | Some (n, t) -> Hashtbl.replace totals s.name (n + 1, Int64.add t s.dur_ns))
    (spans ());
  List.rev_map
    (fun name ->
      let n, t = Hashtbl.find totals name in
      (name, n, t))
    !order

let export_chrome () =
  let spans = merged () in
  let t0 =
    List.fold_left
      (fun acc (_, s) ->
        if Int64.compare s.start_ns acc < 0 then s.start_ns else acc)
      (match spans with [] -> 0L | (_, s) :: _ -> s.start_ns)
      spans
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i (tid, s) ->
      if i > 0 then Buffer.add_char b ',';
      let args_json =
        ("depth", string_of_int s.depth) :: s.args
        |> List.map (fun (k, v) ->
               Printf.sprintf "\"%s\":\"%s\"" (Metrics.json_escape k)
                 (Metrics.json_escape v))
        |> String.concat ","
      in
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"dcopt\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{%s}}"
           (Metrics.json_escape s.name)
           tid
           (Clock.ns_to_us (Int64.sub s.start_ns t0))
           (Clock.ns_to_us s.dur_ns) args_json))
    spans;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

let write_chrome path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (export_chrome ()))
