module Json = Dcopt_util.Json

type measurement = { name : string; ns : float }

type verdict = {
  v_name : string;
  baseline_ns : float;
  current_ns : float option; (* None: in the baseline, not measured now *)
  ratio : float; (* current / baseline; nan when current is None *)
  v_ok : bool;
}

let default_threshold = 1.5

(* The timing JSON (schema dcopt-bench-timing/1) carries several result
   groups; the gate reads the ones stable enough to compare — bechamel
   kernel estimates, the per-move incremental costs, the per-gate scale
   STA costs, and the per-job fleet batch cost — and flattens them into
   one namespaced list. full_joint is wall-clock of a 3 ms-scale run
   and too noisy to gate on. *)
let measurements_of_json json =
  let list_field name =
    match Json.field name json with
    | Some l -> Option.value ~default:[] (Json.get_list l)
    | None -> []
  in
  let entry ~prefix ~ns_field item =
    match (Json.field "name" item, Json.field ns_field item) with
    | Some n, Some v -> (
      match (Json.get_string n, Json.get_float v) with
      | Some name, Some ns when Float.is_finite ns && ns > 0.0 ->
        Some { name = prefix ^ name; ns }
      | _ -> None)
    | _ -> None
  in
  List.filter_map
    (entry ~prefix:"kernel:" ~ns_field:"ns_per_run")
    (list_field "kernels")
  @ List.filter_map
      (entry ~prefix:"incr:" ~ns_field:"incr_ns_per_move")
      (list_field "incremental")
  @ List.filter_map
      (entry ~prefix:"scale:" ~ns_field:"ns_per_gate")
      (list_field "scale")
  @ List.filter_map
      (entry ~prefix:"fleet:" ~ns_field:"ns_per_job")
      (list_field "fleet")

let load_baseline path =
  match Json.read_file path with
  | Error e -> Error e
  | Ok json -> (
    match Json.field "schema" json with
    | Some (Json.String "dcopt-bench-timing/1") -> (
      match measurements_of_json json with
      | [] -> Error (path ^ ": baseline contains no gateable measurements")
      | ms -> Ok ms)
    | Some _ | None ->
      Error (path ^ ": not a dcopt-bench-timing/1 document"))

let check ?(threshold = default_threshold) ?(optional = fun _ -> false)
    ~baseline ~current () =
  List.map
    (fun b ->
      match List.find_opt (fun c -> String.equal c.name b.name) current with
      | None ->
        (* a kernel that vanished from the bench is silent coverage rot,
           which is exactly what the gate exists to catch — unless the
           caller declares the name optional (e.g. scale kernels that a
           quick run legitimately skips), in which case absence is a
           skip, not a failure *)
        {
          v_name = b.name;
          baseline_ns = b.ns;
          current_ns = None;
          ratio = nan;
          v_ok = optional b.name;
        }
      | Some c ->
        let ratio = c.ns /. b.ns in
        {
          v_name = b.name;
          baseline_ns = b.ns;
          current_ns = Some c.ns;
          ratio;
          v_ok = ratio <= threshold;
        })
    baseline

let all_ok verdicts = List.for_all (fun v -> v.v_ok) verdicts
let failures verdicts = List.filter (fun v -> not v.v_ok) verdicts

let render ?(threshold = default_threshold) verdicts =
  let table =
    Dcopt_util.Text_table.create
      ~headers:[ "Measurement"; "Baseline"; "Current"; "Ratio"; "Gate" ]
  in
  List.iter
    (fun v ->
      let fmt_ns ns = Dcopt_util.Si.format ~unit:"s" (ns *. 1e-9) in
      Dcopt_util.Text_table.add_row table
        [
          v.v_name;
          fmt_ns v.baseline_ns;
          (match v.current_ns with Some ns -> fmt_ns ns | None -> "missing");
          (match v.current_ns with
          | Some _ -> Printf.sprintf "%.2fx" v.ratio
          | None -> "-");
          (match (v.v_ok, v.current_ns) with
          | true, None -> "skipped (optional)"
          | true, Some _ -> "ok"
          | false, _ -> Printf.sprintf "FAIL (> %.2fx)" threshold);
        ])
    verdicts;
  Dcopt_util.Text_table.render table
