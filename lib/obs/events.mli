(** Structured event log: one JSON object per line, correlated by IDs.

    The metrics registry answers "how much / how fast overall"; the event
    log answers "what happened to {e this} job". Every event carries a
    strictly monotonic timestamp ({!Clock.now_ns}), a severity, an event
    name, and whatever part of the correlation chain
    [run_id → batch_id → worker_id → job_id] is in scope — so a batch
    result row can
    be joined to its retries, store and checkpoint hits, guard trips and
    convergence trajectory by grepping the log for its [job_id].

    The sink is process-global and disabled by default; [emit] with no
    sink configured is a cheap no-op, so library code logs
    unconditionally. Events may be emitted from any domain (pool workers
    log from inside batch tasks): lines are written and flushed whole
    under a mutex, so a crashed process leaves a valid JSONL prefix and
    concurrent lines never shear. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

val level_of_string : string -> level option
(** Inverse of {!level_to_string}; [None] on anything else. *)

(** {1 Sink} *)

val open_file : ?min_level:level -> string -> unit
(** Open [path] in append mode as the event sink, replacing (and closing)
    any previous sink. Events below [min_level] (default [Info]) are
    dropped. *)

val set_channel : ?min_level:level -> out_channel -> unit
(** Use an already-open channel as the sink (not closed by {!close};
    the caller keeps ownership). For tests and for logging to stderr. *)

val close : unit -> unit
(** Flush and detach the sink (closing it if {!open_file} opened it).
    Idempotent. *)

val active : level -> bool
(** Whether an event at this level would currently be written — for
    guarding expensive field computation. *)

(** {1 Correlation scope} *)

val set_run_id : string -> unit
(** Set the process-level run id (once, at startup, before the domain
    pool exists): every event from every domain carries it unless a
    {!with_scope} [run_id] overrides it. *)

val set_worker_id : string -> unit
(** Set the process-level worker id — a fleet worker process is one
    worker for its whole life, so [minpower worker] sets it once and
    every event the process emits carries it (between [batch_id] and
    [job_id] in the chain) unless a {!with_scope} [worker_id] overrides
    it. Coordinator processes never set one, so their events have no
    [worker_id] member. *)

val with_scope :
  ?run_id:string ->
  ?batch_id:int ->
  ?worker_id:string ->
  ?job_id:string ->
  (unit -> 'a) ->
  'a
(** Run the function with the given correlation IDs attached to every
    event it emits. The scope is domain-local and layered: fields not
    passed inherit from the enclosing scope, so a process-level [run_id]
    survives into per-job scopes opened inside pool-worker closures, and
    the previous scope is restored on exit (also on exception). *)

val current_scope : unit -> string option * int option * string option
(** The calling domain's [(run_id, batch_id, job_id)]. *)

val current_worker_id : unit -> string option
(** The calling domain's worker id (scoped, falling back to
    {!set_worker_id}'s process-level value). *)

(** {1 Emission} *)

val emit : ?fields:(string * Dcopt_util.Json.t) list -> level -> string -> unit
(** [emit level event] writes one JSONL line
    [{"ts_ns":…,"level":…,"event":event,…scope…,…fields…}] to the sink;
    no-op when no sink is configured or [level] is below its threshold.
    Field order is fixed (ts_ns, level, event, run_id, batch_id,
    worker_id, job_id, then [fields] in the given order), so the log is
    deterministic up to timestamps. *)

val debug : ?fields:(string * Dcopt_util.Json.t) list -> string -> unit
val info : ?fields:(string * Dcopt_util.Json.t) list -> string -> unit
val warn : ?fields:(string * Dcopt_util.Json.t) list -> string -> unit
val error : ?fields:(string * Dcopt_util.Json.t) list -> string -> unit
