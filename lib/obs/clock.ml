(* One process-global strictly-increasing clock. The last-issued reading
   is an atomic so any domain — pool workers record spans and events too —
   can take a timestamp; the CAS loop preserves the strict-monotonicity
   guarantee across domains, not just within one. *)
let last = Atomic.make 0L

let rec now_ns () =
  let raw = Int64.of_float (Unix.gettimeofday () *. 1e9) in
  let prev = Atomic.get last in
  let t = if Int64.compare raw prev <= 0 then Int64.add prev 1L else raw in
  if Atomic.compare_and_set last prev t then t else now_ns ()

let ns_to_s ns = Int64.to_float ns *. 1e-9
let ns_to_us ns = Int64.to_float ns *. 1e-3
