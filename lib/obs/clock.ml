let last = ref 0L

let now_ns () =
  let raw = Int64.of_float (Unix.gettimeofday () *. 1e9) in
  let t = if Int64.compare raw !last <= 0 then Int64.add !last 1L else raw in
  last := t;
  t

let ns_to_s ns = Int64.to_float ns *. 1e-9
let ns_to_us ns = Int64.to_float ns *. 1e-3
