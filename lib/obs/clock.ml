(* One process-global strictly-increasing clock. The last-issued reading
   is an atomic so any domain — pool workers record spans and events too —
   can take a timestamp; the CAS loop preserves the strict-monotonicity
   guarantee across domains, not just within one.

   The raw source folds in Dcopt_util.Clock's injected wall offset so a
   fault-plan clock jump visibly displaces event/trace timestamps — that
   is the point of the injection — while a backwards jump is clamped by
   the same CAS path that absorbs real wall-clock steps. *)
let last = Atomic.make 0L

let rec now_ns () =
  let raw =
    Int64.add
      (Int64.of_float (Unix.gettimeofday () *. 1e9))
      (Dcopt_util.Clock.wall_offset_ns ())
  in
  let prev = Atomic.get last in
  let t = if Int64.compare raw prev <= 0 then Int64.add prev 1L else raw in
  if Atomic.compare_and_set last prev t then t else now_ns ()

let ns_to_s ns = Int64.to_float ns *. 1e-9
let ns_to_us ns = Int64.to_float ns *. 1e-3
