module Stats = Dcopt_util.Stats
module Prng = Dcopt_util.Prng

(* Counters are atomic: library code bumps module-level counters from
   inside Par pool tasks (activity, budgeting, simulation), so increments
   may come from any domain. Gauges and histograms stay plain mutable —
   every writer is main-domain-only by convention (see the .mli). *)
type counter = { count : int Atomic.t }
type gauge = { mutable value : float }

(* Histograms keep raw samples exactly up to [reservoir_cap], then switch
   to Algorithm-R reservoir sampling driven by a per-histogram PRNG
   seeded from the metric name — deterministic, so two runs observing the
   same stream retain the same samples. [total]/[sum] keep exact count
   and mean either way; only quantiles and min/max become estimates past
   the cap. *)
type histogram = {
  h_name : string;
  mutable data : float array; (* growable buffer; first [len] slots live *)
  mutable len : int;
  mutable total : int; (* observations ever, >= len *)
  mutable sum : float; (* exact running sum of all observations *)
  mutable rng : Prng.t; (* reservoir replacement stream *)
}

let reservoir_cap = 8192

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let help_texts : (string, string) Hashtbl.t = Hashtbl.create 64

let register name help make =
  (match help with Some h -> Hashtbl.replace help_texts name h | None -> ());
  match Hashtbl.find_opt registry name with
  | Some m -> m
  | None ->
    let m = make () in
    Hashtbl.replace registry name m;
    m

let counter ?help name =
  match register name help (fun () -> Counter { count = Atomic.make 0 }) with
  | Counter c -> c
  | Gauge _ | Histogram _ ->
    invalid_arg (Printf.sprintf "Metrics.counter: %S is not a counter" name)

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: negative increment";
  ignore (Atomic.fetch_and_add c.count by)

let value c = Atomic.get c.count

let gauge ?help name =
  match register name help (fun () -> Gauge { value = 0.0 }) with
  | Gauge g -> g
  | Counter _ | Histogram _ ->
    invalid_arg (Printf.sprintf "Metrics.gauge: %S is not a gauge" name)

let set g v = g.value <- v
let gauge_value g = g.value

let histogram ?help name =
  match
    register name help (fun () ->
        Histogram
          {
            h_name = name;
            data = Array.make 16 0.0;
            len = 0;
            total = 0;
            sum = 0.0;
            rng = Prng.of_string name;
          })
  with
  | Histogram h -> h
  | Counter _ | Gauge _ ->
    invalid_arg (Printf.sprintf "Metrics.histogram: %S is not a histogram" name)

let observe h x =
  h.total <- h.total + 1;
  h.sum <- h.sum +. x;
  if h.len < reservoir_cap then begin
    if h.len = Array.length h.data then begin
      let bigger =
        Array.make (min reservoir_cap (2 * Array.length h.data)) 0.0
      in
      Array.blit h.data 0 bigger 0 h.len;
      h.data <- bigger
    end;
    h.data.(h.len) <- x;
    h.len <- h.len + 1
  end
  else begin
    (* Algorithm R: the new sample replaces a uniformly chosen slot with
       probability cap/total, keeping every observation equally likely to
       be retained. *)
    let j = Prng.int h.rng h.total in
    if j < reservoir_cap then h.data.(j) <- x
  end

let count h = h.total
let observed_sum h = h.sum
let samples h = Array.sub h.data 0 h.len

let quantile h q =
  if h.len = 0 then nan else Stats.quantile (samples h) q

let mean h = if h.total = 0 then nan else h.sum /. float_of_int h.total

let buckets ?(base = 10.0) h =
  if h.len = 0 then [||]
  else begin
    if not (base > 1.0) then invalid_arg "Metrics.buckets: base <= 1";
    let xs = samples h in
    let positives = Array.of_list (List.filter (fun x -> x > 0.0) (Array.to_list xs)) in
    let non_positive = h.len - Array.length positives in
    let log_floor x = Float.floor (log x /. log base) in
    let bucket_ranges =
      if Array.length positives = 0 then []
      else begin
        let lo, hi = Stats.min_max positives in
        let e_lo = int_of_float (log_floor lo) in
        let e_hi = int_of_float (log_floor hi) in
        (* cap the bucket count so degenerate ranges stay printable *)
        let e_lo = max e_lo (e_hi - 39) in
        List.init (e_hi - e_lo + 1) (fun i ->
            let e = e_lo + i in
            (base ** float_of_int e, base ** float_of_int (e + 1)))
      end
    in
    let count_in (lo, hi) =
      Array.fold_left
        (fun acc x -> if x >= lo && x < hi then acc + 1 else acc)
        0 positives
    in
    let pos_buckets =
      List.map (fun (lo, hi) -> (lo, hi, count_in (lo, hi))) bucket_ranges
    in
    (* samples below the capped lowest boundary land in the first bucket *)
    let pos_buckets =
      match pos_buckets with
      | (lo, hi, c) :: rest ->
        let below =
          Array.fold_left
            (fun acc x -> if x > 0.0 && x < lo then acc + 1 else acc)
            0 positives
        in
        (lo, hi, c + below) :: rest
      | [] -> []
    in
    let all =
      if non_positive > 0 then
        let first_bound =
          match pos_buckets with (lo, _, _) :: _ -> lo | [] -> 1.0
        in
        (0.0, first_bound, non_positive) :: pos_buckets
      else pos_buckets
    in
    Array.of_list all
  end

let names () =
  Hashtbl.fold (fun name _ acc -> name :: acc) registry []
  |> List.sort String.compare

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> Atomic.set c.count 0
      | Gauge g -> g.value <- 0.0
      | Histogram h ->
        h.len <- 0;
        h.total <- 0;
        h.sum <- 0.0;
        h.rng <- Prng.of_string h.h_name)
    registry

let sorted_metrics () =
  List.map (fun name -> (name, Hashtbl.find registry name)) (names ())

let format_value v =
  if Float.is_nan v then "-"
  else if Float.abs v >= 1e4 || (Float.abs v < 1e-3 && v <> 0.0) then
    Printf.sprintf "%.3g" v
  else Printf.sprintf "%.4g" v

let render () =
  let table =
    Dcopt_util.Text_table.create
      ~headers:[ "Metric"; "Type"; "Count"; "Value/Mean"; "p50"; "p90"; "p99"; "Max" ]
  in
  List.iter
    (fun (name, m) ->
      let row =
        match m with
        | Counter c ->
          [ name; "counter"; string_of_int (Atomic.get c.count); "-"; "-";
            "-"; "-"; "-" ]
        | Gauge g ->
          [ name; "gauge"; "-"; format_value g.value; "-"; "-"; "-"; "-" ]
        | Histogram h ->
          if h.len = 0 then
            [ name; "histogram"; "0"; "-"; "-"; "-"; "-"; "-" ]
          else
            let xs = samples h in
            let _, hi = Stats.min_max xs in
            [
              name; "histogram"; string_of_int h.total;
              format_value (mean h);
              format_value (Stats.quantile xs 0.5);
              format_value (Stats.quantile xs 0.9);
              format_value (Stats.quantile xs 0.99);
              format_value hi;
            ]
      in
      Dcopt_util.Text_table.add_row table row)
    (sorted_metrics ());
  Dcopt_util.Text_table.render table

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float v =
  if Float.is_nan v then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let to_json_lines () =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, m) ->
      let help =
        match Hashtbl.find_opt help_texts name with
        | Some h -> Printf.sprintf ",\"help\":\"%s\"" (json_escape h)
        | None -> ""
      in
      (match m with
      | Counter c ->
        Buffer.add_string b
          (Printf.sprintf "{\"name\":\"%s\",\"type\":\"counter\",\"value\":%d%s}"
             (json_escape name) (Atomic.get c.count) help)
      | Gauge g ->
        Buffer.add_string b
          (Printf.sprintf "{\"name\":\"%s\",\"type\":\"gauge\",\"value\":%s%s}"
             (json_escape name) (json_float g.value) help)
      | Histogram h ->
        let xs = samples h in
        let stats =
          if h.len = 0 then "\"count\":0"
          else
            Printf.sprintf
              "\"count\":%d,\"mean\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s,\"min\":%s,\"max\":%s"
              h.total
              (json_float (mean h))
              (json_float (Stats.quantile xs 0.5))
              (json_float (Stats.quantile xs 0.9))
              (json_float (Stats.quantile xs 0.99))
              (json_float (fst (Stats.min_max xs)))
              (json_float (snd (Stats.min_max xs)))
        in
        let bucket_json =
          buckets h |> Array.to_list
          |> List.map (fun (lo, hi, c) ->
                 Printf.sprintf "{\"lo\":%s,\"hi\":%s,\"count\":%d}"
                   (json_float lo) (json_float hi) c)
          |> String.concat ","
        in
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"%s\",\"type\":\"histogram\",%s,\"buckets\":[%s]%s}"
             (json_escape name) stats bucket_json help));
      Buffer.add_char b '\n')
    (sorted_metrics ());
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* OpenMetrics exposition                                              *)

(* OpenMetrics metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted
   names map '.' (and anything else illegal) to '_'. Distinct registry
   names that collide after sanitization share an exposition family —
   harmless for the dot-separated names this code base uses. *)
let openmetrics_name name =
  let b = Buffer.create (String.length name) in
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> Buffer.add_char b c
      | '0' .. '9' ->
        if i = 0 then Buffer.add_char b '_';
        Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

(* HELP text and label values share one escape set: backslash, newline
   and double quote (the spec requires the first two for HELP, all three
   for label values; escaping the quote in HELP text is also legal). *)
let openmetrics_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '"' -> Buffer.add_string b "\\\""
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let om_float v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else Dcopt_util.Json.float_lit v

let render_openmetrics () =
  let b = Buffer.create 4096 in
  List.iter
    (fun (name, m) ->
      let om = openmetrics_name name in
      (match Hashtbl.find_opt help_texts name with
      | Some h ->
        Printf.bprintf b "# HELP %s %s\n" om (openmetrics_escape h)
      | None -> ());
      match m with
      | Counter c ->
        Printf.bprintf b "# TYPE %s counter\n" om;
        Printf.bprintf b "%s_total %d\n" om (Atomic.get c.count)
      | Gauge g ->
        Printf.bprintf b "# TYPE %s gauge\n" om;
        Printf.bprintf b "%s %s\n" om (om_float g.value)
      | Histogram h ->
        Printf.bprintf b "# TYPE %s histogram\n" om;
        (* cumulative _bucket series over the log-scale boundaries; the
           +Inf bucket carries the exact total, so past the reservoir cap
           the un-retained remainder is attributed to +Inf (cumulative
           counts stay non-decreasing and _count-consistent) *)
        let cum = ref 0 in
        Array.iter
          (fun (_, hi, c) ->
            cum := !cum + c;
            Printf.bprintf b "%s_bucket{le=\"%s\"} %d\n" om (om_float hi) !cum)
          (buckets h);
        Printf.bprintf b "%s_bucket{le=\"+Inf\"} %d\n" om h.total;
        Printf.bprintf b "%s_sum %s\n" om (om_float h.sum);
        Printf.bprintf b "%s_count %d\n" om h.total)
    (sorted_metrics ());
  Buffer.add_string b "# EOF\n";
  Buffer.contents b
