(** Process-wide metrics registry: named counters, gauges and histograms.

    Metrics are registered globally by name; creating the same name twice
    returns the same instrument (creating it twice with different types
    raises [Invalid_argument]). Recording is always on and cheap — a
    counter bump is a hashtable-free field update once the instrument is in
    hand — so library code can keep module-level instruments and update
    them unconditionally.

    Histograms keep their raw samples exactly up to a fixed cap (8192
    observations), so summaries below the cap are exact: quantiles come
    from {!Dcopt_util.Stats.quantile} and the rendered distribution uses
    log-scale buckets (successive powers of a fixed base), which suits
    the heavy-tailed quantities this code base measures (energies,
    delays, iteration counts). Past the cap the histogram switches to
    deterministic reservoir sampling (Algorithm R, PRNG seeded from the
    metric name): [count], [observed_sum] and the mean stay exact while
    quantiles and min/max become unbiased estimates, and memory stays
    bounded for arbitrarily long [serve] processes. *)

type counter
type gauge
type histogram

val counter : ?help:string -> string -> counter
(** Find-or-create the counter registered under this name. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1, must be >= 0) to the counter. Counter updates
    are atomic and may come from any domain (library code bumps
    module-level counters from inside {!Dcopt_par.Par} pool tasks);
    gauges and histograms must only be touched from the main domain. *)

val value : counter -> int

val gauge : ?help:string -> string -> gauge
(** Find-or-create the gauge registered under this name. *)

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : ?help:string -> string -> histogram
(** Find-or-create the histogram registered under this name. *)

val observe : histogram -> float -> unit

val count : histogram -> int
(** Total number of observations ever made — exact even past the
    reservoir cap (where it exceeds [Array.length (samples h)]). *)

val observed_sum : histogram -> float
(** Exact running sum of every observation (reservoir-independent). *)

val reservoir_cap : int
(** Maximum number of raw samples a histogram retains (8192). *)

val samples : histogram -> float array
(** Copy of the retained samples. Below {!reservoir_cap} this is every
    observation in observation order; past it, a deterministic uniform
    subsample of size [reservoir_cap]. *)

val quantile : histogram -> float -> float
(** [quantile h q] with [q] in \[0, 1\]; linear interpolation between order
    statistics over the retained samples; [nan] when the histogram is
    empty. Exact below the reservoir cap, an estimate past it. *)

val mean : histogram -> float
(** Exact mean over all observations ([observed_sum / count]); [nan]
    when empty. *)

val buckets : ?base:float -> histogram -> (float * float * int) array
(** Log-scale bucket counts [(lo, hi, count)] with boundaries at integer
    powers of [base] (default 10), covering the positive samples;
    non-positive samples are collected in a leading [(0, smallest bound)]
    bucket. Empty when no samples were observed. Computed over the
    retained samples (see {!samples}). *)

val names : unit -> string list
(** All registered metric names, sorted. *)

val reset : unit -> unit
(** Zero every registered metric (counters to 0, gauges to 0, histograms
    emptied and their reservoir PRNGs reseeded). Registration survives,
    so module-level instruments stay valid — intended for tests and for
    the CLI between runs. *)

val render : unit -> string
(** All metrics as a fixed-width table ({!Dcopt_util.Text_table}):
    counters and gauges with their value, histograms with count, mean,
    p50/p90/p99 and max. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal (used by the
    JSON emitters here and in {!Span}). *)

val to_json_lines : unit -> string
(** One JSON object per line per metric, machine-readable:
    [{"name":..., "type":"counter"|"gauge"|"histogram", ...}]. Histogram
    lines carry count, mean, quantiles and log-scale buckets. *)

val render_openmetrics : unit -> string
(** The full registry in OpenMetrics text exposition format, terminated
    by [# EOF]. Dotted metric names are sanitized to
    [\[a-zA-Z_:\]\[a-zA-Z0-9_:\]*] ('.' becomes '_'); [?help] strings
    become [# HELP] lines with backslash/newline/quote escaping; each
    series gets a [# TYPE] line. Counters expose a single [_total]
    sample; gauges a bare sample; histograms a cumulative
    [_bucket{le="..."}] series over the log-scale boundaries plus
    [_bucket{le="+Inf"}], [_sum] and [_count] — the +Inf bucket and
    [_count] carry the exact observation total even past the reservoir
    cap. Non-finite values render as [NaN], [+Inf], [-Inf]. *)
