module Json = Dcopt_util.Json

type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

(* One process-global sink. Events come from any domain (pool workers
   emit inside batch tasks), so the channel write is mutex-protected and
   each event is flushed as one whole line — a crashed process leaves a
   valid JSONL prefix, and lines from different domains never shear. *)
type sink = { chan : out_channel; min_level : level; owns_chan : bool }

let sink_mutex = Mutex.create ()
let current : sink option ref = ref None

let close () =
  Mutex.lock sink_mutex;
  (match !current with
  | Some s ->
    (try flush s.chan with Sys_error _ -> ());
    if s.owns_chan then close_out_noerr s.chan;
    current := None
  | None -> ());
  Mutex.unlock sink_mutex

let set_channel ?(min_level = Info) chan =
  close ();
  Mutex.lock sink_mutex;
  current := Some { chan; min_level; owns_chan = false };
  Mutex.unlock sink_mutex

let open_file ?(min_level = Info) path =
  close ();
  let chan =
    open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path
  in
  Mutex.lock sink_mutex;
  current := Some { chan; min_level; owns_chan = true };
  Mutex.unlock sink_mutex

let active level =
  match !current with
  | None -> false
  | Some s -> level_rank level >= level_rank s.min_level

(* Correlation scope. Domain-local so a pool worker task can carry the
   batch/job identity of the work it is running without racing other
   workers; [with_scope] layers onto the enclosing scope (unset fields
   inherit), so [run_id] set at process level survives into per-job
   scopes set inside worker closures. *)
type scope = {
  run_id : string option;
  batch_id : int option;
  worker_id : string option;
  job_id : string option;
}

let empty_scope =
  { run_id = None; batch_id = None; worker_id = None; job_id = None }

let scope_key = Domain.DLS.new_key (fun () -> empty_scope)

(* The run id is one per process (set at CLI startup, before the pool
   exists), so it lives outside the domain-local scopes: every domain
   inherits it without threading it through each task closure. A scoped
   run_id still overrides it. The worker id works the same way: a fleet
   worker process is one worker for its whole life, so [minpower worker]
   sets it once and every event the process emits carries it. *)
let global_run_id = ref None
let set_run_id id = global_run_id := Some id
let global_worker_id = ref None
let set_worker_id id = global_worker_id := Some id

let with_scope ?run_id ?batch_id ?worker_id ?job_id fn =
  let outer = Domain.DLS.get scope_key in
  let merged =
    {
      run_id = (match run_id with Some _ -> run_id | None -> outer.run_id);
      batch_id =
        (match batch_id with Some _ -> batch_id | None -> outer.batch_id);
      worker_id =
        (match worker_id with Some _ -> worker_id | None -> outer.worker_id);
      job_id = (match job_id with Some _ -> job_id | None -> outer.job_id);
    }
  in
  Domain.DLS.set scope_key merged;
  Fun.protect ~finally:(fun () -> Domain.DLS.set scope_key outer) fn

let current_scope () =
  let s = Domain.DLS.get scope_key in
  let run_id =
    match s.run_id with Some _ -> s.run_id | None -> !global_run_id
  in
  (run_id, s.batch_id, s.job_id)

let current_worker_id () =
  let s = Domain.DLS.get scope_key in
  match s.worker_id with Some _ -> s.worker_id | None -> !global_worker_id

let emit ?(fields = []) level event =
  match !current with
  | None -> ()
  | Some s when level_rank level < level_rank s.min_level -> ()
  | Some s ->
    let scope = Domain.DLS.get scope_key in
    let run_id =
      match scope.run_id with Some _ -> scope.run_id | None -> !global_run_id
    in
    let worker_id =
      match scope.worker_id with
      | Some _ -> scope.worker_id
      | None -> !global_worker_id
    in
    let opt k v f = match v with Some x -> [ (k, f x) ] | None -> [] in
    let line =
      Json.Obj
        (("ts_ns", Json.Int (Int64.to_int (Clock.now_ns ())))
        :: ("level", Json.String (level_to_string level))
        :: ("event", Json.String event)
        :: (opt "run_id" run_id (fun x -> Json.String x)
           @ opt "batch_id" scope.batch_id (fun x -> Json.Int x)
           @ opt "worker_id" worker_id (fun x -> Json.String x)
           @ opt "job_id" scope.job_id (fun x -> Json.String x)
           @ fields))
    in
    let rendered = Json.to_string line in
    Mutex.lock sink_mutex;
    (* re-check under the lock: close () may have raced the emit *)
    (match !current with
    | Some s' when s' == s ->
      (try
         output_string s.chan rendered;
         output_char s.chan '\n';
         flush s.chan
       with Sys_error _ -> ())
    | _ -> ());
    Mutex.unlock sink_mutex

let debug ?fields event = emit ?fields Debug event
let info ?fields event = emit ?fields Info event
let warn ?fields event = emit ?fields Warn event
let error ?fields event = emit ?fields Error event
