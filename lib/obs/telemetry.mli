(** Optimizer convergence telemetry.

    Every optimizer ({!Dcopt_opt.Heuristic}, {!Dcopt_opt.Tilos},
    {!Dcopt_opt.Annealing}, {!Dcopt_opt.Baseline}) accepts an optional
    [?observer] callback and feeds it one {!iteration} record per design
    point it evaluates. When no observer is installed the optimizers pay a
    single [match] per iteration — no record is even allocated — so the
    disabled cost is unmeasurable.

    Observers compose: use {!tee} to both record the raw stream and feed
    the global {!Metrics} registry. *)

type iteration = {
  optimizer : string;  (** "heuristic", "tilos", "annealing", "baseline" *)
  index : int;         (** 0-based position in this optimizer run's stream *)
  vdd : float;         (** supply voltage of the evaluated point, V *)
  vt : float;          (** (representative) threshold voltage, V *)
  static_energy : float;   (** leakage energy per cycle at this point, J *)
  dynamic_energy : float;  (** switching energy per cycle, J *)
  total_energy : float;    (** total energy per cycle, J *)
  feasible : bool;     (** point meets the timing constraint (and budgets,
                           where the optimizer enforces them) *)
}

type observer = iteration -> unit

val null : observer
(** Discards every record. *)

val tee : observer -> observer -> observer
(** Feed each record to both observers, in order. *)

val relabel : string -> observer -> observer
(** [relabel name obs] rewrites each record's [optimizer] field — used by
    optimizers that delegate (e.g. {!Dcopt_opt.Baseline} runs through
    {!Dcopt_opt.Heuristic} but reports as "baseline"). *)

(** {1 Recording} *)

type recorder

val recorder : unit -> recorder

val record : recorder -> observer
(** Observer that appends every record to the recorder. *)

val iterations : recorder -> iteration array
(** All records seen so far, in arrival order. *)

val count : recorder -> int

(** {1 Metrics bridge} *)

val to_metrics : unit -> observer
(** Observer that folds the stream into the global {!Metrics} registry:
    per optimizer [x] it bumps counter [opt.x.iterations], feeds
    histograms [opt.x.iteration.total_energy] (feasible points only) and
    [opt.x.iteration.vdd], and counts infeasible points in
    [opt.x.infeasible]. *)

val to_events : unit -> observer
(** Observer that emits one Debug-level ["opt.iteration"] {!Events} line
    per record (optimizer, index, vdd, vt, total_energy, feasible), so
    the convergence trajectory joins the correlated event log. Cheap
    no-op unless an event sink is active at Debug level. *)
