(** Transregional MOSFET drain-current model.

    Superthreshold behaviour follows the Sakurai-Newton alpha-power law
    (ref [9]); the subthreshold region is joined smoothly with a softplus
    overdrive, giving one expression valid across both regimes — the
    paper's "transregional" requirement (Appendix A.2), which is what lets
    the optimizer exploit subthreshold operation at relaxed delay targets.
    Currents are per w-unit unless a [w] argument says otherwise. *)

val overdrive : Tech.t -> vgs:float -> vt:float -> float
(** Smoothed overdrive [n*vT * ln(1 + exp((vgs - vt)/(n*vT)))]: tends to
    [vgs - vt] far above threshold and decays exponentially below. *)

val i_drive : Tech.t -> vdd:float -> vt:float -> float
(** Saturation drive current per w-unit with the gate at [vdd]:
    [k_drive * overdrive^alpha]. *)

val i_off : Tech.t -> vt:float -> float
(** Total off-state leakage per w-unit at [vgs = 0]: subthreshold channel
    conduction plus the drain-junction floor [i_junction]. Monotone
    decreasing in [vt]. *)

val i_off_subthreshold : Tech.t -> vt:float -> float
(** The channel component of {!i_off} alone. *)

val on_off_ratio : Tech.t -> vdd:float -> vt:float -> float
(** [i_drive / i_off]; a design is losing static control when this falls
    toward 1. *)

val is_subthreshold : Tech.t -> vdd:float -> vt:float -> bool
(** True when the gate switches with [vdd <= vt] (paper's subthreshold
    operation case). *)
