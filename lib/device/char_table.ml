module Gate = Dcopt_netlist.Gate

type axis = { points : float array }

type table = {
  load_axis : axis;
  slew_axis : axis;
  values : float array array;
}

(* Index of the cell containing x: largest i with points.(i) <= x, clamped
   to [0, n-2] so interpolation always has a right neighbour. *)
let bracket axis x =
  let pts = axis.points in
  let n = Array.length pts in
  if x <= pts.(0) then 0
  else if x >= pts.(n - 1) then n - 2
  else begin
    let i = ref 0 in
    while !i < n - 2 && pts.(!i + 1) <= x do incr i done;
    !i
  end

let fraction axis i x =
  let a = axis.points.(i) and b = axis.points.(i + 1) in
  Dcopt_util.Numeric.clamp ~lo:0.0 ~hi:1.0 ((x -. a) /. (b -. a))

let lookup t ~load ~slew =
  let i = bracket t.load_axis load and j = bracket t.slew_axis slew in
  let u = fraction t.load_axis i load and v = fraction t.slew_axis j slew in
  let f00 = t.values.(i).(j)
  and f10 = t.values.(i + 1).(j)
  and f01 = t.values.(i).(j + 1)
  and f11 = t.values.(i + 1).(j + 1) in
  ((1.0 -. u) *. (1.0 -. v) *. f00)
  +. (u *. (1.0 -. v) *. f10)
  +. ((1.0 -. u) *. v *. f01)
  +. (u *. v *. f11)

type cell = {
  kind : Gate.kind;
  fanin : int;
  width : float;
  vdd : float;
  vt : float;
  delay_table : table;
  energy_per_transition : float;
  input_capacitance : float;
  leakage : float;
}

let default_loads =
  Dcopt_util.Numeric.log_interp_points ~lo:1e-15 ~hi:60e-15 ~n:7

let default_slews =
  Dcopt_util.Numeric.log_interp_points ~lo:1e-12 ~hi:2e-9 ~n:6

let sample_delay tech ~kind ~fanin ~width ~vdd ~vt ~load ~slew =
  let stack = Gate.series_stack_depth kind fanin in
  let delay_load =
    {
      Delay.fanin_count = fanin;
      stack_depth = stack;
      cap_fanout_gates = 0.0;
      cap_wire = load;
      res_wire_terms = 0.0;
      flight_time = 0.0;
      max_fanin_delay = slew;
    }
  in
  Delay.gate_delay tech ~vdd ~vt ~w:width delay_load

let characterize ?(loads = default_loads) ?(slews = default_slews) tech ~kind
    ~fanin ~width ~vdd ~vt =
  (match kind with
  | Gate.Input | Gate.Dff ->
    invalid_arg "Char_table.characterize: not a combinational gate"
  | _ -> ());
  if not (Gate.arity_ok kind fanin) then
    invalid_arg "Char_table.characterize: bad arity";
  if Array.length loads < 2 || Array.length slews < 2 then
    invalid_arg "Char_table.characterize: axes need at least two points";
  let values =
    Array.map
      (fun load ->
        Array.map
          (fun slew ->
            sample_delay tech ~kind ~fanin ~width ~vdd ~vt ~load ~slew)
          slews)
      loads
  in
  let self_cap =
    Delay.output_capacitance tech ~w:width
      { Delay.no_load with Delay.fanin_count = fanin }
  in
  {
    kind;
    fanin;
    width;
    vdd;
    vt;
    delay_table =
      { load_axis = { points = loads }; slew_axis = { points = slews }; values };
    energy_per_transition = 0.5 *. self_cap *. vdd *. vdd;
    input_capacitance = tech.Tech.c_gate *. width;
    leakage = Energy.static_power tech ~vdd ~vt ~w:width;
  }

let cell_delay cell ~load ~slew = lookup cell.delay_table ~load ~slew

let to_liberty cells =
  let buf = Buffer.create 4096 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "library (dcopt_characterized) {\n";
  addf "  time_unit : \"1ns\";\n  capacitive_load_unit (1, ff);\n";
  List.iter
    (fun c ->
      addf "  cell (%s%d_w%g_v%g) {\n" (Gate.to_string c.kind) c.fanin c.width
        (c.vdd *. 1000.0);
      addf "    cell_leakage_power : %.6g;\n" c.leakage;
      for pin = 1 to c.fanin do
        addf "    pin (A%d) { direction : input; capacitance : %.4f; }\n" pin
          (c.input_capacitance *. 1e15)
      done;
      addf "    pin (Y) {\n      direction : output;\n";
      addf "      internal_power () { rise_power : %.6g; }\n"
        c.energy_per_transition;
      addf "      timing () {\n        cell_rise (delay_template) {\n";
      let axis_line name pts scale =
        addf "          %s (\"%s\");\n" name
          (String.concat ", "
             (Array.to_list (Array.map (fun x -> Printf.sprintf "%.4g" (x *. scale)) pts)))
      in
      axis_line "index_1" c.delay_table.load_axis.points 1e15;
      axis_line "index_2" c.delay_table.slew_axis.points 1e9;
      addf "          values ( \\\n";
      Array.iteri
        (fun i row ->
          addf "            \"%s\"%s\n"
            (String.concat ", "
               (Array.to_list
                  (Array.map (fun d -> Printf.sprintf "%.5g" (d *. 1e9)) row)))
            (if i = Array.length c.delay_table.values - 1 then "" else ", \\"))
        c.delay_table.values;
      addf "          );\n        }\n      }\n    }\n  }\n")
    cells;
  addf "}\n";
  Buffer.contents buf
