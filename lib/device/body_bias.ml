let bias_safety_limit = 10.0

let vt_of_bias tech ~vsb =
  assert (vsb >= 0.0);
  tech.Tech.vt_natural
  +. (tech.Tech.body_gamma
      *. (sqrt (tech.Tech.body_phi +. vsb) -. sqrt tech.Tech.body_phi))

let max_reachable_vt tech = vt_of_bias tech ~vsb:bias_safety_limit

let bias_for_vt tech ~vt =
  if vt < tech.Tech.vt_natural then None
  else if vt > max_reachable_vt tech then None
  else
    (* invert vt = vt0 + gamma (sqrt(phi + vsb) - sqrt(phi)) *)
    let root =
      ((vt -. tech.Tech.vt_natural) /. tech.Tech.body_gamma)
      +. sqrt tech.Tech.body_phi
    in
    Some ((root *. root) -. tech.Tech.body_phi)
