(** Lookup-table gate characterization (NLDM-style).

    Industrial flows do not evaluate closed-form delay models inside the
    optimizer loop; they characterize each cell once into
    load x input-slew tables and interpolate. This module builds such
    tables from this library's analytic eq. A3 model at a fixed operating
    point, interpolates them bilinearly, and can render a liberty-flavoured
    text dump — giving the repository the characterization layer a
    downstream user would expect, and a second implementation of the delay
    model to check the first against. *)

type axis = {
  points : float array;  (** strictly increasing *)
}

type table = {
  load_axis : axis;      (** external load capacitance, F *)
  slew_axis : axis;      (** driver delay proxy for the input slope, s *)
  values : float array array;  (** values.(i).(j) at load i, slew j *)
}

val lookup : table -> load:float -> slew:float -> float
(** Bilinear interpolation, clamped at the table edges. *)

type cell = {
  kind : Dcopt_netlist.Gate.kind;
  fanin : int;
  width : float;
  vdd : float;
  vt : float;
  delay_table : table;          (** worst-case propagation delay, s *)
  energy_per_transition : float;(** 1/2 C_self Vdd^2 internal energy, J *)
  input_capacitance : float;    (** per pin, F *)
  leakage : float;              (** static power, W *)
}

val characterize :
  ?loads:float array ->    (* default 7 geometric points, 1 fF - 60 fF *)
  ?slews:float array ->    (* default 6 points, 1 ps - 2 ns *)
  Tech.t ->
  kind:Dcopt_netlist.Gate.kind ->
  fanin:int ->
  width:float ->
  vdd:float -> vt:float ->
  cell
(** Characterizes one cell flavour at one operating point by sampling the
    analytic model. Raises [Invalid_argument] for non-combinational kinds
    or bad arity. *)

val cell_delay : cell -> load:float -> slew:float -> float
(** Table-driven delay — interchangeable with
    {!Delay.gate_delay} for the same structural situation (the test suite
    bounds their disagreement on and off the grid). *)

val to_liberty : cell list -> string
(** A liberty-flavoured text rendering of a characterized set (groups,
    pin caps, leakage, and the delay tables); meant for inspection and
    interchange, not for consumption by commercial tools. *)
