(** Transistor-level expansion and SPICE-deck export.

    The paper's problem statement assigns a threshold to "each MOSFET" and
    validates its models with HSPICE; this module provides the matching
    transistor-level view: every gate expands into its static CMOS pull-up /
    pull-down networks, and a whole circuit (with a sized design) renders
    as a level-1 SPICE deck — sized widths, the optimizer's Vdd and Vt
    baked into the model cards, inputs driven by pulse sources. The deck is
    an interchange/inspection artifact (and a counting tool); it is not a
    substitute for this library's own {!Dcopt_sim} transient engine. *)

type network =
  | Device of int          (** driven by fanin pin [i] *)
  | Series of network list
  | Parallel of network list

val pull_down : Dcopt_netlist.Gate.kind -> fanin:int -> network
(** NMOS network of a single-stage gate (NAND: series, NOR: parallel,
    NOT/BUF stage: one device). AND/OR are their inverting core (the
    output inverter is accounted separately); XOR/XNOR of arity 2 are the
    standard 2x2 AOI over true and complemented inputs, where pins
    [fanin..2*fanin-1] denote complemented inputs. Raises
    [Invalid_argument] on non-combinational kinds. *)

val dual : network -> network
(** De Morgan dual: series <-> parallel — the PMOS network. *)

val network_device_count : network -> int

val transistor_count : Dcopt_netlist.Gate.kind -> fanin:int -> int
(** Total MOSFETs of the full static CMOS realization, including output
    inverters of AND/OR/BUF and input inverters of XOR-class gates;
    multi-input XOR/XNOR count as cascades of 2-input stages. *)

val circuit_transistor_count : Dcopt_netlist.Circuit.t -> int
(** Sum over all combinational gates. *)

val deck :
  ?vdd:float -> ?vt:float -> ?widths:float array ->
  Tech.t -> Dcopt_netlist.Circuit.t -> string
(** Renders a combinational circuit as a SPICE deck: `.model` cards derived
    from the technology (level-1 approximations: VTO from [vt], KP from the
    drive coefficient), one `.subckt` per gate flavour used, an instance
    per gate with its sized width (from [widths], default 4 w-units),
    pulse sources on primary inputs and a `.tran` statement sized to the
    circuit depth. Defaults: [vdd = 1.0], [vt = 0.15]. Raises
    [Invalid_argument] on sequential circuits. *)
