(** Worst-case gate propagation delay (paper Appendix A.2, eq. A3).

    Four components are modelled, as in the paper: the switching-MOSFET
    delay (alpha-power, transregional, leakage-opposed), the
    series-stack intermediate-node delay of multi-input gates, the
    distributed interconnect RC plus time-of-flight, and the contribution
    of the non-zero input rise time (proportional to the slowest fanin's
    delay). *)

type load = {
  fanin_count : int;        (** f_ii, >= 1 for logic gates *)
  stack_depth : int;        (** worst-case series-connected MOSFETs *)
  cap_fanout_gates : float; (** sum over fanouts of w_ij * C_t, in F *)
  cap_wire : float;         (** total interconnect load C_INT, in F *)
  res_wire_terms : float;   (** sum of R_INT_ij * (w_ij C_t + C_INT_ij), in s *)
  flight_time : float;      (** sum of L_INT_ij / v_ij, in s *)
  max_fanin_delay : float;  (** max_j t_dij of the driving gates, in s *)
}

val no_load : load
(** All-zero load with [fanin_count = 1], [stack_depth = 1]; useful as a
    record base. *)

val slope_coefficient : Tech.t -> vdd:float -> vt:float -> float
(** The input-rise-time coefficient [1/2 - (1 - vt/vdd)/(1 + alpha)],
    clamped to \[0, 0.9\] (it approaches and exceeds 1/2 in subthreshold
    operation). *)

val effective_drive : Tech.t -> vdd:float -> vt:float -> w:float -> load -> float
(** Net pull current: stack-degraded drive minus the off-current of the
    [fanin_count] opposing devices, in A. May be non-positive when leakage
    overwhelms drive (deep subthreshold with low vt). *)

val switching_delay : Tech.t -> vdd:float -> vt:float -> w:float -> load -> float
(** The output-node charging component alone: [C_out * vdd / (2 * I_eff)];
    [infinity] when {!effective_drive} is non-positive. *)

val gate_delay : Tech.t -> vdd:float -> vt:float -> w:float -> load -> float
(** Full eq. A3 delay: slope + switching + stack + wire + flight.
    [infinity] when the operating point cannot switch. *)

val output_capacitance : Tech.t -> w:float -> load -> float
(** C_out = C_PD w + (f_ii - 1) C_m w + cap_fanout_gates + cap_wire —
    shared by the delay and dynamic-energy models. *)
