(** Static body-bias threshold adjustment (paper Fig. 1 and §1).

    The paper's manufacturing route to arbitrary thresholds: skip the
    threshold-adjust implant (leaving "natural" low-Vt devices) and apply a
    static reverse bias to the p-substrate / n-well. The standard body
    effect relates the two:
    [vt(vsb) = vt_natural + gamma (sqrt(phi + vsb) - sqrt(phi))]. *)

val vt_of_bias : Tech.t -> vsb:float -> float
(** Threshold magnitude realized by reverse bias [vsb >= 0], V. *)

val bias_for_vt : Tech.t -> vt:float -> float option
(** Reverse bias realizing threshold [vt]; [None] when [vt] is below the
    natural threshold (a forward bias would be needed) or beyond the bias
    reachable at 10 V (junction-safety bound). *)

val max_reachable_vt : Tech.t -> float
(** Threshold at the 10 V reverse-bias safety bound. *)
