type t = {
  tech_name : string;
  feature_size : float;
  alpha : float;
  k_drive : float;
  s_swing : float;
  thermal_voltage : float;
  i_junction : float;
  beta_ratio : float;
  c_gate : float;
  c_parasitic : float;
  c_intermediate : float;
  wire_cap_per_m : float;
  wire_res_per_m : float;
  wire_velocity : float;
  vdd_min : float;
  vdd_max : float;
  vt_min : float;
  vt_max : float;
  w_min : float;
  w_max : float;
  body_gamma : float;
  body_phi : float;
  vt_natural : float;
}

(* Calibration notes: alpha ~ 1.05 reflects the paper's strongly
   velocity-saturated ("quasi-ballistic") transport — with alpha near 1 the
   delay ratio Vdd/(Vdd - Vt)^alpha is nearly flat in Vdd at low Vt, which
   is precisely what lets the joint optimum sit at Vdd ~ 0.6-1.2 V while a
   Vt = 0.7 V design must stay near 3.3 V to make 300 MHz (the paper's
   Table 1/2 shape). k_drive gives Idsat ~ 100 uA/um at 3.3 V / 0.7 V, a
   low-power 1997 process; capacitances correspond to ~1.7 fF/um of gate
   and ~1 fF/um of diffusion; wire constants are mid-1990s Al/SiO2 metal-2
   figures. *)
let default =
  {
    tech_name = "cmos035";
    feature_size = 0.35e-6;
    alpha = 1.05;
    k_drive = 2.0e-5;
    s_swing = 0.100;
    thermal_voltage = 0.0259;
    i_junction = 1.0e-15;
    beta_ratio = 2.0;
    c_gate = 0.70e-15;
    c_parasitic = 0.20e-15;
    c_intermediate = 0.10e-15;
    wire_cap_per_m = 0.20e-9;
    wire_res_per_m = 1.5e5;
    wire_velocity = 1.5e8;
    vdd_min = 0.1;
    vdd_max = 3.3;
    vt_min = 0.1;
    vt_max = 0.7;
    w_min = 1.0;
    w_max = 100.0;
    body_gamma = 0.40;
    body_phi = 0.70;
    vt_natural = 0.05;
  }

let subthreshold_scale t = t.alpha *. t.s_swing /. log 10.0

(* Constant-field scaling: geometry and voltages shrink together, vertical
   fields stay constant. kT/q does not scale, so s_swing stays put; wire
   cross-sections shrink in both dimensions, so resistance per length grows
   quadratically. *)
let scale t ~factor =
  assert (factor > 0.0 && factor <= 1.0);
  let f = factor in
  {
    t with
    tech_name =
      Printf.sprintf "%s_scaled_%.0fnm" t.tech_name
        (t.feature_size *. f *. 1e9);
    feature_size = t.feature_size *. f;
    c_gate = t.c_gate *. f;
    c_parasitic = t.c_parasitic *. f;
    c_intermediate = t.c_intermediate *. f;
    wire_res_per_m = t.wire_res_per_m /. (f *. f);
    vdd_max = t.vdd_max *. f;
    vdd_min = t.vdd_min;
    i_junction = t.i_junction *. f;
  }

let at_temperature t ~celsius =
  assert (celsius > -273.0);
  let t0 = 273.15 +. 25.0 in
  let tk = 273.15 +. celsius in
  let ratio = tk /. t0 in
  {
    t with
    tech_name = Printf.sprintf "%s@%.0fC" t.tech_name celsius;
    thermal_voltage = t.thermal_voltage *. ratio;
    s_swing = t.s_swing *. ratio;
    k_drive = t.k_drive *. (ratio ** -1.5);
  }

let validate_all t =
  let problems = ref [] in
  let problem msg = problems := msg :: !problems in
  let positive =
    [
      ("feature_size", t.feature_size); ("alpha", t.alpha);
      ("k_drive", t.k_drive); ("s_swing", t.s_swing);
      ("thermal_voltage", t.thermal_voltage); ("beta_ratio", t.beta_ratio);
      ("c_gate", t.c_gate); ("c_parasitic", t.c_parasitic);
      ("c_intermediate", t.c_intermediate);
      ("wire_cap_per_m", t.wire_cap_per_m);
      ("wire_res_per_m", t.wire_res_per_m);
      ("wire_velocity", t.wire_velocity);
    ]
  in
  let finite =
    positive
    @ [
        ("i_junction", t.i_junction); ("vdd_min", t.vdd_min);
        ("vdd_max", t.vdd_max); ("vt_min", t.vt_min); ("vt_max", t.vt_max);
        ("w_min", t.w_min); ("w_max", t.w_max); ("body_gamma", t.body_gamma);
        ("body_phi", t.body_phi); ("vt_natural", t.vt_natural);
      ]
  in
  List.iter
    (fun (name, v) ->
      if not (Float.is_finite v) then problem (name ^ " must be finite"))
    finite;
  List.iter
    (fun (name, v) -> if v <= 0.0 then problem (name ^ " must be positive"))
    positive;
  if t.i_junction < 0.0 then problem "i_junction must be non-negative";
  (* min = max is a legal pinned value, not an empty range *)
  if not (0.0 < t.vdd_min && t.vdd_min <= t.vdd_max) then
    problem "vdd range is empty";
  if not (0.0 < t.vt_min && t.vt_min <= t.vt_max) then
    problem "vt range is empty";
  if not (0.0 < t.w_min && t.w_min <= t.w_max) then
    problem "width range is empty";
  if t.vt_min >= t.vdd_max then
    problem "ill-posed physics: vt_min >= vdd_max (every vt is at or above \
             every vdd, no device ever turns on)";
  if t.body_gamma < 0.0 || t.body_phi <= 0.0 then
    problem "body-effect parameters out of range";
  List.rev !problems

let validate t =
  match validate_all t with [] -> Ok () | msg :: _ -> Error msg
