module Gate = Dcopt_netlist.Gate
module Circuit = Dcopt_netlist.Circuit

type network = Device of int | Series of network list | Parallel of network list

let pull_down kind ~fanin =
  let pins = List.init fanin (fun i -> Device i) in
  match kind with
  | Gate.Nand | Gate.And -> Series pins
  | Gate.Nor | Gate.Or -> Parallel pins
  | Gate.Not | Gate.Buf -> Device 0
  | Gate.Xor ->
    if fanin <> 2 then
      invalid_arg "Spice_export.pull_down: XOR network is 2-input";
    (* output low when a = b *)
    Parallel [ Series [ Device 0; Device 1 ]; Series [ Device 2; Device 3 ] ]
  | Gate.Xnor ->
    if fanin <> 2 then
      invalid_arg "Spice_export.pull_down: XNOR network is 2-input";
    (* output low when a <> b *)
    Parallel [ Series [ Device 0; Device 3 ]; Series [ Device 2; Device 1 ] ]
  | Gate.Input | Gate.Dff ->
    invalid_arg "Spice_export.pull_down: not a combinational gate"

let rec dual = function
  | Device i -> Device i
  | Series nets -> Parallel (List.map dual nets)
  | Parallel nets -> Series (List.map dual nets)

let rec network_device_count = function
  | Device _ -> 1
  | Series nets | Parallel nets ->
    List.fold_left (fun acc n -> acc + network_device_count n) 0 nets

let transistor_count kind ~fanin =
  match kind with
  | Gate.Not -> 2
  | Gate.Buf -> 4
  | Gate.Nand | Gate.Nor -> 2 * fanin
  | Gate.And | Gate.Or -> (2 * fanin) + 2
  | Gate.Xor | Gate.Xnor ->
    (* cascade of (fanin - 1) two-input stages, each an 8T AOI plus two
       input inverters *)
    12 * max 1 (fanin - 1)
  | Gate.Input | Gate.Dff ->
    invalid_arg "Spice_export.transistor_count: not a combinational gate"

let circuit_transistor_count circuit =
  Array.fold_left
    (fun acc nd ->
      match nd.Circuit.kind with
      | Gate.Input | Gate.Dff -> acc
      | kind ->
        acc + transistor_count kind ~fanin:(Array.length nd.Circuit.fanins))
    0 (Circuit.nodes circuit)

(* ------------------------------------------------------------------ *)
(* Deck emission                                                       *)

type emitter = {
  buf : Buffer.t;
  tech : Tech.t;
  mutable fresh_net : int;
  mutable fresh_dev : int;
}

let addf e fmt = Printf.ksprintf (Buffer.add_string e.buf) fmt

let fresh_net e prefix =
  e.fresh_net <- e.fresh_net + 1;
  Printf.sprintf "%s_i%d" prefix e.fresh_net

let emit_mosfet e ~polarity ~drain ~gate ~source ~width_units =
  e.fresh_dev <- e.fresh_dev + 1;
  let f_um = e.tech.Tech.feature_size *. 1e6 in
  let model, bulk, w =
    match polarity with
    | `N -> ("nmos_opt", "0", width_units)
    | `P -> ("pmos_opt", "vdd", width_units *. e.tech.Tech.beta_ratio)
  in
  addf e "M%d %s %s %s %s %s W=%.3fu L=%.3fu\n" e.fresh_dev drain gate source
    bulk model (w *. f_um) f_um

(* Emit a transistor network between [top] and [bottom]; [pin_net i] gives
   the gate net of pin i. Series chains allocate internal nodes. *)
let rec emit_network e ~polarity ~top ~bottom ~pin_net ~prefix ~width_units net =
  match net with
  | Device i ->
    emit_mosfet e ~polarity ~drain:top ~gate:(pin_net i) ~source:bottom
      ~width_units
  | Parallel nets ->
    List.iter
      (emit_network e ~polarity ~top ~bottom ~pin_net ~prefix ~width_units)
      nets
  | Series nets ->
    let rec chain current = function
      | [] -> ()
      | [ last ] ->
        emit_network e ~polarity ~top:current ~bottom ~pin_net ~prefix
          ~width_units last
      | first :: rest ->
        let mid = fresh_net e prefix in
        emit_network e ~polarity ~top:current ~bottom:mid ~pin_net ~prefix
          ~width_units first;
        chain mid rest
    in
    chain top nets

(* One inverting CMOS stage computing NOT(stack function) of the pins. *)
let emit_stage e ~output ~pin_net ~prefix ~width_units pd =
  emit_network e ~polarity:`N ~top:output ~bottom:"0" ~pin_net ~prefix
    ~width_units pd;
  emit_network e ~polarity:`P ~top:"vdd" ~bottom:output ~pin_net ~prefix
    ~width_units (dual pd)

let emit_inverter e ~output ~input ~prefix ~width_units =
  emit_stage e ~output ~pin_net:(fun _ -> input) ~prefix ~width_units
    (Device 0)

(* Two-input XOR/XNOR stage with its own input inverters. *)
let emit_xor2 e ~kind ~output ~a ~b ~prefix ~width_units =
  let na = fresh_net e prefix and nb = fresh_net e prefix in
  emit_inverter e ~output:na ~input:a ~prefix ~width_units;
  emit_inverter e ~output:nb ~input:b ~prefix ~width_units;
  let pins = [| a; b; na; nb |] in
  emit_stage e ~output ~pin_net:(fun i -> pins.(i)) ~prefix ~width_units
    (pull_down kind ~fanin:2)

let emit_gate e ~output ~fanin_nets ~prefix ~width_units kind =
  let fanin = Array.length fanin_nets in
  let pin_net i = fanin_nets.(i) in
  match kind with
  | Gate.Not ->
    emit_inverter e ~output ~input:fanin_nets.(0) ~prefix ~width_units
  | Gate.Buf ->
    let mid = fresh_net e prefix in
    emit_inverter e ~output:mid ~input:fanin_nets.(0) ~prefix ~width_units;
    emit_inverter e ~output ~input:mid ~prefix ~width_units
  | Gate.Nand | Gate.Nor ->
    emit_stage e ~output ~pin_net ~prefix ~width_units
      (pull_down kind ~fanin)
  | Gate.And | Gate.Or ->
    let mid = fresh_net e prefix in
    emit_stage e ~output:mid ~pin_net ~prefix ~width_units
      (pull_down kind ~fanin);
    emit_inverter e ~output ~input:mid ~prefix ~width_units
  | Gate.Xor | Gate.Xnor ->
    (* left-to-right cascade; only the last stage keeps the XNOR flavour *)
    if fanin = 2 then
      emit_xor2 e ~kind ~output ~a:fanin_nets.(0) ~b:fanin_nets.(1) ~prefix
        ~width_units
    else begin
      let acc = ref fanin_nets.(0) in
      for i = 1 to fanin - 2 do
        let mid = fresh_net e prefix in
        emit_xor2 e ~kind:Gate.Xor ~output:mid ~a:!acc ~b:fanin_nets.(i)
          ~prefix ~width_units;
        acc := mid
      done;
      emit_xor2 e ~kind ~output ~a:!acc ~b:fanin_nets.(fanin - 1) ~prefix
        ~width_units
    end
  | Gate.Input | Gate.Dff ->
    invalid_arg "Spice_export.emit_gate: not a combinational gate"

let deck ?(vdd = 1.0) ?(vt = 0.15) ?widths tech circuit =
  if not (Circuit.is_combinational circuit) then
    invalid_arg "Spice_export.deck: circuit is sequential";
  let e = { buf = Buffer.create 16384; tech; fresh_net = 0; fresh_dev = 0 } in
  let net id = Printf.sprintf "n%d" id in
  let width_of id =
    match widths with
    | Some w -> w.(id)
    | None -> 4.0
  in
  addf e "* %s: level-1 SPICE deck generated by dcopt\n" (Circuit.name circuit);
  addf e "* %d gates, %d transistors, Vdd=%.3gV Vt=%.3gV\n"
    (Circuit.gate_count circuit)
    (circuit_transistor_count circuit)
    vdd vt;
  (* level-1 model cards: match the saturation current of the transregional
     model at full gate drive (a first-order interchange approximation) *)
  let od = Mosfet.overdrive tech ~vgs:vdd ~vt in
  let kp =
    if od > 0.0 then
      2.0 *. tech.Tech.k_drive *. (od ** tech.Tech.alpha) /. (od *. od)
    else tech.Tech.k_drive
  in
  addf e ".model nmos_opt NMOS (LEVEL=1 VTO=%.4f KP=%.4e LAMBDA=0.05)\n" vt kp;
  addf e ".model pmos_opt PMOS (LEVEL=1 VTO=%.4f KP=%.4e LAMBDA=0.05)\n"
    (-.vt)
    (kp /. tech.Tech.beta_ratio);
  addf e "Vsupply vdd 0 DC %.4f\n" vdd;
  (* pulse sources on the inputs, staggered so transitions are visible *)
  Array.iteri
    (fun i id ->
      addf e "Vin%d %s 0 PULSE(0 %.4f %dn 0.05n 0.05n 5n 10n) ; input %s\n" i
        (net id) vdd (1 + (i mod 4))
        (Circuit.node circuit id).Circuit.name)
    (Circuit.inputs circuit);
  (* gates in topological order *)
  Array.iter
    (fun id ->
      let nd = Circuit.node circuit id in
      match nd.Circuit.kind with
      | Gate.Input -> ()
      | Gate.Dff -> assert false
      | kind ->
        addf e "* gate %s (%s)\n" nd.Circuit.name (Gate.to_string kind);
        emit_gate e ~output:(net id)
          ~fanin_nets:(Array.map net nd.Circuit.fanins)
          ~prefix:(net id) ~width_units:(width_of id) kind)
    (Circuit.topo_order circuit);
  (* output loads *)
  Array.iteri
    (fun i id ->
      addf e "Cload%d %s 0 %.4gf ; output %s\n" i (net id)
        (4.0 *. tech.Tech.c_gate *. 1e15)
        (Circuit.node circuit id).Circuit.name)
    (Circuit.outputs circuit);
  let horizon = 10 * (2 + Circuit.depth circuit) in
  addf e ".tran 0.01n %dn\n.end\n" horizon;
  Buffer.contents e.buf
