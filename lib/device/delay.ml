type load = {
  fanin_count : int;
  stack_depth : int;
  cap_fanout_gates : float;
  cap_wire : float;
  res_wire_terms : float;
  flight_time : float;
  max_fanin_delay : float;
}

let no_load =
  {
    fanin_count = 1;
    stack_depth = 1;
    cap_fanout_gates = 0.0;
    cap_wire = 0.0;
    res_wire_terms = 0.0;
    flight_time = 0.0;
    max_fanin_delay = 0.0;
  }

let slope_coefficient tech ~vdd ~vt =
  let raw = 0.5 -. ((1.0 -. (vt /. vdd)) /. (1.0 +. tech.Tech.alpha)) in
  Dcopt_util.Numeric.clamp ~lo:0.0 ~hi:0.9 raw

let output_capacitance tech ~w load =
  (tech.Tech.c_parasitic *. w)
  +. (float_of_int (max 0 (load.fanin_count - 1)) *. tech.Tech.c_intermediate *. w)
  +. load.cap_fanout_gates +. load.cap_wire

let effective_drive tech ~vdd ~vt ~w load =
  let drive = Mosfet.i_drive tech ~vdd ~vt *. w /. float_of_int load.stack_depth in
  let opposing = float_of_int load.fanin_count *. Mosfet.i_off tech ~vt *. w in
  drive -. opposing

let switching_delay tech ~vdd ~vt ~w load =
  let i_eff = effective_drive tech ~vdd ~vt ~w load in
  if i_eff <= 0.0 then infinity
  else output_capacitance tech ~w load *. vdd /. (2.0 *. i_eff)

(* Each of the (f_ii - 1) internal nodes of a series stack swings by up to
   vdd through the single devices above it (eq. A3's C_mi sum); widths
   cancel because both the node cap and the device current scale with w. *)
let stack_delay tech ~vdd ~vt load =
  let internal_nodes = max 0 (load.fanin_count - 1) in
  if internal_nodes = 0 then 0.0
  else
    let i_single = Mosfet.i_drive tech ~vdd ~vt in
    if i_single <= 0.0 then infinity
    else
      float_of_int internal_nodes *. tech.Tech.c_intermediate *. vdd
      /. (2.0 *. i_single)

let gate_delay tech ~vdd ~vt ~w load =
  let switching = switching_delay tech ~vdd ~vt ~w load in
  if switching = infinity then infinity
  else
    let stack = stack_delay tech ~vdd ~vt load in
    if stack = infinity then infinity
    else
      (slope_coefficient tech ~vdd ~vt *. load.max_fanin_delay)
      +. switching +. stack +. load.res_wire_terms +. load.flight_time
