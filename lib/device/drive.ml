type ctx = {
  vdd : float;
  vt : float;
  i_drive : float;
  i_off : float;
  slope : float;
  static_per_width : float;
  half_vdd_sq : float;
}

let make tech ~vdd ~vt =
  let i_drive = Mosfet.i_drive tech ~vdd ~vt in
  let i_off = Mosfet.i_off tech ~vt in
  {
    vdd;
    vt;
    i_drive;
    i_off;
    slope = Delay.slope_coefficient tech ~vdd ~vt;
    static_per_width = vdd *. i_off;
    half_vdd_sq = 0.5 *. vdd *. vdd;
  }

let effective_drive ctx ~w (load : Delay.load) =
  let drive = ctx.i_drive *. w /. float_of_int load.Delay.stack_depth in
  let opposing = float_of_int load.Delay.fanin_count *. ctx.i_off *. w in
  drive -. opposing

(* Mirrors Delay.gate_delay term by term (same operations, same
   association) so a context-based evaluation is bit-identical to the
   uncached one — only the Mosfet/slope transcendentals are reused. *)
let gate_delay tech ctx ~w (load : Delay.load) =
  let i_eff = effective_drive ctx ~w load in
  if i_eff <= 0.0 then infinity
  else begin
    let switching =
      Delay.output_capacitance tech ~w load *. ctx.vdd /. (2.0 *. i_eff)
    in
    let internal_nodes = max 0 (load.Delay.fanin_count - 1) in
    if internal_nodes > 0 && ctx.i_drive <= 0.0 then infinity
    else begin
      let stack =
        if internal_nodes = 0 then 0.0
        else
          float_of_int internal_nodes *. tech.Tech.c_intermediate *. ctx.vdd
          /. (2.0 *. ctx.i_drive)
      in
      (ctx.slope *. load.Delay.max_fanin_delay)
      +. switching +. stack +. load.Delay.res_wire_terms
      +. load.Delay.flight_time
    end
  end

let static_power ctx ~w = ctx.static_per_width *. w

let static_energy ctx ~fc ~w =
  assert (fc > 0.0);
  static_power ctx ~w /. fc

let dynamic_energy tech ctx ~w ~activity ~load =
  ctx.half_vdd_sq *. activity *. Delay.output_capacitance tech ~w load
