let overlap_fraction (_ : Tech.t) ~vdd ~vt =
  Float.max 0.0 ((vdd -. (2.0 *. vt)) /. vdd)

let peak_current tech ~vdd ~vt ~w =
  w *. Mosfet.i_drive tech ~vdd:(vdd /. 2.0) ~vt

let energy tech ~vdd ~vt ~w ~activity ~input_transition_time =
  assert (input_transition_time >= 0.0);
  let overlap = overlap_fraction tech ~vdd ~vt in
  if overlap <= 0.0 then 0.0
  else
    activity *. vdd
    *. (peak_current tech ~vdd ~vt ~w /. 6.0)
    *. overlap *. input_transition_time

let transition_time_of_delay driver_delay = 2.0 *. driver_delay
