let static_power tech ~vdd ~vt ~w = vdd *. w *. Mosfet.i_off tech ~vt

let static_energy tech ~fc ~vdd ~vt ~w =
  assert (fc > 0.0);
  static_power tech ~vdd ~vt ~w /. fc

let dynamic_energy tech ~vdd ~w ~activity ~load =
  0.5 *. activity *. vdd *. vdd *. Delay.output_capacitance tech ~w load

let dynamic_power tech ~fc ~vdd ~w ~activity ~load =
  dynamic_energy tech ~vdd ~w ~activity ~load *. fc

let total_energy tech ~fc ~vdd ~vt ~w ~activity ~load =
  static_energy tech ~fc ~vdd ~vt ~w
  +. dynamic_energy tech ~vdd ~w ~activity ~load
