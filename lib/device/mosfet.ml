(* Numerically safe softplus: for large x, ln(1 + e^x) = x + ln(1 + e^-x). *)
let softplus x =
  if x > 30.0 then x else if x < -30.0 then exp x else log1p (exp x)

let overdrive tech ~vgs ~vt =
  let scale = Tech.subthreshold_scale tech in
  scale *. softplus ((vgs -. vt) /. scale)

let i_drive tech ~vdd ~vt =
  tech.Tech.k_drive *. (overdrive tech ~vgs:vdd ~vt ** tech.Tech.alpha)

let i_off_subthreshold tech ~vt =
  tech.Tech.k_drive *. (overdrive tech ~vgs:0.0 ~vt ** tech.Tech.alpha)

let i_off tech ~vt = i_off_subthreshold tech ~vt +. tech.Tech.i_junction

let on_off_ratio tech ~vdd ~vt = i_drive tech ~vdd ~vt /. i_off tech ~vt

let is_subthreshold (_ : Tech.t) ~vdd ~vt = vdd <= vt
