(** Technology-file parsing and serialization.

    A plain `key = value` format (one parameter per line, [#] comments) so
    users can describe their own process instead of patching
    {!Tech.default} in code:

    {v
    # my 0.25um low-power process
    name        = lp025
    feature_size = 0.25e-6
    alpha       = 1.1
    k_drive     = 1.8e-5
    ...
    v}

    Unknown keys are rejected (typos should not silently become defaults);
    omitted keys inherit from a base technology (default {!Tech.default}).
    [to_string] then [parse_string] round-trips exactly. *)

exception Parse_error of { line : int; message : string }

val parse :
  ?file:string ->
  ?base:Tech.t ->
  string ->
  (Tech.t, Dcopt_util.Diag.t list) result
(** Recovering parser: collects a located diagnostic per bad line (codes
    [tech.syntax], [tech.key], [tech.number]) and then runs
    {!Tech.validate_all} on whatever survived ([tech.validate], no line),
    so every problem in a file is reported at once. [Error] is never
    empty. *)

val parse_string : ?base:Tech.t -> string -> Tech.t
(** First-error wrapper over {!parse}: raises {!Parse_error} on syntax
    errors/unknown keys and [Invalid_argument] when the resulting record
    fails {!Tech.validate}. *)

val parse_file : ?base:Tech.t -> string -> Tech.t

val parse_file_checked :
  ?base:Tech.t -> string -> (Tech.t, Dcopt_util.Diag.t list) result
(** {!parse} on a file's contents (unreadable file = one [tech.io]
    diagnostic), with the path stamped into every diagnostic. *)

val to_string : Tech.t -> string
(** Every field, one per line, parseable by {!parse_string}. *)

val write_file : string -> Tech.t -> unit

val known_keys : string list
(** Accepted parameter names, for error messages and documentation. *)

val to_json : Tech.t -> Dcopt_util.Json.t
(** Versioned JSON object (schema version 1, every field explicit, exact
    float round-trip). [to_json] then {!of_json} reproduces the record
    bit-for-bit. *)

val of_json : ?base:Tech.t -> Dcopt_util.Json.t -> (Tech.t, string) result
(** Reads a (possibly partial) tech object over [base] (default
    {!Tech.default}); unknown keys and {!Tech.validate} failures are
    typed errors, never silent defaults. *)
