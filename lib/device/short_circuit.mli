(** Short-circuit (crowbar) dissipation — the paper's announced extension.

    Appendix A.1 neglects the short-circuit component "since under typical
    input signal rise time and output load conditions it is an order of
    magnitude smaller than the switching energy" but notes it is "being
    incorporated in the next version of the optimization tool". This module
    is that next version: a Veendrick-style model (ref [12]) in which both
    networks conduct while the input traverses \[Vt, Vdd - Vt\], drawing a
    triangular current whose peak is the drive at half-swing.

    [E_sc = a * Vdd * (I_peak / 6) * overlap_fraction * tau_in] with
    [I_peak = k w OD(Vdd/2, Vt)^alpha] and
    [overlap_fraction = max 0 ((Vdd - 2 Vt) / Vdd)].

    The model vanishes smoothly when [Vdd <= 2 Vt] (no overlap — the
    classic reason low-Vdd/high-Vt designs have no crowbar current) and
    grows linearly with the input transition time, penalizing weakly-driven
    gates exactly as Veendrick's analysis prescribes. *)

val overlap_fraction : Tech.t -> vdd:float -> vt:float -> float
(** Fraction of the swing during which both networks conduct; 0 when
    [vdd <= 2 vt]. *)

val peak_current : Tech.t -> vdd:float -> vt:float -> w:float -> float
(** Crowbar current at the mid-swing input, A. *)

val energy :
  Tech.t ->
  vdd:float -> vt:float -> w:float -> activity:float ->
  input_transition_time:float ->
  float
(** Short-circuit energy per cycle, J. [input_transition_time] is the
    0-100%% input ramp, typically twice the driving gate's delay. *)

val transition_time_of_delay : float -> float
(** The rise-time proxy used by the power model: [2 * driver_delay]. *)
