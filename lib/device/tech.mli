(** CMOS technology description.

    Device widths are expressed throughout the library in units of the
    minimum feature size F (the paper's [w_i >= 1] convention), so every
    per-width constant here is per *w-unit*: multiply by [w] to get the
    device value. The default instance is a representative 0.35 um / 3.3 V
    process of the paper's era (DESIGN.md, substitution 3). *)

type t = {
  tech_name : string;
  feature_size : float;  (** F in metres *)
  alpha : float;         (** alpha-power-law velocity-saturation index *)
  k_drive : float;       (** drive transconductance, A / w-unit / V^alpha *)
  s_swing : float;       (** subthreshold swing of the composite I-V, V/decade *)
  thermal_voltage : float; (** kT/q at operating temperature, V *)
  i_junction : float;    (** drain-junction leakage, A / w-unit *)
  beta_ratio : float;    (** PMOS/NMOS width ratio (the paper's beta >= 1) *)
  c_gate : float;        (** gate input capacitance, F / w-unit *)
  c_parasitic : float;   (** output overlap+junction+fringe cap, F / w-unit *)
  c_intermediate : float;(** series-stack internal node cap, F / w-unit *)
  wire_cap_per_m : float;   (** F/m *)
  wire_res_per_m : float;   (** ohm/m *)
  wire_velocity : float;    (** signal propagation speed, m/s *)
  vdd_min : float;       (** optimizer search range, V (paper: 0.1) *)
  vdd_max : float;       (** V (paper: 3.3) *)
  vt_min : float;        (** V (paper: 0.1) *)
  vt_max : float;        (** V (paper: 0.7) *)
  w_min : float;         (** w-units (paper: 1) *)
  w_max : float;         (** w-units (paper: 100) *)
  body_gamma : float;    (** body-effect coefficient, sqrt(V) *)
  body_phi : float;      (** 2*phi_F surface potential, V *)
  vt_natural : float;    (** threshold with no adjust implant and zero bias, V *)
}

val default : t
(** The representative 0.35 um process used by all experiments. *)

val scale : t -> factor:float -> t
(** Constant-field scaling to a finer node: [factor] < 1 shrinks the
    feature size (e.g. 0.7 per generation). Dimensions, capacitances and
    the supply ceiling scale by [factor]; drive per w-unit stays constant
    to first order (shorter channel offsets narrower per-unit width); wire
    resistance per metre grows as 1/factor^2 while capacitance per metre is
    roughly constant; the subthreshold swing does not scale (it is set by
    kT/q), which is precisely why leakage grows in scaled technologies.
    The name is suffixed with the new feature size. *)

val at_temperature : t -> celsius:float -> t
(** The same process at another junction temperature: the thermal voltage
    kT/q and the subthreshold swing scale linearly with absolute
    temperature (so leakage grows exponentially on hot dies), and carrier
    mobility degrades drive as (T/T0)^-1.5. The reference record is taken
    to be characterized at 25 C. *)

val subthreshold_scale : t -> float
(** n*vT of the composite transregional model, derived from [s_swing] and
    [alpha] so that the model's I_off slope equals [s_swing] per decade. *)

val validate : t -> (unit, string) result
(** Sanity bounds: positive constants, non-empty search ranges. First
    problem from {!validate_all}. *)

val validate_all : t -> string list
(** Every problem with the record, in a stable order: non-finite or
    non-positive constants, empty [vdd]/[vt]/[w] search ranges, and the
    ill-posed-physics cross-check [vt_min >= vdd_max] (a device that can
    never turn on). [[]] means the record is well-formed. *)
