(** Static and dynamic energy/power of a gate (paper Appendix A.1,
    eqs. A1 and A2). *)

val static_power : Tech.t -> vdd:float -> vt:float -> w:float -> float
(** Leakage power [vdd * w * I_off(vt)], in W (eq. A1's power form). *)

val static_energy : Tech.t -> fc:float -> vdd:float -> vt:float -> w:float -> float
(** Leakage energy charged to one clock cycle: {!static_power} / [fc], J. *)

val dynamic_energy :
  Tech.t ->
  vdd:float -> w:float -> activity:float -> load:Delay.load -> float
(** Switching energy per cycle [1/2 a vdd^2 C_out] with C_out from
    {!Delay.output_capacitance} (eq. A2), in J. [activity] is the node's
    transition density per cycle. *)

val dynamic_power :
  Tech.t ->
  fc:float -> vdd:float -> w:float -> activity:float -> load:Delay.load -> float
(** {!dynamic_energy} * [fc], W. *)

val total_energy :
  Tech.t ->
  fc:float -> vdd:float -> vt:float -> w:float -> activity:float ->
  load:Delay.load -> float
(** Static + dynamic energy per cycle, the optimizer's per-gate cost. *)
