(** Per-(vdd, vt) drive context: the device-model terms that are constant
    across an entire operating-point trial.

    Procedure 2 evaluates M² (vdd, vt) points, each over N gates × 40
    width-search iterations, and the dominant per-iteration cost is the
    transcendental device model ({!Mosfet.i_drive}/{!Mosfet.i_off} call
    [exp]/[**]). Those terms depend only on (vdd, vt), never on the width
    being searched, so a trial can compute them once and reuse them for
    every gate and every iteration. The delay helper here reproduces
    {!Delay.gate_delay} with identical arithmetic (same operations in the
    same association), so the cached path is bit-identical to the uncached
    one; the energy helpers reuse the cached currents through precomputed
    per-width factors (differences are at round-off, orders below the 1e-9
    equivalence bound the test suite enforces). *)

type ctx = {
  vdd : float;              (** supply voltage of the trial, V *)
  vt : float;               (** threshold voltage of the trial, V *)
  i_drive : float;          (** {!Mosfet.i_drive} at (vdd, vt), A per w-unit *)
  i_off : float;            (** {!Mosfet.i_off} at vt, A per w-unit *)
  slope : float;            (** {!Delay.slope_coefficient} at (vdd, vt) *)
  static_per_width : float; (** leakage power per w-unit: vdd · i_off, W *)
  half_vdd_sq : float;      (** dynamic-energy factor: vdd²/2, V² *)
}

val make : Tech.t -> vdd:float -> vt:float -> ctx
(** Evaluate the transcendental device model once for this operating
    point. *)

val effective_drive : ctx -> w:float -> Delay.load -> float
(** {!Delay.effective_drive} with the cached currents. *)

val gate_delay : Tech.t -> ctx -> w:float -> Delay.load -> float
(** {!Delay.gate_delay} with the cached currents and slope coefficient —
    bit-identical to the uncached formula. *)

val static_power : ctx -> w:float -> float
(** {!Energy.static_power} via the cached per-width factor. *)

val static_energy : ctx -> fc:float -> w:float -> float
(** {!Energy.static_energy} via the cached per-width factor. *)

val dynamic_energy :
  Tech.t -> ctx -> w:float -> activity:float -> load:Delay.load -> float
(** {!Energy.dynamic_energy} via the cached vdd²/2 factor. *)
