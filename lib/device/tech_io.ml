exception Parse_error of { line : int; message : string }

(* Field table: name, getter (for serialization), setter (for parsing).
   Keeping both directions side by side makes it impossible to add a field
   to one and forget the other. *)
let float_fields :
    (string * (Tech.t -> float) * (Tech.t -> float -> Tech.t)) list =
  [
    ("feature_size", (fun t -> t.Tech.feature_size),
     fun t v -> { t with Tech.feature_size = v });
    ("alpha", (fun t -> t.Tech.alpha), fun t v -> { t with Tech.alpha = v });
    ("k_drive", (fun t -> t.Tech.k_drive), fun t v -> { t with Tech.k_drive = v });
    ("s_swing", (fun t -> t.Tech.s_swing), fun t v -> { t with Tech.s_swing = v });
    ("thermal_voltage", (fun t -> t.Tech.thermal_voltage),
     fun t v -> { t with Tech.thermal_voltage = v });
    ("i_junction", (fun t -> t.Tech.i_junction),
     fun t v -> { t with Tech.i_junction = v });
    ("beta_ratio", (fun t -> t.Tech.beta_ratio),
     fun t v -> { t with Tech.beta_ratio = v });
    ("c_gate", (fun t -> t.Tech.c_gate), fun t v -> { t with Tech.c_gate = v });
    ("c_parasitic", (fun t -> t.Tech.c_parasitic),
     fun t v -> { t with Tech.c_parasitic = v });
    ("c_intermediate", (fun t -> t.Tech.c_intermediate),
     fun t v -> { t with Tech.c_intermediate = v });
    ("wire_cap_per_m", (fun t -> t.Tech.wire_cap_per_m),
     fun t v -> { t with Tech.wire_cap_per_m = v });
    ("wire_res_per_m", (fun t -> t.Tech.wire_res_per_m),
     fun t v -> { t with Tech.wire_res_per_m = v });
    ("wire_velocity", (fun t -> t.Tech.wire_velocity),
     fun t v -> { t with Tech.wire_velocity = v });
    ("vdd_min", (fun t -> t.Tech.vdd_min), fun t v -> { t with Tech.vdd_min = v });
    ("vdd_max", (fun t -> t.Tech.vdd_max), fun t v -> { t with Tech.vdd_max = v });
    ("vt_min", (fun t -> t.Tech.vt_min), fun t v -> { t with Tech.vt_min = v });
    ("vt_max", (fun t -> t.Tech.vt_max), fun t v -> { t with Tech.vt_max = v });
    ("w_min", (fun t -> t.Tech.w_min), fun t v -> { t with Tech.w_min = v });
    ("w_max", (fun t -> t.Tech.w_max), fun t v -> { t with Tech.w_max = v });
    ("body_gamma", (fun t -> t.Tech.body_gamma),
     fun t v -> { t with Tech.body_gamma = v });
    ("body_phi", (fun t -> t.Tech.body_phi),
     fun t v -> { t with Tech.body_phi = v });
    ("vt_natural", (fun t -> t.Tech.vt_natural),
     fun t v -> { t with Tech.vt_natural = v });
  ]

let known_keys = "name" :: List.map (fun (k, _, _) -> k) float_fields

let strip s =
  let is_space c = c = ' ' || c = '\t' || c = '\r' in
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_space s.[!i] do incr i done;
  while !j >= !i && is_space s.[!j] do decr j done;
  String.sub s !i (!j - !i + 1)

module Diag = Dcopt_util.Diag

(* Recovering scan: every bad line gets its own located diagnostic, and
   the physics validation runs on whatever survived so an unknown key and
   an empty vt range are reported together, not one per invocation. *)
let parse ?file ?(base = Tech.default) text =
  let diags = ref [] in
  let diagf ~line ~code fmt =
    Printf.ksprintf
      (fun message -> diags := Diag.error ?file ~line ~code message :: !diags)
      fmt
  in
  let tech = ref base in
  let handle lineno raw =
    let line =
      match String.index_opt raw '#' with
      | Some i -> String.sub raw 0 i
      | None -> raw
    in
    let line = strip line in
    if line <> "" then
      match String.index_opt line '=' with
      | None ->
        diagf ~line:lineno ~code:"tech.syntax" "expected `key = value', got %S"
          line
      | Some eq ->
        let key = strip (String.sub line 0 eq) in
        let value = strip (String.sub line (eq + 1) (String.length line - eq - 1)) in
        if key = "name" then tech := { !tech with Tech.tech_name = value }
        else (
          match List.find_opt (fun (k, _, _) -> k = key) float_fields with
          | None ->
            diagf ~line:lineno ~code:"tech.key"
              "unknown parameter %S (known: %s)" key
              (String.concat ", " known_keys)
          | Some (_, _, set) -> (
            match float_of_string_opt value with
            | Some v -> tech := set !tech v
            | None ->
              diagf ~line:lineno ~code:"tech.number"
                "parameter %S: %S is not a number" key value))
  in
  String.split_on_char '\n' text |> List.iteri (fun i l -> handle (i + 1) l);
  let validation =
    List.map
      (fun msg -> Diag.error ?file ~code:"tech.validate" msg)
      (Tech.validate_all !tech)
  in
  match List.rev !diags @ validation with
  | [] -> Ok !tech
  | ds -> Error ds

let parse_string ?base text =
  match parse ?base text with
  | Ok tech -> tech
  | Error ds -> (
    match Diag.errors ds with
    | { Diag.line = Some line; message; _ } :: _ ->
      raise (Parse_error { line; message })
    | { Diag.message; _ } :: _ -> invalid_arg ("Tech_io.parse_string: " ^ message)
    | [] -> assert false)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file ?base path = parse_string ?base (read_file path)

let parse_file_checked ?base path =
  match read_file path with
  | exception Sys_error msg ->
    Error [ Diag.error ~file:path ~code:"tech.io" msg ]
  | text -> parse ~file:path ?base text

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "name = %s\n" t.Tech.tech_name);
  List.iter
    (fun (k, get, _) ->
      Buffer.add_string buf (Printf.sprintf "%s = %.17g\n" k (get t)))
    float_fields;
  Buffer.contents buf

let write_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

(* ------------------------------------------------------------------ *)
(* JSON (schema version 1): {"version":1,"name":...,<float fields>}    *)

module Json = Dcopt_util.Json

let json_schema_version = 1

let to_json t =
  Json.Obj
    (("version", Json.Int json_schema_version)
    :: ("name", Json.String t.Tech.tech_name)
    :: List.map (fun (k, get, _) -> (k, Json.Float (get t))) float_fields)

let of_json ?(base = Tech.default) json =
  match Json.get_obj json with
  | None -> Error "tech: expected a JSON object"
  | Some members -> (
    let rec apply tech = function
      | [] -> Ok tech
      | ("version", v) :: rest -> (
        match Json.get_int v with
        | Some n when n = json_schema_version -> apply tech rest
        | Some n -> Error (Printf.sprintf "tech: unsupported version %d" n)
        | None -> Error "tech: version must be an integer")
      | ("name", v) :: rest -> (
        match Json.get_string v with
        | Some name -> apply { tech with Tech.tech_name = name } rest
        | None -> Error "tech: name must be a string")
      | (key, v) :: rest -> (
        match List.find_opt (fun (k, _, _) -> k = key) float_fields with
        | None ->
          Error
            (Printf.sprintf "tech: unknown parameter %S (known: %s)" key
               (String.concat ", " known_keys))
        | Some (_, _, set) -> (
          match Json.get_float v with
          | Some f -> apply (set tech f) rest
          | None -> Error (Printf.sprintf "tech: %S is not a number" key)))
    in
    match apply base members with
    | Error _ as e -> e
    | Ok tech -> (
      match Tech.validate tech with
      | Ok () -> Ok tech
      | Error msg -> Error ("tech: " ^ msg)))
