(** Signal-probability and transition-density estimation (paper §4.1).

    Given the probability and transition density of every primary input,
    internal node activities are computed with Najm's transition-density
    propagation (ref [8]): [D(y) = sum_i Pr(dy/dx_i) D(x_i)], where
    [dy/dx_i] is the Boolean difference of the node function w.r.t. its
    i-th input.

    Two engines are provided:
    - {!local_profile}, the paper's first-order method — gate-local Boolean
      differences under an input-independence assumption (no spatial
      correlation, no simultaneous-switching correction);
    - {!exact_profile}, a BDD-based reference that computes each node's
      global function over the primary inputs, so Boolean-difference
      probabilities account for reconvergent fanout exactly.

    All functions expect a combinational circuit (run
    {!Dcopt_netlist.Circuit.combinational_core} first); densities are in
    transitions per clock cycle. *)

type input_spec = {
  probability : float;  (** Pr\[input = 1\], in \[0, 1\] *)
  density : float;      (** expected transitions per cycle, >= 0 *)
}

type profile = {
  probabilities : float array;  (** indexed by node id *)
  densities : float array;      (** indexed by node id *)
}

val uniform_inputs :
  Dcopt_netlist.Circuit.t -> probability:float -> density:float ->
  input_spec array
(** The paper's experimental setting: "the activity levels are the same
    over all the inputs". One spec per primary input, in {!Dcopt_netlist.Circuit.inputs}
    order. *)

val local_profile :
  Dcopt_netlist.Circuit.t -> input_spec array -> profile
(** First-order propagation in one topological pass; O(edges). Raises
    [Invalid_argument] on sequential circuits, arity mismatch, or specs out
    of range. *)

val exact_profile :
  ?node_limit:int ->
  Dcopt_netlist.Circuit.t -> input_spec array -> profile option
(** BDD-based reference; [None] when the BDD grows past [node_limit]
    (default 200_000 nodes) — callers then fall back to {!local_profile}. *)

val windowed_profile :
  ?window:int ->      (* reconvergence window depth, default 3 *)
  ?node_limit:int ->  (* per-node BDD cap, default 20_000 *)
  Dcopt_netlist.Circuit.t -> input_spec array -> profile
(** Correlation-aware middle ground (the paper cites Stamoulis & Hajj,
    ref [11], as the "more complex" alternative to first-order
    propagation): each node's function is built exactly — as a BDD — over
    the frontier of its depth-[window] fanin cone, capturing local
    reconvergent-fanout correlation, while frontier signals are treated as
    independent with their propagated statistics. [window = 1] coincides
    with {!local_profile}; [window = infinity] would coincide with
    {!exact_profile}. Nodes whose window BDD exceeds [node_limit] fall back
    to the first-order rule. *)

val gate_sensitization_probability :
  Dcopt_netlist.Gate.kind -> float array -> int -> float
(** [gate_sensitization_probability kind probs i] is Pr\[dy/dx_i\] for a
    gate of [kind] whose fanins are independent with 1-probabilities
    [probs] — the closed forms used by {!local_profile} (e.g. for AND it is
    the product of the other input probabilities; for XOR it is 1). *)

val gate_probability : Dcopt_netlist.Gate.kind -> float array -> float
(** Output 1-probability of a gate under fanin independence. *)
