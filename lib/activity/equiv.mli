(** BDD-based combinational equivalence checking.

    Used to verify structural transforms (e.g.
    {!Dcopt_netlist.Tech_map.decompose}) and as a general library utility:
    two circuits are equivalent when every pair of corresponding outputs
    computes the same Boolean function of the (name-matched) primary
    inputs. *)

type verdict =
  | Equivalent
  | Different of { output_index : int; witness : bool array }
    (** the first differing output and an input assignment (in the first
        circuit's input order) on which the two circuits disagree *)
  | Inconclusive of string
    (** interface mismatch (input/output counts or names) or BDD blow-up *)

val check :
  ?node_limit:int ->   (* BDD cap, default 500_000 *)
  Dcopt_netlist.Circuit.t -> Dcopt_netlist.Circuit.t -> verdict
(** Inputs are matched by net name (order-independent); outputs are matched
    positionally. Requires combinational circuits (take the
    {!Dcopt_netlist.Circuit.combinational_core} first). *)

val equivalent : Dcopt_netlist.Circuit.t -> Dcopt_netlist.Circuit.t -> bool
(** [check] collapsed to a boolean ([Inconclusive] counts as false). *)
