module Circuit = Dcopt_netlist.Circuit
module Gate = Dcopt_netlist.Gate
module Bdd = Dcopt_bdd.Bdd
module Span = Dcopt_obs.Span
module Metrics = Dcopt_obs.Metrics

let profile_counter =
  Metrics.counter ~help:"activity profiles computed" "activity.profiles"

let node_counter =
  Metrics.counter ~help:"per-node activities computed" "activity.nodes_profiled"

let count_profile circuit =
  Metrics.incr profile_counter;
  Metrics.incr ~by:(Circuit.size circuit) node_counter

type input_spec = { probability : float; density : float }
type profile = { probabilities : float array; densities : float array }

let uniform_inputs circuit ~probability ~density =
  Array.map
    (fun _ -> { probability; density })
    (Circuit.inputs circuit)

let product = Array.fold_left ( *. ) 1.0

let xor_probability probs =
  (* Pr[odd number of 1s] folds as p <- p(1-q) + q(1-p). *)
  Array.fold_left
    (fun p q -> (p *. (1.0 -. q)) +. (q *. (1.0 -. p)))
    0.0 probs

let gate_probability kind probs =
  match kind with
  | Gate.And -> product probs
  | Gate.Nand -> 1.0 -. product probs
  | Gate.Or -> 1.0 -. product (Array.map (fun p -> 1.0 -. p) probs)
  | Gate.Nor -> product (Array.map (fun p -> 1.0 -. p) probs)
  | Gate.Not -> 1.0 -. probs.(0)
  | Gate.Buf -> probs.(0)
  | Gate.Xor -> xor_probability probs
  | Gate.Xnor -> 1.0 -. xor_probability probs
  | Gate.Input | Gate.Dff ->
    invalid_arg "Activity.gate_probability: not a combinational gate"

(* Pr[dy/dx_i] under fanin independence. For AND-class gates the output is
   sensitive to x_i exactly when every other input is non-controlling. For
   parity gates the output is always sensitive. *)
let gate_sensitization_probability kind probs i =
  let others f =
    let acc = ref 1.0 in
    Array.iteri (fun j p -> if j <> i then acc := !acc *. f p) probs;
    !acc
  in
  match kind with
  | Gate.And | Gate.Nand -> others Fun.id
  | Gate.Or | Gate.Nor -> others (fun p -> 1.0 -. p)
  | Gate.Not | Gate.Buf | Gate.Xor | Gate.Xnor -> 1.0
  | Gate.Input | Gate.Dff ->
    invalid_arg "Activity.gate_sensitization_probability: not a gate"

let check_specs circuit specs =
  if not (Circuit.is_combinational circuit) then
    invalid_arg "Activity: circuit is sequential (take combinational_core)";
  if Array.length specs <> Array.length (Circuit.inputs circuit) then
    invalid_arg "Activity: one input_spec per primary input required";
  Array.iter
    (fun { probability; density } ->
      if not (probability >= 0.0 && probability <= 1.0) then
        invalid_arg "Activity: input probability out of [0, 1]";
      if not (density >= 0.0) then
        invalid_arg "Activity: input density negative")
    specs

let local_profile circuit specs =
  Span.with_ "activity.first-order" ~args:[ ("circuit", Circuit.name circuit) ]
  @@ fun () ->
  check_specs circuit specs;
  count_profile circuit;
  let n = Circuit.size circuit in
  let probabilities = Array.make n 0.0 in
  let densities = Array.make n 0.0 in
  Array.iteri
    (fun i id ->
      probabilities.(id) <- specs.(i).probability;
      densities.(id) <- specs.(i).density)
    (Circuit.inputs circuit);
  Array.iter
    (fun id ->
      let nd = Circuit.node circuit id in
      match nd.Circuit.kind with
      | Gate.Input -> ()
      | Gate.Dff -> assert false
      | kind ->
        let fanin_probs =
          Array.map (fun f -> probabilities.(f)) nd.Circuit.fanins
        in
        probabilities.(id) <- gate_probability kind fanin_probs;
        let d = ref 0.0 in
        Array.iteri
          (fun i f ->
            d :=
              !d
              +. gate_sensitization_probability kind fanin_probs i
                 *. densities.(f))
          nd.Circuit.fanins;
        densities.(id) <- !d)
    (Circuit.topo_order circuit);
  { probabilities; densities }

let exact_profile ?(node_limit = 200_000) circuit specs =
  Span.with_ "activity.bdd-exact" ~args:[ ("circuit", Circuit.name circuit) ]
  @@ fun () ->
  check_specs circuit specs;
  let input_ids = Circuit.inputs circuit in
  let var_count = Array.length input_ids in
  let m = Bdd.manager ~node_limit ~var_count () in
  let n = Circuit.size circuit in
  let input_var = Hashtbl.create var_count in
  Array.iteri (fun i id -> Hashtbl.add input_var id i) input_ids;
  let p_input = Array.map (fun s -> s.probability) specs in
  let d_input = Array.map (fun s -> s.density) specs in
  try
    let funcs = Array.make n (Bdd.bdd_false m) in
    Array.iteri (fun i id -> funcs.(id) <- Bdd.var m i) input_ids;
    Array.iter
      (fun id ->
        let nd = Circuit.node circuit id in
        match nd.Circuit.kind with
        | Gate.Input -> ()
        | Gate.Dff -> assert false
        | kind ->
          let fs = Array.map (fun f -> funcs.(f)) nd.Circuit.fanins in
          let pairwise op =
            let acc = ref fs.(0) in
            for i = 1 to Array.length fs - 1 do
              acc := op m !acc fs.(i)
            done;
            !acc
          in
          funcs.(id) <-
            (match kind with
            | Gate.And -> pairwise Bdd.bdd_and
            | Gate.Nand -> Bdd.bdd_not m (pairwise Bdd.bdd_and)
            | Gate.Or -> pairwise Bdd.bdd_or
            | Gate.Nor -> Bdd.bdd_not m (pairwise Bdd.bdd_or)
            | Gate.Not -> Bdd.bdd_not m fs.(0)
            | Gate.Buf -> fs.(0)
            | Gate.Xor -> pairwise Bdd.bdd_xor
            | Gate.Xnor -> Bdd.bdd_not m (pairwise Bdd.bdd_xor)
            | Gate.Input | Gate.Dff -> assert false))
      (Circuit.topo_order circuit);
    let probabilities = Array.make n 0.0 in
    let densities = Array.make n 0.0 in
    Array.iteri (fun i id ->
        probabilities.(id) <- p_input.(i);
        densities.(id) <- d_input.(i))
      input_ids;
    Array.iter
      (fun id ->
        let nd = Circuit.node circuit id in
        match nd.Circuit.kind with
        | Gate.Input -> ()
        | Gate.Dff -> assert false
        | _ ->
          probabilities.(id) <- Bdd.probability m funcs.(id) p_input;
          (* Najm: D(y) = sum over primary inputs of Pr[dy/dx] D(x); only
             variables in the support contribute. *)
          let d = ref 0.0 in
          List.iter
            (fun v ->
              let diff = Bdd.boolean_difference m funcs.(id) v in
              d := !d +. (Bdd.probability m diff p_input *. d_input.(v)))
            (Bdd.support m funcs.(id));
          densities.(id) <- !d)
      (Circuit.topo_order circuit);
    count_profile circuit;
    Some { probabilities; densities }
  with Bdd.Too_large _ -> None

(* Windowed correlation-aware propagation: exact within a depth-bounded
   fanin cone, first-order at the frontier. The frontier of node y is the
   set of signals reached by walking fanins from y for [window] levels (or
   hitting a primary input); y's function over the frontier is built as a
   BDD, so any reconvergence inside the window is resolved exactly. *)
let windowed_profile ?(window = 3) ?(node_limit = 20_000) circuit specs =
  Span.with_ "activity.windowed" ~args:[ ("circuit", Circuit.name circuit) ]
  @@ fun () ->
  if window < 1 then invalid_arg "Activity.windowed_profile: window < 1";
  check_specs circuit specs;
  count_profile circuit;
  let n = Circuit.size circuit in
  let probabilities = Array.make n 0.0 in
  let densities = Array.make n 0.0 in
  Array.iteri
    (fun i id ->
      probabilities.(id) <- specs.(i).probability;
      densities.(id) <- specs.(i).density)
    (Circuit.inputs circuit);
  let first_order id =
    let nd = Circuit.node circuit id in
    let kind = nd.Circuit.kind in
    let fanin_probs = Array.map (fun f -> probabilities.(f)) nd.Circuit.fanins in
    probabilities.(id) <- gate_probability kind fanin_probs;
    let d = ref 0.0 in
    Array.iteri
      (fun i f ->
        d :=
          !d
          +. gate_sensitization_probability kind fanin_probs i *. densities.(f))
      nd.Circuit.fanins;
    densities.(id) <- !d
  in
  (* Frontier discovery: nodes at exactly [window] fanin hops from the
     target, or primary inputs met earlier, deduplicated. *)
  let frontier_of id =
    let depth_of = Hashtbl.create 32 in
    let frontier = ref [] in
    let rec walk node depth =
      let known = Hashtbl.find_opt depth_of node in
      match known with
      | Some d when d >= depth -> () (* already explored at least as deep *)
      | _ ->
        Hashtbl.replace depth_of node depth;
        let nd = Circuit.node circuit node in
        if nd.Circuit.kind = Gate.Input || depth = 0 then begin
          if not (List.mem node !frontier) then frontier := node :: !frontier
        end
        else
          Array.iter (fun f -> walk f (depth - 1)) nd.Circuit.fanins
    in
    let nd = Circuit.node circuit id in
    Array.iter (fun f -> walk f (window - 1)) nd.Circuit.fanins;
    Array.of_list (List.rev !frontier)
  in
  let windowed id =
    let frontier = frontier_of id in
    let var_count = Array.length frontier in
    let m = Bdd.manager ~node_limit ~var_count () in
    let var_of = Hashtbl.create var_count in
    Array.iteri (fun i node -> Hashtbl.add var_of node i) frontier;
    let memo = Hashtbl.create 64 in
    let rec build node =
      match Hashtbl.find_opt var_of node with
      | Some v -> Bdd.var m v
      | None -> (
        match Hashtbl.find_opt memo node with
        | Some f -> f
        | None ->
          let nd = Circuit.node circuit node in
          let fs = Array.map build nd.Circuit.fanins in
          let pairwise op =
            let acc = ref fs.(0) in
            for i = 1 to Array.length fs - 1 do
              acc := op m !acc fs.(i)
            done;
            !acc
          in
          let f =
            match nd.Circuit.kind with
            | Gate.And -> pairwise Bdd.bdd_and
            | Gate.Nand -> Bdd.bdd_not m (pairwise Bdd.bdd_and)
            | Gate.Or -> pairwise Bdd.bdd_or
            | Gate.Nor -> Bdd.bdd_not m (pairwise Bdd.bdd_or)
            | Gate.Not -> Bdd.bdd_not m fs.(0)
            | Gate.Buf -> fs.(0)
            | Gate.Xor -> pairwise Bdd.bdd_xor
            | Gate.Xnor -> Bdd.bdd_not m (pairwise Bdd.bdd_xor)
            | Gate.Input | Gate.Dff -> assert false
          in
          Hashtbl.add memo node f;
          f)
    in
    let f = build id in
    let p_frontier = Array.map (fun node -> probabilities.(node)) frontier in
    probabilities.(id) <- Bdd.probability m f p_frontier;
    let d = ref 0.0 in
    List.iter
      (fun v ->
        let diff = Bdd.boolean_difference m f v in
        d :=
          !d
          +. (Bdd.probability m diff p_frontier *. densities.(frontier.(v))))
      (Bdd.support m f);
    densities.(id) <- !d
  in
  Array.iter
    (fun id ->
      let nd = Circuit.node circuit id in
      match nd.Circuit.kind with
      | Gate.Input -> ()
      | Gate.Dff -> assert false
      | _ -> (
        try windowed id with Bdd.Too_large _ -> first_order id))
    (Circuit.topo_order circuit);
  { probabilities; densities }
