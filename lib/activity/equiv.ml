module Circuit = Dcopt_netlist.Circuit
module Gate = Dcopt_netlist.Gate
module Bdd = Dcopt_bdd.Bdd

type verdict =
  | Equivalent
  | Different of { output_index : int; witness : bool array }
  | Inconclusive of string

let input_names circuit =
  Array.to_list (Circuit.inputs circuit)
  |> List.map (fun id -> (Circuit.node circuit id).Circuit.name)

let build_outputs m circuit var_of_name =
  let n = Circuit.size circuit in
  let funcs = Array.make n (Bdd.bdd_false m) in
  Array.iter
    (fun id ->
      let name = (Circuit.node circuit id).Circuit.name in
      funcs.(id) <- Bdd.var m (Hashtbl.find var_of_name name))
    (Circuit.inputs circuit);
  Array.iter
    (fun id ->
      let nd = Circuit.node circuit id in
      match nd.Circuit.kind with
      | Gate.Input -> ()
      | Gate.Dff -> assert false
      | kind ->
        let fs = Array.map (fun f -> funcs.(f)) nd.Circuit.fanins in
        let pairwise op =
          let acc = ref fs.(0) in
          for i = 1 to Array.length fs - 1 do
            acc := op m !acc fs.(i)
          done;
          !acc
        in
        funcs.(id) <-
          (match kind with
          | Gate.And -> pairwise Bdd.bdd_and
          | Gate.Nand -> Bdd.bdd_not m (pairwise Bdd.bdd_and)
          | Gate.Or -> pairwise Bdd.bdd_or
          | Gate.Nor -> Bdd.bdd_not m (pairwise Bdd.bdd_or)
          | Gate.Not -> Bdd.bdd_not m fs.(0)
          | Gate.Buf -> fs.(0)
          | Gate.Xor -> pairwise Bdd.bdd_xor
          | Gate.Xnor -> Bdd.bdd_not m (pairwise Bdd.bdd_xor)
          | Gate.Input | Gate.Dff -> assert false))
    (Circuit.topo_order circuit);
  Array.map (fun id -> funcs.(id)) (Circuit.outputs circuit)

let check ?(node_limit = 500_000) c1 c2 =
  if not (Circuit.is_combinational c1 && Circuit.is_combinational c2) then
    Inconclusive "sequential circuit (take the combinational core first)"
  else
    let names1 = input_names c1 and names2 = input_names c2 in
    if List.sort compare names1 <> List.sort compare names2 then
      Inconclusive "primary input names differ"
    else if
      Array.length (Circuit.outputs c1) <> Array.length (Circuit.outputs c2)
    then Inconclusive "output counts differ"
    else begin
      let var_of_name = Hashtbl.create 32 in
      List.iteri (fun i n -> Hashtbl.add var_of_name n i) names1;
      let m = Bdd.manager ~node_limit ~var_count:(List.length names1) () in
      match
        (build_outputs m c1 var_of_name, build_outputs m c2 var_of_name)
      with
      | exception Bdd.Too_large n ->
        Inconclusive (Printf.sprintf "BDD exceeded %d nodes" n)
      | outs1, outs2 ->
        let rec compare_outputs i =
          if i = Array.length outs1 then Equivalent
          else if Bdd.equal outs1.(i) outs2.(i) then compare_outputs (i + 1)
          else
            let diff = Bdd.bdd_xor m outs1.(i) outs2.(i) in
            (match Bdd.any_sat m diff with
            | Some assignment_by_var ->
              (* express the witness in c1's input order *)
              let witness =
                Array.map
                  (fun id ->
                    let name = (Circuit.node c1 id).Circuit.name in
                    assignment_by_var.(Hashtbl.find var_of_name name))
                  (Circuit.inputs c1)
              in
              Different { output_index = i; witness }
            | None -> assert false)
        in
        compare_outputs 0
    end

let equivalent c1 c2 = check c1 c2 = Equivalent
