external monotonic_ns : unit -> int64 = "dcopt_monotonic_ns"

let monotonic_s () = Int64.to_float (monotonic_ns ()) *. 1e-9

(* Injected wall-clock displacement (fault plans only). Kept here, below
   both the service and obs layers, so the observability clock can fold
   it into wall timestamps while monotonic readers stay untouched. *)
let offset = Atomic.make 0L

let rec jump_wall_ns ns =
  let prev = Atomic.get offset in
  if not (Atomic.compare_and_set offset prev (Int64.add prev ns)) then
    jump_wall_ns ns

let wall_offset_ns () = Atomic.get offset
