type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

(* Shortest decimal that reparses to the identical double: 15 digits
   suffice for most values, 17 always do. Integral values print with a
   trailing ".0" so they stay floats across a round trip. *)
let float_lit f =
  if f <> f then "\"nan\""
  else if f = infinity then "\"inf\""
  else if f = neg_infinity then "\"-inf\""
  else if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s
    else
      let s = Printf.sprintf "%.16g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_lit f)
  | String s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf v)
      items;
    Buffer.add_char buf ']'
  | Obj members ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        emit buf v)
      members;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

let rec emit_hum buf indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v -> emit buf v
  | List [] -> Buffer.add_string buf "[]"
  | Obj [] -> Buffer.add_string buf "{}"
  | List items ->
    let pad = String.make (indent + 2) ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        emit_hum buf (indent + 2) v)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf ']'
  | Obj members ->
    let pad = String.make (indent + 2) ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        escape_to buf k;
        Buffer.add_string buf ": ";
        emit_hum buf (indent + 2) v)
      members;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf '}'

let to_string_hum v =
  let buf = Buffer.create 256 in
  emit_hum buf 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Fail of int * string

let of_string input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub input !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let utf8_of_code buf u =
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub input !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = input.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = input.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          let u = try hex4 () with _ -> fail "bad \\u escape" in
          let u =
            (* combine a high surrogate with a following \uXXXX low one *)
            if u >= 0xD800 && u <= 0xDBFF && !pos + 6 <= n
               && input.[!pos] = '\\' && input.[!pos + 1] = 'u'
            then begin
              pos := !pos + 2;
              let lo = try hex4 () with _ -> fail "bad \\u escape" in
              if lo >= 0xDC00 && lo <= 0xDFFF then
                0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00)
              else fail "unpaired surrogate"
            end
            else u
          in
          utf8_of_code buf u
        | _ -> fail "unknown escape");
        loop ())
      | c ->
        Buffer.add_char buf c;
        loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char input.[!pos] do
      advance ()
    done;
    let s = String.sub input start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s
    in
    if is_float then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" s)
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" s))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else
        let member () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec members acc =
          let m = member () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members (m :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev (m :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Fail (pos, msg) ->
    Error (Printf.sprintf "at position %d: %s" pos msg)

let of_string_exn s =
  match of_string s with Ok v -> v | Error msg -> failwith ("Json: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let field name = function
  | Obj members -> List.assoc_opt name members
  | _ -> None

let get_bool = function Bool b -> Some b | _ -> None
let get_int = function Int i -> Some i | _ -> None

let get_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | String "nan" -> Some nan
  | String "inf" -> Some infinity
  | String "-inf" -> Some neg_infinity
  | _ -> None

let get_string = function String s -> Some s | _ -> None
let get_list = function List l -> Some l | _ -> None
let get_obj = function Obj m -> Some m | _ -> None

(* ------------------------------------------------------------------ *)
(* Files                                                               *)

let write_file path json =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string json));
  Sys.rename tmp path

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> (
    match of_string text with
    | Ok _ as ok -> ok
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
