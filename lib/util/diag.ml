type severity = Error | Warning

type t = {
  severity : severity;
  code : string;
  message : string;
  file : string option;
  line : int option;
}

let make severity ?file ?line ~code message =
  { severity; code; message; file; line }

let error ?file ?line ~code message = make Error ?file ?line ~code message
let warning ?file ?line ~code message = make Warning ?file ?line ~code message

let errorf ?file ?line ~code fmt =
  Printf.ksprintf (fun message -> error ?file ?line ~code message) fmt

let is_error d = d.severity = Error
let has_errors ds = List.exists is_error ds
let errors ds = List.filter is_error ds

let to_string d =
  let loc =
    match (d.file, d.line) with
    | Some f, Some l -> Printf.sprintf "%s:%d: " f l
    | Some f, None -> Printf.sprintf "%s: " f
    | None, Some l -> Printf.sprintf "line %d: " l
    | None, None -> ""
  in
  let sev = match d.severity with Error -> "error" | Warning -> "warning" in
  Printf.sprintf "%s%s[%s]: %s" loc sev d.code d.message

let render ds =
  String.concat "" (List.map (fun d -> to_string d ^ "\n") ds)

let summary ds =
  let e = List.length (errors ds) in
  let w = List.length ds - e in
  let plural n = if n = 1 then "" else "s" in
  match (e, w) with
  | 0, 0 -> "no diagnostics"
  | e, 0 -> Printf.sprintf "%d error%s" e (plural e)
  | 0, w -> Printf.sprintf "%d warning%s" w (plural w)
  | e, w ->
    Printf.sprintf "%d error%s, %d warning%s" e (plural e) w (plural w)
