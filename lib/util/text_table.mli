(** Fixed-width plain-text tables, used by the bench harness to print the
    paper's tables in a shape directly comparable with the publication. *)

type align = Left | Right | Center

type t

val create : headers:string list -> t
(** A table with one column per header, all right-aligned by default. *)

val set_align : t -> align list -> unit
(** Per-column alignment; the list must match the column count. *)

val add_row : t -> string list -> unit
(** Appends a row; the list must match the column count. *)

val add_separator : t -> unit
(** Appends a horizontal rule between the surrounding rows. *)

val render : t -> string
(** Renders with column-width autosizing, an underlined header and a
    trailing newline. *)

val print : t -> unit
(** [render] to stdout. *)
