(** SI-prefixed formatting of physical quantities, used by all report and
    table printers so energies read "2.41e-12 J" or "2.41 pJ" consistently. *)

val prefixed : float -> float * string
(** [prefixed x] is [(mantissa, prefix)] with mantissa in \[1, 1000) for
    non-zero finite [x], using prefixes from atto (1e-18) to exa (1e18). *)

val format : ?digits:int -> unit:string -> float -> string
(** [format ~unit:"J" 2.41e-12] is ["2.41 pJ"] (3 significant digits by
    default). *)

val format_exp : ?digits:int -> float -> string
(** Scientific notation, e.g. ["2.41e-12"], matching the paper's tables. *)
