(** Structured diagnostics for user-reachable input errors.

    Everything the system accepts from outside — [.bench] netlists, tech
    files, JSON configs, JSONL job batches — is validated through this
    type instead of [failwith]/first-error exceptions: a parser or
    validator collects {e every} problem it can find, each carrying a
    severity, a stable machine-readable code (dotted, e.g.
    ["bench.syntax"], ["tech.range"], ["config.physics"]), and a source
    location when one exists. Callers decide whether to render them for
    humans ({!to_string} is the classic [file:line: severity code:
    message] shape), turn them into failure rows, or count them. *)

type severity = Error | Warning

type t = {
  severity : severity;
  code : string;  (** stable dotted identifier, e.g. ["bench.arity"] *)
  message : string;
  file : string option;
  line : int option;  (** 1-based; [None] when no line applies *)
}

val error : ?file:string -> ?line:int -> code:string -> string -> t
val warning : ?file:string -> ?line:int -> code:string -> string -> t

val errorf :
  ?file:string ->
  ?line:int ->
  code:string ->
  ('a, unit, string, t) format4 ->
  'a
(** [errorf ~code fmt ...] builds an error diagnostic with a formatted
    message. *)

val is_error : t -> bool

val has_errors : t list -> bool
(** True when at least one diagnostic is an [Error]. *)

val errors : t list -> t list
(** Only the [Error]-severity diagnostics, in order. *)

val to_string : t -> string
(** ["file:line: error[code]: message"]; location segments are omitted
    when absent. *)

val render : t list -> string
(** One {!to_string} line per diagnostic, newline-terminated; [""] for
    the empty list. *)

val summary : t list -> string
(** A one-line roll-up, e.g. ["3 errors, 1 warning"]. *)
