let prefixes =
  [| (1e-18, "a"); (1e-15, "f"); (1e-12, "p"); (1e-9, "n"); (1e-6, "u");
     (1e-3, "m"); (1.0, ""); (1e3, "k"); (1e6, "M"); (1e9, "G");
     (1e12, "T"); (1e15, "P"); (1e18, "E") |]

let prefixed x =
  if x = 0.0 || not (Float.is_finite x) then (x, "")
  else
    let mag = Float.abs x in
    let rec find i =
      if i >= Array.length prefixes - 1 then i
      else
        let scale, _ = prefixes.(i + 1) in
        if mag < scale then i else find (i + 1)
    in
    let scale, prefix = prefixes.(find 0) in
    (x /. scale, prefix)

let format ?(digits = 3) ~unit x =
  if not (Float.is_finite x) then Printf.sprintf "%f %s" x unit
  else
    let mantissa, prefix = prefixed x in
    Printf.sprintf "%.*g %s%s" digits mantissa prefix unit

let format_exp ?(digits = 3) x = Printf.sprintf "%.*e" (digits - 1) x
