type align = Left | Right | Center

type row = Cells of string list | Separator

type t = {
  headers : string list;
  columns : int;
  mutable aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ~headers =
  {
    headers;
    columns = List.length headers;
    aligns = List.map (fun _ -> Right) headers;
    rows = [];
  }

let set_align t aligns =
  assert (List.length aligns = t.columns);
  t.aligns <- aligns

let add_row t cells =
  assert (List.length cells = t.columns);
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let len = String.length s in
  if len >= width then s
  else
    let gap = width - len in
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s
    | Center ->
      let left = gap / 2 in
      String.make left ' ' ^ s ^ String.make (gap - left) ' '

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let note_row = function
    | Separator -> ()
    | Cells cells ->
      List.iteri
        (fun i c -> widths.(i) <- max widths.(i) (String.length c))
        cells
  in
  List.iter note_row rows;
  let buf = Buffer.create 1024 in
  let rule () =
    Array.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string buf "-+-";
        Buffer.add_string buf (String.make w '-'))
      widths;
    Buffer.add_char buf '\n'
  in
  let emit cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad (List.nth t.aligns i) widths.(i) c))
      cells;
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  rule ();
  List.iter (function Separator -> rule () | Cells cells -> emit cells) rows;
  Buffer.contents buf

let print t = print_string (render t)
