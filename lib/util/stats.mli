(** Descriptive statistics over float arrays. *)

val mean : float array -> float
(** Arithmetic mean; requires a non-empty array. *)

val variance : float array -> float
(** Population variance; requires a non-empty array. *)

val stddev : float array -> float

val min_max : float array -> float * float
(** Smallest and largest element; requires a non-empty array. *)

val median : float array -> float
(** Median (does not mutate its argument); requires a non-empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in \[0, 100\], linear interpolation between
    order statistics; requires a non-empty array. *)

val quantile : float array -> float -> float
(** [quantile xs q] with [q] in \[0, 1\] — the \[0, 1\]-scaled counterpart
    of {!percentile} (same linear interpolation between order statistics);
    requires a non-empty array. *)

val geometric_mean : float array -> float
(** Geometric mean; requires every element positive. *)

val histogram : bins:int -> float array -> (float * float * int) array
(** [histogram ~bins xs] returns [(lo, hi, count)] triples covering
    \[min, max\]; requires [bins >= 1] and a non-empty array. *)
