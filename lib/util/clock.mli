(** Monotonic time, plus the injectable wall-clock displacement.

    [Unix.gettimeofday] follows the system wall clock, so an NTP step or
    a DST adjustment mid-run moves every deadline computed from it —
    enough to falsely write off (or never write off) a fleet worker.
    Everything that measures {e elapsed} time (heartbeat deadlines,
    spawn timeouts, backoff sleeps) should use the monotonic readings
    here instead: they come from [clock_gettime(CLOCK_MONOTONIC)] via a
    local C stub (the installed unix library predates
    [Unix.clock_gettime]) and never step.

    The wall-clock {e offset} exists for deterministic fault injection:
    a [clock.tick:jump=S] fault displaces the wall clock the
    observability layer reads by [S] seconds without touching the
    monotonic readings — so a correct consumer (monotonic deadlines) is
    provably unaffected while timestamp consumers visibly shear. *)

val monotonic_ns : unit -> int64
(** Nanoseconds on the monotonic clock. The epoch is arbitrary (boot
    time on Linux); only differences are meaningful. *)

val monotonic_s : unit -> float
(** {!monotonic_ns} in seconds. *)

val jump_wall_ns : int64 -> unit
(** Displace the injected wall-clock offset by this many nanoseconds
    (negative jumps allowed). Atomic; callable from any domain. *)

val wall_offset_ns : unit -> int64
(** Current accumulated displacement; [0L] unless a fault plan jumped
    the clock. Folded into {!Dcopt_obs.Clock.now_ns}. *)
