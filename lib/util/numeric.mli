(** Small numerical toolbox used throughout the optimizer. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] bounds [x] into \[lo, hi\]. Requires [lo <= hi]. *)

val approx_equal : ?rel:float -> ?abs:float -> float -> float -> bool
(** Tolerant float comparison: true when the values differ by at most [abs]
    or relatively by at most [rel] (defaults 1e-9 / 1e-6). *)

val interp_linear : (float * float) array -> float -> float
(** [interp_linear points x] linearly interpolates a table of [(x, y)] points
    sorted by increasing [x]; clamps outside the range. Requires a non-empty
    table. *)

val bisect :
  f:(float -> float) -> lo:float -> hi:float -> ?iters:int -> unit -> float
(** Root of a continuous [f] on \[lo, hi\] by bisection ([iters] halvings,
    default 60). Requires [f lo] and [f hi] of opposite sign (or zero). *)

val binary_search_min :
  feasible:(float -> bool) -> lo:float -> hi:float -> ?iters:int -> unit ->
  float option
(** Smallest [x] in \[lo, hi\] with [feasible x], assuming [feasible] is
    monotone (false then true as [x] grows). [None] when even [hi] fails. *)

val binary_search_max :
  feasible:(float -> bool) -> lo:float -> hi:float -> ?iters:int -> unit ->
  float option
(** Largest feasible [x], assuming feasibility is true then false. *)

val golden_section_min :
  f:(float -> float) -> lo:float -> hi:float -> ?iters:int -> unit -> float
(** Minimizer of a unimodal [f] on \[lo, hi\] by golden-section search. *)

val integrate_trapezoid : f:(float -> float) -> lo:float -> hi:float -> n:int -> float
(** Composite trapezoid rule with [n >= 1] panels. *)

val log_interp_points : lo:float -> hi:float -> n:int -> float array
(** [n >= 2] points geometrically spaced on \[lo, hi\]; requires
    [0 < lo <= hi]. *)

val linspace : lo:float -> hi:float -> n:int -> float array
(** [n >= 2] points linearly spaced on \[lo, hi\] inclusive. *)
