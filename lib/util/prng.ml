(* SplitMix64 (Steele, Lea & Flood 2014): a tiny, high-quality, splittable
   generator. We avoid Stdlib.Random so that streams are stable across OCaml
   releases. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let of_string name =
  (* FNV-1a 64-bit over the bytes of [name]. *)
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    name;
  create (mix64 !h)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = create (bits64 t)
let copy t = { state = t.state }
let state t = t.state
let of_state s = { state = s }

let int t n =
  assert (n > 0);
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (bits64 t) mask) in
  v mod n

let float t x =
  (* 53 random mantissa bits mapped to [0, 1). *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  v /. 9007199254740992.0 *. x

let bool t = Int64.logand (bits64 t) 1L = 1L
let uniform t lo hi = lo +. float t (hi -. lo)

let gaussian t ~mean ~sigma =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  mean +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let exponential t ~rate =
  assert (rate > 0.0);
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  -.log (nonzero ()) /. rate

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let choose_weighted t pairs =
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 pairs in
  assert (total > 0.0);
  let target = float t total in
  let rec pick i acc =
    if i = Array.length pairs - 1 then fst pairs.(i)
    else
      let _, w = pairs.(i) in
      let acc = acc +. w in
      if target < acc then fst pairs.(i) else pick (i + 1) acc
  in
  pick 0 0.0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
