let clamp ~lo ~hi x =
  assert (lo <= hi);
  if x < lo then lo else if x > hi then hi else x

let approx_equal ?(rel = 1e-6) ?(abs = 1e-9) a b =
  let diff = Float.abs (a -. b) in
  diff <= abs || diff <= rel *. Float.max (Float.abs a) (Float.abs b)

let interp_linear points x =
  let n = Array.length points in
  assert (n > 0);
  let x0, y0 = points.(0) and xn, yn = points.(n - 1) in
  if x <= x0 then y0
  else if x >= xn then yn
  else
    let rec find i =
      let xi, yi = points.(i) and xj, yj = points.(i + 1) in
      if x <= xj then yi +. ((x -. xi) /. (xj -. xi) *. (yj -. yi))
      else find (i + 1)
    in
    find 0

let bisect ~f ~lo ~hi ?(iters = 60) () =
  let flo = f lo and fhi = f hi in
  assert (flo *. fhi <= 0.0);
  let rec loop lo hi flo i =
    if i = 0 then 0.5 *. (lo +. hi)
    else
      let mid = 0.5 *. (lo +. hi) in
      let fmid = f mid in
      if fmid = 0.0 then mid
      else if flo *. fmid < 0.0 then loop lo mid flo (i - 1)
      else loop mid hi fmid (i - 1)
  in
  loop lo hi flo iters

let binary_search_min ~feasible ~lo ~hi ?(iters = 50) () =
  if not (feasible hi) then None
  else if feasible lo then Some lo
  else
    (* invariant: feasible hi, not (feasible lo) *)
    let rec loop lo hi i =
      if i = 0 then Some hi
      else
        let mid = 0.5 *. (lo +. hi) in
        if feasible mid then loop lo mid (i - 1) else loop mid hi (i - 1)
    in
    loop lo hi iters

let binary_search_max ~feasible ~lo ~hi ?(iters = 50) () =
  if not (feasible lo) then None
  else if feasible hi then Some hi
  else
    let rec loop lo hi i =
      if i = 0 then Some lo
      else
        let mid = 0.5 *. (lo +. hi) in
        if feasible mid then loop mid hi (i - 1) else loop lo mid (i - 1)
    in
    loop lo hi iters

let golden_section_min ~f ~lo ~hi ?(iters = 80) () =
  let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
  let rec loop a b c d fc fd i =
    if i = 0 then 0.5 *. (a +. b)
    else if fc < fd then
      let b = d in
      let d = c in
      let c = b -. (phi *. (b -. a)) in
      loop a b c d (f c) fc (i - 1)
    else
      let a = c in
      let c = d in
      let d = a +. (phi *. (b -. a)) in
      loop a b c d fd (f d) (i - 1)
  in
  let c = hi -. (phi *. (hi -. lo)) and d = lo +. (phi *. (hi -. lo)) in
  loop lo hi c d (f c) (f d) iters

let integrate_trapezoid ~f ~lo ~hi ~n =
  assert (n >= 1);
  let h = (hi -. lo) /. float_of_int n in
  let acc = ref (0.5 *. (f lo +. f hi)) in
  for i = 1 to n - 1 do
    acc := !acc +. f (lo +. (float_of_int i *. h))
  done;
  !acc *. h

let log_interp_points ~lo ~hi ~n =
  assert (n >= 2 && lo > 0.0 && hi >= lo);
  let ratio = log (hi /. lo) /. float_of_int (n - 1) in
  Array.init n (fun i -> lo *. exp (float_of_int i *. ratio))

let linspace ~lo ~hi ~n =
  assert (n >= 2);
  let step = (hi -. lo) /. float_of_int (n - 1) in
  Array.init n (fun i -> lo +. (float_of_int i *. step))
