(** Minimal JSON with deterministic printing and exact float round-trips.

    The service layer keys its result cache on serialized configurations
    and replays cached solutions byte-for-byte, so this module guarantees:

    - {b Determinism}: [to_string] is a pure function of the value — object
      member order is preserved, floats always print the same digits.
    - {b Exactness}: every finite [float] round-trips through
      [to_string]/[of_string] to the identical bit pattern (shortest
      decimal that reparses exactly, between 15 and 17 significant
      digits). Non-finite floats, which JSON cannot represent, print as
      the strings ["nan"], ["inf"], ["-inf"]; {!get_float} reads them
      back.

    The parser is a plain recursive-descent over the whole input
    (UTF-8 pass-through, [\uXXXX] escapes decoded, surrogate pairs
    combined) and rejects trailing garbage. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** member order is significant and kept *)

val to_string : t -> string
(** Compact (no whitespace) deterministic rendering. *)

val to_string_hum : t -> string
(** Two-space indented rendering, for humans; same number formatting. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; [Error] carries a character position and
    message. Trailing non-whitespace input is an error. *)

val of_string_exn : string -> t
(** Raises [Failure] with the {!of_string} error message. *)

val float_lit : float -> string
(** The literal {!to_string} uses for a float (exposed for tests). *)

val write_file : string -> t -> unit
(** Atomic write: renders with {!to_string} into [path ^ ".tmp"] and
    renames over [path], so a crash mid-write never leaves a truncated
    document — readers see the old version or the new one, whole. Assumes
    one writer per path at a time (checkpoint files qualify). Raises
    [Sys_error] on I/O failure. *)

val read_file : string -> (t, string) result
(** Reads and parses a file written by {!write_file}; unreadable files
    and parse failures are [Error] (message includes the path), never an
    exception. *)

(** {1 Accessors} — shape probes returning [None] on mismatch. *)

val field : string -> t -> t option
(** First member with this name, when the value is an object. *)

val get_bool : t -> bool option
val get_int : t -> int option

val get_float : t -> float option
(** Accepts [Float], [Int] (converted) and the non-finite string
    encodings ["nan"], ["inf"], ["-inf"]. *)

val get_string : t -> string option
val get_list : t -> t list option
val get_obj : t -> (string * t) list option
