(** Deterministic pseudo-random number generation.

    All stochastic parts of the library (random-logic generation, simulated
    annealing, Monte-Carlo checks) draw from this splittable SplitMix64
    generator so that every experiment is reproducible from a named seed. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val of_string : string -> t
(** [of_string name] seeds a generator from an arbitrary string (FNV-1a
    hash), so circuits can be generated deterministically from their name. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val state : t -> int64
(** The current internal state, for checkpointing. [of_state (state t)]
    continues the exact stream [t] would produce. *)

val of_state : int64 -> t
(** Rebuild a generator from a checkpointed {!state}. Unlike {!create}
    this performs no seeding transformation — it is the exact inverse of
    {!state}. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in \[0, n); requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in \[0, x). *)

val bool : t -> bool

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in \[lo, hi). *)

val gaussian : t -> mean:float -> sigma:float -> float
(** Box-Muller normal variate. *)

val exponential : t -> rate:float -> float
(** Exponential variate with the given rate; requires [rate > 0]. *)

val choose : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val choose_weighted : t -> ('a * float) array -> 'a
(** Choice proportional to non-negative weights; requires a positive total. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
