let mean xs =
  assert (Array.length xs > 0);
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  let m = mean xs in
  let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
  acc /. float_of_int (Array.length xs)

let stddev xs = sqrt (variance xs)

let min_max xs =
  assert (Array.length xs > 0);
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0)) xs

let sorted xs =
  let copy = Array.copy xs in
  Array.sort Float.compare copy;
  copy

let percentile xs p =
  assert (Array.length xs > 0 && p >= 0.0 && p <= 100.0);
  let s = sorted xs in
  let n = Array.length s in
  if n = 1 then s.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let i = int_of_float (Float.floor rank) in
    let frac = rank -. float_of_int i in
    if i >= n - 1 then s.(n - 1) else s.(i) +. (frac *. (s.(i + 1) -. s.(i)))

let median xs = percentile xs 50.0

let quantile xs q =
  assert (q >= 0.0 && q <= 1.0);
  percentile xs (q *. 100.0)

let geometric_mean xs =
  assert (Array.length xs > 0);
  let acc =
    Array.fold_left
      (fun acc x ->
        assert (x > 0.0);
        acc +. log x)
      0.0 xs
  in
  exp (acc /. float_of_int (Array.length xs))

let histogram ~bins xs =
  assert (bins >= 1 && Array.length xs > 0);
  let lo, hi = min_max xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let i = int_of_float ((x -. lo) /. width) in
      let i = if i >= bins then bins - 1 else if i < 0 then 0 else i in
      counts.(i) <- counts.(i) + 1)
    xs;
  Array.mapi
    (fun i c ->
      let b_lo = lo +. (float_of_int i *. width) in
      (b_lo, b_lo +. width, c))
    counts
