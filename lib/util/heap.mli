(** Mutable binary max-heap keyed by float priority, used by the
    K-most-critical-path enumerator. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> priority:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Removes and returns the entry with the largest priority; ties are
    broken arbitrarily. *)

val peek : 'a t -> (float * 'a) option
