type 'a entry = { priority : float; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length h = h.len
let is_empty h = h.len = 0

let grow h =
  let capacity = max 16 (2 * Array.length h.data) in
  let fresh = Array.make capacity h.data.(0) in
  Array.blit h.data 0 fresh 0 h.len;
  h.data <- fresh

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.data.(parent).priority < h.data.(i).priority then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let largest = ref i in
  if left < h.len && h.data.(left).priority > h.data.(!largest).priority then
    largest := left;
  if right < h.len && h.data.(right).priority > h.data.(!largest).priority then
    largest := right;
  if !largest <> i then begin
    swap h i !largest;
    sift_down h !largest
  end

let push h ~priority value =
  let entry = { priority; value } in
  if Array.length h.data = 0 then h.data <- Array.make 16 entry;
  if h.len = Array.length h.data then grow h;
  h.data.(h.len) <- entry;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      sift_down h 0
    end;
    Some (top.priority, top.value)
  end

let peek h = if h.len = 0 then None else Some (h.data.(0).priority, h.data.(0).value)
