/* Monotonic clock for Dcopt_util.Clock.

   The installed unix library predates Unix.clock_gettime, so the
   monotonic source is a tiny stub over clock_gettime(CLOCK_MONOTONIC):
   immune to NTP steps and DST jumps, which is exactly what heartbeat
   deadlines and backoff timers need. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <stdint.h>
#include <time.h>

CAMLprim value dcopt_monotonic_ns(value unit)
{
  CAMLparam1(unit);
  struct timespec ts;
  int64_t ns = 0;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    ns = (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
  CAMLreturn(caml_copy_int64(ns));
}
