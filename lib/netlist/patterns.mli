(** Structured combinational circuits with known function and shape, used by
    the examples and as ground truth in tests (their Boolean function, depth
    and gate count are all predictable). *)

val inverter_chain : stages:int -> Circuit.t
(** [stages >= 1] NOT gates in series; input ["a"], output the last stage. *)

val ripple_carry_adder : bits:int -> Circuit.t
(** [bits >= 1] full adders in ripple; inputs [a0..], [b0..], [cin];
    outputs [s0..] and [cout]. Each full adder is the standard 2-XOR,
    2-AND, 1-OR decomposition (5 gates/bit). *)

val parity_tree : leaves:int -> Circuit.t
(** Balanced XOR tree over [leaves >= 2] inputs; output ["parity"]. *)

val mux_tree : select_bits:int -> Circuit.t
(** [2^select_bits]-to-1 multiplexer built from AND-OR-NOT logic;
    data inputs [d0..], selects [s0..], output ["y"]. Requires
    [1 <= select_bits <= 10]. *)

val decoder : bits:int -> Circuit.t
(** [bits]-to-[2^bits] one-hot decoder; outputs [o0..]. Requires
    [1 <= bits <= 10]. *)

val array_multiplier : bits:int -> Circuit.t
(** [bits x bits] unsigned array multiplier (AND partial products reduced
    with ripple-carry rows); inputs [a0..], [b0..]; outputs [p0..p(2b-1)].
    Requires [1 <= bits <= 8]. *)

val barrel_shifter : bits:int -> Circuit.t
(** Logarithmic left barrel shifter over [2^bits] data lines; data inputs
    [d0..], shift-amount inputs [s0..], outputs [y0..] (zero fill).
    Requires [1 <= bits <= 5]. *)

val and_or_ladder : rungs:int -> Circuit.t
(** Alternating AND/OR chain with a fresh input per rung — a circuit with
    one long dominant path, handy for path-budgeting tests. *)
