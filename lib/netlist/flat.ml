(* Struct-of-arrays view of a circuit: every per-node attribute lives in a
   dense column indexed by node id, and both adjacency directions are in
   compressed-sparse-row form. Built once from a Circuit.t; all arrays are
   either shared read-only with the circuit (fanout CSR, levels, topo
   order) or derived in O(n + e). *)

type t = {
  circuit : Circuit.t;
  n : int;
  kinds : Gate.kind array;
  is_gate : bool array;
  fanin_off : int array;
  fanin_edges : int array;
  fanout_off : int array;
  fanout_edges : int array;
  fanout_counts : int array;
  is_output : bool array;
  output_ids : int array;
  levels : int array;
  depth : int;
  level_off : int array;
  level_order : int array;
  gate_level_off : int array;
  gate_level_order : int array;
  max_level_width : int;
}

(* Counting sort of a node subset by level: one pass to count, prefix sum
   into offsets, one pass to place. Nodes are visited in ascending id
   order, so within a level the permutation is sorted by id — the
   deterministic order every level-parallel kernel relies on. *)
let level_partition ~n ~depth ~levels ~keep =
  let off = Array.make (depth + 2) 0 in
  for id = 0 to n - 1 do
    if keep id then off.(levels.(id) + 1) <- off.(levels.(id) + 1) + 1
  done;
  for l = 0 to depth do
    off.(l + 1) <- off.(l) + off.(l + 1)
  done;
  let order = Array.make off.(depth + 1) 0 in
  let cursor = Array.make (depth + 1) 0 in
  for id = 0 to n - 1 do
    if keep id then begin
      let l = levels.(id) in
      order.(off.(l) + cursor.(l)) <- id;
      cursor.(l) <- cursor.(l) + 1
    end
  done;
  (off, order)

let of_circuit circuit =
  let n = Circuit.size circuit in
  let node_array = Circuit.nodes circuit in
  let kinds = Array.map (fun nd -> nd.Circuit.kind) node_array in
  let is_gate =
    Array.map
      (fun k -> match k with Gate.Input | Gate.Dff -> false | _ -> true)
      kinds
  in
  let fanin_off = Array.make (n + 1) 0 in
  for id = 0 to n - 1 do
    fanin_off.(id + 1) <-
      fanin_off.(id) + Array.length node_array.(id).Circuit.fanins
  done;
  let fanin_edges = Array.make fanin_off.(n) 0 in
  for id = 0 to n - 1 do
    let fi = node_array.(id).Circuit.fanins in
    let base = fanin_off.(id) in
    Array.iteri (fun p f -> fanin_edges.(base + p) <- f) fi
  done;
  let fanout_off, fanout_edges = Circuit.unsafe_fanout_csr circuit in
  let fanout_counts = Array.init n (Circuit.fanout_count circuit) in
  let is_output = Array.make n false in
  let output_ids = Circuit.outputs circuit in
  Array.iter (fun id -> is_output.(id) <- true) output_ids;
  let levels = Circuit.unsafe_levels circuit in
  let depth = Circuit.depth circuit in
  let level_off, level_order =
    level_partition ~n ~depth ~levels ~keep:(fun _ -> true)
  in
  let gate_level_off, gate_level_order =
    level_partition ~n ~depth ~levels ~keep:(fun id -> is_gate.(id))
  in
  let max_level_width = ref 0 in
  for l = 0 to depth do
    max_level_width :=
      max !max_level_width (gate_level_off.(l + 1) - gate_level_off.(l))
  done;
  {
    circuit;
    n;
    kinds;
    is_gate;
    fanin_off;
    fanin_edges;
    fanout_off;
    fanout_edges;
    fanout_counts;
    is_output;
    output_ids;
    levels;
    depth;
    level_off;
    level_order;
    gate_level_off;
    gate_level_order;
    max_level_width = !max_level_width;
  }

let circuit t = t.circuit
let size t = t.n
let depth t = t.depth
let max_level_width t = t.max_level_width

let level_gates t l =
  (t.gate_level_off.(l), t.gate_level_off.(l + 1))

(* Working-set size of the view in bytes: every column counts, including
   the arrays shared with the circuit (they are part of what a kernel
   touches). OCaml boxes each array with a one-word header; bool and kind
   arrays still store one word per element. *)
let alloc_bytes t =
  let word_bytes = Sys.word_size / 8 in
  let arr len = (len + 1) * word_bytes in
  arr (Array.length t.kinds)
  + arr (Array.length t.is_gate)
  + arr (Array.length t.fanin_off)
  + arr (Array.length t.fanin_edges)
  + arr (Array.length t.fanout_off)
  + arr (Array.length t.fanout_edges)
  + arr (Array.length t.fanout_counts)
  + arr (Array.length t.is_output)
  + arr (Array.length t.output_ids)
  + arr (Array.length t.levels)
  + arr (Array.length t.level_off)
  + arr (Array.length t.level_order)
  + arr (Array.length t.gate_level_off)
  + arr (Array.length t.gate_level_order)
