exception Parse_error of { line : int; message : string }

module Diag = Dcopt_util.Diag

let strip s =
  let is_space c = c = ' ' || c = '\t' || c = '\r' in
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_space s.[!i] do incr i done;
  while !j >= !i && is_space s.[!j] do decr j done;
  String.sub s !i (!j - !i + 1)

(* Accepts "HEAD(arg1, arg2, ...)" and returns (HEAD, args); [None] means
   the shape is wrong and a diagnostic has already been recorded. *)
let parse_call diag line s =
  match String.index_opt s '(' with
  | None ->
    diag ~line ~code:"bench.syntax" (Printf.sprintf "expected '(' in %S" s);
    None
  | Some open_paren ->
    if s.[String.length s - 1] <> ')' then (
      diag ~line ~code:"bench.syntax" (Printf.sprintf "expected ')' in %S" s);
      None)
    else
      let head = strip (String.sub s 0 open_paren) in
      let inner =
        String.sub s (open_paren + 1) (String.length s - open_paren - 2)
      in
      let args =
        if strip inner = "" then []
        else String.split_on_char ',' inner |> List.map strip
      in
      Some (head, args)

(* The recovering front end: scan every line, record a diagnostic for each
   problem, and keep going so one bad line never hides the rest. Semantic
   checks (duplicates, undefined references, arity) are re-done here with
   the declaration's line number attached; [Circuit.create_checked] then
   catches whatever has no natural line (combinational cycles). *)
let parse ?file ~name text =
  let diags = ref [] in
  let diag ~line ~code message =
    diags := Diag.error ?file ~line ~code message :: !diags
  in
  let diagf ~line ~code fmt = Printf.ksprintf (diag ~line ~code) fmt in
  let nodes = ref [] and outputs = ref [] in
  let declared_inputs = ref [] in
  let handle_line lineno raw =
    let line =
      match String.index_opt raw '#' with
      | Some i -> String.sub raw 0 i
      | None -> raw
    in
    let line = strip line in
    if line <> "" then
      match String.index_opt line '=' with
      | Some eq ->
        let net = strip (String.sub line 0 eq) in
        let rhs = strip (String.sub line (eq + 1) (String.length line - eq - 1)) in
        if net = "" then
          diagf ~line:lineno ~code:"bench.syntax" "missing net name before '='"
        else (
          match parse_call diag lineno rhs with
          | None -> ()
          | Some (head, args) -> (
            match Gate.of_string head with
            | None ->
              diagf ~line:lineno ~code:"bench.gate" "unknown gate kind %S" head
            | Some Gate.Input ->
              diagf ~line:lineno ~code:"bench.gate"
                "INPUT is not a gate definition"
            | Some kind ->
              if args = [] then
                diagf ~line:lineno ~code:"bench.gate" "gate %S has no fanins"
                  net
              else nodes := (net, kind, args, lineno) :: !nodes))
      | None -> (
        match parse_call diag lineno line with
        | None -> ()
        | Some (head, args) -> (
          match (String.uppercase_ascii head, args) with
          | "INPUT", [ net ] ->
            declared_inputs := (net, lineno) :: !declared_inputs
          | "OUTPUT", [ net ] -> outputs := (net, lineno) :: !outputs
          | ("INPUT" | "OUTPUT"), _ ->
            diagf ~line:lineno ~code:"bench.syntax" "%s takes exactly one net"
              head
          | _ ->
            diagf ~line:lineno ~code:"bench.syntax"
              "unrecognized declaration %S" line))
  in
  String.split_on_char '\n' text |> List.iteri (fun i l -> handle_line (i + 1) l);
  let inputs = List.rev !declared_inputs in
  let gates = List.rev !nodes in
  let outputs = List.rev !outputs in
  (* line-located semantic scan, mirroring Circuit.create_checked *)
  let defined = Hashtbl.create 64 in
  let declare net line =
    if Hashtbl.mem defined net then
      diagf ~line ~code:"bench.duplicate" "duplicate net name %S" net
    else Hashtbl.add defined net ()
  in
  List.iter (fun (net, line) -> declare net line) inputs;
  List.iter (fun (net, _, _, line) -> declare net line) gates;
  List.iter
    (fun (net, kind, args, line) ->
      List.iter
        (fun a ->
          if not (Hashtbl.mem defined a) then
            diagf ~line ~code:"bench.undefined"
              "%s references undefined net %S" net a)
        args;
      if not (Gate.arity_ok kind (List.length args)) then
        diagf ~line ~code:"bench.arity" "gate %S: %s cannot have %d fanin(s)"
          net (Gate.to_string kind) (List.length args))
    gates;
  List.iter
    (fun (net, line) ->
      if not (Hashtbl.mem defined net) then
        diagf ~line ~code:"bench.undefined"
          "outputs references undefined net %S" net)
    outputs;
  if inputs = [] && gates = [] then
    diags := Diag.error ?file ~code:"bench.empty" "empty circuit" :: !diags;
  match List.rev !diags with
  | _ :: _ as ds -> Error ds
  | [] -> (
    let node_list =
      List.map (fun (net, _) -> (net, Gate.Input, [])) inputs
      @ List.map (fun (net, kind, args, _) -> (net, kind, args)) gates
    in
    match
      Circuit.create_checked ~name ~nodes:node_list
        ~outputs:(List.map fst outputs)
    with
    | Ok c -> Ok c
    | Error problems ->
      Error
        (List.map
           (fun p ->
             let code =
               if p = "circuit contains a combinational cycle" then
                 "bench.cycle"
               else "bench.semantic"
             in
             Diag.error ?file ~code p)
           problems))

let parse_string ~name text =
  match parse ~name text with
  | Ok c -> c
  | Error ds -> (
    match Diag.errors ds with
    | { Diag.line = Some line; message; _ } :: _ ->
      raise (Parse_error { line; message })
    | { Diag.message; _ } :: _ -> raise (Circuit.Invalid message)
    | [] -> assert false)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file path =
  let base = Filename.remove_extension (Filename.basename path) in
  parse_string ~name:base (read_file path)

let parse_file_checked path =
  match read_file path with
  | exception Sys_error msg ->
    Error [ Diag.error ~file:path ~code:"bench.io" msg ]
  | text ->
    let base = Filename.remove_extension (Filename.basename path) in
    parse ~file:path ~name:base text

let to_string circuit =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" (Circuit.name circuit));
  Array.iter
    (fun id ->
      Buffer.add_string buf
        (Printf.sprintf "INPUT(%s)\n" (Circuit.node circuit id).Circuit.name))
    (Circuit.inputs circuit);
  Array.iter
    (fun id ->
      Buffer.add_string buf
        (Printf.sprintf "OUTPUT(%s)\n" (Circuit.node circuit id).Circuit.name))
    (Circuit.outputs circuit);
  Array.iter
    (fun nd ->
      match nd.Circuit.kind with
      | Gate.Input -> ()
      | kind ->
        let fanin_names =
          Array.to_list nd.Circuit.fanins
          |> List.map (fun f -> (Circuit.node circuit f).Circuit.name)
        in
        Buffer.add_string buf
          (Printf.sprintf "%s = %s(%s)\n" nd.Circuit.name (Gate.to_string kind)
             (String.concat ", " fanin_names)))
    (Circuit.nodes circuit);
  Buffer.contents buf

let write_file path circuit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string circuit))
