exception Parse_error of { line : int; message : string }

let errorf line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let strip s =
  let is_space c = c = ' ' || c = '\t' || c = '\r' in
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_space s.[!i] do incr i done;
  while !j >= !i && is_space s.[!j] do decr j done;
  String.sub s !i (!j - !i + 1)

(* Accepts "HEAD(arg1, arg2, ...)" and returns (HEAD, args). *)
let parse_call line s =
  match String.index_opt s '(' with
  | None -> errorf line "expected '(' in %S" s
  | Some open_paren ->
    if s.[String.length s - 1] <> ')' then errorf line "expected ')' in %S" s;
    let head = strip (String.sub s 0 open_paren) in
    let inner =
      String.sub s (open_paren + 1) (String.length s - open_paren - 2)
    in
    let args =
      if strip inner = "" then []
      else String.split_on_char ',' inner |> List.map strip
    in
    (head, args)

let parse_string ~name text =
  let nodes = ref [] and outputs = ref [] in
  let declared_inputs = ref [] in
  let add_node entry = nodes := entry :: !nodes in
  let handle_line lineno raw =
    let line =
      match String.index_opt raw '#' with
      | Some i -> String.sub raw 0 i
      | None -> raw
    in
    let line = strip line in
    if line <> "" then
      match String.index_opt line '=' with
      | Some eq ->
        let net = strip (String.sub line 0 eq) in
        let rhs = strip (String.sub line (eq + 1) (String.length line - eq - 1)) in
        if net = "" then errorf lineno "missing net name before '='";
        let head, args = parse_call lineno rhs in
        (match Gate.of_string head with
        | None -> errorf lineno "unknown gate kind %S" head
        | Some Gate.Input -> errorf lineno "INPUT is not a gate definition"
        | Some kind ->
          if args = [] then errorf lineno "gate %S has no fanins" net;
          add_node (net, kind, args))
      | None ->
        let head, args = parse_call lineno line in
        (match (String.uppercase_ascii head, args) with
        | "INPUT", [ net ] -> declared_inputs := net :: !declared_inputs
        | "OUTPUT", [ net ] -> outputs := net :: !outputs
        | ("INPUT" | "OUTPUT"), _ ->
          errorf lineno "%s takes exactly one net" head
        | _ -> errorf lineno "unrecognized declaration %S" line)
  in
  String.split_on_char '\n' text |> List.iteri (fun i l -> handle_line (i + 1) l);
  let input_nodes =
    List.rev_map (fun net -> (net, Gate.Input, [])) !declared_inputs
  in
  Circuit.create ~name
    ~nodes:(input_nodes @ List.rev !nodes)
    ~outputs:(List.rev !outputs)

let parse_file path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let base = Filename.remove_extension (Filename.basename path) in
  parse_string ~name:base text

let to_string circuit =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" (Circuit.name circuit));
  Array.iter
    (fun id ->
      Buffer.add_string buf
        (Printf.sprintf "INPUT(%s)\n" (Circuit.node circuit id).Circuit.name))
    (Circuit.inputs circuit);
  Array.iter
    (fun id ->
      Buffer.add_string buf
        (Printf.sprintf "OUTPUT(%s)\n" (Circuit.node circuit id).Circuit.name))
    (Circuit.outputs circuit);
  Array.iter
    (fun nd ->
      match nd.Circuit.kind with
      | Gate.Input -> ()
      | kind ->
        let fanin_names =
          Array.to_list nd.Circuit.fanins
          |> List.map (fun f -> (Circuit.node circuit f).Circuit.name)
        in
        Buffer.add_string buf
          (Printf.sprintf "%s = %s(%s)\n" nd.Circuit.name (Gate.to_string kind)
             (String.concat ", " fanin_names)))
    (Circuit.nodes circuit);
  Buffer.contents buf

let write_file path circuit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string circuit))
