(** Logic-gate alphabet of the netlist IR.

    The alphabet is the ISCAS-89 `.bench` set: simple static CMOS gates plus
    D flip-flops. The paper's models assume "simple multi-input gates with
    symmetric series or parallel pull-up and pull-down MOSFET configurations"
    (Appendix A.1); XOR/XNOR are accepted in netlists and costed as two-level
    equivalents. *)

type kind =
  | Input  (** primary input (or DFF output in a combinational core) *)
  | And
  | Or
  | Nand
  | Nor
  | Not
  | Buf
  | Xor
  | Xnor
  | Dff    (** D flip-flop; its single fanin is the D pin *)

val to_string : kind -> string
(** Canonical upper-case `.bench` spelling, e.g. ["NAND"]. *)

val of_string : string -> kind option
(** Case-insensitive parse of the `.bench` spelling. *)

val arity_ok : kind -> int -> bool
(** [arity_ok kind n] holds when a gate of [kind] may have [n] fanins:
    0 for [Input]; exactly 1 for [Not]/[Buf]/[Dff]; at least 2 otherwise. *)

val eval : kind -> bool array -> bool
(** Boolean function of the gate on its fanin values. [Input] and [Dff] are
    not combinational and must not be evaluated. *)

val is_inverting : kind -> bool
(** True for [Not], [Nand], [Nor], [Xnor]: a single static CMOS stage. *)

val series_stack_depth : kind -> int -> int
(** [series_stack_depth kind fanin] is the worst-case number of
    series-connected MOSFETs conducting during a transition — [fanin] for
    NAND/NOR/AND/OR stacks, 1 for inverters/buffers, 2 per level for
    XOR-class gates. Used by the delay model. *)

val all : kind list
(** Every constructor, for exhaustive property tests. *)
