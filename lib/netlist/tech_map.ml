let max_gate_fanin circuit =
  Array.fold_left
    (fun acc nd ->
      match nd.Circuit.kind with
      | Gate.Input | Gate.Dff -> acc
      | _ -> max acc (Array.length nd.Circuit.fanins))
    0 (Circuit.nodes circuit)

(* Associative reduction: AND/OR/XOR trees keep their own kind internally;
   the inverting kinds (NAND/NOR/XNOR) keep the inversion at the root over
   non-inverting subtrees. *)
let internal_kind = function
  | Gate.Nand -> Gate.And
  | Gate.Nor -> Gate.Or
  | Gate.Xnor -> Gate.Xor
  | (Gate.And | Gate.Or | Gate.Xor) as k -> k
  | Gate.Not | Gate.Buf | Gate.Input | Gate.Dff ->
    invalid_arg "Tech_map: not a reducible gate"

let prune circuit =
  let n = Circuit.size circuit in
  let live = Array.make n false in
  let rec mark id =
    if not live.(id) then begin
      live.(id) <- true;
      Array.iter mark (Circuit.node circuit id).Circuit.fanins
    end
  in
  Array.iter mark (Circuit.outputs circuit);
  Array.iter
    (fun nd -> if nd.Circuit.kind = Gate.Dff then mark nd.Circuit.id)
    (Circuit.nodes circuit);
  (* primary inputs always survive so the interface is stable *)
  Array.iter mark (Circuit.inputs circuit);
  let nodes =
    Array.to_list (Circuit.nodes circuit)
    |> List.filter (fun nd -> live.(nd.Circuit.id))
    |> List.map (fun nd ->
           ( nd.Circuit.name,
             nd.Circuit.kind,
             Array.to_list nd.Circuit.fanins
             |> List.map (fun f -> (Circuit.node circuit f).Circuit.name) ))
  in
  let outputs =
    Array.to_list (Circuit.outputs circuit)
    |> List.map (fun id -> (Circuit.node circuit id).Circuit.name)
  in
  Circuit.create ~name:(Circuit.name circuit) ~nodes ~outputs

let decompose ~max_fanin circuit =
  if max_fanin < 2 then invalid_arg "Tech_map.decompose: max_fanin < 2";
  let taken = Hashtbl.create (Circuit.size circuit * 2) in
  Array.iter
    (fun nd -> Hashtbl.replace taken nd.Circuit.name ())
    (Circuit.nodes circuit);
  let counter = ref 0 in
  let fresh base =
    let rec next () =
      incr counter;
      let candidate = Printf.sprintf "%s__d%d" base !counter in
      if Hashtbl.mem taken candidate then next ()
      else begin
        Hashtbl.replace taken candidate ();
        candidate
      end
    in
    next ()
  in
  let fresh_nodes = ref [] in
  let emit name kind fanins = fresh_nodes := (name, kind, fanins) :: !fresh_nodes in
  (* Reduce [operands] (net names) to at most [max_fanin] of them by
     repeatedly grouping chunks into gates of [kind]. *)
  let rec reduce base kind operands =
    if List.length operands <= max_fanin then operands
    else begin
      let rec group acc current =
        match current with
        | [] -> List.rev acc
        | [ lone ] -> List.rev (lone :: acc) (* remainder passes through *)
        | _ ->
          let rec take n xs =
            if n = 0 then ([], xs)
            else
              match xs with
              | [] -> ([], [])
              | x :: rest ->
                let chunk, remainder = take (n - 1) rest in
                (x :: chunk, remainder)
          in
          let chunk, remainder = take max_fanin current in
          if List.length chunk < 2 then List.rev_append acc current
          else begin
            let name = fresh base in
            emit name kind chunk;
            group (name :: acc) remainder
          end
      in
      reduce base kind (group [] operands)
    end
  in
  let rewritten =
    Array.to_list (Circuit.nodes circuit)
    |> List.map (fun nd ->
           let name = nd.Circuit.name in
           let fanin_names =
             Array.to_list nd.Circuit.fanins
             |> List.map (fun f -> (Circuit.node circuit f).Circuit.name)
           in
           match nd.Circuit.kind with
           | Gate.Input -> (name, Gate.Input, [])
           | (Gate.Dff | Gate.Not | Gate.Buf) as kind -> (name, kind, fanin_names)
           | (Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor)
             as kind ->
             if List.length fanin_names <= max_fanin then
               (name, kind, fanin_names)
             else
               let reduced = reduce name (internal_kind kind) fanin_names in
               (name, kind, reduced))
  in
  let outputs =
    Array.to_list (Circuit.outputs circuit)
    |> List.map (fun id -> (Circuit.node circuit id).Circuit.name)
  in
  Circuit.create
    ~name:(Circuit.name circuit)
    ~nodes:(rewritten @ List.rev !fresh_nodes)
    ~outputs
