(** Gate-level circuit graphs.

    A circuit is a named DAG of {!Gate.kind} nodes. Sequential circuits
    (containing DFFs) are supported at the IR level; all analyses in this
    library (activity, timing, optimization) run on the {!combinational_core},
    in which every DFF output is a pseudo primary input and every DFF data
    pin a pseudo primary output — the standard treatment for the ISCAS-89
    suite and the one the paper uses. *)

type node = {
  id : int;            (** dense index, [0 .. size-1] *)
  name : string;       (** unique net name *)
  kind : Gate.kind;
  fanins : int array;  (** driving node ids, in pin order *)
}

type t

exception Invalid of string
(** Raised by {!create} on malformed netlists (duplicate names, undefined
    fanins, bad arity, combinational cycles). *)

val create :
  name:string ->
  nodes:(string * Gate.kind * string list) list ->
  outputs:string list ->
  t
(** [create ~name ~nodes ~outputs] builds and validates a circuit. [nodes]
    lists every node as [(net_name, kind, fanin_names)] in any order;
    [outputs] names the primary-output nets. Combinational cycles (cycles
    not passing through a DFF) raise {!Invalid}. *)

val create_checked :
  name:string ->
  nodes:(string * Gate.kind * string list) list ->
  outputs:string list ->
  (t, string list) result
(** Like {!create}, but collects {e every} validation problem (duplicate
    nets, undefined fanin/output references, bad arity, empty circuit,
    combinational cycles) instead of raising on the first — the entry
    point recovering parsers build on. [Error] lists the problems in
    source order and is never empty. *)

val create_direct :
  name:string ->
  names:string array ->
  kinds:Gate.kind array ->
  fanins:int array array ->
  output_ids:int array ->
  t
(** Array-native constructor for generated netlists: fanins are given as
    already-resolved node ids, so no per-node lists or name resolution is
    paid on the million-gate path. The fanin arrays are adopted, not
    copied. Raises {!Invalid} on duplicate names, out-of-range ids, bad
    arity, or combinational cycles. *)

val name : t -> string
val size : t -> int
(** Total node count, including inputs and DFFs. *)

val node : t -> int -> node
val nodes : t -> node array
(** The backing array, indexed by id. Treat as read-only. *)

val find : t -> string -> int
(** Node id by net name; raises [Not_found]. *)

val inputs : t -> int array
(** Primary-input node ids, in declaration order. *)

val outputs : t -> int array
(** Primary-output node ids, in declaration order (may repeat a node that
    feeds several outputs only once per declaration). *)

val dffs : t -> int array
(** DFF node ids. *)

val fanouts : t -> int -> int array
(** Ids of the nodes this node drives (including DFF data pins). *)

val fanout_count : t -> int -> int
(** [Array.length (fanouts t i)] plus 1 if node [i] is a primary output:
    a PO pin is a real load. Cached at build time, O(1). *)

val is_output : t -> int -> bool

val gate_count : t -> int
(** Number of combinational logic gates (excludes [Input] and [Dff]). *)

val is_combinational : t -> bool

val topo_order : t -> int array
(** Node ids in combinational topological order: every non-DFF node appears
    after all its fanins; [Input] and [Dff] nodes come first. The order is
    deterministic. *)

val iter_topo : t -> (int -> unit) -> unit
(** Apply to every node id in topological order, without allocating a copy
    of the order — the traversal the analysis hot paths use. *)

val iter_topo_rev : t -> (int -> unit) -> unit
(** Apply in reverse topological order (precomputed once at {!create}, so
    per-call reversal is never paid). *)

val level : t -> int -> int
(** Combinational depth of a node: 0 for [Input]/[Dff], else
    [1 + max (level fanins)]. *)

val depth : t -> int
(** Maximum node level = logic depth of the circuit. *)

val unsafe_fanout_csr : t -> int array * int array
(** [(off, edges)]: the fanout adjacency in compressed-sparse-row form.
    The consumers of node [i] are [edges.(off.(i)) .. edges.(off.(i+1)-1)],
    in ascending consumer-id order with one entry per pin (the same order
    {!fanouts} reports). Returns the backing arrays without copying —
    treat as read-only. The PO pseudo-load counted by {!fanout_count} is
    {e not} an edge. *)

val unsafe_levels : t -> int array
(** The per-node {!level} array, by id, without copying. Read-only. *)

val unsafe_order : t -> int array
(** The {!topo_order} array without the defensive copy. Read-only. *)

val combinational_core : t -> t
(** Rewrites every DFF into a pseudo primary input and appends its data pin
    to the outputs; the result satisfies {!is_combinational}. Names are
    preserved. The identity on already-combinational circuits. *)

val eval : t -> bool array -> bool array
(** [eval t input_values] simulates a combinational circuit: input values
    are given in {!inputs} order and the result holds every node's value by
    id. Raises [Invalid_argument] on sequential circuits or a length
    mismatch. *)

val output_values : t -> bool array -> bool array
(** Convenience: the {!eval} results restricted to {!outputs} order. *)
