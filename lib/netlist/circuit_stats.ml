type t = {
  circuit : string;
  primary_inputs : int;
  primary_outputs : int;
  flip_flops : int;
  gates : int;
  depth : int;
  total_fanout : int;
  max_fanout : int;
  mean_fanin : float;
  kind_counts : (Gate.kind * int) list;
}

let compute c =
  let core = Circuit.combinational_core c in
  let counts = Hashtbl.create 11 in
  let bump k =
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  in
  let total_fanout = ref 0 and max_fanout = ref 0 in
  let fanin_sum = ref 0 and gate_n = ref 0 in
  Array.iter
    (fun nd ->
      match nd.Circuit.kind with
      | Gate.Input | Gate.Dff -> ()
      | k ->
        bump k;
        incr gate_n;
        fanin_sum := !fanin_sum + Array.length nd.Circuit.fanins;
        let fo = Circuit.fanout_count core nd.Circuit.id in
        total_fanout := !total_fanout + fo;
        if fo > !max_fanout then max_fanout := fo)
    (Circuit.nodes core);
  {
    circuit = Circuit.name c;
    primary_inputs = Array.length (Circuit.inputs c);
    primary_outputs = Array.length (Circuit.outputs c);
    flip_flops = Array.length (Circuit.dffs c);
    gates = Circuit.gate_count c;
    depth = Circuit.depth core;
    total_fanout = !total_fanout;
    max_fanout = !max_fanout;
    mean_fanin =
      (if !gate_n = 0 then 0.0
       else float_of_int !fanin_sum /. float_of_int !gate_n);
    kind_counts =
      List.filter_map
        (fun k ->
          match Hashtbl.find_opt counts k with
          | Some n -> Some (k, n)
          | None -> None)
        Gate.all;
  }

let to_string s =
  let kinds =
    s.kind_counts
    |> List.map (fun (k, n) -> Printf.sprintf "%s:%d" (Gate.to_string k) n)
    |> String.concat " "
  in
  Printf.sprintf
    "%s: %d PI, %d PO, %d DFF, %d gates, depth %d, fanout total %d max %d, \
     mean fanin %.2f [%s]"
    s.circuit s.primary_inputs s.primary_outputs s.flip_flops s.gates s.depth
    s.total_fanout s.max_fanout s.mean_fanin kinds
