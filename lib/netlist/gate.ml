type kind = Input | And | Or | Nand | Nor | Not | Buf | Xor | Xnor | Dff

let to_string = function
  | Input -> "INPUT"
  | And -> "AND"
  | Or -> "OR"
  | Nand -> "NAND"
  | Nor -> "NOR"
  | Not -> "NOT"
  | Buf -> "BUF"
  | Xor -> "XOR"
  | Xnor -> "XNOR"
  | Dff -> "DFF"

let of_string s =
  match String.uppercase_ascii s with
  | "INPUT" -> Some Input
  | "AND" -> Some And
  | "OR" -> Some Or
  | "NAND" -> Some Nand
  | "NOR" -> Some Nor
  | "NOT" | "INV" -> Some Not
  | "BUF" | "BUFF" -> Some Buf
  | "XOR" -> Some Xor
  | "XNOR" -> Some Xnor
  | "DFF" -> Some Dff
  | _ -> None

let arity_ok kind n =
  match kind with
  | Input -> n = 0
  | Not | Buf | Dff -> n = 1
  | And | Or | Nand | Nor | Xor | Xnor -> n >= 2

let eval kind vs =
  let all_true () = Array.for_all Fun.id vs in
  let any_true () = Array.exists Fun.id vs in
  let parity () = Array.fold_left (fun acc v -> if v then not acc else acc) false vs in
  match kind with
  | And -> all_true ()
  | Nand -> not (all_true ())
  | Or -> any_true ()
  | Nor -> not (any_true ())
  | Not -> not vs.(0)
  | Buf -> vs.(0)
  | Xor -> parity ()
  | Xnor -> not (parity ())
  | Input | Dff -> invalid_arg "Gate.eval: not a combinational gate"

let is_inverting = function
  | Not | Nand | Nor | Xnor -> true
  | And | Or | Buf | Xor | Input | Dff -> false

let series_stack_depth kind fanin =
  match kind with
  | Not | Buf | Input | Dff -> 1
  | And | Or | Nand | Nor -> max 1 fanin
  | Xor | Xnor -> 2

let all = [ Input; And; Or; Nand; Nor; Not; Buf; Xor; Xnor; Dff ]
