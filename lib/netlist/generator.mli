(** Deterministic random-logic-network generator.

    Produces levelized random DAGs with a prescribed size profile. Used to
    stand in for ISCAS-89 netlists that cannot be redistributed here (see
    DESIGN.md, substitution 2): the optimizer's behaviour depends on the
    structural statistics this generator controls — gate count, depth,
    fanin mix, fanout spread — not on the exact Boolean functions. *)

type profile = {
  profile_name : string;
  primary_inputs : int;   (** >= 1 *)
  primary_outputs : int;  (** >= 1 *)
  flip_flops : int;       (** >= 0 *)
  gates : int;            (** combinational gates, >= depth *)
  logic_depth : int;      (** >= 1; every generated circuit reaches it *)
  seed : int64 option;    (** [None] = hash of [profile_name] *)
}

val validate : profile -> (unit, string) result
(** Checks the bounds documented on the fields. *)

val generate : profile -> Circuit.t
(** Generates a circuit matching the profile exactly in #PI, #PO, #DFF and
    combinational gate count, with logic depth equal to [logic_depth].
    Deterministic: equal profiles give structurally equal circuits.
    Raises [Invalid_argument] if [validate] fails. *)

(** {1 Scale generator}

    {!generate} builds name lists and per-level pools — fine up to a few
    thousand gates, quadratic-ish beyond. {!random_dag} is the
    array-native O(n) path for 100k–1M gate networks: node ids are
    assigned in level blocks so every fanin pick is a single bounded
    PRNG draw, and the circuit is assembled through
    {!Circuit.create_direct} without intermediate lists. *)

type dag = {
  dag_name : string;
  dag_seed : int64;     (** equal specs generate equal circuits *)
  dag_gates : int;      (** combinational gates, >= depth *)
  dag_inputs : int;     (** primary inputs, >= 1 *)
  dag_outputs : int;    (** primary outputs, in \[1, gates\] *)
  dag_depth : int;      (** exact logic depth, >= 1 *)
  dag_max_fanin : int;  (** >= 2; arities are drawn in \[1, max_fanin\] *)
  dag_max_fanout : int; (** >= 2; soft cap — re-draws, never fails *)
}

val default_dag : ?name:string -> ?seed:int64 -> gates:int -> unit -> dag
(** A spec with interface width ~2*sqrt(gates), depth ~2*log2(gates),
    fanin <= 4 and fanout softly capped at 16 — ISCAS-like shape scaled
    to the requested size. *)

val validate_dag : dag -> (unit, string) result

val random_dag : dag -> Circuit.t
(** Generate the combinational DAG described by the spec: exact gate,
    input, output counts and logic depth; bounded fanin; softly bounded
    fanout; deterministic from [dag_seed]. O(gates * max_fanin). Raises
    [Invalid_argument] if {!validate_dag} fails. *)
