(** Deterministic random-logic-network generator.

    Produces levelized random DAGs with a prescribed size profile. Used to
    stand in for ISCAS-89 netlists that cannot be redistributed here (see
    DESIGN.md, substitution 2): the optimizer's behaviour depends on the
    structural statistics this generator controls — gate count, depth,
    fanin mix, fanout spread — not on the exact Boolean functions. *)

type profile = {
  profile_name : string;
  primary_inputs : int;   (** >= 1 *)
  primary_outputs : int;  (** >= 1 *)
  flip_flops : int;       (** >= 0 *)
  gates : int;            (** combinational gates, >= depth *)
  logic_depth : int;      (** >= 1; every generated circuit reaches it *)
  seed : int64 option;    (** [None] = hash of [profile_name] *)
}

val validate : profile -> (unit, string) result
(** Checks the bounds documented on the fields. *)

val generate : profile -> Circuit.t
(** Generates a circuit matching the profile exactly in #PI, #PO, #DFF and
    combinational gate count, with logic depth equal to [logic_depth].
    Deterministic: equal profiles give structurally equal circuits.
    Raises [Invalid_argument] if [validate] fails. *)
