(** Struct-of-arrays circuit view for cache-friendly whole-network sweeps.

    Every per-node attribute is a dense column indexed by node id and both
    adjacency directions are compressed-sparse-row: the fanins of node [i]
    are [fanin_edges.(fanin_off.(i)) .. fanin_edges.(fanin_off.(i+1)-1)]
    in pin order, and symmetrically for [fanout_*] (ascending consumer id,
    one entry per pin — the same orders {!Circuit.node} and
    {!Circuit.fanouts} report, which is what keeps flat kernels
    bit-identical to the pointer-based ones).

    [level_order]/[level_off] give a level-sorted permutation of all node
    ids: the nodes at level [l] occupy
    [level_order.(level_off.(l)) .. level_order.(level_off.(l+1)-1)],
    sorted by id within the level. [gate_level_*] is the same partition
    restricted to logic gates. Since every fanin of a gate sits at a
    strictly lower level, the gates inside one level slice never depend on
    each other — a level slice can be computed in parallel in any order
    and still produce exactly the values a sequential sweep produces.

    The record is exposed for direct indexing in kernels; treat every
    array as read-only. *)

type t = private {
  circuit : Circuit.t;
  n : int;                      (** node count *)
  kinds : Gate.kind array;
  is_gate : bool array;         (** neither [Input] nor [Dff] *)
  fanin_off : int array;        (** length [n+1] *)
  fanin_edges : int array;      (** pin order *)
  fanout_off : int array;       (** length [n+1]; shared with the circuit *)
  fanout_edges : int array;     (** ascending consumer id *)
  fanout_counts : int array;    (** edge count + 1 if primary output *)
  is_output : bool array;
  output_ids : int array;
  levels : int array;           (** shared with the circuit *)
  depth : int;
  level_off : int array;        (** length [depth+2] *)
  level_order : int array;
  gate_level_off : int array;   (** length [depth+2] *)
  gate_level_order : int array;
  max_level_width : int;        (** widest gate level *)
}

val of_circuit : Circuit.t -> t
(** Build the view in O(n + e). The fanout CSR, level and topo arrays are
    shared with the circuit, not copied. *)

val circuit : t -> Circuit.t
val size : t -> int
val depth : t -> int
val max_level_width : t -> int

val level_gates : t -> int -> int * int
(** [(lo, hi)]: the gates at level [l] are
    [gate_level_order.(lo) .. gate_level_order.(hi - 1)]. *)

val alloc_bytes : t -> int
(** Approximate working-set size of all columns in bytes, including the
    arrays shared with the circuit. *)
