type profile = {
  profile_name : string;
  primary_inputs : int;
  primary_outputs : int;
  flip_flops : int;
  gates : int;
  logic_depth : int;
  seed : int64 option;
}

let validate p =
  if p.primary_inputs < 1 then Error "primary_inputs must be >= 1"
  else if p.primary_outputs < 1 then Error "primary_outputs must be >= 1"
  else if p.flip_flops < 0 then Error "flip_flops must be >= 0"
  else if p.logic_depth < 1 then Error "logic_depth must be >= 1"
  else if p.gates < p.logic_depth then Error "gates must be >= logic_depth"
  else Ok ()

type building_gate = {
  gate_name : string;
  gate_kind : Gate.kind;
  gate_level : int;
  mutable gate_fanins : string list; (* reversed pin order *)
}

let kind_weights =
  [| (Gate.Nand, 0.28); (Gate.Nor, 0.18); (Gate.And, 0.14); (Gate.Or, 0.14);
     (Gate.Not, 0.18); (Gate.Buf, 0.02); (Gate.Xor, 0.04); (Gate.Xnor, 0.02) |]

let fanin_weights = [| (2, 0.70); (3, 0.25); (4, 0.05) |]

let absorbing = function
  | Gate.And | Gate.Or | Gate.Nand | Gate.Nor -> true
  | Gate.Not | Gate.Buf | Gate.Xor | Gate.Xnor | Gate.Input | Gate.Dff -> false

(* Split [p.gates] over [p.logic_depth] levels: one gate per level to pin the
   depth, the last level capped by the number of available sinks (POs and DFF
   data pins) so every deepest gate finds a consumer, and the remainder
   spread with a bias toward shallow levels (real netlists taper). *)
let distribute_levels rng p =
  let depth = p.logic_depth in
  let counts = Array.make (depth + 1) 0 in
  for lvl = 1 to depth do
    counts.(lvl) <- 1
  done;
  let last_cap = max 1 (p.primary_outputs + p.flip_flops) in
  let weights =
    Array.init depth (fun i ->
        let lvl = i + 1 in
        (lvl, 1.0 +. (2.0 *. float_of_int (depth - lvl))))
  in
  for _ = 1 to p.gates - depth do
    let rec pick tries =
      let lvl = Dcopt_util.Prng.choose_weighted rng weights in
      if lvl = depth && counts.(depth) >= last_cap && tries < 32 then
        pick (tries + 1)
      else if lvl = depth && counts.(depth) >= last_cap then depth - 1
      else lvl
    in
    let lvl = if depth = 1 then 1 else pick 0 in
    let lvl = max 1 lvl in
    counts.(lvl) <- counts.(lvl) + 1
  done;
  counts

let generate p =
  (match validate p with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Generator.generate: " ^ msg));
  let rng =
    match p.seed with
    | Some s -> Dcopt_util.Prng.create s
    | None -> Dcopt_util.Prng.of_string p.profile_name
  in
  let pi_names = Array.init p.primary_inputs (Printf.sprintf "pi%d") in
  let ff_names = Array.init p.flip_flops (Printf.sprintf "ff%d") in
  let sources = Array.append pi_names ff_names in
  let counts = distribute_levels rng p in
  let depth = p.logic_depth in
  (* pool.(lvl) = names of nodes whose level is exactly lvl *)
  let pool = Array.make (depth + 1) [||] in
  pool.(0) <- sources;
  let dangling : (string, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iter (fun s -> Hashtbl.replace dangling s 0) sources;
  let gates_by_level = Array.make (depth + 1) [] in
  let all_gates = ref [] in
  let fresh_gate_id = ref 0 in
  let consume net = Hashtbl.remove dangling net in
  let pick_fanin_level lvl =
    (* geometric bias toward the immediately preceding level *)
    let rec hop current =
      if current = 0 then 0
      else if Dcopt_util.Prng.float rng 1.0 < 0.6 then current
      else hop (current - 1)
    in
    hop (lvl - 1)
  in
  let pick_extra_fanin lvl =
    (* prefer re-using a dangling node so few nets end up unconsumed *)
    let from_dangling () =
      let candidates =
        Hashtbl.fold
          (fun net l acc -> if l < lvl then net :: acc else acc)
          dangling []
      in
      match candidates with
      | [] -> None
      | _ ->
        let arr = Array.of_list (List.sort compare candidates) in
        Some (Dcopt_util.Prng.choose rng arr)
    in
    if Dcopt_util.Prng.float rng 1.0 < 0.5 then
      match from_dangling () with
      | Some net -> net
      | None ->
        let l = pick_fanin_level lvl in
        Dcopt_util.Prng.choose rng pool.(l)
    else
      let l = pick_fanin_level lvl in
      Dcopt_util.Prng.choose rng pool.(l)
  in
  for lvl = 1 to depth do
    let level_gates =
      List.init counts.(lvl) (fun _ ->
          let kind = Dcopt_util.Prng.choose_weighted rng kind_weights in
          let target_arity =
            match kind with
            | Gate.Not | Gate.Buf -> 1
            | _ -> Dcopt_util.Prng.choose_weighted rng fanin_weights
          in
          let name = Printf.sprintf "g%d" !fresh_gate_id in
          incr fresh_gate_id;
          (* anchor fanin from level - 1 pins the gate's level exactly *)
          let anchor = Dcopt_util.Prng.choose rng pool.(lvl - 1) in
          consume anchor;
          let fanins = ref [ anchor ] in
          for _ = 2 to target_arity do
            let rec distinct tries =
              let cand = pick_extra_fanin lvl in
              if List.mem cand !fanins && tries < 8 then distinct (tries + 1)
              else cand
            in
            let extra = distinct 0 in
            consume extra;
            fanins := extra :: !fanins
          done;
          { gate_name = name; gate_kind = kind; gate_level = lvl;
            gate_fanins = !fanins })
    in
    gates_by_level.(lvl) <- level_gates;
    pool.(lvl) <-
      Array.of_list (List.map (fun g -> g.gate_name) level_gates);
    List.iter (fun g -> Hashtbl.replace dangling g.gate_name lvl) level_gates;
    all_gates := !all_gates @ [ level_gates ]
  done;
  let gates = List.concat !all_gates in
  (* Sink assignment: primary outputs then DFF data pins, consuming the
     deepest-level gates first (they have no other possible consumer), then
     remaining dangling gates deepest-first, then arbitrary gates. *)
  let deepest_first =
    List.stable_sort
      (fun a b -> compare b.gate_level a.gate_level)
      gates
  in
  let last_level = List.filter (fun g -> g.gate_level = depth) deepest_first in
  let sink_candidates =
    let dangling_gates =
      List.filter
        (fun g -> g.gate_level < depth && Hashtbl.mem dangling g.gate_name)
        deepest_first
    in
    let rest =
      List.filter
        (fun g -> g.gate_level < depth && not (Hashtbl.mem dangling g.gate_name))
        deepest_first
    in
    List.map (fun g -> g.gate_name) (last_level @ dangling_gates @ rest)
    @ Array.to_list sources
  in
  let take_sinks n =
    let rec go n acc = function
      | _ when n = 0 -> List.rev acc
      | [] ->
        (* tiny circuit: recycle candidates cyclically *)
        go n acc sink_candidates
      | net :: rest -> go (n - 1) (net :: acc) rest
    in
    go n [] sink_candidates
  in
  let sinks = take_sinks (p.primary_outputs + p.flip_flops) in
  let po_drivers, dff_drivers =
    let rec split i acc = function
      | rest when i = p.primary_outputs -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | net :: rest -> split (i + 1) (net :: acc) rest
    in
    split 0 [] sinks
  in
  List.iter consume po_drivers;
  List.iter consume dff_drivers;
  (* Absorb still-dangling nodes as extra fanins of AND/OR-class gates at
     strictly greater levels, preserving depth and acyclicity. *)
  let absorbers_above lvl =
    List.filter
      (fun g -> g.gate_level > lvl && absorbing g.gate_kind)
      gates
  in
  let dangling_list =
    Hashtbl.fold (fun net lvl acc -> (net, lvl) :: acc) dangling []
    |> List.sort compare
  in
  List.iter
    (fun (net, lvl) ->
      match absorbers_above lvl with
      | [] -> () (* leave dangling; validated circuits allow unused nets *)
      | candidates ->
        let arr = Array.of_list candidates in
        let g = Dcopt_util.Prng.choose rng arr in
        if not (List.mem net g.gate_fanins) then begin
          g.gate_fanins <- net :: g.gate_fanins;
          consume net
        end)
    dangling_list;
  let node_list =
    List.map (fun n -> (n, Gate.Input, [])) (Array.to_list pi_names)
    @ List.map2
        (fun n driver -> (n, Gate.Dff, [ driver ]))
        (Array.to_list ff_names) dff_drivers
    @ List.map
        (fun g -> (g.gate_name, g.gate_kind, List.rev g.gate_fanins))
        gates
  in
  Circuit.create ~name:p.profile_name ~nodes:node_list ~outputs:po_drivers
