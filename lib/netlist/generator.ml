type profile = {
  profile_name : string;
  primary_inputs : int;
  primary_outputs : int;
  flip_flops : int;
  gates : int;
  logic_depth : int;
  seed : int64 option;
}

let validate p =
  if p.primary_inputs < 1 then Error "primary_inputs must be >= 1"
  else if p.primary_outputs < 1 then Error "primary_outputs must be >= 1"
  else if p.flip_flops < 0 then Error "flip_flops must be >= 0"
  else if p.logic_depth < 1 then Error "logic_depth must be >= 1"
  else if p.gates < p.logic_depth then Error "gates must be >= logic_depth"
  else Ok ()

type building_gate = {
  gate_name : string;
  gate_kind : Gate.kind;
  gate_level : int;
  mutable gate_fanins : string list; (* reversed pin order *)
}

let kind_weights =
  [| (Gate.Nand, 0.28); (Gate.Nor, 0.18); (Gate.And, 0.14); (Gate.Or, 0.14);
     (Gate.Not, 0.18); (Gate.Buf, 0.02); (Gate.Xor, 0.04); (Gate.Xnor, 0.02) |]

let fanin_weights = [| (2, 0.70); (3, 0.25); (4, 0.05) |]

let absorbing = function
  | Gate.And | Gate.Or | Gate.Nand | Gate.Nor -> true
  | Gate.Not | Gate.Buf | Gate.Xor | Gate.Xnor | Gate.Input | Gate.Dff -> false

(* Split [p.gates] over [p.logic_depth] levels: one gate per level to pin the
   depth, the last level capped by the number of available sinks (POs and DFF
   data pins) so every deepest gate finds a consumer, and the remainder
   spread with a bias toward shallow levels (real netlists taper). *)
let distribute_levels rng p =
  let depth = p.logic_depth in
  let counts = Array.make (depth + 1) 0 in
  for lvl = 1 to depth do
    counts.(lvl) <- 1
  done;
  let last_cap = max 1 (p.primary_outputs + p.flip_flops) in
  let weights =
    Array.init depth (fun i ->
        let lvl = i + 1 in
        (lvl, 1.0 +. (2.0 *. float_of_int (depth - lvl))))
  in
  for _ = 1 to p.gates - depth do
    let rec pick tries =
      let lvl = Dcopt_util.Prng.choose_weighted rng weights in
      if lvl = depth && counts.(depth) >= last_cap && tries < 32 then
        pick (tries + 1)
      else if lvl = depth && counts.(depth) >= last_cap then depth - 1
      else lvl
    in
    let lvl = if depth = 1 then 1 else pick 0 in
    let lvl = max 1 lvl in
    counts.(lvl) <- counts.(lvl) + 1
  done;
  counts

let generate p =
  (match validate p with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Generator.generate: " ^ msg));
  let rng =
    match p.seed with
    | Some s -> Dcopt_util.Prng.create s
    | None -> Dcopt_util.Prng.of_string p.profile_name
  in
  let pi_names = Array.init p.primary_inputs (Printf.sprintf "pi%d") in
  let ff_names = Array.init p.flip_flops (Printf.sprintf "ff%d") in
  let sources = Array.append pi_names ff_names in
  let counts = distribute_levels rng p in
  let depth = p.logic_depth in
  (* pool.(lvl) = names of nodes whose level is exactly lvl *)
  let pool = Array.make (depth + 1) [||] in
  pool.(0) <- sources;
  let dangling : (string, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iter (fun s -> Hashtbl.replace dangling s 0) sources;
  let gates_by_level = Array.make (depth + 1) [] in
  let all_gates = ref [] in
  let fresh_gate_id = ref 0 in
  let consume net = Hashtbl.remove dangling net in
  let pick_fanin_level lvl =
    (* geometric bias toward the immediately preceding level *)
    let rec hop current =
      if current = 0 then 0
      else if Dcopt_util.Prng.float rng 1.0 < 0.6 then current
      else hop (current - 1)
    in
    hop (lvl - 1)
  in
  let pick_extra_fanin lvl =
    (* prefer re-using a dangling node so few nets end up unconsumed *)
    let from_dangling () =
      let candidates =
        Hashtbl.fold
          (fun net l acc -> if l < lvl then net :: acc else acc)
          dangling []
      in
      match candidates with
      | [] -> None
      | _ ->
        let arr = Array.of_list (List.sort compare candidates) in
        Some (Dcopt_util.Prng.choose rng arr)
    in
    if Dcopt_util.Prng.float rng 1.0 < 0.5 then
      match from_dangling () with
      | Some net -> net
      | None ->
        let l = pick_fanin_level lvl in
        Dcopt_util.Prng.choose rng pool.(l)
    else
      let l = pick_fanin_level lvl in
      Dcopt_util.Prng.choose rng pool.(l)
  in
  for lvl = 1 to depth do
    let level_gates =
      List.init counts.(lvl) (fun _ ->
          let kind = Dcopt_util.Prng.choose_weighted rng kind_weights in
          let target_arity =
            match kind with
            | Gate.Not | Gate.Buf -> 1
            | _ -> Dcopt_util.Prng.choose_weighted rng fanin_weights
          in
          let name = Printf.sprintf "g%d" !fresh_gate_id in
          incr fresh_gate_id;
          (* anchor fanin from level - 1 pins the gate's level exactly *)
          let anchor = Dcopt_util.Prng.choose rng pool.(lvl - 1) in
          consume anchor;
          let fanins = ref [ anchor ] in
          for _ = 2 to target_arity do
            let rec distinct tries =
              let cand = pick_extra_fanin lvl in
              if List.mem cand !fanins && tries < 8 then distinct (tries + 1)
              else cand
            in
            let extra = distinct 0 in
            consume extra;
            fanins := extra :: !fanins
          done;
          { gate_name = name; gate_kind = kind; gate_level = lvl;
            gate_fanins = !fanins })
    in
    gates_by_level.(lvl) <- level_gates;
    pool.(lvl) <-
      Array.of_list (List.map (fun g -> g.gate_name) level_gates);
    List.iter (fun g -> Hashtbl.replace dangling g.gate_name lvl) level_gates;
    all_gates := !all_gates @ [ level_gates ]
  done;
  let gates = List.concat !all_gates in
  (* Sink assignment: primary outputs then DFF data pins, consuming the
     deepest-level gates first (they have no other possible consumer), then
     remaining dangling gates deepest-first, then arbitrary gates. *)
  let deepest_first =
    List.stable_sort
      (fun a b -> compare b.gate_level a.gate_level)
      gates
  in
  let last_level = List.filter (fun g -> g.gate_level = depth) deepest_first in
  let sink_candidates =
    let dangling_gates =
      List.filter
        (fun g -> g.gate_level < depth && Hashtbl.mem dangling g.gate_name)
        deepest_first
    in
    let rest =
      List.filter
        (fun g -> g.gate_level < depth && not (Hashtbl.mem dangling g.gate_name))
        deepest_first
    in
    List.map (fun g -> g.gate_name) (last_level @ dangling_gates @ rest)
    @ Array.to_list sources
  in
  let take_sinks n =
    let rec go n acc = function
      | _ when n = 0 -> List.rev acc
      | [] ->
        (* tiny circuit: recycle candidates cyclically *)
        go n acc sink_candidates
      | net :: rest -> go (n - 1) (net :: acc) rest
    in
    go n [] sink_candidates
  in
  let sinks = take_sinks (p.primary_outputs + p.flip_flops) in
  let po_drivers, dff_drivers =
    let rec split i acc = function
      | rest when i = p.primary_outputs -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | net :: rest -> split (i + 1) (net :: acc) rest
    in
    split 0 [] sinks
  in
  List.iter consume po_drivers;
  List.iter consume dff_drivers;
  (* Absorb still-dangling nodes as extra fanins of AND/OR-class gates at
     strictly greater levels, preserving depth and acyclicity. *)
  let absorbers_above lvl =
    List.filter
      (fun g -> g.gate_level > lvl && absorbing g.gate_kind)
      gates
  in
  let dangling_list =
    Hashtbl.fold (fun net lvl acc -> (net, lvl) :: acc) dangling []
    |> List.sort compare
  in
  List.iter
    (fun (net, lvl) ->
      match absorbers_above lvl with
      | [] -> () (* leave dangling; validated circuits allow unused nets *)
      | candidates ->
        let arr = Array.of_list candidates in
        let g = Dcopt_util.Prng.choose rng arr in
        if not (List.mem net g.gate_fanins) then begin
          g.gate_fanins <- net :: g.gate_fanins;
          consume net
        end)
    dangling_list;
  let node_list =
    List.map (fun n -> (n, Gate.Input, [])) (Array.to_list pi_names)
    @ List.map2
        (fun n driver -> (n, Gate.Dff, [ driver ]))
        (Array.to_list ff_names) dff_drivers
    @ List.map
        (fun g -> (g.gate_name, g.gate_kind, List.rev g.gate_fanins))
        gates
  in
  Circuit.create ~name:p.profile_name ~nodes:node_list ~outputs:po_drivers

(* ------------------------------------------------------------------ *)
(* Scale generator: array-native combinational DAGs in O(n)            *)

type dag = {
  dag_name : string;
  dag_seed : int64;
  dag_gates : int;
  dag_inputs : int;
  dag_outputs : int;
  dag_depth : int;
  dag_max_fanin : int;
  dag_max_fanout : int;
}

let default_dag ?(name = "rdag") ?(seed = 1L) ~gates () =
  (* Structural statistics loosely matched to the ISCAS suite, scaled by
     gate count: sqrt-ish interface width, log-ish depth. *)
  let inputs = max 4 (int_of_float (Float.sqrt (float_of_int gates)) * 2) in
  let depth =
    max 4 (int_of_float (4.0 *. (Float.log (float_of_int (max 2 gates)) /. Float.log 2.0)) / 2)
  in
  {
    dag_name = name;
    dag_seed = seed;
    dag_gates = gates;
    dag_inputs = inputs;
    dag_outputs = max 2 (inputs / 2);
    dag_depth = depth;
    dag_max_fanin = 4;
    dag_max_fanout = 16;
  }

let validate_dag d =
  if d.dag_gates < 1 then Error "gates must be >= 1"
  else if d.dag_inputs < 1 then Error "inputs must be >= 1"
  else if d.dag_outputs < 1 then Error "outputs must be >= 1"
  else if d.dag_depth < 1 then Error "depth must be >= 1"
  else if d.dag_gates < d.dag_depth then Error "gates must be >= depth"
  else if d.dag_max_fanin < 2 then Error "max_fanin must be >= 2"
  else if d.dag_max_fanout < 2 then Error "max_fanout must be >= 2"
  else if d.dag_outputs > d.dag_gates then Error "outputs must be <= gates"
  else Ok ()

(* Every array is preallocated and every pick is an O(1) index draw, so
   the whole construction is O(n * max_fanin): node ids are assigned in
   level blocks (PIs first, then the level-1 gates, then level 2, ...),
   which makes "a uniform node of level l" one PRNG draw against the
   block bounds — no name lists, hash folds or per-level pools. *)
let random_dag d =
  (match validate_dag d with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Generator.random_dag: " ^ msg));
  let rng = Dcopt_util.Prng.create d.dag_seed in
  let depth = d.dag_depth in
  (* one gate per level pins the depth; the rest spread evenly over the
     non-final levels so the deepest level stays close to the PO count *)
  let counts = Array.make (depth + 1) 0 in
  for l = 1 to depth do
    counts.(l) <- 1
  done;
  let rem = d.dag_gates - depth in
  let spread = if depth >= 2 then depth - 1 else 1 in
  let base = rem / spread and extra = rem mod spread in
  for i = 0 to spread - 1 do
    counts.(1 + i) <- counts.(1 + i) + base + if i < extra then 1 else 0
  done;
  let n = d.dag_inputs + d.dag_gates in
  (* level block bounds: level l occupies [starts.(l), starts.(l+1)) *)
  let starts = Array.make (depth + 2) 0 in
  starts.(1) <- d.dag_inputs;
  for l = 1 to depth do
    starts.(l + 1) <- starts.(l) + counts.(l)
  done;
  let names = Array.make n "" in
  let kinds = Array.make n Gate.Input in
  let fanins = Array.make n [||] in
  for i = 0 to d.dag_inputs - 1 do
    names.(i) <- Printf.sprintf "pi%d" i
  done;
  let fanout_cnt = Array.make n 0 in
  (* uniform draw from level l, softly capped at max_fanout: a handful of
     re-draws before accepting an over-subscribed node keeps the fanout
     distribution bounded without ever failing *)
  let pick_in_level l =
    let lo = starts.(l) and width = starts.(l + 1) - starts.(l) in
    let rec go tries =
      let id = lo + Dcopt_util.Prng.int rng width in
      if fanout_cnt.(id) >= d.dag_max_fanout && tries < 8 then go (tries + 1)
      else id
    in
    go 0
  in
  (* geometric hop toward shallower levels for the non-anchor fanins *)
  let pick_fanin_level l =
    let rec hop current =
      if current = 0 then 0
      else if Dcopt_util.Prng.float rng 1.0 < 0.6 then current
      else hop (current - 1)
    in
    hop (l - 1)
  in
  let arity_weights =
    Array.to_list fanin_weights
    |> List.filter (fun (a, _) -> a <= d.dag_max_fanin)
    |> Array.of_list
  in
  for l = 1 to depth do
    for id = starts.(l) to starts.(l + 1) - 1 do
      let kind = Dcopt_util.Prng.choose_weighted rng kind_weights in
      let arity =
        match kind with
        | Gate.Not | Gate.Buf -> 1
        | _ -> Dcopt_util.Prng.choose_weighted rng arity_weights
      in
      let fi = Array.make arity 0 in
      (* anchor fanin from level - 1 pins the gate's level exactly *)
      let anchor = pick_in_level (l - 1) in
      fi.(0) <- anchor;
      fanout_cnt.(anchor) <- fanout_cnt.(anchor) + 1;
      for p = 1 to arity - 1 do
        let rec distinct tries =
          let cand = pick_in_level (pick_fanin_level l) in
          let dup = ref false in
          for q = 0 to p - 1 do
            if fi.(q) = cand then dup := true
          done;
          if !dup && tries < 8 then distinct (tries + 1) else cand
        in
        let f = distinct 0 in
        fi.(p) <- f;
        fanout_cnt.(f) <- fanout_cnt.(f) + 1
      done;
      names.(id) <- Printf.sprintf "g%d" (id - d.dag_inputs);
      kinds.(id) <- kind;
      fanins.(id) <- fi
    done
  done;
  (* Outputs: the deepest-level gates first (they have no gate consumer),
     then uniform distinct picks over the remaining gates. *)
  let is_po = Array.make n false in
  let output_ids = Array.make d.dag_outputs 0 in
  let next_po = ref 0 in
  let add_po id =
    is_po.(id) <- true;
    output_ids.(!next_po) <- id;
    incr next_po
  in
  let last_lo = starts.(depth) in
  for id = last_lo to min (starts.(depth + 1) - 1) (last_lo + d.dag_outputs - 1) do
    add_po id
  done;
  while !next_po < d.dag_outputs do
    let cand = d.dag_inputs + Dcopt_util.Prng.int rng d.dag_gates in
    if not is_po.(cand) then add_po cand
    else begin
      (* deterministic fallback: walk forward to the next non-output gate *)
      let id = ref cand in
      while is_po.(!id) do
        id := d.dag_inputs + ((!id - d.dag_inputs + 1) mod d.dag_gates)
      done;
      add_po !id
    end
  done;
  Circuit.create_direct ~name:d.dag_name ~names ~kinds ~fanins ~output_ids

