type node = {
  id : int;
  name : string;
  kind : Gate.kind;
  fanins : int array;
}

type t = {
  circuit_name : string;
  node_array : node array;
  by_name : (string, int) Hashtbl.t;
  input_ids : int array;
  output_ids : int array;
  dff_ids : int array;
  (* Fanout adjacency in compressed-sparse-row form: the consumers of node
     [i] are [fanout_edges.(fanout_off.(i)) .. fanout_edges.(fanout_off.(i+1) - 1)],
     in ascending consumer-id order with one entry per pin. [fanout_ids]
     holds per-node sub-array views of the same data so the historical
     [fanouts] accessor stays allocation-free per call. *)
  fanout_off : int array;
  fanout_edges : int array;
  fanout_ids : int array array;
  fanout_counts : int array;
  output_flags : bool array;
  order : int array;       (* combinational topological order *)
  order_rev : int array;   (* [order] reversed, precomputed once *)
  node_levels : int array;
}

exception Invalid of string

let invalidf fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

(* Two-pass counting construction of the fanout CSR: count pins per driver,
   prefix-sum into offsets, then fill edges with a per-driver cursor. No
   intermediate lists, two O(n + e) sweeps. Consumers land in ascending id
   order (the fill visits nodes by id), matching the order the historical
   list-accumulate-then-reverse build produced. *)
let build_fanout_csr node_array =
  let n = Array.length node_array in
  let off = Array.make (n + 1) 0 in
  Array.iter
    (fun nd -> Array.iter (fun f -> off.(f + 1) <- off.(f + 1) + 1) nd.fanins)
    node_array;
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + off.(i + 1)
  done;
  let edges = Array.make off.(n) 0 in
  let cursor = Array.make n 0 in
  Array.iter
    (fun nd ->
      Array.iter
        (fun f ->
          edges.(off.(f) + cursor.(f)) <- nd.id;
          cursor.(f) <- cursor.(f) + 1)
        nd.fanins)
    node_array;
  (off, edges)

(* Kahn's algorithm on the combinational edge set: edges into DFF data pins
   are cut, so registered feedback loops are legal while combinational loops
   are rejected. The FIFO makes the order deterministic. *)
let compute_topo_order node_array fanout_off fanout_edges =
  let n = Array.length node_array in
  let indegree = Array.make n 0 in
  Array.iter
    (fun nd ->
      match nd.kind with
      | Gate.Dff | Gate.Input -> ()
      | Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Not | Gate.Buf
      | Gate.Xor | Gate.Xnor -> indegree.(nd.id) <- Array.length nd.fanins)
    node_array;
  let queue = Queue.create () in
  Array.iter (fun nd -> if indegree.(nd.id) = 0 then Queue.add nd.id queue) node_array;
  let order = Array.make n (-1) in
  let filled = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order.(!filled) <- u;
    incr filled;
    for p = fanout_off.(u) to fanout_off.(u + 1) - 1 do
      let v = fanout_edges.(p) in
      match node_array.(v).kind with
      | Gate.Dff -> ()
      | _ ->
        indegree.(v) <- indegree.(v) - 1;
        if indegree.(v) = 0 then Queue.add v queue
    done
  done;
  if !filled <> n then invalidf "circuit contains a combinational cycle";
  order

let compute_levels node_array order =
  let levels = Array.make (Array.length node_array) 0 in
  Array.iter
    (fun id ->
      let nd = node_array.(id) in
      match nd.kind with
      | Gate.Input | Gate.Dff -> levels.(id) <- 0
      | _ ->
        let m = Array.fold_left (fun acc f -> max acc levels.(f)) 0 nd.fanins in
        levels.(id) <- m + 1)
    order;
  levels

(* Assemble the derived structure once the node list has passed the
   semantic scan; [compute_topo_order] can still raise [Invalid] on a
   combinational cycle, which the checked entry point turns into a
   problem report. *)
let build ~name ~by_name ~node_array ~output_ids =
  let n = Array.length node_array in
  let fanout_off, fanout_edges = build_fanout_csr node_array in
  let fanout_ids =
    Array.init n (fun i ->
        Array.sub fanout_edges fanout_off.(i) (fanout_off.(i + 1) - fanout_off.(i)))
  in
  let output_flags = Array.make n false in
  Array.iter (fun id -> output_flags.(id) <- true) output_ids;
  let fanout_counts =
    Array.init n (fun i ->
        fanout_off.(i + 1) - fanout_off.(i) + if output_flags.(i) then 1 else 0)
  in
  let count_kind kind_pred =
    Array.fold_left
      (fun acc nd -> if kind_pred nd.kind then acc + 1 else acc)
      0 node_array
  in
  let collect kind_pred =
    let ids = Array.make (count_kind kind_pred) 0 in
    let k = ref 0 in
    Array.iter
      (fun nd ->
        if kind_pred nd.kind then begin
          ids.(!k) <- nd.id;
          incr k
        end)
      node_array;
    ids
  in
  let input_ids = collect (fun k -> k = Gate.Input) in
  let dff_ids = collect (fun k -> k = Gate.Dff) in
  let order = compute_topo_order node_array fanout_off fanout_edges in
  let order_rev =
    let len = Array.length order in
    Array.init len (fun i -> order.(len - 1 - i))
  in
  let node_levels = compute_levels node_array order in
  {
    circuit_name = name;
    node_array;
    by_name;
    input_ids;
    output_ids;
    dff_ids;
    fanout_off;
    fanout_edges;
    fanout_ids;
    fanout_counts;
    output_flags;
    order;
    order_rev;
    node_levels;
  }

(* Collect every semantic problem instead of stopping at the first: a
   recovering front end (Bench_format.parse) wants the full list, while
   [create] keeps the historical raise-on-first-error contract on top. *)
let create_checked ~name ~nodes ~outputs =
  let problems = ref [] in
  let problemf fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let by_name = Hashtbl.create ((List.length nodes * 2) + 1) in
  List.iteri
    (fun i (net, _, _) ->
      if Hashtbl.mem by_name net then problemf "duplicate net name %S" net
      else Hashtbl.add by_name net i)
    nodes;
  (* undefined references resolve to a self-loop placeholder so the scan
     can keep going; any placeholder use is already a recorded error *)
  let resolve self context net =
    match Hashtbl.find_opt by_name net with
    | Some id -> id
    | None ->
      problemf "%s references undefined net %S" context net;
      self
  in
  let node_array =
    Array.of_list
      (List.mapi
         (fun i (net, kind, fanin_names) ->
           let fanins = Array.of_list (List.map (resolve i net) fanin_names) in
           if not (Gate.arity_ok kind (Array.length fanins)) then
             problemf "gate %S: %s cannot have %d fanin(s)" net
               (Gate.to_string kind) (Array.length fanins);
           { id = i; name = net; kind; fanins })
         nodes)
  in
  let n = Array.length node_array in
  if n = 0 then problemf "empty circuit";
  let output_problems =
    List.filter (fun net -> not (Hashtbl.mem by_name net)) outputs
  in
  List.iter
    (fun net -> problemf "outputs references undefined net %S" net)
    output_problems;
  match List.rev !problems with
  | _ :: _ as ps -> Error ps
  | [] -> (
    let output_ids =
      Array.of_list (List.map (fun net -> Hashtbl.find by_name net) outputs)
    in
    match build ~name ~by_name ~node_array ~output_ids with
    | t -> Ok t
    | exception Invalid msg -> Error [ msg ])

let create ~name ~nodes ~outputs =
  match create_checked ~name ~nodes ~outputs with
  | Ok t -> t
  | Error (p :: _) -> raise (Invalid p)
  | Error [] -> assert false

(* Array-native constructor for generated netlists: no per-node lists or
   tuples on the million-gate path. The caller supplies already-resolved
   fanin ids; arity and id-range problems still raise [Invalid] so a buggy
   generator cannot produce a silently malformed circuit. *)
let create_direct ~name ~names ~kinds ~fanins ~output_ids =
  let n = Array.length names in
  if Array.length kinds <> n || Array.length fanins <> n then
    invalidf "create_direct: column length mismatch";
  if n = 0 then invalidf "empty circuit";
  let by_name = Hashtbl.create ((n * 2) + 1) in
  for i = 0 to n - 1 do
    if Hashtbl.mem by_name names.(i) then
      invalidf "duplicate net name %S" names.(i)
    else Hashtbl.add by_name names.(i) i
  done;
  let node_array =
    Array.init n (fun i ->
        let fi = fanins.(i) in
        Array.iter
          (fun f ->
            if f < 0 || f >= n then
              invalidf "gate %S references out-of-range id %d" names.(i) f)
          fi;
        if not (Gate.arity_ok kinds.(i) (Array.length fi)) then
          invalidf "gate %S: %s cannot have %d fanin(s)" names.(i)
            (Gate.to_string kinds.(i)) (Array.length fi);
        { id = i; name = names.(i); kind = kinds.(i); fanins = fi })
  in
  Array.iter
    (fun id ->
      if id < 0 || id >= n then invalidf "output id %d out of range" id)
    output_ids;
  build ~name ~by_name ~node_array ~output_ids

let name t = t.circuit_name
let size t = Array.length t.node_array
let node t i = t.node_array.(i)
let nodes t = t.node_array

let find t net =
  match Hashtbl.find_opt t.by_name net with
  | Some id -> id
  | None -> raise Not_found

let inputs t = t.input_ids
let outputs t = t.output_ids
let dffs t = t.dff_ids
let fanouts t i = t.fanout_ids.(i)
let is_output t i = t.output_flags.(i)
let fanout_count t i = t.fanout_counts.(i)

let gate_count t =
  Array.fold_left
    (fun acc nd ->
      match nd.kind with
      | Gate.Input | Gate.Dff -> acc
      | Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Not | Gate.Buf
      | Gate.Xor | Gate.Xnor -> acc + 1)
    0 t.node_array

let is_combinational t = Array.length t.dff_ids = 0
let topo_order t = Array.copy t.order
let iter_topo t f = Array.iter f t.order
let iter_topo_rev t f = Array.iter f t.order_rev
let level t i = t.node_levels.(i)
let depth t = Array.fold_left max 0 t.node_levels

let unsafe_fanout_csr t = (t.fanout_off, t.fanout_edges)
let unsafe_levels t = t.node_levels
let unsafe_order t = t.order

let combinational_core t =
  if is_combinational t then t
  else
    let nodes =
      Array.to_list t.node_array
      |> List.map (fun nd ->
           match nd.kind with
           | Gate.Dff -> (nd.name, Gate.Input, [])
           | _ ->
             ( nd.name,
               nd.kind,
               Array.to_list nd.fanins
               |> List.map (fun f -> t.node_array.(f).name) ))
    in
    let pseudo_outputs =
      Array.to_list t.dff_ids
      |> List.map (fun id -> t.node_array.(t.node_array.(id).fanins.(0)).name)
    in
    let outputs =
      (Array.to_list t.output_ids |> List.map (fun id -> t.node_array.(id).name))
      @ pseudo_outputs
    in
    create ~name:t.circuit_name ~nodes ~outputs

let eval t input_values =
  if not (is_combinational t) then
    invalid_arg "Circuit.eval: circuit is sequential";
  if Array.length input_values <> Array.length t.input_ids then
    invalid_arg "Circuit.eval: input arity mismatch";
  let values = Array.make (size t) false in
  Array.iteri (fun i id -> values.(id) <- input_values.(i)) t.input_ids;
  Array.iter
    (fun id ->
      let nd = t.node_array.(id) in
      match nd.kind with
      | Gate.Input | Gate.Dff -> ()
      | kind ->
        let vs = Array.map (fun f -> values.(f)) nd.fanins in
        values.(id) <- Gate.eval kind vs)
    t.order;
  values

let output_values t input_values =
  let values = eval t input_values in
  Array.map (fun id -> values.(id)) t.output_ids
