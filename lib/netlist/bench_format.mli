(** ISCAS-89 `.bench` netlist reader and writer.

    The format: one declaration per line, [#] comments,
    [INPUT(n)] / [OUTPUT(n)] pin declarations and
    [n = KIND(a, b, ...)] gate definitions. *)

exception Parse_error of { line : int; message : string }

val parse :
  ?file:string ->
  name:string ->
  string ->
  (Circuit.t, Dcopt_util.Diag.t list) result
(** Recovering parser: scans the whole text and reports {e every} problem
    it finds — syntax errors, unknown gates, duplicate nets, undefined
    references, bad arity — each located by line number (codes
    [bench.syntax], [bench.gate], [bench.duplicate], [bench.undefined],
    [bench.arity]; line-less residuals such as combinational cycles come
    back as [bench.cycle]/[bench.semantic]/[bench.empty]). [?file] is
    stamped into the diagnostics' locations. [Error] is never empty. *)

val parse_string : name:string -> string -> Circuit.t
(** [parse_string ~name text] parses `.bench` [text] into a validated
    circuit called [name]. First-error wrapper over {!parse}: raises
    {!Parse_error} when the first error has a line and {!Circuit.Invalid}
    otherwise. *)

val parse_file : string -> Circuit.t
(** Reads a file; the circuit takes the file's basename (without extension)
    as its name. *)

val parse_file_checked : string -> (Circuit.t, Dcopt_util.Diag.t list) result
(** {!parse} on a file's contents (unreadable file = one [bench.io]
    diagnostic); the path is stamped into every diagnostic. *)

val to_string : Circuit.t -> string
(** Renders a circuit back to `.bench` text (header comment, INPUT/OUTPUT
    declarations, then gate definitions in id order). [parse_string] of the
    result reconstructs an identical circuit. *)

val write_file : string -> Circuit.t -> unit
