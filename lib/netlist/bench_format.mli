(** ISCAS-89 `.bench` netlist reader and writer.

    The format: one declaration per line, [#] comments,
    [INPUT(n)] / [OUTPUT(n)] pin declarations and
    [n = KIND(a, b, ...)] gate definitions. *)

exception Parse_error of { line : int; message : string }

val parse_string : name:string -> string -> Circuit.t
(** [parse_string ~name text] parses `.bench` [text] into a validated
    circuit called [name]. Raises {!Parse_error} on syntax errors and
    {!Circuit.Invalid} on semantic ones. *)

val parse_file : string -> Circuit.t
(** Reads a file; the circuit takes the file's basename (without extension)
    as its name. *)

val to_string : Circuit.t -> string
(** Renders a circuit back to `.bench` text (header comment, INPUT/OUTPUT
    declarations, then gate definitions in id order). [parse_string] of the
    result reconstructs an identical circuit. *)

val write_file : string -> Circuit.t -> unit
