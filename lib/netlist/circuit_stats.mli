(** Structural statistics of a circuit, for reports and for checking that
    generated stand-in benchmarks match their target profiles. *)

type t = {
  circuit : string;
  primary_inputs : int;
  primary_outputs : int;
  flip_flops : int;
  gates : int;            (** combinational gates *)
  depth : int;            (** logic depth of the combinational core *)
  total_fanout : int;     (** sum over gates of {!Circuit.fanout_count} *)
  max_fanout : int;
  mean_fanin : float;     (** over combinational gates *)
  kind_counts : (Gate.kind * int) list;  (** non-zero counts, fixed order *)
}

val compute : Circuit.t -> t

val to_string : t -> string
(** One-line summary, e.g.
    ["s298: 3 PI, 6 PO, 14 DFF, 119 gates, depth 9, ..."]. *)
