let inverter_chain ~stages =
  assert (stages >= 1);
  let nodes = ref [ ("a", Gate.Input, []) ] in
  let prev = ref "a" in
  for i = 1 to stages do
    let name = Printf.sprintf "inv%d" i in
    nodes := (name, Gate.Not, [ !prev ]) :: !nodes;
    prev := name
  done;
  Circuit.create
    ~name:(Printf.sprintf "inverter_chain%d" stages)
    ~nodes:(List.rev !nodes) ~outputs:[ !prev ]

(* One full adder: s = a xor b xor c; cout = ab + c(a xor b). *)
let full_adder_nodes i a b cin =
  let n fmt = Printf.sprintf fmt i in
  ( [ (n "fa%d_axb", Gate.Xor, [ a; b ]);
      (n "s%d", Gate.Xor, [ n "fa%d_axb"; cin ]);
      (n "fa%d_ab", Gate.And, [ a; b ]);
      (n "fa%d_cx", Gate.And, [ cin; n "fa%d_axb" ]);
      (n "fa%d_cout", Gate.Or, [ n "fa%d_ab"; n "fa%d_cx" ]) ],
    n "s%d",
    n "fa%d_cout" )

let ripple_carry_adder ~bits =
  assert (bits >= 1);
  let input name = (name, Gate.Input, []) in
  let inputs =
    List.concat
      (List.init bits (fun i ->
           [ input (Printf.sprintf "a%d" i); input (Printf.sprintf "b%d" i) ]))
    @ [ input "cin" ]
  in
  let rec build i carry acc sums =
    if i = bits then (List.rev acc, List.rev sums, carry)
    else
      let nodes, s, cout =
        full_adder_nodes i (Printf.sprintf "a%d" i) (Printf.sprintf "b%d" i)
          carry
      in
      build (i + 1) cout (List.rev_append nodes acc) (s :: sums)
  in
  let gate_nodes, sums, cout = build 0 "cin" [] [] in
  Circuit.create
    ~name:(Printf.sprintf "rca%d" bits)
    ~nodes:(inputs @ gate_nodes)
    ~outputs:(sums @ [ cout ])

let parity_tree ~leaves =
  assert (leaves >= 2);
  let inputs = List.init leaves (Printf.sprintf "x%d") in
  let nodes = ref (List.map (fun n -> (n, Gate.Input, [])) inputs) in
  let fresh = ref 0 in
  let rec reduce = function
    | [] -> assert false
    | [ last ] -> last
    | layer ->
      let rec pair acc = function
        | [] -> List.rev acc
        | [ odd ] -> List.rev (odd :: acc)
        | a :: b :: rest ->
          let name = Printf.sprintf "xo%d" !fresh in
          incr fresh;
          nodes := (name, Gate.Xor, [ a; b ]) :: !nodes;
          pair (name :: acc) rest
      in
      reduce (pair [] layer)
  in
  let root = reduce inputs in
  let rename (n, k, f) = if n = root then ("parity", k, f) else (n, k, f) in
  let fix_ref (n, k, f) = (n, k, List.map (fun x -> if x = root then "parity" else x) f) in
  let renamed = List.rev_map (fun nd -> fix_ref (rename nd)) !nodes in
  Circuit.create
    ~name:(Printf.sprintf "parity%d" leaves)
    ~nodes:renamed ~outputs:[ "parity" ]

let mux_tree ~select_bits =
  assert (select_bits >= 1 && select_bits <= 10);
  let data_count = 1 lsl select_bits in
  let inputs =
    List.init data_count (fun i -> (Printf.sprintf "d%d" i, Gate.Input, []))
    @ List.init select_bits (fun i -> (Printf.sprintf "s%d" i, Gate.Input, []))
  in
  let nodes = ref [] in
  let fresh = ref 0 in
  let add kind fanins =
    let name = Printf.sprintf "m%d" !fresh in
    incr fresh;
    nodes := (name, kind, fanins) :: !nodes;
    name
  in
  let sel_inv =
    Array.init select_bits (fun i -> add Gate.Not [ Printf.sprintf "s%d" i ])
  in
  (* Level-by-level 2:1 muxes: level k selects on bit k. *)
  let rec build level wires =
    match wires with
    | [ only ] -> only
    | _ ->
      let s = Printf.sprintf "s%d" level and sbar = sel_inv.(level) in
      let rec pair acc = function
        | [] -> List.rev acc
        | [ odd ] -> List.rev (odd :: acc)
        | a :: b :: rest ->
          let lo = add Gate.And [ a; sbar ] in
          let hi = add Gate.And [ b; s ] in
          let y = add Gate.Or [ lo; hi ] in
          pair (y :: acc) rest
      in
      build (level + 1) (pair [] wires)
  in
  let root = build 0 (List.init data_count (Printf.sprintf "d%d")) in
  let all_nodes =
    inputs
    @ (List.rev !nodes
      |> List.map (fun (n, k, f) ->
             ((if n = root then "y" else n), k,
              List.map (fun x -> if x = root then "y" else x) f)))
  in
  Circuit.create
    ~name:(Printf.sprintf "mux%d" data_count)
    ~nodes:all_nodes ~outputs:[ "y" ]

let decoder ~bits =
  assert (bits >= 1 && bits <= 10);
  let inputs = List.init bits (fun i -> (Printf.sprintf "s%d" i, Gate.Input, [])) in
  let invs =
    List.init bits (fun i ->
        (Printf.sprintf "sb%d" i, Gate.Not, [ Printf.sprintf "s%d" i ]))
  in
  let terms =
    List.init (1 lsl bits) (fun code ->
        let fanins =
          List.init bits (fun b ->
              if (code lsr b) land 1 = 1 then Printf.sprintf "s%d" b
              else Printf.sprintf "sb%d" b)
        in
        let fanins = if bits = 1 then fanins @ fanins else fanins in
        (Printf.sprintf "o%d" code, Gate.And, fanins))
  in
  Circuit.create
    ~name:(Printf.sprintf "dec%d" bits)
    ~nodes:(inputs @ invs @ terms)
    ~outputs:(List.init (1 lsl bits) (Printf.sprintf "o%d"))

let and_or_ladder ~rungs =
  assert (rungs >= 1);
  let inputs =
    ("seed", Gate.Input, [])
    :: List.init rungs (fun i -> (Printf.sprintf "in%d" i, Gate.Input, []))
  in
  let rec build i prev acc =
    if i = rungs then (List.rev acc, prev)
    else
      let kind = if i mod 2 = 0 then Gate.And else Gate.Or in
      let name = Printf.sprintf "r%d" i in
      build (i + 1) name ((name, kind, [ prev; Printf.sprintf "in%d" i ]) :: acc)
  in
  let rung_nodes, last = build 0 "seed" [] in
  Circuit.create
    ~name:(Printf.sprintf "ladder%d" rungs)
    ~nodes:(inputs @ rung_nodes)
    ~outputs:[ last ]

(* bits x bits array multiplier: partial products ANDed, then accumulated
   row by row with ripple-carry adders built from full_adder_nodes. *)
let array_multiplier ~bits =
  assert (bits >= 1 && bits <= 8);
  let inputs =
    List.init bits (fun i -> (Printf.sprintf "a%d" i, Gate.Input, []))
    @ List.init bits (fun i -> (Printf.sprintf "b%d" i, Gate.Input, []))
  in
  let nodes = ref [] in
  let fresh = ref 0 in
  let add kind fanins =
    let name = Printf.sprintf "m%d" !fresh in
    incr fresh;
    nodes := (name, kind, fanins) :: !nodes;
    name
  in
  (* constant zero built as XOR(a0, a0)... avoid constants: structure the
     accumulation so no zero wire is needed by seeding the accumulator with
     the first partial-product row. *)
  let pp i j = add Gate.And [ Printf.sprintf "a%d" i; Printf.sprintf "b%d" j ] in
  (* acc holds the current partial sum, least significant bit first, already
     shifted so acc.(k) weighs 2^(row+k) *)
  let outputs = ref [] in
  let acc = ref (Array.init bits (fun i -> pp i 0)) in
  outputs := [ !acc.(0) ];
  for row = 1 to bits - 1 do
    let row_pp = Array.init bits (fun i -> pp i row) in
    (* add row_pp to acc shifted right by one (acc.(0) already emitted) *)
    let width = bits in
    let sums = Array.make width "" in
    let carry = ref "" in
    for k = 0 to width - 1 do
      let a = if k + 1 < Array.length !acc then !acc.(k + 1) else "" in
      let b = row_pp.(k) in
      if a = "" && !carry = "" then sums.(k) <- b
      else if a = "" then begin
        (* half add b + carry *)
        let s = add Gate.Xor [ b; !carry ] in
        let c = add Gate.And [ b; !carry ] in
        sums.(k) <- s;
        carry := c
      end
      else if !carry = "" then begin
        let s = add Gate.Xor [ a; b ] in
        let c = add Gate.And [ a; b ] in
        sums.(k) <- s;
        carry := c
      end
      else begin
        let axb = add Gate.Xor [ a; b ] in
        let s = add Gate.Xor [ axb; !carry ] in
        let c1 = add Gate.And [ a; b ] in
        let c2 = add Gate.And [ axb; !carry ] in
        let c = add Gate.Or [ c1; c2 ] in
        sums.(k) <- s;
        carry := c
      end
    done;
    let next =
      if !carry = "" then sums else Array.append sums [| !carry |]
    in
    acc := next;
    outputs := !acc.(0) :: !outputs
  done;
  let tail = Array.to_list !acc |> List.tl in
  let product = List.rev !outputs @ tail in
  (* a 1x1 multiplier has no carry chain: build an explicit constant-zero
     wire for the top product bit *)
  let product =
    if List.length product >= 2 * bits then product
    else begin
      let na0 = add Gate.Not [ "a0" ] in
      let zero = add Gate.And [ "a0"; na0 ] in
      product @ List.init (2 * bits - List.length product) (fun _ -> zero)
    end
  in
  let product = List.filteri (fun i _ -> i < 2 * bits) product in
  Circuit.create
    ~name:(Printf.sprintf "mult%d" bits)
    ~nodes:(inputs @ List.rev !nodes)
    ~outputs:product

let barrel_shifter ~bits =
  assert (bits >= 1 && bits <= 5);
  let n = 1 lsl bits in
  let inputs =
    List.init n (fun i -> (Printf.sprintf "d%d" i, Gate.Input, []))
    @ List.init bits (fun i -> (Printf.sprintf "s%d" i, Gate.Input, []))
  in
  let nodes = ref [] in
  let fresh = ref 0 in
  let add kind fanins =
    let name = Printf.sprintf "bs%d" !fresh in
    incr fresh;
    nodes := (name, kind, fanins) :: !nodes;
    name
  in
  let sel_inv =
    Array.init bits (fun i -> add Gate.Not [ Printf.sprintf "s%d" i ])
  in
  (* stage k shifts left by 2^k when s_k; vacated low positions fill with
     zero, realized as AND(d, NOT s) for lanes whose source falls off *)
  let rec stage k wires =
    if k = bits then wires
    else
      let shift = 1 lsl k in
      let s = Printf.sprintf "s%d" k and sbar = sel_inv.(k) in
      let next =
        Array.init n (fun i ->
            if i >= shift then
              let keep = add Gate.And [ wires.(i); sbar ] in
              let moved = add Gate.And [ wires.(i - shift); s ] in
              add Gate.Or [ keep; moved ]
            else
              (* the source lane would come from below 0: zero fill *)
              add Gate.And [ wires.(i); sbar ])
      in
      stage (k + 1) next
  in
  let out = stage 0 (Array.init n (Printf.sprintf "d%d")) in
  let out_nodes =
    List.init n (fun i -> (Printf.sprintf "y%d" i, Gate.Buf, [ out.(i) ]))
  in
  Circuit.create
    ~name:(Printf.sprintf "bshift%d" n)
    ~nodes:(inputs @ List.rev !nodes @ out_nodes)
    ~outputs:(List.init n (Printf.sprintf "y%d"))
