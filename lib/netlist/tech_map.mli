(** Structural decomposition to a bounded-fanin gate library.

    The paper's device models assume "simple multi-input gates"; real cell
    libraries bound the fanin (series stacks degrade quadratically). This
    pass rewrites a circuit so no gate exceeds a given fanin: wide
    AND/OR/NAND/NOR gates become balanced trees of narrower ones (with the
    inversion kept at the root), wide XOR/XNOR become cascades. The result
    is functionally equivalent (checked in the test suite with the BDD
    equivalence checker) and usually deeper but faster per stage. *)

val decompose : max_fanin:int -> Circuit.t -> Circuit.t
(** [decompose ~max_fanin c] returns an equivalent circuit whose every
    gate has at most [max_fanin] fanins ([>= 2]). Gates already within the
    bound are kept untouched (same names); synthesized gates get fresh
    [name__dN] names. Primary input/output names are preserved. DFFs pass
    through unchanged. *)

val max_gate_fanin : Circuit.t -> int
(** Largest fanin over the combinational gates (0 for gateless circuits). *)

val prune : Circuit.t -> Circuit.t
(** Removes logic with no path to any primary output or DFF data pin (the
    random-logic generator can leave such dead cones, and the optimizer
    would otherwise budget, size and power them). Inputs are always kept;
    the result is functionally identical on the surviving interface. *)
