module Tech = Dcopt_device.Tech
module Mosfet = Dcopt_device.Mosfet
module Delay = Dcopt_device.Delay

type waveform = { times : float array; voltages : float array }

let saturation_voltage tech ~vdd ~vt =
  let od = Mosfet.overdrive tech ~vgs:vdd ~vt in
  (* Sakurai-Newton: the saturation drain voltage shrinks with overdrive
     sublinearly; floor it at a few thermal voltages so the subthreshold
     regime keeps a smooth triode region. *)
  Float.max (3.0 *. tech.Tech.thermal_voltage) (0.5 *. od)

let drain_current tech ~vdd ~vt ~w ~stack ~vds =
  if vds <= 0.0 then 0.0
  else
    let i_sat = Mosfet.i_drive tech ~vdd ~vt *. w /. float_of_int stack in
    let vdsat = saturation_voltage tech ~vdd ~vt in
    let triode =
      if vds >= vdsat then 1.0
      else
        let x = vds /. vdsat in
        x *. (2.0 -. x)
    in
    let drain_factor = 1.0 -. exp (-.vds /. tech.Tech.thermal_voltage) in
    i_sat *. triode *. drain_factor

let simulate_discharge ?(steps_per_estimate = 400) tech ~vdd ~vt ~w ~stack
    ~fanin ~c_load =
  assert (c_load > 0.0 && vdd > 0.0 && w > 0.0 && stack >= 1 && fanin >= 1);
  let i_up = float_of_int fanin *. Mosfet.i_off tech ~vt *. w in
  let dv_dt v =
    (-.drain_current tech ~vdd ~vt ~w ~stack ~vds:v +. i_up) /. c_load
  in
  (* Step from a crude RC estimate; cap total steps so a stalled node
     terminates. *)
  let i_scale = Float.max 1e-18 (Mosfet.i_drive tech ~vdd ~vt *. w) in
  let t_estimate = c_load *. vdd /. i_scale in
  let dt = t_estimate /. float_of_int steps_per_estimate in
  let max_steps = steps_per_estimate * 200 in
  let times = ref [ 0.0 ] and voltages = ref [ vdd ] in
  let rec advance t v steps =
    if v <= 0.05 *. vdd || steps >= max_steps then ()
    else begin
      let k1 = dv_dt v in
      let k2 = dv_dt (v +. (0.5 *. dt *. k1)) in
      let k3 = dv_dt (v +. (0.5 *. dt *. k2)) in
      let k4 = dv_dt (v +. (dt *. k3)) in
      let v' = v +. (dt /. 6.0 *. (k1 +. (2.0 *. k2) +. (2.0 *. k3) +. k4)) in
      let v' = Float.max 0.0 v' in
      let t' = t +. dt in
      times := t' :: !times;
      voltages := v' :: !voltages;
      if v' < v -. 1e-12 || v' > 0.05 *. vdd then advance t' v' (steps + 1)
    end
  in
  advance 0.0 vdd 0;
  {
    times = Array.of_list (List.rev !times);
    voltages = Array.of_list (List.rev !voltages);
  }

let crossing_time waveform threshold =
  let n = Array.length waveform.times in
  let rec find i =
    if i >= n then infinity
    else if waveform.voltages.(i) <= threshold then
      if i = 0 then waveform.times.(0)
      else
        let t0 = waveform.times.(i - 1) and t1 = waveform.times.(i) in
        let v0 = waveform.voltages.(i - 1) and v1 = waveform.voltages.(i) in
        if v0 = v1 then t1
        else t0 +. ((v0 -. threshold) /. (v0 -. v1) *. (t1 -. t0))
    else find (i + 1)
  in
  find 0

let discharge_delay ?steps_per_estimate tech ~vdd ~vt ~w ~stack ~fanin ~c_load =
  let waveform =
    simulate_discharge ?steps_per_estimate tech ~vdd ~vt ~w ~stack ~fanin
      ~c_load
  in
  crossing_time waveform (0.5 *. vdd)

type comparison = { analytic : float; simulated : float; ratio : float }

let compare_switching tech ~vdd ~vt ~w ~stack ~fanin ~c_load =
  (* Express the external load through the Delay.load record so both sides
     charge exactly the same total capacitance. *)
  let load =
    {
      Delay.no_load with
      Delay.fanin_count = fanin;
      stack_depth = stack;
      cap_wire = c_load;
    }
  in
  let analytic = Delay.switching_delay tech ~vdd ~vt ~w load in
  let total_cap = Delay.output_capacitance tech ~w load in
  let simulated =
    discharge_delay tech ~vdd ~vt ~w ~stack ~fanin ~c_load:total_cap
  in
  { analytic; simulated; ratio = simulated /. analytic }
