(** Cycle-accurate simulation of sequential circuits.

    The paper assumes the activity of every primary input — including the
    state bits exposed when DFFs become pseudo-inputs — is "supplied",
    obtained "from activity profiling of the architecture in which the
    circuit is embedded". This module is that profiler: it runs the
    sequential circuit for many clock cycles against a random input
    process, tracks the actual state trajectory, and returns measured
    per-node signal probabilities and transition densities for the
    combinational core — state-bit statistics included, correlations and
    reachable-state structure respected. *)

type result = {
  core : Dcopt_netlist.Circuit.t;   (** the combinational core simulated *)
  probabilities : float array;      (** per core node id: fraction of
                                        cycles at logic 1 *)
  densities : float array;          (** per core node id: toggles/cycle *)
  cycles : int;                     (** measured cycles (after warm-up) *)
  state_bits : int;
}

val simulate :
  ?warmup:int ->        (* settle cycles discarded, default 64 *)
  ?seed:int64 ->        (* default 0xFACEL *)
  cycles:int ->
  input_probability:float ->
  input_density:float ->
  Dcopt_netlist.Circuit.t ->
  result
(** Simulates [cycles] clock cycles (plus [warmup]) of the given circuit
    (sequential or combinational). True primary inputs follow the Markov
    process with the requested stationary probability and toggle rate;
    flip-flops start at 0 and follow the logic. Node statistics use
    per-cycle zero-delay semantics (matching the energy model's activity
    convention). *)

val profile : result -> Dcopt_activity.Activity.profile
(** The measured statistics as an activity profile for {!result.core},
    directly usable by {!Dcopt_opt.Power_model.make_env}. *)
