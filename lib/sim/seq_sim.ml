module Circuit = Dcopt_netlist.Circuit
module Gate = Dcopt_netlist.Gate
module Prng = Dcopt_util.Prng

type result = {
  core : Circuit.t;
  probabilities : float array;
  densities : float array;
  cycles : int;
  state_bits : int;
}

let simulate ?(warmup = 64) ?(seed = 0xFACEL) ~cycles ~input_probability
    ~input_density circuit =
  if cycles < 1 then invalid_arg "Seq_sim.simulate: cycles < 1";
  if not (input_probability >= 0.0 && input_probability <= 1.0) then
    invalid_arg "Seq_sim.simulate: input_probability out of range";
  if not (input_density >= 0.0 && input_density <= 1.0) then
    invalid_arg "Seq_sim.simulate: input_density out of [0, 1]";
  let rng = Prng.create seed in
  let core = Circuit.combinational_core circuit in
  let n = Circuit.size core in
  (* Map each state bit (pseudo input of the core) to the pseudo output
     carrying its next value; true primary inputs are driven externally. *)
  let dff_next =
    Array.to_list (Circuit.dffs circuit)
    |> List.map (fun id ->
           let nd = Circuit.node circuit id in
           let d_pin = (Circuit.node circuit nd.Circuit.fanins.(0)).Circuit.name in
           (Circuit.find core nd.Circuit.name, Circuit.find core d_pin))
  in
  let state_input = Hashtbl.create 16 in
  List.iter (fun (input_id, d_id) -> Hashtbl.add state_input input_id d_id)
    dff_next;
  let core_inputs = Circuit.inputs core in
  let true_inputs =
    Array.to_list core_inputs
    |> List.filter (fun id -> not (Hashtbl.mem state_input id))
    |> Array.of_list
  in
  (* Markov input process matching probability and toggle rate. *)
  let p_up =
    if input_probability >= 1.0 then 0.0
    else input_density /. (2.0 *. (1.0 -. input_probability))
  in
  let p_down =
    if input_probability <= 0.0 then 0.0
    else input_density /. (2.0 *. input_probability)
  in
  let input_values = Array.make n false in
  Array.iter
    (fun id -> input_values.(id) <- Prng.float rng 1.0 < input_probability)
    true_inputs;
  (* state starts at all-zero (the conventional reset state) *)
  List.iter (fun (input_id, _) -> input_values.(input_id) <- false) dff_next;
  let ones = Array.make n 0 in
  let toggles = Array.make n 0 in
  let previous = ref None in
  let step measure =
    let vector =
      Array.map (fun id -> input_values.(id)) core_inputs
    in
    let values = Circuit.eval core vector in
    if measure then begin
      for id = 0 to n - 1 do
        if values.(id) then ones.(id) <- ones.(id) + 1
      done;
      match !previous with
      | Some prev ->
        for id = 0 to n - 1 do
          if values.(id) <> prev.(id) then toggles.(id) <- toggles.(id) + 1
        done
      | None -> ()
    end;
    (* keep the reference values across the warm-up boundary so the first
       measured cycle contributes its toggle too *)
    previous := Some (Array.copy values);
    (* advance the state and the input process *)
    List.iter
      (fun (input_id, d_id) -> input_values.(input_id) <- values.(d_id))
      dff_next;
    Array.iter
      (fun id ->
        let toggle_p = if input_values.(id) then p_down else p_up in
        if Prng.float rng 1.0 < Float.min 1.0 toggle_p then
          input_values.(id) <- not input_values.(id))
      true_inputs
  in
  for _ = 1 to warmup do
    step false
  done;
  for _ = 1 to cycles do
    step true
  done;
  let fcycles = float_of_int cycles in
  {
    core;
    probabilities = Array.map (fun c -> float_of_int c /. fcycles) ones;
    densities = Array.map (fun c -> float_of_int c /. fcycles) toggles;
    cycles;
    state_bits = List.length dff_next;
  }

let profile r =
  {
    Dcopt_activity.Activity.probabilities = Array.copy r.probabilities;
    densities = Array.copy r.densities;
  }
