(** Event-driven gate-level simulation with transport delays.

    Complements the analytic stack in two ways the paper's first-order
    machinery cannot:

    - {b timing validation}: the settle time of any input transition under
      per-gate delays is bounded by the STA critical delay, which the test
      suite asserts on random circuits and random vectors;
    - {b glitch-aware activity}: Najm's transition densities are zero-delay
      (one transition per cycle per sensitized node), while real networks
      glitch when reconvergent paths race. {!monte_carlo_activity} measures
      actual transition counts over random vector pairs, hazards included —
      an upper reference for the analytic densities.

    Transport-delay semantics: every input change re-evaluates the gate and
    schedules the (possibly glitchy) result after the gate's delay; pulses
    are not filtered. *)

type run = {
  values : bool array;       (** final node values, by id *)
  transitions : int array;   (** observed value changes per node (the
                                  initial input flip counts as one) *)
  settle_time : float;       (** time of the last value change, s *)
  events_processed : int;
}

val settle :
  Dcopt_netlist.Circuit.t ->
  delays:float array ->
  before:bool array ->
  after:bool array ->
  run
(** Simulates the input vector changing from [before] to [after] at t = 0,
    starting from the steady state of [before]. [delays] is per node id
    (inputs ignored); vectors are in {!Dcopt_netlist.Circuit.inputs} order.
    Requires a combinational circuit, positive delays on gates, and equal
    vector lengths. *)

type activity_estimate = {
  densities : float array;      (** mean transitions per node per cycle *)
  glitch_fraction : float;      (** share of gate transitions beyond the
                                    zero-delay count *)
  vectors_simulated : int;
}

val monte_carlo_activity :
  ?delays:float array ->        (* default: unit delay on every gate *)
  Dcopt_netlist.Circuit.t ->
  rng:Dcopt_util.Prng.t ->
  vectors:int ->
  input_probability:float ->
  input_density:float ->
  activity_estimate
(** Draws [vectors] consecutive input pairs — each input holds its value
    with probability [1 - input_density/...] matched so the input toggle
    rate equals [input_density] — and averages the observed transition
    counts. With the default unit delays the glitch structure reflects
    logic depth differences only. *)

val zero_delay_transitions :
  Dcopt_netlist.Circuit.t -> before:bool array -> after:bool array -> int array
(** Per-node 0/1 transition counts without timing (final-value changes
    only): the reference against which glitches are measured. *)
