(** Numerical transient simulation of a switching gate.

    Our stand-in for the paper's HSPICE validation (DESIGN.md,
    substitution 1): the output node of a gate is integrated as a nonlinear
    ODE [C dv/dt = -I_pull(v) + I_leak(v)] with RK4, where [I_pull] is a
    Sakurai-Newton current — saturation current from the same transregional
    model as {!Dcopt_device.Delay}, with the standard linear-region rolloff
    below the saturation drain voltage. Comparing the simulated 50%%
    crossing against the closed-form eq. A3 delay validates the analytic
    model across the operating space (super- and subthreshold). *)

type waveform = {
  times : float array;     (** s *)
  voltages : float array;  (** output node voltage, V *)
}

val drain_current :
  Dcopt_device.Tech.t ->
  vdd:float -> vt:float -> w:float -> stack:int -> vds:float -> float
(** Instantaneous pull current at output voltage [vds]: saturation value
    from {!Dcopt_device.Mosfet.i_drive} (stack-degraded), with the
    Sakurai-Newton triode rolloff [ (2 - x) x ] below the saturation drain
    voltage and the subthreshold [1 - exp(-vds/vT)] drain factor. *)

val simulate_discharge :
  ?steps_per_estimate:int ->
  Dcopt_device.Tech.t ->
  vdd:float -> vt:float -> w:float -> stack:int -> fanin:int ->
  c_load:float ->
  waveform
(** Full high-to-low output transition with the opposing network leaking
    [fanin * I_off * w] upward; starts at [vdd], ends below [0.05 vdd] or
    after a step cap. *)

val discharge_delay :
  ?steps_per_estimate:int ->
  Dcopt_device.Tech.t ->
  vdd:float -> vt:float -> w:float -> stack:int -> fanin:int ->
  c_load:float ->
  float
(** Simulated 50%% crossing time; [infinity] when the node never crosses
    (leakage balances drive). *)

type comparison = {
  analytic : float;   (** eq. A3 switching component, s *)
  simulated : float;  (** RK4 50%% crossing, s *)
  ratio : float;      (** simulated / analytic *)
}

val compare_switching :
  Dcopt_device.Tech.t ->
  vdd:float -> vt:float -> w:float -> stack:int -> fanin:int ->
  c_load:float ->
  comparison
(** Validation point: the analytic model is a first-order estimate, so the
    ratio should sit in a narrow band around 1 across operating points
    (asserted by the test suite). *)
