module Circuit = Dcopt_netlist.Circuit
module Gate = Dcopt_netlist.Gate
module Heap = Dcopt_util.Heap
module Metrics = Dcopt_obs.Metrics

let events_counter =
  Metrics.counter ~help:"events popped by the event-driven simulator"
    "sim.events_processed"

let vectors_counter =
  Metrics.counter ~help:"vector pairs settled by Monte-Carlo activity runs"
    "sim.vectors_simulated"

let glitch_counter =
  Metrics.counter
    ~help:"gate transitions beyond the zero-delay count (glitches)"
    "sim.glitch_transitions"

type run = {
  values : bool array;
  transitions : int array;
  settle_time : float;
  events_processed : int;
}

let check_vectors circuit before after =
  if not (Circuit.is_combinational circuit) then
    invalid_arg "Event_sim: circuit is sequential";
  let n_inputs = Array.length (Circuit.inputs circuit) in
  if Array.length before <> n_inputs || Array.length after <> n_inputs then
    invalid_arg "Event_sim: input vector arity mismatch"

let gate_output circuit values id =
  let nd = Circuit.node circuit id in
  Gate.eval nd.Circuit.kind (Array.map (fun f -> values.(f)) nd.Circuit.fanins)

(* A min-ordered event queue on top of the max-heap; sequence numbers
   break time ties deterministically. Events carry only (time, node): the
   node's output is recomputed from the *current* input values at fire
   time, so simultaneous input arrivals are absorbed instead of creating
   zero-width pulses, while genuinely staggered arrivals still glitch. *)
let settle circuit ~delays ~before ~after =
  check_vectors circuit before after;
  let n = Circuit.size circuit in
  if Array.length delays <> n then
    invalid_arg "Event_sim: delay array size mismatch";
  let values = Circuit.eval circuit before in
  let transitions = Array.make n 0 in
  let settle_time = ref 0.0 in
  let events_processed = ref 0 in
  let queue : (float * int) Heap.t = Heap.create () in
  let seq = ref 0 in
  let push time node =
    incr seq;
    Heap.push queue
      ~priority:(-.time -. (1e-18 *. float_of_int !seq))
      (time, node)
  in
  let schedule_fanouts time node =
    Array.iter
      (fun g ->
        let d = delays.(g) in
        if d < 0.0 then invalid_arg "Event_sim: negative gate delay";
        push (time +. d) g)
      (Circuit.fanouts circuit node)
  in
  (* t = 0: flip the inputs that change *)
  Array.iteri
    (fun i id ->
      if after.(i) <> before.(i) then begin
        values.(id) <- after.(i);
        transitions.(id) <- transitions.(id) + 1;
        schedule_fanouts 0.0 id
      end)
    (Circuit.inputs circuit);
  (* Delta-cycle semantics: all events sharing a timestamp are evaluated
     against the values committed strictly before that time, then their
     changes are committed together. This keeps simultaneous arrivals from
     producing artificial pulses while staggered arrivals still glitch. *)
  let same_time a b = Float.abs (a -. b) <= (1e-12 *. Float.max a b) +. 1e-21 in
  let rec drain () =
    match Heap.pop queue with
    | None -> ()
    | Some (_, (time, node)) ->
      incr events_processed;
      let batch = ref [ node ] in
      let rec gather () =
        match Heap.peek queue with
        | Some (_, (t, n)) when same_time t time ->
          ignore (Heap.pop queue);
          incr events_processed;
          if not (List.mem n !batch) then batch := n :: !batch;
          gather ()
        | Some _ | None -> ()
      in
      gather ();
      let updates =
        List.filter_map
          (fun n ->
            let v = gate_output circuit values n in
            if values.(n) <> v then Some (n, v) else None)
          !batch
      in
      List.iter
        (fun (n, v) ->
          values.(n) <- v;
          transitions.(n) <- transitions.(n) + 1;
          if time > !settle_time then settle_time := time;
          schedule_fanouts time n)
        updates;
      drain ()
  in
  drain ();
  Metrics.incr ~by:!events_processed events_counter;
  {
    values;
    transitions;
    settle_time = !settle_time;
    events_processed = !events_processed;
  }

let zero_delay_transitions circuit ~before ~after =
  check_vectors circuit before after;
  let v0 = Circuit.eval circuit before in
  let v1 = Circuit.eval circuit after in
  Array.init (Circuit.size circuit) (fun id -> if v0.(id) <> v1.(id) then 1 else 0)

type activity_estimate = {
  densities : float array;
  glitch_fraction : float;
  vectors_simulated : int;
}

let is_gate circuit id =
  match (Circuit.node circuit id).Circuit.kind with
  | Gate.Input -> false
  | _ -> true

let monte_carlo_activity ?delays circuit ~rng ~vectors ~input_probability
    ~input_density =
  if vectors < 1 then invalid_arg "Event_sim: vectors < 1";
  if not (input_probability >= 0.0 && input_probability <= 1.0) then
    invalid_arg "Event_sim: input_probability out of range";
  if not (input_density >= 0.0 && input_density <= 1.0) then
    invalid_arg "Event_sim: input_density out of [0, 1] for vector sampling";
  let n = Circuit.size circuit in
  let delays =
    match delays with
    | Some d -> d
    | None ->
      Array.init n (fun id -> if is_gate circuit id then 1.0 else 0.0)
  in
  let n_inputs = Array.length (Circuit.inputs circuit) in
  let totals = Array.make n 0.0 in
  let zero_delay_total = ref 0.0 and timed_total = ref 0.0 in
  let current =
    Array.init n_inputs (fun _ ->
        Dcopt_util.Prng.float rng 1.0 < input_probability)
  in
  (* Markov input process whose stationary 1-probability is
     [input_probability] and whose toggle rate per cycle is
     [input_density]: toggle probabilities p01/p10 solve both demands. *)
  let p_up =
    if input_probability >= 1.0 then 0.0
    else input_density /. (2.0 *. (1.0 -. input_probability))
  in
  let p_down =
    if input_probability <= 0.0 then 0.0
    else input_density /. (2.0 *. input_probability)
  in
  for _ = 1 to vectors do
    let next =
      Array.map
        (fun v ->
          let toggle_p = if v then p_down else p_up in
          if Dcopt_util.Prng.float rng 1.0 < Float.min 1.0 toggle_p then not v
          else v)
        current
    in
    let r = settle circuit ~delays ~before:current ~after:next in
    let zd = zero_delay_transitions circuit ~before:current ~after:next in
    Array.iteri
      (fun id t ->
        totals.(id) <- totals.(id) +. float_of_int t;
        if is_gate circuit id then begin
          timed_total := !timed_total +. float_of_int t;
          zero_delay_total := !zero_delay_total +. float_of_int zd.(id)
        end)
      r.transitions;
    Array.blit next 0 current 0 n_inputs
  done;
  let densities = Array.map (fun t -> t /. float_of_int vectors) totals in
  let glitch_fraction =
    if !timed_total <= 0.0 then 0.0
    else (!timed_total -. !zero_delay_total) /. !timed_total
  in
  Metrics.incr ~by:vectors vectors_counter;
  Metrics.incr
    ~by:(int_of_float (Float.max 0.0 (!timed_total -. !zero_delay_total)))
    glitch_counter;
  { densities; glitch_fraction; vectors_simulated = vectors }
