(** Reduced ordered binary decision diagrams with hash-consing.

    Used as the exact reference for signal-probability and
    transition-density computation (Najm's method, paper §4.1 ref [8]).
    Variables are dense integers [0 .. var_count-1]; the variable order is
    the integer order. All nodes live in a {!manager}; nodes from different
    managers must not be mixed. *)

type manager
type node

exception Too_large of int
(** Raised when the node table would exceed the manager's node limit —
    callers fall back to the first-order (local) activity method. *)

val manager : ?node_limit:int -> var_count:int -> unit -> manager
(** Fresh manager for [var_count >= 0] variables. [node_limit] (default
    1_000_000) bounds the unique table. *)

val var_count : manager -> int
val node_count : manager -> int
(** Live unique-table size (excluding the two terminals). *)

val bdd_true : manager -> node
val bdd_false : manager -> node
val of_bool : manager -> bool -> node
val var : manager -> int -> node
(** The literal x_i; requires [0 <= i < var_count]. *)

val bdd_not : manager -> node -> node
val bdd_and : manager -> node -> node -> node
val bdd_or : manager -> node -> node -> node
val bdd_xor : manager -> node -> node -> node
val bdd_xnor : manager -> node -> node -> node
val bdd_nand : manager -> node -> node -> node
val bdd_nor : manager -> node -> node -> node
val ite : manager -> node -> node -> node -> node
(** [ite m f g h] = if [f] then [g] else [h]. *)

val equal : node -> node -> bool
(** Structural equality, which by canonicity is semantic equivalence. *)

val is_true : manager -> node -> bool
val is_false : manager -> node -> bool

val restrict : manager -> node -> int -> bool -> node
(** Cofactor: [restrict m f i b] is f with x_i fixed to [b]. *)

val boolean_difference : manager -> node -> int -> node
(** [f|x_i=1 xor f|x_i=0]: true exactly when [f] is sensitive to x_i. *)

val support : manager -> node -> int list
(** Variables the function depends on, ascending. *)

val eval : manager -> node -> bool array -> bool
(** Evaluate under an assignment of all variables. *)

val probability : manager -> node -> float array -> float
(** [probability m f p] is Pr[f = 1] when variable [i] is independently 1
    with probability [p.(i)]. Linear in the DAG size via memoization. *)

val sat_count : manager -> node -> float
(** Number of satisfying assignments over all [var_count] variables. *)

val any_sat : manager -> node -> bool array option
(** Some satisfying assignment over all variables (unconstrained ones
    default to false), or [None] when the function is unsatisfiable. *)

val size : manager -> node -> int
(** Number of distinct internal nodes reachable from this root. *)
