(* Node ids are dense ints: 0 = false terminal, 1 = true terminal, >= 2
   internal. Canonicity invariants: low <> high for every internal node, and
   children have strictly larger variable indices (or are terminals), so
   structural equality of ids is semantic equivalence. The single recursive
   kernel is [ite]; every connective is defined through it. *)

type node = int

type manager = {
  vars : int;
  node_limit : int;
  mutable capacity : int;
  mutable next : int;
  mutable var_of : int array;
  mutable low_of : int array;
  mutable high_of : int array;
  unique : (int * int * int, int) Hashtbl.t;
  ite_cache : (int * int * int, int) Hashtbl.t;
}

exception Too_large of int

let terminal_var = max_int

let manager ?(node_limit = 1_000_000) ~var_count () =
  assert (var_count >= 0);
  let capacity = 1024 in
  let m =
    {
      vars = var_count;
      node_limit;
      capacity;
      next = 2;
      var_of = Array.make capacity terminal_var;
      low_of = Array.make capacity (-1);
      high_of = Array.make capacity (-1);
      unique = Hashtbl.create 1024;
      ite_cache = Hashtbl.create 1024;
    }
  in
  m

let var_count m = m.vars
let node_count m = m.next - 2
let bdd_false (_ : manager) : node = 0
let bdd_true (_ : manager) : node = 1
let of_bool m b = if b then bdd_true m else bdd_false m
let is_true _ n = n = 1
let is_false _ n = n = 0
let equal (a : node) (b : node) = a = b

let grow m =
  let capacity = m.capacity * 2 in
  let extend arr fill =
    let fresh = Array.make capacity fill in
    Array.blit arr 0 fresh 0 m.capacity;
    fresh
  in
  m.var_of <- extend m.var_of terminal_var;
  m.low_of <- extend m.low_of (-1);
  m.high_of <- extend m.high_of (-1);
  m.capacity <- capacity

let mk m v low high =
  if low = high then low
  else
    let key = (v, low, high) in
    match Hashtbl.find_opt m.unique key with
    | Some id -> id
    | None ->
      if m.next - 2 >= m.node_limit then raise (Too_large (m.next - 2));
      if m.next >= m.capacity then grow m;
      let id = m.next in
      m.next <- id + 1;
      m.var_of.(id) <- v;
      m.low_of.(id) <- low;
      m.high_of.(id) <- high;
      Hashtbl.add m.unique key id;
      id

let var m i =
  assert (i >= 0 && i < m.vars);
  mk m i 0 1

let top_var m n = if n < 2 then terminal_var else m.var_of.(n)

let cofactors m n v =
  if n < 2 || m.var_of.(n) <> v then (n, n) else (m.low_of.(n), m.high_of.(n))

let rec ite m f g h =
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else
    let key = (f, g, h) in
    match Hashtbl.find_opt m.ite_cache key with
    | Some r -> r
    | None ->
      let v = min (top_var m f) (min (top_var m g) (top_var m h)) in
      let f0, f1 = cofactors m f v in
      let g0, g1 = cofactors m g v in
      let h0, h1 = cofactors m h v in
      let low = ite m f0 g0 h0 in
      let high = ite m f1 g1 h1 in
      let r = mk m v low high in
      Hashtbl.add m.ite_cache key r;
      r

let bdd_not m f = ite m f 0 1
let bdd_and m f g = ite m f g 0
let bdd_or m f g = ite m f 1 g
let bdd_xor m f g = ite m f (bdd_not m g) g
let bdd_xnor m f g = ite m f g (bdd_not m g)
let bdd_nand m f g = bdd_not m (bdd_and m f g)
let bdd_nor m f g = bdd_not m (bdd_or m f g)

let restrict m f i b =
  let memo = Hashtbl.create 64 in
  let rec go f =
    if f < 2 then f
    else
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
        let v = m.var_of.(f) in
        let r =
          if v > i then f
          else if v = i then if b then m.high_of.(f) else m.low_of.(f)
          else mk m v (go m.low_of.(f)) (go m.high_of.(f))
        in
        Hashtbl.add memo f r;
        r
  in
  go f

let boolean_difference m f i =
  bdd_xor m (restrict m f i true) (restrict m f i false)

let support m f =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go f =
    if f >= 2 && not (Hashtbl.mem seen f) then begin
      Hashtbl.add seen f ();
      Hashtbl.replace vars m.var_of.(f) ();
      go m.low_of.(f);
      go m.high_of.(f)
    end
  in
  go f;
  Hashtbl.fold (fun v () acc -> v :: acc) vars [] |> List.sort compare

let eval m f assignment =
  assert (Array.length assignment = m.vars);
  let rec go f =
    if f = 0 then false
    else if f = 1 then true
    else if assignment.(m.var_of.(f)) then go m.high_of.(f)
    else go m.low_of.(f)
  in
  go f

let probability m f p =
  assert (Array.length p = m.vars);
  let memo = Hashtbl.create 64 in
  let rec go f =
    if f = 0 then 0.0
    else if f = 1 then 1.0
    else
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
        let pv = p.(m.var_of.(f)) in
        let r = (pv *. go m.high_of.(f)) +. ((1.0 -. pv) *. go m.low_of.(f)) in
        Hashtbl.add memo f r;
        r
  in
  go f

let sat_count m f =
  let half = Array.make m.vars 0.5 in
  probability m f half *. (2.0 ** float_of_int m.vars)

let any_sat m f =
  if f = 0 then None
  else begin
    let assignment = Array.make m.vars false in
    let rec walk f =
      if f = 1 then ()
      else begin
        let v = m.var_of.(f) in
        (* one branch must reach the true terminal: prefer high *)
        if m.high_of.(f) <> 0 then begin
          assignment.(v) <- true;
          walk m.high_of.(f)
        end
        else walk m.low_of.(f)
      end
    in
    walk f;
    Some assignment
  end

let size m f =
  let seen = Hashtbl.create 64 in
  let rec go f acc =
    if f < 2 || Hashtbl.mem seen f then acc
    else begin
      Hashtbl.add seen f ();
      go m.low_of.(f) (go m.high_of.(f) (acc + 1))
    end
  in
  go f 0
