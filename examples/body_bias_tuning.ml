(* Body-bias tuning: realizing the optimizer's threshold on silicon.

   Figure 1 of the paper shows its manufacturing route to arbitrary
   thresholds on an existing CMOS process: skip the threshold-adjust
   implant (leaving low-Vt "natural" devices) and statically reverse-bias
   the p-substrate and the n-well. This example runs the joint optimizer
   on a benchmark, then derives the substrate/n-well bias voltages that
   realize the returned threshold, and shows the leakage cost of the
   residual quantization if the bias generator only has coarse steps.

   Run with: dune exec examples/body_bias_tuning.exe *)

module Flow = Dcopt_core.Flow
module Solution = Dcopt_opt.Solution
module Body_bias = Dcopt_device.Body_bias
module Mosfet = Dcopt_device.Mosfet
module Tech = Dcopt_device.Tech

let () =
  let tech = Tech.default in
  let p = Flow.prepare (Dcopt_suite.Suite.find_exn "s386") in
  match (Dcopt_core.Optimizer.get "joint-grid").Dcopt_core.Optimizer.run
        (Dcopt_core.Scenario.of_prepared p) with
  | None -> print_endline "no feasible design"
  | Some sol ->
    let vt =
      match Solution.vt_values sol with v :: _ -> v | [] -> assert false
    in
    Printf.printf "optimizer result: Vdd = %.2f V, Vt = %.0f mV\n"
      (Solution.vdd sol) (vt *. 1000.0);
    (match Body_bias.bias_for_vt tech ~vt with
    | None ->
      Printf.printf "threshold unreachable by reverse bias (max %.0f mV)\n"
        (Body_bias.max_reachable_vt tech *. 1000.0)
    | Some vsb ->
      Printf.printf
        "realization (Fig. 1): natural Vt %.0f mV + %.2f V reverse bias on \
         p-substrate (NMOS) and Vdd + %.2f V on the n-well (PMOS)\n"
        (tech.Tech.vt_natural *. 1000.0) vsb vsb;
      (* Bias-generator quantization: what a 100 mV-step supply costs. *)
      let step = 0.1 in
      let quantized = Float.of_int (int_of_float (vsb /. step)) *. step in
      let vt_quantized = Body_bias.vt_of_bias tech ~vsb:quantized in
      let leak v = Mosfet.i_off tech ~vt:v in
      Printf.printf
        "with a %.0f mV bias DAC: bias %.1f V -> Vt %.0f mV, leakage %.2fx \
         the exact-bias value\n"
        (step *. 1000.0) quantized (vt_quantized *. 1000.0)
        (leak vt_quantized /. leak vt);
      (* Show the full bias->Vt->leakage map around the operating point. *)
      let table =
        Dcopt_util.Text_table.create
          ~headers:[ "Reverse bias (V)"; "Vt (mV)"; "I_off (A per w-unit)" ]
      in
      Array.iter
        (fun b ->
          let v = Body_bias.vt_of_bias tech ~vsb:b in
          Dcopt_util.Text_table.add_row table
            [
              Printf.sprintf "%.1f" b;
              Printf.sprintf "%.0f" (v *. 1000.0);
              Printf.sprintf "%.2e" (leak v);
            ])
        (Dcopt_util.Numeric.linspace ~lo:0.0 ~hi:2.0 ~n:11);
      print_endline "";
      Dcopt_util.Text_table.print table)
