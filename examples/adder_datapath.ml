(* Datapath scenario: a 16-bit ripple-carry adder at several clock targets.

   The paper's introduction motivates trading architectural slack for
   power: when a block has more cycle time than it needs, the joint
   optimizer converts the slack into aggressive supply/threshold scaling —
   all the way into subthreshold at the loosest targets. This example
   sweeps clock targets over one real datapath and prints the resulting
   operating points, reproducing the Fig. 2(b) effect on a structured
   (non-random) circuit.

   Run with: dune exec examples/adder_datapath.exe *)

module Flow = Dcopt_core.Flow
module Solution = Dcopt_opt.Solution
module Patterns = Dcopt_netlist.Patterns

let () =
  let adder = Patterns.ripple_carry_adder ~bits:16 in
  Printf.printf "circuit: %s\n\n"
    (Dcopt_netlist.Circuit_stats.to_string
       (Dcopt_netlist.Circuit_stats.compute adder));
  let table =
    Dcopt_util.Text_table.create
      ~headers:
        [ "Clock"; "Vdd (V)"; "Vt (mV)"; "Static"; "Dynamic"; "Total";
          "vs 400MHz" ]
  in
  let reference = ref None in
  List.iter
    (fun fc_mhz ->
      let config =
        { Flow.default_config with Flow.clock_frequency = fc_mhz *. 1e6 }
      in
      let p = Flow.prepare ~config adder in
      match (Dcopt_core.Optimizer.get "joint-grid").Dcopt_core.Optimizer.run
        (Dcopt_core.Scenario.of_prepared p) with
      | None ->
        Dcopt_util.Text_table.add_row table
          [ Printf.sprintf "%.0f MHz" fc_mhz; "-"; "-"; "-"; "-"; "-";
            "infeasible" ]
      | Some sol ->
        let energy = Solution.total_energy sol in
        if !reference = None then reference := Some energy;
        let ratio =
          match !reference with
          | Some r -> Printf.sprintf "%.1fx less" (r /. energy)
          | None -> "-"
        in
        Dcopt_util.Text_table.add_row table
          [
            Printf.sprintf "%.0f MHz" fc_mhz;
            Printf.sprintf "%.2f" (Solution.vdd sol);
            Printf.sprintf "%.0f"
              ((match Solution.vt_values sol with v :: _ -> v | [] -> nan)
              *. 1000.0);
            Dcopt_util.Si.format ~unit:"J" (Solution.static_energy sol);
            Dcopt_util.Si.format ~unit:"J" (Solution.dynamic_energy sol);
            Dcopt_util.Si.format ~unit:"J" energy;
            ratio;
          ])
    [ 400.0; 200.0; 100.0; 50.0; 25.0 ];
  Dcopt_util.Text_table.print table;
  print_endline
    "\nNote how the optimizer rides Vdd and Vt down as the clock relaxes:\n\
     energy per operation keeps falling until leakage integration over the\n\
     longer cycle balances the switching savings.";
