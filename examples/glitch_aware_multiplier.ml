(* Glitch-aware optimization of an array multiplier.

   Array multipliers are the classic glitch monsters: partial-product rows
   arrive at their adders at staggered times, so most internal transitions
   are hazards that zero-delay activity analysis (the paper's Najm
   propagation) never sees. This example optimizes the same multiplier
   twice — once under analytic densities, once under event-simulation
   measured densities — and shows how the energy ACCOUNTING changes even
   when the operating point barely moves.

   Run with: dune exec examples/glitch_aware_multiplier.exe *)

module Flow = Dcopt_core.Flow
module Solution = Dcopt_opt.Solution
module Patterns = Dcopt_netlist.Patterns
module Event_sim = Dcopt_sim.Event_sim
module Circuit = Dcopt_netlist.Circuit

let () =
  let multiplier = Patterns.array_multiplier ~bits:6 in
  Printf.printf "circuit: %s\n\n"
    (Dcopt_netlist.Circuit_stats.to_string
       (Dcopt_netlist.Circuit_stats.compute multiplier));

  (* measure the hazard structure first *)
  let est =
    Event_sim.monte_carlo_activity multiplier
      ~rng:(Dcopt_util.Prng.create 42L) ~vectors:2000 ~input_probability:0.5
      ~input_density:0.1
  in
  Printf.printf
    "event simulation: %.0f%% of internal transitions are hazards that\n\
     zero-delay analysis cannot see\n\n"
    (est.Event_sim.glitch_fraction *. 100.0);

  let optimize engine label =
    let config =
      { Flow.default_config with Flow.clock_frequency = 100e6; engine }
    in
    let p = Flow.prepare ~config multiplier in
    match (Dcopt_core.Optimizer.get "joint-grid").Dcopt_core.Optimizer.run
        (Dcopt_core.Scenario.of_prepared p) with
    | None -> Printf.printf "%-22s infeasible\n" label
    | Some sol ->
      Printf.printf
        "%-22s Vdd %.2f V, Vt %.0f mV, static %s, dynamic %s, total %s\n"
        label (Solution.vdd sol)
        ((match Solution.vt_values sol with v :: _ -> v | [] -> nan)
        *. 1000.0)
        (Dcopt_util.Si.format ~unit:"J" (Solution.static_energy sol))
        (Dcopt_util.Si.format ~unit:"J" (Solution.dynamic_energy sol))
        (Dcopt_util.Si.format ~unit:"J" (Solution.total_energy sol))
  in
  optimize Flow.First_order "analytic activity:";
  optimize
    (Flow.Monte_carlo { vectors = 2000; seed = 42L })
    "measured activity:";
  print_endline
    "\nThe measured profile redistributes switching energy toward the\n\
     glitch-heavy reduction rows; budgeting power from analytic densities\n\
     alone would misreport where the joules actually go."
