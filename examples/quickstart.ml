(* Quickstart: optimize one benchmark circuit end-to-end.

   Build a circuit (here: a suite benchmark), prepare the flow at a clock
   target, run the baseline and the joint optimizer, compare.

   Run with: dune exec examples/quickstart.exe *)

module Flow = Dcopt_core.Flow
module Solution = Dcopt_opt.Solution

let () =
  (* 1. Pick a circuit: a named suite benchmark, a parsed .bench file, or
     anything built with Dcopt_netlist.Circuit.create. *)
  let circuit = Dcopt_suite.Suite.find_exn "s298" in

  (* 2. Prepare: combinational core, activity profile, wire loads and
     Procedure-1 delay budgets at the clock target. *)
  let config =
    { Flow.default_config with Flow.clock_frequency = 300e6;
      input_density = 0.1 }
  in
  let prepared = Flow.prepare ~config circuit in

  (* 3. The conventional design: threshold pinned at 700 mV, only supply
     and widths tuned. *)
  let baseline =
    match (Dcopt_core.Optimizer.get "baseline").Dcopt_core.Optimizer.run
      (Dcopt_core.Scenario.of_prepared prepared) with
    | Some sol -> sol
    | None -> failwith "300 MHz is unreachable at Vt = 0.7 V"
  in
  print_endline (Flow.report prepared baseline);

  (* 4. The paper's contribution: joint (Vdd, Vt, widths) optimization. *)
  let joint =
    match
      (Dcopt_core.Optimizer.get "joint").Dcopt_core.Optimizer.run
        (Dcopt_core.Scenario.of_prepared prepared)
    with
    | Some sol -> sol
    | None -> failwith "joint optimization found no feasible design"
  in
  print_endline "";
  print_endline (Flow.report prepared joint);

  Printf.printf "\npower savings over the conventional design: %.1fx\n"
    (Solution.savings ~baseline joint)
