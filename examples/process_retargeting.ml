(* Process retargeting: choosing the threshold voltage of a future process.

   The paper's §1 points out that the optimization algorithms can guide
   process development: "In determining the threshold voltage for a process
   being developed for future applications, one may use the algorithms on
   existing benchmarks with predicted circuit timing parameters to find the
   most desirable threshold voltage."

   This example does exactly that: it sweeps candidate single-Vt process
   options, optimizes Vdd and widths for every suite benchmark at each
   candidate, and reports the geometric-mean energy — the process designer
   picks the minimum.

   Run with: dune exec examples/process_retargeting.exe *)

module Flow = Dcopt_core.Flow
module Solution = Dcopt_opt.Solution

let candidate_thresholds = [ 0.10; 0.15; 0.20; 0.30; 0.45; 0.60; 0.70 ]
let circuits = [ "s27"; "s298"; "s382"; "s400" ]

let () =
  Printf.printf
    "picking a process threshold for %s at 300 MHz\n\n"
    (String.concat ", " circuits);
  let table =
    Dcopt_util.Text_table.create
      ~headers:[ "Process Vt (mV)"; "Feasible circuits"; "Geomean energy" ]
  in
  let best = ref None in
  List.iter
    (fun vt ->
      let energies =
        List.filter_map
          (fun name ->
            let p = Flow.prepare (Dcopt_suite.Suite.find_exn name) in
            Flow.run_with_budgets ~name:"baseline" ~vt p (fun budgets ->
                Dcopt_opt.Baseline.optimize ~vt
                  ~m_steps:p.Flow.config.Flow.m_steps p.Flow.env ~budgets)
            |> Option.map Solution.total_energy)
          circuits
      in
      let feasible = List.length energies in
      let cell =
        if feasible = 0 then "-"
        else begin
          let g = Dcopt_util.Stats.geometric_mean (Array.of_list energies) in
          if feasible = List.length circuits then begin
            match !best with
            | Some (_, e) when e <= g -> ()
            | _ -> best := Some (vt, g)
          end;
          Dcopt_util.Si.format ~unit:"J" g
        end
      in
      Dcopt_util.Text_table.add_row table
        [
          Printf.sprintf "%.0f" (vt *. 1000.0);
          Printf.sprintf "%d/%d" feasible (List.length circuits);
          cell;
        ])
    candidate_thresholds;
  Dcopt_util.Text_table.print table;
  match !best with
  | Some (vt, g) ->
    Printf.printf
      "\nrecommended process threshold: %.0f mV (geomean %s per cycle)\n"
      (vt *. 1000.0)
      (Dcopt_util.Si.format ~unit:"J" g)
  | None -> print_endline "\nno threshold met the frequency on all circuits"
