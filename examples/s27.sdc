# Worked SDC-lite constraint file for the s27 benchmark — the shape the
# `minpower optimize --sdc` / batch `scenarios.sdc` front door expects.
# One command per line, `\` continues, `#` comments. Times are
# nanoseconds (the SDC convention); the reader converts to seconds.
#
# Try it:
#   dune exec bin/minpower.exe -- optimize s27 --sdc examples/s27.sdc \
#     --corners leaky,slow

# Two clocks. The core clock is the fastest one, so it defines the
# default cycle target (the CLI derives --fc from it); the interface
# clock captures the external handshake at half rate.
create_clock -period 3.3 -name clk_core [get_ports {G0 G1}]
create_clock -period 6.6 -name clk_io G2

# The downstream latch on the observable output steals 0.3 ns of the
# core cycle: G17 must settle by 3.0 ns, not 3.3.
set_output_delay 0.3 -clock clk_core [get_ports G17]

# External data arrives 0.4 ns after the clock edge, so paths from the
# interface pins start late.
set_input_delay 0.4 -clock clk_io \
  [get_ports {G2 G3}]

# A blanket bound on every register-to-output path. Looser than the
# core clock here, so it documents intent without tightening anything.
set_max_delay 5.0
