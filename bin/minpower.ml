(* minpower: command-line front end of the device-circuit power optimizer.

   Examples:
     minpower optimize s298
     minpower optimize path/to/netlist.bench --fc 200e6 --activity 0.3
     minpower baseline s382 --vt 0.7
     minpower compare s400
     minpower profile s298 --trace trace.json --metrics
     minpower stats s510
     minpower list *)

module Flow = Dcopt_core.Flow
module Optimizer = Dcopt_core.Optimizer
module Scenario = Dcopt_core.Scenario
module Sdc = Dcopt_timing.Sdc
module Constraints = Dcopt_timing.Constraints
module Diag = Dcopt_util.Diag
module Solution = Dcopt_opt.Solution
module Suite = Dcopt_suite.Suite
module Json = Dcopt_util.Json
module Service = Dcopt_service.Service
module Job = Dcopt_service.Job
module Store = Dcopt_service.Store
module Checkpoint = Dcopt_service.Checkpoint
module Circuit = Dcopt_netlist.Circuit
module Stats = Dcopt_netlist.Circuit_stats
module Span = Dcopt_obs.Span
module Metrics = Dcopt_obs.Metrics
module Telemetry = Dcopt_obs.Telemetry
module Clock = Dcopt_obs.Clock
module Si = Dcopt_util.Si
module Text_table = Dcopt_util.Text_table
open Cmdliner

(* Observability and runtime plumbing shared by every subcommand: the
   Logs reporter with -v/--verbosity, --trace FILE (enables span
   recording and writes a Chrome trace at exit), --metrics (prints the
   metrics registry at exit), --open-metrics FILE (writes the OpenMetrics
   exposition at exit), --events FILE / --events-level (JSONL event log
   with correlation IDs), --run-id (the chain's root) and --jobs (sizes
   the Par domain pool). *)

type obs = {
  trace : string option;
  metrics : bool;
  open_metrics : string option;
  jobs_flag : int option;  (** --jobs as given, for oversubscription checks *)
  worker_passthrough : string list;
      (** observability argv to forward to spawned fleet workers, so the
          whole fleet logs into one correlation chain *)
}

let obs_term =
  let trace_arg =
    let doc =
      "Record hierarchical spans of the run and write them as Chrome \
       trace-event JSON to $(docv) (open in chrome://tracing or Perfetto). \
       Spans from parallel workers appear on their own tid rows."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics_arg =
    let doc =
      "Print the global metrics registry (counters and histograms with \
       quantiles) when the command finishes."
    in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let open_metrics_arg =
    let doc =
      "Write the global metrics registry in OpenMetrics text exposition \
       format to $(docv) when the command finishes."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "open-metrics" ] ~docv:"FILE" ~doc)
  in
  let events_arg =
    let doc =
      "Append a structured JSONL event log to $(docv): one object per \
       event with monotonic timestamp, severity and the \
       run_id/batch_id/job_id correlation chain."
    in
    Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc)
  in
  let events_level_arg =
    let doc =
      "Minimum severity written to the event log: debug, info, warn or \
       error. At debug, optimizer iteration events are included."
    in
    let level =
      let parse s =
        match Dcopt_obs.Events.level_of_string s with
        | Some l -> Ok l
        | None ->
          Error
            (`Msg
               (Printf.sprintf
                  "unknown level %S (expected debug, info, warn or error)" s))
      in
      let print ppf l =
        Format.pp_print_string ppf (Dcopt_obs.Events.level_to_string l)
      in
      Arg.conv (parse, print)
    in
    Arg.(
      value
      & opt level Dcopt_obs.Events.Info
      & info [ "events-level" ] ~docv:"LEVEL" ~doc)
  in
  let run_id_arg =
    let doc =
      "Run identifier stamped on every event (the root of the correlation \
       chain). Defaults to a pid-and-start-time-derived id."
    in
    Arg.(value & opt (some string) None & info [ "run-id" ] ~docv:"ID" ~doc)
  in
  let jobs_arg =
    let doc =
      "Worker domains for the parallel optimizer sites (grid scans, \
       Monte-Carlo samples, annealing restarts, sweeps). Defaults to \
       $(b,DCOPT_JOBS), or 1 (fully sequential). Any value produces \
       bit-identical results; only the wall clock changes."
    in
    Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let setup level trace metrics open_metrics events events_level run_id jobs =
    Fmt_tty.setup_std_outputs ();
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level level;
    if trace <> None then Span.set_enabled true;
    (match jobs with
    | Some n when n >= 1 -> Dcopt_par.Par.set_jobs n
    | Some n -> Logs.warn (fun m -> m "--jobs %d ignored (must be >= 1)" n)
    | None -> ());
    let run_id =
      match run_id with
      | Some id -> id
      | None -> Printf.sprintf "run-%d-%Ld" (Unix.getpid ()) (Clock.now_ns ())
    in
    Dcopt_obs.Events.set_run_id run_id;
    (match events with
    | Some path -> Dcopt_obs.Events.open_file ~min_level:events_level path
    | None -> ());
    (* what a spawned fleet worker needs to join this run's correlation
       chain: same run id, same event log (O_APPEND keeps concurrent
       whole-line writers safe), same threshold *)
    let worker_passthrough =
      [ "--run-id"; run_id ]
      @ (match events with
        | Some path ->
          [
            "--events"; path;
            "--events-level";
            Dcopt_obs.Events.level_to_string events_level;
          ]
        | None -> [])
    in
    { trace; metrics; open_metrics; jobs_flag = jobs; worker_passthrough }
  in
  Term.(
    const setup $ Logs_cli.level () $ trace_arg $ metrics_arg
    $ open_metrics_arg $ events_arg $ events_level_arg $ run_id_arg $ jobs_arg)

let finish obs code =
  if obs.metrics then print_string (Metrics.render ());
  let code =
    match obs.open_metrics with
    | None -> code
    | Some path -> (
      try
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc (Metrics.render_openmetrics ()));
        Logs.app (fun m -> m "wrote OpenMetrics exposition to %s" path);
        code
      with Sys_error msg ->
        Logs.err (fun m -> m "cannot write OpenMetrics file: %s" msg);
        if code = 0 then 1 else code)
  in
  Dcopt_obs.Events.close ();
  match obs.trace with
  | None -> code
  | Some path -> (
    try
      Span.write_chrome path;
      Logs.app (fun m -> m "wrote Chrome trace to %s" path);
      code
    with Sys_error msg ->
      Logs.err (fun m -> m "cannot write trace: %s" msg);
      if code = 0 then 1 else code)

let load_circuit spec =
  if Sys.file_exists spec then
    match Dcopt_netlist.Bench_format.parse_file_checked spec with
    | Ok c -> Ok c
    | Error diags ->
      (* every problem in the file, one located line each, plus a roll-up *)
      Error
        (Dcopt_util.Diag.render diags
        ^ Printf.sprintf "%s: %s" spec (Dcopt_util.Diag.summary diags))
  else
    match Suite.find spec with
    | Ok c -> Ok c
    | Error msg -> Error (msg ^ " (try `minpower list`)")

let with_circuit spec f =
  match load_circuit spec with
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    1
  | Ok circuit -> f circuit

let circuit_arg =
  let doc =
    "Circuit to optimize: a suite name (see $(b,minpower list)) or a path \
     to an ISCAS-89 .bench file."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc)

let fc_arg =
  let doc = "Clock frequency in Hz." in
  Arg.(value & opt float 300e6 & info [ "fc"; "frequency" ] ~docv:"HZ" ~doc)

let cycle_target_arg =
  let doc =
    "Cycle-time target in seconds (an alternative to $(b,--fc); exactly      the scalar constraint $(b,--fc)'s reciprocal sets)."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "cycle-target" ] ~docv:"SECONDS" ~doc)

let sdc_arg =
  let doc =
    "SDC-lite constraint file: clock periods, per-endpoint      set_max_delay/set_min_delay, false paths and I/O delays. The      tightest clock period defines the clock frequency; conflicts with      $(b,--cycle-target)."
  in
  Arg.(value & opt (some file) None & info [ "sdc" ] ~docv:"FILE" ~doc)

let corners_arg =
  let doc =
    "Process corners to optimize across, comma-separated: presets      $(b,nominal) (1.0), $(b,slow) (1.1), $(b,leaky)/$(b,fast) (0.9) or      explicit $(i,name:factor) threshold multipliers. The first corner      books the energy objective; feasibility must hold at every corner."
  in
  Arg.(value & opt (some string) None & info [ "corners" ] ~docv:"SPEC" ~doc)

let activity_arg =
  let doc = "Transition density at every primary input (per cycle)." in
  Arg.(value & opt float 0.1 & info [ "activity" ] ~docv:"D" ~doc)

let probability_arg =
  let doc = "Signal probability at every primary input." in
  Arg.(value & opt float 0.5 & info [ "probability" ] ~docv:"P" ~doc)

let m_steps_arg =
  let doc = "Binary-search steps (the paper's M)." in
  Arg.(value & opt int 16 & info [ "m-steps" ] ~docv:"M" ~doc)

let exact_arg =
  let doc = "Use BDD-exact transition densities when the circuit is small \
             enough." in
  Arg.(value & flag & info [ "exact-activity" ] ~doc)

let grid_arg =
  let doc = "Use the grid-refine search instead of the paper's nested \
             binary search." in
  Arg.(value & flag & info [ "grid" ] ~doc)

let vt_arg =
  let doc = "Fixed threshold voltage for the baseline, in volts." in
  Arg.(value & opt float 0.7 & info [ "vt" ] ~docv:"V" ~doc)

let n_vt_arg =
  let doc = "Number of distinct threshold voltages (n_v)." in
  Arg.(value & opt int 1 & info [ "n-vt" ] ~docv:"N" ~doc)

let tech_arg =
  let doc = "Technology file (key = value format; see `minpower tech`)." in
  Arg.(value & opt (some file) None & info [ "tech" ] ~docv:"FILE" ~doc)

let load_tech = function
  | None -> Dcopt_device.Tech.default
  | Some path -> Dcopt_device.Tech_io.parse_file path

let config_of ?tech fc activity probability m_steps exact =
  {
    Flow.default_config with
    Flow.tech = load_tech tech;
    Flow.clock_frequency = fc;
    input_density = activity;
    input_probability = probability;
    m_steps;
    engine = (if exact then Flow.Exact_when_small else Flow.First_order);
  }

let with_prepared spec config f =
  with_circuit spec (fun circuit -> f (Flow.prepare ~config circuit))

(* Shared --json convention: commands that produce a solution can emit it
   as the versioned machine-readable document of Solution.to_json instead
   of the human report. *)
let json_arg =
  let doc =
    "Print results as JSON (the versioned schema of the service layer) \
     instead of the human-readable report."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let print_solution ?(json = false) p = function
  | Some sol ->
    if json then print_endline (Json.to_string_hum (Solution.to_json sol))
    else print_endline (Flow.report p sol);
    0
  | None ->
    if json then
      print_endline
        (Json.to_string_hum
           (Json.Obj [ ("feasible", Json.Bool false) ]))
    else
      Printf.printf
        "no feasible design at %.0f MHz: the cycle time is unreachable at \
         this corner\n"
        (p.Flow.config.Flow.clock_frequency /. 1e6);
    1

(* --sdc and --cycle-target both define the timing target; the combo is
   refused with a located diagnostic (the config.oversubscribe pattern)
   rather than silently letting one win. *)
let check_sdc_cycle_target sdc cycle_target =
  match (sdc, cycle_target) with
  | Some path, Some t ->
    Some
      (Diag.errorf ~file:"<command-line>" ~code:"config.conflict"
         "--sdc %s with --cycle-target %g: both set the timing target; \
          drop --cycle-target (the SDC clock period defines the cycle) or \
          drop --sdc"
         path t)
  | _ -> None

let optimize_cmd =
  let run spec fc cycle_target sdc corners_spec activity probability m_steps
      exact grid n_vt tech json obs =
    match check_sdc_cycle_target sdc cycle_target with
    | Some diag ->
      Printf.eprintf "%s\n" (Diag.to_string diag);
      finish obs 2
    | None -> (
      match cycle_target with
      | Some t when not (Float.is_finite t && t > 0.0) ->
        Printf.eprintf "%s\n"
          (Diag.to_string
             (Diag.errorf ~file:"<command-line>" ~code:"config.range"
                "--cycle-target %g: the cycle time must be positive and \
                 finite"
                t));
        finish obs 2
      | _ -> (
        match Option.map Scenario.corners_of_spec corners_spec with
        | Some (Error diags) ->
          List.iter
            (fun d -> Printf.eprintf "%s\n" (Diag.to_string d))
            diags;
          finish obs 2
        | corners_result ->
          let corners =
            match corners_result with Some (Ok ks) -> Some ks | _ -> None
          in
          finish obs
            (with_circuit spec (fun circuit ->
                 let constraints_result =
                   match sdc with
                   | None -> Ok None
                   | Some path -> (
                     match Sdc.parse_file_checked ~circuit path with
                     | Ok c -> Ok (Some c)
                     | Error diags -> Error (path, diags))
                 in
                 match constraints_result with
                 | Error (path, diags) ->
                   Printf.eprintf "%s%s: %s\n" (Diag.render diags) path
                     (Diag.summary diags);
                   2
                 | Ok constraints ->
                   let fc =
                     match (cycle_target, constraints) with
                     | Some t, _ -> 1.0 /. t
                     | None, Some c -> (
                       match Constraints.default_period c with
                       | Some period -> 1.0 /. period
                       | None -> fc)
                     | None, None -> fc
                   in
                   let config =
                     config_of ?tech fc activity probability m_steps exact
                   in
                   let p = Flow.prepare ~config ?constraints circuit in
                   let s =
                     match corners with
                     | None -> Scenario.of_prepared p
                     | Some ks -> Scenario.make ~corners:ks p
                   in
                   (* dispatch through the registry so the CLI exercises
                      the same descriptors as the batch service; --n-vt
                      composes the multi-vt engine with an explicit count *)
                   let sol =
                     if n_vt > 1 then
                       let pv = Scenario.prepared_view s in
                       Scenario.finalize s
                         (Flow.run_with_budgets ~name:"multi-vt" pv
                            (fun budgets ->
                              Dcopt_opt.Multi_vt.optimize
                                ~m_steps:pv.Flow.config.Flow.m_steps ~n_vt
                                pv.Flow.env ~budgets))
                     else
                       let name = if grid then "joint-grid" else "joint" in
                       (Optimizer.get name).Optimizer.run s
                   in
                   print_solution ~json p sol))))
  in
  let doc = "Jointly optimize Vdd, Vt and device widths (Procedure 2)." in
  Cmd.v
    (Cmd.info "optimize" ~doc)
    Term.(
      const run $ circuit_arg $ fc_arg $ cycle_target_arg $ sdc_arg
      $ corners_arg $ activity_arg $ probability_arg $ m_steps_arg
      $ exact_arg $ grid_arg $ n_vt_arg $ tech_arg $ json_arg $ obs_term)

(* the CLI baseline pins --vt, so it composes the engine with
   Flow.run_with_budgets instead of using the registry's default *)
let run_baseline_at ~vt p =
  Flow.run_with_budgets ~name:"baseline" ~vt p (fun budgets ->
      Dcopt_opt.Baseline.optimize ~vt ~m_steps:p.Flow.config.Flow.m_steps
        p.Flow.env ~budgets)

let baseline_cmd =
  let run spec fc activity probability m_steps exact vt json obs =
    let config = config_of fc activity probability m_steps exact in
    finish obs
      (with_prepared spec config (fun p ->
           print_solution ~json p (run_baseline_at ~vt p)))
  in
  let doc = "Optimize only Vdd and widths at a fixed threshold (Table 1)." in
  Cmd.v
    (Cmd.info "baseline" ~doc)
    Term.(
      const run $ circuit_arg $ fc_arg $ activity_arg $ probability_arg
      $ m_steps_arg $ exact_arg $ vt_arg $ json_arg $ obs_term)

let compare_cmd =
  let run spec fc activity probability m_steps exact vt json obs =
    let config = config_of fc activity probability m_steps exact in
    finish obs
      (with_prepared spec config (fun p ->
           let base = run_baseline_at ~vt p in
           let joint =
             (Optimizer.get "joint-grid").Optimizer.run
               (Scenario.of_prepared p)
           in
           match (base, joint) with
           | Some base, Some joint ->
             if json then
               print_endline
                 (Json.to_string_hum
                    (Json.Obj
                       [
                         ("baseline", Solution.to_json base);
                         ("joint", Solution.to_json joint);
                         ( "savings",
                           Json.Float (Solution.savings ~baseline:base joint)
                         );
                       ]))
             else begin
               print_endline (Flow.report p base);
               print_endline "";
               print_endline (Flow.report p joint);
               Printf.printf "\npower savings: %.1fx\n"
                 (Solution.savings ~baseline:base joint)
             end;
             0
           | None, _ ->
             print_endline "baseline infeasible at this threshold/frequency";
             1
           | _, None ->
             print_endline "joint optimization infeasible";
             1))
  in
  let doc = "Run baseline and joint optimization and report the savings." in
  Cmd.v
    (Cmd.info "compare" ~doc)
    Term.(
      const run $ circuit_arg $ fc_arg $ activity_arg $ probability_arg
      $ m_steps_arg $ exact_arg $ vt_arg $ json_arg $ obs_term)

(* profile: run one optimizer end-to-end with tracing forced on and print
   where the time and the iterations went. *)

let ns_pct part whole =
  if Int64.compare whole 0L <= 0 then 0.0
  else 100.0 *. Int64.to_float part /. Int64.to_float whole

let print_phase_breakdown ~wall_ns =
  let spans =
    List.sort
      (fun a b -> Int64.compare a.Span.start_ns b.Span.start_ns)
      (Span.spans ())
  in
  let table = Text_table.create ~headers:[ "Phase"; "Time"; "% of wall" ] in
  Text_table.set_align table [ Text_table.Left; Text_table.Right;
                               Text_table.Right ];
  List.iter
    (fun s ->
      Text_table.add_row table
        [
          String.make (2 * s.Span.depth) ' ' ^ s.Span.name;
          Si.format ~unit:"s" (Clock.ns_to_s s.Span.dur_ns);
          Printf.sprintf "%.1f%%" (ns_pct s.Span.dur_ns wall_ns);
        ])
    spans;
  let accounted = Span.top_level_total_ns () in
  Text_table.add_separator table;
  Text_table.add_row table
    [
      "total (top-level spans)";
      Si.format ~unit:"s" (Clock.ns_to_s accounted);
      Printf.sprintf "%.1f%%" (ns_pct accounted wall_ns);
    ];
  Text_table.print table;
  Printf.printf "spans account for %s of %s wall clock (%.1f%%)\n\n"
    (Si.format ~unit:"s" (Clock.ns_to_s accounted))
    (Si.format ~unit:"s" (Clock.ns_to_s wall_ns))
    (ns_pct accounted wall_ns)

let print_iteration_summary recorder =
  let its = Telemetry.iterations recorder in
  if Array.length its = 0 then
    print_endline "no optimizer iterations recorded\n"
  else begin
    let order = ref [] in
    let by_name : (string, Telemetry.iteration list ref) Hashtbl.t =
      Hashtbl.create 4
    in
    Array.iter
      (fun it ->
        let name = it.Telemetry.optimizer in
        (match Hashtbl.find_opt by_name name with
        | Some r -> r := it :: !r
        | None ->
          Hashtbl.add by_name name (ref [ it ]);
          order := name :: !order))
      its;
    let table =
      Text_table.create
        ~headers:
          [ "Optimizer"; "Trials"; "Feasible"; "Best energy"; "Best Vdd (V)";
            "Best Vt (mV)" ]
    in
    List.iter
      (fun name ->
        let its = List.rev !(Hashtbl.find by_name name) in
        let feasible = List.filter (fun it -> it.Telemetry.feasible) its in
        let best =
          List.fold_left
            (fun acc it ->
              match acc with
              | Some b when b.Telemetry.total_energy <= it.Telemetry.total_energy
                -> acc
              | _ -> Some it)
            None feasible
        in
        Text_table.add_row table
          [
            name;
            string_of_int (List.length its);
            string_of_int (List.length feasible);
            (match best with
            | Some b -> Si.format ~unit:"J" b.Telemetry.total_energy
            | None -> "-");
            (match best with
            | Some b -> Printf.sprintf "%.2f" b.Telemetry.vdd
            | None -> "-");
            (match best with
            | Some b -> Printf.sprintf "%.0f" (b.Telemetry.vt *. 1000.0)
            | None -> "-");
          ])
      (List.rev !order);
    Text_table.print table;
    print_newline ()
  end

let profile_cmd =
  let run spec fc activity probability m_steps exact optimizer tech obs =
    Span.set_enabled true;
    Span.reset ();
    let config = config_of ?tech fc activity probability m_steps exact in
    let t0 = Clock.now_ns () in
    finish obs
      (with_prepared spec config (fun p ->
           let recorder = Telemetry.recorder () in
           let observer =
             Telemetry.tee
               (Telemetry.record recorder)
               (Telemetry.tee (Telemetry.to_metrics ()) (Telemetry.to_events ()))
           in
           let sol =
             optimizer.Optimizer.run ~observer (Scenario.of_prepared p)
           in
           let wall_ns = Int64.sub (Clock.now_ns ()) t0 in
           print_phase_breakdown ~wall_ns;
           print_iteration_summary recorder;
           print_solution p sol))
  in
  let doc =
    "Run a circuit through the full flow with span tracing forced on and \
     print the phase time breakdown and optimizer convergence summary \
     (combine with $(b,--trace) and $(b,--metrics))."
  in
  let optimizer =
    (* resolved through the registry, so anything the batch service can
       run can also be profiled *)
    let parse name =
      match Optimizer.find name with
      | Some o -> Ok o
      | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown optimizer %S (known: %s)" name
                (String.concat ", " (Optimizer.names ()))))
    in
    let print ppf o = Format.pp_print_string ppf o.Optimizer.name in
    let doc =
      Printf.sprintf "Optimizer to profile: %s."
        (String.concat ", " (Optimizer.names ()))
    in
    Arg.(
      value
      & opt (conv (parse, print)) (Optimizer.get "joint")
      & info [ "optimizer" ] ~docv:"NAME" ~doc)
  in
  Cmd.v
    (Cmd.info "profile" ~doc)
    Term.(
      const run $ circuit_arg $ fc_arg $ activity_arg $ probability_arg
      $ m_steps_arg $ exact_arg $ optimizer $ tech_arg $ obs_term)

let stats_cmd =
  let run spec obs =
    finish obs
      (with_circuit spec (fun circuit ->
           print_endline (Stats.to_string (Stats.compute circuit));
           let core = Circuit.combinational_core circuit in
           print_endline ("core: " ^ Stats.to_string (Stats.compute core));
           0))
  in
  let doc = "Print structural statistics of a circuit." in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ circuit_arg $ obs_term)

let list_cmd =
  let run obs =
    List.iter
      (fun name ->
        let c = Suite.find_exn name in
        Printf.printf "%-6s %s\n" name (Stats.to_string (Stats.compute c)))
      Suite.names;
    finish obs 0
  in
  let doc = "List the built-in benchmark circuits." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ obs_term)

let body_bias_cmd =
  let run vt obs =
    let tech = Dcopt_device.Tech.default in
    (match Dcopt_device.Body_bias.bias_for_vt tech ~vt with
    | Some vsb ->
      Printf.printf
        "threshold %.0f mV from natural %.0f mV requires %.2f V reverse \
         body bias (substrate/n-well, Fig. 1 scheme)\n"
        (vt *. 1000.0)
        (tech.Dcopt_device.Tech.vt_natural *. 1000.0)
        vsb
    | None ->
      Printf.printf
        "threshold %.0f mV is not reachable by reverse body bias (natural \
         %.0f mV, max %.0f mV)\n"
        (vt *. 1000.0)
        (tech.Dcopt_device.Tech.vt_natural *. 1000.0)
        (Dcopt_device.Body_bias.max_reachable_vt tech *. 1000.0));
    finish obs 0
  in
  let doc = "Translate an optimizer threshold into a static body bias." in
  let vt =
    Arg.(
      required
      & pos 0 (some float) None
      & info [] ~docv:"VT" ~doc:"Target threshold, V.")
  in
  Cmd.v (Cmd.info "body-bias" ~doc) Term.(const run $ vt $ obs_term)

let dump_cmd =
  let run spec max_fanin obs =
    finish obs
      (with_circuit spec (fun circuit ->
           let circuit =
             match max_fanin with
             | Some k -> Dcopt_netlist.Tech_map.decompose ~max_fanin:k circuit
             | None -> circuit
           in
           print_string (Dcopt_netlist.Bench_format.to_string circuit);
           0))
  in
  let doc = "Write a circuit as ISCAS-89 .bench text to stdout." in
  let max_fanin =
    Arg.(
      value
      & opt (some int) None
      & info [ "decompose" ] ~docv:"K"
          ~doc:"Decompose to gates of at most $(docv) fanins first.")
  in
  Cmd.v
    (Cmd.info "dump" ~doc)
    Term.(const run $ circuit_arg $ max_fanin $ obs_term)

let generate_cmd =
  let module G = Dcopt_netlist.Generator in
  let run gates inputs outputs depth seed max_fanin max_fanout name out obs =
    finish obs
      (let d = G.default_dag ~name ~seed ~gates () in
       let d =
         {
           d with
           G.dag_inputs = Option.value inputs ~default:d.G.dag_inputs;
           G.dag_outputs = Option.value outputs ~default:d.G.dag_outputs;
           G.dag_depth = Option.value depth ~default:d.G.dag_depth;
           G.dag_max_fanin = Option.value max_fanin ~default:d.G.dag_max_fanin;
           G.dag_max_fanout =
             Option.value max_fanout ~default:d.G.dag_max_fanout;
         }
       in
       match G.validate_dag d with
       | Error msg ->
         Printf.eprintf "generate: %s\n" msg;
         1
       | Ok () ->
         let circuit = G.random_dag d in
         (match out with
         | None -> print_string (Dcopt_netlist.Bench_format.to_string circuit)
         | Some path ->
           Dcopt_netlist.Bench_format.write_file path circuit;
           Logs.app (fun m ->
               m "wrote %d-gate DAG (depth %d, seed %Ld) to %s" d.G.dag_gates
                 d.G.dag_depth d.G.dag_seed path));
         0)
  in
  let doc =
    "Generate a deterministic random logic DAG as ISCAS-89 .bench text. \
     Equal flag sets produce byte-identical netlists; unset interface \
     flags default to an ISCAS-like shape scaled to the gate count \
     (inputs ~ 2*sqrt(gates), depth ~ 2*log2(gates))."
  in
  let gates =
    Arg.(
      value & opt int 10_000
      & info [ "gates"; "n" ] ~docv:"N" ~doc:"Combinational gate count.")
  in
  let inputs =
    Arg.(
      value
      & opt (some int) None
      & info [ "inputs" ] ~docv:"N" ~doc:"Primary input count.")
  in
  let outputs =
    Arg.(
      value
      & opt (some int) None
      & info [ "outputs" ] ~docv:"N" ~doc:"Primary output count.")
  in
  let depth =
    Arg.(
      value
      & opt (some int) None
      & info [ "depth" ] ~docv:"D" ~doc:"Exact logic depth.")
  in
  let seed =
    Arg.(
      value & opt int64 1L
      & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed (64-bit).")
  in
  let max_fanin =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-fanin" ] ~docv:"K" ~doc:"Hard per-gate fanin bound.")
  in
  let max_fanout =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-fanout" ] ~docv:"K"
          ~doc:"Soft per-node fanout bound (re-draws, never fails).")
  in
  let name_arg =
    Arg.(
      value & opt string "rdag"
      & info [ "name" ] ~docv:"NAME" ~doc:"Circuit name in the .bench header.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(
      const run $ gates $ inputs $ outputs $ depth $ seed $ max_fanin
      $ max_fanout $ name_arg $ out $ obs_term)

let pareto_cmd =
  let run spec activity probability m_steps points fc_lo fc_hi obs =
    let frequencies =
      Dcopt_util.Numeric.log_interp_points ~lo:fc_lo ~hi:fc_hi ~n:points
    in
    finish obs
      (with_circuit spec (fun circuit ->
           let table =
             Text_table.create
               ~headers:
                 [ "Clock"; "Vdd (V)"; "Vt (mV)"; "Energy/cycle"; "Power";
                   "Energy*Delay" ]
           in
           Array.iter
             (fun fc ->
               let config = config_of fc activity probability m_steps false in
               let p = Flow.prepare ~config circuit in
               match
                 (Optimizer.get "joint-grid").Optimizer.run
                   (Scenario.of_prepared p)
               with
               | None ->
                 Text_table.add_row table
                   [ Printf.sprintf "%.0f MHz" (fc /. 1e6); "-"; "-"; "-";
                     "-"; "infeasible" ]
               | Some sol ->
                 let e = Solution.total_energy sol in
                 Text_table.add_row table
                   [
                     Printf.sprintf "%.0f MHz" (fc /. 1e6);
                     Printf.sprintf "%.2f" (Solution.vdd sol);
                     Printf.sprintf "%.0f"
                       ((match Solution.vt_values sol with
                        | v :: _ -> v
                        | [] -> nan)
                       *. 1000.0);
                     Si.format ~unit:"J" e;
                     Si.format ~unit:"W" (e *. fc);
                     Si.format ~unit:"Js" (e /. fc);
                   ])
             frequencies;
           Text_table.print table;
           0))
  in
  let doc = "Sweep the clock target and print the energy-performance \
             Pareto frontier of the joint optimizer." in
  let points =
    Arg.(value & opt int 6 & info [ "points" ] ~docv:"N" ~doc:"Sweep points.")
  in
  let fc_lo =
    Arg.(value & opt float 25e6 & info [ "fc-min" ] ~docv:"HZ" ~doc:"Lowest clock.")
  in
  let fc_hi =
    Arg.(value & opt float 400e6 & info [ "fc-max" ] ~docv:"HZ" ~doc:"Highest clock.")
  in
  Cmd.v
    (Cmd.info "pareto" ~doc)
    Term.(
      const run $ circuit_arg $ activity_arg $ probability_arg $ m_steps_arg
      $ points $ fc_lo $ fc_hi $ obs_term)

let characterize_cmd =
  let run vdd vt width obs =
    let tech = Dcopt_device.Tech.default in
    let cells =
      List.concat_map
        (fun (kind, fanin) ->
          [ Dcopt_device.Char_table.characterize tech ~kind ~fanin ~width
              ~vdd ~vt ])
        [ (Dcopt_netlist.Gate.Not, 1); (Dcopt_netlist.Gate.Nand, 2);
          (Dcopt_netlist.Gate.Nand, 3); (Dcopt_netlist.Gate.Nor, 2);
          (Dcopt_netlist.Gate.And, 2); (Dcopt_netlist.Gate.Or, 2);
          (Dcopt_netlist.Gate.Xor, 2) ]
    in
    print_string (Dcopt_device.Char_table.to_liberty cells);
    finish obs 0
  in
  let doc = "Characterize the standard gate set at an operating point and \
             print liberty-flavoured lookup tables." in
  let vdd =
    Arg.(value & opt float 1.0 & info [ "vdd" ] ~docv:"V" ~doc:"Supply voltage.")
  in
  let vt =
    Arg.(value & opt float 0.15 & info [ "vt" ] ~docv:"V" ~doc:"Threshold voltage.")
  in
  let width =
    Arg.(value & opt float 4.0 & info [ "width" ] ~docv:"W" ~doc:"Device width, w-units.")
  in
  Cmd.v
    (Cmd.info "characterize" ~doc)
    Term.(const run $ vdd $ vt $ width $ obs_term)

let spice_cmd =
  let run spec vdd vt optimize obs =
    finish obs
      (with_circuit spec (fun circuit ->
           let core = Circuit.combinational_core circuit in
           let tech = Dcopt_device.Tech.default in
           let widths =
             if not optimize then None
             else
               let p = Flow.prepare circuit in
               (Optimizer.get "joint-grid").Optimizer.run
                 (Scenario.of_prepared p)
               |> Option.map (fun sol ->
                      sol.Solution.design.Dcopt_opt.Power_model.widths)
           in
           print_string
             (Dcopt_device.Spice_export.deck ~vdd ~vt ?widths tech core);
           0))
  in
  let doc = "Expand the combinational core to transistors and print a \
             level-1 SPICE deck (sized from the optimizer with \
             $(b,--optimize))." in
  let vdd =
    Arg.(value & opt float 1.0 & info [ "vdd" ] ~docv:"V" ~doc:"Supply voltage.")
  in
  let vt =
    Arg.(value & opt float 0.15 & info [ "vt" ] ~docv:"V" ~doc:"Threshold voltage.")
  in
  let optimize =
    Arg.(value & flag & info [ "optimize" ] ~doc:"Size widths with the joint optimizer first.")
  in
  Cmd.v
    (Cmd.info "spice" ~doc)
    Term.(const run $ circuit_arg $ vdd $ vt $ optimize $ obs_term)

let equiv_cmd =
  let run spec_a spec_b obs =
    finish obs
      (match (load_circuit spec_a, load_circuit spec_b) with
      | Error msg, _ | _, Error msg ->
        Printf.eprintf "%s\n" msg;
        2
      | Ok a, Ok b -> (
        let core_a = Circuit.combinational_core a in
        let core_b = Circuit.combinational_core b in
        match Dcopt_activity.Equiv.check core_a core_b with
        | Dcopt_activity.Equiv.Equivalent ->
          print_endline "equivalent";
          0
        | Dcopt_activity.Equiv.Different { output_index; witness } ->
          Printf.printf "DIFFERENT at output %d; witness inputs:\n"
            output_index;
          Array.iteri
            (fun i id ->
              Printf.printf "  %s = %d\n"
                (Circuit.node core_a id).Circuit.name
                (if witness.(i) then 1 else 0))
            (Circuit.inputs core_a);
          1
        | Dcopt_activity.Equiv.Inconclusive reason ->
          Printf.printf "inconclusive: %s\n" reason;
          2))
  in
  let doc = "Check two circuits for combinational equivalence (BDD-based; \
             inputs matched by name, outputs by position)." in
  let a = Arg.(required & pos 0 (some string) None & info [] ~docv:"A" ~doc:"First circuit.") in
  let b = Arg.(required & pos 1 (some string) None & info [] ~docv:"B" ~doc:"Second circuit.") in
  Cmd.v (Cmd.info "equiv" ~doc) Term.(const run $ a $ b $ obs_term)

(* batch/serve: the JSONL front of Dcopt_service. A jobs file holds one
   job spec per line; unparsable lines become failure rows in place, so
   one bad spec never kills the batch. *)

let store_arg =
  let doc =
    "Directory of the content-addressed result store; solved and \
     infeasible outcomes are served from and persisted to it (created \
     when missing)."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let checkpoint_arg =
  let doc =
    "Directory of per-job crash-safe checkpoints (created when missing). \
     Completed jobs are recorded there the moment they finish; on SIGINT \
     or SIGTERM the batch prints the rows already answerable and exits, \
     and re-running the same batch with the same directory resumes — \
     skipping completed jobs and producing output byte-identical to an \
     uninterrupted run."
  in
  Arg.(
    value & opt (some string) None & info [ "checkpoint" ] ~docv:"DIR" ~doc)

let workers_arg =
  let doc =
    "Distribute the batch over $(docv) spawned worker processes (a \
     multi-process fleet with work stealing, backpressure and crash \
     recovery) instead of the in-process domain pool. Rows are \
     byte-identical at any worker count, including across worker \
     crashes. Mutually exclusive with $(b,--jobs) > 1: fleet \
     parallelism replaces the pool."
  in
  Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N" ~doc)

(* --workers N and --jobs M is oversubscription: N worker processes *and*
   M domains per process thrash one another on the same cores. The combo
   is refused with a located diagnostic rather than silently degrading. *)
let check_workers_jobs workers obs =
  match (workers, obs.jobs_flag) with
  | Some n, _ when n < 1 ->
    Some
      (Dcopt_util.Diag.errorf ~file:"<command-line>"
         ~code:"config.fleet_size" "--workers %d: a fleet needs at least 1 \
                                    worker" n)
  | Some n, Some m when m > 1 ->
    Some
      (Dcopt_util.Diag.errorf ~file:"<command-line>"
         ~code:"config.oversubscribe"
         "--workers %d with --jobs %d oversubscribes: fleet workers run \
          jobs=1 internally (fleet parallelism replaces the domain pool); \
          drop --jobs or use the in-process path without --workers"
         n m)
  | _ -> None

let listen_arg =
  let doc =
    "Fleet listen address: $(i,host:port) for TCP (port 0 binds an \
     ephemeral port) or a filesystem path for a unix-domain socket. \
     Defaults to a private unix socket. A TCP address lets external \
     workers ($(b,minpower worker --connect host:port)) join the fleet \
     from other machines."
  in
  Arg.(value & opt (some string) None & info [ "listen" ] ~docv:"ADDR" ~doc)

let fault_plan_arg =
  let doc =
    "Arm a deterministic fault-injection plan (also: $(b,DCOPT_FAULT_PLAN) \
     in the environment): semicolon-separated \
     $(i,[role/]site@occ:action[=arg]) entries, e.g. \
     $(b,w0/wire.send.result@2:drop;store.put@*:enospc). Spawned fleet \
     workers inherit the plan. For testing the degraded paths; see \
     DESIGN.md §14."
  in
  Arg.(value & opt (some string) None & info [ "fault-plan" ] ~docv:"PLAN" ~doc)

(* Arm a --fault-plan / DCOPT_FAULT_PLAN fault plan before any fleet or
   store activity. The flag wins over the environment; either way the
   plan is re-exported so spawned workers inherit it verbatim. Returns a
   located diagnostic on a malformed plan instead of arming nothing. *)
let arm_fault_plan flag =
  let spec =
    match flag with Some s -> Some s | None -> Sys.getenv_opt "DCOPT_FAULT_PLAN"
  in
  match spec with
  | None -> None
  | Some spec -> (
    match Dcopt_service.Faults.parse spec with
    | Ok plan ->
      Dcopt_service.Faults.arm plan;
      Unix.putenv "DCOPT_FAULT_PLAN" spec;
      None
    | Error msg ->
      Some
        (Dcopt_util.Diag.errorf ~file:"<command-line>" ~code:"config.fault_plan"
           "--fault-plan: %s" msg))

(* Parse --listen into a Wire.addr, refusing what Fleet.create would
   refuse but with a located diagnostic instead of an exception. *)
let parse_listen = function
  | None -> Ok None
  | Some s -> (
    match Dcopt_service.Wire.addr_of_string s with
    | Ok addr -> Ok (Some addr)
    | Error msg ->
      Error
        (Dcopt_util.Diag.errorf ~file:"<command-line>" ~code:"config.addr"
           "--listen %s: %s" s msg))

let fleet_of ~workers ?listen ~store_dir obs =
  let worker_args =
    (match store_dir with Some d -> [ "--store"; d ] | None -> [])
    @ obs.worker_passthrough
  in
  Dcopt_service.Fleet.create
    (Dcopt_service.Fleet.options ~workers ~worker_args ?listen ())

let read_lines ic =
  let rec go acc n =
    match input_line ic with
    | line -> go ((n, line) :: acc) (n + 1)
    | exception End_of_file -> List.rev acc
  in
  go [] 1

let batch_cmd =
  let run jobs_path store checkpoint workers listen fault_plan table
      require_cached obs =
    let early_diag =
      match check_workers_jobs workers obs with
      | Some d -> Some d
      | None -> (
        match arm_fault_plan fault_plan with
        | Some d -> Some d
        | None -> (
          match parse_listen listen with Error d -> Some d | Ok _ -> None))
    in
    match early_diag with
    | Some diag ->
      Printf.eprintf "%s\n" (Dcopt_util.Diag.to_string diag);
      finish obs 2
    | None ->
    let listen = Result.get_ok (parse_listen listen) in
    let store_dir = store in
    let lines =
      if jobs_path = "-" then read_lines stdin
      else begin
        let ic = open_in jobs_path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> read_lines ic)
      end
    in
    let entries =
      List.filter_map
        (fun (line_no, line) ->
          if String.trim line = "" then None
          else
            match Result.bind (Json.of_string line) Job.of_json with
            | Ok job -> Some (`Job job)
            | Error msg ->
              Some
                (`Row
                   {
                     Job.job_id = Printf.sprintf "line%d" line_no;
                     row_circuit = "";
                     row_optimizer = "";
                     digest = "";
                     cache_hit = false;
                     outcome =
                       Job.Failed
                         {
                           error =
                             Printf.sprintf "%s:%d: %s" jobs_path line_no msg;
                           attempts = 0;
                         };
                   }))
        lines
    in
    let store = Option.map Store.open_ store in
    let checkpoint = Option.map Checkpoint.open_ checkpoint in
    let jobs =
      List.filter_map (function `Job j -> Some j | `Row _ -> None) entries
    in
    (* With a checkpoint, an interrupt is a clean partial exit: flush what
       is already answerable as JSONL, point at the resume command, and
       die with the conventional 128+signal status. Everything the signal
       handler reads is on disk (worker writes are atomic), so this is
       safe whenever the signal lands. *)
    (match checkpoint with
    | None -> ()
    | Some ck ->
      let interrupted signal =
        let rows = Service.partial_rows ?store ~checkpoint:ck jobs in
        List.iter
          (fun row -> print_endline (Json.to_string (Job.row_to_json row)))
          rows;
        flush stdout;
        Printf.eprintf
          "interrupted: %d of %d jobs answerable; resume with --checkpoint \
           %s\n\
           %!"
          (List.length rows) (List.length jobs) (Checkpoint.dir ck);
        Stdlib.exit (if signal = Sys.sigterm then 143 else 130)
      in
      List.iter
        (fun s -> Sys.set_signal s (Sys.Signal_handle interrupted))
        [ Sys.sigint; Sys.sigterm ]);
    let rows =
      match workers with
      | None -> Service.run_batch ?store ?checkpoint jobs
      | Some n ->
        let fleet = fleet_of ~workers:n ?listen ~store_dir obs in
        Fun.protect
          ~finally:(fun () -> Dcopt_service.Fleet.shutdown fleet)
          (fun () ->
            Dcopt_service.Fleet.run_batch fleet ?store ?checkpoint jobs)
    in
    let rec merge entries rows =
      match (entries, rows) with
      | [], _ -> []
      | `Row r :: tl, rows -> r :: merge tl rows
      | `Job _ :: tl, r :: rows -> r :: merge tl rows
      | `Job _ :: _, [] -> assert false
    in
    let rows = merge entries rows in
    if table then print_string (Job.render_rows rows)
    else
      List.iter
        (fun row -> print_endline (Json.to_string (Job.row_to_json row)))
        rows;
    let any_failed =
      List.exists
        (fun r -> match r.Job.outcome with Job.Failed _ -> true | _ -> false)
        rows
    in
    let any_miss = List.exists (fun r -> not r.Job.cache_hit) rows in
    finish obs
      (if require_cached && any_miss then 3 else if any_failed then 1 else 0)
  in
  let doc =
    "Run a batch of optimization jobs from a JSONL file (one job spec \
     per line, e.g. {\"circuit\":\"s27\",\"optimizer\":\"joint\"}; \
     optional members: id, config, timeout_s, retries; $(b,-) reads \
     stdin). Results come out as JSONL in job order, byte-identical at \
     any $(b,--jobs) count; failures are rows, not batch aborts."
  in
  let jobs_path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"JOBS" ~doc:"Job-spec file (JSONL), or - for stdin.")
  in
  let table =
    Arg.(
      value & flag
      & info [ "table" ] ~doc:"Print a human-readable table instead of JSONL.")
  in
  let require_cached =
    Arg.(
      value & flag
      & info [ "require-cached" ]
          ~doc:
            "Exit with status 3 unless every row was answered from the \
             result store (warm-cache assertion for scripts and tests).")
  in
  Cmd.v
    (Cmd.info "batch" ~doc)
    Term.(
      const run $ jobs_path $ store_arg $ checkpoint_arg $ workers_arg
      $ listen_arg $ fault_plan_arg $ table $ require_cached $ obs_term)

let serve_cmd =
  let run store socket workers listen fault_plan obs =
    let early_diag =
      match check_workers_jobs workers obs with
      | Some d -> Some d
      | None -> (
        match arm_fault_plan fault_plan with
        | Some d -> Some d
        | None -> (
          match parse_listen listen with Error d -> Some d | Ok _ -> None))
    in
    match early_diag with
    | Some diag ->
      Printf.eprintf "%s\n" (Dcopt_util.Diag.to_string diag);
      finish obs 2
    | None ->
      let listen = Result.get_ok (parse_listen listen) in
      let store_dir = store in
      let store = Option.map Store.open_ store in
      let run_jobs =
        match workers with
        | None -> None
        | Some n ->
          (* the pool is persistent across the whole serve session:
             spawned lazily at the first job that needs computing,
             replaced as workers die, reused by every subsequent job *)
          let fleet = fleet_of ~workers:n ?listen ~store_dir obs in
          at_exit (fun () -> Dcopt_service.Fleet.shutdown fleet);
          Some (fun jobs -> Dcopt_service.Fleet.run_batch fleet ?store jobs)
      in
      (match socket with
      | Some path -> Service.serve_unix_socket ?store ?run:run_jobs path
      | None -> Service.serve ?store ?run:run_jobs stdin stdout);
      finish obs 0
  in
  let doc =
    "Serve optimization jobs as a long-running loop: one JSON job spec \
     per input line, one JSON result row per output line, until EOF \
     (default stdin/stdout; $(b,--socket) listens on a unix domain \
     socket instead). With $(b,--workers), jobs are executed by a \
     persistent multi-process fleet."
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a unix domain socket at $(docv).")
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const run $ store_arg $ socket $ workers_arg $ listen_arg
      $ fault_plan_arg $ obs_term)

let worker_cmd =
  let run connect worker_id reconnect store obs =
    (* fleet parallelism replaces the domain pool: a worker computes one
       job at a time unless --jobs explicitly says otherwise *)
    if obs.jobs_flag = None then Dcopt_par.Par.set_jobs 1;
    let worker_id =
      match worker_id with
      | Some id -> id
      | None -> Printf.sprintf "w-pid%d" (Unix.getpid ())
    in
    match Dcopt_service.Wire.addr_of_string connect with
    | Error msg ->
      let diag =
        Dcopt_util.Diag.errorf ~file:"<command-line>" ~code:"config.addr"
          "--connect %s: %s" connect msg
      in
      Printf.eprintf "%s\n" (Dcopt_util.Diag.to_string diag);
      finish obs 2
    | Ok addr -> (
      let store = Option.map Store.open_ store in
      match
        Dcopt_service.Worker.run ?store ~reconnect ~connect:addr ~worker_id ()
      with
      | clean -> finish obs (if clean then 0 else 1)
      | exception Failure msg ->
        (* Worker.run refuses addresses it cannot use (resolution
           failure, the ephemeral port 0) with the located story *)
        let diag =
          Dcopt_util.Diag.errorf ~file:"<command-line>" ~code:"config.addr"
            "--connect %s: %s" connect msg
        in
        Printf.eprintf "%s\n" (Dcopt_util.Diag.to_string diag);
        finish obs 2
      | exception (Unix.Unix_error _ | Sys_error _) ->
        Logs.err (fun m ->
            m "worker %s: cannot reach coordinator at %s" worker_id connect);
        finish obs 1)
  in
  let doc =
    "Run as a fleet worker: connect to a coordinator address (spawned \
     automatically by $(b,minpower batch --workers) / $(b,minpower serve \
     --workers); invoked by hand with $(b,--connect host:port) to join a \
     TCP fleet from another machine), pull job frames, execute them \
     through the service pipeline and stream result rows back. Defaults \
     the domain pool to jobs=1."
  in
  let connect =
    Arg.(
      required
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Coordinator address: a unix socket path, $(i,host:port), or \
             $(i,[v6::literal]:port) for TCP.")
  in
  let worker_id =
    Arg.(
      value
      & opt (some string) None
      & info [ "worker-id" ] ~docv:"ID"
          ~doc:
            "Identity in the fleet protocol and the event-log correlation \
             chain (defaults to a pid-derived id).")
  in
  let reconnect =
    Arg.(
      value & opt int 0
      & info [ "reconnect" ] ~docv:"N"
          ~doc:
            "Retry a lost or refused coordinator connection up to $(docv) \
             times under capped exponential backoff with per-worker seeded \
             jitter (default 0: spawned workers are respawned by their \
             coordinator instead). A clean shutdown frame never \
             reconnects.")
  in
  Cmd.v
    (Cmd.info "worker" ~doc)
    Term.(const run $ connect $ worker_id $ reconnect $ store_arg $ obs_term)

let tech_cmd =
  let run scale_factor obs =
    let tech = Dcopt_device.Tech.default in
    let tech =
      match scale_factor with
      | Some f -> Dcopt_device.Tech.scale tech ~factor:f
      | None -> tech
    in
    print_string (Dcopt_device.Tech_io.to_string tech);
    finish obs 0
  in
  let doc = "Print the default technology as an editable tech file \
             (optionally constant-field scaled)." in
  let factor =
    Arg.(
      value
      & opt (some float) None
      & info [ "scale" ] ~docv:"F" ~doc:"Constant-field scale factor (< 1).")
  in
  Cmd.v (Cmd.info "tech" ~doc) Term.(const run $ factor $ obs_term)

let () =
  let doc =
    "Device-circuit optimization for minimal energy in CMOS random logic \
     (Pant, De & Chatterjee, DAC 1997)."
  in
  let info = Cmd.info "minpower" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ optimize_cmd; baseline_cmd; compare_cmd; batch_cmd; serve_cmd;
            worker_cmd; profile_cmd; stats_cmd; list_cmd; body_bias_cmd;
            dump_cmd;
            generate_cmd; pareto_cmd; characterize_cmd; spice_cmd;
            tech_cmd; equiv_cmd ]))
