(* Tests for the transistor-level SPICE export and the sequential
   cycle simulator. *)

module Spice = Dcopt_device.Spice_export
module Seq_sim = Dcopt_sim.Seq_sim
module Circuit = Dcopt_netlist.Circuit
module Gate = Dcopt_netlist.Gate
module Patterns = Dcopt_netlist.Patterns
module Tech = Dcopt_device.Tech

let contains text needle =
  let ln = String.length needle and lt = String.length text in
  let rec scan i = i + ln <= lt && (String.sub text i ln = needle || scan (i + 1)) in
  scan 0

(* ------------------------------------------------------------------ *)
(* Networks and counting                                               *)

let test_pull_down_shapes () =
  (match Spice.pull_down Gate.Nand ~fanin:3 with
  | Spice.Series [ Spice.Device 0; Spice.Device 1; Spice.Device 2 ] -> ()
  | _ -> Alcotest.fail "nand3 should be a 3-series chain");
  (match Spice.pull_down Gate.Nor ~fanin:2 with
  | Spice.Parallel [ Spice.Device 0; Spice.Device 1 ] -> ()
  | _ -> Alcotest.fail "nor2 should be 2-parallel");
  match Spice.pull_down Gate.Not ~fanin:1 with
  | Spice.Device 0 -> ()
  | _ -> Alcotest.fail "inverter is one device"

let test_dual_involution () =
  let net = Spice.pull_down Gate.Xor ~fanin:2 in
  Alcotest.(check bool) "dual of dual" true (Spice.dual (Spice.dual net) = net);
  Alcotest.(check int) "dual preserves count"
    (Spice.network_device_count net)
    (Spice.network_device_count (Spice.dual net))

let test_transistor_counts () =
  Alcotest.(check int) "not" 2 (Spice.transistor_count Gate.Not ~fanin:1);
  Alcotest.(check int) "buf" 4 (Spice.transistor_count Gate.Buf ~fanin:1);
  Alcotest.(check int) "nand2" 4 (Spice.transistor_count Gate.Nand ~fanin:2);
  Alcotest.(check int) "nor3" 6 (Spice.transistor_count Gate.Nor ~fanin:3);
  Alcotest.(check int) "and2" 6 (Spice.transistor_count Gate.And ~fanin:2);
  Alcotest.(check int) "xor2" 12 (Spice.transistor_count Gate.Xor ~fanin:2);
  Alcotest.(check int) "xor3 cascade" 24 (Spice.transistor_count Gate.Xor ~fanin:3)

let test_s27_transistor_count () =
  (* 2 NOT (4) + 1 AND2 (6) + 2 OR2 (12) + 1 NAND2 (4) + 4 NOR2 (16) *)
  let core = Circuit.combinational_core (Dcopt_suite.Suite.s27 ()) in
  Alcotest.(check int) "42 transistors" 42 (Spice.circuit_transistor_count core)

(* ------------------------------------------------------------------ *)
(* Deck                                                                *)

let deck_of circuit = Spice.deck Tech.default circuit

let count_devices text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> String.length l > 0 && l.[0] = 'M')
  |> List.length

let test_deck_structure () =
  let core = Circuit.combinational_core (Dcopt_suite.Suite.s27 ()) in
  let text = deck_of core in
  Alcotest.(check bool) "model cards" true (contains text ".model nmos_opt");
  Alcotest.(check bool) "pmos card" true (contains text ".model pmos_opt");
  Alcotest.(check bool) "supply" true (contains text "Vsupply vdd 0");
  Alcotest.(check bool) "tran card" true (contains text ".tran");
  Alcotest.(check bool) "end card" true (contains text ".end");
  Alcotest.(check int) "device lines match the count"
    (Spice.circuit_transistor_count core)
    (count_devices text)

let test_deck_balanced_pn () =
  (* every deck has equal numbers of NMOS and PMOS devices: static CMOS *)
  List.iter
    (fun circuit ->
      let text = deck_of circuit in
      let count model =
        String.split_on_char '\n' text
        |> List.filter (fun l ->
               String.length l > 0 && l.[0] = 'M' && contains l model)
        |> List.length
      in
      Alcotest.(check int) "N = P" (count "nmos_opt") (count "pmos_opt"))
    [ Patterns.ripple_carry_adder ~bits:3; Patterns.parity_tree ~leaves:5;
      Patterns.mux_tree ~select_bits:2 ]

let test_deck_uses_widths () =
  let c = Patterns.inverter_chain ~stages:1 in
  let widths = Array.make (Circuit.size c) 7.0 in
  let text = Spice.deck ~widths Tech.default c in
  (* nmos width = 7 * 0.35um = 2.45u *)
  Alcotest.(check bool) "nmos sized" true (contains text "W=2.450u");
  (* pmos width doubles via beta ratio: 4.90u *)
  Alcotest.(check bool) "pmos sized" true (contains text "W=4.900u")

let test_deck_rejects_sequential () =
  match deck_of (Dcopt_suite.Suite.s27 ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of sequential circuit"

let test_deck_input_sources () =
  let core = Circuit.combinational_core (Dcopt_suite.Suite.s27 ()) in
  let text = deck_of core in
  Array.iteri
    (fun i _ ->
      Alcotest.(check bool)
        (Printf.sprintf "source %d" i)
        true
        (contains text (Printf.sprintf "Vin%d " i)))
    (Circuit.inputs core)

(* ------------------------------------------------------------------ *)
(* Sequential simulation                                               *)

let test_seq_sim_combinational_input_rates () =
  let c = Patterns.parity_tree ~leaves:4 in
  let r =
    Seq_sim.simulate ~cycles:6000 ~input_probability:0.3 ~input_density:0.2 c
  in
  Alcotest.(check int) "no state bits" 0 r.Seq_sim.state_bits;
  Array.iter
    (fun id ->
      let p = r.Seq_sim.probabilities.(id) in
      let d = r.Seq_sim.densities.(id) in
      Alcotest.(check bool) "probability near 0.3" true
        (Float.abs (p -. 0.3) < 0.04);
      Alcotest.(check bool) "density near 0.2" true
        (Float.abs (d -. 0.2) < 0.04))
    (Circuit.inputs r.Seq_sim.core)

let test_seq_sim_counter_state () =
  (* a 1-bit toggle register: ff <- NOT ff. The state bit must toggle every
     cycle and sit at 1 half the time. *)
  let c =
    Circuit.create ~name:"toggle"
      ~nodes:
        [
          ("en", Gate.Input, []);
          ("ff", Gate.Dff, [ "nxt" ]);
          ("nxt", Gate.Not, [ "ff" ]);
          ("out", Gate.Buf, [ "ff" ]);
        ]
      ~outputs:[ "out" ]
  in
  let r =
    Seq_sim.simulate ~cycles:1000 ~input_probability:0.5 ~input_density:0.1 c
  in
  let core = r.Seq_sim.core in
  let ff = Circuit.find core "ff" in
  Alcotest.(check (float 1e-9)) "toggles every cycle" 1.0
    r.Seq_sim.densities.(ff);
  Alcotest.(check bool) "half the time high" true
    (Float.abs (r.Seq_sim.probabilities.(ff) -. 0.5) < 0.01)

let test_seq_sim_constant_state () =
  (* ff <- ff AND input: from the zero reset state it can never rise *)
  let c =
    Circuit.create ~name:"sticky"
      ~nodes:
        [
          ("a", Gate.Input, []);
          ("ff", Gate.Dff, [ "nxt" ]);
          ("nxt", Gate.And, [ "ff"; "a" ]);
        ]
      ~outputs:[ "nxt" ]
  in
  let r =
    Seq_sim.simulate ~cycles:500 ~input_probability:0.5 ~input_density:0.3 c
  in
  let core = r.Seq_sim.core in
  let ff = Circuit.find core "ff" in
  Alcotest.(check (float 0.0)) "state stuck at 0" 0.0
    r.Seq_sim.probabilities.(ff);
  Alcotest.(check (float 0.0)) "state never toggles" 0.0
    r.Seq_sim.densities.(ff)

let test_seq_sim_deterministic () =
  let c = Dcopt_suite.Suite.s27 () in
  let run () =
    let r =
      Seq_sim.simulate ~cycles:400 ~input_probability:0.5 ~input_density:0.2 c
    in
    (r.Seq_sim.probabilities, r.Seq_sim.densities)
  in
  Alcotest.(check bool) "same seed, same trace" true (run () = run ())

let test_seq_sim_profile_usable () =
  let c = Dcopt_suite.Suite.find_exn "s298" in
  let r =
    Seq_sim.simulate ~cycles:1500 ~input_probability:0.5 ~input_density:0.1 c
  in
  let profile = Seq_sim.profile r in
  let env =
    Dcopt_opt.Power_model.make_env ~tech:Tech.default ~fc:300e6 r.Seq_sim.core
      profile
  in
  let design = Dcopt_opt.Power_model.uniform_design env ~vdd:1.0 ~vt:0.2 ~w:4.0 in
  let e = Dcopt_opt.Power_model.evaluate env design in
  Alcotest.(check bool) "profile drives the power model" true
    (e.Dcopt_opt.Power_model.dynamic_energy > 0.0)

let test_seq_sim_flow_engine () =
  let config =
    { Dcopt_core.Flow.default_config with
      Dcopt_core.Flow.engine =
        Dcopt_core.Flow.Sequential_trace { cycles = 1000; seed = 1L } }
  in
  let p = Dcopt_core.Flow.prepare ~config (Dcopt_suite.Suite.find_exn "s27") in
  match (Dcopt_core.Optimizer.get "joint").Dcopt_core.Optimizer.run
    (Dcopt_core.Scenario.of_prepared p) with
  | Some sol ->
    Alcotest.(check bool) "feasible under traced activity" true
      (Dcopt_opt.Solution.feasible sol)
  | None -> Alcotest.fail "expected a solution"

let () =
  Alcotest.run "spice_seq"
    [
      ( "networks",
        [
          Alcotest.test_case "pull-down shapes" `Quick test_pull_down_shapes;
          Alcotest.test_case "dual involution" `Quick test_dual_involution;
          Alcotest.test_case "transistor counts" `Quick test_transistor_counts;
          Alcotest.test_case "s27 count" `Quick test_s27_transistor_count;
        ] );
      ( "deck",
        [
          Alcotest.test_case "structure" `Quick test_deck_structure;
          Alcotest.test_case "balanced P/N" `Quick test_deck_balanced_pn;
          Alcotest.test_case "widths" `Quick test_deck_uses_widths;
          Alcotest.test_case "rejects sequential" `Quick
            test_deck_rejects_sequential;
          Alcotest.test_case "input sources" `Quick test_deck_input_sources;
        ] );
      ( "sequential sim",
        [
          Alcotest.test_case "input rates" `Quick
            test_seq_sim_combinational_input_rates;
          Alcotest.test_case "toggle register" `Quick test_seq_sim_counter_state;
          Alcotest.test_case "sticky zero state" `Quick
            test_seq_sim_constant_state;
          Alcotest.test_case "deterministic" `Quick test_seq_sim_deterministic;
          Alcotest.test_case "profile usable" `Quick test_seq_sim_profile_usable;
          Alcotest.test_case "flow engine" `Quick test_seq_sim_flow_engine;
        ] );
    ]
