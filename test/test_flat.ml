(* Differential tests of the data-oriented netlist core.

   The flat levelized analyzer (Flat_sta, C sweep kernels over the
   struct-of-arrays view) promises results bit-identical to the
   pointer-chasing reference (Sta) and independent of the parallel
   chunking (--jobs N byte-identical to --jobs 1). These tests hold it
   to that promise across the whole ISCAS suite and seeded random DAGs
   at 1k and 10k gates, do the same for the flat power sweeps
   (Power_model.evaluate_par vs evaluate_seq), drive the incremental
   engine through a 200-move transaction/rollback sequence on a
   generated DAG, and check that an analysis leaves the sta.level.* /
   flat.alloc_bytes metrics populated. *)

module Circuit = Dcopt_netlist.Circuit
module Flat = Dcopt_netlist.Flat
module Generator = Dcopt_netlist.Generator
module Suite = Dcopt_suite.Suite
module Sta = Dcopt_timing.Sta
module Flat_sta = Dcopt_timing.Flat_sta
module Tech = Dcopt_device.Tech
module Activity = Dcopt_activity.Activity
module Power_model = Dcopt_opt.Power_model
module Incr = Dcopt_opt.Power_model.Incr
module Metrics = Dcopt_obs.Metrics
module Prng = Dcopt_util.Prng

(* Bitwise float comparison: stricter than (=), which conflates 0. with
   -0. and can never match NaN. The determinism contract is about the
   produced bytes, so that is what we compare. *)
let check_bits what expected got =
  if Int64.bits_of_float expected <> Int64.bits_of_float got then
    Alcotest.failf "%s: expected %.17g (%Lx) got %.17g (%Lx)" what expected
      (Int64.bits_of_float expected)
      got
      (Int64.bits_of_float got)

let check_array_bits what expected got =
  if Array.length expected <> Array.length got then
    Alcotest.failf "%s: length %d vs %d" what (Array.length expected)
      (Array.length got);
  Array.iteri
    (fun i e -> check_bits (Printf.sprintf "%s[%d]" what i) e got.(i))
    expected

let check_result_bits what (a : Sta.result) (b : Sta.result) =
  check_bits (what ^ " critical_delay") a.Sta.critical_delay
    b.Sta.critical_delay;
  check_array_bits (what ^ " arrival") a.Sta.arrival b.Sta.arrival;
  check_array_bits (what ^ " required") a.Sta.required b.Sta.required;
  check_array_bits (what ^ " slack") a.Sta.slack b.Sta.slack

let random_delays seed n =
  let rng = Prng.create seed in
  Array.init n (fun _ -> Prng.float rng 1e-9)

(* One circuit, one delay assignment: the flat analyzer must reproduce
   the pointer reference bit for bit, and must produce the same bytes
   whatever the job count / dispatch width. min_par_width:1 forces even
   narrow levels through the parallel dispatch path. *)
let check_circuit what c =
  let delays = random_delays 7L (Circuit.size c) in
  let f = Flat.of_circuit c in
  let reference = Sta.analyze c ~delays in
  let flat = Flat_sta.analyze f ~jobs:1 ~delays in
  check_result_bits (what ^ " flat vs pointer") reference flat;
  let par = Flat_sta.analyze f ~jobs:4 ~min_par_width:1 ~delays in
  check_result_bits (what ^ " jobs 4 vs jobs 1") flat par;
  (* an explicit deadline changes required/slack but not the identity *)
  let reference = Sta.analyze ~required_time:0.5e-9 c ~delays in
  let flat = Flat_sta.analyze ~required_time:0.5e-9 f ~jobs:1 ~delays in
  check_result_bits (what ^ " deadline flat vs pointer") reference flat

let test_suite_differential () =
  List.iter
    (fun (name, c) -> check_circuit name (Circuit.combinational_core c))
    (Suite.all ())

let generated seed gates =
  let d = Generator.default_dag ~name:"flatdiff" ~seed ~gates () in
  (match Generator.validate_dag d with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid dag spec: %s" e);
  Generator.random_dag d

let test_random_dag_differential () =
  check_circuit "dag-1k" (generated 11L 1_000);
  check_circuit "dag-10k" (generated 12L 10_000)

let tech = Tech.default
let fc = 300e6

let make_env core =
  let specs = Activity.uniform_inputs core ~probability:0.5 ~density:0.1 in
  let profile = Activity.local_profile core specs in
  Power_model.make_env ~tech ~fc core profile

let check_evaluation_bits what (a : Power_model.evaluation)
    (b : Power_model.evaluation) =
  check_bits (what ^ " static") a.Power_model.static_energy
    b.Power_model.static_energy;
  check_bits (what ^ " dynamic") a.Power_model.dynamic_energy
    b.Power_model.dynamic_energy;
  check_bits (what ^ " short-circuit") a.Power_model.short_circuit_energy
    b.Power_model.short_circuit_energy;
  check_bits (what ^ " total") a.Power_model.total_energy
    b.Power_model.total_energy;
  check_bits (what ^ " critical") a.Power_model.critical_delay
    b.Power_model.critical_delay;
  Alcotest.(check bool) (what ^ " feasible") a.Power_model.feasible
    b.Power_model.feasible;
  check_array_bits (what ^ " delays") a.Power_model.delays
    b.Power_model.delays

(* The parallel power sweep carries the same determinism contract as the
   timing sweeps: chunking only partitions the gate index space, and the
   totals are folded sequentially afterwards. *)
let test_evaluate_par_differential () =
  List.iter
    (fun (what, gates) ->
      let env = make_env (generated 21L gates) in
      let design =
        Power_model.uniform_design env ~vdd:(0.8 *. tech.Tech.vdd_max)
          ~vt:(0.5 *. (tech.Tech.vt_min +. tech.Tech.vt_max))
          ~w:4.0
      in
      let seq = Power_model.evaluate_seq env design in
      let p1 = Power_model.evaluate_par ~jobs:1 env design in
      let p4 =
        Power_model.evaluate_par ~jobs:4 ~min_par_width:1 env design
      in
      check_evaluation_bits (what ^ " par jobs:1 vs seq") seq p1;
      check_evaluation_bits (what ^ " par jobs:4 vs seq") seq p4)
    [ ("pm-1k", 1_000); ("pm-10k", 10_000) ]

let check_rel what reference fast =
  let err =
    if reference = fast then 0.0
    else Float.abs (fast -. reference) /. Float.max 1e-300 (Float.abs reference)
  in
  if not (err <= 1e-9) then
    Alcotest.failf "%s: reference %.17g incr %.17g (rel err %g)" what reference
      fast err

let compare_incr_state what env inc =
  let e = Power_model.evaluate env (Incr.design inc) in
  check_rel (what ^ " total") e.Power_model.total_energy
    (Incr.total_energy inc);
  check_rel (what ^ " critical") e.Power_model.critical_delay
    (Incr.critical_delay inc)

(* 200 random width/vt moves on a generated 1k-gate DAG, grouped into
   transactions that randomly commit or roll back; after every commit
   and every rollback the engine must agree with a fresh full
   evaluation. This is test_incr's oracle pointed at the generator's
   DAGs instead of the hand-built/suite circuits. *)
let test_incr_on_generated_dag () =
  let env = make_env (generated 31L 1_000) in
  let design =
    Power_model.uniform_design env ~vdd:(0.8 *. tech.Tech.vdd_max)
      ~vt:(0.5 *. (tech.Tech.vt_min +. tech.Tech.vt_max))
      ~w:4.0
  in
  let inc = Incr.create env design in
  let gates = Power_model.gate_ids env in
  let rng = Prng.create 32L in
  let moves = 200 in
  let in_txn = ref 0 in
  for move = 1 to moves do
    let id = Prng.choose rng gates in
    (if Prng.bool rng then
       Incr.set_width inc id (Prng.uniform rng 1.0 16.0)
     else
       Incr.set_vt inc id
         (Prng.uniform rng tech.Tech.vt_min tech.Tech.vt_max));
    incr in_txn;
    (* close the transaction every few moves, half the time undoing it *)
    if !in_txn >= Prng.int rng 5 + 1 || move = moves then begin
      if Prng.bool rng then Incr.commit inc else Incr.rollback inc;
      in_txn := 0;
      compare_incr_state (Printf.sprintf "move %d" move) env inc
    end
  done

(* The analyzer must leave its footprints in the metrics registry: the
   pass counter advances per analysis and the flat-view gauges hold the
   sizes of the circuit just analyzed (main domain only, which tests
   are). *)
let test_metrics_presence () =
  let c = generated 41L 1_000 in
  let f = Flat.of_circuit c in
  let delays = random_delays 42L (Circuit.size c) in
  let passes = Metrics.counter "sta.level.passes" in
  let before = Metrics.value passes in
  ignore (Flat_sta.analyze f ~jobs:1 ~delays);
  let advanced = Metrics.value passes - before in
  if advanced < 1 then
    Alcotest.failf "sta.level.passes advanced by %d, expected >= 1" advanced;
  let expect_gauge name expected =
    let got = Metrics.gauge_value (Metrics.gauge name) in
    check_bits name expected got
  in
  expect_gauge "sta.level.depth" (float_of_int (Flat.depth f));
  expect_gauge "sta.level.max_width" (float_of_int (Flat.max_level_width f));
  expect_gauge "flat.alloc_bytes" (float_of_int (Flat.alloc_bytes f))

(* forward_into hands its arrays straight to the unchecked C kernel, so
   the OCaml wrapper's length validation is the only thing between a
   short array and heap corruption. *)
let test_forward_into_validates_lengths () =
  let c = generated 51L 100 in
  let f = Flat.of_circuit c in
  let n = Flat.size f in
  let delays = random_delays 52L n in
  let arrival = Array.make n 0.0 in
  let critical = Flat_sta.forward_into f ~jobs:1 ~delays ~arrival in
  let reference = Sta.analyze c ~delays in
  check_bits "forward_into critical" reference.Sta.critical_delay critical;
  let expect_invalid what thunk =
    match thunk () with
    | (_ : float) -> Alcotest.failf "%s: expected Invalid_argument" what
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "short delays" (fun () ->
      Flat_sta.forward_into f ~jobs:1 ~delays:(Array.make (n - 1) 0.0) ~arrival);
  expect_invalid "short arrival" (fun () ->
      Flat_sta.forward_into f ~jobs:1 ~delays ~arrival:(Array.make (n - 1) 0.0))

let () =
  Alcotest.run "flat"
    [
      ( "differential",
        [
          Alcotest.test_case "suite circuits: flat == pointer" `Quick
            test_suite_differential;
          Alcotest.test_case "random DAGs 1k/10k: flat == pointer" `Quick
            test_random_dag_differential;
          Alcotest.test_case "evaluate_par == evaluate_seq" `Quick
            test_evaluate_par_differential;
          Alcotest.test_case "incremental engine on generated DAG" `Quick
            test_incr_on_generated_dag;
          Alcotest.test_case "forward_into validates array lengths" `Quick
            test_forward_into_validates_lengths;
        ] );
      ( "observability",
        [
          Alcotest.test_case "sta.level.* / flat.alloc_bytes metrics" `Quick
            test_metrics_presence;
        ] );
    ]
