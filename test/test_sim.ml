module Transient = Dcopt_sim.Transient
module Delay = Dcopt_device.Delay
module Tech = Dcopt_device.Tech

let tech = Tech.default

let test_drain_current_zero_at_zero_vds () =
  Alcotest.(check (float 0.0)) "no vds, no current" 0.0
    (Transient.drain_current tech ~vdd:1.2 ~vt:0.2 ~w:4.0 ~stack:2 ~vds:0.0)

let test_drain_current_saturates () =
  let i_half =
    Transient.drain_current tech ~vdd:1.2 ~vt:0.2 ~w:4.0 ~stack:2 ~vds:0.6
  in
  let i_full =
    Transient.drain_current tech ~vdd:1.2 ~vt:0.2 ~w:4.0 ~stack:2 ~vds:1.2
  in
  Alcotest.(check bool) "monotone in vds" true (i_full >= i_half);
  (* above vdsat the current is flat *)
  let i_above =
    Transient.drain_current tech ~vdd:1.2 ~vt:0.2 ~w:4.0 ~stack:2 ~vds:1.1
  in
  Alcotest.(check bool) "flat in saturation" true
    (Float.abs (i_full -. i_above) /. i_full < 1e-6)

let test_drain_current_scales_with_width () =
  let i1 = Transient.drain_current tech ~vdd:1.2 ~vt:0.2 ~w:2.0 ~stack:2 ~vds:1.2 in
  let i2 = Transient.drain_current tech ~vdd:1.2 ~vt:0.2 ~w:4.0 ~stack:2 ~vds:1.2 in
  Alcotest.(check (float 1e-12)) "linear in w" (2.0 *. i1) i2

let test_waveform_monotone () =
  let wf =
    Transient.simulate_discharge tech ~vdd:1.2 ~vt:0.2 ~w:4.0 ~stack:2
      ~fanin:2 ~c_load:10e-15
  in
  Alcotest.(check bool) "starts at vdd" true
    (Float.abs (wf.Transient.voltages.(0) -. 1.2) < 1e-9);
  let n = Array.length wf.Transient.voltages in
  Alcotest.(check bool) "discharges" true
    (wf.Transient.voltages.(n - 1) < 0.1 *. 1.2);
  for i = 1 to n - 1 do
    Alcotest.(check bool) "non-increasing" true
      (wf.Transient.voltages.(i) <= wf.Transient.voltages.(i - 1) +. 1e-12)
  done

let test_delay_scales_with_load () =
  let d c =
    Transient.discharge_delay tech ~vdd:1.2 ~vt:0.2 ~w:4.0 ~stack:2 ~fanin:2
      ~c_load:c
  in
  let d1 = d 5e-15 and d2 = d 10e-15 in
  Alcotest.(check bool) "roughly linear in load" true
    (d2 /. d1 > 1.8 && d2 /. d1 < 2.2)

let test_stalled_node_never_crosses () =
  (* fanin leakage above drive: the node hangs near vdd *)
  let d =
    Transient.discharge_delay tech ~vdd:0.12 ~vt:0.7 ~w:1.0 ~stack:2
      ~fanin:1000 ~c_load:5e-15
  in
  Alcotest.(check bool) "no crossing" true (d = infinity)

(* The headline validation: analytic eq. A3 switching delay vs RK4 across
   the full operating space, including subthreshold. The analytic model is
   first order, so we assert a band rather than equality; the band is tight
   enough to catch any broken term. *)
let test_model_validation_sweep () =
  List.iter
    (fun (vdd, vt) ->
      List.iter
        (fun w ->
          let { Transient.analytic; simulated; ratio } =
            Transient.compare_switching tech ~vdd ~vt ~w ~stack:2 ~fanin:2
              ~c_load:8e-15
          in
          if analytic <> infinity then
            Alcotest.(check bool)
              (Printf.sprintf "vdd=%.2f vt=%.2f w=%.0f ratio=%.2f" vdd vt w
                 ratio)
              true
              (simulated > 0.0 && ratio > 0.4 && ratio < 2.5))
        [ 1.0; 4.0; 16.0 ])
    [ (3.3, 0.7); (2.0, 0.45); (1.2, 0.2); (0.9, 0.15); (0.6, 0.15);
      (0.25, 0.3) (* subthreshold operation *) ]

let test_comparison_fields_consistent () =
  let c =
    Transient.compare_switching tech ~vdd:1.2 ~vt:0.2 ~w:4.0 ~stack:2 ~fanin:2
      ~c_load:8e-15
  in
  Alcotest.(check (float 1e-9)) "ratio consistent"
    (c.Transient.simulated /. c.Transient.analytic)
    c.Transient.ratio

let () =
  Alcotest.run "sim"
    [
      ( "drain current",
        [
          Alcotest.test_case "zero vds" `Quick test_drain_current_zero_at_zero_vds;
          Alcotest.test_case "saturation" `Quick test_drain_current_saturates;
          Alcotest.test_case "width scaling" `Quick
            test_drain_current_scales_with_width;
        ] );
      ( "transient",
        [
          Alcotest.test_case "waveform" `Quick test_waveform_monotone;
          Alcotest.test_case "load scaling" `Quick test_delay_scales_with_load;
          Alcotest.test_case "leakage stall" `Quick
            test_stalled_node_never_crosses;
        ] );
      ( "model validation",
        [
          Alcotest.test_case "hspice-substitute sweep" `Quick
            test_model_validation_sweep;
          Alcotest.test_case "comparison fields" `Quick
            test_comparison_fields_consistent;
        ] );
    ]
