module Wire = Dcopt_wiring.Wire_model
module Tech = Dcopt_device.Tech

let tech = Tech.default
let model = Wire.create ~tech ~gate_count:200 ()

let test_density_support () =
  Alcotest.(check (float 0.0)) "zero below 1" 0.0 (Wire.density model 0.5);
  Alcotest.(check (float 0.0)) "zero beyond 2 sqrt N" 0.0
    (Wire.density model (Wire.max_length_pitches model +. 1.0));
  Alcotest.(check bool) "positive inside" true (Wire.density model 2.0 > 0.0)

let test_density_continuous_at_boundary () =
  (* Davis's two regions join at l = sqrt N *)
  let root_n = sqrt 200.0 in
  let below = Wire.density model (root_n -. 1e-6) in
  let above = Wire.density model (root_n +. 1e-6) in
  Alcotest.(check bool) "continuous" true
    (Float.abs (below -. above) /. Float.max below above < 1e-3)

let test_density_decreasing_tail () =
  (* region II falls to zero at 2 sqrt N *)
  let l_max = Wire.max_length_pitches model in
  let near_end = Wire.density model (l_max -. 0.01) in
  let mid_tail = Wire.density model (l_max *. 0.75) in
  Alcotest.(check bool) "falls toward the end" true (near_end < mid_tail);
  Alcotest.(check bool) "vanishes at end" true
    (Wire.density model l_max < 1e-9 *. mid_tail +. 1e-30)

let test_mean_in_range () =
  let mean = Wire.mean_point_to_point_pitches model in
  Alcotest.(check bool) "at least one pitch" true (mean >= 1.0);
  Alcotest.(check bool) "below max" true (mean < Wire.max_length_pitches model)

let test_mean_grows_with_gate_count () =
  let small = Wire.create ~tech ~gate_count:50 () in
  let large = Wire.create ~tech ~gate_count:5000 () in
  Alcotest.(check bool) "bigger block, longer wires" true
    (Wire.mean_point_to_point_pitches large
    > Wire.mean_point_to_point_pitches small)

let test_mean_grows_with_rent_exponent () =
  let local = Wire.create ~rent_p:0.45 ~tech ~gate_count:1000 () in
  let global = Wire.create ~rent_p:0.75 ~tech ~gate_count:1000 () in
  Alcotest.(check bool) "higher p, longer wires" true
    (Wire.mean_point_to_point_pitches global
    > Wire.mean_point_to_point_pitches local)

let test_net_length_monotone_in_fanout () =
  let prev = ref 0.0 in
  List.iter
    (fun f ->
      let l = Wire.net_length model ~fanout:f in
      Alcotest.(check bool) "increasing" true (l > !prev);
      prev := l)
    [ 1; 2; 3; 4; 8; 16 ]

let test_net_length_sublinear () =
  let l1 = Wire.net_length model ~fanout:1 in
  let l4 = Wire.net_length model ~fanout:4 in
  Alcotest.(check bool) "sublinear growth" true (l4 < 4.0 *. l1 && l4 > l1)

let test_electrical_consistency () =
  let f = 3 in
  let l = Wire.net_length model ~fanout:f in
  Alcotest.(check (float 1e-25)) "cap" (l *. tech.Tech.wire_cap_per_m)
    (Wire.net_capacitance model ~fanout:f);
  Alcotest.(check (float 1e-9)) "res" (l *. tech.Tech.wire_res_per_m)
    (Wire.net_resistance model ~fanout:f);
  Alcotest.(check (float 1e-20)) "flight" (l /. tech.Tech.wire_velocity)
    (Wire.flight_time model ~fanout:f)

let test_rc_delay () =
  let sink = 5e-15 in
  let d = Wire.distributed_rc_delay model ~fanout:2 ~sink_cap:sink in
  let expected =
    Wire.net_resistance model ~fanout:2
    *. (sink +. (Wire.net_capacitance model ~fanout:2 /. 2.0))
  in
  Alcotest.(check (float 1e-20)) "half-C distributed" expected d

let test_magnitudes_sane () =
  (* a ~200-gate 0.35um block: nets of tens of microns, fF-class caps *)
  let l = Wire.net_length model ~fanout:2 in
  Alcotest.(check bool) "microns" true (l > 1e-6 && l < 1e-3);
  let c = Wire.net_capacitance model ~fanout:2 in
  Alcotest.(check bool) "femtofarads" true (c > 1e-16 && c < 1e-13)

let density_positive_property =
  QCheck.Test.make ~name:"density non-negative everywhere" ~count:200
    QCheck.(float_bound_inclusive 40.0)
    (fun l -> Wire.density model l >= 0.0)

let () =
  Alcotest.run "wiring"
    [
      ( "distribution",
        [
          Alcotest.test_case "support" `Quick test_density_support;
          Alcotest.test_case "region boundary" `Quick
            test_density_continuous_at_boundary;
          Alcotest.test_case "tail" `Quick test_density_decreasing_tail;
          Alcotest.test_case "mean range" `Quick test_mean_in_range;
          Alcotest.test_case "mean vs N" `Quick test_mean_grows_with_gate_count;
          Alcotest.test_case "mean vs p" `Quick
            test_mean_grows_with_rent_exponent;
          QCheck_alcotest.to_alcotest density_positive_property;
        ] );
      ( "nets",
        [
          Alcotest.test_case "fanout monotone" `Quick
            test_net_length_monotone_in_fanout;
          Alcotest.test_case "sublinear" `Quick test_net_length_sublinear;
          Alcotest.test_case "electrical consistency" `Quick
            test_electrical_consistency;
          Alcotest.test_case "rc delay" `Quick test_rc_delay;
          Alcotest.test_case "magnitudes" `Quick test_magnitudes_sane;
        ] );
    ]
