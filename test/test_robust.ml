(* Robustness: recovering diagnostics, guardrails on degenerate physics,
   corrupt-store handling and crash-safe checkpoints. *)

module Bench_format = Dcopt_netlist.Bench_format
module Tech = Dcopt_device.Tech
module Tech_io = Dcopt_device.Tech_io
module Flow = Dcopt_core.Flow
module Diag = Dcopt_util.Diag
module Json = Dcopt_util.Json
module Prng = Dcopt_util.Prng
module Guard = Dcopt_opt.Guard
module Power_model = Dcopt_opt.Power_model
module Annealing = Dcopt_opt.Annealing
module Solution = Dcopt_opt.Solution
module Suite = Dcopt_suite.Suite
module Service = Dcopt_service.Service
module Job = Dcopt_service.Job
module Store = Dcopt_service.Store
module Checkpoint = Dcopt_service.Checkpoint
module Metrics = Dcopt_obs.Metrics

(* module-level handles to the counters the robustness layer bumps
   (find-or-create: these are the same instruments the library holds) *)
let corrupt_c = Metrics.counter "service.store.corrupt"
let non_finite_c = Metrics.counter "guard.non_finite"
let aborted_c = Metrics.counter "guard.trials_aborted"

let fresh_dir =
  let n = ref 0 in
  fun prefix ->
    incr n;
    let dir = Printf.sprintf "%s_%d" prefix !n in
    if Sys.file_exists dir then
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
    dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let rows_to_string rows =
  String.concat "\n"
    (List.map (fun r -> Json.to_string (Job.row_to_json r)) rows)

(* --- recovering diagnostics ------------------------------------------- *)

(* The acceptance case: three injected errors, three located diagnostics
   in one parse. *)
let test_bench_three_errors () =
  let text =
    "INPUT(a)\n\
     INPUT(b)\n\
     OUTPUT(y)\n\
     y = AND(a, b)\n\
     z = FROB(a)\n\
     w = AND(a, ghost)\n\
     y = OR(a, b)\n"
  in
  match Bench_format.parse ~file:"bad.bench" ~name:"bad" text with
  | Ok _ -> Alcotest.fail "three injected errors parsed cleanly"
  | Error diags ->
    Alcotest.(check int) "one diagnostic per injected error" 3
      (List.length diags);
    List.iter
      (fun (d : Diag.t) ->
        Alcotest.(check bool)
          (Printf.sprintf "located: %s" (Diag.to_string d))
          true
          (d.Diag.line <> None && d.Diag.file = Some "bad.bench"))
      diags;
    let lines =
      List.sort compare (List.filter_map (fun d -> d.Diag.line) diags)
    in
    Alcotest.(check (list int)) "each error's own line" [ 5; 6; 7 ] lines

let test_bench_empty_and_io () =
  (match Bench_format.parse ~name:"empty" "# nothing here\n" with
  | Ok _ -> Alcotest.fail "empty netlist accepted"
  | Error diags ->
    Alcotest.(check bool) "bench.empty" true
      (List.exists (fun d -> d.Diag.code = "bench.empty") diags));
  match Bench_format.parse_file_checked "no_such_file.bench" with
  | Ok _ -> Alcotest.fail "missing file parsed"
  | Error [ d ] -> Alcotest.(check string) "bench.io" "bench.io" d.Diag.code
  | Error _ -> Alcotest.fail "missing file: expected exactly one diagnostic"

let test_tech_collects_all_problems () =
  let text = "frobnicate = 1\nalpha = banana\nvt_min = 5.0\n" in
  match Tech_io.parse ~file:"bad.tech" text with
  | Ok _ -> Alcotest.fail "bad tech text parsed cleanly"
  | Error diags ->
    let codes = List.map (fun d -> d.Diag.code) diags in
    (* one unknown key, one bad number, and the surviving vt_min = 5.0
       flagged as ill-posed physics (>= vdd_max) — all in one parse *)
    List.iter
      (fun c -> Alcotest.(check bool) c true (List.mem c codes))
      [ "tech.key"; "tech.number"; "tech.validate" ]

(* --- degenerate physics is rejected before any optimizer runs --------- *)

let degenerate_configs =
  let t = Tech.default in
  [
    ( "vt = vdd",
      { Flow.default_config with tech = { t with vt_min = t.vdd_max } } );
    ( "vt > vdd",
      { Flow.default_config with
        tech = { t with vt_min = t.vdd_max +. 0.5; vt_max = t.vdd_max +. 0.6 }
      } );
    ("zero cycle target", { Flow.default_config with clock_frequency = 0.0 });
    ( "negative cycle target",
      { Flow.default_config with clock_frequency = -300e6 } );
    ( "wmin > wmax",
      { Flow.default_config with tech = { t with w_min = t.w_max +. 1.0 } } );
  ]

let test_degenerate_configs_rejected () =
  List.iter
    (fun (label, config) ->
      (match Diag.errors (Flow.validate_config config) with
      | [] -> Alcotest.fail (label ^ ": validate_config found nothing")
      | _ :: _ -> ());
      (* prepare refuses them as a typed Invalid_argument, never NaN *)
      match Flow.prepare ~config (Suite.s27 ()) with
      | _ -> Alcotest.fail (label ^ ": prepare accepted ill-posed physics")
      | exception Invalid_argument _ -> ())
    degenerate_configs

let test_degenerate_config_json_rejected () =
  (* the same guardrail through the service-facing JSON entry point *)
  match
    Flow.config_of_json (Json.Obj [ ("clock_frequency", Json.Float 0.0) ])
  with
  | Ok _ -> Alcotest.fail "zero clock accepted through config_of_json"
  | Error msg ->
    Alcotest.(check bool) "mentions clock_frequency" true
      (String.length msg > 0)

(* wmin = wmax is a legal (pinned-width) corner, not an error: the flow
   must run it to a typed result with finite numbers. *)
let test_pinned_width_corner_runs () =
  let t = Tech.default in
  let config =
    { Flow.default_config with tech = { t with w_max = t.w_min } }
  in
  Alcotest.(check (list string)) "wmin = wmax is well-posed" []
    (List.map Diag.to_string (Diag.errors (Flow.validate_config config)));
  let p = Flow.prepare ~config (Suite.s27 ()) in
  match (Dcopt_core.Optimizer.get "joint").Dcopt_core.Optimizer.run
      (Dcopt_core.Scenario.of_prepared p) with
  | None -> () (* infeasible is a typed result too *)
  | Some sol ->
    Alcotest.(check bool) "finite energy" true
      (Float.is_finite (Solution.total_energy sol));
    Alcotest.(check bool) "finite vdd" true (Float.is_finite (Solution.vdd sol))

(* --- guardrails at the evaluation boundary ---------------------------- *)

let check_not_nan ev =
  List.iter
    (fun (label, v) ->
      Alcotest.(check bool) (label ^ " is not NaN") false (Float.is_nan v))
    [
      ("critical delay", ev.Power_model.critical_delay);
      ("static energy", ev.Power_model.static_energy);
      ("dynamic energy", ev.Power_model.dynamic_energy);
      ("total energy", ev.Power_model.total_energy);
    ]

(* A design with vt at vdd has essentially no drive: the softplus device
   model keeps the delay finite but enormous, so the result must come
   back as a typed infeasible evaluation, never NaN. A genuinely
   non-finite input (a NaN width, the overflow case) must trip the
   guard: counted, clamped to +inf, forced infeasible. *)
let test_evaluate_poison_safe () =
  let p = Flow.prepare (Suite.s27 ()) in
  let tech = Power_model.tech p.Flow.env in
  let env = p.Flow.env in
  let degenerate =
    Power_model.uniform_design env ~vdd:tech.Tech.vdd_min
      ~vt:tech.Tech.vdd_min ~w:tech.Tech.w_min
  in
  let ev = Power_model.evaluate env degenerate in
  Alcotest.(check bool) "vt = vdd is infeasible" false ev.Power_model.feasible;
  check_not_nan ev;
  let poisoned =
    Power_model.uniform_design env ~vdd:tech.Tech.vdd_max
      ~vt:tech.Tech.vt_min ~w:tech.Tech.w_min
  in
  let gate = (Power_model.gate_ids env).(0) in
  poisoned.Power_model.widths.(gate) <- Float.nan;
  let before = Metrics.value non_finite_c in
  let ev = Power_model.evaluate env poisoned in
  Alcotest.(check bool) "NaN width is infeasible" false
    ev.Power_model.feasible;
  check_not_nan ev;
  Alcotest.(check bool) "guard.non_finite counted" true
    (Metrics.value non_finite_c > before)

let test_guard_protect () =
  Alcotest.(check (option int)) "pass-through" (Some 7)
    (Guard.protect ~site:"test" (fun () -> Some 7));
  let before = Metrics.value aborted_c in
  Alcotest.(check (option int)) "trip becomes None" None
    (Guard.protect ~site:"test" (fun () ->
         ignore (Guard.check ~site:"test" nan);
         Some 7));
  Alcotest.(check bool) "guard.trials_aborted counted" true
    (Metrics.value aborted_c > before);
  Alcotest.(check bool) "clamp forces +inf" true
    (Guard.clamp ~site:"test" nan = Float.infinity);
  Alcotest.(check (float 0.0)) "clamp is identity on finite" 1.5
    (Guard.clamp ~site:"test" 1.5)

(* --- suite near-miss suggestions -------------------------------------- *)

let test_suite_suggestions () =
  Alcotest.(check (list string)) "case slip" [ "s27" ] (Suite.suggestions "S27");
  Alcotest.(check bool) "one-typo slip" true
    (List.mem "s298" (Suite.suggestions "s29"));
  Alcotest.(check (list string)) "nothing close" []
    (Suite.suggestions "c6288");
  match Suite.find "S27" with
  | Ok _ -> Alcotest.fail "case-slipped name resolved"
  | Error msg ->
    Alcotest.(check bool) "did-you-mean in the error" true
      (let sub = "did you mean s27" in
       let rec has i =
         i + String.length sub <= String.length msg
         && (String.sub msg i (String.length sub) = sub || has (i + 1))
       in
       has 0)

(* --- corrupt store entries are counted misses ------------------------- *)

let test_store_corruption_is_a_counted_miss () =
  let st = Store.open_ (fresh_dir "robust_store") in
  let key = "deadbeefdeadbeefdeadbeefdeadbeef" in
  Store.put st key (Json.Obj [ ("version", Json.Int 1) ]);
  Alcotest.(check bool) "intact entry hits" true (Store.find st key <> None);
  let path = Filename.concat (Store.dir st) (key ^ ".json") in
  (* bit-flip the first byte *)
  let text = read_file path in
  let b = Bytes.of_string text in
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
  write_file path (Bytes.to_string b);
  let before = Metrics.value corrupt_c in
  Alcotest.(check bool) "bit-flipped entry misses" true
    (Store.find st key = None);
  Alcotest.(check bool) "corruption counted" true
    (Metrics.value corrupt_c > before);
  (* truncation is the same story *)
  write_file path (String.sub text 0 (String.length text / 2));
  let before = Metrics.value corrupt_c in
  Alcotest.(check bool) "truncated entry misses" true
    (Store.find st key = None);
  Alcotest.(check bool) "truncation counted" true
    (Metrics.value corrupt_c > before);
  (* absent entries stay quiet *)
  let before = Metrics.value corrupt_c in
  Alcotest.(check bool) "absent entry misses quietly" true
    (Store.find st "00000000000000000000000000000000" = None);
  Alcotest.(check int) "no corruption counted for absence" before
    (Metrics.value corrupt_c)

(* a checkpoint entry that parses as JSON but not as an outcome is
   corrupt too *)
let test_checkpoint_shape_corruption () =
  let ck = Checkpoint.open_ (fresh_dir "robust_ckpt_shape") in
  let key = "feedfacefeedfacefeedfacefeedface" in
  Checkpoint.record ck key Job.Infeasible;
  Alcotest.(check bool) "intact entry decodes" true
    (Checkpoint.find ck key = Some Job.Infeasible);
  write_file
    (Filename.concat (Checkpoint.dir ck) (key ^ ".json"))
    "{\"version\":1,\"status\":\"no-such-status\"}";
  let before = Metrics.value corrupt_c in
  Alcotest.(check bool) "shape-invalid entry misses" true
    (Checkpoint.find ck key = None);
  Alcotest.(check bool) "shape corruption counted" true
    (Metrics.value corrupt_c > before)

(* --- batch checkpoint resume ------------------------------------------ *)

let test_batch_checkpoint_resume_identical () =
  let jobs =
    [
      Job.make ~id:"a" ~optimizer:"baseline" "s27";
      Job.make ~id:"b" ~optimizer:"joint" "s27";
      Job.make ~id:"bad" "no_such_circuit";
    ]
  in
  let dir = fresh_dir "robust_batch_ckpt" in
  let cold = Service.run_batch jobs in
  let ck = Checkpoint.open_ dir in
  let first = Service.run_batch ~checkpoint:ck jobs in
  Alcotest.(check string) "checkpointed run matches a plain run"
    (rows_to_string cold) (rows_to_string first);
  (* everything computable is now on disk: a partial emission recovers
     the full row set, and a resumed batch is byte-identical *)
  Alcotest.(check string) "partial rows recover every answerable row"
    (rows_to_string first)
    (rows_to_string (Service.partial_rows ~checkpoint:ck jobs));
  let resumed = Service.run_batch ~checkpoint:ck jobs in
  Alcotest.(check string) "resume is byte-identical" (rows_to_string first)
    (rows_to_string resumed)

(* --- annealing per-pass checkpoints ----------------------------------- *)

let test_annealing_checkpoint_resume () =
  let p = Flow.prepare (Suite.s27 ()) in
  let budgets = Flow.budgets p in
  let dir = fresh_dir "robust_anneal_ckpt" in
  let options =
    { Annealing.default_options with
      passes = 2;
      moves_per_pass = 200;
      checkpoint = Some dir;
    }
  in
  let sol_to_string = function
    | None -> "none"
    | Some s -> Json.to_string (Solution.to_json s)
  in
  let plain =
    Annealing.optimize p.Flow.env ~budgets
      ~options:{ options with checkpoint = None }
  in
  let first = Annealing.optimize p.Flow.env ~budgets ~options in
  Alcotest.(check string) "checkpointing changes nothing"
    (sol_to_string plain) (sol_to_string first);
  Alcotest.(check bool) "pass files written" true
    (Sys.file_exists (Filename.concat dir "pass0.json")
    && Sys.file_exists (Filename.concat dir "pass1.json"));
  let resumed = Annealing.optimize p.Flow.env ~budgets ~options in
  Alcotest.(check string) "resume reproduces the result"
    (sol_to_string first) (sol_to_string resumed);
  (* a corrupt pass file is ignored and the pass recomputed *)
  write_file (Filename.concat dir "pass0.json") "{ not json";
  let recovered = Annealing.optimize p.Flow.env ~budgets ~options in
  Alcotest.(check string) "corrupt pass file recomputes"
    (sol_to_string first) (sol_to_string recovered);
  (* a stale identity (different seed) never leaks in *)
  let other_seed =
    Annealing.optimize p.Flow.env ~budgets
      ~options:{ options with seed = 0xBADL }
  in
  let replayed = Annealing.optimize p.Flow.env ~budgets ~options in
  ignore other_seed;
  Alcotest.(check string) "stale checkpoints don't leak across seeds"
    (sol_to_string first) (sol_to_string replayed)

(* --- PRNG state round-trip (what the checkpoints persist) ------------- *)

let test_prng_state_roundtrip () =
  let r = Prng.create 42L in
  for _ = 1 to 10 do
    ignore (Prng.bits64 r)
  done;
  let r' = Prng.of_state (Prng.state r) in
  for i = 1 to 10 do
    Alcotest.(check int64)
      (Printf.sprintf "draw %d" i)
      (Prng.bits64 r) (Prng.bits64 r')
  done

let () =
  Alcotest.run "robust"
    [
      ( "diagnostics",
        [
          Alcotest.test_case "three injected bench errors" `Quick
            test_bench_three_errors;
          Alcotest.test_case "empty and unreadable bench" `Quick
            test_bench_empty_and_io;
          Alcotest.test_case "tech collects all problems" `Quick
            test_tech_collects_all_problems;
        ] );
      ( "degenerate physics",
        [
          Alcotest.test_case "ill-posed configs rejected" `Quick
            test_degenerate_configs_rejected;
          Alcotest.test_case "rejected through JSON too" `Quick
            test_degenerate_config_json_rejected;
          Alcotest.test_case "pinned-width corner runs" `Quick
            test_pinned_width_corner_runs;
          Alcotest.test_case "evaluate is poison-safe" `Quick
            test_evaluate_poison_safe;
          Alcotest.test_case "guard protect/clamp/check" `Quick
            test_guard_protect;
        ] );
      ( "front door",
        [
          Alcotest.test_case "suite near-miss suggestions" `Quick
            test_suite_suggestions;
        ] );
      ( "crash safety",
        [
          Alcotest.test_case "corrupt store entry is a counted miss" `Quick
            test_store_corruption_is_a_counted_miss;
          Alcotest.test_case "shape-corrupt checkpoint entry" `Quick
            test_checkpoint_shape_corruption;
          Alcotest.test_case "batch checkpoint resume" `Quick
            test_batch_checkpoint_resume_identical;
          Alcotest.test_case "annealing checkpoint resume" `Quick
            test_annealing_checkpoint_resume;
          Alcotest.test_case "prng state round-trip" `Quick
            test_prng_state_roundtrip;
        ] );
    ]
