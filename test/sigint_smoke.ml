(* End-to-end crash-safety smoke: interrupt a checkpointed [minpower
   batch] with SIGINT mid-run, then resume from the checkpoint and
   require rows byte-identical to an uninterrupted run.

   argv.(1) is the minpower binary (the dune rule passes
   %{exe:../bin/minpower.exe}). Timing-race tolerant: if the batch
   finishes before the signal lands, the interrupt leg degenerates to a
   plain run and only the byte-identity assertion remains — which is the
   property that matters. *)

let minpower = Sys.argv.(1)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let clean_dir dir =
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)

(* spawn [minpower args] with stdout to [out_path], return the pid *)
let spawn args out_path =
  let out =
    Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let pid =
    Unix.create_process minpower
      (Array.of_list (minpower :: args))
      Unix.stdin out Unix.stderr
  in
  Unix.close out;
  pid

let wait pid =
  match snd (Unix.waitpid [] pid) with
  | Unix.WEXITED n -> n
  | Unix.WSIGNALED n -> 128 + n
  | Unix.WSTOPPED n -> 128 + n

let run args out_path = wait (spawn args out_path)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let () =
  let jobs_path = "sigint_jobs.jsonl" in
  let ckpt = "sigint_ckpt" in
  let oc = open_out jobs_path in
  List.iter
    (fun c ->
      Printf.fprintf oc "{\"circuit\":%S,\"optimizer\":\"annealing\"}\n" c)
    [ "s298"; "s344"; "s349"; "s382"; "s386"; "s400" ];
  close_out oc;
  clean_dir ckpt;
  (* leg 1: start a checkpointed batch and interrupt it mid-run *)
  let pid = spawn [ "batch"; jobs_path; "--checkpoint"; ckpt ] "sigint_run1.jsonl" in
  Unix.sleepf 0.8;
  (try Unix.kill pid Sys.sigint with Unix.Unix_error _ -> ());
  let code1 = wait pid in
  let interrupted = code1 = 130 in
  if not (interrupted || code1 = 0) then
    (* e.g. the signal landed before the handler was installed: no
       partial output, but resume from whatever was written must still
       work *)
    Printf.eprintf "note: interrupted run exited %d, not 130/0\n%!" code1;
  if interrupted then begin
    (* the handler flushed whatever was answerable; each emitted partial
       row must be backed by an on-disk checkpoint entry *)
    let partial = read_file "sigint_run1.jsonl" in
    let rows =
      List.filter (fun l -> String.trim l <> "")
        (String.split_on_char '\n' partial)
    in
    let entries = Array.length (Sys.readdir ckpt) in
    if List.length rows > entries then
      fail "%d partial rows but only %d checkpoint entries" (List.length rows)
        entries
  end;
  (* leg 2: resume from the checkpoint, to completion *)
  let code2 = run [ "batch"; jobs_path; "--checkpoint"; ckpt ] "sigint_resumed.jsonl" in
  if code2 <> 0 then fail "resumed run exited %d" code2;
  (* leg 3: a plain uninterrupted run is the reference *)
  let code3 = run [ "batch"; jobs_path ] "sigint_clean.jsonl" in
  if code3 <> 0 then fail "clean run exited %d" code3;
  if read_file "sigint_resumed.jsonl" <> read_file "sigint_clean.jsonl" then
    fail "resumed rows differ from an uninterrupted run";
  Printf.printf
    "sigint smoke: interrupted=%b, resume byte-identical to a clean run\n"
    interrupted
