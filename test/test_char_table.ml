module Char_table = Dcopt_device.Char_table
module Delay = Dcopt_device.Delay
module Tech = Dcopt_device.Tech
module Gate = Dcopt_netlist.Gate

let tech = Tech.default

let nand2 =
  Char_table.characterize tech ~kind:Gate.Nand ~fanin:2 ~width:4.0 ~vdd:1.0
    ~vt:0.15

let analytic_delay ~load ~slew =
  let delay_load =
    {
      Delay.fanin_count = 2;
      stack_depth = 2;
      cap_fanout_gates = 0.0;
      cap_wire = load;
      res_wire_terms = 0.0;
      flight_time = 0.0;
      max_fanin_delay = slew;
    }
  in
  Delay.gate_delay tech ~vdd:1.0 ~vt:0.15 ~w:4.0 delay_load

let test_exact_on_grid_points () =
  let t = nand2.Char_table.delay_table in
  Array.iteri
    (fun i load ->
      Array.iteri
        (fun j slew ->
          let table_value = t.Char_table.values.(i).(j) in
          let direct = Char_table.cell_delay nand2 ~load ~slew in
          Alcotest.(check (float 1e-18)) "grid point exact" table_value direct;
          Alcotest.(check (float 1e-18)) "matches analytic" table_value
            (analytic_delay ~load ~slew))
        t.Char_table.slew_axis.Char_table.points)
    t.Char_table.load_axis.Char_table.points

let test_interpolation_accuracy_off_grid () =
  (* off-grid queries should stay within a few percent of the analytic
     model (the delay is near-affine in load; the slew axis is log-spaced) *)
  List.iter
    (fun (load, slew) ->
      let interpolated = Char_table.cell_delay nand2 ~load ~slew in
      let exact = analytic_delay ~load ~slew in
      let rel = Float.abs (interpolated -. exact) /. exact in
      Alcotest.(check bool)
        (Printf.sprintf "load %.2g slew %.2g: %.1f%%" load slew (rel *. 100.0))
        true (rel < 0.08))
    [ (3.1e-15, 7e-12); (12e-15, 5e-11); (25e-15, 3e-10); (47e-15, 1.2e-9) ]

let test_clamping_at_edges () =
  let t = nand2.Char_table.delay_table in
  let lo_load = t.Char_table.load_axis.Char_table.points.(0) in
  let lo_slew = t.Char_table.slew_axis.Char_table.points.(0) in
  Alcotest.(check (float 1e-18)) "below-range clamps to corner"
    t.Char_table.values.(0).(0)
    (Char_table.lookup t ~load:(lo_load /. 10.0) ~slew:(lo_slew /. 10.0))

let test_monotone_in_load () =
  let prev = ref 0.0 in
  Array.iter
    (fun load ->
      let d = Char_table.cell_delay nand2 ~load ~slew:1e-11 in
      Alcotest.(check bool) "increasing in load" true (d > !prev);
      prev := d)
    (Dcopt_util.Numeric.linspace ~lo:1e-15 ~hi:60e-15 ~n:15)

let test_cell_metadata () =
  Alcotest.(check (float 1e-20)) "input cap"
    (tech.Tech.c_gate *. 4.0)
    nand2.Char_table.input_capacitance;
  Alcotest.(check bool) "leakage positive" true (nand2.Char_table.leakage > 0.0);
  Alcotest.(check bool) "internal energy positive" true
    (nand2.Char_table.energy_per_transition > 0.0)

let test_characterize_rejects_bad_cells () =
  (match
     Char_table.characterize tech ~kind:Gate.Input ~fanin:0 ~width:2.0
       ~vdd:1.0 ~vt:0.2
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of INPUT");
  match
    Char_table.characterize tech ~kind:Gate.Nand ~fanin:1 ~width:2.0 ~vdd:1.0
      ~vt:0.2
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected arity rejection"

let test_liberty_dump () =
  let text = Char_table.to_liberty [ nand2 ] in
  let contains needle =
    let ln = String.length needle and lt = String.length text in
    let rec scan i =
      i + ln <= lt && (String.sub text i ln = needle || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "library group" true (contains "library (");
  Alcotest.(check bool) "cell group" true (contains "cell (NAND2_w4_v1000)");
  Alcotest.(check bool) "has values" true (contains "values (");
  Alcotest.(check bool) "balanced braces" true
    (let opens = ref 0 and closes = ref 0 in
     String.iter
       (fun c ->
         if c = '{' then incr opens else if c = '}' then incr closes)
       text;
     !opens = !closes && !opens > 0)

let test_slew_sensitivity_matches_slope_term () =
  (* moving along the slew axis must change the delay exactly through the
     slope coefficient *)
  let d1 = Char_table.cell_delay nand2 ~load:1e-14 ~slew:1e-12 in
  let d2 = Char_table.cell_delay nand2 ~load:1e-14 ~slew:2e-9 in
  let coeff = Delay.slope_coefficient tech ~vdd:1.0 ~vt:0.15 in
  let expected = coeff *. (2e-9 -. 1e-12) in
  Alcotest.(check bool) "slew sensitivity" true
    (Float.abs (d2 -. d1 -. expected) /. expected < 0.05)

let () =
  Alcotest.run "char_table"
    [
      ( "tables",
        [
          Alcotest.test_case "grid exact" `Quick test_exact_on_grid_points;
          Alcotest.test_case "interpolation" `Quick
            test_interpolation_accuracy_off_grid;
          Alcotest.test_case "edge clamping" `Quick test_clamping_at_edges;
          Alcotest.test_case "monotone in load" `Quick test_monotone_in_load;
          Alcotest.test_case "slew sensitivity" `Quick
            test_slew_sensitivity_matches_slope_term;
        ] );
      ( "cells",
        [
          Alcotest.test_case "metadata" `Quick test_cell_metadata;
          Alcotest.test_case "rejects bad cells" `Quick
            test_characterize_rejects_bad_cells;
          Alcotest.test_case "liberty dump" `Quick test_liberty_dump;
        ] );
    ]
