(* Concurrent multi-process store hammer: fork 4 writer processes that
   all put and re-put the same 8 content-addressed keys into one shared
   store directory as fast as they can, interleaved with reads. Because
   entries are content-addressed, every writer of a key writes the same
   bytes — so whatever the interleaving, a reader must only ever see a
   whole, correct document (or a miss before the first write lands),
   never a torn or mixed one, and no temp litter may survive.

   This is a standalone executable (not an alcotest case) because it
   forks: fork is only safe before any domains are spawned, so it must
   not share a process with the pool-using service tests. *)

module Json = Dcopt_util.Json
module Store = Dcopt_service.Store

let fail fmt =
  Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let dir = "store_hammer_dir"
let n_procs = 4
let n_keys = 8
let iters = 200

let key i = Printf.sprintf "hammer%02d" i

(* a few hundred bytes so a torn write would be observable *)
let doc i =
  Json.Obj
    [
      ("key", Json.Int i);
      ("payload", Json.String (String.make 400 (Char.chr (Char.code 'a' + i))));
    ]

let child seed =
  let st = Store.open_ dir in
  for it = 1 to iters do
    for k = 0 to n_keys - 1 do
      let k = (k + seed + it) mod n_keys in
      Store.put st (key k) (doc k);
      (* read-back of any key mid-hammer: whole or absent, never torn *)
      match Store.find st (key ((k + 1) mod n_keys)) with
      | None -> ()
      | Some v ->
        let want = Json.to_string (doc ((k + 1) mod n_keys)) in
        if Json.to_string v <> want then exit 9
    done
  done;
  exit 0

let () =
  ignore (Unix.alarm 120);
  if Sys.file_exists dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
  let pids =
    List.init n_procs (fun seed ->
        match Unix.fork () with 0 -> child seed | pid -> pid)
  in
  List.iter
    (fun pid ->
      match snd (Unix.waitpid [] pid) with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED 9 -> fail "a child read a torn or wrong document"
      | Unix.WEXITED n -> fail "child exited %d" n
      | Unix.WSIGNALED n | Unix.WSTOPPED n -> fail "child got signal %d" n)
    pids;
  (* every entry must read back whole and correct *)
  let st = Store.open_ dir in
  for k = 0 to n_keys - 1 do
    match Store.find st (key k) with
    | None -> fail "key %d missing after the hammer" k
    | Some v ->
      if Json.to_string v <> Json.to_string (doc k) then
        fail "key %d read back wrong" k
  done;
  (* rename consumed every temp file: no litter *)
  Array.iter
    (fun f ->
      let rec has_tmp i =
        i + 4 <= String.length f
        && (String.sub f i 4 = ".tmp" || has_tmp (i + 1))
      in
      if has_tmp 0 then fail "temp litter survived: %s" f)
    (Sys.readdir dir);
  (* injected disk failures: an ENOSPC put must leave nothing behind (no
     entry, no temp litter), a short write that reaches the directory
     entry must read back as a counted miss — and a clean re-put must
     repair it. Reads stay whole-or-absent throughout. *)
  let ikey = "injected" in
  let ipath = Filename.concat dir (ikey ^ ".json") in
  (match Dcopt_service.Faults.parse "store.put@1:enospc;store.put@2:short=12" with
  | Error e -> fail "fault plan did not parse: %s" e
  | Ok plan -> Dcopt_service.Faults.arm plan);
  Store.put st ikey (doc 0);
  if Sys.file_exists ipath then fail "ENOSPC put left an entry behind";
  (match Store.find st ikey with
  | None -> ()
  | Some _ -> fail "ENOSPC put readable somehow");
  Store.put st ikey (doc 0);
  if not (Sys.file_exists ipath) then
    fail "short put should still reach the directory entry";
  (match Store.find st ikey with
  | None -> () (* torn document detected at read-back *)
  | Some _ -> fail "a 12-byte torn document read back as whole");
  Dcopt_service.Faults.disarm ();
  Store.put st ikey (doc 0);
  (match Store.find st ikey with
  | Some v when Json.to_string v = Json.to_string (doc 0) -> ()
  | Some _ -> fail "repaired entry read back wrong"
  | None -> fail "clean re-put after injected faults did not stick");
  Array.iter
    (fun f ->
      let rec has_tmp i =
        i + 4 <= String.length f
        && (String.sub f i 4 = ".tmp" || has_tmp (i + 1))
      in
      if has_tmp 0 then fail "temp litter survived fault injection: %s" f)
    (Sys.readdir dir);
  Printf.printf
    "store hammer: %d processes x %d puts on %d shared keys, all reads \
     whole, no temp litter; injected ENOSPC/short-write puts left the \
     store whole-or-absent\n"
    n_procs (iters * n_keys) n_keys
