module Bdd = Dcopt_bdd.Bdd

let mgr ?(vars = 6) () = Bdd.manager ~var_count:vars ()

let test_terminals () =
  let m = mgr () in
  Alcotest.(check bool) "true is true" true (Bdd.is_true m (Bdd.bdd_true m));
  Alcotest.(check bool) "false is false" true (Bdd.is_false m (Bdd.bdd_false m));
  Alcotest.(check bool) "of_bool" true
    (Bdd.equal (Bdd.of_bool m true) (Bdd.bdd_true m))

let test_var_basic () =
  let m = mgr () in
  let x = Bdd.var m 0 in
  Alcotest.(check bool) "eval 1" true (Bdd.eval m x [| true; false; false; false; false; false |]);
  Alcotest.(check bool) "eval 0" false (Bdd.eval m x [| false; false; false; false; false; false |])

let test_boolean_laws () =
  let m = mgr () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  (* double negation *)
  Alcotest.(check bool) "~~x = x" true (Bdd.equal (Bdd.bdd_not m (Bdd.bdd_not m x)) x);
  (* De Morgan *)
  Alcotest.(check bool) "de morgan" true
    (Bdd.equal
       (Bdd.bdd_not m (Bdd.bdd_and m x y))
       (Bdd.bdd_or m (Bdd.bdd_not m x) (Bdd.bdd_not m y)));
  (* idempotence, absorption *)
  Alcotest.(check bool) "x&x=x" true (Bdd.equal (Bdd.bdd_and m x x) x);
  Alcotest.(check bool) "x|x&y=x" true
    (Bdd.equal (Bdd.bdd_or m x (Bdd.bdd_and m x y)) x);
  (* xor *)
  Alcotest.(check bool) "x^x=0" true (Bdd.is_false m (Bdd.bdd_xor m x x));
  Alcotest.(check bool) "x^~x=1" true
    (Bdd.is_true m (Bdd.bdd_xor m x (Bdd.bdd_not m x)));
  Alcotest.(check bool) "nand = ~and" true
    (Bdd.equal (Bdd.bdd_nand m x y) (Bdd.bdd_not m (Bdd.bdd_and m x y)));
  Alcotest.(check bool) "nor = ~or" true
    (Bdd.equal (Bdd.bdd_nor m x y) (Bdd.bdd_not m (Bdd.bdd_or m x y)));
  Alcotest.(check bool) "xnor = ~xor" true
    (Bdd.equal (Bdd.bdd_xnor m x y) (Bdd.bdd_not m (Bdd.bdd_xor m x y)))

let test_ite () =
  let m = mgr () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 and z = Bdd.var m 2 in
  let f = Bdd.ite m x y z in
  List.iter
    (fun (a, b, c) ->
      let expected = if a then b else c in
      Alcotest.(check bool) "ite semantics" expected
        (Bdd.eval m f [| a; b; c; false; false; false |]))
    [ (true, true, false); (true, false, true); (false, true, false);
      (false, false, true); (true, true, true); (false, false, false) ]

let test_restrict () =
  let m = mgr () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.bdd_and m x y in
  Alcotest.(check bool) "f|x=1 is y" true (Bdd.equal (Bdd.restrict m f 0 true) y);
  Alcotest.(check bool) "f|x=0 is false" true
    (Bdd.is_false m (Bdd.restrict m f 0 false))

let test_boolean_difference () =
  let m = mgr () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  (* d(x&y)/dx = y *)
  Alcotest.(check bool) "diff of and" true
    (Bdd.equal (Bdd.boolean_difference m (Bdd.bdd_and m x y) 0) y);
  (* d(x^y)/dx = 1 *)
  Alcotest.(check bool) "diff of xor" true
    (Bdd.is_true m (Bdd.boolean_difference m (Bdd.bdd_xor m x y) 0));
  (* d(y)/dx = 0 *)
  Alcotest.(check bool) "diff of independent" true
    (Bdd.is_false m (Bdd.boolean_difference m y 0))

let test_support () =
  let m = mgr () in
  let x = Bdd.var m 0 and z = Bdd.var m 2 in
  let f = Bdd.bdd_or m x z in
  Alcotest.(check (list int)) "support" [ 0; 2 ] (Bdd.support m f);
  Alcotest.(check (list int)) "terminal support" [] (Bdd.support m (Bdd.bdd_true m))

let test_probability () =
  let m = mgr ~vars:2 () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.bdd_and m x y in
  Alcotest.(check (float 1e-12)) "p(and)" 0.06 (Bdd.probability m f [| 0.2; 0.3 |]);
  let g = Bdd.bdd_or m x y in
  Alcotest.(check (float 1e-12)) "p(or)" 0.44 (Bdd.probability m g [| 0.2; 0.3 |])

let test_sat_count () =
  let m = mgr ~vars:3 () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  (* x & y over 3 vars: 2 satisfying assignments *)
  Alcotest.(check (float 1e-9)) "count" 2.0 (Bdd.sat_count m (Bdd.bdd_and m x y))

let test_size () =
  let m = mgr ~vars:3 () in
  let x = Bdd.var m 0 in
  Alcotest.(check int) "var size" 1 (Bdd.size m x);
  Alcotest.(check int) "terminal size" 0 (Bdd.size m (Bdd.bdd_true m))

let test_too_large () =
  let m = Bdd.manager ~node_limit:4 ~var_count:8 () in
  let build () =
    (* parity of 8 variables needs more than 4 nodes *)
    let acc = ref (Bdd.var m 0) in
    for i = 1 to 7 do
      acc := Bdd.bdd_xor m !acc (Bdd.var m i)
    done;
    !acc
  in
  match build () with
  | exception Bdd.Too_large _ -> ()
  | _ -> Alcotest.fail "expected Too_large"

(* Random-formula equivalence against direct truth-table evaluation. *)
type formula =
  | Var of int
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Xor of formula * formula

let rec formula_gen depth =
  let open QCheck.Gen in
  if depth = 0 then map (fun i -> Var i) (int_bound 4)
  else
    frequency
      [
        (1, map (fun i -> Var i) (int_bound 4));
        (2, map (fun f -> Not f) (formula_gen (depth - 1)));
        (2, map2 (fun a b -> And (a, b)) (formula_gen (depth - 1)) (formula_gen (depth - 1)));
        (2, map2 (fun a b -> Or (a, b)) (formula_gen (depth - 1)) (formula_gen (depth - 1)));
        (1, map2 (fun a b -> Xor (a, b)) (formula_gen (depth - 1)) (formula_gen (depth - 1)));
      ]

let rec eval_formula env = function
  | Var i -> env.(i)
  | Not f -> not (eval_formula env f)
  | And (a, b) -> eval_formula env a && eval_formula env b
  | Or (a, b) -> eval_formula env a || eval_formula env b
  | Xor (a, b) -> eval_formula env a <> eval_formula env b

let rec build_bdd m = function
  | Var i -> Bdd.var m i
  | Not f -> Bdd.bdd_not m (build_bdd m f)
  | And (a, b) -> Bdd.bdd_and m (build_bdd m a) (build_bdd m b)
  | Or (a, b) -> Bdd.bdd_or m (build_bdd m a) (build_bdd m b)
  | Xor (a, b) -> Bdd.bdd_xor m (build_bdd m a) (build_bdd m b)

let bdd_matches_truth_table =
  QCheck.Test.make ~name:"bdd agrees with direct evaluation" ~count:200
    (QCheck.make (formula_gen 4))
    (fun f ->
      let m = Bdd.manager ~var_count:5 () in
      let b = build_bdd m f in
      let ok = ref true in
      for code = 0 to 31 do
        let env = Array.init 5 (fun i -> (code lsr i) land 1 = 1) in
        if Bdd.eval m b env <> eval_formula env f then ok := false
      done;
      !ok)

let probability_matches_sat_fraction =
  QCheck.Test.make ~name:"probability at 1/2 equals sat fraction" ~count:100
    (QCheck.make (formula_gen 4))
    (fun f ->
      let m = Bdd.manager ~var_count:5 () in
      let b = build_bdd m f in
      let count = ref 0 in
      for code = 0 to 31 do
        let env = Array.init 5 (fun i -> (code lsr i) land 1 = 1) in
        if eval_formula env f then incr count
      done;
      let p = Bdd.probability m b (Array.make 5 0.5) in
      Float.abs (p -. (float_of_int !count /. 32.0)) < 1e-9)

let canonical_equality =
  QCheck.Test.make ~name:"equivalent formulas share a node" ~count:100
    (QCheck.make (formula_gen 3))
    (fun f ->
      let m = Bdd.manager ~var_count:5 () in
      let a = build_bdd m f in
      (* rebuild through double negation: same function, same node *)
      let b = Bdd.bdd_not m (Bdd.bdd_not m (build_bdd m f)) in
      Bdd.equal a b)

let () =
  Alcotest.run "bdd"
    [
      ( "core",
        [
          Alcotest.test_case "terminals" `Quick test_terminals;
          Alcotest.test_case "var" `Quick test_var_basic;
          Alcotest.test_case "boolean laws" `Quick test_boolean_laws;
          Alcotest.test_case "ite" `Quick test_ite;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "boolean difference" `Quick
            test_boolean_difference;
          Alcotest.test_case "support" `Quick test_support;
          Alcotest.test_case "probability" `Quick test_probability;
          Alcotest.test_case "sat count" `Quick test_sat_count;
          Alcotest.test_case "size" `Quick test_size;
          Alcotest.test_case "node limit" `Quick test_too_large;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest bdd_matches_truth_table;
          QCheck_alcotest.to_alcotest probability_matches_sat_fraction;
          QCheck_alcotest.to_alcotest canonical_equality;
        ] );
    ]
