module Flow = Dcopt_core.Flow
module Optimizer = Dcopt_core.Optimizer
module Solution = Dcopt_opt.Solution
module Suite = Dcopt_suite.Suite
module Tech = Dcopt_device.Tech
module Tech_io = Dcopt_device.Tech_io
module Json = Dcopt_util.Json
module Service = Dcopt_service.Service
module Job = Dcopt_service.Job
module Store = Dcopt_service.Store
module Telemetry = Dcopt_obs.Telemetry
module Metrics = Dcopt_obs.Metrics
module Par = Dcopt_par.Par

let rows_to_string rows =
  String.concat "\n" (List.map (fun r -> Json.to_string (Job.row_to_json r)) rows)

(* fresh relative store directories inside the dune sandbox *)
let temp_store =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir = Printf.sprintf "service_test_store_%d" !n in
    if Sys.file_exists dir then
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
    dir

(* --- exact JSON round-trips ------------------------------------------- *)

let test_config_roundtrip () =
  let check config =
    let j1 = Flow.config_to_json config in
    match Flow.config_of_json j1 with
    | Error msg -> Alcotest.fail msg
    | Ok config' ->
      Alcotest.(check string)
        "config json round-trips byte-exactly" (Json.to_string j1)
        (Json.to_string (Flow.config_to_json config'))
  in
  check Flow.default_config;
  check
    {
      Flow.default_config with
      Flow.clock_frequency = 123.456789e6;
      engine = Flow.Monte_carlo { vectors = 77; seed = 42L };
      skew_factor = 0.875;
      include_short_circuit = true;
    }

let test_config_partial_override () =
  match
    Flow.config_of_json
      (Json.Obj
         [ ("version", Json.Int 1); ("clock_frequency", Json.Float 2e8) ])
  with
  | Error msg -> Alcotest.fail msg
  | Ok c ->
    Alcotest.(check (float 0.0)) "overridden" 2e8 c.Flow.clock_frequency;
    Alcotest.(check (float 0.0))
      "others kept" Flow.default_config.Flow.input_density c.Flow.input_density

let test_tech_roundtrip () =
  let tech = Tech.scale Tech.default ~factor:0.7 in
  let j1 = Tech_io.to_json tech in
  match Tech_io.of_json j1 with
  | Error msg -> Alcotest.fail msg
  | Ok tech' ->
    Alcotest.(check string)
      "tech json round-trips byte-exactly" (Json.to_string j1)
      (Json.to_string (Tech_io.to_json tech'))

let test_solution_roundtrip () =
  let p = Flow.prepare (Suite.find_exn "s27") in
  match (Dcopt_core.Optimizer.get "baseline").Dcopt_core.Optimizer.run
      (Dcopt_core.Scenario.of_prepared p) with
  | None -> Alcotest.fail "s27 baseline infeasible"
  | Some sol -> (
    let j1 = Solution.to_json sol in
    match Solution.of_json j1 with
    | Error msg -> Alcotest.fail msg
    | Ok sol' ->
      Alcotest.(check string)
        "solution json round-trips byte-exactly" (Json.to_string j1)
        (Json.to_string (Solution.to_json sol')))

let test_job_and_row_roundtrip () =
  let job =
    Job.make ~id:"a" ~optimizer:"joint-grid"
      ~config:(Json.Obj [ ("input_density", Json.Float 0.25) ])
      ~timeout_s:1.5 ~retries:2 "s27"
  in
  (match Job.of_json (Job.to_json job) with
  | Error msg -> Alcotest.fail msg
  | Ok job' ->
    Alcotest.(check string)
      "job spec round-trips" (Json.to_string (Job.to_json job))
      (Json.to_string (Job.to_json job')));
  let rows = Service.run_batch [ Job.make "s27" ] in
  List.iter
    (fun row ->
      match Job.row_of_json (Job.row_to_json row) with
      | Error msg -> Alcotest.fail msg
      | Ok row' ->
        Alcotest.(check string)
          "result row round-trips" (Json.to_string (Job.row_to_json row))
          (Json.to_string (Job.row_to_json row')))
    rows

let test_job_rejects_unknown_field () =
  match
    Job.of_json (Json.Obj [ ("circuit", Json.String "s27");
                            ("timeout", Json.Float 1.0) ])
  with
  | Error msg ->
    Alcotest.(check bool) "names the field" true
      (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected an error for the misspelled field"

(* --- batch semantics -------------------------------------------------- *)

let batch_jobs () =
  [
    Job.make ~optimizer:"joint" "s27";
    Job.make ~optimizer:"baseline" "s27";
    Job.make ~optimizer:"joint"
      ~config:(Json.Obj [ ("input_density", Json.Float 0.5) ])
      "s27";
  ]

let test_jobs_count_invariance () =
  let seq = Service.run_batch (batch_jobs ()) in
  Par.set_jobs 4;
  let par =
    Fun.protect
      ~finally:(fun () -> Par.set_jobs 1)
      (fun () -> Service.run_batch (batch_jobs ()))
  in
  Alcotest.(check string)
    "batch rows are byte-identical at --jobs 4 and --jobs 1"
    (rows_to_string seq) (rows_to_string par)

let test_warm_run_all_hits () =
  let store = Store.open_ (temp_store ()) in
  let cold = Service.run_batch ~store (batch_jobs ()) in
  List.iter
    (fun r -> Alcotest.(check bool) "cold is a miss" false r.Job.cache_hit)
    cold;
  let warm = Service.run_batch ~store (batch_jobs ()) in
  List.iter
    (fun r -> Alcotest.(check bool) "warm is a hit" true r.Job.cache_hit)
    warm;
  let strip rows =
    List.map
      (fun r -> Json.to_string (Job.row_to_json { r with Job.cache_hit = false }))
      rows
  in
  Alcotest.(check (list string))
    "cache replay is byte-identical to the computed rows" (strip cold)
    (strip warm)

let test_within_batch_dedup () =
  let rows = Service.run_batch [ Job.make "s27"; Job.make "s27" ] in
  match rows with
  | [ a; b ] ->
    Alcotest.(check string) "same digest" a.Job.digest b.Job.digest;
    Alcotest.(check bool) "first computes" false a.Job.cache_hit;
    Alcotest.(check bool) "duplicate hits" true b.Job.cache_hit;
    Alcotest.(check string)
      "same outcome"
      (Json.to_string (Job.row_to_json { a with Job.job_id = ""; cache_hit = false }))
      (Json.to_string (Job.row_to_json { b with Job.job_id = ""; cache_hit = false }))
  | _ -> Alcotest.fail "expected two rows"

let test_digest_sensitivity () =
  let digest_of ~optimizer config =
    Store.digest ~optimizer ~config (Suite.find_exn "s27")
  in
  let d0 = digest_of ~optimizer:"joint" Flow.default_config in
  Alcotest.(check bool) "optimizer changes the key" true
    (d0 <> digest_of ~optimizer:"baseline" Flow.default_config);
  Alcotest.(check bool) "config changes the key" true
    (d0
    <> digest_of ~optimizer:"joint"
         { Flow.default_config with Flow.input_density = 0.2 });
  Alcotest.(check string) "key is stable" d0
    (digest_of ~optimizer:"joint" Flow.default_config)

(* --- isolation, retry, timeout ---------------------------------------- *)

let test_fault_injection_and_isolation () =
  let calls = Atomic.make 0 in
  Optimizer.register
    {
      Optimizer.name = "test-flaky";
      doc = "fails twice, then delegates to the baseline";
      run =
        (fun ?observer:_ s ->
          if Atomic.fetch_and_add calls 1 < 2 then failwith "injected fault";
          (Dcopt_core.Optimizer.get "baseline").Dcopt_core.Optimizer.run s);
    };
  Optimizer.register
    {
      Optimizer.name = "test-broken";
      doc = "always raises";
      run = (fun ?observer:_ _ -> failwith "always broken");
    };
  Metrics.reset ();
  let rows =
    Service.run_batch
      [
        Job.make ~id:"flaky" ~optimizer:"test-flaky" ~retries:2 "s27";
        Job.make ~id:"broken" ~optimizer:"test-broken" ~retries:1 "s27";
        Job.make ~id:"healthy" ~optimizer:"baseline" "s27";
      ]
  in
  (match rows with
  | [ flaky; broken; healthy ] ->
    (match flaky.Job.outcome with
    | Job.Solved _ -> ()
    | _ -> Alcotest.fail "flaky job should succeed on its third attempt");
    (match broken.Job.outcome with
    | Job.Failed { attempts; error } ->
      Alcotest.(check int) "broken used both attempts" 2 attempts;
      Alcotest.(check bool) "error is reported" true
        (String.length error > 0)
    | _ -> Alcotest.fail "broken job should fail");
    (match healthy.Job.outcome with
    | Job.Solved _ -> ()
    | _ -> Alcotest.fail "sibling job must be unaffected")
  | _ -> Alcotest.fail "expected three rows");
  Alcotest.(check int) "flaky retried twice, broken once" 3
    (Metrics.value (Metrics.counter "service.retries"));
  Alcotest.(check int) "one failure recorded" 1
    (Metrics.value (Metrics.counter "service.failed"))

let test_timeout () =
  Optimizer.register
    {
      Optimizer.name = "test-spin";
      doc = "spins forever, cooperatively observable";
      run =
        (fun ?observer _ ->
          let observe = Option.value observer ~default:Telemetry.null in
          let it =
            {
              Telemetry.optimizer = "test-spin";
              index = 0;
              vdd = 1.0;
              vt = 0.1;
              static_energy = 0.0;
              dynamic_energy = 0.0;
              total_energy = 0.0;
              feasible = false;
            }
          in
          while true do
            observe it
          done;
          None);
    };
  let rows =
    Service.run_batch
      [
        Job.make ~id:"spin" ~optimizer:"test-spin" ~timeout_s:0.05 ~retries:1
          "s27";
        Job.make ~id:"healthy" ~optimizer:"baseline" "s27";
      ]
  in
  match rows with
  | [ spin; healthy ] ->
    (match spin.Job.outcome with
    | Job.Failed { attempts; error } ->
      Alcotest.(check int) "both attempts timed out" 2 attempts;
      Alcotest.(check bool) "reported as a timeout" true
        (String.length error >= 9 && String.sub error 0 9 = "timed out")
    | _ -> Alcotest.fail "spinning job should time out");
    (match healthy.Job.outcome with
    | Job.Solved _ -> ()
    | _ -> Alcotest.fail "sibling job must be unaffected")
  | _ -> Alcotest.fail "expected two rows"

let test_unknown_inputs_become_rows () =
  let rows =
    Service.run_batch
      [
        Job.make ~id:"nocirc" "s9999";
        Job.make ~id:"noopt" ~optimizer:"bogus" "s27";
        Job.make ~id:"badcfg"
          ~config:(Json.Obj [ ("no_such_field", Json.Int 1) ])
          "s27";
      ]
  in
  List.iter
    (fun r ->
      match r.Job.outcome with
      | Job.Failed { attempts; _ } ->
        Alcotest.(check int) "never attempted" 0 attempts
      | _ -> Alcotest.fail (r.Job.job_id ^ " should be a failure row"))
    rows

(* --- fleet wire protocol ---------------------------------------------- *)

module Wire = Dcopt_service.Wire

let test_wire_roundtrip () =
  let job =
    Job.make ~id:"t1" ~optimizer:"joint" ~timeout_s:1.5 ~retries:2
      ~config:(Json.Obj [ ("clock_frequency", Json.Float 2e8) ])
      "s27"
  in
  List.iter
    (fun frame ->
      let line = Wire.encode (Wire.to_worker_to_json frame) in
      match Wire.to_worker_of_line line with
      | Ok frame' ->
        Alcotest.(check bool) "coordinator frame round-trips" true
          (frame = frame')
      | Error e -> Alcotest.fail e)
    [ Wire.Assign { seq = 7; batch_id = 3; job }; Wire.Shutdown ];
  let row =
    {
      Job.job_id = "t1";
      row_circuit = "s27";
      row_optimizer = "joint";
      digest = "abc123";
      cache_hit = false;
      outcome = Job.Failed { error = "boom"; attempts = 2 };
    }
  in
  List.iter
    (fun frame ->
      let line = Wire.encode (Wire.from_worker_to_json frame) in
      match Wire.from_worker_of_line line with
      | Ok frame' ->
        Alcotest.(check bool) "worker frame round-trips" true (frame = frame')
      | Error e -> Alcotest.fail e)
    [
      Wire.Hello { worker_id = "w0"; pid = 123; version = Wire.protocol_version };
      Wire.Heartbeat;
      Wire.Result { seq = 7; row };
    ]

let test_wire_rejects_malformed () =
  let expect_error what = function
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (what ^ " should not parse")
  in
  (* payload-level rejection: a valid envelope around a bad document *)
  let framed s = Wire.frame_line s in
  expect_error "garbage" (Wire.to_worker_of_line (framed "not json"));
  expect_error "no frame member" (Wire.to_worker_of_line (framed "{\"seq\":1}"));
  expect_error "unknown kind"
    (Wire.to_worker_of_line (framed "{\"frame\":\"nope\"}"));
  expect_error "missing seq"
    (Wire.to_worker_of_line (framed "{\"frame\":\"job\",\"batch_id\":1}"));
  expect_error "bad job"
    (Wire.to_worker_of_line
       (framed "{\"frame\":\"job\",\"seq\":1,\"batch_id\":1,\"job\":{\"x\":1}}"));
  expect_error "missing row"
    (Wire.from_worker_of_line (framed "{\"frame\":\"result\",\"seq\":1}"));
  expect_error "non-json worker frame" (Wire.from_worker_of_line (framed "\x00\x01"));
  (* envelope-level rejection: bare payloads (the protocol-1 shape) and
     forged or damaged checksums never reach the JSON layer *)
  expect_error "bare payload (no envelope)"
    (Wire.to_worker_of_line "{\"frame\":\"shutdown\"}");
  expect_error "empty line" (Wire.to_worker_of_line "");
  let good = Wire.encode (Wire.to_worker_to_json Wire.Shutdown) in
  (match Wire.to_worker_of_line good with
  | Ok Wire.Shutdown -> ()
  | _ -> Alcotest.fail "sane envelope should parse");
  (* flip one payload byte: the checksum must catch it *)
  let corrupted = Bytes.of_string good in
  let last = Bytes.length corrupted - 1 in
  Bytes.set corrupted last (Char.chr (Char.code (Bytes.get corrupted last) lxor 0x20));
  expect_error "bit-flipped payload" (Wire.to_worker_of_line (Bytes.to_string corrupted));
  (* truncate mid-payload: length/sum both disagree *)
  expect_error "truncated frame"
    (Wire.to_worker_of_line (String.sub good 0 (String.length good - 3)));
  expect_error "forged checksum"
    (Wire.to_worker_of_line
       ("!0000000000000000:" ^ Json.to_string (Wire.to_worker_to_json Wire.Shutdown)))

let test_wire_addr () =
  let check what want got =
    Alcotest.(check bool) what true (want = got)
  in
  check "host:port is tcp" (Ok (Wire.Tcp ("localhost", 7070)))
    (Wire.addr_of_string "localhost:7070");
  check "path stays unix"
    (Ok (Wire.Unix_path "/tmp/x.sock"))
    (Wire.addr_of_string "/tmp/x.sock");
  check "path with colon-int suffix but slash stays unix"
    (Ok (Wire.Unix_path "/tmp/x:1"))
    (Wire.addr_of_string "/tmp/x:1");
  check "bracketed v6 literal"
    (Ok (Wire.Tcp ("::1", 9000)))
    (Wire.addr_of_string "[::1]:9000");
  check "v6 round-trips through string_of_addr" "[::1]:9000"
    (Wire.string_of_addr (Wire.Tcp ("::1", 9000)));
  check "port 0 accepted (ephemeral listen)"
    (Ok (Wire.Tcp ("127.0.0.1", 0)))
    (Wire.addr_of_string "127.0.0.1:0");
  let expect_error what = function
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (what ^ " should be an address error")
  in
  (* the old parser silently fell back to a unix path on every one of
     these — each is far more plausibly a typo'd TCP address *)
  expect_error "non-numeric port" (Wire.addr_of_string "foo:bar");
  expect_error "out-of-range port" (Wire.addr_of_string "host:70000");
  expect_error "empty host" (Wire.addr_of_string ":8080");
  expect_error "unbracketed v6" (Wire.addr_of_string "::1:9000");
  (* resolution errors carry a located story, not an exception *)
  (match Wire.sockaddr_of (Wire.Tcp ("no-such-host.invalid", 80)) with
  | Error msg ->
    Alcotest.(check bool)
      "resolution error names the problem" true
      (String.length msg > 0)
  | Ok _ -> Alcotest.fail "bogus hostname should not resolve");
  match Wire.connect (Wire.Tcp ("127.0.0.1", 0)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "connecting to port 0 should be refused"

(* --- fault plans ------------------------------------------------------- *)

module Faults = Dcopt_service.Faults

let test_faults_parse () =
  (match Faults.parse "seed=42;w0/wire.send.result@2:drop;store.put@*:enospc" with
  | Ok plan ->
    Alcotest.(check bool) "seed parsed" true (plan.Faults.seed = 42L);
    Alcotest.(check int) "two entries" 2 (List.length plan.Faults.entries)
  | Error e -> Alcotest.fail e);
  (match Faults.parse "clock.tick@1:jump=-3600" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("negative jump should parse: " ^ e));
  let expect_error what spec =
    match Faults.parse spec with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (what ^ " should be rejected")
  in
  expect_error "unknown site" "wire.send.bogus@1:drop";
  expect_error "unknown action" "store.put@1:explode";
  expect_error "missing occurrence" "store.put:enospc";
  expect_error "zero occurrence" "store.put@0:enospc";
  expect_error "drop takes no arg" "store.put@1:drop=3";
  expect_error "delay needs an arg" "wire.send.result@1:delay"

let test_faults_schedule () =
  (match Faults.parse "seed=7;wire.send.result@2:drop;store.put@*:eio" with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    Faults.arm plan;
    Alcotest.(check bool) "occurrence 1 clean" true
      (Faults.fire "wire.send.result" = []);
    Alcotest.(check bool) "occurrence 2 fires" true
      (Faults.fire "wire.send.result" = [ Faults.Drop ]);
    Alcotest.(check bool) "occurrence 3 clean again" true
      (Faults.fire "wire.send.result" = []);
    Alcotest.(check bool) "every occurrence fires" true
      (Faults.fire "store.put" = [ Faults.Eio ]
      && Faults.fire "store.put" = [ Faults.Eio ]);
    Alcotest.(check bool) "other sites untouched" true
      (Faults.fire "store.find" = []);
    (* re-arming the same plan resets occurrence counters *)
    Faults.arm plan;
    Alcotest.(check bool) "re-arm resets counts" true
      (Faults.fire "wire.send.result" = []));
  (* a role guard restricts the entry to one process identity *)
  (match Faults.parse "w0/worker.job@*:exit" with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    Faults.arm plan;
    Faults.set_role "w3";
    Alcotest.(check bool) "wrong role never fires" true
      (Faults.fire "worker.job" = []);
    Faults.set_role "w0";
    Alcotest.(check bool) "guarded role fires" true
      (Faults.fire "worker.job" = [ Faults.Exit ]);
    Faults.set_role "coord");
  Faults.disarm ();
  Alcotest.(check bool) "disarmed fires nothing" true
    (Faults.fire "store.put" = [])

let test_faults_corrupt_deterministic () =
  let line = Wire.encode (Wire.to_worker_to_json Wire.Shutdown) ^ "\n" in
  let a = Faults.corrupt_string line in
  let b = Faults.corrupt_string line in
  Alcotest.(check string) "corruption is deterministic" a b;
  Alcotest.(check bool) "corruption changes bytes" true (a <> line);
  Alcotest.(check bool) "newline framing survives" true
    (a.[String.length a - 1] = '\n'
    && not (String.contains (String.sub a 0 (String.length a - 1)) '\n'))

(* --- retry/quarantine policy math -------------------------------------- *)

module Policy = Dcopt_service.Policy
module Prng = Dcopt_util.Prng

let test_policy_backoff () =
  (* property: over many attempts and seeds, every delay is positive,
     capped, and no larger than the un-jittered exponential envelope *)
  let base_s = 0.1 and cap_s = 5.0 in
  for seed = 1 to 25 do
    let prng = Prng.create (Int64.of_int seed) in
    for attempt = 1 to 40 do
      let d = Policy.backoff_delay_s ~base_s ~cap_s ~prng ~attempt () in
      if not (d > 0.0 && d <= cap_s) then
        Alcotest.failf "seed %d attempt %d: delay %g outside (0, %g]" seed
          attempt d cap_s;
      let envelope =
        Float.min cap_s (base_s *. (2.0 ** float_of_int (min 62 (attempt - 1))))
      in
      if d > envelope then
        Alcotest.failf "seed %d attempt %d: delay %g above envelope %g" seed
          attempt d envelope
    done
  done;
  (* determinism: the same worker id replays the same schedule *)
  let schedule id =
    let prng = Prng.of_string id in
    List.init 10 (fun i -> Policy.backoff_delay_s ~prng ~attempt:(i + 1) ())
  in
  Alcotest.(check (list (float 0.0))) "per-id schedule is deterministic"
    (schedule "w1") (schedule "w1");
  Alcotest.(check bool) "different ids decorrelate" true
    (schedule "w1" <> schedule "w2");
  (* no jitter: exact doubling until the cap *)
  let prng = Prng.create 1L in
  let exact =
    List.init 8 (fun i ->
        Policy.backoff_delay_s ~base_s:0.5 ~cap_s:10.0 ~jitter_frac:0.0 ~prng
          ~attempt:(i + 1) ())
  in
  Alcotest.(check (list (float 1e-9))) "un-jittered doubling"
    [ 0.5; 1.0; 2.0; 4.0; 8.0; 10.0; 10.0; 10.0 ]
    exact

let test_policy_quarantine () =
  let q = Policy.quarantine ~after:2 () in
  Alcotest.(check bool) "fresh id not quarantined" false
    (Policy.quarantined q "w0");
  Alcotest.(check int) "first loss" 1 (Policy.note_loss q "w0");
  Alcotest.(check bool) "one loss is not enough" false
    (Policy.quarantined q "w0");
  Alcotest.(check int) "second loss" 2 (Policy.note_loss q "w0");
  Alcotest.(check bool) "second loss quarantines" true
    (Policy.quarantined q "w0");
  (* monotone: further losses never un-quarantine *)
  ignore (Policy.note_loss q "w0");
  Alcotest.(check bool) "still quarantined" true (Policy.quarantined q "w0");
  Alcotest.(check bool) "ids are independent" false (Policy.quarantined q "w1")

(* byte-identity of run_batch against a fleet-shaped executor that
   computes tasks out of order on the calling domain — the library half
   of the fleet invariant, no processes involved *)
let test_run_batch_via_out_of_order () =
  let jobs =
    List.concat_map
      (fun fc ->
        [
          Job.make ~id:(Printf.sprintf "a%d" fc) ~optimizer:"baseline"
            ~config:(Json.Obj [ ("clock_frequency", Json.Float (float fc *. 1e6)) ])
            "s27";
        ])
      [ 150; 175; 200; 150 ]
  in
  let reference = Service.run_batch jobs in
  let scrambled =
    Service.run_batch_via
      ~execute:(fun ~batch_id tasks ->
        let n = Array.length tasks in
        let out = Array.make n None in
        (* reverse order, like a slow worker finishing last *)
        for i = n - 1 downto 0 do
          out.(i) <- Some (Service.compute_task ~batch_id tasks.(i))
        done;
        Array.map Option.get out)
      jobs
  in
  Alcotest.(check string)
    "rows byte-identical under an out-of-order executor"
    (rows_to_string reference) (rows_to_string scrambled)

let () =
  Alcotest.run "service"
    [
      ( "json",
        [
          Alcotest.test_case "config round-trip" `Quick test_config_roundtrip;
          Alcotest.test_case "config partial override" `Quick
            test_config_partial_override;
          Alcotest.test_case "tech round-trip" `Quick test_tech_roundtrip;
          Alcotest.test_case "solution round-trip" `Quick
            test_solution_roundtrip;
          Alcotest.test_case "job and row round-trip" `Quick
            test_job_and_row_roundtrip;
          Alcotest.test_case "unknown job field" `Quick
            test_job_rejects_unknown_field;
        ] );
      ( "batch",
        [
          Alcotest.test_case "jobs-count invariance" `Quick
            test_jobs_count_invariance;
          Alcotest.test_case "warm run hits the store" `Quick
            test_warm_run_all_hits;
          Alcotest.test_case "within-batch dedup" `Quick
            test_within_batch_dedup;
          Alcotest.test_case "digest sensitivity" `Quick
            test_digest_sensitivity;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "wire frame round-trip" `Quick
            test_wire_roundtrip;
          Alcotest.test_case "wire rejects malformed frames" `Quick
            test_wire_rejects_malformed;
          Alcotest.test_case "wire address parsing" `Quick test_wire_addr;
          Alcotest.test_case "out-of-order executor byte-identity" `Quick
            test_run_batch_via_out_of_order;
        ] );
      ( "faults",
        [
          Alcotest.test_case "plan parsing" `Quick test_faults_parse;
          Alcotest.test_case "fire schedule" `Quick test_faults_schedule;
          Alcotest.test_case "deterministic corruption" `Quick
            test_faults_corrupt_deterministic;
        ] );
      ( "policy",
        [
          Alcotest.test_case "backoff properties" `Quick test_policy_backoff;
          Alcotest.test_case "quarantine threshold" `Quick
            test_policy_quarantine;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "fault injection and retry" `Quick
            test_fault_injection_and_isolation;
          Alcotest.test_case "cooperative timeout" `Quick test_timeout;
          Alcotest.test_case "unknown inputs" `Quick
            test_unknown_inputs_become_rows;
        ] );
    ]
