(* End-to-end smoke for the serve control protocol: spawn the real
   minpower serve loop, interleave job lines with [status] and [metrics]
   control requests on the same connection, and validate that the metrics
   answer is well-formed OpenMetrics (framed by its own "# EOF") whose
   counters track the jobs the session just ran.

   argv.(1) is the minpower binary (the dune rule passes
   %{exe:../bin/minpower.exe}). *)

let minpower = Sys.argv.(1)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else scan (i + 1)
  in
  scan 0

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* read the exposition up to its "# EOF" framing marker *)
let read_exposition ic =
  let rec go acc =
    match input_line ic with
    | "# EOF" -> List.rev acc
    | line -> go (line :: acc)
    | exception End_of_file -> fail "EOF before the # EOF marker"
  in
  go []

(* structural check: every line is a comment or a `name[{labels}] value`
   sample whose value parses as an OpenMetrics number *)
let validate_exposition lines =
  if lines = [] then fail "empty exposition";
  List.iter
    (fun line ->
      if line = "" then fail "blank line in exposition"
      else if line.[0] = '#' then begin
        if not (starts_with "# HELP " line || starts_with "# TYPE " line) then
          fail "bad comment line %S" line
      end
      else begin
        (match String.rindex_opt line ' ' with
        | None -> fail "sample line without value %S" line
        | Some i -> (
          let value = String.sub line (i + 1) (String.length line - i - 1) in
          match value with
          | "NaN" | "+Inf" | "-Inf" -> ()
          | v when float_of_string_opt v <> None -> ()
          | v -> fail "unparsable sample value %S in %S" v line));
        match line.[0] with
        | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> ()
        | c -> fail "sample name starts with %C in %S" c line
      end)
    lines

let expect_line lines needle =
  if not (List.exists (contains ~needle) lines) then
    fail "exposition is missing %S" needle

let () =
  (* a wedged serve process must not hang the test suite *)
  ignore (Unix.alarm 120);
  (* cloexec: the child must NOT inherit the parent-side pipe ends —
     holding a copy of its own stdin's write end would keep it from ever
     seeing EOF (create_process dup2s the child ends onto 0/1, which
     clears the flag there) *)
  let child_stdin_r, child_stdin_w = Unix.pipe ~cloexec:true () in
  let child_stdout_r, child_stdout_w = Unix.pipe ~cloexec:true () in
  let pid =
    Unix.create_process minpower
      [| minpower; "serve" |]
      child_stdin_r child_stdout_w Unix.stderr
  in
  Unix.close child_stdin_r;
  Unix.close child_stdout_w;
  let toc = Unix.out_channel_of_descr child_stdin_w in
  let tic = Unix.in_channel_of_descr child_stdout_r in
  let send line =
    output_string toc line;
    output_char toc '\n';
    flush toc
  in
  (* status before any job: a JSON line with zeroed counters *)
  send "status";
  let status0 = input_line tic in
  if not (contains ~needle:"\"status\":\"ok\"" status0) then
    fail "bad status line %S" status0;
  if not (contains ~needle:"\"jobs\":0" status0) then
    fail "fresh session already counts jobs: %S" status0;
  (* one job, then poll the registry mid-session *)
  send "{\"id\":\"first\",\"circuit\":\"s27\",\"optimizer\":\"baseline\"}";
  let row1 = input_line tic in
  if not (contains ~needle:"\"id\":\"first\"" row1) then
    fail "bad result row %S" row1;
  if not (contains ~needle:"\"status\":\"solved\"" row1) then
    fail "s27 baseline did not solve: %S" row1;
  send "metrics";
  let exposition = read_exposition tic in
  validate_exposition exposition;
  expect_line exposition "service_jobs_total 1";
  expect_line exposition "service_solved_total 1";
  expect_line exposition "# TYPE service_latency histogram";
  expect_line exposition "service_latency_count 1";
  expect_line exposition "service_latency_bucket{le=\"+Inf\"} 1";
  (* a second job moves the live counters *)
  send "{\"id\":\"second\",\"circuit\":\"s27\",\"optimizer\":\"baseline\"}";
  let row2 = input_line tic in
  if not (contains ~needle:"\"id\":\"second\"" row2) then
    fail "bad second row %S" row2;
  send "metrics";
  let exposition = read_exposition tic in
  validate_exposition exposition;
  expect_line exposition "service_jobs_total 2";
  expect_line exposition "service_latency_count 2";
  (* unknown control words degrade to a failed row, not a dead session *)
  send "bogus";
  let err_row = input_line tic in
  if not (contains ~needle:"unknown control request" err_row) then
    fail "unknown control word not reported: %S" err_row;
  send "status";
  let status2 = input_line tic in
  if not (contains ~needle:"\"jobs\":2" status2) then
    fail "status does not track jobs: %S" status2;
  (* protocol fuzz: every malformed frame must come back as a failed row
     for that line — never a dead session, never a serve abort *)
  let fuzz_frames =
    [
      "{not json at all";
      "{\"circuit\":123}";
      "{\"circuit\":\"s27\",\"bogus\":1}";
      "{\"circuit\":\"s27\",\"optimizer\":\"no-such-optimizer\"}";
      "{\"nested\":{\"deep\":[1,2,{\"x\":null}]}}";
      "[1,2,3]";
      "{\"circuit\":\"s27\",\"timeout_s\":\"soon\"}";
      String.concat "" (List.init 2000 (fun _ -> "{"));
      "{\"circuit\":\"\\u0000\\u0001\"}";
    ]
  in
  List.iter
    (fun frame ->
      send frame;
      let row = input_line tic in
      if not (contains ~needle:"\"status\":\"failed\"" row) then
        fail "malformed frame %S did not produce a failed row: %S"
          (String.sub frame 0 (min 40 (String.length frame)))
          row)
    fuzz_frames;
  (* the session survived all of it: a real job still runs *)
  send "{\"id\":\"after-fuzz\",\"circuit\":\"s27\",\"optimizer\":\"baseline\"}";
  let row3 = input_line tic in
  if not (contains ~needle:"\"id\":\"after-fuzz\"" row3) then
    fail "session dead after fuzz: %S" row3;
  if not (contains ~needle:"\"status\":\"solved\"" row3) then
    fail "post-fuzz job did not solve: %S" row3;
  (* EOF ends the session cleanly *)
  close_out toc;
  (match snd (Unix.waitpid [] pid) with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> fail "serve exited %d" n
  | Unix.WSIGNALED n | Unix.WSTOPPED n -> fail "serve killed by signal %d" n);
  close_in_noerr tic;
  print_endline
    "serve smoke: status/metrics control requests answered mid-session, \
     OpenMetrics well-formed, counters track 2 jobs"
